#include "core/run_matrix.hpp"

#include <atomic>
#include <exception>
#include <filesystem>
#include <mutex>
#include <thread>

#include "ckpt/checkpoint.hpp"

namespace dfly {

std::vector<ExperimentResult> run_matrix(const Workload& workload,
                                         const std::vector<ExperimentConfig>& configs,
                                         const ExperimentOptions& options, int threads) {
  if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  threads = std::min<int>(threads, static_cast<int>(configs.size()));

  namespace fs = std::filesystem;
  const bool checkpointing = options.checkpoint.active();
  if (checkpointing) fs::create_directories(options.checkpoint.path);

  const DragonflyTopology topo(options.topo);
  std::vector<ExperimentResult> results(configs.size());
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= configs.size()) return;
      try {
        if (!checkpointing) {
          results[i] = run_experiment(workload, configs[i], options, &topo);
          continue;
        }
        // Per-config checkpoint file + finished-result marker inside the
        // checkpoint directory.
        const fs::path dir(options.checkpoint.path);
        const std::string name = configs[i].name();
        const std::string ckpt_path = (dir / (name + ".ckpt")).string();
        const std::string done_path = (dir / (name + ".done")).string();
        if (options.checkpoint.resume && fs::exists(done_path)) {
          results[i] = ckpt::load_result(done_path);
          continue;
        }
        ExperimentOptions per_config = options;
        per_config.checkpoint.path = ckpt_path;
        results[i] = run_experiment(workload, configs[i], per_config, &topo);
        if (!results[i].stopped_at_checkpoint) {
          ckpt::save_result(done_path, results[i]);
          std::error_code ec;
          fs::remove(ckpt_path, ec);  // the marker supersedes the snapshot
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace dfly
