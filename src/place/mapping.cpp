#include "place/mapping.hpp"

#include <algorithm>

namespace dfly {

const char* to_string(MappingKind kind) {
  switch (kind) {
    case MappingKind::Linear: return "linear";
    case MappingKind::Random: return "random";
    case MappingKind::GroupBlocked: return "group-blocked";
    case MappingKind::RouterSpread: return "router-spread";
  }
  return "?";
}

Placement apply_mapping(const Placement& placement, MappingKind kind, const TopoParams& params,
                        Rng& rng) {
  const Coordinates coords(params);
  std::vector<NodeId> nodes = placement.nodes();
  std::sort(nodes.begin(), nodes.end());

  switch (kind) {
    case MappingKind::Linear:
      break;
    case MappingKind::Random:
      rng.shuffle(nodes);
      break;
    case MappingKind::GroupBlocked: {
      // Stable sort by group keeps node-id order inside each group; node-id
      // order already encodes (group, row, col, slot), so a plain sort is
      // group-blocked — the distinction matters only for sparse random
      // allocations, where we additionally rotate groups to start from the
      // group holding the most allocated nodes (densest locality first).
      std::vector<int> count(params.groups, 0);
      for (const NodeId n : nodes) ++count[coords.group_of_node(n)];
      const int densest = static_cast<int>(
          std::max_element(count.begin(), count.end()) - count.begin());
      std::stable_sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
        const int ga = (coords.group_of_node(a) - densest + params.groups) % params.groups;
        const int gb = (coords.group_of_node(b) - densest + params.groups) % params.groups;
        if (ga != gb) return ga < gb;
        return a < b;
      });
      break;
    }
    case MappingKind::RouterSpread: {
      // Deal nodes round-robin across routers: rank-adjacent ranks land on
      // different routers, spreading neighbor traffic over many channels.
      std::vector<std::pair<int, NodeId>> keyed;  // (position within router, node)
      keyed.reserve(nodes.size());
      RouterId prev_router = -1;
      int slot = 0;
      for (const NodeId n : nodes) {
        const RouterId r = coords.router_of_node(n);
        slot = (r == prev_router) ? slot + 1 : 0;
        prev_router = r;
        keyed.emplace_back(slot, n);
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      nodes.clear();
      for (const auto& [s, n] : keyed) nodes.push_back(n);
      break;
    }
  }
  return Placement(placement.kind(), std::move(nodes), params.total_nodes());
}

}  // namespace dfly
