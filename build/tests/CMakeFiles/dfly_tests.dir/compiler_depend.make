# Empty compiler generated dependencies file for dfly_tests.
# This may be replaced when dependencies are built.
