// Tests for task-mapping strategies (rank permutations over an allocation).
#include "place/mapping.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/experiment.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

class MappingProperty : public ::testing::TestWithParam<MappingKind> {};

TEST_P(MappingProperty, PreservesNodeSet) {
  const TopoParams p = TopoParams::theta();
  Rng rng(1);
  const Placement base = make_placement(PlacementKind::RandomRouter, p, 500, rng);
  const Placement mapped = apply_mapping(base, GetParam(), p, rng);
  std::set<NodeId> before(base.nodes().begin(), base.nodes().end());
  std::set<NodeId> after(mapped.nodes().begin(), mapped.nodes().end());
  EXPECT_EQ(before, after);
  EXPECT_EQ(mapped.ranks(), base.ranks());
  EXPECT_EQ(mapped.kind(), base.kind());
}

TEST_P(MappingProperty, DeterministicGivenRngState) {
  const TopoParams p = TopoParams::theta();
  Rng rng_a(7), rng_b(7);
  Rng place_a(3), place_b(3);
  const Placement base_a = make_placement(PlacementKind::RandomChassis, p, 300, place_a);
  const Placement base_b = make_placement(PlacementKind::RandomChassis, p, 300, place_b);
  EXPECT_EQ(apply_mapping(base_a, GetParam(), p, rng_a).nodes(),
            apply_mapping(base_b, GetParam(), p, rng_b).nodes());
}

INSTANTIATE_TEST_SUITE_P(AllMappings, MappingProperty, ::testing::ValuesIn(kAllMappings),
                         [](const auto& pinfo) {
                           std::string name = to_string(pinfo.param);
                           for (char& ch : name)
                             if (ch == '-') ch = '_';
                           return name;
                         });

TEST(Mapping, LinearIsNodeIdOrder) {
  const TopoParams p = TopoParams::theta();
  Rng rng(2);
  const Placement base = make_placement(PlacementKind::RandomNode, p, 200, rng);
  const Placement mapped = apply_mapping(base, MappingKind::Linear, p, rng);
  for (int r = 1; r < mapped.ranks(); ++r)
    EXPECT_LT(mapped.node_of_rank(r - 1), mapped.node_of_rank(r));
}

TEST(Mapping, RandomActuallyPermutes) {
  const TopoParams p = TopoParams::theta();
  Rng rng(3);
  const Placement base = make_placement(PlacementKind::Contiguous, p, 200, rng);
  const Placement mapped = apply_mapping(base, MappingKind::Random, p, rng);
  int moved = 0;
  for (int r = 0; r < 200; ++r)
    if (mapped.node_of_rank(r) != base.node_of_rank(r)) ++moved;
  EXPECT_GT(moved, 100);
}

TEST(Mapping, GroupBlockedKeepsGroupsContiguousInRankOrder) {
  const TopoParams p = TopoParams::theta();
  Rng rng(4);
  const Placement base = make_placement(PlacementKind::RandomRouter, p, 400, rng);
  const Placement mapped = apply_mapping(base, MappingKind::GroupBlocked, p, rng);
  const Coordinates coords(p);
  // Each group's ranks form one contiguous rank interval.
  std::set<GroupId> finished;
  GroupId current = coords.group_of_node(mapped.node_of_rank(0));
  for (int r = 1; r < mapped.ranks(); ++r) {
    const GroupId g = coords.group_of_node(mapped.node_of_rank(r));
    if (g != current) {
      EXPECT_TRUE(finished.insert(current).second) << "group " << current << " reappeared";
      current = g;
      EXPECT_EQ(finished.count(g), 0u);
    }
  }
}

TEST(Mapping, RouterSpreadSeparatesAdjacentRanks) {
  const TopoParams p = TopoParams::theta();
  Rng rng(5);
  const Placement base = make_placement(PlacementKind::Contiguous, p, 400, rng);
  const Placement spread = apply_mapping(base, MappingKind::RouterSpread, p, rng);
  const Coordinates coords(p);
  // Under contiguous+linear, rank r and r+1 usually share a router; under
  // router-spread they almost never do.
  int together_linear = 0, together_spread = 0;
  for (int r = 0; r + 1 < 400; ++r) {
    if (coords.router_of_node(base.node_of_rank(r)) ==
        coords.router_of_node(base.node_of_rank(r + 1)))
      ++together_linear;
    if (coords.router_of_node(spread.node_of_rank(r)) ==
        coords.router_of_node(spread.node_of_rank(r + 1)))
      ++together_spread;
  }
  EXPECT_GT(together_linear, 250);
  EXPECT_LT(together_spread, 10);
}

TEST(Mapping, AffectsCommunicationTimeOfNeighborWorkload) {
  // End-to-end: for a ring workload on a contiguous allocation, the linear
  // mapping keeps neighbors adjacent (fast); random mapping scatters them.
  const Workload ring{"ring", make_ring_trace(48, 64 * units::kKiB, 2)};
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  const DragonflyTopology topo(options.topo);

  auto run_with = [&](MappingKind kind) {
    Rng rng(11);
    Placement base = make_placement(PlacementKind::Contiguous, options.topo, 48, rng);
    Placement mapped = apply_mapping(base, kind, options.topo, rng);
    Engine engine;
    auto routing = make_routing(RoutingKind::Minimal, topo);
    Network network(engine, topo, options.net, *routing, Rng(1));
    ReplayEngine replay(engine, network, ring.trace, mapped);
    replay.start();
    engine.run();
    EXPECT_TRUE(replay.finished());
    return engine.now();
  };

  EXPECT_LT(run_with(MappingKind::Linear), run_with(MappingKind::Random));
}

}  // namespace
}  // namespace dfly
