# Empty dependencies file for dfly.
# This may be replaced when dependencies are built.
