// Reproduces Fig. 5: FB's local/global channel traffic and link saturation
// under all ten configurations.
//
// Paper shape: cont-min clusters a large amount of traffic on few channels
// (long tails, heavy saturation); cont-adp rebalances; rand-min/rand-adp
// flatten both local and global channel load.
#include "bench_network_figures.hpp"

int main() {
  using namespace dfly;
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  print_bench_header("Fig. 5", "FB network metrics (traffic, saturation)", scale, seed);
  ExperimentOptions options;
  options.seed = seed;
  bench::run_network_figure(bench::fb_workload(scale), options, bench::NetworkFigurePanels{});
  return 0;
}
