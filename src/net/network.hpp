// The packet-level dragonfly network model.
//
// Network owns all routers and NICs, implements the event protocol
// (store-and-forward chunks, output-port serialization, credit-based VC flow
// control with credit-return latency) and records the four metrics of the
// study: per-channel traffic, per-channel saturation time, per-source-node
// hop statistics, and (via MessageSink) message completion times.
//
// Protocol per chunk at router i of its route:
//   1. kChunkArrive    — the chunk has fully arrived into router i's input
//                        buffer (space was reserved upstream); it joins the
//                        queue of its output port.
//   2. try_send        — when the port is idle, the first queued chunk whose
//                        VC has enough downstream credits starts transmission
//                        (skipping blocked chunks ahead of it: per-VC flow
//                        control, no head-of-line deadlock). Queue-present but
//                        nothing sendable = "buffers used up" → saturation
//                        time accrues.
//   3. on transmit end — credits for this router's input buffer return to the
//                        upstream sender (one link latency later); the chunk
//                        arrives downstream (kChunkArrive or kDeliver).
#pragma once

#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/nic.hpp"
#include "net/params.hpp"
#include "net/router.hpp"
#include "routing/algorithm.hpp"
#include "sim/engine.hpp"
#include "topo/dragonfly.hpp"
#include "util/rng.hpp"

namespace dfly {

class ChunkPathTracer;

class Network : public EventHandler, public CongestionView {
 public:
  /// All referenced objects must outlive the Network. `sink` may be null.
  Network(Engine& engine, const DragonflyTopology& topo, const NetworkParams& params,
          const RoutingAlgorithm& routing, Rng rng, MessageSink* sink = nullptr);

  void set_sink(MessageSink* sink) { sink_ = sink; }

  /// Installs (or, with nullptr, removes) the flight-recorder chunk tracer
  /// (src/obs/). The tracer must outlive event processing; null (the default)
  /// keeps every hook a branch-on-null no-op.
  void set_tracer(ChunkPathTracer* tracer) { tracer_ = tracer; }

  /// Queues a message for injection at `src`'s NIC (src != dst). May be
  /// called before the simulation starts or from within event processing.
  MsgId send(NodeId src, NodeId dst, Bytes bytes, std::uint64_t user_data = 0,
             bool notify_injected = false, bool notify_delivered = false);

  // EventHandler
  void handle_event(SimTime now, const EventPayload& payload) override;

  // CongestionView — output-queue occupancy at `router`'s `port`.
  Bytes queued_bytes(RouterId router, int port) const override;

  /// Reacts to a runtime link state change of the directed channel
  /// (router, port). On link-down the chunk currently on the wire is
  /// discarded, every chunk queued for the port is purged (input-buffer
  /// credits return upstream), and the dropped bytes are handed to the owning
  /// NICs' retransmit timers. On link-up the port resumes sending. Call once
  /// per direction after mutating the topology (FaultInjector does this).
  void on_link_state_changed(RouterId router, int port, bool up, SimTime now);

  /// Closes still-open saturation intervals at `end`; call once after run().
  void finalize(SimTime end);

  // --- metric access ---
  const Router& router(RouterId r) const { return routers_[r]; }
  const Nic& nic(NodeId n) const { return nics_[n]; }
  struct HopStats {
    std::uint64_t chunks = 0;
    std::uint64_t routers_sum = 0;
    double average() const {
      return chunks ? static_cast<double>(routers_sum) / static_cast<double>(chunks) : 0.0;
    }
  };
  const HopStats& hop_stats(NodeId src) const { return hop_stats_[src]; }

  std::uint64_t chunks_forwarded() const { return chunks_forwarded_; }
  Bytes bytes_delivered() const { return bytes_delivered_; }
  std::size_t messages_in_flight() const { return msgs_.in_flight(); }

  // --- fault-recovery accounting ---
  Bytes bytes_injected() const { return bytes_injected_; }
  Bytes bytes_dropped() const { return bytes_dropped_; }
  Bytes bytes_retransmitted() const { return bytes_retransmitted_; }
  Bytes in_fabric_bytes() const { return in_fabric_bytes_; }
  std::uint64_t chunks_dropped() const { return chunks_dropped_; }
  std::uint64_t retransmit_events() const { return retransmit_events_; }
  /// Chunk-conservation audit: every injected byte must be delivered,
  /// dropped (awaiting retransmission), or still in the fabric.
  bool conservation_ok() const {
    return bytes_injected_ == bytes_delivered_ + bytes_dropped_ + in_fabric_bytes_;
  }
  /// Backoff delay before retransmit attempt number `attempts`.
  SimTime retransmit_delay(int attempts) const;

  const Chunk& chunk(ChunkId id) const { return chunks_[id]; }
  const MessageRecord& message(MsgId id) const { return msgs_[id]; }
  /// Bytes queued on router output ports, per VC (diagnostics).
  std::vector<Bytes> vc_occupancy() const;

  const DragonflyTopology& topology() const { return topo_; }
  const NetworkParams& params() const { return params_; }

  /// Checkpoint support (src/ckpt/): serializes every piece of fabric state —
  /// per-port queues/credits/metrics, NIC queues and retransmit accounting,
  /// the chunk and message pools with their free lists, hop stats, the
  /// conservation counters and the routing RNG stream. load_state validates
  /// structural invariants (port counts, pool indices, route lengths) and
  /// throws std::runtime_error on any mismatch; it requires a freshly
  /// constructed Network over the same topology and parameters.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  enum EventKind : std::int32_t {
    kChunkArrive = 1,   // a=chunk, b=router
    kPortFree = 2,      // b=channel
    kCreditToRouter = 3,// a=vc, b=channel, c=bytes
    kCreditToNic = 4,   // b=node, c=bytes
    kNicFree = 5,       // b=node
    kDeliver = 6,       // a=chunk
    kMsgInjected = 7,   // b=msg
    kRetransmit = 8,    // b=msg
  };

  void try_inject(NodeId node, SimTime now);
  void try_send(RouterId router, int port, SimTime now);
  void complete_message_part(MsgId id, SimTime now, bool injected_side);
  void release_if_done(MsgId id);
  /// Returns the input-buffer space a dropped chunk occupies at its current
  /// router to the upstream sender (same delay formula as a normal departure).
  void return_upstream_credit(const Chunk& chunk, SimTime now);
  /// Books a dropped chunk's bytes out of the fabric and arms the owning
  /// NIC's retransmit timer.
  void account_drop(ChunkId cid, SimTime now);
  void schedule_retransmit(MsgId id, SimTime now);

  Engine& engine_;
  const DragonflyTopology& topo_;
  NetworkParams params_;
  const RoutingAlgorithm& routing_;
  Rng rng_;
  MessageSink* sink_;
  ChunkPathTracer* tracer_ = nullptr;

  std::vector<Router> routers_;
  std::vector<Nic> nics_;
  ChunkPool chunks_;
  MessagePool msgs_;
  std::vector<HopStats> hop_stats_;

  std::uint64_t chunks_forwarded_ = 0;
  Bytes bytes_delivered_ = 0;
  Bytes bytes_injected_ = 0;
  Bytes bytes_dropped_ = 0;
  Bytes bytes_retransmitted_ = 0;
  Bytes in_fabric_bytes_ = 0;
  std::uint64_t chunks_dropped_ = 0;
  std::uint64_t retransmit_events_ = 0;
};

}  // namespace dfly
