// Flight-recorder chunk path tracing.
//
// The Network drives a ChunkPathTracer through branch-on-null hooks at four
// points of a chunk's life: injection (sampling decision), output-queue
// enqueue at each router, transmit start on each channel, and delivery/drop.
// The tracer keeps state for the *sampled* subset only and forwards completed
// per-hop records to a TraceSink. A sampled chunk is identified by the serial
// on_chunk_injected returns; the Network stows it in Chunk::trace_serial and
// passes it back at every later hook, so the tracer needs no chunk-id map.
//
// Sampling is deterministic: an error-feedback accumulator admits exactly
// round(rate * n) of any n injected chunks (±1), so a configured rate of 0.1
// really records one chunk in ten — no RNG, no long-run drift, reproducible
// across runs.
//
// Sharded engine support (DESIGN.md §10): constructed over a sharded Engine,
// the tracer keeps one state block per lane. Serials pack (lane << 48) | n
// where n counts injections sampled on that lane — single-writer, and
// identical at any worker-thread count. Hop records are buffered per lane
// (the shared TraceSink cannot be called from concurrent workers) and
// flush() hands them to the sink in one deterministic sorted pass; the
// realtime on_chunk_sampled / on_chunk_closed sink callbacks are suppressed
// in this mode for the same reason. Unsharded, behaviour is exactly the
// classic single-stream tracer: plain 0,1,2,... serials, records forwarded
// the moment they complete.
//
// ChromeTraceWriter renders the recorded hops as Chrome trace-event JSON
// (load in chrome://tracing or https://ui.perfetto.dev): one process per
// router, one thread per output port, one complete ("X") slice per hop
// occupancy of the wire, with queue depth at enqueue and the VC in args.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/chunk.hpp"
#include "sim/engine.hpp"
#include "topo/dragonfly.hpp"
#include "util/units.hpp"

namespace dfly {

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

/// One completed hop of a sampled chunk: the chunk occupied `router`'s output
/// `port` from `enqueue_time`, held the wire [start_time, end_time).
struct HopEvent {
  std::uint64_t chunk = 0;  ///< tracer-assigned serial, unique per sampled chunk
  MsgId msg = 0;
  NodeId src = -1;
  NodeId dst = -1;
  RouterId router = -1;
  std::int16_t port = -1;
  std::int8_t vc = -1;
  PortKind kind = PortKind::Terminal;
  Bytes bytes = 0;
  Bytes queue_depth = 0;  ///< output-queue bytes ahead of this chunk at enqueue
  SimTime enqueue_time = 0;
  SimTime start_time = 0;
  SimTime end_time = 0;
};

/// Receives trace records as they complete. Implementations must not assume
/// hop events of different chunks arrive grouped — chunks interleave.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_hop(const HopEvent& hop) = 0;
  /// A chunk passed the sampling decision at injection time. Not delivered
  /// when the tracer runs per-lane over a sharded engine.
  virtual void on_chunk_sampled(std::uint64_t /*serial*/, MsgId /*msg*/, NodeId /*src*/,
                                NodeId /*dst*/, Bytes /*bytes*/, SimTime /*now*/) {}
  /// The sampled chunk left the fabric (delivered = false means dropped on a
  /// failed link; its bytes return via NIC retransmission as a new chunk).
  /// Not delivered when the tracer runs per-lane over a sharded engine.
  virtual void on_chunk_closed(std::uint64_t /*serial*/, SimTime /*now*/, bool /*delivered*/) {}
};

class ChunkPathTracer {
 public:
  /// Records per-hop events for `sample_rate` (in [0, 1]) of injected chunks.
  /// Pass the engine iff the network runs sharded on it (Network::sharded());
  /// the tracer then partitions its state by the engine's lanes. With the
  /// default nullptr it is the classic serial tracer.
  ChunkPathTracer(TraceSink& sink, double sample_rate, const Engine* engine = nullptr);

  // --- Network hooks (call sites branch on a null tracer pointer) ---
  /// Sampling decision for a freshly injected chunk. Returns the serial to
  /// store in Chunk::trace_serial, or kNoTraceSerial if unsampled.
  std::uint64_t on_chunk_injected(MsgId msg, NodeId src, NodeId dst, Bytes bytes, SimTime now);
  void on_hop_enqueue(std::uint64_t serial, MsgId msg, NodeId src, NodeId dst, Bytes bytes,
                      RouterId router, int port, PortKind kind, int vc, Bytes queue_depth,
                      SimTime now);
  void on_transmit_start(std::uint64_t serial, SimTime start, SimTime end);
  void on_delivered(std::uint64_t serial, SimTime now);
  void on_dropped(std::uint64_t serial, SimTime now);

  /// Hands all per-lane buffered hop records to the sink in one deterministic
  /// order — (enqueue_time, start_time, serial, router, port) — and clears
  /// the buffers. Call once after the run drains (RunTelemetry::finish does).
  /// No-op for the unsharded tracer, which never buffers.
  void flush();

  /// Checkpoint support (src/ckpt/): per-lane sampling accumulators,
  /// serial/counter state, half-recorded pending hops and buffered records.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

  double sample_rate() const { return rate_; }
  std::uint64_t chunks_seen() const;
  std::uint64_t chunks_sampled() const;
  std::uint64_t hops_recorded() const;
  /// Sampled chunks still in the fabric (diagnostics; 0 after a clean drain).
  std::size_t live_chunks() const;

 private:
  /// Per-lane tracer state; single-writer by the owning lane's worker (or
  /// the coordinator in global context). One instance when unsharded.
  struct alignas(64) Lane {
    double acc = 0;  ///< error-feedback sampling accumulator
    std::uint64_t next = 0;  ///< low bits of the next serial minted here
    std::uint64_t seen = 0;
    std::uint64_t sampled = 0;
    std::uint64_t hops = 0;
    /// +1 per chunk sampled here, -1 per chunk closed here; a chunk may
    /// close on a different lane than it was sampled on, so only the sum
    /// across lanes is meaningful.
    std::int64_t live_delta = 0;
    /// Hops enqueued but not yet transmitted, by serial. Enqueue and
    /// transmit-start of one hop happen on the same lane (same output port).
    std::unordered_map<std::uint64_t, HopEvent> pending;
    std::vector<HopEvent> buffered;  ///< completed hops awaiting flush (sharded)
  };

  int lane_index() const { return engine_ ? engine_->current_lane() : 0; }
  Lane& lane() { return lanes_[static_cast<std::size_t>(lane_index())]; }
  void close(std::uint64_t serial, SimTime now, bool delivered);

  TraceSink& sink_;
  double rate_;
  const Engine* engine_;  ///< non-null iff running per-lane (sharded)
  std::vector<Lane> lanes_;
};

/// Buffers hop events and renders them as Chrome trace-event JSON.
class ChromeTraceWriter : public TraceSink {
 public:
  void on_hop(const HopEvent& hop) override { hops_.push_back(hop); }

  const std::vector<HopEvent>& hops() const { return hops_; }

  /// Checkpoint support: the buffered hop records.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

  /// Renders the trace-event JSON document ({"traceEvents": [...]}).
  void render(std::ostream& os) const;
  /// Writes render() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::vector<HopEvent> hops_;
};

}  // namespace dfly
