// Reproduces Fig. 2: communication matrix (top row) and message load per
// rank over time (bottom row) for CR, FB and AMG.
//
// The matrix is rendered as a 16x16 block-aggregated intensity map (0-9
// scale, '.' = no traffic); the load-over-time panels become per-phase
// average-load tables (the replayed traces have no compute time, so logical
// phases are the time axis — exactly what the paper's stripped traces show).
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "workload/characterize.hpp"

namespace {

using namespace dfly;

void print_matrix_map(const CommMatrix& matrix) {
  const int blocks = 16;
  const auto grid = matrix.block_aggregate(blocks);
  Bytes peak = 0;
  for (const auto& row : grid)
    for (const Bytes b : row) peak = std::max(peak, b);
  std::printf("communication matrix (16x16 block intensity, 0-9):\n");
  for (const auto& row : grid) {
    std::printf("  ");
    for (const Bytes b : row) {
      if (b == 0) {
        std::printf(".");
      } else {
        const int level = static_cast<int>(9.0 * static_cast<double>(b) / static_cast<double>(peak));
        std::printf("%d", level);
      }
    }
    std::printf("\n");
  }
}

void characterize(const Workload& workload) {
  std::printf("\n--- %s (%d ranks) ---\n", workload.name.c_str(), workload.trace.ranks());
  const CommMatrix matrix(workload.trace);

  Table stats(workload.name + ": communication structure");
  stats.set_columns({"metric", "value"});
  stats.add_row({"total volume (MB)", Table::num(units::to_mb(matrix.total_bytes()), 1)});
  stats.add_row({"messages", Table::num(static_cast<std::int64_t>(matrix.message_count()))});
  stats.add_row({"avg message (KB)", Table::num(matrix.average_message_bytes() / 1000.0, 1)});
  stats.add_row({"rank pairs used",
                 Table::num(static_cast<std::int64_t>(matrix.pairs_used()))});
  stats.add_row({"bytes within |i-j|<=2", Table::pct(100 * matrix.locality_fraction(2))});
  stats.add_row({"bytes within |i-j|<=16", Table::pct(100 * matrix.locality_fraction(16))});
  stats.add_row({"bytes within |i-j|<=128", Table::pct(100 * matrix.locality_fraction(128))});
  stats.print_markdown(std::cout);

  print_matrix_map(matrix);

  const PhaseLoad load = phase_load(workload.trace);
  Table profile(workload.name + ": message load per rank over (logical) time");
  profile.set_columns({"phase", "avg load per rank (KB)"});
  for (std::size_t phase = 0; phase < load.avg_bytes_per_rank.size(); ++phase)
    profile.add_row({Table::num(static_cast<std::int64_t>(phase)),
                     Table::num(load.avg_bytes_per_rank[phase] / 1000.0, 1)});
  profile.print_markdown(std::cout);
  std::printf("%s peak per-rank phase load: %.1f KB\n", workload.name.c_str(),
              load.peak() / 1000.0);
}

}  // namespace

int main() {
  using namespace dfly;
  const double scale = env_scale(1.0);  // characterization uses original sizes
  print_bench_header("Fig. 2", "communication matrices and message-load profiles", scale,
                     env_seed(42));
  characterize(bench::cr_workload(scale));
  characterize(bench::fb_workload(scale));
  characterize(bench::amg_workload(scale));
  return 0;
}
