#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace dfly::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(ch) & 0xFF);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os, int indent) : os_(os), indent_(indent) {}

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_); ++i) os_ << ' ';
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the comma/newline were emitted by key()
  }
  if (stack_.empty()) return;
  Level& top = stack_.back();
  if (!top.first) os_ << ',';
  top.first = false;
  newline();
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Level{});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Level{true, true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool empty = stack_.back().first;
  stack_.pop_back();
  if (!empty) newline();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  Level& top = stack_.back();
  if (!top.first) os_ << ',';
  top.first = false;
  newline();
  os_ << '"' << json_escape(k) << '"' << (indent_ > 0 ? ": " : ":");
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null_value();
  before_value();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  before_value();
  os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::raw_value(const std::string& json) {
  before_value();
  os_ << json;
  return *this;
}

}  // namespace dfly::obs
