// Quickstart: build a Theta-like dragonfly, place a small job, replay a ring
// exchange, and print the headline metrics. The ~30 lines between the
// comments are the whole public-API surface a user needs.
//
// Usage: quickstart [telemetry_out_dir]
// With an argument, telemetry is enabled and the run's flight-recorder
// artifacts (Chrome trace, counter snapshots, link heatmap) land under it.
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "metrics/report.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace dfly;

  // 1. Describe the system (defaults = the paper's Theta configuration) and
  //    a workload: 512 ranks exchanging 256 KiB around a ring, twice.
  Workload workload{"ring", make_ring_trace(/*ranks=*/512, 256 * units::kKiB, /*iterations=*/2)};

  // 2. Pick a configuration from the paper's Table I matrix and run it.
  ExperimentOptions options;  // Theta topology + link parameters
  options.seed = 1;
  if (argc > 1) {
    options.telemetry.enabled = true;
    options.telemetry.out_dir = argv[1];
    options.telemetry.sample_rate = 0.02;  // full path of 1 chunk in 50
    options.prof.enabled = true;           // wall-clock attribution -> prof.json
  }
  const ExperimentConfig config{PlacementKind::RandomNode, RoutingKind::Adaptive};
  const ExperimentResult result = run_experiment(workload, config, options);

  // 3. Inspect the metrics.
  std::printf("config          : %s\n", result.config.c_str());
  std::printf("makespan        : %.3f ms\n", result.metrics.makespan_ms);
  std::printf("median comm time: %.3f ms\n", result.metrics.median_comm_ms());
  std::printf("events processed: %llu\n",
              static_cast<unsigned long long>(result.metrics.events));

  std::vector<NamedMetrics> runs = {{result.config, result.metrics}};
  comm_time_box_table("Per-rank communication time", runs).print_markdown(std::cout);

  if (!result.telemetry_dir.empty()) {
    std::printf("telemetry       : %s (%llu of %llu chunks traced)\n",
                result.telemetry_dir.c_str(),
                static_cast<unsigned long long>(result.trace_chunks_sampled),
                static_cast<unsigned long long>(result.trace_chunks_seen));
    std::printf("open %s/trace.json in https://ui.perfetto.dev or chrome://tracing\n",
                result.telemetry_dir.c_str());
  }
  return 0;
}
