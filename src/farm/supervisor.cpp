#include "farm/supervisor.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "ckpt/checkpoint.hpp"
#include "farm/signals.hpp"
#include "farm/worker.hpp"
#include "obs/json.hpp"
#include "prof/heartbeat.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace dfly::farm {
namespace {

namespace fs = std::filesystem;

using Clock = std::chrono::steady_clock;

std::int64_t elapsed_ms(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - since).count();
}

void sleep_ms(long ms) {
  timespec ts{ms / 1000, (ms % 1000) * 1'000'000L};
  ::nanosleep(&ts, nullptr);
}

/// FNV-1a over the config name: the per-config jitter salt.
std::uint64_t name_salt(const std::string& name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : name) h = (h ^ c) * 0x100000001b3ULL;
  return h;
}

std::string slurp_error(const std::string& path) {
  std::ifstream f(path);
  if (!f) return "";
  std::string s(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>{});
  while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
  return s;
}

std::string describe_exit(const ExitInfo& info) {
  if (info.timed_out) return "watchdog timeout";
  if (!info.exited) return "killed by signal " + std::to_string(info.signal);
  return "exit code " + std::to_string(info.code);
}

struct Slot {
  enum class State { Ready, Running, Done };
  State state = State::Ready;
  std::int64_t ready_at = 0;  ///< ms on the supervisor clock; backoff gate
  int attempts_used = 0;

  pid_t pid = -1;
  std::int64_t spawned_at = 0;
  std::int64_t deadline = 0;
  bool term_sent = false;
  bool kill_sent = false;
  std::int64_t kill_at = 0;
  bool timed_out = false;
  bool resumed = false;

  bool inject_pending = false;
  bool inject_stop = false;
  std::int64_t inject_at = 0;
  bool chaos_killed = false;
  bool chaos_stopped = false;
};

class Supervisor {
 public:
  Supervisor(const Workload& workload, const std::vector<ExperimentConfig>& configs,
             const ExperimentOptions& options)
      : workload_(workload),
        configs_(configs),
        options_(options),
        farm_(options.farm),
        dir_(options.checkpoint.path),
        chaos_rng_(farm_.chaos_seed),
        chaos_left_(farm_.chaos_max_injections),
        start_(Clock::now()) {
    report_.outcomes.resize(configs.size());
    slots_.resize(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i)
      report_.outcomes[i].config = configs[i].name();
    report_.stats.configs = static_cast<std::int64_t>(configs.size());
  }

  FarmReport run() {
    fs::create_directories(dir_);
    reset_shutdown_flag();
    ScopedShutdownHandlers handlers;
    while (!finished()) {
      if (!draining_ && shutdown_requested()) begin_drain();
      reap();
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].state != Slot::State::Running) continue;
        inject_chaos(slots_[i]);
        enforce_watchdog(slots_[i]);
      }
      if (!draining_) spawn_ready();
      if (draining_) settle_unstarted();
      write_farm_status(/*force=*/false);
      if (!finished()) sleep_ms(2);
    }
    report_.interrupted = draining_;
    for (const ConfigOutcome& o : report_.outcomes) {
      report_.stats.completed += o.completed ? 1 : 0;
      report_.stats.quarantined += o.quarantined ? 1 : 0;
      report_.stats.interrupted += o.interrupted ? 1 : 0;
    }
    report_.stats.elapsed_ms = now();
    write_farm_status(/*force=*/true);
    return std::move(report_);
  }

 private:
  std::int64_t now() const { return elapsed_ms(start_); }

  bool finished() const {
    for (const Slot& s : slots_)
      if (s.state != Slot::State::Done) return false;
    return true;
  }

  void begin_drain() {
    draining_ = true;
    log_warn("farm: shutdown requested; draining workers (the sweep resumes from .ckpt)");
    const std::int64_t grace = std::min<std::int64_t>(2000, farm_.timeout_ms);
    for (Slot& s : slots_) {
      if (s.state != Slot::State::Running || s.term_sent) continue;
      ::kill(s.pid, SIGCONT);
      ::kill(s.pid, SIGTERM);
      s.term_sent = true;  // graceful: timed_out stays false
      s.kill_at = now() + grace;
    }
  }

  /// During a drain, configs never started (or parked in backoff) settle as
  /// interrupted — resumable by the next farm run, not failures.
  void settle_unstarted() {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].state != Slot::State::Ready) continue;
      slots_[i].state = Slot::State::Done;
      report_.outcomes[i].interrupted = true;
      report_.outcomes[i].final_outcome = ExitClass::Interrupted;
    }
  }

  void spawn_ready() {
    int running = 0;
    for (const Slot& s : slots_)
      running += s.state == Slot::State::Running ? 1 : 0;
    for (std::size_t i = 0; i < slots_.size() && running < farm_.workers; ++i) {
      Slot& slot = slots_[i];
      if (slot.state != Slot::State::Ready || slot.ready_at > now()) continue;
      if (spawn(i)) ++running;
    }
  }

  bool spawn(std::size_t i) {
    Slot& slot = slots_[i];
    ConfigOutcome& outcome = report_.outcomes[i];
    const std::string name = configs_[i].name();
    const bool resume = options_.checkpoint.resume || slot.attempts_used > 0;

    // A previous attempt may have written its .done marker and died before
    // exiting cleanly (e.g. a chaos SIGKILL in the final instants); the work
    // is finished, so settle instead of respawning.
    if (resume && fs::exists(sweep_done_path(dir_, name))) {
      try {
        outcome.result = ckpt::load_result(sweep_done_path(dir_, name));
        outcome.completed = true;
        outcome.final_outcome = ExitClass::Ok;
        slot.state = Slot::State::Done;
        return false;
      } catch (const std::exception&) {
        std::error_code ec;
        fs::remove(sweep_done_path(dir_, name), ec);  // torn marker: re-run
      }
    }

    std::error_code ec;
    fs::remove(sweep_err_path(dir_, name), ec);  // stale message from last attempt

    ExperimentOptions attempt_options = options_;
    attempt_options.checkpoint.resume = resume;
    slot.resumed = resume && fs::exists(sweep_ckpt_path(dir_, name));

    // Chaos draw happens before fork so the schedule depends only on
    // chaos_seed and the spawn order, never on child behavior.
    slot.inject_pending = false;
    slot.chaos_killed = slot.chaos_stopped = false;
    if (chaos_left_ != 0 && (farm_.chaos_kill_rate > 0 || farm_.chaos_stop_rate > 0)) {
      const double u = chaos_rng_.uniform_double();
      if (u < farm_.chaos_kill_rate + farm_.chaos_stop_rate) {
        slot.inject_pending = true;
        slot.inject_stop = u >= farm_.chaos_kill_rate;
        slot.inject_at =
            now() + static_cast<std::int64_t>(chaos_rng_.uniform(
                        static_cast<std::uint64_t>(farm_.chaos_delay_ms) + 1));
      }
    }

    const pid_t pid = ::fork();
    if (pid < 0) {
      slot.ready_at = now() + 100;  // EAGAIN etc: try again shortly
      return false;
    }
    if (pid == 0) {
      // Child: run the config and report through the exit-code protocol.
      // _exit skips static destructors the parent still owns.
      ::_exit(worker_main(workload_, configs_[i], attempt_options));
    }
    slot.pid = pid;
    slot.state = Slot::State::Running;
    slot.spawned_at = now();
    slot.deadline = now() + farm_.timeout_ms;
    slot.term_sent = slot.kill_sent = slot.timed_out = false;
    if (slot.resumed) ++report_.stats.resumed_attempts;
    return true;
  }

  void inject_chaos(Slot& slot) {
    if (!slot.inject_pending || slot.term_sent || now() < slot.inject_at) return;
    slot.inject_pending = false;
    const int sig = slot.inject_stop ? SIGSTOP : SIGKILL;
    if (::kill(slot.pid, sig) != 0) return;  // already exited: injection misses
    if (chaos_left_ > 0) --chaos_left_;
    if (slot.inject_stop) {
      slot.chaos_stopped = true;
      ++report_.stats.chaos_stops;
      // A stopped worker makes no progress; pull the watchdog in so the
      // self-test exercises the timeout path without waiting out the full
      // budget.
      slot.deadline = std::min(slot.deadline, now() + farm_.chaos_delay_ms);
    } else {
      slot.chaos_killed = true;
      ++report_.stats.chaos_kills;
    }
  }

  void enforce_watchdog(Slot& slot) {
    if (!slot.term_sent && now() >= slot.deadline) {
      slot.timed_out = true;
      slot.term_sent = true;
      ::kill(slot.pid, SIGCONT);  // a SIGSTOPped worker must wake to see TERM
      ::kill(slot.pid, SIGTERM);
      slot.kill_at = now() + std::min<std::int64_t>(2000, farm_.timeout_ms);
      ++report_.stats.sigterm_escalations;
    } else if (slot.term_sent && !slot.kill_sent && now() >= slot.kill_at) {
      slot.kill_sent = true;
      ::kill(slot.pid, SIGKILL);
      ++report_.stats.sigkill_escalations;
    }
  }

  void reap() {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.state != Slot::State::Running) continue;
      int status = 0;
      const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
      if (r == slot.pid) finalize_attempt(i, status);
    }
  }

  void finalize_attempt(std::size_t i, int status) {
    Slot& slot = slots_[i];
    ConfigOutcome& outcome = report_.outcomes[i];
    const std::string name = configs_[i].name();

    ExitInfo info = decode_wait_status(status);
    info.timed_out = slot.timed_out;
    ExitClass cls = classify_exit(info);

    if (cls == ExitClass::Ok) {
      try {
        outcome.result = ckpt::load_result(sweep_done_path(dir_, name));
      } catch (const std::exception&) {
        cls = ExitClass::Crash;  // exit 0 without a valid marker: off-protocol
      }
    }

    ++slot.attempts_used;
    ++report_.stats.attempts;
    AttemptRecord record;
    record.outcome = cls;
    record.exit_code = info.exited ? info.code : -1;
    record.signal = info.signal;
    record.timed_out = info.timed_out;
    record.resumed = slot.resumed;
    record.chaos_killed = slot.chaos_killed;
    record.chaos_stopped = slot.chaos_stopped;
    record.wall_ms = now() - slot.spawned_at;
    report_.stats.attempt_wall_ms_total += record.wall_ms;

    switch (cls) {
      case ExitClass::Timeout: ++report_.stats.timeouts; break;
      case ExitClass::Crash: ++report_.stats.crashes; break;
      case ExitClass::Transient: ++report_.stats.transients; break;
      default: break;
    }

    outcome.final_outcome = cls;
    slot.pid = -1;
    slot.state = Slot::State::Done;

    if (cls == ExitClass::Ok) {
      outcome.completed = true;
    } else if (draining_) {
      // Whatever ended this attempt, the farm is shutting down: the config is
      // resumable, not condemned.
      outcome.interrupted = true;
      outcome.final_outcome = ExitClass::Interrupted;
    } else if (cls == ExitClass::Permanent) {
      quarantine(i, info, record);
    } else {
      // Transient, Crash, Timeout — and a stray Interrupted (someone TERMed
      // the worker under us): all retryable against the budget.
      if (slot.attempts_used >= 1 + farm_.retries) {
        quarantine(i, info, record);
      } else {
        record.backoff_ms = backoff_delay_ms(farm_, slot.attempts_used, name_salt(name));
        slot.state = Slot::State::Ready;
        slot.ready_at = now() + record.backoff_ms;
        ++report_.stats.retries;
      }
    }
    outcome.attempts.push_back(record);
  }

  /// Aggregates every worker's latest status.json heartbeat plus the
  /// supervisor's own view into <dir>/farm_status.json — the "watch a sweep"
  /// artifact. Wall-gated to the [prof] heartbeat period; a no-op unless
  /// [prof] enabled. Atomic (tmp + rename) and failure-tolerant: liveness
  /// reporting must never fail the sweep.
  void write_farm_status(bool force) {
    if (!options_.prof.enabled) return;
    const std::int64_t t = now();
    if (!force && last_status_ms_ >= 0 && t - last_status_ms_ < options_.prof.heartbeat_period_ms)
      return;
    last_status_ms_ = t;

    std::int64_t running = 0, done = 0, completed = 0, quarantined = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      running += slots_[i].state == Slot::State::Running ? 1 : 0;
      done += slots_[i].state == Slot::State::Done ? 1 : 0;
      completed += report_.outcomes[i].completed ? 1 : 0;
      quarantined += report_.outcomes[i].quarantined ? 1 : 0;
    }

    std::ostringstream os;
    obs::JsonWriter w(os, 2);
    w.begin_object();
    w.field("schema_version", 1);
    w.field("elapsed_ms", t);
    w.field("draining", draining_);
    w.field("configs", report_.stats.configs);
    w.field("running", running);
    w.field("done", done);
    w.field("completed", completed);
    w.field("quarantined", quarantined);
    w.field("attempts", report_.stats.attempts);
    w.field("attempt_wall_ms_total", report_.stats.attempt_wall_ms_total);
    w.key("workers").begin_array();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& slot = slots_[i];
      const std::string name = configs_[i].name();
      w.begin_object();
      w.field("config", name);
      w.field("state", slot.state == Slot::State::Running
                           ? "running"
                           : (slot.state == Slot::State::Done ? status_of_outcome(i) : "ready"));
      w.field("pid", slot.state == Slot::State::Running ? std::int64_t{slot.pid}
                                                        : std::int64_t{-1});
      w.field("attempts", std::int64_t{slot.attempts_used});
      // Re-render the worker's atomic heartbeat through the parser so only a
      // validated object is ever spliced in. Unreadable/unparseable → null.
      std::string beat;
      try {
        const prof::HeartbeatInfo info =
            prof::read_heartbeat_file(sweep_status_path(dir_, name));
        beat = prof::render_heartbeat(info);
        while (!beat.empty() && (beat.back() == '\n' || beat.back() == '\r')) beat.pop_back();
      } catch (const std::exception&) {
        beat.clear();
      }
      if (beat.empty())
        w.key("heartbeat").null_value();
      else
        w.key("heartbeat").raw_value(beat);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';

    const std::string path = (fs::path(dir_) / "farm_status.json").string();
    const std::string tmp = path + ".tmp";
    std::error_code ec;
    {
      std::ofstream f(tmp, std::ios::trunc | std::ios::binary);
      if (!f) return;
      f << os.str();
      if (!f) {
        f.close();
        fs::remove(tmp, ec);
        return;
      }
    }
    fs::rename(tmp, path, ec);
    if (ec) fs::remove(tmp, ec);
  }

  const char* status_of_outcome(std::size_t i) const {
    const ConfigOutcome& o = report_.outcomes[i];
    if (o.completed) return "ok";
    if (o.quarantined) return "quarantined";
    return "interrupted";
  }

  void quarantine(std::size_t i, const ExitInfo& info, const AttemptRecord&) {
    ConfigOutcome& outcome = report_.outcomes[i];
    const std::string name = configs_[i].name();
    outcome.quarantined = true;
    outcome.error = slurp_error(sweep_err_path(dir_, name));
    if (outcome.error.empty()) outcome.error = describe_exit(info);
    log_warn("farm: quarantined " + name + " after " +
             std::to_string(slots_[i].attempts_used) + " attempt(s): " + outcome.error);
  }

  const Workload& workload_;
  const std::vector<ExperimentConfig>& configs_;
  const ExperimentOptions& options_;
  const FarmOptions& farm_;
  const std::string dir_;
  Rng chaos_rng_;
  std::int64_t chaos_left_;  ///< remaining injections; -1 = unlimited
  Clock::time_point start_;
  std::vector<Slot> slots_;
  FarmReport report_;
  bool draining_ = false;
  std::int64_t last_status_ms_ = -1;  ///< farm_status.json wall gate
};

}  // namespace

bool FarmReport::all_ok() const {
  return !interrupted && stats.quarantined == 0 &&
         stats.completed == static_cast<std::int64_t>(outcomes.size());
}

std::vector<ExperimentResult> FarmReport::results() const {
  std::vector<ExperimentResult> out;
  out.reserve(outcomes.size());
  for (const ConfigOutcome& o : outcomes)
    if (o.completed) out.push_back(o.result);
  return out;
}

FarmReport run_farm(const Workload& workload, const std::vector<ExperimentConfig>& configs,
                    const ExperimentOptions& options) {
  options.farm.validate();
  if (options.checkpoint.path.empty())
    throw std::invalid_argument(
        "farm: options.checkpoint.path must name the sweep directory");
  Supervisor supervisor(workload, configs, options);
  return supervisor.run();
}

FarmReport report_from_results(const std::vector<ExperimentResult>& results) {
  FarmReport report;
  report.stats.configs = static_cast<std::int64_t>(results.size());
  report.stats.completed = report.stats.configs;
  report.outcomes.reserve(results.size());
  for (const ExperimentResult& r : results) {
    ConfigOutcome o;
    o.config = r.config;
    o.completed = true;
    o.result = r;
    report.outcomes.push_back(std::move(o));
  }
  return report;
}

}  // namespace dfly::farm
