// Farm liveness: periodic, atomically-replaced status.json heartbeats.
//
// Each sweep worker (process-farm child or thread-pool sweep step) writes a
// one-object status.json next to its checkpoint at every slice boundary, wall
// gated to ProfOptions::heartbeat_period_ms — so a 10^4-config sweep is
// observable mid-flight: current config, sim progress, events/s, RSS and the
// age of the last checkpoint. Writes go through tmp + rename, so a reader (or
// a SIGKILL) always sees a complete JSON object, never a torn one.
//
// The supervisor parses the flat schema back with parse_heartbeat() and
// aggregates every worker's latest beat into <sweep_dir>/farm_status.json
// (src/farm/supervisor.cpp).
#pragma once

#include <cstdint>
#include <string>

namespace dfly::prof {

inline constexpr int kHeartbeatSchemaVersion = 1;

/// One parsed heartbeat; field order mirrors the JSON.
struct HeartbeatInfo {
  int schema_version = 0;
  std::string config;
  std::string state;  ///< "starting" | "running" | "done" | "interrupted"
  std::int64_t pid = 0;
  std::int64_t wall_ms = 0;        ///< wall time since the run started
  std::int64_t sim_ns = 0;         ///< current simulation clock
  std::int64_t events = 0;         ///< events processed so far
  double events_per_sec = 0.0;     ///< cumulative wall rate
  std::int64_t rss_bytes = 0;      ///< current resident set (0 if unreadable)
  std::int64_t last_ckpt_age_ms = -1;  ///< wall ms since the last snapshot; -1 = none yet
  std::int64_t slices = 0;         ///< checkpoint slices completed
};

/// Current resident set size in bytes from /proc/self/statm; 0 when the
/// proc file is unavailable (non-Linux or restricted).
std::int64_t read_rss_bytes();

/// Renders `info` as the status.json document (pretty-printed, trailing
/// newline). Exposed for tests; writers use HeartbeatWriter.
std::string render_heartbeat(const HeartbeatInfo& info);

/// Parses a status.json document produced by render_heartbeat. Throws
/// std::runtime_error on missing/malformed required fields. The parser is a
/// scanner for the flat schema above, not a general JSON parser.
HeartbeatInfo parse_heartbeat(const std::string& text);

/// File variant; throws std::runtime_error when unreadable.
HeartbeatInfo read_heartbeat_file(const std::string& path);

/// Wall-gated atomic writer. beat() is cheap when called more often than the
/// period: one clock read and a branch.
class HeartbeatWriter {
 public:
  /// Writes to `path` (tmp + rename) at most once per `period_ms`, except for
  /// forced beats. An empty path disables the writer entirely.
  HeartbeatWriter(std::string path, std::int64_t period_ms);

  bool enabled() const { return !path_.empty(); }

  /// Writes `info` if the period elapsed (or `force`). Fills pid/rss and the
  /// wall clock fields the caller cannot know; returns true if a write
  /// happened. I/O failures are swallowed — liveness reporting must never
  /// fail a run.
  bool beat(HeartbeatInfo info, bool force = false);

  /// Marks the instant of a checkpoint save; subsequent beats report the age.
  void note_checkpoint();

 private:
  std::string path_;
  std::int64_t period_ns_;
  std::int64_t started_ns_;
  std::int64_t last_write_ns_ = 0;
  std::int64_t last_ckpt_ns_ = -1;
};

}  // namespace dfly::prof
