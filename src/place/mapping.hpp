// Task mapping: reordering ranks over an already-allocated node set.
//
// The paper's future work ("we plan to investigate task mapping for
// diversified workloads"): once the scheduler has picked the nodes
// (Placement), the runtime may still permute which rank lands on which node.
// For neighbor-heavy applications this changes how much rank-adjacent
// communication stays near in the machine, independent of the allocation
// shape.
#pragma once

#include "place/placement.hpp"
#include "topo/coordinates.hpp"
#include "util/rng.hpp"

namespace dfly {

enum class MappingKind {
  Linear,        ///< rank i -> i-th allocated node in node-id order (default)
  Random,        ///< random permutation of ranks over the allocated nodes
  GroupBlocked,  ///< consecutive ranks fill one group's nodes before the next
  RouterSpread,  ///< consecutive ranks round-robin across the allocated routers
};

const char* to_string(MappingKind kind);

inline constexpr MappingKind kAllMappings[] = {MappingKind::Linear, MappingKind::Random,
                                               MappingKind::GroupBlocked,
                                               MappingKind::RouterSpread};

/// Returns a placement over the same node set with ranks remapped according
/// to `kind`. Linear sorts by node id; Random consumes `rng`.
Placement apply_mapping(const Placement& placement, MappingKind kind, const TopoParams& params,
                        Rng& rng);

}  // namespace dfly
