// Gathers the study's four metric families (paper §III-E) from a finished
// simulation into plain sample vectors:
//   - communication time per rank (ms)
//   - average hops per rank
//   - traffic per local / global channel of the routers serving the app (MB)
//   - saturation time per local / global channel of those routers (ms)
#pragma once

#include <vector>

#include "net/network.hpp"
#include "place/placement.hpp"
#include "replay/replay.hpp"

namespace dfly {

struct RunMetrics {
  std::vector<double> comm_time_ms;          ///< per rank
  std::vector<double> avg_hops;              ///< per rank
  std::vector<double> local_traffic_mb;      ///< per local channel, serving routers
  std::vector<double> global_traffic_mb;     ///< per global channel, serving routers
  std::vector<double> local_saturation_ms;   ///< per local channel, serving routers
  std::vector<double> global_saturation_ms;  ///< per global channel, serving routers

  double makespan_ms = 0;      ///< finish time of the slowest rank
  std::uint64_t events = 0;    ///< engine events processed
  std::uint64_t chunks = 0;    ///< chunk-hops forwarded
  Bytes bytes_delivered = 0;
  SchedulerStats scheduler;    ///< calendar-queue occupancy/resize counters

  double max_comm_ms() const;
  double median_comm_ms() const;
};

/// Collects metrics after the engine has drained. Channel populations are the
/// local/global channels of routers serving at least one node of `placement`
/// (the population the paper plots; §IV-C states it explicitly).
RunMetrics collect_metrics(const Network& network, const ReplayEngine& replay,
                           const Placement& placement, const Engine& engine);

}  // namespace dfly
