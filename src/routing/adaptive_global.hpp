// Adaptive routing with global congestion knowledge (UGAL-G).
//
// Identical candidate generation to AdaptiveRouting (2 minimal + 2 Valiant),
// but each candidate is scored by the *bottleneck* queue along its entire
// path rather than the source router's local view. Physically unrealizable
// (no router knows remote queues instantaneously) but a useful upper bound on
// what adaptive routing could achieve — included for the ablation study.
#pragma once

#include "routing/algorithm.hpp"
#include "routing/router_table.hpp"

namespace dfly {

class AdaptiveGlobalRouting : public RoutingAlgorithm {
 public:
  explicit AdaptiveGlobalRouting(const DragonflyTopology& topo, Bytes bias_bytes = 2048,
                                 double nonminimal_penalty = 2.0);

  Route compute(NodeId src, NodeId dst, const CongestionView& congestion,
                Rng& rng) const override;
  std::string name() const override { return "adaptive-global"; }
  void on_topology_changed() override { table_.refresh(); }
  bool uses_remote_congestion() const override { return true; }

 private:
  double score(const Route& route, const CongestionView& congestion, bool minimal) const;

  MinimalPathTable table_;
  Bytes bias_bytes_;
  double nonminimal_penalty_;
};

}  // namespace dfly
