#include "trace/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

namespace dfly {

const char* to_string(OpKind kind) {
  switch (kind) {
    case OpKind::Send: return "send";
    case OpKind::Isend: return "isend";
    case OpKind::Recv: return "recv";
    case OpKind::Irecv: return "irecv";
    case OpKind::WaitAll: return "waitall";
    case OpKind::Barrier: return "barrier";
    case OpKind::Delay: return "delay";
  }
  return "?";
}

namespace {

bool is_send(OpKind k) { return k == OpKind::Send || k == OpKind::Isend; }
bool is_recv(OpKind k) { return k == OpKind::Recv || k == OpKind::Irecv; }

}  // namespace

Bytes Trace::total_send_bytes() const {
  Bytes total = 0;
  for (const auto& rank_ops : ops_)
    for (const TraceOp& op : rank_ops)
      if (is_send(op.kind)) total += op.bytes;
  return total;
}

std::size_t Trace::total_ops() const {
  std::size_t total = 0;
  for (const auto& rank_ops : ops_) total += rank_ops.size();
  return total;
}

void Trace::scale_message_sizes(double factor) {
  if (factor <= 0) throw std::invalid_argument("scale factor must be positive");
  for (auto& rank_ops : ops_) {
    for (TraceOp& op : rank_ops) {
      if (is_send(op.kind) || is_recv(op.kind)) {
        const double scaled = std::round(static_cast<double>(op.bytes) * factor);
        op.bytes = std::max<Bytes>(1, static_cast<Bytes>(scaled));
      }
    }
  }
}

void Trace::validate() const {
  const int n = ranks();
  // Multiset of (src, dst, tag, bytes) for sends minus recvs must cancel.
  std::map<std::tuple<int, int, int, Bytes>, std::int64_t> balance;
  for (int r = 0; r < n; ++r) {
    for (const TraceOp& op : ops_[r]) {
      if (is_send(op.kind) || is_recv(op.kind)) {
        if (op.peer < 0 || op.peer >= n)
          throw std::runtime_error("trace: peer out of range on rank " + std::to_string(r));
        if (op.peer == r) throw std::runtime_error("trace: self-message on rank " + std::to_string(r));
        if (op.bytes <= 0) throw std::runtime_error("trace: non-positive message size");
      }
      if (is_send(op.kind)) balance[{r, op.peer, op.tag, op.bytes}] += 1;
      if (is_recv(op.kind)) balance[{op.peer, r, op.tag, op.bytes}] -= 1;
    }
  }
  for (const auto& [key, count] : balance) {
    if (count != 0)
      throw std::runtime_error("trace: unmatched send/recv between ranks " +
                               std::to_string(std::get<0>(key)) + " and " +
                               std::to_string(std::get<1>(key)));
  }
}

}  // namespace dfly
