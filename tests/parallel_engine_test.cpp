// Differential serial-vs-parallel suite for the sharded engine (DESIGN.md
// §10): a run with [engine] threads=N (N >= 2 workers) must reproduce the
// threads=1 serial-sharded oracle byte-for-byte — end-of-run metrics, the
// counter timeline, the traffic heatmap and the sampled chunk trace — across
// the placement x routing matrix, under fault injection, and through a
// checkpoint written at one thread count and resumed at another. Plus the
// bugfix-sweep regressions that ride along: the bounded Valiant intermediate
// picker, the 32-bit channel-id overflow guard, and counter-based RNG
// streams.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "routing/valiant.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) { return ::testing::TempDir() + "/" + name; }

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
}

Workload par_workload() { return {"ring", make_ring_trace(24, 32 * units::kKiB, 2)}; }

ExperimentOptions par_options(const std::string& telemetry_dir, int threads) {
  ExperimentOptions o;
  o.topo = TopoParams::tiny();
  o.seed = 11;
  o.threads = threads;
  o.max_events = 100'000'000;
  o.telemetry.enabled = true;
  o.telemetry.sample_rate = 0.05;
  o.telemetry.snapshot_interval = 20 * units::kMicrosecond;
  o.telemetry.out_dir = temp_path(telemetry_dir);
  return o;
}

void add_faults(ExperimentOptions& o) {
  const DragonflyTopology topo(o.topo);
  Rng rng(5);
  o.faults = random_global_fault_schedule(topo, 0.25, 20 * units::kMicrosecond, rng);
  ASSERT_FALSE(o.faults.empty());
  const FaultEvent& f = o.faults.front();
  o.faults.push_back(FaultEvent::global_up(60 * units::kMicrosecond, f.a, f.b, f.index));
}

/// Runs `config` at the oracle thread count (1) and at each count in
/// `threads`, then requires every exported artifact to match byte-for-byte.
void expect_byte_equal_across_threads(const ExperimentConfig& config, const std::string& tag,
                                      bool with_faults = false,
                                      std::vector<int> threads = {2, 4}) {
  const Workload workload = par_workload();

  ExperimentOptions oracle_opts = par_options(tag + "-t1", 1);
  if (with_faults) add_faults(oracle_opts);
  const ExperimentResult oracle = run_experiment(workload, config, oracle_opts);
  ASSERT_TRUE(oracle.conservation_ok);
  ASSERT_FALSE(oracle.stalled);
  ASSERT_GT(oracle.metrics.events, 0u);
  if (with_faults) {
    ASSERT_GT(oracle.bytes_retransmitted, 0);
  }

  for (const int n : threads) {
    ExperimentOptions opts = par_options(tag + "-t" + std::to_string(n), n);
    if (with_faults) add_faults(opts);
    const ExperimentResult result = run_experiment(workload, config, opts);
    EXPECT_EQ(result.metrics.events, oracle.metrics.events) << "threads=" << n;
    EXPECT_EQ(result.metrics.makespan_ms, oracle.metrics.makespan_ms) << "threads=" << n;
    EXPECT_EQ(result.metrics.comm_time_ms, oracle.metrics.comm_time_ms) << "threads=" << n;
    EXPECT_EQ(result.bytes_dropped, oracle.bytes_dropped) << "threads=" << n;
    EXPECT_EQ(result.bytes_retransmitted, oracle.bytes_retransmitted) << "threads=" << n;
    for (const char* artifact : {"metrics.json", "counters.jsonl", "heatmap.csv", "trace.json"}) {
      const std::string a =
          slurp(oracle_opts.telemetry.out_dir + "/" + config.name() + "/" + artifact);
      const std::string b = slurp(opts.telemetry.out_dir + "/" + config.name() + "/" + artifact);
      ASSERT_FALSE(a.empty()) << artifact;
      EXPECT_EQ(a, b) << artifact << " differs at threads=" << n << " (config "
                      << config.name() << ")";
    }
  }
}

// --- the placement x routing differential matrix -------------------------

TEST(ParallelEquivalence, ContiguousMinimalIsByteExact) {
  expect_byte_equal_across_threads({PlacementKind::Contiguous, RoutingKind::Minimal}, "par-cm");
}

TEST(ParallelEquivalence, RandomNodeAdaptiveIsByteExact) {
  expect_byte_equal_across_threads({PlacementKind::RandomNode, RoutingKind::Adaptive}, "par-ra");
}

TEST(ParallelEquivalence, ContiguousValiantIsByteExact) {
  expect_byte_equal_across_threads({PlacementKind::Contiguous, RoutingKind::Valiant}, "par-cv");
}

// UGAL-G reads congestion along whole candidate paths — state no shard owns —
// so the network declines to shard and every event stays on the global lane.
// The run must still be byte-exact at any worker count.
TEST(ParallelEquivalence, RemoteCongestionRoutingStaysExactViaSerialFallback) {
  expect_byte_equal_across_threads({PlacementKind::Contiguous, RoutingKind::AdaptiveGlobal},
                                   "par-cg", /*with_faults=*/false, {2});
}

TEST(ParallelEquivalence, FaultInjectionRunIsByteExact) {
  expect_byte_equal_across_threads({PlacementKind::RandomNode, RoutingKind::Adaptive}, "par-flt",
                                   /*with_faults=*/true, {2});
}

// --- checkpoint/resume under parallelism ---------------------------------

TEST(ParallelEquivalence, CheckpointWrittenAtOneThreadCountResumesAtAnother) {
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Adaptive};
  const Workload workload = par_workload();

  ExperimentOptions golden_opts = par_options("par-ck-golden", 4);
  const ExperimentResult golden = run_experiment(workload, config, golden_opts);
  const SimTime makespan = static_cast<SimTime>(golden.metrics.makespan_ms * 1e6);
  ASSERT_GT(makespan, 0);

  // Interrupt at threads=2 past the midpoint, resume at threads=4: the
  // snapshot layout is lane-structured but thread-count independent.
  const std::string snapshot = temp_path("par-ck.ckpt");
  ExperimentOptions interrupted_opts = par_options("par-ck-resumed", 2);
  interrupted_opts.checkpoint.interval = makespan / 6 > 0 ? makespan / 6 : 1;
  interrupted_opts.checkpoint.path = snapshot;
  interrupted_opts.checkpoint.stop_after = makespan / 2;
  const ExperimentResult partial = run_experiment(workload, config, interrupted_opts);
  ASSERT_TRUE(partial.stopped_at_checkpoint);
  ASSERT_TRUE(fs::exists(snapshot));

  ExperimentOptions resumed_opts = interrupted_opts;
  resumed_opts.threads = 4;
  resumed_opts.checkpoint.resume = true;
  resumed_opts.checkpoint.stop_after = 0;
  const ExperimentResult resumed = run_experiment(workload, config, resumed_opts);
  EXPECT_EQ(resumed.metrics.events, golden.metrics.events);
  EXPECT_EQ(resumed.metrics.makespan_ms, golden.metrics.makespan_ms);
  EXPECT_EQ(resumed.metrics.comm_time_ms, golden.metrics.comm_time_ms);
  for (const char* artifact : {"metrics.json", "counters.jsonl", "heatmap.csv", "trace.json"}) {
    const std::string g =
        slurp(golden_opts.telemetry.out_dir + "/" + config.name() + "/" + artifact);
    const std::string r =
        slurp(resumed_opts.telemetry.out_dir + "/" + config.name() + "/" + artifact);
    ASSERT_FALSE(g.empty()) << artifact;
    EXPECT_EQ(g, r) << artifact << " differs after cross-thread-count resume";
  }
  std::remove(snapshot.c_str());
}

TEST(ParallelEquivalence, ShardedSnapshotIsRejectedBySerialEngine) {
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};
  const Workload workload = par_workload();
  ExperimentOptions opts = par_options("par-mode", 2);
  const ExperimentResult probe = run_experiment(workload, config, opts);
  const SimTime makespan = static_cast<SimTime>(probe.metrics.makespan_ms * 1e6);

  const std::string snapshot = temp_path("par-mode.ckpt");
  ExperimentOptions interrupted = par_options("par-mode-int", 2);
  interrupted.checkpoint.interval = makespan / 4 > 0 ? makespan / 4 : 1;
  interrupted.checkpoint.path = snapshot;
  interrupted.checkpoint.stop_after = makespan / 3;
  ASSERT_TRUE(run_experiment(workload, config, interrupted).stopped_at_checkpoint);

  ExperimentOptions wrong_mode = interrupted;
  wrong_mode.threads = 0;  // classic serial engine cannot adopt a sharded queue
  wrong_mode.checkpoint.resume = true;
  wrong_mode.checkpoint.stop_after = 0;
  EXPECT_THROW(run_experiment(workload, config, wrong_mode), std::runtime_error);
  std::remove(snapshot.c_str());
}

// --- config plumbing -----------------------------------------------------

TEST(ParallelEquivalence, EngineThreadsRoundTripsThroughConfig) {
  ExperimentOptions o;
  o.threads = 3;
  const std::string text = render_config(o);
  EXPECT_NE(text.find("[engine]"), std::string::npos);
  std::istringstream is(text);
  const ExperimentOptions parsed = parse_config(is, ExperimentOptions{});
  EXPECT_EQ(parsed.threads, 3);
}

TEST(ParallelEquivalence, NegativeEngineThreadsIsRejected) {
  std::istringstream is("[engine]\nthreads = -3\n");
  EXPECT_THROW(parse_config(is, ExperimentOptions{}), std::runtime_error);
}

// --- bugfix sweep: bounded Valiant intermediate picker -------------------

TEST(ValiantIntermediate, DegenerateTopologiesTerminateWithMinimalFallback) {
  Rng rng(7);
  // Formerly an infinite rejection loop: with <= 2 routers every draw hits an
  // endpoint. Now it degenerates to the minimal route (via == r_dst).
  EXPECT_EQ(pick_valiant_intermediate(1, 0, 0, rng), 0);
  EXPECT_EQ(pick_valiant_intermediate(2, 0, 1, rng), 1);
  EXPECT_EQ(pick_valiant_intermediate(2, 1, 0, rng), 0);
}

TEST(ValiantIntermediate, SmallestRealTopologyAlwaysPicksTheThirdParty) {
  // With 3 routers exactly one valid intermediate exists; the bounded picker
  // must find it (by draw or by the deterministic fallback scan), never spin.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    Rng rng(seed);
    const RouterId via = pick_valiant_intermediate(3, 0, 1, rng);
    EXPECT_EQ(via, 2) << "seed " << seed;
  }
}

TEST(ValiantIntermediate, PicksExcludeEndpointsAndCoverTheTable) {
  Rng rng(13);
  std::set<RouterId> seen;
  for (int i = 0; i < 512; ++i) {
    const RouterId via = pick_valiant_intermediate(24, 3, 17, rng);
    ASSERT_NE(via, 3);
    ASSERT_NE(via, 17);
    ASSERT_GE(via, 0);
    ASSERT_LT(via, 24);
    seen.insert(via);
  }
  EXPECT_GT(seen.size(), 16u);  // still samples broadly, not a point mass
}

// --- bugfix sweep: 32-bit channel-id overflow guard ----------------------

TEST(TopoParamsValidate, RejectsChannelSpaceOverflowing32BitIds) {
  // channel id = router * ports_per_router + port must fit an int32; the
  // guard computes in 64-bit so the probe values themselves cannot overflow.
  TopoParams p;
  p.groups = 2;
  p.rows = 10'000;
  p.cols = 10'000;
  p.nodes_per_router = 1;
  p.global_ports_per_router = 1;
  p.chassis_per_cabinet = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(TopoParamsValidate, AcceptsChannelSpaceJustUnderTheBound) {
  TopoParams p;
  p.groups = 2;
  p.rows = 1;
  p.cols = 16'384;  // 32768 routers x 16385 ports ~= 5.4e8 < 2^31 - 1
  p.nodes_per_router = 1;
  p.global_ports_per_router = 1;
  p.chassis_per_cabinet = 1;
  EXPECT_NO_THROW(p.validate());
}

// --- bugfix sweep: counter-based RNG streams -----------------------------

TEST(RngStream, IsDeterministicAndDoesNotAdvanceTheParent) {
  Rng parent(42);
  const auto before = parent.state();
  Rng a = parent.stream(3);
  Rng b = parent.stream(3);
  EXPECT_EQ(parent.state(), before) << "stream() must not mutate the parent";
  EXPECT_EQ(a.next(), b.next()) << "same index must yield the same stream";
}

TEST(RngStream, DistinctIndicesDecorrelate) {
  Rng parent(42);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 64; ++i) firsts.insert(parent.stream(i).next());
  EXPECT_EQ(firsts.size(), 64u);
  // And streams differ from the parent's own output.
  Rng parent2(42);
  EXPECT_NE(parent.stream(0).next(), parent2.next());
}

TEST(RngStream, DiffersAcrossParents) {
  EXPECT_NE(Rng(1).stream(5).next(), Rng(2).stream(5).next());
}

}  // namespace
}  // namespace dfly
