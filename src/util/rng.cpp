#include "util/rng.hpp"

#include <cassert>

namespace dfly {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
  // xoshiro256** requires a nonzero state; SplitMix64 output of any seed is
  // astronomically unlikely to be all zero, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : uniform(span));
}

double Rng::uniform_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  return lo + (hi - lo) * uniform_double();
}

bool Rng::bernoulli(double p) { return uniform_double() < p; }

Rng Rng::fork(std::uint64_t tag) {
  // Mix the parent's next output with the tag through SplitMix64 so that
  // forked streams do not overlap the parent sequence.
  SplitMix64 sm(next() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  return Rng(sm.next());
}

Rng Rng::stream(std::uint64_t index) const {
  // Fold all four state words with the index through SplitMix64 so streams of
  // distinct indices (and the parent itself) are statistically independent.
  SplitMix64 sm(s_[0] ^ rotl(s_[1], 13) ^ rotl(s_[2], 29) ^ rotl(s_[3], 47) ^
                (index * 0xd1342543de82ef95ULL + 0x9e3779b97f4a7c15ULL));
  sm.next();  // decorrelate from the raw state fold
  return Rng(sm.next());
}

}  // namespace dfly
