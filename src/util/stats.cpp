#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace dfly {

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

double StreamingStats::min() const { return count_ ? min_ : 0.0; }
double StreamingStats::max() const { return count_ ? max_ : 0.0; }
double StreamingStats::mean() const { return count_ ? mean_ : 0.0; }

double StreamingStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

namespace {

double sorted_percentile(const std::vector<double>& s, double p) {
  if (s.empty()) return 0.0;
  if (s.size() == 1) return s.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos = clamped / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return s[lo] + (s[hi] - s[lo]) * frac;
}

}  // namespace

double percentile(std::span<const double> samples, double p) {
  std::vector<double> s(samples.begin(), samples.end());
  std::sort(s.begin(), s.end());
  return sorted_percentile(s, p);
}

BoxStats box_stats(std::span<const double> samples) {
  BoxStats b;
  b.count = samples.size();
  if (samples.empty()) return b;
  std::vector<double> s(samples.begin(), samples.end());
  std::sort(s.begin(), s.end());
  b.min = s.front();
  b.max = s.back();
  b.q1 = sorted_percentile(s, 25);
  b.median = sorted_percentile(s, 50);
  b.q3 = sorted_percentile(s, 75);
  return b;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::quantile(double f) const {
  return sorted_percentile(sorted_, std::clamp(f, 0.0, 1.0) * 100.0);
}

double Cdf::fraction_at_or_below(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::string format_box(const BoxStats& b, int precision) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%.*f / %.*f / %.*f / %.*f / %.*f", precision, b.min,
                precision, b.q1, precision, b.median, precision, b.q3, precision, b.max);
  return buf;
}

}  // namespace dfly
