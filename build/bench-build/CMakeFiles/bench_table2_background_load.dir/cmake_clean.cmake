file(REMOVE_RECURSE
  "../bench/bench_table2_background_load"
  "../bench/bench_table2_background_load.pdb"
  "CMakeFiles/bench_table2_background_load.dir/bench_table2_background_load.cpp.o"
  "CMakeFiles/bench_table2_background_load.dir/bench_table2_background_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_background_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
