// Discrete-event simulation engine: sequential by default, optionally
// sharded into per-dragonfly-group logical processes with conservative
// (lookahead-based) parallel synchronization.
//
// Design notes:
//  * Events carry a small POD payload and a handler pointer; dispatch is one
//    virtual call into the owning subsystem, which switches on `kind`. This
//    avoids a std::function allocation per event — the simulator schedules
//    tens of millions of events per experiment.
//  * Ties in time are broken by a monotonically increasing sequence number so
//    execution order (and therefore every simulation result) is fully
//    deterministic for a given seed.
//  * The pending-event set lives in a calendar queue (sim/event_queue.hpp):
//    O(1) amortised scheduling for the near-monotonic event stream, with a
//    heap-backed overflow tier for far-future timers.
//  * Sharded mode (enable_sharding) gives every dragonfly group its own lane
//    — a private calendar queue, sequence counter and outbox — plus one
//    global lane for handlers that touch cross-group state. Shard lanes run
//    in parallel inside lookahead-bounded batches; global events run alone,
//    between batches, with every shard parked. The sequence number embeds the
//    scheduling lane, so the total dispatch order per lane is a pure function
//    of the configuration — a run with threads=N is bit-identical to the
//    threads=1 run of the same sharded configuration (DESIGN.md §10).
//  * threads=0 (the default, no enable_sharding call) keeps the original
//    single-queue engine, bit-identical to the pre-sharding behaviour.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace dfly {

namespace prof {
class Profiler;
}  // namespace prof

/// Configuration for the sharded parallel engine (DESIGN.md §10).
struct ShardingOptions {
  int shards = 0;         ///< shard lanes; one per dragonfly group
  SimTime lookahead = 0;  ///< conservative bound: min cross-shard latency (ns)
  int threads = 1;        ///< worker threads incl. the coordinator (>= 1)
};

class Engine {
 public:
  Engine() = default;
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Switches the engine into sharded mode. Must be called on a fresh engine
  /// (no events scheduled, nothing processed). Spawns threads-1 helper
  /// workers; threads=1 runs the same sharded semantics serially and is the
  /// byte-equality oracle for threads>=2.
  void enable_sharding(const ShardingOptions& opts);
  bool sharded() const { return !lanes_.empty(); }

  /// Lane count: shards + 1 (global lane) when sharded, 1 otherwise.
  /// Subsystems size their per-lane state (counters, RNG streams, chunk
  /// arenas) from this.
  int lanes() const { return sharded() ? static_cast<int>(lanes_.size()) : 1; }
  /// Index of the global lane (== shard count); 0 when unsharded.
  int global_lane() const { return sharded() ? static_cast<int>(lanes_.size()) - 1 : 0; }
  /// The lane whose event is currently dispatching on this thread; the global
  /// lane outside dispatch (setup, global handlers), 0 when unsharded.
  int current_lane() const;
  /// Events dispatched by one lane (sharded mode; used by the bench's
  /// load-balance model).
  std::uint64_t lane_processed(int lane) const;

  /// Invoked by the coordinator at every safe-time barrier (after the shard
  /// outboxes merge, before the next batch). The network drains its deferred
  /// cross-lane chunk frees here, in deterministic lane order.
  void set_quiesce_hook(std::function<void()> hook) { quiesce_hook_ = std::move(hook); }

  /// Attaches a wall-clock profiler (src/prof/, DESIGN.md §11): dispatch
  /// times, per-lane busy/barrier-wait/flush phases. The profiler's lane
  /// count must match lanes(); nullptr detaches. Pure observability — the
  /// hooks read the monotonic clock and write profiler-owned accumulators
  /// only, so attaching one never changes simulation behaviour.
  void set_profiler(prof::Profiler* p);
  prof::Profiler* profiler() const { return profiler_; }

  /// Schedules `payload` for delivery to `handler` at absolute time `when`.
  /// `when` must not precede the current time. In sharded mode the event is
  /// routed to handler->event_shard(payload)'s lane; cross-shard sends from a
  /// shard must land strictly after the current batch bound (guaranteed by
  /// the lookahead = the global-link latency).
  void schedule(SimTime when, EventHandler* handler, EventPayload payload);

  /// Convenience: schedule relative to the dispatching event's time.
  void schedule_after(SimTime delay, EventHandler* handler, EventPayload payload) {
    schedule(event_now() + delay, handler, payload);
  }

  /// Runs until no events remain. Returns the final simulation time.
  SimTime run();

  /// Runs until the queue drains or time would exceed `deadline`; events at
  /// t > deadline stay queued. Returns current time.
  SimTime run_until(SimTime deadline);

  /// Like run_until(), but never advances now() past the last dispatched
  /// event, even when the queue drains. A run fully consumed through
  /// run_slice() calls therefore ends at exactly the same now() as one
  /// consumed by run() — checkpoint slicing depends on this for bit-exact
  /// resume (time-normalized outputs read the final clock).
  SimTime run_slice(SimTime deadline);

  SimTime now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }
  std::size_t pending() const;

  /// Aborts run() after this many further events (0 = unlimited); used by
  /// tests as a deadlock/livelock watchdog. In sharded mode the limit is
  /// checked at batch boundaries, so the overshoot is deterministic but may
  /// exceed the limit by up to one batch.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }
  bool hit_event_limit() const { return hit_limit_; }

  /// Makes run()/run_until() return before dispatching any further event.
  /// Callable from inside an event handler (the HealthMonitor uses this to
  /// halt a stalled simulation while its state is still inspectable). In
  /// sharded mode it is honoured at the next batch boundary.
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  /// Occupancy and resize counters of the calendar scheduler (reported by
  /// HealthMonitor and metrics/); summed across lanes in sharded mode.
  const SchedulerStats& scheduler_stats() const;

  /// Checkpoint support (src/ckpt/): serializes the clock, sequence
  /// counter(s), processed count(s) and the complete pending-event set,
  /// preceded by a mode byte (0 = serial, 1 = sharded; a snapshot only loads
  /// into an engine in the same mode). Sharded state is saved per lane and is
  /// independent of the thread count, so a run checkpointed at threads=2
  /// resumes bit-exactly at threads=4 (or 1). Handlers are mapped to stable
  /// small ids by `id_of` / `handler_of` (the checkpoint layer owns the
  /// registry). load_state requires a freshly constructed (but possibly
  /// already sharding-enabled) engine. Sharded saves are only taken at
  /// quiesce points (run_slice boundaries), where every outbox is empty.
  void save_state(ckpt::Writer& w,
                  const std::function<std::uint32_t(EventHandler*)>& id_of) const;
  void load_state(ckpt::Reader& r,
                  const std::function<EventHandler*(std::uint32_t)>& handler_of);

 private:
  /// One logical process: a dragonfly group's private queue + counters, or
  /// the global lane (index == shard count). alignas keeps lanes on separate
  /// cache lines — each is written by exactly one worker per batch.
  struct alignas(64) Lane {
    CalendarEventQueue queue;
    std::uint64_t counter = 0;    ///< events scheduled BY this lane
    std::uint64_t processed = 0;  ///< events dispatched ON this lane
    SimTime last_time = 0;        ///< time of this lane's last dispatched event
    /// Cross-shard sends staged during a batch, released at the barrier.
    std::vector<std::pair<int, QueuedEvent>> outbox;
  };

  /// Per-thread dispatch context, live while a worker executes one lane of
  /// one batch (or the coordinator executes a global event).
  struct BatchCtx {
    Engine* engine;
    int lane;
    SimTime bound;  ///< batch safe-time bound (max SimTime for global events)
    SimTime now;    ///< time of the event currently dispatching
  };
  static thread_local BatchCtx* tls_batch_;

  bool step();
  SimTime run_slice_serial(SimTime deadline);
  SimTime run_slice_sharded(SimTime deadline);
  void run_batch(SimTime bound);
  void run_lane(int lane, SimTime bound);
  void work_lanes();
  void worker_main();
  void merge_outboxes();
  SimTime event_now() const;

  static std::uint64_t pack_seq(int lane, std::uint64_t counter) {
    return (static_cast<std::uint64_t>(lane) << 48) | counter;
  }

  // --- serial (unsharded) state ---
  CalendarEventQueue queue_;
  std::uint64_t seq_ = 0;

  // --- shared state ---
  SimTime now_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t event_limit_ = 0;
  bool hit_limit_ = false;
  bool stop_requested_ = false;
  mutable SchedulerStats agg_stats_;
  prof::Profiler* profiler_ = nullptr;

  // --- sharded state (empty/idle when unsharded) ---
  std::vector<Lane> lanes_;  ///< shards + 1 (last = global lane)
  SimTime lookahead_ = 0;
  int threads_ = 1;
  std::function<void()> quiesce_hook_;
  std::vector<int> active_;  ///< lane indices participating in this batch
  SimTime batch_bound_ = 0;
  // Worker pool: threads_-1 helpers; condvar generation start, atomic lane
  // grab, condvar done-count. threads_=1 touches none of this.
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int done_workers_ = 0;
  bool shutdown_ = false;
  std::atomic<int> next_active_{0};
};

}  // namespace dfly
