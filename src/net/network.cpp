#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "ckpt/snapshot_io.hpp"
#include "obs/trace.hpp"
#include "prof/profiler.hpp"

namespace dfly {

const char* to_string(Arbitration policy) {
  switch (policy) {
    case Arbitration::FirstSendable: return "first-sendable";
    case Arbitration::RoundRobinVc: return "round-robin-vc";
  }
  return "?";
}

void NetworkParams::validate() const {
  if (chunk_bytes <= 0) throw std::invalid_argument("chunk_bytes must be positive");
  if (terminal_vc_buffer < chunk_bytes || local_vc_buffer < chunk_bytes ||
      global_vc_buffer < chunk_bytes)
    throw std::invalid_argument("every VC buffer must hold at least one chunk");
  if (terminal_bandwidth_gib <= 0 || local_bandwidth_gib <= 0 || global_bandwidth_gib <= 0)
    throw std::invalid_argument("bandwidths must be positive");
  if (retransmit_timeout <= 0) throw std::invalid_argument("retransmit_timeout must be positive");
  if (retransmit_max_backoff < 0 || retransmit_max_backoff > 32)
    throw std::invalid_argument("retransmit_max_backoff must be in [0, 32]");
}

Network::Network(Engine& engine, const DragonflyTopology& topo, const NetworkParams& params,
                 const RoutingAlgorithm& routing, Rng rng, MessageSink* sink)
    : engine_(engine), topo_(topo), params_(params), routing_(routing), rng_(rng), sink_(sink) {
  params_.validate();
  const int routers = topo_.params().total_routers();
  routers_.reserve(routers);
  for (RouterId r = 0; r < routers; ++r) routers_.emplace_back(topo_, params_, r, kMaxRouteHops);
  nics_.resize(topo_.params().total_nodes());
  for (Nic& nic : nics_) nic.credits = params_.terminal_vc_buffer;
  hop_stats_.resize(nics_.size());
  lane_stats_.resize(1);
}

void Network::enable_sharding(SimTime lookahead) {
  if (!engine_.sharded())
    throw std::logic_error("network: enable_sharding requires a sharded engine");
  if (engine_.lanes() != topo_.params().groups + 1)
    throw std::logic_error("network: engine shard count must equal the group count");
  if (bytes_injected() != 0 || chunks_.capacity() != 0)
    throw std::logic_error("network: enable_sharding requires an idle network");
  // UGAL-G scores congestion along the entire candidate path — state no
  // single group owns. Leaving every event on the global lane (the
  // EventHandler default) keeps such runs on the serial dispatch path, which
  // under a sharded engine executes in exactly the legacy (time, seq) order.
  if (routing_.uses_remote_congestion()) return;
  sharded_ = true;
  lookahead_ = lookahead;
  const int lanes = engine_.lanes();
  chunks_.set_lanes(lanes);
  lane_stats_ = std::vector<LaneStats>(static_cast<std::size_t>(lanes));
  deferred_frees_.assign(static_cast<std::size_t>(lanes), {});
  lane_rngs_.clear();
  lane_rngs_.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) lane_rngs_.push_back(rng_.stream(static_cast<std::uint64_t>(i)));
  engine_.set_quiesce_hook([this] { drain_deferred_frees(); });
}

int Network::event_shard(const EventPayload& payload) const {
  if (!sharded_) return kGlobalShard;
  const Coordinates& coords = topo_.coords();
  switch (payload.kind) {
    case kChunkArrive:
      return coords.group_of_router(static_cast<RouterId>(payload.b));
    case kPortFree:
    case kCreditToRouter:
      return coords.group_of_router(topo_.channel_router(static_cast<int>(payload.b)));
    case kCreditToNic:
    case kNicFree:
      return coords.group_of_node(static_cast<NodeId>(payload.b));
    case kDeliver: {
      const Chunk& chunk = chunks_[payload.a];
      return coords.group_of_router(chunk.route[chunk.hop_idx].router);
    }
    case kRetransmit:
    case kDropNotify:
      return coords.group_of_node(msgs_[static_cast<MsgId>(payload.b)].src);
    case kMsgInjected:
    case kMsgDelivered:
      return kGlobalShard;
    default:
      assert(false && "unknown event kind");
      return kGlobalShard;
  }
}

MsgId Network::send(NodeId src, NodeId dst, Bytes bytes, std::uint64_t user_data,
                    bool notify_injected, bool notify_delivered) {
  assert(src != dst && "self-sends must be short-circuited by the caller");
  assert(bytes > 0);
  // Message records are allocated and released in global context only; the
  // callers of send() (replay, background traffic, tests) are global
  // handlers, so this holds by construction.
  assert(!sharded_ || engine_.current_lane() == engine_.global_lane());
  const MsgId id = msgs_.allocate();
  MessageRecord& m = msgs_[id];
  m.src = src;
  m.dst = dst;
  m.total = bytes;
  m.user_data = user_data;
  m.notify_injected = notify_injected;
  m.notify_delivered = notify_delivered;
  m.active = true;
  nics_[src].queue.push_back(PendingMsg{id, bytes});
  // Kick the NIC via a zero-delay event so send() may be called both from
  // outside the engine and from within event handlers.
  engine_.schedule_after(0, this, EventPayload{kNicFree, 0, static_cast<std::uint64_t>(src), 0});
  return id;
}

Bytes Network::queued_bytes(RouterId router, int port) const {
  return routers_[router].port(port).queued_bytes;
}

void Network::try_inject(NodeId node, SimTime now) {
  Nic& nic = nics_[node];
  if (nic.queue.empty()) {
    nic.end_blocked(now);
    return;
  }
  PendingMsg& head = nic.queue.front();
  MessageRecord& m = msgs_[head.msg];
  const Bytes size = std::min<Bytes>(params_.chunk_bytes, head.bytes_left);
  // Injection-channel saturation mirrors the router-channel definition:
  // demand present but the router's terminal buffer is exhausted.
  if (nic.credits < size) {
    nic.begin_blocked(now);
    return;  // woken by kCreditToNic
  }
  nic.end_blocked(now);
  if (now < nic.busy_until) return;
  nic.credits -= size;
  LaneStats& ls = stats();
  ls.bytes_injected += size;
  ls.in_fabric_delta += size;

  const ChunkId cid = chunks_.allocate(sharded_ ? engine_.current_lane() : 0);
  Chunk& chunk = chunks_[cid];
  chunk.msg = head.msg;
  chunk.bytes = static_cast<std::int32_t>(size);
  chunk.hop_idx = 0;
  {
    // Attribution nests: this routing time is also inside the dispatch time
    // the engine records for the surrounding event (inclusive accounting).
    prof::ProfScope prof_scope(engine_.profiler(), prof::Subsystem::Routing,
                               engine_.current_lane());
    chunk.route = routing_.compute(m.src, m.dst, *this, lane_rng());
  }
  assert(chunk.route.size() > 0);

  HopStats& hs = hop_stats_[node];
  ++hs.chunks;
  hs.routers_sum += static_cast<std::uint64_t>(chunk.route.routers_traversed());
  if (tracer_) chunk.trace_serial = tracer_->on_chunk_injected(head.msg, m.src, m.dst, size, now);

  const SimTime t_end = now + units::transfer_time(size, params_.bandwidth(PortKind::Terminal));
  nic.busy_until = t_end;
  nic.traffic += size;
  engine_.schedule(t_end + params_.terminal_latency + params_.router_delay, this,
                   EventPayload{kChunkArrive, cid,
                                static_cast<std::uint64_t>(chunk.route.first().router), 0});
  engine_.schedule(t_end, this, EventPayload{kNicFree, 0, static_cast<std::uint64_t>(node), 0});

  head.bytes_left -= size;
  m.injected += size;
  if (head.bytes_left == 0) {
    const MsgId mid = head.msg;
    nic.queue.pop_front();  // invalidates `head`
    // A retransmitted tail must not re-notify the sink: the injected-side
    // completion (e.g. an MPI send returning) already happened.
    if (m.notify_injected && !m.injected_notified) {
      m.injected_notified = true;
      // Sharded: the notification is a cross-lane hop into the global lane,
      // so it rides one lookahead behind the injection.
      engine_.schedule(sharded_ ? t_end + lookahead_ : t_end, this,
                       EventPayload{kMsgInjected, 0, mid, 0});
    }
  }
}

void Network::try_send(RouterId rid, int port, SimTime now) {
  Router& router = routers_[rid];
  OutPort& op = router.port(port);
  if (!topo_.port_enabled(rid, port)) return;  // link down: nothing moves
  if (op.queue.empty()) {
    op.end_blocked(now);
    return;
  }

  // Pick a sendable chunk (one whose VC has downstream space; terminal
  // ports always have space). FirstSendable takes the oldest such chunk;
  // RoundRobinVc rotates service across VCs for fairness under contention.
  const std::size_t npos = op.queue.size();
  std::size_t pick = npos;
  if (params_.arbitration == Arbitration::FirstSendable || op.is_terminal()) {
    for (std::size_t i = 0; i < op.queue.size(); ++i) {
      const Chunk& ch = chunks_[op.queue[i]];
      const Hop& hop = ch.route[ch.hop_idx];
      if (op.is_terminal() || op.credits[hop.vc] >= ch.bytes) {
        pick = i;
        break;
      }
    }
  } else {
    int best_key = kMaxRouteHops + 1;
    for (std::size_t i = 0; i < op.queue.size(); ++i) {
      const Chunk& ch = chunks_[op.queue[i]];
      const Hop& hop = ch.route[ch.hop_idx];
      if (op.credits[hop.vc] < ch.bytes) continue;
      const int key = (hop.vc - op.last_vc_served + kMaxRouteHops - 1) % kMaxRouteHops;
      if (key < best_key) {
        best_key = key;
        pick = i;
      }
    }
  }
  // Saturation ("the link has used up all its buffers", §III-E): demand is
  // present but every queued chunk is blocked on downstream buffer space —
  // whether or not the wire is currently busy.
  if (pick == op.queue.size()) {
    op.begin_blocked(now);
    return;
  }
  op.end_blocked(now);
  if (now < op.busy_until) return;

  const ChunkId cid = op.queue[pick];
  op.queue.erase(op.queue.begin() + static_cast<std::ptrdiff_t>(pick));
  Chunk& chunk = chunks_[cid];
  const Hop hop = chunk.route[chunk.hop_idx];
  assert(hop.router == rid && hop.port == port);
  op.queued_bytes -= chunk.bytes;
  op.last_vc_served = hop.vc;
  if (!op.is_terminal()) op.credits[hop.vc] -= chunk.bytes;

  const SimTime t_end = now + units::transfer_time(chunk.bytes, params_.bandwidth(op.kind));
  op.busy_until = t_end;
  op.tx_chunk = cid;
  op.tx_vc = hop.vc;
  op.traffic += chunk.bytes;
  ++stats().chunks_forwarded;
  if (tracer_ && chunk.trace_serial != kNoTraceSerial)
    tracer_->on_transmit_start(chunk.trace_serial, now, t_end);
  engine_.schedule(t_end, this,
                   EventPayload{kPortFree, 0, static_cast<std::uint64_t>(topo_.channel_id(rid, port)), 0});

  // Return the input-buffer space this chunk occupied here to its upstream
  // sender, one upstream-link latency after the last byte departs.
  if (chunk.hop_idx == 0) {
    const NodeId src = msgs_[chunk.msg].src;
    engine_.schedule(t_end + params_.terminal_latency, this,
                     EventPayload{kCreditToNic, 0, static_cast<std::uint64_t>(src),
                                  static_cast<std::uint64_t>(chunk.bytes)});
  } else {
    const Hop& up = chunk.route[chunk.hop_idx - 1];
    const PortKind up_kind = topo_.port_kind(up.port);
    engine_.schedule(t_end + params_.latency(up_kind), this,
                     EventPayload{kCreditToRouter, static_cast<std::uint32_t>(up.vc),
                                  static_cast<std::uint64_t>(topo_.channel_id(up.router, up.port)),
                                  static_cast<std::uint64_t>(chunk.bytes)});
  }

  if (op.is_terminal()) {
    engine_.schedule(t_end + params_.terminal_latency, this, EventPayload{kDeliver, cid, 0, 0});
  } else {
    ++chunk.hop_idx;
    assert(chunk.hop_idx < chunk.route.size());
    engine_.schedule(t_end + params_.latency(op.kind) + params_.router_delay, this,
                     EventPayload{kChunkArrive, cid,
                                  static_cast<std::uint64_t>(chunk.route[chunk.hop_idx].router), 0});
  }
}

void Network::release_if_done(MsgId id) {
  MessageRecord& m = msgs_[id];
  if (m.active && m.injected == m.total && m.delivered == m.total) msgs_.release(id);
}

void Network::release_chunk(ChunkId cid) {
  if (!sharded_) {
    chunks_.release(cid);
    return;
  }
  const int lane = engine_.current_lane();
  const int owner = static_cast<int>(cid >> ChunkPool::kLaneShift);
  if (lane == owner || lane == engine_.global_lane())
    chunks_.release(cid);
  else
    deferred_frees_[static_cast<std::size_t>(lane)].push_back(cid);
}

void Network::drain_deferred_frees() {
  // Coordinator context, every shard parked. Lane order makes the arenas'
  // free-list order a pure function of the configuration: each lane's list
  // was filled in that lane's (deterministic) execution order.
  for (std::vector<ChunkId>& lane_frees : deferred_frees_) {
    for (const ChunkId cid : lane_frees) chunks_.release(cid);
    lane_frees.clear();
  }
}

void Network::handle_event(SimTime now, const EventPayload& payload) {
  switch (payload.kind) {
    case kChunkArrive: {
      const ChunkId cid = payload.a;
      Chunk& chunk = chunks_[cid];
      if (chunk.dropped) {  // tombstone: discarded mid-flight on a failed link
        release_chunk(cid);
        break;
      }
      const auto rid = static_cast<RouterId>(payload.b);
      const Hop& hop = chunk.route[chunk.hop_idx];
      assert(hop.router == rid);
      if (!topo_.port_enabled(rid, hop.port)) {
        // The next link of this chunk's source route died while it was in
        // flight. Drop it here; the owning NIC retransmits the bytes later.
        return_upstream_credit(chunk, now);
        account_drop(cid, now);
        release_chunk(cid);
        break;
      }
      OutPort& op = routers_[rid].port(hop.port);
      if (tracer_ && chunk.trace_serial != kNoTraceSerial) {
        const MessageRecord& m = msgs_[chunk.msg];
        tracer_->on_hop_enqueue(chunk.trace_serial, chunk.msg, m.src, m.dst, chunk.bytes, rid,
                                hop.port, op.kind, hop.vc, op.queued_bytes, now);
      }
      op.queue.push_back(cid);
      op.queued_bytes += chunk.bytes;
      try_send(rid, hop.port, now);
      break;
    }
    case kPortFree: {
      const auto channel = static_cast<int>(payload.b);
      const RouterId rid = topo_.channel_router(channel);
      const int port = topo_.channel_port(channel);
      OutPort& op = routers_[rid].port(port);
      // Only clear when the wire is actually free: a credit event at the same
      // timestamp (earlier sequence) may already have started a new
      // transmission on this port.
      if (op.busy_until <= now) op.tx_chunk = kNoChunk;
      try_send(rid, port, now);
      break;
    }
    case kCreditToRouter: {
      const auto channel = static_cast<int>(payload.b);
      const RouterId rid = topo_.channel_router(channel);
      const int port = topo_.channel_port(channel);
      routers_[rid].port(port).credits[payload.a] += static_cast<Bytes>(payload.c);
      try_send(rid, port, now);
      break;
    }
    case kCreditToNic: {
      const auto node = static_cast<NodeId>(payload.b);
      nics_[node].credits += static_cast<Bytes>(payload.c);
      try_inject(node, now);
      break;
    }
    case kNicFree:
      try_inject(static_cast<NodeId>(payload.b), now);
      break;
    case kDeliver: {
      const ChunkId cid = payload.a;
      Chunk& chunk = chunks_[cid];
      if (chunk.dropped) {  // defensive: ejection links cannot fail today
        release_chunk(cid);
        break;
      }
      const MsgId mid = chunk.msg;
      MessageRecord& m = msgs_[mid];
      m.delivered += chunk.bytes;
      LaneStats& ls = stats();
      ls.bytes_delivered += chunk.bytes;
      ls.in_fabric_delta -= chunk.bytes;
      if (tracer_ && chunk.trace_serial != kNoTraceSerial)
        tracer_->on_delivered(chunk.trace_serial, now);
      const bool done = m.delivered == m.total;
      release_chunk(cid);
      if (done) {
        if (sharded_) {
          // Completion crosses from the destination lane into global (sink)
          // territory: one lookahead later, handled with shards parked.
          engine_.schedule(now + lookahead_, this, EventPayload{kMsgDelivered, 0, mid, 0});
        } else {
          if (m.notify_delivered && sink_) sink_->on_message_delivered(mid, m.user_data, now);
          release_if_done(mid);
        }
      }
      break;
    }
    case kMsgInjected: {
      const auto mid = static_cast<MsgId>(payload.b);
      MessageRecord& m = msgs_[mid];
      if (sink_) sink_->on_message_injected(mid, m.user_data, now);
      release_if_done(mid);
      break;
    }
    case kMsgDelivered: {
      const auto mid = static_cast<MsgId>(payload.b);
      MessageRecord& m = msgs_[mid];
      if (m.notify_delivered && sink_) sink_->on_message_delivered(mid, m.user_data, now);
      release_if_done(mid);
      break;
    }
    case kRetransmit: {
      prof::ProfScope prof_scope(engine_.profiler(), prof::Subsystem::NicRetransmit,
                                 engine_.current_lane());
      const auto mid = static_cast<MsgId>(payload.b);
      MessageRecord& m = msgs_[mid];
      assert(m.active && m.drop_pending > 0);
      const Bytes bytes = m.drop_pending;
      m.drop_pending = 0;
      m.retx_scheduled = false;
      ++m.retx_attempts;
      Nic& nic = nics_[m.src];
      nic.retransmitted += bytes;
      ++nic.retransmit_events;
      LaneStats& ls = stats();
      ls.bytes_retransmitted += bytes;
      ++ls.retransmit_events;
      nic.queue.push_back(PendingMsg{mid, bytes});
      try_inject(m.src, now);
      break;
    }
    case kDropNotify:
      apply_drop_to_message(static_cast<MsgId>(payload.b), static_cast<Bytes>(payload.c), now);
      break;
    default:
      assert(false && "unknown event kind");
  }
}

SimTime Network::retransmit_delay(int attempts) const {
  const int shift = std::clamp(attempts, 0, params_.retransmit_max_backoff);
  const SimTime base = params_.retransmit_timeout;
  // Saturate instead of shifting into UB: a shift of 63+ or any product that
  // would exceed the cap returns the cap (kMaxRetransmitDelay).
  if (shift >= 63 || base > (kMaxRetransmitDelay >> shift)) return kMaxRetransmitDelay;
  return base << shift;
}

void Network::schedule_retransmit(MsgId id, SimTime now) {
  MessageRecord& m = msgs_[id];
  if (m.retx_scheduled) return;
  m.retx_scheduled = true;
  engine_.schedule(now + retransmit_delay(m.retx_attempts), this,
                   EventPayload{kRetransmit, 0, static_cast<std::uint64_t>(id), 0});
}

void Network::return_upstream_credit(const Chunk& chunk, SimTime now) {
  if (chunk.hop_idx == 0) {
    const NodeId src = msgs_[chunk.msg].src;
    engine_.schedule(now + params_.terminal_latency, this,
                     EventPayload{kCreditToNic, 0, static_cast<std::uint64_t>(src),
                                  static_cast<std::uint64_t>(chunk.bytes)});
  } else {
    const Hop& up = chunk.route[chunk.hop_idx - 1];
    const PortKind up_kind = topo_.port_kind(up.port);
    engine_.schedule(now + params_.latency(up_kind), this,
                     EventPayload{kCreditToRouter, static_cast<std::uint32_t>(up.vc),
                                  static_cast<std::uint64_t>(topo_.channel_id(up.router, up.port)),
                                  static_cast<std::uint64_t>(chunk.bytes)});
  }
}

void Network::account_drop(ChunkId cid, SimTime now) {
  const Chunk& chunk = chunks_[cid];
  const Bytes bytes = chunk.bytes;
  LaneStats& ls = stats();
  ls.bytes_dropped += bytes;
  ls.in_fabric_delta -= bytes;
  ++ls.chunks_dropped;
  if (tracer_ && chunk.trace_serial != kNoTraceSerial) tracer_->on_dropped(chunk.trace_serial, now);
  if (sharded_ && engine_.current_lane() != engine_.global_lane()) {
    // A shard (possibly an intermediate group) may not touch the message
    // record; the message-side accounting travels to the source lane one
    // lookahead later.
    engine_.schedule(now + lookahead_, this,
                     EventPayload{kDropNotify, 0, static_cast<std::uint64_t>(chunk.msg),
                                  static_cast<std::uint64_t>(bytes)});
  } else {
    apply_drop_to_message(chunk.msg, bytes, now);
  }
}

void Network::apply_drop_to_message(MsgId id, Bytes bytes, SimTime now) {
  MessageRecord& m = msgs_[id];
  m.injected -= bytes;
  m.drop_pending += bytes;
  ++nics_[m.src].chunks_dropped;
  schedule_retransmit(id, now);
}

void Network::on_link_state_changed(RouterId rid, int port, bool up, SimTime now) {
  assert(!sharded_ || engine_.current_lane() == engine_.global_lane());
  OutPort& op = routers_[rid].port(port);
  if (up) {
    try_send(rid, port, now);
    return;
  }
  assert(!op.is_terminal() && "terminal links cannot fail");
  // Abort the transmission in progress, if any: un-reserve the downstream
  // buffer space and leave the chunk as a tombstone for its arrival event.
  if (op.tx_chunk != kNoChunk && now < op.busy_until) {
    Chunk& chunk = chunks_[op.tx_chunk];
    op.credits[op.tx_vc] += chunk.bytes;
    chunk.dropped = true;
    account_drop(op.tx_chunk, now);
    op.tx_chunk = kNoChunk;
    op.busy_until = now;
  }
  // Purge everything queued for the dead port: free this router's input
  // buffer back to the upstream senders and queue the bytes for retransmit.
  for (const ChunkId cid : op.queue) {
    return_upstream_credit(chunks_[cid], now);
    account_drop(cid, now);
    release_chunk(cid);
  }
  op.queue.clear();
  op.queued_bytes = 0;
  op.end_blocked(now);
}

namespace {

[[noreturn]] void bad_state(const char* what) {
  throw std::runtime_error(std::string("snapshot: network state invalid: ") + what);
}

void save_route(ckpt::Writer& w, const Route& route) {
  w.u8(static_cast<std::uint8_t>(route.size()));
  for (int i = 0; i < route.size(); ++i) {
    const Hop& hop = route[i];
    w.i32(hop.router);
    w.i32(hop.port);
    w.i32(hop.vc);
  }
}

Route load_route(ckpt::Reader& r) {
  const std::uint8_t len = r.u8();
  if (len > kMaxRouteHops) bad_state("route too long");
  Route route;
  for (int i = 0; i < len; ++i) {
    const RouterId router = r.i32();
    const int port = r.i32();
    const int vc = r.i32();
    if (vc != i) bad_state("route VC out of sequence");
    route.push(router, port);
  }
  return route;
}

}  // namespace

void Network::save_state(ckpt::Writer& w) const {
  // Saves happen at quiesce points only, where no cross-lane free is parked.
  for (const auto& pending : deferred_frees_) {
    assert(pending.empty());
    (void)pending;
  }

  // Chunk arenas (before routers/NICs so their queues can be validated
  // against the pool at load time). One arena when unsharded.
  w.u32(static_cast<std::uint32_t>(chunks_.lanes()));
  for (int lane = 0; lane < chunks_.lanes(); ++lane) {
    const std::uint32_t size = chunks_.arena_size(lane);
    w.u32(size);
    for (std::uint32_t i = 0; i < size; ++i) {
      const ChunkId cid = (static_cast<ChunkId>(lane) << ChunkPool::kLaneShift) | i;
      const Chunk& chunk = chunks_[cid];
      w.u32(chunk.msg);
      w.i32(chunk.bytes);
      w.u8(static_cast<std::uint8_t>(chunk.hop_idx));
      w.boolean(chunk.dropped);
      w.u64(chunk.trace_serial);
      save_route(w, chunk.route);
    }
    const std::vector<ChunkId>& free_list = chunks_.arena_free(lane);
    w.size(free_list.size());
    for (const ChunkId id : free_list) w.u32(id);
  }

  w.size(msgs_.slots().size());
  for (const MessageRecord& m : msgs_.slots()) {
    w.i32(m.src);
    w.i32(m.dst);
    w.i64(m.total);
    w.i64(m.injected);
    w.i64(m.delivered);
    w.i64(m.drop_pending);
    w.u32(m.retx_attempts);
    w.boolean(m.retx_scheduled);
    w.boolean(m.injected_notified);
    w.u64(m.user_data);
    w.boolean(m.notify_injected);
    w.boolean(m.notify_delivered);
    w.boolean(m.active);
  }
  w.size(msgs_.free_slots().size());
  for (const MsgId id : msgs_.free_slots()) w.u32(id);

  w.size(routers_.size());
  for (const Router& router : routers_) {
    w.i32(router.num_ports());
    for (int p = 0; p < router.num_ports(); ++p) {
      const OutPort& op = router.port(p);
      w.i64(op.busy_until);
      w.size(op.queue.size());
      for (const ChunkId id : op.queue) w.u32(id);
      w.i64(op.queued_bytes);
      w.size(op.credits.size());
      for (const Bytes c : op.credits) w.i64(c);
      w.i32(op.last_vc_served);
      w.u32(op.tx_chunk);
      w.i32(op.tx_vc);
      w.i64(op.traffic);
      w.i64(op.blocked_since);
      w.i64(op.saturated_time);
    }
  }

  w.size(nics_.size());
  for (const Nic& nic : nics_) {
    w.i64(nic.busy_until);
    w.size(nic.queue.size());
    for (const PendingMsg& pm : nic.queue) {
      w.u32(pm.msg);
      w.i64(pm.bytes_left);
    }
    w.i64(nic.credits);
    w.i64(nic.traffic);
    w.i64(nic.blocked_since);
    w.i64(nic.saturated_time);
    w.i64(nic.retransmitted);
    w.u32(nic.retransmit_events);
    w.u32(nic.chunks_dropped);
  }

  w.size(hop_stats_.size());
  for (const HopStats& hs : hop_stats_) {
    w.u64(hs.chunks);
    w.u64(hs.routers_sum);
  }

  w.u32(static_cast<std::uint32_t>(lane_stats_.size()));
  for (const LaneStats& ls : lane_stats_) {
    w.u64(ls.chunks_forwarded);
    w.i64(ls.bytes_delivered);
    w.i64(ls.bytes_injected);
    w.i64(ls.bytes_dropped);
    w.i64(ls.bytes_retransmitted);
    w.i64(ls.in_fabric_delta);
    w.i64(ls.chunks_dropped);
    w.i64(ls.retransmit_events);
  }
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  if (sharded_) {
    for (const Rng& lane_rng : lane_rngs_)
      for (const std::uint64_t word : lane_rng.state()) w.u64(word);
  }
}

void Network::load_state(ckpt::Reader& r) {
  const std::uint32_t nlanes = r.u32();
  if (nlanes != static_cast<std::uint32_t>(chunks_.lanes()))
    bad_state("chunk arena lane count mismatch (serial vs sharded, or shard count)");
  for (std::uint32_t lane = 0; lane < nlanes; ++lane) {
    const std::uint32_t size = r.u32();
    if (size > ChunkPool::kIndexMask) bad_state("chunk arena size out of range");
    chunks_.restore_arena(static_cast<int>(lane), size);
    for (std::uint32_t i = 0; i < size; ++i) {
      const ChunkId cid = (lane << ChunkPool::kLaneShift) | i;
      Chunk& chunk = chunks_[cid];
      chunk.msg = r.u32();
      chunk.bytes = r.i32();
      chunk.hop_idx = static_cast<std::int8_t>(r.u8());
      chunk.dropped = r.boolean();
      chunk.trace_serial = r.u64();
      chunk.route = load_route(r);
      if (chunk.hop_idx > chunk.route.size()) bad_state("chunk hop index past route end");
    }
    const std::size_t nfree = r.count(4);
    if (nfree > size) bad_state("chunk free list larger than arena");
    std::vector<ChunkId> free_list;
    free_list.reserve(nfree);
    for (std::size_t i = 0; i < nfree; ++i) {
      const ChunkId id = r.u32();
      if ((id >> ChunkPool::kLaneShift) != lane || (id & ChunkPool::kIndexMask) >= size)
        bad_state("chunk free-list id out of range");
      free_list.push_back(id);
    }
    chunks_.set_arena_free(static_cast<int>(lane), std::move(free_list));
  }

  const std::size_t msg_cap = r.count(16);
  std::vector<MessageRecord> msg_slots;
  msg_slots.reserve(msg_cap);
  for (std::size_t i = 0; i < msg_cap; ++i) {
    MessageRecord m;
    m.src = r.i32();
    m.dst = r.i32();
    m.total = r.i64();
    m.injected = r.i64();
    m.delivered = r.i64();
    m.drop_pending = r.i64();
    m.retx_attempts = static_cast<std::uint16_t>(r.u32());
    m.retx_scheduled = r.boolean();
    m.injected_notified = r.boolean();
    m.user_data = r.u64();
    m.notify_injected = r.boolean();
    m.notify_delivered = r.boolean();
    m.active = r.boolean();
    msg_slots.push_back(m);
  }
  const std::size_t msg_free = r.count(4);
  if (msg_free > msg_cap) bad_state("message free list larger than pool");
  std::vector<MsgId> msg_free_list;
  msg_free_list.reserve(msg_free);
  for (std::size_t i = 0; i < msg_free; ++i) {
    const MsgId id = r.u32();
    if (id >= msg_cap) bad_state("message free-list id out of range");
    msg_free_list.push_back(id);
  }
  msgs_.restore(std::move(msg_slots), std::move(msg_free_list));

  const std::size_t nrouters = r.count(8);
  if (nrouters != routers_.size()) bad_state("router count mismatch");
  for (Router& router : routers_) {
    if (r.i32() != router.num_ports()) bad_state("port count mismatch");
    for (int p = 0; p < router.num_ports(); ++p) {
      OutPort& op = router.port(p);
      op.busy_until = r.i64();
      const std::size_t qn = r.count(4);
      op.queue.clear();
      for (std::size_t i = 0; i < qn; ++i) {
        const ChunkId id = r.u32();
        if (!chunks_.valid(id)) bad_state("queued chunk id out of range");
        op.queue.push_back(id);
      }
      op.queued_bytes = r.i64();
      const std::size_t ncredits = r.count(8);
      if (ncredits != op.credits.size()) bad_state("VC credit vector size mismatch");
      for (Bytes& c : op.credits) c = r.i64();
      op.last_vc_served = static_cast<std::int8_t>(r.i32());
      op.tx_chunk = r.u32();
      if (op.tx_chunk != kNoChunk && !chunks_.valid(op.tx_chunk))
        bad_state("tx chunk id out of range");
      op.tx_vc = static_cast<std::int8_t>(r.i32());
      op.traffic = r.i64();
      op.blocked_since = r.i64();
      op.saturated_time = r.i64();
    }
  }

  const std::size_t nnics = r.count(16);
  if (nnics != nics_.size()) bad_state("NIC count mismatch");
  for (Nic& nic : nics_) {
    nic.busy_until = r.i64();
    const std::size_t qn = r.count(12);
    nic.queue.clear();
    for (std::size_t i = 0; i < qn; ++i) {
      PendingMsg pm;
      pm.msg = r.u32();
      if (pm.msg >= msgs_.slots().size()) bad_state("pending message id out of range");
      pm.bytes_left = r.i64();
      nic.queue.push_back(pm);
    }
    nic.credits = r.i64();
    nic.traffic = r.i64();
    nic.blocked_since = r.i64();
    nic.saturated_time = r.i64();
    nic.retransmitted = r.i64();
    nic.retransmit_events = r.u32();
    nic.chunks_dropped = r.u32();
  }

  const std::size_t nhops = r.count(16);
  if (nhops != hop_stats_.size()) bad_state("hop-stats size mismatch");
  for (HopStats& hs : hop_stats_) {
    hs.chunks = r.u64();
    hs.routers_sum = r.u64();
  }

  const std::uint32_t nstats = r.u32();
  if (nstats != lane_stats_.size()) bad_state("lane-stats count mismatch");
  for (LaneStats& ls : lane_stats_) {
    ls.chunks_forwarded = r.u64();
    ls.bytes_delivered = r.i64();
    ls.bytes_injected = r.i64();
    ls.bytes_dropped = r.i64();
    ls.bytes_retransmitted = r.i64();
    ls.in_fabric_delta = r.i64();
    ls.chunks_dropped = r.i64();
    ls.retransmit_events = r.i64();
  }
  std::array<std::uint64_t, 4> rng_state;
  for (std::uint64_t& word : rng_state) word = r.u64();
  rng_.set_state(rng_state);
  if (sharded_) {
    for (Rng& lane_rng : lane_rngs_) {
      for (std::uint64_t& word : rng_state) word = r.u64();
      lane_rng.set_state(rng_state);
    }
  }
  if (!conservation_ok()) bad_state("conservation audit failed after restore");
}

std::vector<Bytes> Network::vc_occupancy() const {
  std::vector<Bytes> occupancy(kMaxRouteHops, 0);
  for (const Router& router : routers_) {
    for (int p = 0; p < router.num_ports(); ++p) {
      for (const ChunkId cid : router.port(p).queue) {
        const Chunk& chunk = chunks_[cid];
        occupancy[chunk.route[chunk.hop_idx].vc] += chunk.bytes;
      }
    }
  }
  return occupancy;
}

void Network::finalize(SimTime end) {
  for (Router& router : routers_) {
    for (int p = 0; p < router.num_ports(); ++p) router.port(p).end_blocked(end);
  }
  for (Nic& nic : nics_) nic.end_blocked(end);
}

}  // namespace dfly
