// Shared helpers for the figure-reproduction benches: the three paper
// workloads at their paper rank counts (1000/1000/1728), with one knob — the
// message-volume scale — threaded through every generator so the whole suite
// trades runtime against fidelity uniformly (env DFLY_SCALE).
//
// Iteration counts are fixed here (CR/FB one sweep, AMG three V-cycles) and
// recorded in EXPERIMENTS.md next to the results.
#pragma once

#include <chrono>
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/formatters.hpp"
#include "core/run_matrix.hpp"
#include "metrics/report.hpp"
#include "workload/workload.hpp"

namespace dfly::bench {

inline Workload cr_workload(double scale) {
  CrParams p;
  p.iterations = 1;
  p.scale = scale;
  return make_crystal_router(p);
}

inline Workload fb_workload(double scale) {
  FbParams p;
  p.iterations = 1;
  p.scale = scale;
  return make_fill_boundary(p);
}

inline Workload amg_workload(double scale) {
  AmgParams p;  // 3 V-cycles — the paper's three surges
  p.scale = scale;
  return make_amg(p);
}

/// Runs the Table I matrix for one workload and prints the Fig. 3-style box
/// table plus a run summary; returns the per-config metrics for further
/// tables.
inline std::vector<NamedMetrics> run_and_report_matrix(const Workload& workload,
                                                       const ExperimentOptions& options,
                                                       int threads) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<ExperimentConfig> configs = table1_configs();
  const std::vector<ExperimentResult> results = run_matrix(workload, configs, options, threads);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();

  std::vector<NamedMetrics> named;
  named.reserve(results.size());
  for (const ExperimentResult& r : results) named.push_back({r.config, r.metrics});

  comm_time_box_table(workload.name + ": per-rank communication time (ms)", named)
      .print_markdown(std::cout);
  summary_table(workload.name + ": run summary", named).print_markdown(std::cout);

  // Call out the winner, the comparison the paper's findings quote.
  std::size_t best = 0;
  for (std::size_t i = 1; i < named.size(); ++i)
    if (named[i].metrics.median_comm_ms() < named[best].metrics.median_comm_ms()) best = i;
  std::printf("%s best config by median communication time: %s (wall %.1fs)\n\n",
              workload.name.c_str(), named[best].config.c_str(), wall);
  return named;
}

inline int bench_threads() { return env_threads(0); }

}  // namespace dfly::bench
