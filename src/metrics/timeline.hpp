// Time-series sampling of network state: a periodic probe that records
// aggregate throughput and queue occupancy, turning the end-of-run metrics
// into congestion-evolution timelines (useful for studying the bursty
// background-traffic experiments).
#pragma once

#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "util/table.hpp"

namespace dfly {

struct TimelineSample {
  SimTime time = 0;
  Bytes bytes_delivered = 0;       ///< cumulative
  Bytes queued_bytes = 0;          ///< instantaneous, all router output queues
  // Per-port-class breakdown of queued_bytes (local covers row + column
  // ports): which link class congestion sits on, per sample.
  Bytes queued_local = 0;
  Bytes queued_global = 0;
  Bytes queued_terminal = 0;
  std::size_t messages_in_flight = 0;
  std::uint64_t chunks_forwarded = 0;  ///< cumulative
};

class TimelineSampler : public EventHandler {
 public:
  /// Samples `network` every `interval` once started. Sampling stops when
  /// request_stop() is called or the engine drains (pending probes are the
  /// only thing that would keep it alive, so callers stop it from a
  /// completion callback).
  TimelineSampler(Engine& engine, const Network& network, SimTime interval);

  /// Schedules the first probe; throws std::logic_error on a second call (a
  /// double start would double the sampling cadence).
  void start();
  void request_stop() { stopped_ = true; }

  const std::vector<TimelineSample>& samples() const { return samples_; }

  /// Delivered-bytes rate between consecutive samples, GB/s.
  std::vector<double> throughput_gbps() const;

  /// Renders the timeline as a table (time ms, throughput, queued MB, ...).
  Table to_table(const std::string& title) const;

  // EventHandler
  void handle_event(SimTime now, const EventPayload& payload) override;

 private:
  void sample(SimTime now);

  Engine& engine_;
  const Network& network_;
  SimTime interval_;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<TimelineSample> samples_;
};

}  // namespace dfly
