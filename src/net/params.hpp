// Network model parameters.
//
// Defaults are the Theta numbers from the paper's Section II: 16 GiB/s
// terminal, 5.25 GiB/s local, 4.69 GiB/s global links; 8 KiB / 8 KiB / 16 KiB
// per-VC buffers for terminal / local / global channels. Link latencies are
// not stated in the paper; we use typical Aries-class values (copper local
// links ~100 ns, optical global links ~800 ns).
#pragma once

#include "topo/dragonfly.hpp"
#include "util/units.hpp"

namespace dfly {

/// Output-port arbitration among queued chunks.
enum class Arbitration {
  FirstSendable,  ///< oldest queued chunk whose VC has credits (default)
  RoundRobinVc,   ///< rotate service across virtual channels (fairness)
};

const char* to_string(Arbitration policy);

/// Ceiling on the exponential retransmit backoff: retransmit_delay saturates
/// here instead of overflowing SimTime for large timeouts or shift counts.
inline constexpr SimTime kMaxRetransmitDelay = 60 * units::kSecond;

struct NetworkParams {
  /// Messages are split into chunks of at most this size (CODES default 2 KiB)
  /// and each chunk is store-and-forwarded per hop.
  Bytes chunk_bytes = 2 * units::kKiB;

  Arbitration arbitration = Arbitration::FirstSendable;

  double terminal_bandwidth_gib = 16.0;
  double local_bandwidth_gib = 5.25;
  double global_bandwidth_gib = 4.69;

  SimTime terminal_latency = 100;
  SimTime local_latency = 100;
  SimTime global_latency = 800;
  /// Router pipeline (routing + arbitration + SerDes) delay added to every
  /// chunk arrival at a router; Aries-class hardware pays ~0.5 us per hop.
  /// This is what makes extra (nonminimal) hops genuinely expensive for
  /// latency-bound traffic.
  SimTime router_delay = 500;

  Bytes terminal_vc_buffer = 8 * units::kKiB;
  Bytes local_vc_buffer = 8 * units::kKiB;
  Bytes global_vc_buffer = 16 * units::kKiB;

  /// Base NIC retransmit timeout after a chunk is dropped on a failed link;
  /// attempt k waits timeout << min(k, retransmit_max_backoff).
  SimTime retransmit_timeout = 20 * units::kMicrosecond;
  int retransmit_max_backoff = 6;

  static NetworkParams theta() { return NetworkParams{}; }

  /// Bandwidth of a channel of the given kind, in bytes per nanosecond.
  double bandwidth(PortKind kind) const {
    switch (kind) {
      case PortKind::Terminal: return units::gib_per_s(terminal_bandwidth_gib);
      case PortKind::LocalRow:
      case PortKind::LocalCol: return units::gib_per_s(local_bandwidth_gib);
      case PortKind::Global: return units::gib_per_s(global_bandwidth_gib);
    }
    return 1.0;
  }

  SimTime latency(PortKind kind) const {
    switch (kind) {
      case PortKind::Terminal: return terminal_latency;
      case PortKind::LocalRow:
      case PortKind::LocalCol: return local_latency;
      case PortKind::Global: return global_latency;
    }
    return 0;
  }

  /// Per-VC input buffer size on the downstream side of a channel.
  Bytes vc_buffer(PortKind kind) const {
    switch (kind) {
      case PortKind::Terminal: return terminal_vc_buffer;
      case PortKind::LocalRow:
      case PortKind::LocalCol: return local_vc_buffer;
      case PortKind::Global: return global_vc_buffer;
    }
    return 0;
  }

  void validate() const;
};

}  // namespace dfly
