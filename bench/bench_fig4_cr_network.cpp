// Reproduces Fig. 4: CR's average hops, local channel traffic, and
// local/global link saturation time under all ten configurations.
//
// Paper shape: contiguous+minimal has the fewest hops but the heaviest local
// channel traffic tail and the longest local-link saturation; random-node
// placement balances traffic across channels and cuts saturation at the cost
// of more hops.
#include "bench_network_figures.hpp"

int main() {
  using namespace dfly;
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  print_bench_header("Fig. 4", "CR network metrics (hops, traffic, saturation)", scale, seed);
  ExperimentOptions options;
  options.seed = seed;
  bench::NetworkFigurePanels panels;
  panels.hops = true;           // Fig. 4(a)
  panels.global_traffic = false;  // the paper's Fig. 4 shows local traffic only
  bench::run_network_figure(bench::cr_workload(scale), options, panels);
  return 0;
}
