// Seeded violation fixture: R4 (pointer-order) — pointer values as ordering
// keys vary run to run and ASLR-shuffle any iteration order built on them.
#pragma once

#include <map>

struct Router;
inline std::map<Router*, int> seeded_pointer_ordering;
