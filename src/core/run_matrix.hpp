// Parallel execution of a configuration matrix.
//
// Each (placement, routing) experiment is an independent sequential
// simulation; the study's sweeps parallelize perfectly across
// configurations. A small worker pool shares one immutable topology.
#pragma once

#include <vector>

#include "core/experiment.hpp"

namespace dfly {

/// Runs `workload` under every config, in parallel over `threads` workers
/// (0 = hardware concurrency). Results are returned in `configs` order.
/// Exceptions from worker runs are rethrown on the calling thread.
///
/// With options.checkpoint active, options.checkpoint.path names a DIRECTORY:
/// each in-flight config checkpoints to <dir>/<config>.ckpt and drops a
/// <dir>/<config>.done result marker on completion. With checkpoint.resume
/// set, configs with a .done marker are loaded from it and skipped, and
/// configs with a .ckpt resume mid-run — so an interrupted sweep picks up
/// where it left off. With options.checkpoint.stop_flag wired to the
/// farm/signals shutdown flag, a SIGINT/SIGTERM parks every in-flight config
/// at its next snapshot instead of discarding work.
///
/// With options.farm.enabled, execution is delegated to the crash-isolated
/// process farm (src/farm/supervisor.hpp): per-config worker processes,
/// wall-clock watchdogs, retry with backoff, quarantine. `threads` is ignored
/// there (options.farm.workers governs); a config the farm could not complete
/// makes this wrapper throw — call farm::run_farm directly for graceful
/// partial results.
std::vector<ExperimentResult> run_matrix(const Workload& workload,
                                         const std::vector<ExperimentConfig>& configs,
                                         const ExperimentOptions& options, int threads = 0);

}  // namespace dfly
