#include "place/placement.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace dfly {

const char* to_string(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::Contiguous: return "cont";
    case PlacementKind::RandomCabinet: return "cab";
    case PlacementKind::RandomChassis: return "chas";
    case PlacementKind::RandomRouter: return "rotr";
    case PlacementKind::RandomNode: return "rand";
  }
  return "?";
}

Placement::Placement(PlacementKind kind, std::vector<NodeId> rank_to_node, int total_nodes)
    : kind_(kind), rank_to_node_(std::move(rank_to_node)), node_to_rank_(total_nodes, -1) {
  for (std::size_t rank = 0; rank < rank_to_node_.size(); ++rank) {
    const NodeId node = rank_to_node_[rank];
    if (node < 0 || node >= total_nodes) throw std::invalid_argument("placement: node out of range");
    if (node_to_rank_[node] != -1) throw std::invalid_argument("placement: node assigned twice");
    node_to_rank_[node] = static_cast<std::int32_t>(rank);
  }
}

namespace {

/// Shared scheme of the random-<unit> policies: shuffle the units present in
/// the available set, then assign nodes contiguously (by id) within each unit
/// until `ranks` nodes are chosen.
template <typename UnitOf>
std::vector<NodeId> pick_by_unit(std::span<const NodeId> available, int ranks, Rng& rng,
                                 UnitOf unit_of) {
  // Bucket available nodes per unit, preserving id order within a unit.
  std::vector<NodeId> sorted(available.begin(), available.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<int> units;
  std::vector<std::vector<NodeId>> members;
  for (const NodeId n : sorted) {
    const int u = unit_of(n);
    if (units.empty() || units.back() != u) {
      units.push_back(u);
      members.emplace_back();
    }
    members.back().push_back(n);
  }
  std::vector<std::size_t> order(units.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);

  std::vector<NodeId> picked;
  picked.reserve(ranks);
  for (const std::size_t u : order) {
    for (const NodeId n : members[u]) {
      if (static_cast<int>(picked.size()) == ranks) return picked;
      picked.push_back(n);
    }
    if (static_cast<int>(picked.size()) == ranks) break;
  }
  return picked;
}

}  // namespace

Placement make_placement(PlacementKind kind, const TopoParams& params, int ranks,
                         std::span<const NodeId> available, Rng& rng) {
  if (static_cast<int>(available.size()) < ranks)
    throw std::invalid_argument("placement: not enough available nodes");
  const Coordinates coords(params);
  std::vector<NodeId> picked;
  switch (kind) {
    case PlacementKind::Contiguous: {
      picked.assign(available.begin(), available.end());
      std::sort(picked.begin(), picked.end());
      picked.resize(ranks);
      break;
    }
    case PlacementKind::RandomCabinet:
      picked = pick_by_unit(available, ranks, rng, [&](NodeId n) {
        return coords.cabinet_of_router(coords.router_of_node(n));
      });
      break;
    case PlacementKind::RandomChassis:
      picked = pick_by_unit(available, ranks, rng, [&](NodeId n) {
        return coords.chassis_of_router(coords.router_of_node(n));
      });
      break;
    case PlacementKind::RandomRouter:
      picked = pick_by_unit(available, ranks, rng,
                            [&](NodeId n) { return coords.router_of_node(n); });
      break;
    case PlacementKind::RandomNode: {
      picked.assign(available.begin(), available.end());
      std::sort(picked.begin(), picked.end());
      rng.shuffle(picked);
      picked.resize(ranks);
      break;
    }
  }
  return Placement(kind, std::move(picked), params.total_nodes());
}

Placement make_placement(PlacementKind kind, const TopoParams& params, int ranks, Rng& rng) {
  std::vector<NodeId> all(params.total_nodes());
  std::iota(all.begin(), all.end(), 0);
  return make_placement(kind, params, ranks, all, rng);
}

std::vector<NodeId> remaining_nodes(const TopoParams& params, const Placement& placement) {
  std::vector<NodeId> rest;
  rest.reserve(params.total_nodes() - placement.ranks());
  for (NodeId n = 0; n < params.total_nodes(); ++n)
    if (!placement.contains_node(n)) rest.push_back(n);
  return rest;
}

std::vector<RouterId> serving_routers(const TopoParams& params, const Placement& placement) {
  const Coordinates coords(params);
  std::vector<char> seen(params.total_routers(), 0);
  for (const NodeId n : placement.nodes()) seen[coords.router_of_node(n)] = 1;
  std::vector<RouterId> routers;
  for (RouterId r = 0; r < params.total_routers(); ++r)
    if (seen[r]) routers.push_back(r);
  return routers;
}

}  // namespace dfly
