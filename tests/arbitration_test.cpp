// Tests for output-port arbitration policies.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "replay/replay.hpp"
#include "routing/adaptive.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

SimTime run_heavy_traffic(Arbitration policy, std::uint64_t* events_out = nullptr) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  NetworkParams params = NetworkParams::theta();
  params.arbitration = policy;
  AdaptiveRouting routing(topo);
  Network network(engine, topo, params, routing, Rng(1));
  Rng rng(2);
  const Trace trace = make_permutation_trace(40, 512 * units::kKiB, rng);
  Rng place_rng(3);
  const Placement placement =
      make_placement(PlacementKind::RandomNode, topo.params(), 40, place_rng);
  ReplayEngine replay(engine, network, trace, placement);
  replay.start();
  engine.set_event_limit(200'000'000);
  engine.run();
  EXPECT_FALSE(engine.hit_event_limit());
  EXPECT_TRUE(replay.finished());
  if (events_out) *events_out = engine.events_processed();
  return engine.now();
}

TEST(Arbitration, BothPoliciesDrainHeavyTraffic) {
  EXPECT_GT(run_heavy_traffic(Arbitration::FirstSendable), 0);
  EXPECT_GT(run_heavy_traffic(Arbitration::RoundRobinVc), 0);
}

TEST(Arbitration, PoliciesProduceDifferentSchedules) {
  std::uint64_t ev_first = 0, ev_rr = 0;
  const SimTime t_first = run_heavy_traffic(Arbitration::FirstSendable, &ev_first);
  const SimTime t_rr = run_heavy_traffic(Arbitration::RoundRobinVc, &ev_rr);
  // Same traffic, different interleavings: at least one observable differs.
  EXPECT_TRUE(t_first != t_rr || ev_first != ev_rr);
}

TEST(Arbitration, RoundRobinIsDeterministic) {
  const SimTime a = run_heavy_traffic(Arbitration::RoundRobinVc);
  const SimTime b = run_heavy_traffic(Arbitration::RoundRobinVc);
  EXPECT_EQ(a, b);
}

TEST(Arbitration, Names) {
  EXPECT_STREQ(to_string(Arbitration::FirstSendable), "first-sendable");
  EXPECT_STREQ(to_string(Arbitration::RoundRobinVc), "round-robin-vc");
}

}  // namespace
}  // namespace dfly
