// Conservation-law property tests: bytes injected, forwarded and delivered
// must balance exactly across the whole fabric, for every routing algorithm
// and under randomized traffic.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "routing/algorithm.hpp"
#include "sim/engine.hpp"

namespace dfly {
namespace {

struct Totals {
  Bytes injected = 0;   // NIC traffic
  Bytes ejected = 0;    // terminal-port traffic
  Bytes local = 0;      // local channels
  Bytes global = 0;     // global channels
};

Totals tally(const Network& network) {
  Totals t;
  const DragonflyTopology& topo = network.topology();
  for (NodeId n = 0; n < topo.params().total_nodes(); ++n) t.injected += network.nic(n).traffic;
  for (RouterId r = 0; r < topo.params().total_routers(); ++r) {
    const Router& router = network.router(r);
    for (int p = 0; p < router.num_ports(); ++p) {
      const OutPort& port = router.port(p);
      switch (port.kind) {
        case PortKind::Terminal: t.ejected += port.traffic; break;
        case PortKind::LocalRow:
        case PortKind::LocalCol: t.local += port.traffic; break;
        case PortKind::Global: t.global += port.traffic; break;
      }
    }
  }
  return t;
}

class ConservationProperty : public ::testing::TestWithParam<RoutingKind> {};

TEST_P(ConservationProperty, BytesBalanceUnderRandomTraffic) {
  Engine engine;
  const DragonflyTopology topo(TopoParams::tiny());
  const auto routing = make_routing(GetParam(), topo);
  Network network(engine, topo, NetworkParams::theta(), *routing, Rng(1));

  Rng traffic(17);
  Bytes sent = 0;
  const int nodes = topo.params().total_nodes();
  for (int i = 0; i < 400; ++i) {
    const auto src = static_cast<NodeId>(traffic.uniform(nodes));
    auto dst = static_cast<NodeId>(traffic.uniform(nodes - 1));
    if (dst >= src) ++dst;
    const Bytes size = 1 + static_cast<Bytes>(traffic.uniform(100 * units::kKB));
    network.send(src, dst, size);
    sent += size;
  }
  engine.set_event_limit(300'000'000);
  engine.run();
  ASSERT_FALSE(engine.hit_event_limit());

  const Totals t = tally(network);
  // Everything sent was injected, ejected and delivered exactly once.
  EXPECT_EQ(t.injected, sent);
  EXPECT_EQ(t.ejected, sent);
  EXPECT_EQ(network.bytes_delivered(), sent);
  // Each byte traverses at least zero and at most kMaxRouteHops-1 internal
  // channels.
  EXPECT_LE(t.local + t.global, static_cast<Bytes>(kMaxRouteHops) * sent);
  // With three groups and random traffic, some bytes must cross groups.
  EXPECT_GT(t.global, 0);
}

INSTANTIATE_TEST_SUITE_P(Routings, ConservationProperty,
                         ::testing::Values(RoutingKind::Minimal, RoutingKind::Adaptive,
                                           RoutingKind::Valiant, RoutingKind::AdaptiveGlobal),
                         [](const auto& pinfo) {
                           switch (pinfo.param) {
                             case RoutingKind::Minimal: return std::string("minimal");
                             case RoutingKind::Adaptive: return std::string("adaptive");
                             case RoutingKind::Valiant: return std::string("valiant");
                             case RoutingKind::AdaptiveGlobal: return std::string("adaptive_global");
                           }
                           return std::string("unknown");
                         });

TEST(Conservation, MinimalRoutingGlobalTrafficIsExactlyOneCrossingPerByte) {
  // Under minimal routing, every inter-group byte crosses exactly one global
  // channel; intra-group bytes cross none.
  Engine engine;
  const DragonflyTopology topo(TopoParams::tiny());
  const auto routing = make_routing(RoutingKind::Minimal, topo);
  Network network(engine, topo, NetworkParams::theta(), *routing, Rng(1));
  const Coordinates& c = topo.coords();

  Rng traffic(23);
  Bytes cross_group = 0;
  const int nodes = topo.params().total_nodes();
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<NodeId>(traffic.uniform(nodes));
    auto dst = static_cast<NodeId>(traffic.uniform(nodes - 1));
    if (dst >= src) ++dst;
    const Bytes size = 1 + static_cast<Bytes>(traffic.uniform(50000));
    network.send(src, dst, size);
    if (c.group_of_node(src) != c.group_of_node(dst)) cross_group += size;
  }
  engine.run();
  EXPECT_EQ(tally(network).global, cross_group);
}

TEST(Conservation, ChunkCountMatchesCeilDivision) {
  Engine engine;
  const DragonflyTopology topo(TopoParams::tiny());
  const auto routing = make_routing(RoutingKind::Minimal, topo);
  NetworkParams params = NetworkParams::theta();
  Network network(engine, topo, params, *routing, Rng(1));
  // 5000 B at 2048 B chunks = 3 chunks; node 0 -> node 2 is one local hop +
  // ejection = 2 channel traversals per chunk.
  network.send(0, 2, 5000);
  engine.run();
  EXPECT_EQ(network.chunks_forwarded(), 3u * 2u);
}

}  // namespace
}  // namespace dfly
