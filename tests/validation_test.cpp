// Model validation in the style the paper cites (§II): the CODES dragonfly
// model was validated against Theta "with ping-pong and bisection pairing
// benchmark tests". We validate our network model against its own analytic
// expectations: single-message latency decomposes into serialization + link
// latencies + router delays, and sustained bandwidth approaches link rates.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "replay/replay.hpp"
#include "routing/minimal.hpp"
#include "sim/engine.hpp"
#include "workload/exchange.hpp"

namespace dfly {
namespace {

struct Recorder : MessageSink {
  SimTime last_delivery = -1;
  void on_message_delivered(MsgId, std::uint64_t, SimTime now) override { last_delivery = now; }
};

struct Probe {
  Probe()
      : topo(TopoParams::theta()),
        params(NetworkParams::theta()),
        routing(topo),
        network(engine, topo, params, routing, Rng(1), &rec) {}

  /// Sends one message and returns its end-to-end delivery time.
  SimTime one_way(NodeId src, NodeId dst, Bytes bytes) {
    network.send(src, dst, bytes, 0, false, true);
    engine.run();
    return rec.last_delivery;
  }

  Engine engine;
  DragonflyTopology topo;
  NetworkParams params;
  MinimalRouting routing;
  Recorder rec;
  Network network;
};

TEST(Validation, PingLatencySameRouterMatchesAnalytic) {
  // NIC serialization + terminal link + router delay + ejection
  // serialization + terminal link: one chunk, one router.
  Probe probe;
  const Bytes size = 1024;
  const SimTime measured = probe.one_way(0, 1, size);
  const double bw = probe.params.bandwidth(PortKind::Terminal);
  const SimTime expected = units::transfer_time(size, bw) + probe.params.terminal_latency +
                           probe.params.router_delay + units::transfer_time(size, bw) +
                           probe.params.terminal_latency;
  EXPECT_EQ(measured, expected);
}

TEST(Validation, PingLatencySameRowMatchesAnalytic) {
  // Two routers in one row: + local link serialization, latency, and a
  // second router delay.
  Probe probe;
  const Bytes size = 2048;
  const SimTime measured = probe.one_way(0, 4, size);  // router 0 -> router 1
  const double tbw = probe.params.bandwidth(PortKind::Terminal);
  const double lbw = probe.params.bandwidth(PortKind::LocalRow);
  const SimTime expected = units::transfer_time(size, tbw) + probe.params.terminal_latency +
                           probe.params.router_delay + units::transfer_time(size, lbw) +
                           probe.params.local_latency + probe.params.router_delay +
                           units::transfer_time(size, tbw) + probe.params.terminal_latency;
  EXPECT_EQ(measured, expected);
}

TEST(Validation, CrossGroupLatencyIncludesGlobalLink) {
  // A minimal cross-group path pays >= one global-link latency more than any
  // intra-group path of the same payload.
  Probe intra;
  Probe inter;
  const Bytes size = 4096;
  const SimTime t_intra = intra.one_way(0, 95 * 4, size);       // same group, diagonal
  const SimTime t_inter = inter.one_way(0, 96 * 4 + 3, size);   // group 0 -> group 1
  EXPECT_GT(t_inter, t_intra - 2 * inter.params.router_delay);
  EXPECT_GE(t_inter, inter.params.global_latency);
}

TEST(Validation, LargeTransferApproachesTerminalBandwidth) {
  // A single large message between adjacent-router nodes is bottlenecked by
  // the slower of terminal/local links = local bandwidth (5.25 GiB/s).
  Probe probe;
  const Bytes size = 8 * units::kMiB;
  const SimTime measured = probe.one_way(0, 4, size);
  const double lbw = probe.params.bandwidth(PortKind::LocalRow);
  const double achieved = static_cast<double>(size) / static_cast<double>(measured);
  EXPECT_GT(achieved, 0.85 * lbw) << "pipelined transfer should approach the local link rate";
  EXPECT_LE(achieved, lbw * 1.01);
}

TEST(Validation, SameRouterTransferIsBufferWindowLimited) {
  // Same-router transfers are limited not by the 16 GiB/s terminal links but
  // by the credit window: a chunk occupies the router's 8 KiB terminal input
  // buffer from injection start until ejection completes (+ credit latency),
  // a ~940 ns round trip holding one of 4 chunk slots. Expected throughput is
  // therefore window/RTT (~8-9 B/ns), not the wire rate — a store-and-forward
  // artifact shared by every configuration (see DESIGN.md §4).
  Probe probe;
  const Bytes size = 8 * units::kMiB;
  const SimTime measured = probe.one_way(0, 1, size);
  const double tbw = probe.params.bandwidth(PortKind::Terminal);
  const double achieved = static_cast<double>(size) / static_cast<double>(measured);
  const double chunk = static_cast<double>(probe.params.chunk_bytes);
  const double rtt = chunk / tbw + probe.params.terminal_latency + probe.params.router_delay +
                     chunk / tbw + probe.params.terminal_latency;
  const double window_limit =
      static_cast<double>(probe.params.terminal_vc_buffer) / rtt;
  EXPECT_GT(achieved, 0.9 * window_limit);
  EXPECT_LE(achieved, tbw * 1.01);
}

TEST(Validation, PingPongRoundTripIsSymmetric) {
  // Replay a ping-pong: A sends, B receives then replies. The two directions
  // take the same time (deterministic symmetric topology).
  Trace trace(2);
  trace.rank(0).push_back(TraceOp::send(1, 64 * units::kKiB, 0));
  trace.rank(0).push_back(TraceOp::recv(1, 64 * units::kKiB, 1));
  trace.rank(1).push_back(TraceOp::recv(0, 64 * units::kKiB, 0));
  trace.rank(1).push_back(TraceOp::send(0, 64 * units::kKiB, 1));

  Engine engine;
  DragonflyTopology topo(TopoParams::theta());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  Rng rng(2);
  const Placement placement = make_placement(PlacementKind::Contiguous, topo.params(), 2, rng);
  ReplayEngine replay(engine, network, trace, placement);
  replay.start();
  engine.run();
  ASSERT_TRUE(replay.finished());
  // Rank 0 finishes when the pong arrives; the pong leg cannot be shorter
  // than half the round trip minus injection overlap.
  EXPECT_GT(replay.rank_finish_time(0), replay.rank_finish_time(1));
}

TEST(Validation, BisectionPairingSaturatesGlobalLinks) {
  // Pair every node of group 0 with a node of group 1 (the paper's
  // "bisection pairing"): aggregate cross-group bandwidth is then capped by
  // the 120 global links between the two groups, and all of those links (and
  // only links of that pair, under minimal routing from group 0) carry
  // traffic.
  Engine engine;
  DragonflyTopology topo(TopoParams::theta());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  const int nodes_per_group = topo.params().routers_per_group() * topo.params().nodes_per_router;
  const Bytes size = 64 * units::kKiB;
  for (int i = 0; i < nodes_per_group; ++i)
    network.send(i, nodes_per_group + i, size);
  engine.run();

  Bytes pair_traffic = 0;
  Bytes elsewhere = 0;
  for (const GlobalLink& link : topo.global_links(0, 1)) {
    const Bytes t = network.router(link.src_router).port(link.src_port).traffic;
    EXPECT_GT(t, 0) << "every 0->1 global link should be used";
    pair_traffic += t;
  }
  for (GroupId a = 0; a < topo.params().groups; ++a) {
    for (GroupId b = 0; b < topo.params().groups; ++b) {
      if (a == b || (a == 0 && b == 1)) continue;
      for (const GlobalLink& link : topo.global_links(a, b))
        elsewhere += network.router(link.src_router).port(link.src_port).traffic;
    }
  }
  EXPECT_EQ(pair_traffic, static_cast<Bytes>(nodes_per_group) * size);
  EXPECT_EQ(elsewhere, 0) << "minimal routing must not leak traffic to other group pairs";
}

}  // namespace
}  // namespace dfly
