// Unit and property tests for the deterministic RNG.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <set>

namespace dfly {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformBoundOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIsRoughlyUnbiased) {
  Rng rng(13);
  std::array<int, 10> counts{};
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform(10)];
  for (const int c : counts) EXPECT_NEAR(c, draws / 10, draws / 100);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i)
    if (v[i] != i) ++moved;
  EXPECT_GT(moved, 50);
}

TEST(Rng, ForkedStreamsDifferFromParentAndEachOther) {
  Rng parent(23);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(parent.next());
    seen.insert(c1.next());
    seen.insert(c2.next());
  }
  EXPECT_EQ(seen.size(), 300u);  // no collisions across streams
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(31), b(31);
  Rng fa = a.fork(5);
  Rng fb = b.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next(), fb.next());
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

class RngBoundProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundProperty, NoModuloBiasOnSmallBounds) {
  // For bound b, frequencies of each residue should be within 5 sigma.
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 1234567 + 1);
  std::vector<int> counts(bound, 0);
  const int draws = 20000 * static_cast<int>(bound);
  for (int i = 0; i < draws; ++i) ++counts[rng.uniform(bound)];
  const double expect = static_cast<double>(draws) / static_cast<double>(bound);
  const double sigma = std::sqrt(expect * (1.0 - 1.0 / static_cast<double>(bound)));
  for (const int c : counts) EXPECT_NEAR(c, expect, 5 * sigma);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundProperty, ::testing::Values(2, 3, 5, 7, 11));

}  // namespace
}  // namespace dfly
