// Per-run observability context: options, counter registration, and the
// run-artifact exporter.
//
// RunTelemetry bundles the flight-recorder tracer (obs/trace.hpp), the
// counter registry + periodic snapshot probe (obs/counters.hpp) and the
// routing-decision stats (routing/algorithm.hpp) for one experiment run, and
// wires them into the network/routing hooks on construction (and out again on
// destruction). With TelemetryOptions::enabled = false none of this is
// constructed and every hook stays a branch-on-null no-op.
//
// Artifacts written per run into <out_dir>/<config>/:
//   trace.json    — Chrome trace-event JSON (chrome://tracing / Perfetto)
//   counters.jsonl — one flat JSON object per counter snapshot
//   heatmap.csv   — per-(router, port) traffic / saturation / utilization
//   metrics.json  — RunMetrics + fault/health outcome + SchedulerStats
#pragma once

#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "routing/algorithm.hpp"

namespace dfly {

class Network;
class FaultInjector;
class HealthMonitor;
struct ExperimentResult;

struct TelemetryOptions {
  bool enabled = false;
  /// Fraction of injected chunks whose full hop-by-hop path is recorded.
  double sample_rate = 0.01;
  /// Run artifacts land in <out_dir>/<config name>/.
  std::string out_dir = "telemetry-out";
  /// Emit trace.json (the largest artifact); counters/heatmap/metrics always.
  bool chrome_trace = true;
  /// Counter-snapshot probe period.
  SimTime snapshot_interval = units::kMillisecond;

  void validate() const;  ///< throws std::invalid_argument on bad values
};

// --- counter registration (subsystem fields -> named registry entries) ---
void register_engine_counters(CounterRegistry& registry, const Engine& engine);
void register_network_counters(CounterRegistry& registry, const Network& network);
void register_routing_counters(CounterRegistry& registry, const RoutingTelemetry& telemetry);
void register_fault_counters(CounterRegistry& registry, const FaultInjector& injector);
void register_health_counters(CounterRegistry& registry, const HealthMonitor& monitor);

class RunTelemetry {
 public:
  /// Hooks the tracer into `network` and the decision stats into `routing`,
  /// and registers engine/network/routing counters. Both references must
  /// outlive this object; the destructor unhooks them again.
  RunTelemetry(Engine& engine, Network& network, RoutingAlgorithm& routing,
               const TelemetryOptions& options);
  ~RunTelemetry();
  RunTelemetry(const RunTelemetry&) = delete;
  RunTelemetry& operator=(const RunTelemetry&) = delete;

  /// Starts the periodic counter probe; call once before Engine::run().
  void start() { probe_.start(); }
  /// Stops the probe from rescheduling (call from a completion callback so
  /// pending probes never keep a finished simulation alive).
  void request_stop() { probe_.request_stop(); }
  /// Takes the final end-of-run counter snapshot and flushes the tracer's
  /// per-lane hop buffers into the trace writer (sharded runs buffer).
  void finish(SimTime end) {
    tracer_.flush();
    probe_.sample_now(end);
  }

  /// Checkpoint support (src/ckpt/): tracer state, buffered chrome-trace
  /// hops, routing-decision stats and the probe's snapshot history. The
  /// registry itself is not serialized — every counter here is a polled
  /// source whose value lives in (and is restored with) its subsystem.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

  const TelemetryOptions& options() const { return options_; }
  CounterRegistry& registry() { return registry_; }
  CounterProbe& probe() { return probe_; }
  ChunkPathTracer& tracer() { return tracer_; }
  const ChunkPathTracer& tracer() const { return tracer_; }
  RoutingTelemetry& routing_stats() { return routing_stats_; }
  const RoutingTelemetry& routing_stats() const { return routing_stats_; }
  const ChromeTraceWriter& trace() const { return trace_; }
  const std::vector<CounterSnapshot>& snapshots() const { return probe_.snapshots(); }

 private:
  Network& network_;
  RoutingAlgorithm& routing_;
  TelemetryOptions options_;
  CounterRegistry registry_;
  ChromeTraceWriter trace_;
  ChunkPathTracer tracer_;
  RoutingTelemetry routing_stats_;
  CounterProbe probe_;
};

/// Serializes the run's artifacts into <out_dir>/<result.config>/ (directories
/// are created as needed). Returns the artifact directory, or an empty string
/// on I/O failure (a warning is logged; the simulation result is unaffected).
std::string export_run_artifacts(const RunTelemetry& telemetry, const ExperimentResult& result,
                                 const Network& network, SimTime end);

}  // namespace dfly
