// Fixed-bin histogram and time-bucketed load profiles.
//
// TimeProfile backs the Fig. 2 "message load per rank over time" plots: each
// injected message adds its bytes to the bucket of its injection time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace dfly {

/// Equal-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin so totals are conserved. Non-finite samples (NaN/inf) are
/// dropped and counted separately — they have no meaningful bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }
  /// Samples rejected because x was NaN or infinite.
  std::uint64_t non_finite() const { return non_finite_; }

 private:
  double lo_, hi_, width_;
  std::vector<double> counts_;
  double total_ = 0;
  std::uint64_t non_finite_ = 0;
};

/// Accumulates bytes into fixed-duration time buckets.
class TimeProfile {
 public:
  explicit TimeProfile(SimTime bucket_width);

  void add(SimTime t, Bytes bytes);

  SimTime bucket_width() const { return width_; }
  std::size_t buckets() const { return bytes_.size(); }
  Bytes bytes_in(std::size_t bucket) const { return bytes_[bucket]; }
  /// Largest per-bucket total; the paper's "peak load" (Table II).
  Bytes peak() const;
  Bytes total() const { return total_; }

 private:
  SimTime width_;
  std::vector<Bytes> bytes_;
  Bytes total_ = 0;
};

}  // namespace dfly
