#include "metrics/collector.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace dfly {

double RunMetrics::max_comm_ms() const {
  double m = 0;
  for (const double t : comm_time_ms) m = std::max(m, t);
  return m;
}

double RunMetrics::median_comm_ms() const {
  return percentile(comm_time_ms, 50.0);
}

RunMetrics collect_metrics(const Network& network, const ReplayEngine& replay,
                           const Placement& placement, const Engine& engine) {
  RunMetrics m;
  const DragonflyTopology& topo = network.topology();

  m.comm_time_ms.reserve(placement.ranks());
  m.avg_hops.reserve(placement.ranks());
  for (int rank = 0; rank < placement.ranks(); ++rank) {
    const SimTime finish = replay.rank_finish_time(rank);
    m.comm_time_ms.push_back(finish >= 0 ? units::to_ms(finish) : -1.0);
    m.avg_hops.push_back(network.hop_stats(placement.node_of_rank(rank)).average());
  }

  for (const RouterId r : serving_routers(topo.params(), placement)) {
    const Router& router = network.router(r);
    for (int p = 0; p < router.num_ports(); ++p) {
      const OutPort& port = router.port(p);
      switch (port.kind) {
        case PortKind::LocalRow:
        case PortKind::LocalCol:
          m.local_traffic_mb.push_back(units::to_mb(port.traffic));
          m.local_saturation_ms.push_back(units::to_ms(port.saturated_time));
          break;
        case PortKind::Global:
          m.global_traffic_mb.push_back(units::to_mb(port.traffic));
          m.global_saturation_ms.push_back(units::to_ms(port.saturated_time));
          break;
        case PortKind::Terminal:
          break;
      }
    }
  }

  m.makespan_ms = m.comm_time_ms.empty()
                      ? 0.0
                      : *std::max_element(m.comm_time_ms.begin(), m.comm_time_ms.end());
  m.events = engine.events_processed();
  m.chunks = network.chunks_forwarded();
  m.bytes_delivered = network.bytes_delivered();
  m.scheduler = engine.scheduler_stats();
  return m;
}

}  // namespace dfly
