file(REMOVE_RECURSE
  "CMakeFiles/dfly_sim.dir/dfly_sim.cpp.o"
  "CMakeFiles/dfly_sim.dir/dfly_sim.cpp.o.d"
  "dfly_sim"
  "dfly_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfly_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
