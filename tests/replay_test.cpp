// Unit tests for the MPI-semantics replay engine.
#include "replay/replay.hpp"

#include <gtest/gtest.h>

#include "routing/minimal.hpp"
#include "workload/exchange.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

/// Builds the scaffolding for replaying a trace on the tiny topology with a
/// contiguous placement and minimal routing.
struct Harness {
  explicit Harness(const Trace& trace_in, PlacementKind kind = PlacementKind::Contiguous)
      : trace(trace_in),
        topo(TopoParams::tiny()),
        routing(topo),
        network(engine, topo, NetworkParams::theta(), routing, Rng(1)),
        placement(make_placement_helper(kind, topo.params(), trace.ranks())),
        replay(engine, network, trace, placement) {}

  static Placement make_placement_helper(PlacementKind kind, const TopoParams& p, int ranks) {
    Rng rng(5);
    return make_placement(kind, p, ranks, rng);
  }

  SimTime run() {
    replay.start();
    engine.set_event_limit(100'000'000);
    engine.run();
    EXPECT_FALSE(engine.hit_event_limit());
    return engine.now();
  }

  Trace trace;
  Engine engine;
  DragonflyTopology topo;
  MinimalRouting routing;
  Network network;
  Placement placement;
  ReplayEngine replay;
};

TEST(Replay, EmptyTraceFinishesAtTimeZero) {
  Trace trace(4);
  Harness h(trace);
  h.run();
  EXPECT_TRUE(h.replay.finished());
  for (int r = 0; r < 4; ++r) EXPECT_EQ(h.replay.rank_finish_time(r), 0);
}

TEST(Replay, SimpleExchangeCompletes) {
  Trace trace(2);
  TagAllocator tags;
  emit_exchange(trace, tags, 0, 1, 10000);
  emit_phase_end(trace);
  Harness h(trace);
  h.run();
  EXPECT_TRUE(h.replay.finished());
  EXPECT_GT(h.replay.rank_finish_time(0), 0);
  EXPECT_GT(h.replay.rank_finish_time(1), 0);
}

TEST(Replay, BlockingSendRecvOrdering) {
  // Rank 0 sends twice (blocking); rank 1 receives in order. Finish times
  // must be positive and rank 1 finishes no earlier than rank 0 starts its
  // second send.
  Trace trace(2);
  trace.rank(0).push_back(TraceOp::send(1, 5000, 0));
  trace.rank(0).push_back(TraceOp::send(1, 5000, 1));
  trace.rank(1).push_back(TraceOp::recv(0, 5000, 0));
  trace.rank(1).push_back(TraceOp::recv(0, 5000, 1));
  Harness h(trace);
  h.run();
  EXPECT_TRUE(h.replay.finished());
  // Receiver finishes after the sender (delivery lags injection).
  EXPECT_GT(h.replay.rank_finish_time(1), h.replay.rank_finish_time(0));
}

TEST(Replay, UnexpectedMessageBuffering) {
  // Rank 0 isends before rank 1 posts its recv (rank 1 first waits for a
  // message from rank 2, delaying its recv of rank 0's early message).
  Trace trace(3);
  trace.rank(0).push_back(TraceOp::isend(1, 1000, 0));
  trace.rank(0).push_back(TraceOp::waitall());
  trace.rank(2).push_back(TraceOp::send(1, 200000, 0));
  trace.rank(1).push_back(TraceOp::recv(2, 200000, 0));
  trace.rank(1).push_back(TraceOp::recv(0, 1000, 0));
  Harness h(trace);
  h.run();
  EXPECT_TRUE(h.replay.finished());
}

TEST(Replay, BarrierSynchronizesAllRanks) {
  // Rank 0 does a long transfer to rank 1 before the barrier; ranks 2,3 hit
  // the barrier immediately. After the barrier every rank records a delay.
  // All finish times must be >= the transfer completion.
  Trace trace(4);
  trace.rank(0).push_back(TraceOp::send(1, 500 * units::kKB, 0));
  trace.rank(1).push_back(TraceOp::recv(0, 500 * units::kKB, 0));
  for (int r = 0; r < 4; ++r) trace.rank(r).push_back(TraceOp::barrier());
  Harness h(trace);
  h.run();
  EXPECT_TRUE(h.replay.finished());
  const SimTime t1 = h.replay.rank_finish_time(1);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(h.replay.rank_finish_time(r), t1)
      << "barrier must equalize finish times in this trace";
}

TEST(Replay, ConsecutiveBarriers) {
  Trace trace(3);
  for (int i = 0; i < 5; ++i)
    for (int r = 0; r < 3; ++r) trace.rank(r).push_back(TraceOp::barrier());
  Harness h(trace);
  h.run();
  EXPECT_TRUE(h.replay.finished());
}

TEST(Replay, DelayAdvancesLocalTime) {
  Trace trace(2);
  trace.rank(0).push_back(TraceOp::pause(12345));
  trace.rank(1).push_back(TraceOp::pause(100));
  Harness h(trace);
  h.run();
  EXPECT_EQ(h.replay.rank_finish_time(0), 12345);
  EXPECT_EQ(h.replay.rank_finish_time(1), 100);
}

TEST(Replay, WaitAllDrainsBothSendsAndRecvs) {
  Trace trace(2);
  TagAllocator tags;
  for (int i = 0; i < 10; ++i) emit_exchange(trace, tags, 0, 1, 30000);
  emit_phase_end(trace);
  Harness h(trace);
  h.run();
  EXPECT_TRUE(h.replay.finished());
}

TEST(Replay, CompletionCallbackFiresOnce) {
  Trace trace = make_ring_trace(8, 10000);
  Harness h(trace);
  int calls = 0;
  SimTime when = -1;
  h.replay.set_completion_callback([&](SimTime t) {
    ++calls;
    when = t;
  });
  const SimTime end = h.run();
  EXPECT_EQ(calls, 1);
  EXPECT_LE(when, end);
  EXPECT_TRUE(h.replay.finished());
}

TEST(Replay, RingTraceFinishTimesArePositiveAndBounded) {
  Trace trace = make_ring_trace(16, 64 * units::kKiB, 3);
  Harness h(trace, PlacementKind::RandomNode);
  const SimTime end = h.run();
  for (int r = 0; r < 16; ++r) {
    EXPECT_GT(h.replay.rank_finish_time(r), 0);
    EXPECT_LE(h.replay.rank_finish_time(r), end);
  }
}

TEST(Replay, MismatchedPlacementThrows) {
  Trace trace(4);
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  Rng rng(2);
  Placement placement = make_placement(PlacementKind::Contiguous, topo.params(), 8, rng);
  EXPECT_THROW(ReplayEngine(engine, network, trace, placement), std::invalid_argument);
}

TEST(Replay, ScaledTraceStillCompletes) {
  Trace trace = make_ring_trace(8, 100 * units::kKB, 2);
  trace.scale_message_sizes(0.01);
  Harness h(trace);
  h.run();
  EXPECT_TRUE(h.replay.finished());
}

}  // namespace
}  // namespace dfly
