// Checkpoint inspection and resume self-check.
//
// Usage:
//   dfly_ckpt info <snapshot.ckpt>
//     Print the snapshot's summary header (config, seed, simulated time,
//     event counts, subsystem lineup) without reconstructing the run.
//
//   dfly_ckpt selfcheck [out_dir]
//     Bit-exactness proof of the checkpoint layer on a small system, for one
//     minimal- and one adaptive-routing configuration, both with mid-run link
//     faults: run each config straight through (golden), run it again but
//     stop at the first snapshot past T/2 (emulating a killed job), resume
//     from the snapshot, and byte-compare every telemetry artifact
//     (metrics.json, counters.jsonl, heatmap.csv, trace.json) of the resumed
//     run against the golden run. Exits nonzero on any difference.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace dfly;

int cmd_info(const std::string& path) {
  const ckpt::CheckpointInfo info = ckpt::inspect_checkpoint(path);
  std::printf("snapshot         : %s\n", path.c_str());
  std::printf("config           : %s\n", info.config.c_str());
  std::printf("seed             : %llu\n", static_cast<unsigned long long>(info.seed));
  std::printf("simulated time   : %lld ns\n", static_cast<long long>(info.time));
  std::printf("events processed : %llu\n",
              static_cast<unsigned long long>(info.events_processed));
  std::printf("pending events   : %llu\n",
              static_cast<unsigned long long>(info.pending_events));
  std::printf("subsystems       : replay network%s%s%s%s\n",
              info.has_background ? " background" : "", info.has_injector ? " faults" : "",
              info.has_monitor ? " health" : "", info.has_telemetry ? " telemetry" : "");
  return 0;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return "<unreadable: " + path + ">";
  return std::string(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
}

/// Byte-compares the four run artifacts between two telemetry directories.
bool artifacts_identical(const std::string& golden_dir, const std::string& resumed_dir) {
  bool ok = true;
  for (const char* name : {"metrics.json", "counters.jsonl", "heatmap.csv", "trace.json"}) {
    const std::string a = slurp(golden_dir + "/" + name);
    const std::string b = slurp(resumed_dir + "/" + name);
    if (a != b) {
      std::printf("  MISMATCH %-14s golden=%zu bytes, resumed=%zu bytes\n", name, a.size(),
                  b.size());
      ok = false;
    } else {
      std::printf("  ok       %-14s %zu bytes identical\n", name, a.size());
    }
  }
  return ok;
}

int cmd_selfcheck(const std::string& out_dir) {
  namespace fs = std::filesystem;
  fs::create_directories(out_dir);

  // Small system so the self-check runs in seconds: 3 groups of 2x4 routers,
  // 2 nodes each (48 nodes), 24 ranks exchanging 64 KiB around a ring.
  ExperimentOptions base;
  base.topo = TopoParams::tiny();
  base.seed = 7;
  base.telemetry.enabled = true;
  base.telemetry.sample_rate = 0.05;
  base.telemetry.snapshot_interval = 20 * units::kMicrosecond;
  const Workload workload{"ring",
                          make_ring_trace(/*ranks=*/24, 64 * units::kKiB, /*iterations=*/4)};

  // Mid-run link faults: down a quarter of the global links early, restore
  // one of them later — the checkpoint must carry the degraded link state,
  // the retransmit timers and the not-yet-fired recovery event.
  {
    const DragonflyTopology topo(base.topo);
    Rng rng(99);
    base.faults = random_global_fault_schedule(topo, 0.25, 30 * units::kMicrosecond, rng);
    if (!base.faults.empty()) {
      const FaultEvent& first = base.faults.front();
      base.faults.push_back(
          FaultEvent::global_up(90 * units::kMicrosecond, first.a, first.b, first.index));
    }
  }

  bool all_ok = true;
  for (const ExperimentConfig config :
       {ExperimentConfig{PlacementKind::Contiguous, RoutingKind::Minimal},
        ExperimentConfig{PlacementKind::RandomNode, RoutingKind::Adaptive}}) {
    const std::string name = config.name();
    std::printf("[%s] golden straight-through run...\n", name.c_str());
    ExperimentOptions golden = base;
    golden.telemetry.out_dir = out_dir + "/golden";
    const ExperimentResult gold = run_experiment(workload, config, golden);
    const SimTime makespan = static_cast<SimTime>(gold.metrics.makespan_ms * 1e6);
    std::printf("[%s] makespan %.3f ms, %llu events\n", name.c_str(), gold.metrics.makespan_ms,
                static_cast<unsigned long long>(gold.metrics.events));

    // Interrupted run: snapshot every makespan/8, die at the first snapshot
    // past T/2.
    const std::string snapshot = out_dir + "/" + name + ".ckpt";
    ExperimentOptions interrupted = base;
    interrupted.telemetry.out_dir = out_dir + "/resumed";
    interrupted.checkpoint.interval = makespan / 8 > 0 ? makespan / 8 : 1;
    interrupted.checkpoint.path = snapshot;
    interrupted.checkpoint.stop_after = makespan / 2;
    std::printf("[%s] interrupted run (checkpoint every %lld ns, stop past %lld ns)...\n",
                name.c_str(), static_cast<long long>(interrupted.checkpoint.interval),
                static_cast<long long>(interrupted.checkpoint.stop_after));
    const ExperimentResult partial = run_experiment(workload, config, interrupted);
    if (!partial.stopped_at_checkpoint) {
      std::printf("[%s] FAIL: run completed before reaching the stop-after snapshot\n",
                  name.c_str());
      all_ok = false;
      continue;
    }
    const ckpt::CheckpointInfo info = ckpt::inspect_checkpoint(snapshot);
    std::printf("[%s] snapshot at %lld ns (%llu events processed, %llu pending)\n", name.c_str(),
                static_cast<long long>(info.time),
                static_cast<unsigned long long>(info.events_processed),
                static_cast<unsigned long long>(info.pending_events));

    // Resume and compare artifacts byte-for-byte.
    ExperimentOptions resumed = interrupted;
    resumed.checkpoint.resume = true;
    resumed.checkpoint.stop_after = 0;
    const ExperimentResult res = run_experiment(workload, config, resumed);
    std::printf("[%s] resumed to %.3f ms, %llu events; comparing artifacts:\n", name.c_str(),
                res.metrics.makespan_ms, static_cast<unsigned long long>(res.metrics.events));
    if (!artifacts_identical(out_dir + "/golden/" + name, out_dir + "/resumed/" + name))
      all_ok = false;
  }

  std::printf("selfcheck: %s\n", all_ok ? "PASS (resume is bit-exact)" : "FAIL");
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  try {
    if (mode == "info" && argc == 3) return cmd_info(argv[2]);
    if (mode == "selfcheck") return cmd_selfcheck(argc > 2 ? argv[2] : "ckpt-selfcheck-out");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dfly_ckpt: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "usage: %s info <snapshot.ckpt> | selfcheck [out_dir]\n", argv[0]);
  return 2;
}
