// Reproduces Fig. 7: sensitivity of the maximum per-rank communication time
// to message load, for the four extreme configurations, relative to the
// rand-adp baseline at each scale.
//
// Paper shape:
//   CR  (7a): contiguous competitive only at very small loads; random-node
//             pulls ahead as load grows; minimal close to adaptive.
//   FB  (7b): rand-adp best at every scale; cont-min blows up with load.
//   AMG (7c): contiguous wins at low intensity (<~10x), random-node at high.
//
// The x-axes match the paper: CR/FB swept from 1% to 2x the original size,
// AMG from 0.5x to 20x.
#include <iostream>

#include "bench_common.hpp"
#include "core/sensitivity.hpp"

int main() {
  using namespace dfly;
  const double scale = env_scale(1.0);  // multiplies the paper's sweep points
  const std::uint64_t seed = env_seed(42);
  print_bench_header("Fig. 7", "communication-intensity sensitivity sweep", scale, seed);

  ExperimentOptions options;
  options.seed = seed;
  const int threads = bench::bench_threads();

  struct Sweep {
    const char* name;
    Workload (*make)(double);
    std::vector<double> scales;
  };
  // Sweep endpoints match the paper's axes (CR/FB: 1%..2x, AMG: 0.5x..20x).
  const Sweep sweeps[] = {
      {"CR", [](double s) { return bench::cr_workload(s); }, {0.01, 0.25, 1.0, 2.0}},
      {"FB", [](double s) { return bench::fb_workload(s); }, {0.01, 0.25, 1.0, 2.0}},
      {"AMG", [](double s) { return bench::amg_workload(s); }, {0.5, 2.0, 10.0, 20.0}},
  };

  for (const Sweep& sweep : sweeps) {
    std::printf("sweeping %s over %zu message-load points...\n", sweep.name,
                sweep.scales.size());
    std::vector<double> scales;
    for (const double s : sweep.scales) scales.push_back(s * scale);
    const SensitivityResult result = run_sensitivity(
        [&](double s) { return sweep.make(s); }, scales, extreme_configs(), options, threads);
    result
        .to_table(std::string(sweep.name) +
                  ": max comm time relative to rand-adp (%), by message scale")
        .print_markdown(std::cout);
  }
  return 0;
}
