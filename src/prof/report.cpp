#include "prof/report.hpp"

#include <filesystem>
#include <fstream>
#include <string>

#include "obs/json.hpp"
#include "prof/profiler.hpp"
#include "util/log.hpp"

namespace dfly::prof {

namespace {

void write_histogram(obs::JsonWriter& w, const std::string& key, const WallHistogram& h) {
  w.key(key).begin_object();
  w.field("count", h.count());
  w.field("min_ns", h.min());
  w.field("max_ns", h.max());
  w.field("mean_ns", h.mean());
  w.field("sum_ns", h.sum());
  w.field("sub_bucket_bits", h.sub_bucket_bits());
  w.key("percentiles").begin_object();
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    std::string label = std::to_string(p);
    label.erase(label.find_last_not_of('0') + 1);
    if (!label.empty() && label.back() == '.') label.pop_back();
    w.field("p" + label, h.percentile(p));
  }
  w.end_object();
  w.end_object();
}

void write_rates(obs::JsonWriter& w, const std::string& key,
                 const ThroughputTracker::Rates& rates) {
  w.key(key).begin_object();
  w.field("events_per_sec", rates.events_per_sec);
  w.field("chunks_per_sec", rates.chunks_per_sec);
  w.field("sim_per_wall", rates.sim_per_wall);
  w.end_object();
}

}  // namespace

void write_prof_report(std::ostream& os, const Profiler& profiler, const std::string& config) {
  obs::JsonWriter w(os, 2);
  w.begin_object();
  w.field("schema_version", kProfSchemaVersion);
  w.field("config", config);
  w.field("threads", profiler.threads());
  w.field("lanes", profiler.lanes());
  w.field("wall_ns", profiler.run_wall_ns());

  w.key("subsystems").begin_object();
  for (int i = 0; i < static_cast<int>(Subsystem::kCount); ++i) {
    const auto s = static_cast<Subsystem>(i);
    w.key(to_string(s)).begin_object();
    w.field("ns", profiler.subsystem_ns(s));
    w.field("calls", profiler.subsystem_calls(s));
    w.end_object();
  }
  w.end_object();

  w.key("lanes_breakdown").begin_array();
  for (int i = 0; i < profiler.lanes(); ++i) {
    const LaneProf& lp = profiler.lane(i);
    w.begin_object();
    w.field("lane", i);
    w.field("busy_ns", lp.busy_ns);
    w.field("barrier_wait_ns", lp.barrier_wait_ns);
    w.field("flush_ns", lp.flush_ns);
    w.field("events", lp.events);
    w.field("batches", lp.batches);
    w.end_object();
  }
  w.end_array();

  w.field("lane_imbalance", profiler.lane_imbalance());
  w.field("barrier_stall_fraction", profiler.barrier_stall_fraction());

  w.key("histograms").begin_object();
  write_histogram(w, "dispatch_ns", profiler.dispatch_histogram());
  write_histogram(w, "barrier_wait_ns", profiler.barrier_histogram());
  w.end_object();

  const ThroughputTracker& t = profiler.throughput();
  w.key("throughput").begin_object();
  w.field("samples", t.samples());
  w.field("wall_ns", t.started() ? t.wall_ns() : std::int64_t{0});
  write_rates(w, "cumulative", t.cumulative());
  write_rates(w, "rolling", t.rolling());
  w.end_object();

  w.end_object();
  os << '\n';
}

bool write_prof_json(const std::string& path, const Profiler& profiler,
                     const std::string& config) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path parent = fs::path(path).parent_path();
  if (!parent.empty()) fs::create_directories(parent, ec);
  if (ec) {
    log_warn("prof: cannot create " + parent.string() + ": " + ec.message());
    return false;
  }
  std::ofstream f(path);
  if (!f) {
    log_warn("prof: cannot write " + path);
    return false;
  }
  write_prof_report(f, profiler, config);
  if (!f) {
    log_warn("prof: write failed: " + path);
    return false;
  }
  return true;
}

}  // namespace dfly::prof
