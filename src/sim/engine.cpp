#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

#include "ckpt/snapshot_io.hpp"

namespace dfly {

void Engine::schedule(SimTime when, EventHandler* handler, EventPayload payload) {
  assert(handler != nullptr);
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(QueuedEvent{when, seq_++, handler, payload});
}

bool Engine::step() {
  if (stop_requested_) return false;
  if (queue_.empty()) return false;
  if (event_limit_ != 0 && processed_ >= event_limit_) {
    hit_limit_ = true;
    return false;
  }
  const QueuedEvent ev = queue_.pop_min();
  now_ = ev.time;
  ++processed_;
  ev.handler->handle_event(now_, ev.payload);
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  return now_;
}

void Engine::save_state(ckpt::Writer& w,
                        const std::function<std::uint32_t(EventHandler*)>& id_of) const {
  w.i64(now_);
  w.u64(seq_);
  w.u64(processed_);
  queue_.save_state(w, id_of);
}

void Engine::load_state(ckpt::Reader& r,
                        const std::function<EventHandler*(std::uint32_t)>& handler_of) {
  assert(queue_.empty() && processed_ == 0 && "load_state requires a fresh engine");
  now_ = r.i64();
  seq_ = r.u64();
  processed_ = r.u64();
  if (now_ < 0 || processed_ > seq_)
    throw std::runtime_error("snapshot: inconsistent engine clock state");
  queue_.load_state(r, handler_of);
}

SimTime Engine::run_until(SimTime deadline) {
  run_slice(deadline);
  // Advance to the deadline only on a genuine drain: a run halted by
  // request_stop() or the event-limit watchdog must not teleport forward.
  if (queue_.empty() && !stop_requested_ && !hit_limit_ && now_ < deadline) now_ = deadline;
  return now_;
}

SimTime Engine::run_slice(SimTime deadline) {
  while (!queue_.empty() && queue_.min().time <= deadline) {
    if (!step()) break;
  }
  return now_;
}

}  // namespace dfly
