// prof.json: the on-disk form of one run's wall-clock attribution.
//
// Written next to metrics.json (telemetry.out_dir/<config>/prof.json) whenever
// [prof] enabled is set. Layout (schema_version 1):
//
//   config/threads/lanes/wall_ns        run identity and total wall span
//   subsystems.<name>.{ns,calls}        inclusive wall attribution per target
//   lanes[]                             per-lane busy / barrier-wait / flush
//   lane_imbalance, barrier_stall_fraction
//   histograms.{dispatch_ns,barrier_wait_ns}   HDR summaries + percentiles
//   throughput.{cumulative,rolling}     events/s, chunks/s, sim-per-wall
//
// The file holds wall-clock values and is therefore the ONE artifact allowed
// to differ between identical runs; everything else stays byte-identical with
// profiling on or off.
#pragma once

#include <ostream>
#include <string>

namespace dfly::prof {

class Profiler;

inline constexpr int kProfSchemaVersion = 1;

/// Renders the prof.json document for `profiler` into `os`.
void write_prof_report(std::ostream& os, const Profiler& profiler, const std::string& config);

/// Writes prof.json to `path`, creating parent directories. Returns false on
/// I/O failure (logged, never thrown — profiling must not fail a run).
bool write_prof_json(const std::string& path, const Profiler& profiler, const std::string& config);

}  // namespace dfly::prof
