#include "prof/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace dfly::prof {

void ProfOptions::validate() const {
  if (heartbeat_period_ms <= 0)
    throw std::invalid_argument("prof: heartbeat_period_ms must be positive");
  if (hist_bucket_bits < 0 || hist_bucket_bits > 8)
    throw std::invalid_argument("prof: hist_bucket_bits must be in [0, 8]");
}

const char* to_string(Subsystem s) {
  switch (s) {
    case Subsystem::EventDispatch: return "event_dispatch";
    case Subsystem::Routing: return "routing";
    case Subsystem::NicRetransmit: return "nic_retransmit";
    case Subsystem::CheckpointIo: return "checkpoint_io";
    case Subsystem::TelemetryExport: return "telemetry_export";
    case Subsystem::kCount: break;
  }
  return "?";
}

// --- ThroughputTracker -----------------------------------------------------

void ThroughputTracker::start(SimTime sim_ns, std::uint64_t events, std::uint64_t chunks) {
  start_at(Profiler::now_ns(), sim_ns, events, chunks);
}

void ThroughputTracker::sample(SimTime sim_ns, std::uint64_t events, std::uint64_t chunks) {
  sample_at(Profiler::now_ns(), sim_ns, events, chunks);
}

void ThroughputTracker::start_at(std::int64_t wall_ns, SimTime sim_ns, std::uint64_t events,
                                 std::uint64_t chunks) {
  started_ = true;
  samples_ = 0;
  first_ = last_ = window_origin_ = Point{wall_ns, sim_ns, events, chunks};
}

void ThroughputTracker::sample_at(std::int64_t wall_ns, SimTime sim_ns, std::uint64_t events,
                                  std::uint64_t chunks) {
  if (!started_) {
    start_at(wall_ns, sim_ns, events, chunks);
    return;
  }
  // The previous `last_` becomes history; the ring keeps the last kWindow of
  // them so the rolling origin trails the newest sample by at most kWindow.
  ring_[samples_ % kWindow] = last_;
  ++samples_;
  last_ = Point{wall_ns, sim_ns, events, chunks};
  window_origin_ = samples_ <= kWindow ? first_ : ring_[samples_ % kWindow];
}

ThroughputTracker::Rates ThroughputTracker::rates(const Point& a, const Point& b) {
  Rates r;
  const double wall_s = static_cast<double>(b.wall_ns - a.wall_ns) / 1e9;
  if (wall_s <= 0.0) return r;
  r.events_per_sec = static_cast<double>(b.events - a.events) / wall_s;
  r.chunks_per_sec = static_cast<double>(b.chunks - a.chunks) / wall_s;
  r.sim_per_wall = static_cast<double>(b.sim_ns - a.sim_ns) / 1e9 / wall_s;
  return r;
}

// --- Profiler --------------------------------------------------------------

Profiler::Profiler(const ProfOptions& options, int lanes, int threads)
    : options_(options), threads_(threads), barrier_hist_(options.hist_bucket_bits) {
  options_.validate();
  if (lanes < 1) throw std::invalid_argument("prof: lanes must be >= 1");
  lanes_.resize(static_cast<std::size_t>(lanes));
  subsystems_.resize(static_cast<std::size_t>(lanes));
  batch_busy_.resize(static_cast<std::size_t>(lanes), 0);
  dispatch_hists_.reserve(static_cast<std::size_t>(lanes));
  for (int i = 0; i < lanes; ++i) dispatch_hists_.emplace_back(options_.hist_bucket_bits);
}

std::int64_t Profiler::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Profiler::add(Subsystem s, int lane, std::int64_t ns) {
  SubsystemShard& shard = subsystems_[static_cast<std::size_t>(lane)];
  shard.ns[static_cast<int>(s)] += std::max<std::int64_t>(ns, 0);
  ++shard.calls[static_cast<int>(s)];
}

std::int64_t Profiler::subsystem_ns(Subsystem s) const {
  std::int64_t total = 0;
  for (const SubsystemShard& shard : subsystems_) total += shard.ns[static_cast<int>(s)];
  return total;
}

std::uint64_t Profiler::subsystem_calls(Subsystem s) const {
  std::uint64_t total = 0;
  for (const SubsystemShard& shard : subsystems_) total += shard.calls[static_cast<int>(s)];
  return total;
}

void Profiler::record_dispatch(int lane, std::int64_t ns) {
  LaneProf& lp = lanes_[static_cast<std::size_t>(lane)];
  lp.busy_ns += std::max<std::int64_t>(ns, 0);
  ++lp.events;
  dispatch_hists_[static_cast<std::size_t>(lane)].add(ns);
  add(Subsystem::EventDispatch, lane, ns);
}

void Profiler::record_barrier_wait(int lane, std::int64_t wait_ns) {
  LaneProf& lp = lanes_[static_cast<std::size_t>(lane)];
  lp.barrier_wait_ns += std::max<std::int64_t>(wait_ns, 0);
  ++lp.batches;
  barrier_hist_.add(wait_ns);
}

void Profiler::add_flush(int lane, std::int64_t ns) {
  lanes_[static_cast<std::size_t>(lane)].flush_ns += std::max<std::int64_t>(ns, 0);
}

void Profiler::begin_batch(const std::vector<int>& active_lanes) {
  for (const int i : active_lanes)
    batch_busy_[static_cast<std::size_t>(i)] = lanes_[static_cast<std::size_t>(i)].busy_ns;
  batch_t0_ = now_ns();
}

void Profiler::end_batch(const std::vector<int>& active_lanes) {
  const std::int64_t span = now_ns() - batch_t0_;
  for (const int i : active_lanes) {
    const std::int64_t busy =
        lanes_[static_cast<std::size_t>(i)].busy_ns - batch_busy_[static_cast<std::size_t>(i)];
    record_barrier_wait(i, std::max<std::int64_t>(span - busy, 0));
  }
}

WallHistogram Profiler::dispatch_histogram() const {
  WallHistogram merged(options_.hist_bucket_bits);
  for (const WallHistogram& h : dispatch_hists_) merged.merge(h);
  return merged;
}

void Profiler::begin_run() { run_begin_ns_ = now_ns(); }

void Profiler::end_run() { run_wall_ns_ += now_ns() - run_begin_ns_; }

double Profiler::lane_imbalance() const {
  std::int64_t busiest = 0;
  std::int64_t total = 0;
  for (const LaneProf& lp : lanes_) {
    busiest = std::max(busiest, lp.busy_ns);
    total += lp.busy_ns;
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) / static_cast<double>(lanes_.size());
  return static_cast<double>(busiest) / mean;
}

double Profiler::barrier_stall_fraction() const {
  std::int64_t busy = 0;
  std::int64_t wait = 0;
  for (const LaneProf& lp : lanes_) {
    busy += lp.busy_ns;
    wait += lp.barrier_wait_ns;
  }
  return busy + wait > 0 ? static_cast<double>(wait) / static_cast<double>(busy + wait) : 0.0;
}

}  // namespace dfly::prof
