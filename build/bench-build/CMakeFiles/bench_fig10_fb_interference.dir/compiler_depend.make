# Empty compiler generated dependencies file for bench_fig10_fb_interference.
# This may be replaced when dependencies are built.
