#include "farm/retry.hpp"

#include <sys/wait.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace dfly::farm {

ExitInfo decode_wait_status(int status) {
  ExitInfo info;
  if (WIFEXITED(status)) {
    info.exited = true;
    info.code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    info.signal = WTERMSIG(status);
  }
  return info;
}

const char* to_string(ExitClass c) {
  switch (c) {
    case ExitClass::Ok: return "ok";
    case ExitClass::Transient: return "transient";
    case ExitClass::Crash: return "crash";
    case ExitClass::Timeout: return "timeout";
    case ExitClass::Permanent: return "permanent";
    case ExitClass::Interrupted: return "interrupted";
  }
  return "?";
}

ExitClass classify_exit(const ExitInfo& info) {
  if (info.timed_out) return ExitClass::Timeout;
  if (!info.exited) return ExitClass::Crash;  // signal death (or lost status)
  switch (info.code) {
    case kExitOk: return ExitClass::Ok;
    case kExitTransient: return ExitClass::Transient;
    case kExitInterrupted: return ExitClass::Interrupted;
    case kExitPermanent: return ExitClass::Permanent;
    default: return ExitClass::Crash;
  }
}

std::int64_t backoff_delay_ms(const FarmOptions& options, int failed_attempts,
                              std::uint64_t salt) {
  if (failed_attempts < 1) failed_attempts = 1;
  // Grow in doubles so a large factor/attempt count saturates at the cap
  // instead of overflowing.
  double base = static_cast<double>(options.backoff_ms) *
                std::pow(options.backoff_factor, failed_attempts - 1);
  base = std::min(base, static_cast<double>(kMaxBackoffMs));
  Rng rng(salt ^ (static_cast<std::uint64_t>(failed_attempts) * 0x9e3779b97f4a7c15ULL));
  const double jittered = base * (1.0 - options.jitter * rng.uniform_double());
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(jittered));
}

}  // namespace dfly::farm
