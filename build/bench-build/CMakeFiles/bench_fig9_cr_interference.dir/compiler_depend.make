# Empty compiler generated dependencies file for bench_fig9_cr_interference.
# This may be replaced when dependencies are built.
