// Extension studies beyond the paper's evaluation — the future-work items
// its §VI names (task mapping) and the model's extra capabilities:
//   1. task mapping over a fixed allocation (linear/random/blocked/spread);
//   2. routing algorithm panel incl. Valiant and omniscient UGAL-G;
//   3. degraded fabric (failed global links);
//   4. eager vs rendezvous messaging protocol;
//   5. output-port arbitration policy.
#include <iostream>

#include "bench_common.hpp"
#include "place/mapping.hpp"
#include "util/stats.hpp"
#include "replay/replay.hpp"

namespace {

using namespace dfly;

/// Runs one workload on an explicit placement and returns the metrics.
RunMetrics run_once(const Workload& workload, const DragonflyTopology& topo,
                    const NetworkParams& net, const Placement& placement, RoutingKind routing,
                    ReplayOptions replay_options = {}) {
  Engine engine;
  const auto algorithm = make_routing(routing, topo);
  Network network(engine, topo, net, *algorithm, Rng(99));
  ReplayEngine replay(engine, network, workload.trace, placement, replay_options);
  replay.start();
  engine.run();
  network.finalize(engine.now());
  return collect_metrics(network, replay, placement, engine);
}

void mapping_study(const Workload& workload, std::uint64_t seed) {
  const TopoParams params = TopoParams::theta();
  const DragonflyTopology topo(params);
  Table t("Task mapping on a random-router allocation (" + workload.name + ")");
  t.set_columns({"mapping", "median comm (ms)", "max comm (ms)", "median avg hops"});
  for (const MappingKind kind : kAllMappings) {
    Rng rng(seed);
    const Placement base =
        make_placement(PlacementKind::RandomRouter, params, workload.trace.ranks(), rng);
    const Placement mapped = apply_mapping(base, kind, params, rng);
    const RunMetrics m =
        run_once(workload, topo, NetworkParams::theta(), mapped, RoutingKind::Adaptive);
    t.add_row({to_string(kind), Table::num(m.median_comm_ms(), 3), Table::num(m.max_comm_ms(), 3),
               Table::num(percentile(m.avg_hops, 50), 2)});
  }
  t.print_markdown(std::cout);
}

void routing_panel(const Workload& workload, std::uint64_t seed) {
  const TopoParams params = TopoParams::theta();
  const DragonflyTopology topo(params);
  Table t("Routing algorithms under contiguous placement (" + workload.name + ")");
  t.set_columns({"routing", "median comm (ms)", "max comm (ms)", "median avg hops"});
  for (const RoutingKind kind : {RoutingKind::Minimal, RoutingKind::Adaptive,
                                 RoutingKind::Valiant, RoutingKind::AdaptiveGlobal}) {
    Rng rng(seed);
    const Placement placement =
        make_placement(PlacementKind::Contiguous, params, workload.trace.ranks(), rng);
    const RunMetrics m = run_once(workload, topo, NetworkParams::theta(), placement, kind);
    t.add_row({to_string(kind), Table::num(m.median_comm_ms(), 3), Table::num(m.max_comm_ms(), 3),
               Table::num(percentile(m.avg_hops, 50), 2)});
  }
  t.print_markdown(std::cout);
}

void fault_study(const Workload& workload, std::uint64_t seed) {
  Table t("Degraded fabric: failed global links (" + workload.name + ", rand placement)");
  t.set_columns({"failed links", "adaptive median (ms)", "minimal median (ms)"});
  for (const double fraction : {0.0, 0.25, 0.5, 0.75}) {
    DragonflyTopology topo(TopoParams::theta());
    int disabled = 0;
    if (fraction > 0) {
      Rng fault_rng(seed + 1);
      disabled = disable_random_global_links(topo, fraction, fault_rng);
    }
    Rng rng(seed);
    const Placement placement = make_placement(PlacementKind::RandomNode, topo.params(),
                                               workload.trace.ranks(), rng);
    const RunMetrics adp =
        run_once(workload, topo, NetworkParams::theta(), placement, RoutingKind::Adaptive);
    const RunMetrics min =
        run_once(workload, topo, NetworkParams::theta(), placement, RoutingKind::Minimal);
    t.add_row({Table::num(static_cast<std::int64_t>(disabled)),
               Table::num(adp.median_comm_ms(), 3), Table::num(min.median_comm_ms(), 3)});
  }
  t.print_markdown(std::cout);
}

void protocol_study(const Workload& workload, std::uint64_t seed) {
  const TopoParams params = TopoParams::theta();
  const DragonflyTopology topo(params);
  Table t("Messaging protocol (" + workload.name + ", rand-adp)");
  t.set_columns({"protocol", "median comm (ms)", "max comm (ms)"});
  struct Row {
    const char* name;
    ReplayOptions options;
  };
  ReplayOptions rendezvous;
  rendezvous.eager_threshold = 16 * units::kKiB;
  for (const Row& row : {Row{"eager (paper model)", ReplayOptions{}},
                         Row{"rendezvous >16KiB", rendezvous}}) {
    Rng rng(seed);
    const Placement placement =
        make_placement(PlacementKind::RandomNode, params, workload.trace.ranks(), rng);
    const RunMetrics m = run_once(workload, topo, NetworkParams::theta(), placement,
                                  RoutingKind::Adaptive, row.options);
    t.add_row({row.name, Table::num(m.median_comm_ms(), 3), Table::num(m.max_comm_ms(), 3)});
  }
  t.print_markdown(std::cout);
}

void arbitration_study(const Workload& workload, std::uint64_t seed) {
  const TopoParams params = TopoParams::theta();
  const DragonflyTopology topo(params);
  Table t("Output-port arbitration (" + workload.name + ", cont-adp)");
  t.set_columns({"policy", "median comm (ms)", "max comm (ms)"});
  for (const Arbitration policy : {Arbitration::FirstSendable, Arbitration::RoundRobinVc}) {
    NetworkParams net = NetworkParams::theta();
    net.arbitration = policy;
    Rng rng(seed);
    const Placement placement =
        make_placement(PlacementKind::Contiguous, params, workload.trace.ranks(), rng);
    const RunMetrics m = run_once(workload, topo, net, placement, RoutingKind::Adaptive);
    t.add_row({to_string(policy), Table::num(m.median_comm_ms(), 3),
               Table::num(m.max_comm_ms(), 3)});
  }
  t.print_markdown(std::cout);
}

}  // namespace

int main() {
  using namespace dfly;
  const double scale = env_scale(0.1);
  const std::uint64_t seed = env_seed(42);
  print_bench_header("Extensions", "task mapping, routing panel, faults, protocol, arbitration",
                     scale, seed);

  const Workload amg = bench::amg_workload(scale * 4);  // AMG is light; use 4x
  const Workload cr = bench::cr_workload(scale);

  mapping_study(amg, seed);
  routing_panel(cr, seed);
  fault_study(cr, seed);
  protocol_study(cr, seed);
  arbitration_study(cr, seed);
  return 0;
}
