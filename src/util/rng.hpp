// Deterministic, seedable random number generation.
//
// The whole study must be bit-reproducible: every source of randomness
// (placement shuffles, adaptive route candidate picks, background traffic
// destinations, workload fluctuation) draws from an Rng forked from a single
// master seed. We use xoshiro256** seeded via SplitMix64 — fast, high quality
// and trivially portable, unlike the unspecified std:: engines' distributions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dfly {

/// SplitMix64: used to expand seeds and to fork independent streams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** PRNG with helpers for the distributions the simulator needs.
class Rng {
 public:
  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  /// Raw 64 random bits.
  std::uint64_t next();

  /// Uniform integer in [0, bound) with rejection sampling (no modulo bias).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// True with probability p.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Forks an independent child stream; children with distinct tags are
  /// statistically independent of each other and of the parent.
  Rng fork(std::uint64_t tag);

  /// Derives the `index`-th member of a counter-based family of streams
  /// WITHOUT advancing this generator (unlike fork). Sharded subsystems use
  /// this to give every lane its own stream from one master seed: the family
  /// depends only on (master state, index), never on derivation order, so a
  /// parallel run and a serial run get identical per-lane sequences.
  Rng stream(std::uint64_t index) const;

  /// The four xoshiro256** state words, for checkpoint/restore: a stream
  /// restored via set_state continues the exact draw sequence.
  std::array<std::uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace dfly
