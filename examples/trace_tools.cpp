// Example: generate, persist, reload and characterize application traces —
// the trace tooling workflow (our DUMPI-equivalent format).
//
// Usage: trace_tools [output.dftrace]
//   default: writes amg.dftrace to the current directory
#include <cstdio>
#include <iostream>

#include "trace/trace_io.hpp"
#include "workload/characterize.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const std::string path = argc > 1 ? argv[1] : "amg.dftrace";

  // 1. Generate a small AMG trace (6^3 = 216 ranks, 2 V-cycles).
  AmgParams params;
  params.nx = params.ny = params.nz = 6;
  params.vcycles = 2;
  const Workload workload = make_amg(params);
  workload.trace.validate();
  std::printf("generated %s: %d ranks, %zu ops, %.2f MB total\n", workload.name.c_str(),
              workload.trace.ranks(), workload.trace.total_ops(),
              units::to_mb(workload.trace.total_send_bytes()));

  // 2. Persist and reload through the binary format.
  save_trace(workload.trace, path);
  const Trace loaded = load_trace(path);
  std::printf("round-trip via %s: %d ranks, %zu ops, %.2f MB total\n", path.c_str(),
              loaded.ranks(), loaded.total_ops(), units::to_mb(loaded.total_send_bytes()));

  // 3. Characterize (the Fig. 2 toolkit).
  const CommMatrix matrix(loaded);
  std::printf("matrix: %zu rank pairs used, %.1f%% of bytes within |i-j| <= 6\n",
              matrix.pairs_used(), 100.0 * matrix.locality_fraction(6));
  const PhaseLoad load = phase_load(loaded);
  std::printf("phases: %zu, peak per-rank load %.1f KB\n", load.avg_bytes_per_rank.size(),
              load.peak() / 1000.0);

  // 4. Human-readable dump of the first ops of rank 0.
  std::printf("\nfirst ops of rank 0:\n");
  Trace head(1);
  head.rank(0) = {loaded.rank(0).begin(),
                  loaded.rank(0).begin() + std::min<std::size_t>(6, loaded.rank(0).size())};
  dump_trace_text(head, std::cout, 6);
  return 0;
}
