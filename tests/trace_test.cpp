// Unit tests for the trace model and its binary/text I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/trace.hpp"
#include "trace/trace_io.hpp"
#include "workload/exchange.hpp"

namespace dfly {
namespace {

Trace small_trace() {
  Trace t(3);
  TagAllocator tags;
  emit_exchange(t, tags, 0, 1, 1000);
  emit_exchange(t, tags, 1, 2, 2000);
  emit_phase_end(t);
  t.rank(0).push_back(TraceOp::barrier());
  t.rank(1).push_back(TraceOp::barrier());
  t.rank(2).push_back(TraceOp::barrier());
  t.rank(0).push_back(TraceOp::pause(500));
  return t;
}

TEST(Trace, TotalsCountSendsOnly) {
  const Trace t = small_trace();
  EXPECT_EQ(t.total_send_bytes(), 1000 + 1000 + 2000 + 2000);
  EXPECT_EQ(t.total_ops(), 8u /*exchange*/ + 3u /*waitall*/ + 3u /*barrier*/ + 1u /*pause*/);
}

TEST(Trace, ValidatePassesOnBalancedTrace) {
  EXPECT_NO_THROW(small_trace().validate());
}

TEST(Trace, ValidateCatchesUnmatchedSend) {
  Trace t(2);
  t.rank(0).push_back(TraceOp::isend(1, 100, 0));
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Trace, ValidateCatchesSelfMessage) {
  Trace t(2);
  t.rank(0).push_back(TraceOp::isend(0, 100, 0));
  t.rank(0).push_back(TraceOp::irecv(0, 100, 0));
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Trace, ValidateCatchesPeerOutOfRange) {
  Trace t(2);
  t.rank(0).push_back(TraceOp::isend(5, 100, 0));
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Trace, ValidateCatchesSizeMismatch) {
  Trace t(2);
  t.rank(0).push_back(TraceOp::isend(1, 100, 0));
  t.rank(1).push_back(TraceOp::irecv(0, 999, 0));
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Trace, ScaleMessageSizes) {
  Trace t = small_trace();
  t.scale_message_sizes(0.5);
  EXPECT_EQ(t.total_send_bytes(), 3000);
  EXPECT_NO_THROW(t.validate());  // scaling preserves matching
  t.scale_message_sizes(1e-9);
  EXPECT_EQ(t.total_send_bytes(), 4);  // clamped to >= 1 byte per message
  EXPECT_THROW(t.scale_message_sizes(0.0), std::invalid_argument);
}

TEST(TraceIo, BinaryRoundTrip) {
  const Trace t = small_trace();
  std::stringstream buf;
  write_trace(t, buf);
  const Trace back = read_trace(buf);
  ASSERT_EQ(back.ranks(), t.ranks());
  for (int r = 0; r < t.ranks(); ++r) {
    ASSERT_EQ(back.rank(r).size(), t.rank(r).size());
    for (std::size_t i = 0; i < t.rank(r).size(); ++i) {
      EXPECT_EQ(back.rank(r)[i].kind, t.rank(r)[i].kind);
      EXPECT_EQ(back.rank(r)[i].peer, t.rank(r)[i].peer);
      EXPECT_EQ(back.rank(r)[i].tag, t.rank(r)[i].tag);
      EXPECT_EQ(back.rank(r)[i].bytes, t.rank(r)[i].bytes);
      EXPECT_EQ(back.rank(r)[i].delay, t.rank(r)[i].delay);
    }
  }
}

TEST(TraceIo, FileRoundTrip) {
  const Trace t = small_trace();
  const std::string path = ::testing::TempDir() + "/dfly_trace_test.bin";
  save_trace(t, path);
  const Trace back = load_trace(path);
  EXPECT_EQ(back.ranks(), t.ranks());
  EXPECT_EQ(back.total_send_bytes(), t.total_send_bytes());
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buf("NOTATRACE");
  EXPECT_THROW(read_trace(buf), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedStream) {
  const Trace t = small_trace();
  std::stringstream buf;
  write_trace(t, buf);
  std::string data = buf.str();
  data.resize(data.size() / 2);
  std::stringstream cut(data);
  EXPECT_THROW(read_trace(cut), std::runtime_error);
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/dir/file.bin"), std::runtime_error);
}

TEST(TraceIo, TextDumpMentionsOps) {
  std::ostringstream os;
  dump_trace_text(small_trace(), os, 4);
  const std::string out = os.str();
  EXPECT_NE(out.find("rank 0"), std::string::npos);
  EXPECT_NE(out.find("isend"), std::string::npos);
  EXPECT_NE(out.find("barrier"), std::string::npos);
}

TEST(TagAllocator, MonotonicPerDirectedPair) {
  TagAllocator tags;
  EXPECT_EQ(tags.next(1, 2), 0);
  EXPECT_EQ(tags.next(1, 2), 1);
  EXPECT_EQ(tags.next(2, 1), 0);  // independent direction
  EXPECT_EQ(tags.next(1, 3), 0);
}

}  // namespace
}  // namespace dfly
