// Tests for metric collection and report table assembly.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "core/formatters.hpp"
#include "metrics/report.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

RunMetrics fake_metrics() {
  RunMetrics m;
  m.comm_time_ms = {1.0, 2.0, 3.0, 4.0, 5.0};
  m.avg_hops = {1, 2, 3, 4, 5};
  m.local_traffic_mb = {0, 10, 20};
  m.global_traffic_mb = {5, 15};
  m.local_saturation_ms = {0, 0, 1};
  m.global_saturation_ms = {0, 2};
  m.makespan_ms = 5.0;
  return m;
}

TEST(RunMetrics, MaxAndMedian) {
  const RunMetrics m = fake_metrics();
  EXPECT_DOUBLE_EQ(m.max_comm_ms(), 5.0);
  EXPECT_DOUBLE_EQ(m.median_comm_ms(), 3.0);
}

TEST(Report, BoxTableHasOneRowPerConfig) {
  const std::vector<NamedMetrics> runs = {{"cont-min", fake_metrics()},
                                          {"rand-adp", fake_metrics()}};
  const Table t = comm_time_box_table("fig3", runs);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 6u);
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_NE(os.str().find("cont-min"), std::string::npos);
}

TEST(Report, CdfTableQuantilesAreMonotone) {
  const std::vector<NamedMetrics> runs = {{"cfg", fake_metrics()}};
  const Table t =
      cdf_table("cdf", runs, standard_cdf_fractions(), select_local_traffic);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 1u + standard_cdf_fractions().size());
}

TEST(Report, SelectorsPickTheRightVectors) {
  const RunMetrics m = fake_metrics();
  EXPECT_EQ(&select_avg_hops(m), &m.avg_hops);
  EXPECT_EQ(&select_local_traffic(m), &m.local_traffic_mb);
  EXPECT_EQ(&select_global_traffic(m), &m.global_traffic_mb);
  EXPECT_EQ(&select_local_saturation(m), &m.local_saturation_ms);
  EXPECT_EQ(&select_global_saturation(m), &m.global_saturation_ms);
}

TEST(Report, SummaryTable) {
  const std::vector<NamedMetrics> runs = {{"cfg", fake_metrics()}};
  const Table t = summary_table("sum", runs);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(CollectMetrics, EndToEndPopulation) {
  // Run a real experiment and check population sizes: 8 ranks -> 8 comm
  // times/hops; channels = local+global ports of serving routers.
  Workload w{"ring", make_ring_trace(8, 16 * units::kKiB)};
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  const ExperimentResult result = run_experiment(
      w, ExperimentConfig{PlacementKind::Contiguous, RoutingKind::Minimal}, options);
  const RunMetrics& m = result.metrics;
  EXPECT_EQ(m.comm_time_ms.size(), 8u);
  EXPECT_EQ(m.avg_hops.size(), 8u);
  // Contiguous: 8 ranks over 2-node routers = 4 routers; each router in the
  // tiny config has (cols-1)+(rows-1)=4 local and 2 global channels.
  EXPECT_EQ(m.local_traffic_mb.size(), 4u * 4u);
  EXPECT_EQ(m.global_traffic_mb.size(), 4u * 2u);
  EXPECT_EQ(m.local_saturation_ms.size(), m.local_traffic_mb.size());
  // A pure intra-group contiguous ring must not touch global channels.
  for (const double g : m.global_traffic_mb) EXPECT_EQ(g, 0.0);
}

TEST(Formatters, TableIHasFiveRows) {
  const Table t = table1_nomenclature();
  EXPECT_EQ(t.rows(), 5u);
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_NE(os.str().find("rand-adp"), std::string::npos);
}

TEST(Formatters, EnvFallbacks) {
  unsetenv("DFLY_SCALE");
  unsetenv("DFLY_SEED");
  EXPECT_DOUBLE_EQ(env_scale(0.5), 0.5);
  EXPECT_EQ(env_seed(99), 99u);
  setenv("DFLY_SCALE", "0.125", 1);
  EXPECT_DOUBLE_EQ(env_scale(0.5), 0.125);
  setenv("DFLY_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(env_scale(0.5), 0.5);
  unsetenv("DFLY_SCALE");
}

}  // namespace
}  // namespace dfly
