// Parallel execution of a configuration matrix.
//
// Each (placement, routing) experiment is an independent sequential
// simulation; the study's sweeps parallelize perfectly across
// configurations. A small worker pool shares one immutable topology.
#pragma once

#include <vector>

#include "core/experiment.hpp"

namespace dfly {

/// Runs `workload` under every config, in parallel over `threads` workers
/// (0 = hardware concurrency). Results are returned in `configs` order.
/// Exceptions from worker runs are rethrown on the calling thread.
std::vector<ExperimentResult> run_matrix(const Workload& workload,
                                         const std::vector<ExperimentConfig>& configs,
                                         const ExperimentOptions& options, int threads = 0);

}  // namespace dfly
