#include "prof/heartbeat.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "obs/json.hpp"
#include "prof/profiler.hpp"

namespace dfly::prof {

namespace fs = std::filesystem;

std::int64_t read_rss_bytes() {
  // statm field 2 is resident pages; multiply by the page size. Any failure
  // (non-Linux, hidepid) degrades to 0 — liveness must not depend on procfs.
  std::ifstream in("/proc/self/statm");
  long long total_pages = 0;
  long long resident_pages = 0;
  if (!(in >> total_pages >> resident_pages)) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<std::int64_t>(resident_pages) * static_cast<std::int64_t>(page);
}

std::string render_heartbeat(const HeartbeatInfo& info) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("schema_version", info.schema_version);
  w.field("config", info.config);
  w.field("state", info.state);
  w.field("pid", info.pid);
  w.field("wall_ms", info.wall_ms);
  w.field("sim_ns", info.sim_ns);
  w.field("events", info.events);
  w.field("events_per_sec", info.events_per_sec);
  w.field("rss_bytes", info.rss_bytes);
  w.field("last_ckpt_age_ms", info.last_ckpt_age_ms);
  w.field("slices", info.slices);
  w.end_object();
  os << "\n";
  return os.str();
}

namespace {

// Finds `"key":` in `text` and returns the raw token after it (up to the next
// ',', '}' or newline), or nullopt. Good enough for the flat schema above.
bool find_raw(const std::string& text, const std::string& key, std::string* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  std::size_t begin = at + needle.size();
  while (begin < text.size() && (text[begin] == ' ' || text[begin] == '\t')) ++begin;
  std::size_t end = begin;
  if (begin < text.size() && text[begin] == '"') {
    end = text.find('"', begin + 1);
    if (end == std::string::npos) return false;
    *out = text.substr(begin + 1, end - begin - 1);
    return true;
  }
  while (end < text.size() && text[end] != ',' && text[end] != '}' && text[end] != '\n') ++end;
  *out = text.substr(begin, end - begin);
  return true;
}

std::int64_t require_int(const std::string& text, const std::string& key) {
  std::string raw;
  if (!find_raw(text, key, &raw))
    throw std::runtime_error("heartbeat: missing field: " + key);
  try {
    return std::stoll(raw);
  } catch (const std::exception&) {
    throw std::runtime_error("heartbeat: malformed field: " + key);
  }
}

std::string require_string(const std::string& text, const std::string& key) {
  std::string raw;
  if (!find_raw(text, key, &raw))
    throw std::runtime_error("heartbeat: missing field: " + key);
  return raw;
}

}  // namespace

HeartbeatInfo parse_heartbeat(const std::string& text) {
  HeartbeatInfo info;
  info.schema_version = static_cast<int>(require_int(text, "schema_version"));
  info.config = require_string(text, "config");
  info.state = require_string(text, "state");
  info.pid = require_int(text, "pid");
  info.wall_ms = require_int(text, "wall_ms");
  info.sim_ns = require_int(text, "sim_ns");
  info.events = require_int(text, "events");
  std::string raw;
  if (!find_raw(text, "events_per_sec", &raw))
    throw std::runtime_error("heartbeat: missing field: events_per_sec");
  try {
    info.events_per_sec = std::stod(raw);
  } catch (const std::exception&) {
    throw std::runtime_error("heartbeat: malformed field: events_per_sec");
  }
  info.rss_bytes = require_int(text, "rss_bytes");
  info.last_ckpt_age_ms = require_int(text, "last_ckpt_age_ms");
  info.slices = require_int(text, "slices");
  return info;
}

HeartbeatInfo read_heartbeat_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("heartbeat: cannot read: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return parse_heartbeat(os.str());
}

HeartbeatWriter::HeartbeatWriter(std::string path, std::int64_t period_ms)
    : path_(std::move(path)),
      period_ns_(period_ms * 1'000'000),
      started_ns_(Profiler::now_ns()) {}

bool HeartbeatWriter::beat(HeartbeatInfo info, bool force) {
  if (path_.empty()) return false;
  const std::int64_t now = Profiler::now_ns();
  if (!force && last_write_ns_ != 0 && now - last_write_ns_ < period_ns_) return false;

  info.schema_version = kHeartbeatSchemaVersion;
  info.pid = static_cast<std::int64_t>(::getpid());
  info.wall_ms = (now - started_ns_) / 1'000'000;
  info.rss_bytes = read_rss_bytes();
  info.last_ckpt_age_ms = last_ckpt_ns_ < 0 ? -1 : (now - last_ckpt_ns_) / 1'000'000;
  const double wall_s = static_cast<double>(now - started_ns_) / 1e9;
  info.events_per_sec = wall_s > 0.0 ? static_cast<double>(info.events) / wall_s : 0.0;

  // Atomic but deliberately not durable: a heartbeat lost to a power cut is
  // stale the next period anyway; what matters is that readers never see a
  // torn file.
  const std::string tmp = path_ + ".tmp";
  std::error_code ec;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << render_heartbeat(info);
    if (!out) {
      out.close();
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path_, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  last_write_ns_ = now;
  return true;
}

void HeartbeatWriter::note_checkpoint() { last_ckpt_ns_ = Profiler::now_ns(); }

}  // namespace dfly::prof
