#include "routing/adaptive.hpp"

#include "routing/adaptive_global.hpp"
#include "routing/minimal.hpp"
#include "routing/valiant.hpp"
#include "topo/dragonfly.hpp"

namespace dfly {

AdaptiveRouting::AdaptiveRouting(const DragonflyTopology& topo, Bytes bias_bytes,
                                 double nonminimal_penalty)
    : table_(topo), bias_bytes_(bias_bytes), nonminimal_penalty_(nonminimal_penalty) {}

double AdaptiveRouting::score(const Route& route, const CongestionView& congestion,
                              bool minimal) const {
  const Hop& first = route.first();
  const Bytes queued = congestion.queued_bytes(first.router, first.port);
  const double base = static_cast<double>(queued + bias_bytes_) * route.routers_traversed();
  return minimal ? base : base * nonminimal_penalty_;
}

Route AdaptiveRouting::compute(NodeId src, NodeId dst, const CongestionView& congestion,
                               Rng& rng) const {
  const Coordinates& c = table_.topology().coords();
  const RouterId r_src = c.router_of_node(src);
  const RouterId r_dst = c.router_of_node(dst);
  if (r_src == r_dst) {
    Route route;
    route.push(r_dst, c.slot_of_node(dst));
    return route;
  }

  // Two independent minimal instantiations (tie-breaks differ), then two
  // Valiant detours through random intermediate routers.
  Route best;
  double best_score = 0;
  bool best_is_minimal = false;
  double best_minimal = 0, best_nonminimal = 0;  // per-class bests, telemetry
  bool seen_minimal = false, seen_nonminimal = false;
  auto consider = [&](Route candidate, bool is_minimal) {
    const double s = score(candidate, congestion, is_minimal);
    double& class_best = is_minimal ? best_minimal : best_nonminimal;
    bool& class_seen = is_minimal ? seen_minimal : seen_nonminimal;
    if (!class_seen || s < class_best) class_best = s;
    class_seen = true;
    const bool better =
        best.empty() || s < best_score || (s == best_score && is_minimal && !best_is_minimal);
    if (better) {
      best = candidate;
      best_score = s;
      best_is_minimal = is_minimal;
    }
  };

  for (int i = 0; i < 2; ++i) {
    Route route;
    table_.append_minimal(route, r_src, r_dst, rng);
    route.push(r_dst, c.slot_of_node(dst));
    consider(route, true);
  }
  for (int i = 0; i < 2; ++i) {
    const RouterId via = pick_valiant_intermediate(table_.topology(), r_src, r_dst, rng);
    consider(valiant_route(table_, src, dst, via, rng), false);
  }
  if (telemetry_)
    telemetry_->record(r_src, best_is_minimal, best_score, best_minimal, best_nonminimal);
  return best;
}

const char* to_string(RoutingKind kind) {
  switch (kind) {
    case RoutingKind::Minimal: return "min";
    case RoutingKind::Adaptive: return "adp";
    case RoutingKind::Valiant: return "val";
    case RoutingKind::AdaptiveGlobal: return "adpg";
  }
  return "?";
}

std::unique_ptr<RoutingAlgorithm> make_routing(RoutingKind kind, const DragonflyTopology& topo) {
  switch (kind) {
    case RoutingKind::Minimal: return std::make_unique<MinimalRouting>(topo);
    case RoutingKind::Adaptive: return std::make_unique<AdaptiveRouting>(topo);
    case RoutingKind::Valiant: return std::make_unique<ValiantRouting>(topo);
    case RoutingKind::AdaptiveGlobal: return std::make_unique<AdaptiveGlobalRouting>(topo);
  }
  return nullptr;
}

}  // namespace dfly
