#include "trace/trace_io.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <type_traits>

namespace dfly {
namespace {

constexpr char kMagic[4] = {'D', 'F', 'T', 'R'};
// Version 2 added the byte-order sentinel after the version field.
constexpr std::uint32_t kVersion = 2;
/// Written after the version; a byte-swapped file reads back 0x04030201.
constexpr std::uint32_t kByteOrderSentinel = 0x01020304u;

// The format is little-endian and written by memcpy of native values; refuse
// to build for a big-endian host rather than silently writing swapped files.
static_assert(std::endian::native == std::endian::little,
              "trace format requires a little-endian host");

/// Plausibility bound for per-rank op counts (the paper's traces top out in
/// the tens of thousands of ops per rank) — combined with the clamped
/// reserve() below it keeps a corrupt 8-byte count field from driving an
/// unbounded allocation before the per-op reads hit EOF.
constexpr std::uint64_t kMaxOpsPerRank = 100'000'000;

template <typename T>
void put(std::ostream& os, T value) {
  // Fixed-width scalars only: the byte image must be the value itself, with
  // no padding or pointers, or the sentinel/static_assert guards above are
  // meaningless.
  static_assert(std::is_trivially_copyable_v<T> && (std::is_integral_v<T> || std::is_enum_v<T>),
                "trace format writes fixed-width integer scalars only");
  // dfly-lint: allow(raw-bytes) reason=versioned DFTR container with byte-order sentinel; predates and parallels ckpt/snapshot_io
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T> && (std::is_integral_v<T> || std::is_enum_v<T>),
                "trace format reads fixed-width integer scalars only");
  T value{};
  // dfly-lint: allow(raw-bytes) reason=versioned DFTR container with byte-order sentinel; predates and parallels ckpt/snapshot_io
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!is) throw std::runtime_error("trace: truncated input");
  return value;
}

}  // namespace

void write_trace(const Trace& trace, std::ostream& os) {
  os.write(kMagic, sizeof kMagic);
  put<std::uint32_t>(os, kVersion);
  put<std::uint32_t>(os, kByteOrderSentinel);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(trace.ranks()));
  for (int r = 0; r < trace.ranks(); ++r) {
    const auto& ops = trace.rank(r);
    put<std::uint64_t>(os, ops.size());
    for (const TraceOp& op : ops) {
      put<std::uint8_t>(os, static_cast<std::uint8_t>(op.kind));
      put<std::int32_t>(os, op.peer);
      put<std::int32_t>(os, op.tag);
      put<std::int64_t>(os, op.bytes);
      put<std::int64_t>(os, op.delay);
    }
  }
  // A full disk or dead pipe must fail here, at save time, not surface as a
  // truncated trace at the next load.
  os.flush();
  if (!os) throw std::runtime_error("trace: write failed (disk full?)");
}

Trace read_trace(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::runtime_error("trace: bad magic");
  const auto version = get<std::uint32_t>(is);
  if (version != kVersion) throw std::runtime_error("trace: unsupported version");
  const auto sentinel = get<std::uint32_t>(is);
  if (sentinel != kByteOrderSentinel)
    throw std::runtime_error("trace: byte-order mismatch (not little-endian?)");
  const auto ranks = get<std::uint32_t>(is);
  if (ranks == 0 || ranks > 10'000'000) throw std::runtime_error("trace: implausible rank count");
  Trace trace(static_cast<int>(ranks));
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const auto count = get<std::uint64_t>(is);
    // `count` is untrusted input: bound it, and reserve incrementally so even
    // an in-bounds lie allocates no more than one chunk past the real data.
    if (count > kMaxOpsPerRank) throw std::runtime_error("trace: implausible op count");
    auto& ops = trace.rank(static_cast<int>(r));
    ops.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 20)));
    for (std::uint64_t i = 0; i < count; ++i) {
      TraceOp op;
      const auto kind = get<std::uint8_t>(is);
      if (kind > static_cast<std::uint8_t>(OpKind::Delay))
        throw std::runtime_error("trace: bad op kind");
      op.kind = static_cast<OpKind>(kind);
      op.peer = get<std::int32_t>(is);
      op.tag = get<std::int32_t>(is);
      op.bytes = get<std::int64_t>(is);
      op.delay = get<std::int64_t>(is);
      if (op.bytes < 0) throw std::runtime_error("trace: negative message size");
      if (op.delay < 0) throw std::runtime_error("trace: negative delay");
      ops.push_back(op);
    }
  }
  return trace;
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace: cannot open for writing: " + path);
  write_trace(trace, f);
  if (!f) throw std::runtime_error("trace: write failed: " + path);
}

Trace load_trace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace: cannot open: " + path);
  return read_trace(f);
}

void dump_trace_text(const Trace& trace, std::ostream& os, std::size_t max_ops_per_rank) {
  os << "trace: " << trace.ranks() << " ranks, " << trace.total_ops() << " ops, "
     << trace.total_send_bytes() << " send bytes\n";
  for (int r = 0; r < trace.ranks(); ++r) {
    const auto& ops = trace.rank(r);
    os << "rank " << r << " (" << ops.size() << " ops):\n";
    std::size_t shown = 0;
    for (const TraceOp& op : ops) {
      if (max_ops_per_rank && shown++ >= max_ops_per_rank) {
        os << "  ...\n";
        break;
      }
      os << "  " << to_string(op.kind);
      if (op.peer >= 0) os << " peer=" << op.peer;
      if (op.bytes > 0) os << " bytes=" << op.bytes;
      if (op.tag != 0) os << " tag=" << op.tag;
      if (op.delay > 0) os << " delay=" << op.delay;
      os << '\n';
    }
  }
}

}  // namespace dfly
