// Tests for the experiment configuration file parser/renderer.
#include "core/config_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dfly {
namespace {

TEST(ConfigIo, EmptyConfigYieldsDefaults) {
  std::istringstream empty("");
  const ExperimentOptions options = parse_config(empty);
  EXPECT_EQ(options.topo.groups, 9);
  EXPECT_EQ(options.net.chunk_bytes, 2048);
  EXPECT_EQ(options.seed, 42u);
}

TEST(ConfigIo, ParsesAllSections) {
  std::istringstream is(R"(
# a comment
[topology]
groups = 3
rows = 2
cols = 4
nodes_per_router = 2
global_ports_per_router = 2
chassis_per_cabinet = 1

[network]
chunk_bytes = 1024
local_bandwidth_gib = 7.5   # inline comment
router_delay_ns = 0

[experiment]
seed = 99
msg_scale = 0.5
eager_threshold = 65536
)");
  const ExperimentOptions options = parse_config(is);
  EXPECT_EQ(options.topo.groups, 3);
  EXPECT_EQ(options.topo.cols, 4);
  EXPECT_EQ(options.net.chunk_bytes, 1024);
  EXPECT_DOUBLE_EQ(options.net.local_bandwidth_gib, 7.5);
  EXPECT_EQ(options.net.router_delay, 0);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_DOUBLE_EQ(options.msg_scale, 0.5);
  EXPECT_EQ(options.replay.eager_threshold, 65536);
}

TEST(ConfigIo, RoundTripThroughRender) {
  ExperimentOptions original;
  original.topo = TopoParams::tiny();
  original.net.chunk_bytes = 4096;
  original.net.global_latency = 1234;
  original.seed = 777;
  original.msg_scale = 1.5;
  original.replay.eager_threshold = 32768;

  std::istringstream is(render_config(original));
  const ExperimentOptions back = parse_config(is);
  EXPECT_EQ(back.topo.groups, original.topo.groups);
  EXPECT_EQ(back.topo.rows, original.topo.rows);
  EXPECT_EQ(back.net.chunk_bytes, original.net.chunk_bytes);
  EXPECT_EQ(back.net.global_latency, original.net.global_latency);
  EXPECT_EQ(back.seed, original.seed);
  EXPECT_DOUBLE_EQ(back.msg_scale, original.msg_scale);
  EXPECT_EQ(back.replay.eager_threshold, original.replay.eager_threshold);
}

TEST(ConfigIo, RejectsUnknownKey) {
  std::istringstream is("[topology]\nwarp_factor = 9\n");
  EXPECT_THROW(parse_config(is), std::runtime_error);
}

TEST(ConfigIo, RejectsKeyOutsideKnownSection) {
  std::istringstream is("groups = 9\n");  // no section
  EXPECT_THROW(parse_config(is), std::runtime_error);
}

TEST(ConfigIo, RejectsMalformedLines) {
  std::istringstream bad_section("[topology\ngroups = 9\n");
  EXPECT_THROW(parse_config(bad_section), std::runtime_error);
  std::istringstream no_equals("[topology]\ngroups 9\n");
  EXPECT_THROW(parse_config(no_equals), std::runtime_error);
  std::istringstream bad_int("[topology]\ngroups = nine\n");
  EXPECT_THROW(parse_config(bad_int), std::runtime_error);
  std::istringstream junk("[network]\nlocal_bandwidth_gib = 5.25x\n");
  EXPECT_THROW(parse_config(junk), std::runtime_error);
}

TEST(ConfigIo, ValidatesResultingTopology) {
  std::istringstream is("[topology]\ngroups = 1\n");
  EXPECT_THROW(parse_config(is), std::invalid_argument);
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW(load_config("/no/such/config.conf"), std::runtime_error);
}

TEST(ConfigIo, ParsesFaultAndHealthKeys) {
  std::istringstream is(R"(
[network]
retransmit_timeout_ns = 5000
retransmit_max_backoff = 3

[health]
enabled = 0
interval_ns = 500000
stall_ticks = 17

[faults]
link = down global 0 1 2 40000
link = up global 0 1 2 90000
link = down local 3 7 60000
)");
  const ExperimentOptions options = parse_config(is);
  EXPECT_EQ(options.net.retransmit_timeout, 5000);
  EXPECT_EQ(options.net.retransmit_max_backoff, 3);
  EXPECT_FALSE(options.health.enabled);
  EXPECT_EQ(options.health.interval, 500000);
  EXPECT_EQ(options.health.stall_ticks, 17);
  ASSERT_EQ(options.faults.size(), 3u);
  EXPECT_EQ(options.faults[0], FaultEvent::global_down(40000, 0, 1, 2));
  EXPECT_EQ(options.faults[1], FaultEvent::global_up(90000, 0, 1, 2));
  EXPECT_EQ(options.faults[2], FaultEvent::local_down(60000, 3, 7));
}

TEST(ConfigIo, FaultScheduleRoundTrips) {
  ExperimentOptions original;
  original.topo = TopoParams::tiny();
  original.net.retransmit_timeout = 7777;
  original.health.enabled = false;
  original.health.stall_ticks = 9;
  original.faults = {FaultEvent::global_down(1000, 0, 2, 1), FaultEvent::local_up(2000, 4, 5)};

  std::istringstream is(render_config(original));
  const ExperimentOptions back = parse_config(is);
  EXPECT_EQ(back.net.retransmit_timeout, original.net.retransmit_timeout);
  EXPECT_EQ(back.health.enabled, original.health.enabled);
  EXPECT_EQ(back.health.stall_ticks, original.health.stall_ticks);
  EXPECT_EQ(back.faults, original.faults);
}

TEST(ConfigIo, RejectsMalformedFaultLines) {
  for (const char* line : {
           "link = sideways global 0 1 2 100",  // bad state
           "link = down planetary 0 1 2 100",   // bad scope
           "link = down global 0 1 100",        // missing field
           "link = down local 3 7 100 junk",    // trailing junk
       }) {
    std::istringstream is(std::string("[faults]\n") + line + "\n");
    EXPECT_THROW(parse_config(is), std::runtime_error) << line;
  }
}

TEST(ConfigIo, RejectsIntegerValuesThatWouldNarrow) {
  // Regression: set_int blind-cast the parsed int64 into possibly-32-bit
  // members, so out-of-range values wrapped silently.
  const char* bad[] = {
      "[topology]\ngroups = 4294967305\n",            // wraps to 9 as int32
      "[topology]\nrows = -4294967294\n",             // wraps to 2 as int32
      "[network]\nretransmit_max_backoff = 8589934592\n",  // wraps to 0
      "[experiment]\nseed = -1\n",                    // negative into uint64
      "[experiment]\nmax_events = -5\n",              // negative into uint64
      "[health]\nenabled = 2\n",                      // bool takes only 0/1
  };
  for (const char* text : bad) {
    std::istringstream is(text);
    try {
      parse_config(is);
      FAIL() << "accepted narrowing value:\n" << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("config: value out of range"), std::string::npos)
          << "wrong error for:\n" << text << "\ngot: " << e.what();
    }
  }
}

TEST(ConfigIo, AcceptsFullRangeOfNarrowMembers) {
  std::istringstream is("[health]\nstall_ticks = 2147483647\nenabled = 1\n");
  const ExperimentOptions options = parse_config(is);
  EXPECT_EQ(options.health.stall_ticks, 2147483647);
  EXPECT_TRUE(options.health.enabled);
}

TEST(ConfigIo, ParsesTelemetryKeys) {
  std::istringstream is(R"(
[telemetry]
enabled = 1
sample_rate = 0.25
out_dir = /tmp/dfly-artifacts
chrome_trace = 0
snapshot_interval_ns = 250000
)");
  const ExperimentOptions options = parse_config(is);
  EXPECT_TRUE(options.telemetry.enabled);
  EXPECT_DOUBLE_EQ(options.telemetry.sample_rate, 0.25);
  EXPECT_EQ(options.telemetry.out_dir, "/tmp/dfly-artifacts");
  EXPECT_FALSE(options.telemetry.chrome_trace);
  EXPECT_EQ(options.telemetry.snapshot_interval, 250000);
}

TEST(ConfigIo, TelemetryRoundTripsThroughRender) {
  ExperimentOptions original;
  original.topo = TopoParams::tiny();
  original.telemetry.enabled = true;
  original.telemetry.sample_rate = 0.125;
  original.telemetry.out_dir = "artifacts/run-7";
  original.telemetry.chrome_trace = false;
  original.telemetry.snapshot_interval = 777000;

  std::istringstream is(render_config(original));
  const ExperimentOptions back = parse_config(is);
  EXPECT_EQ(back.telemetry.enabled, original.telemetry.enabled);
  EXPECT_DOUBLE_EQ(back.telemetry.sample_rate, original.telemetry.sample_rate);
  EXPECT_EQ(back.telemetry.out_dir, original.telemetry.out_dir);
  EXPECT_EQ(back.telemetry.chrome_trace, original.telemetry.chrome_trace);
  EXPECT_EQ(back.telemetry.snapshot_interval, original.telemetry.snapshot_interval);
}

TEST(ConfigIo, CheckpointRoundTripsThroughRender) {
  ExperimentOptions original;
  original.topo = TopoParams::tiny();
  original.checkpoint.interval = 2'500'000;
  original.checkpoint.path = "sweep-ckpt";
  original.checkpoint.resume = true;
  original.checkpoint.stop_after = 9'000'000;

  std::istringstream is(render_config(original));
  const ExperimentOptions back = parse_config(is);
  EXPECT_EQ(back.checkpoint.interval, original.checkpoint.interval);
  EXPECT_EQ(back.checkpoint.path, original.checkpoint.path);
  EXPECT_EQ(back.checkpoint.resume, original.checkpoint.resume);
  EXPECT_EQ(back.checkpoint.stop_after, original.checkpoint.stop_after);
  EXPECT_TRUE(back.checkpoint.active());
}

TEST(ConfigIo, RejectsOutOfRangeTelemetryValues) {
  for (const char* text : {
           "[telemetry]\nsample_rate = 1.5\n",          // > 1
           "[telemetry]\nsample_rate = -0.1\n",         // < 0
           "[telemetry]\nsnapshot_interval_ns = 0\n",   // non-positive period
           "[telemetry]\nenabled = 1\nout_dir =\n",     // enabled without a dir
       }) {
    std::istringstream is(text);
    EXPECT_THROW(parse_config(is), std::invalid_argument) << text;
  }
}

TEST(ConfigIo, ParsesFarmKeys) {
  std::istringstream is(R"(
[farm]
enabled = 1
workers = 3
timeout_ms = 5000
retries = 4
backoff_ms = 125
backoff_factor = 1.5
jitter = 0.5
chaos_kill_rate = 0.25
chaos_stop_rate = 0.125
chaos_delay_ms = 80
chaos_max_injections = 7
chaos_seed = 99
)");
  const ExperimentOptions options = parse_config(is);
  EXPECT_TRUE(options.farm.enabled);
  EXPECT_EQ(options.farm.workers, 3);
  EXPECT_EQ(options.farm.timeout_ms, 5000);
  EXPECT_EQ(options.farm.retries, 4);
  EXPECT_EQ(options.farm.backoff_ms, 125);
  EXPECT_DOUBLE_EQ(options.farm.backoff_factor, 1.5);
  EXPECT_DOUBLE_EQ(options.farm.jitter, 0.5);
  EXPECT_DOUBLE_EQ(options.farm.chaos_kill_rate, 0.25);
  EXPECT_DOUBLE_EQ(options.farm.chaos_stop_rate, 0.125);
  EXPECT_EQ(options.farm.chaos_delay_ms, 80);
  EXPECT_EQ(options.farm.chaos_max_injections, 7);
  EXPECT_EQ(options.farm.chaos_seed, 99u);
}

TEST(ConfigIo, FarmRoundTripsThroughRender) {
  ExperimentOptions original;
  original.topo = TopoParams::tiny();
  original.farm.enabled = true;
  original.farm.workers = 7;
  original.farm.timeout_ms = 30'000;
  original.farm.retries = 3;
  original.farm.backoff_ms = 333;
  original.farm.backoff_factor = 3.0;
  original.farm.jitter = 0.75;
  original.farm.chaos_kill_rate = 0.1;
  original.farm.chaos_stop_rate = 0.2;
  original.farm.chaos_delay_ms = 450;
  original.farm.chaos_max_injections = 11;
  original.farm.chaos_seed = 4242;

  std::istringstream is(render_config(original));
  const ExperimentOptions back = parse_config(is);
  EXPECT_EQ(back.farm.enabled, original.farm.enabled);
  EXPECT_EQ(back.farm.workers, original.farm.workers);
  EXPECT_EQ(back.farm.timeout_ms, original.farm.timeout_ms);
  EXPECT_EQ(back.farm.retries, original.farm.retries);
  EXPECT_EQ(back.farm.backoff_ms, original.farm.backoff_ms);
  EXPECT_DOUBLE_EQ(back.farm.backoff_factor, original.farm.backoff_factor);
  EXPECT_DOUBLE_EQ(back.farm.jitter, original.farm.jitter);
  EXPECT_DOUBLE_EQ(back.farm.chaos_kill_rate, original.farm.chaos_kill_rate);
  EXPECT_DOUBLE_EQ(back.farm.chaos_stop_rate, original.farm.chaos_stop_rate);
  EXPECT_EQ(back.farm.chaos_delay_ms, original.farm.chaos_delay_ms);
  EXPECT_EQ(back.farm.chaos_max_injections, original.farm.chaos_max_injections);
  EXPECT_EQ(back.farm.chaos_seed, original.farm.chaos_seed);
}

TEST(ConfigIo, RejectsInvalidFarmValues) {
  // Zero/negative supervision knobs would stall or spin the farm; they are
  // rejected at parse time like the telemetry ranges above.
  for (const char* text : {
           "[farm]\nworkers = 0\n",
           "[farm]\nworkers = -4\n",
           "[farm]\ntimeout_ms = 0\n",
           "[farm]\ntimeout_ms = -100\n",
           "[farm]\nretries = 0\n",
           "[farm]\nretries = -1\n",
           "[farm]\nbackoff_ms = 0\n",
           "[farm]\nbackoff_factor = 0.5\n",   // would shrink, not back off
           "[farm]\nbackoff_factor = -1.0\n",
           "[farm]\njitter = 1.5\n",
           "[farm]\njitter = -0.25\n",
           "[farm]\nchaos_kill_rate = 1.01\n",
           "[farm]\nchaos_stop_rate = -0.5\n",
           "[farm]\nchaos_kill_rate = 0.6\nchaos_stop_rate = 0.6\n",  // sum > 1
           "[farm]\nchaos_delay_ms = 0\n",
           "[farm]\nchaos_max_injections = -3\n",  // -1 means unlimited; below is junk
       }) {
    std::istringstream is(text);
    EXPECT_THROW(parse_config(is), std::invalid_argument) << text;
  }
}

TEST(ConfigIo, FarmUnlimitedChaosInjectionsIsAccepted) {
  std::istringstream is("[farm]\nchaos_max_injections = -1\n");
  EXPECT_EQ(parse_config(is).farm.chaos_max_injections, -1);
}

TEST(ConfigIo, DefaultsArePreservedForUnsetKeys) {
  ExperimentOptions defaults;
  defaults.msg_scale = 0.125;
  std::istringstream is("[experiment]\nseed = 5\n");
  const ExperimentOptions options = parse_config(is, defaults);
  EXPECT_EQ(options.seed, 5u);
  EXPECT_DOUBLE_EQ(options.msg_scale, 0.125);
}

}  // namespace
}  // namespace dfly
