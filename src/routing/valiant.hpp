// Valiant (fully nonminimal) routing: every chunk detours through a uniformly
// random intermediate router, then proceeds minimally. Included both as the
// nonminimal half of adaptive routing and as a standalone baseline for the
// ablation benches.
#pragma once

#include "routing/algorithm.hpp"
#include "routing/router_table.hpp"

namespace dfly {

class ValiantRouting : public RoutingAlgorithm {
 public:
  explicit ValiantRouting(const DragonflyTopology& topo);

  Route compute(NodeId src, NodeId dst, const CongestionView& congestion,
                Rng& rng) const override;
  std::string name() const override { return "valiant"; }
  void on_topology_changed() override { table_.refresh(); }

 private:
  MinimalPathTable table_;
};

/// Shared helper: appends minimal(src -> via) + minimal(via -> dst) followed
/// by the ejection hop. `via` must differ from both routers or equal one of
/// them (then it degenerates to the minimal path).
Route valiant_route(const MinimalPathTable& table, NodeId src, NodeId dst, RouterId via, Rng& rng);

/// Picks a Valiant intermediate router: uniform over routers outside the
/// source and destination routers (matching "randomly selecting an
/// intermediate router from the network", paper §III-C). The selection loop
/// is bounded: after 8 rejected draws (vanishingly unlikely for any topology
/// with >= 3 routers) it falls back to a deterministic modular scan from
/// r_src, and a degenerate table of <= 2 routers short-circuits to r_dst
/// (minimal route) instead of spinning forever.
RouterId pick_valiant_intermediate(int total_routers, RouterId r_src, RouterId r_dst, Rng& rng);
RouterId pick_valiant_intermediate(const DragonflyTopology& topo, RouterId r_src, RouterId r_dst,
                                   Rng& rng);

}  // namespace dfly
