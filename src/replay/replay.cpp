#include "replay/replay.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "ckpt/snapshot_io.hpp"

namespace dfly {

ReplayEngine::ReplayEngine(Engine& engine, Network& network, const Trace& trace,
                           const Placement& placement, ReplayOptions options)
    : engine_(engine), network_(network), trace_(trace), placement_(placement),
      options_(options) {
  if (options_.eager_threshold < 0 || options_.control_bytes <= 0)
    throw std::invalid_argument("replay: bad protocol options");
  if (placement_.ranks() != trace_.ranks())
    throw std::invalid_argument("replay: placement rank count (" +
                                std::to_string(placement_.ranks()) + ") != trace rank count (" +
                                std::to_string(trace_.ranks()) + ")");
  ranks_.resize(trace_.ranks());
  network_.set_sink(this);
}

void ReplayEngine::start() {
  engine_.schedule_after(0, this, EventPayload{kStart, 0, 0, 0});
}

void ReplayEngine::issue_send(int rank, const TraceOp& op, bool blocking) {
  const auto idx = static_cast<std::uint64_t>(sent_.size());
  const bool rendezvous = op.bytes > options_.eager_threshold;
  sent_.push_back(SentMsg{rank, op.peer, op.tag, op.bytes, blocking, rendezvous});
  const NodeId src = placement_.node_of_rank(rank);
  const NodeId dst = placement_.node_of_rank(op.peer);
  if (rendezvous) {
    // Request-to-send; the payload follows once the CTS comes back.
    network_.send(src, dst, options_.control_bytes, encode(PacketKind::Rts, idx),
                  /*notify_injected=*/false, /*notify_delivered=*/true);
  } else {
    network_.send(src, dst, op.bytes, encode(PacketKind::Data, idx),
                  /*notify_injected=*/true, /*notify_delivered=*/true);
  }
}

void ReplayEngine::send_cts(std::uint64_t sent_index) {
  const SentMsg& sm = sent_[sent_index];
  const NodeId receiver = placement_.node_of_rank(sm.dst_rank);
  const NodeId sender = placement_.node_of_rank(sm.src_rank);
  network_.send(receiver, sender, options_.control_bytes, encode(PacketKind::Cts, sent_index),
                /*notify_injected=*/false, /*notify_delivered=*/true);
}

bool ReplayEngine::try_match_arrival(int rank, std::int32_t peer, std::int32_t tag) {
  RankState& rs = ranks_[rank];
  for (auto it = rs.unexpected.begin(); it != rs.unexpected.end(); ++it) {
    if (it->src_rank == peer && it->tag == tag) {
      const bool is_rts = it->is_rts;
      const std::uint64_t idx = it->sent_index;
      rs.unexpected.erase(it);
      if (is_rts) {
        send_cts(idx);  // payload still in flight; the recv stays pending
        return false;
      }
      return true;
    }
  }
  return false;
}

void ReplayEngine::advance(int rank, SimTime now) {
  RankState& rs = ranks_[rank];
  if (rs.block == Block::Done) return;
  rs.block = Block::None;
  const auto& ops = trace_.rank(rank);

  while (rs.cursor < ops.size()) {
    const TraceOp& op = ops[rs.cursor];
    switch (op.kind) {
      case OpKind::Isend:
        assert(op.peer != rank && "self-messages are not modelled");
        issue_send(rank, op, /*blocking=*/false);
        ++rs.outstanding_isends;
        ++rs.cursor;
        break;
      case OpKind::Send:
        issue_send(rank, op, /*blocking=*/true);
        ++rs.cursor;
        rs.block = Block::SendInject;
        return;
      case OpKind::Irecv:
        ++rs.cursor;
        if (!try_match_arrival(rank, op.peer, op.tag))
          rs.pending_recvs.push_back(PendingRecv{op.peer, op.tag, false});
        break;
      case OpKind::Recv:
        ++rs.cursor;
        if (!try_match_arrival(rank, op.peer, op.tag)) {
          rs.pending_recvs.push_back(PendingRecv{op.peer, op.tag, true});
          rs.block = Block::RecvArrive;
          return;
        }
        break;
      case OpKind::WaitAll:
        if (rs.outstanding_isends > 0 || !rs.pending_recvs.empty()) {
          rs.block = Block::WaitAll;
          return;
        }
        ++rs.cursor;
        break;
      case OpKind::Barrier: {
        ++rs.cursor;
        rs.block = Block::Barrier;
        ++barrier_arrived_;
        if (barrier_arrived_ == trace_.ranks() && !barrier_release_scheduled_) {
          barrier_release_scheduled_ = true;
          engine_.schedule_after(0, this, EventPayload{kBarrierRelease, 0, 0, 0});
        }
        return;
      }
      case OpKind::Delay:
        ++rs.cursor;
        if (op.delay > 0) {
          rs.block = Block::Delay;
          engine_.schedule_after(op.delay, this,
                                 EventPayload{kResume, 0, static_cast<std::uint64_t>(rank), 0});
          return;
        }
        break;
    }
  }

  // Past the last op: the rank finishes once every handle has drained.
  if (rs.outstanding_isends == 0 && rs.pending_recvs.empty()) {
    finish_rank(rank, now);
  } else {
    rs.block = Block::WaitAll;  // implicit final drain
  }
}

void ReplayEngine::finish_rank(int rank, SimTime now) {
  RankState& rs = ranks_[rank];
  assert(rs.block != Block::Done);
  rs.block = Block::Done;
  rs.finish = now;
  ++finished_ranks_;
  if (finished_ranks_ == trace_.ranks() && completion_cb_) completion_cb_(now);
}

void ReplayEngine::maybe_unblock_waitall(int rank, SimTime now) {
  RankState& rs = ranks_[rank];
  if (rs.block == Block::WaitAll && rs.outstanding_isends == 0 && rs.pending_recvs.empty())
    advance(rank, now);
}

void ReplayEngine::on_message_injected(MsgId /*id*/, std::uint64_t user_data, SimTime now) {
  assert(kind_of(user_data) == PacketKind::Data);
  const SentMsg& sm = sent_[index_of(user_data)];
  RankState& rs = ranks_[sm.src_rank];
  if (sm.blocking) {
    assert(rs.block == Block::SendInject);
    advance(sm.src_rank, now);
  } else {
    assert(rs.outstanding_isends > 0);
    --rs.outstanding_isends;
    maybe_unblock_waitall(sm.src_rank, now);
  }
}

void ReplayEngine::on_message_delivered(MsgId /*id*/, std::uint64_t user_data, SimTime now) {
  const std::uint64_t idx = index_of(user_data);
  const SentMsg& sm = sent_[idx];
  switch (kind_of(user_data)) {
    case PacketKind::Cts: {
      // The receiver is ready: inject the payload.
      const NodeId src = placement_.node_of_rank(sm.src_rank);
      const NodeId dst = placement_.node_of_rank(sm.dst_rank);
      network_.send(src, dst, sm.bytes, encode(PacketKind::Data, idx),
                    /*notify_injected=*/true, /*notify_delivered=*/true);
      return;
    }
    case PacketKind::Rts: {
      // Reply CTS if the matching receive is already posted; otherwise park
      // the RTS with the unexpected arrivals.
      RankState& rs = ranks_[sm.dst_rank];
      for (const PendingRecv& pr : rs.pending_recvs) {
        if (pr.peer == sm.src_rank && pr.tag == sm.tag) {
          send_cts(idx);
          return;
        }
      }
      rs.unexpected.push_back(ArrivedMsg{sm.src_rank, sm.tag, /*is_rts=*/true, idx});
      return;
    }
    case PacketKind::Data:
      break;
  }

  const int rank = sm.dst_rank;
  RankState& rs = ranks_[rank];
  for (auto it = rs.pending_recvs.begin(); it != rs.pending_recvs.end(); ++it) {
    if (it->peer == sm.src_rank && it->tag == sm.tag) {
      const bool blocking = it->blocking;
      rs.pending_recvs.erase(it);
      if (blocking) {
        assert(rs.block == Block::RecvArrive);
        advance(rank, now);
      } else {
        maybe_unblock_waitall(rank, now);
      }
      return;
    }
  }
  rs.unexpected.push_back(ArrivedMsg{sm.src_rank, sm.tag, /*is_rts=*/false, 0});
  (void)now;
}

void ReplayEngine::save_state(ckpt::Writer& w) const {
  w.size(ranks_.size());
  for (const RankState& rs : ranks_) {
    w.u64(rs.cursor);
    w.i32(rs.outstanding_isends);
    w.size(rs.pending_recvs.size());
    for (const PendingRecv& pr : rs.pending_recvs) {
      w.i32(pr.peer);
      w.i32(pr.tag);
      w.boolean(pr.blocking);
    }
    w.size(rs.unexpected.size());
    for (const ArrivedMsg& am : rs.unexpected) {
      w.i32(am.src_rank);
      w.i32(am.tag);
      w.boolean(am.is_rts);
      w.u64(am.sent_index);
    }
    w.u8(static_cast<std::uint8_t>(rs.block));
    w.i64(rs.finish);
  }
  w.size(sent_.size());
  for (const SentMsg& sm : sent_) {
    w.i32(sm.src_rank);
    w.i32(sm.dst_rank);
    w.i32(sm.tag);
    w.i64(sm.bytes);
    w.boolean(sm.blocking);
    w.boolean(sm.rendezvous);
  }
  w.i32(finished_ranks_);
  w.i32(barrier_arrived_);
  w.boolean(barrier_release_scheduled_);
}

void ReplayEngine::load_state(ckpt::Reader& r) {
  const std::size_t nranks = r.count(24);
  if (nranks != ranks_.size())
    throw std::runtime_error("snapshot: replay rank count mismatch (wrong trace?)");
  for (RankState& rs : ranks_) {
    rs.cursor = r.u64();
    if (rs.cursor > trace_.rank(static_cast<int>(&rs - ranks_.data())).size())
      throw std::runtime_error("snapshot: replay cursor past end of trace");
    rs.outstanding_isends = r.i32();
    if (rs.outstanding_isends < 0)
      throw std::runtime_error("snapshot: negative outstanding isend count");
    const std::size_t nrecvs = r.count(9);
    rs.pending_recvs.clear();
    rs.pending_recvs.reserve(nrecvs);
    for (std::size_t i = 0; i < nrecvs; ++i) {
      PendingRecv pr;
      pr.peer = r.i32();
      pr.tag = r.i32();
      pr.blocking = r.boolean();
      rs.pending_recvs.push_back(pr);
    }
    const std::size_t nunexp = r.count(17);
    rs.unexpected.clear();
    for (std::size_t i = 0; i < nunexp; ++i) {
      ArrivedMsg am;
      am.src_rank = r.i32();
      am.tag = r.i32();
      am.is_rts = r.boolean();
      am.sent_index = r.u64();
      rs.unexpected.push_back(am);
    }
    const std::uint8_t block = r.u8();
    if (block > static_cast<std::uint8_t>(Block::Done))
      throw std::runtime_error("snapshot: invalid replay block state");
    rs.block = static_cast<Block>(block);
    rs.finish = r.i64();
  }
  const std::size_t nsent = r.count(22);
  sent_.clear();
  sent_.reserve(nsent);
  for (std::size_t i = 0; i < nsent; ++i) {
    SentMsg sm;
    sm.src_rank = r.i32();
    sm.dst_rank = r.i32();
    sm.tag = r.i32();
    sm.bytes = r.i64();
    sm.blocking = r.boolean();
    sm.rendezvous = r.boolean();
    sent_.push_back(sm);
  }
  for (const RankState& rs : ranks_) {
    for (const ArrivedMsg& am : rs.unexpected) {
      if (am.is_rts && am.sent_index >= sent_.size())
        throw std::runtime_error("snapshot: unexpected-queue RTS index out of range");
    }
  }
  finished_ranks_ = r.i32();
  barrier_arrived_ = r.i32();
  barrier_release_scheduled_ = r.boolean();
  if (finished_ranks_ < 0 || finished_ranks_ > trace_.ranks() || barrier_arrived_ < 0 ||
      barrier_arrived_ > trace_.ranks())
    throw std::runtime_error("snapshot: replay global counters out of range");
}

void ReplayEngine::handle_event(SimTime now, const EventPayload& payload) {
  switch (payload.kind) {
    case kStart:
      for (int rank = 0; rank < trace_.ranks(); ++rank) advance(rank, now);
      break;
    case kResume:
      advance(static_cast<int>(payload.b), now);
      break;
    case kBarrierRelease: {
      assert(barrier_arrived_ == trace_.ranks());
      barrier_arrived_ = 0;
      barrier_release_scheduled_ = false;
      for (int rank = 0; rank < trace_.ranks(); ++rank) {
        if (ranks_[rank].block == Block::Barrier) advance(rank, now);
      }
      break;
    }
    default:
      assert(false && "unknown replay event");
  }
}

}  // namespace dfly
