// Application communication traces.
//
// A trace is, per MPI rank, the ordered list of communication operations the
// replay engine executes. This is our stand-in for the paper's DUMPI traces:
// the workload generators emit traces with the same structure the paper
// documents for each miniapp, and trace_io.hpp persists them.
//
// Semantics (implemented by replay/replay.hpp):
//   Send   — blocking: completes when the message has fully left the NIC
//            (eager protocol, matching the simulator's no-rendezvous model).
//   Isend  — nonblocking send; completion is observed by the next WaitAll.
//   Recv   — blocking: completes when the matching message fully arrives.
//   Irecv  — nonblocking receive; completion observed by the next WaitAll.
//   WaitAll— blocks until every outstanding Isend/Irecv of this rank is done.
//   Barrier— global synchronization across all ranks of the job (zero cost
//            once every rank arrives; the paper strips compute time, so
//            barriers model pure ordering).
//   Delay  — advances this rank's local time (used by synthetic drivers; the
//            miniapp generators emit none because the paper ignores compute).
// Matching: (source rank, tag), FIFO per pair — generators use per-pair
// monotonic tags, so matching is unambiguous.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace dfly {

enum class OpKind : std::uint8_t { Send, Isend, Recv, Irecv, WaitAll, Barrier, Delay };

const char* to_string(OpKind kind);

struct TraceOp {
  OpKind kind;
  std::int32_t peer = -1;  ///< peer rank for sends/recvs
  std::int32_t tag = 0;
  Bytes bytes = 0;
  SimTime delay = 0;  ///< Delay only

  static TraceOp send(int peer, Bytes bytes, int tag) {
    return {OpKind::Send, peer, tag, bytes, 0};
  }
  static TraceOp isend(int peer, Bytes bytes, int tag) {
    return {OpKind::Isend, peer, tag, bytes, 0};
  }
  static TraceOp recv(int peer, Bytes bytes, int tag) {
    return {OpKind::Recv, peer, tag, bytes, 0};
  }
  static TraceOp irecv(int peer, Bytes bytes, int tag) {
    return {OpKind::Irecv, peer, tag, bytes, 0};
  }
  static TraceOp waitall() { return {OpKind::WaitAll, -1, 0, 0, 0}; }
  static TraceOp barrier() { return {OpKind::Barrier, -1, 0, 0, 0}; }
  static TraceOp pause(SimTime d) { return {OpKind::Delay, -1, 0, 0, d}; }
};

class Trace {
 public:
  explicit Trace(int ranks) : ops_(ranks) {}

  int ranks() const { return static_cast<int>(ops_.size()); }
  std::vector<TraceOp>& rank(int r) { return ops_[r]; }
  const std::vector<TraceOp>& rank(int r) const { return ops_[r]; }

  /// Sum of bytes over all send-type operations.
  Bytes total_send_bytes() const;
  std::size_t total_ops() const;

  /// Scales every message size by `factor`, clamping to at least 1 byte —
  /// the knob of the paper's sensitivity study (§IV-B).
  void scale_message_sizes(double factor);

  /// Structural validation: peers in range, no self-messages, and every
  /// send op has a matching recv op on the peer (by pair+tag multiset).
  /// Throws std::runtime_error on violation. Intended for tests/generators.
  void validate() const;

 private:
  std::vector<std::vector<TraceOp>> ops_;
};

}  // namespace dfly
