#include "routing/valiant.hpp"

#include "topo/dragonfly.hpp"

namespace dfly {

ValiantRouting::ValiantRouting(const DragonflyTopology& topo) : table_(topo) {}

Route valiant_route(const MinimalPathTable& table, NodeId src, NodeId dst, RouterId via,
                    Rng& rng) {
  const Coordinates& c = table.topology().coords();
  Route route;
  const RouterId r_src = c.router_of_node(src);
  const RouterId r_dst = c.router_of_node(dst);
  table.append_minimal(route, r_src, via, rng);
  table.append_minimal(route, via, r_dst, rng);
  route.push(r_dst, c.slot_of_node(dst));
  return route;
}

RouterId pick_valiant_intermediate(int total_routers, RouterId r_src, RouterId r_dst, Rng& rng) {
  const int total = total_routers;
  // With two routers (or one) there is no third router to bounce through;
  // the old rejection loop would spin forever. Route minimally instead —
  // via == r_dst makes valiant_route collapse to the minimal path.
  if (total <= 2) return r_dst;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto via = static_cast<RouterId>(rng.uniform(static_cast<std::uint64_t>(total)));
    if (via != r_src && via != r_dst) return via;
  }
  // Statistically unreachable for total >= 3 (each draw misses with
  // probability <= 2/3), but bound the loop anyway: take the first router
  // after r_src, modulo the table, that is neither endpoint.
  for (int offset = 1; offset < total; ++offset) {
    const auto via = static_cast<RouterId>((r_src + offset) % total);
    if (via != r_src && via != r_dst) return via;
  }
  return r_dst;
}

RouterId pick_valiant_intermediate(const DragonflyTopology& topo, RouterId r_src, RouterId r_dst,
                                   Rng& rng) {
  return pick_valiant_intermediate(topo.params().total_routers(), r_src, r_dst, rng);
}

Route ValiantRouting::compute(NodeId src, NodeId dst, const CongestionView& /*congestion*/,
                              Rng& rng) const {
  const Coordinates& c = table_.topology().coords();
  const RouterId r_src = c.router_of_node(src);
  const RouterId r_dst = c.router_of_node(dst);
  if (r_src == r_dst) {
    Route route;
    route.push(r_dst, c.slot_of_node(dst));
    return route;
  }
  const RouterId via = pick_valiant_intermediate(table_.topology(), r_src, r_dst, rng);
  return valiant_route(table_, src, dst, via, rng);
}

}  // namespace dfly
