#include "lint/lexer.hpp"

#include <cctype>

namespace dfly::lint {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Encoding prefixes that may precede a string literal: u8R"( is the longest.
bool raw_string_prefix(std::string_view ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" || ident == "LR";
}
bool string_prefix(std::string_view ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool done() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char take() {
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  int line() const { return line_; }
  std::size_t pos() const { return pos_; }
  std::string_view slice(std::size_t from) const { return src_.substr(from, pos_ - from); }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Consumes a quoted literal whose opening quote was already taken.
/// Backslash escapes are honored; an unterminated literal ends at newline
/// (strings/chars cannot legally span lines) or EOF.
void consume_quoted(Cursor& c, char quote) {
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '\n') return;
    c.take();
    if (ch == '\\' && !c.done()) {
      c.take();
      continue;
    }
    if (ch == quote) return;
  }
}

/// Consumes R"delim( ... )delim" with the opening quote already taken.
void consume_raw_string(Cursor& c) {
  std::string delim;
  while (!c.done() && c.peek() != '(' && c.peek() != '\n') delim.push_back(c.take());
  if (c.done() || c.peek() != '(') return;  // malformed; stop at what we have
  c.take();                                 // '('
  const std::string closer = ")" + delim + "\"";
  std::string window;
  while (!c.done()) {
    window.push_back(c.take());
    if (window.size() > closer.size()) window.erase(window.begin());
    if (window == closer) return;
  }
}

void consume_number(Cursor& c) {
  // Consume the maximal pp-number-ish run: digits, letters (hex, suffixes,
  // exponents), digit separators, dots, and signs directly after e/E/p/P.
  while (!c.done()) {
    const char ch = c.peek();
    if (ident_char(ch) || ch == '.') {
      c.take();
      continue;
    }
    if (ch == '\'' && ident_char(c.peek(1))) {  // digit separator 1'000'000
      c.take();
      continue;
    }
    if ((ch == '+' || ch == '-')) {
      const char prev = c.pos() > 0 ? c.slice(c.pos() - 1)[0] : '\0';
      if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
        c.take();
        continue;
      }
    }
    break;
  }
}

/// Consumes a preprocessor line including backslash continuations. A // or
/// /* comment opener inside the directive ends it (the comment is lexed as
/// its own token so annotation comments after #include lines still surface).
void consume_pp(Cursor& c) {
  while (!c.done()) {
    const char ch = c.peek();
    if (ch == '/' && (c.peek(1) == '/' || c.peek(1) == '*')) return;
    if (ch == '\\' && c.peek(1) == '\n') {
      c.take();
      c.take();
      continue;
    }
    if (ch == '\n') return;
    c.take();
  }
}

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  Cursor c(src);
  bool line_has_token = false;  // only a column-0-ish '#' starts a directive
  int current_line = 1;

  while (!c.done()) {
    if (c.line() != current_line) {
      current_line = c.line();
      line_has_token = false;
    }
    const char ch = c.peek();
    if (std::isspace(static_cast<unsigned char>(ch))) {
      c.take();
      continue;
    }

    const std::size_t start = c.pos();
    const int line = c.line();

    if (ch == '/' && c.peek(1) == '/') {
      while (!c.done() && c.peek() != '\n') c.take();
      out.push_back({TokKind::Comment, std::string(c.slice(start)), line});
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.take();
      c.take();
      while (!c.done() && !(c.peek() == '*' && c.peek(1) == '/')) c.take();
      if (!c.done()) {
        c.take();
        c.take();
      }
      out.push_back({TokKind::Comment, std::string(c.slice(start)), line});
      continue;
    }
    if (ch == '#' && !line_has_token) {
      c.take();
      consume_pp(c);
      out.push_back({TokKind::Pp, std::string(c.slice(start)), line});
      line_has_token = true;
      continue;
    }
    line_has_token = true;

    if (ident_start(ch)) {
      c.take();
      while (!c.done() && ident_char(c.peek())) c.take();
      std::string ident(c.slice(start));
      if (c.peek() == '"' && raw_string_prefix(ident)) {
        c.take();
        consume_raw_string(c);
        out.push_back({TokKind::String, std::string(c.slice(start)), line});
      } else if (c.peek() == '"' && string_prefix(ident)) {
        c.take();
        consume_quoted(c, '"');
        out.push_back({TokKind::String, std::string(c.slice(start)), line});
      } else if (c.peek() == '\'' && string_prefix(ident)) {
        c.take();
        consume_quoted(c, '\'');
        out.push_back({TokKind::Char, std::string(c.slice(start)), line});
      } else {
        out.push_back({TokKind::Identifier, std::move(ident), line});
      }
      continue;
    }
    if (digit(ch) || (ch == '.' && digit(c.peek(1)))) {
      c.take();
      consume_number(c);
      out.push_back({TokKind::Number, std::string(c.slice(start)), line});
      continue;
    }
    if (ch == '"') {
      c.take();
      consume_quoted(c, '"');
      out.push_back({TokKind::String, std::string(c.slice(start)), line});
      continue;
    }
    if (ch == '\'') {
      c.take();
      consume_quoted(c, '\'');
      out.push_back({TokKind::Char, std::string(c.slice(start)), line});
      continue;
    }
    if (ch == ':' && c.peek(1) == ':') {
      c.take();
      c.take();
      out.push_back({TokKind::Punct, "::", line});
      continue;
    }
    c.take();
    out.push_back({TokKind::Punct, std::string(1, ch), line});
  }
  return out;
}

}  // namespace dfly::lint
