// Example: placement/routing study for a custom workload.
//
// Runs a 3-D halo-exchange application (a stand-in for a user's own code)
// through the paper's full Table I configuration matrix and reports which
// placement policy and routing mechanism suit it — the workflow the paper's
// findings recommend to application teams.
//
// Usage: placement_study [ranks_per_side] [message_KiB]
//   defaults: 8 (=512 ranks), 256 KiB
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/run_matrix.hpp"
#include "metrics/report.hpp"
#include "workload/exchange.hpp"

namespace {

using namespace dfly;

/// A 6-neighbor periodic halo exchange on an n^3 rank grid.
Trace make_halo_trace(int n, Bytes bytes, int iterations) {
  Trace trace(n * n * n);
  TagAllocator tags;
  auto rank_of = [n](int x, int y, int z) { return (z * n + y) * n + x; };
  for (int iter = 0; iter < iterations; ++iter) {
    for (int z = 0; z < n; ++z)
      for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x) {
          const int r = rank_of(x, y, z);
          const int peers[3] = {rank_of((x + 1) % n, y, z), rank_of(x, (y + 1) % n, z),
                                rank_of(x, y, (z + 1) % n)};
          for (const int peer : peers)
            if (peer != r) emit_exchange(trace, tags, r, peer, bytes);
        }
    emit_phase_end(trace);
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfly;
  const int side = argc > 1 ? std::atoi(argv[1]) : 8;
  const Bytes msg = (argc > 2 ? std::atoll(argv[2]) : 256) * units::kKiB;
  if (side < 2) {
    std::fprintf(stderr, "usage: %s [ranks_per_side >= 2] [message_KiB]\n", argv[0]);
    return 1;
  }

  Workload workload{"halo3d", make_halo_trace(side, msg, 2)};
  std::printf("workload: %d^3 = %d ranks, %lld KiB per face message, %.1f MB total\n", side,
              workload.trace.ranks(), static_cast<long long>(msg / units::kKiB),
              units::to_mb(workload.trace.total_send_bytes()));

  ExperimentOptions options;  // Theta system, paper link parameters
  options.seed = 2026;
  const auto results = run_matrix(workload, table1_configs(), options);

  std::vector<NamedMetrics> named;
  for (const auto& r : results) named.push_back({r.config, r.metrics});
  comm_time_box_table("halo3d: per-rank communication time (ms)", named).print_markdown(std::cout);

  std::size_t best = 0;
  for (std::size_t i = 1; i < named.size(); ++i)
    if (named[i].metrics.median_comm_ms() < named[best].metrics.median_comm_ms()) best = i;
  std::printf("recommended configuration for this workload: %s\n", named[best].config.c_str());
  return 0;
}
