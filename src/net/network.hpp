// The packet-level dragonfly network model.
//
// Network owns all routers and NICs, implements the event protocol
// (store-and-forward chunks, output-port serialization, credit-based VC flow
// control with credit-return latency) and records the four metrics of the
// study: per-channel traffic, per-channel saturation time, per-source-node
// hop statistics, and (via MessageSink) message completion times.
//
// Protocol per chunk at router i of its route:
//   1. kChunkArrive    — the chunk has fully arrived into router i's input
//                        buffer (space was reserved upstream); it joins the
//                        queue of its output port.
//   2. try_send        — when the port is idle, the first queued chunk whose
//                        VC has enough downstream credits starts transmission
//                        (skipping blocked chunks ahead of it: per-VC flow
//                        control, no head-of-line deadlock). Queue-present but
//                        nothing sendable = "buffers used up" → saturation
//                        time accrues.
//   3. on transmit end — credits for this router's input buffer return to the
//                        upstream sender (one link latency later); the chunk
//                        arrives downstream (kChunkArrive or kDeliver).
#pragma once

#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/nic.hpp"
#include "net/params.hpp"
#include "net/router.hpp"
#include "routing/algorithm.hpp"
#include "sim/engine.hpp"
#include "topo/dragonfly.hpp"
#include "util/rng.hpp"

namespace dfly {

class Network : public EventHandler, public CongestionView {
 public:
  /// All referenced objects must outlive the Network. `sink` may be null.
  Network(Engine& engine, const DragonflyTopology& topo, const NetworkParams& params,
          const RoutingAlgorithm& routing, Rng rng, MessageSink* sink = nullptr);

  void set_sink(MessageSink* sink) { sink_ = sink; }

  /// Queues a message for injection at `src`'s NIC (src != dst). May be
  /// called before the simulation starts or from within event processing.
  MsgId send(NodeId src, NodeId dst, Bytes bytes, std::uint64_t user_data = 0,
             bool notify_injected = false, bool notify_delivered = false);

  // EventHandler
  void handle_event(SimTime now, const EventPayload& payload) override;

  // CongestionView — output-queue occupancy at `router`'s `port`.
  Bytes queued_bytes(RouterId router, int port) const override;

  /// Closes still-open saturation intervals at `end`; call once after run().
  void finalize(SimTime end);

  // --- metric access ---
  const Router& router(RouterId r) const { return routers_[r]; }
  const Nic& nic(NodeId n) const { return nics_[n]; }
  struct HopStats {
    std::uint64_t chunks = 0;
    std::uint64_t routers_sum = 0;
    double average() const {
      return chunks ? static_cast<double>(routers_sum) / static_cast<double>(chunks) : 0.0;
    }
  };
  const HopStats& hop_stats(NodeId src) const { return hop_stats_[src]; }

  std::uint64_t chunks_forwarded() const { return chunks_forwarded_; }
  Bytes bytes_delivered() const { return bytes_delivered_; }
  std::size_t messages_in_flight() const { return msgs_.in_flight(); }

  const DragonflyTopology& topology() const { return topo_; }
  const NetworkParams& params() const { return params_; }

 private:
  enum EventKind : std::int32_t {
    kChunkArrive = 1,   // a=chunk, b=router
    kPortFree = 2,      // b=channel
    kCreditToRouter = 3,// a=vc, b=channel, c=bytes
    kCreditToNic = 4,   // b=node, c=bytes
    kNicFree = 5,       // b=node
    kDeliver = 6,       // a=chunk
    kMsgInjected = 7,   // b=msg
  };

  void try_inject(NodeId node, SimTime now);
  void try_send(RouterId router, int port, SimTime now);
  void complete_message_part(MsgId id, SimTime now, bool injected_side);
  void release_if_done(MsgId id);

  Engine& engine_;
  const DragonflyTopology& topo_;
  NetworkParams params_;
  const RoutingAlgorithm& routing_;
  Rng rng_;
  MessageSink* sink_;

  std::vector<Router> routers_;
  std::vector<Nic> nics_;
  ChunkPool chunks_;
  MessagePool msgs_;
  std::vector<HopStats> hop_stats_;

  std::uint64_t chunks_forwarded_ = 0;
  Bytes bytes_delivered_ = 0;
};

}  // namespace dfly
