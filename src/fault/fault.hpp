// Timed link-fault injection.
//
// A FaultSchedule is a list of link-down / link-up events with absolute
// simulation times. The FaultInjector schedules them on the engine and, when
// one fires, (1) mutates the topology's link state, (2) tells the routing
// algorithm to refresh its tables so new chunks avoid (or reclaim) the link,
// and (3) tells the network to drop whatever was committed to the dead
// channel — those bytes come back through the NIC retransmit path
// (net/network.hpp).
//
// Global links are identified by (group a, group b, index) where index points
// into DragonflyTopology::all_global_links(a, b) — stable across
// enable/disable, so a schedule can down and later restore the same physical
// link. Local links are identified by their router endpoints.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/algorithm.hpp"
#include "sim/engine.hpp"
#include "topo/dragonfly.hpp"

namespace dfly {

class Network;

struct FaultEvent {
  enum class Kind : std::uint8_t { GlobalDown, GlobalUp, LocalDown, LocalUp };

  Kind kind = Kind::GlobalDown;
  SimTime time = 0;
  // Global-link identity: groups + index into all_global_links(a, b).
  GroupId a = 0;
  GroupId b = 0;
  int index = 0;
  // Local-link identity: neighboring router endpoints.
  RouterId u = 0;
  RouterId v = 0;

  static FaultEvent global_down(SimTime time, GroupId a, GroupId b, int index) {
    return FaultEvent{Kind::GlobalDown, time, a, b, index, 0, 0};
  }
  static FaultEvent global_up(SimTime time, GroupId a, GroupId b, int index) {
    return FaultEvent{Kind::GlobalUp, time, a, b, index, 0, 0};
  }
  static FaultEvent local_down(SimTime time, RouterId u, RouterId v) {
    return FaultEvent{Kind::LocalDown, time, 0, 0, 0, u, v};
  }
  static FaultEvent local_up(SimTime time, RouterId u, RouterId v) {
    return FaultEvent{Kind::LocalUp, time, 0, 0, 0, u, v};
  }

  bool is_global() const { return kind == Kind::GlobalDown || kind == Kind::GlobalUp; }
  bool is_down() const { return kind == Kind::GlobalDown || kind == Kind::LocalDown; }

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

const char* to_string(FaultEvent::Kind kind);

using FaultSchedule = std::vector<FaultEvent>;

/// Builds a schedule that downs roughly `fraction` of every group pair's
/// global links at time `at` (mirroring disable_random_global_links, but as
/// runtime events). Never schedules a pair's last link.
FaultSchedule random_global_fault_schedule(const DragonflyTopology& topo, double fraction,
                                           SimTime at, Rng& rng);

/// Drives a FaultSchedule through the event engine against a live topology /
/// routing / network triple. `routing` may be null (e.g. a raw-network test
/// with a fixed routing object the caller refreshes itself).
class FaultInjector : public EventHandler {
 public:
  FaultInjector(Engine& engine, DragonflyTopology& topo, Network& network,
                RoutingAlgorithm* routing, FaultSchedule schedule);

  /// Schedules every fault event; call once before Engine::run().
  void start();

  void handle_event(SimTime now, const EventPayload& payload) override;

  int fired() const { return fired_; }
  /// Events refused by the topology's connectivity guard (downing the link
  /// would have disconnected a group pair or a group's local minimal paths).
  int skipped() const { return skipped_; }

  /// Checkpoint support (src/ckpt/): fired/skipped cursors. The schedule
  /// itself is rebuilt from the config; a digest of it is validated on load
  /// so a snapshot cannot resume against a different fault schedule. The
  /// pending fault events live in the engine's restored queue.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  void apply(const FaultEvent& event, SimTime now);

  Engine& engine_;
  DragonflyTopology& topo_;
  Network& network_;
  RoutingAlgorithm* routing_;
  FaultSchedule schedule_;
  int fired_ = 0;
  int skipped_ = 0;
};

}  // namespace dfly
