// Machine-readable aggregation of a sweep: one manifest merged from the
// per-run results plus the quarantine and farm-counter artifacts.
//
// Written into the sweep directory:
//   manifest.json   — one record per config, input order: status + the full
//                     deterministic result summary, with CRC-32 digests of
//                     the per-run metrics.json/counters.jsonl artifacts when
//                     telemetry was on. Contains ONLY simulation-determined
//                     values, so a chaos-mode farm sweep that recovered from
//                     kills is byte-identical to a fault-free serial sweep.
//   failures.jsonl  — one JSON line per quarantined config (attempt history,
//                     exit classes, error message); written even when empty
//                     so "is the quarantine empty?" is a file check.
//   farm_stats.json — farm counters (attempts, retries, timeouts, chaos
//                     kills, escalations) via an obs CounterRegistry snapshot;
//                     wall-clock-dependent, deliberately NOT in the manifest.
#pragma once

#include <string>

#include "farm/supervisor.hpp"

namespace dfly::farm {

/// Renders manifest.json for `report` as a string (the byte-comparable form).
std::string render_manifest(const FarmReport& report);

/// Writes all three artifacts into `dir` (created if missing). Throws
/// std::runtime_error on I/O failure. Returns the manifest path.
std::string write_sweep_artifacts(const std::string& dir, const FarmReport& report);

}  // namespace dfly::farm
