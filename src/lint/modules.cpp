#include "lint/modules.hpp"

#include <deque>

namespace dfly::lint {

std::string module_of(const std::string& rel) {
  const std::size_t slash = rel.find('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

bool is_artifact_module(const std::string& module) {
  return module == "sim" || module == "net" || module == "routing" || module == "obs" ||
         module == "metrics" || module == "ckpt";
}

bool is_wallclock_module(const std::string& module) {
  return module == "prof" || module == "farm";
}

std::vector<std::string> quoted_includes(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  for (const Token& t : tokens) {
    if (t.kind != TokKind::Pp) continue;
    // Directive text is the raw line: #include "net/router.hpp"
    std::size_t p = t.text.find("include");
    if (p == std::string::npos) continue;
    p = t.text.find('"', p);
    if (p == std::string::npos) continue;  // <system> include — not ours
    const std::size_t q = t.text.find('"', p + 1);
    if (q == std::string::npos) continue;
    out.push_back(t.text.substr(p + 1, q - p - 1));
  }
  return out;
}

namespace {

/// "workload/background.hpp" -> "workload/background"
std::string stem(const std::string& rel) {
  const std::size_t dot = rel.rfind('.');
  return dot == std::string::npos ? rel : rel.substr(0, dot);
}

bool is_header(const std::string& rel) {
  return rel.size() >= 4 && (rel.ends_with(".hpp") || rel.ends_with(".h"));
}

}  // namespace

std::set<std::string> artifact_feeding_set(const std::map<std::string, SourceFile>& files) {
  std::set<std::string> feeding;
  std::deque<std::string> frontier;
  for (const auto& [rel, file] : files) {
    if (is_artifact_module(file.module) && feeding.insert(rel).second) frontier.push_back(rel);
  }
  while (!frontier.empty()) {
    const std::string rel = frontier.front();
    frontier.pop_front();
    const auto it = files.find(rel);
    if (it == files.end()) continue;
    for (const std::string& inc : it->second.includes) {
      // Quoted includes in this repo are rooted at src/, so the include text
      // is already a rel. Includes pointing outside the scanned set (or
      // system headers) simply don't resolve and are skipped.
      if (files.count(inc) && feeding.insert(inc).second) frontier.push_back(inc);
    }
    // An included header's implementation file runs on the artifact path.
    if (is_header(rel)) {
      for (const char* ext : {".cpp", ".cc"}) {
        const std::string impl = stem(rel) + ext;
        if (files.count(impl) && feeding.insert(impl).second) frontier.push_back(impl);
      }
    }
  }
  return feeding;
}

}  // namespace dfly::lint
