// Unit tests for units, histogram/time-profile and table rendering.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "util/histogram.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace dfly {
namespace {

TEST(Units, TransferTimeRoundsUpAndNeverZero) {
  EXPECT_EQ(units::transfer_time(0, 5.0), 0);
  EXPECT_EQ(units::transfer_time(1, 100.0), 1);    // sub-ns payload still costs 1 ns
  EXPECT_EQ(units::transfer_time(10, 5.0), 2);     // exact division
  EXPECT_EQ(units::transfer_time(11, 5.0), 3);     // rounds up
}

TEST(Units, BandwidthConversion) {
  // 1 GiB/s = 2^30 bytes over 10^9 ns.
  EXPECT_NEAR(units::gib_per_s(1.0), 1.0737, 1e-3);
  EXPECT_NEAR(units::gib_per_s(16.0), 17.18, 0.01);
}

TEST(Units, ReportingConversions) {
  EXPECT_DOUBLE_EQ(units::to_ms(1'500'000), 1.5);
  EXPECT_DOUBLE_EQ(units::to_mb(2'500'000), 2.5);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0, 10, 5);
  h.add(0.5);
  h.add(3.0);
  h.add(9.9);
  h.add(-5.0);  // clamps to first bin
  h.add(50.0);  // clamps to last bin
  EXPECT_DOUBLE_EQ(h.count(0), 2);
  EXPECT_DOUBLE_EQ(h.count(1), 1);
  EXPECT_DOUBLE_EQ(h.count(4), 2);
  EXPECT_DOUBLE_EQ(h.total(), 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4);
}

TEST(Histogram, WeightedAdds) {
  Histogram h(0, 1, 1);
  h.add(0.5, 2.5);
  h.add(0.5, 1.5);
  EXPECT_DOUBLE_EQ(h.count(0), 4.0);
}

TEST(Histogram, NonFiniteSamplesAreDroppedAndCounted) {
  // Regression: NaN/inf made the float->int cast UB before the clamp.
  Histogram h(0, 10, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity(), 3.0);
  EXPECT_EQ(h.non_finite(), 3u);
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
  for (std::size_t i = 0; i < h.bins(); ++i) EXPECT_DOUBLE_EQ(h.count(i), 0.0);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.total(), 1.0);
}

TEST(Histogram, HugelyOutOfRangeSamplesClampWithoutOverflow) {
  // Regression: values far outside ptrdiff_t range were cast before clamping.
  Histogram h(0, 10, 5);
  h.add(1e300);   // clamps to the last bin
  h.add(-1e300);  // clamps to the first bin
  h.add(std::numeric_limits<double>::max());
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
  EXPECT_EQ(h.non_finite(), 0u);
}

TEST(TimeProfile, BucketsBytesByTime) {
  TimeProfile p(100);
  p.add(0, 10);
  p.add(99, 20);
  p.add(100, 5);
  p.add(250, 7);
  EXPECT_EQ(p.buckets(), 3u);
  EXPECT_EQ(p.bytes_in(0), 30);
  EXPECT_EQ(p.bytes_in(1), 5);
  EXPECT_EQ(p.bytes_in(2), 7);
  EXPECT_EQ(p.peak(), 30);
  EXPECT_EQ(p.total(), 42);
}

TEST(Table, MarkdownLayout) {
  Table t("Demo");
  t.set_columns({"a", "bb"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_markdown(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("### Demo"), std::string::npos);
  EXPECT_NE(out.find("| a | bb |"), std::string::npos);
  EXPECT_NE(out.find("| 1 | 2  |"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t;
  t.set_columns({"x", "y"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "both,\"x\""});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(-42)), "-42");
  EXPECT_EQ(Table::pct(12.345, 1), "12.3%");
}

TEST(Table, RowColumnCounts) {
  Table t;
  t.set_columns({"a", "b", "c"});
  EXPECT_EQ(t.columns(), 3u);
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace dfly
