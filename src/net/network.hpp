// The packet-level dragonfly network model.
//
// Network owns all routers and NICs, implements the event protocol
// (store-and-forward chunks, output-port serialization, credit-based VC flow
// control with credit-return latency) and records the four metrics of the
// study: per-channel traffic, per-channel saturation time, per-source-node
// hop statistics, and (via MessageSink) message completion times.
//
// Protocol per chunk at router i of its route:
//   1. kChunkArrive    — the chunk has fully arrived into router i's input
//                        buffer (space was reserved upstream); it joins the
//                        queue of its output port.
//   2. try_send        — when the port is idle, the first queued chunk whose
//                        VC has enough downstream credits starts transmission
//                        (skipping blocked chunks ahead of it: per-VC flow
//                        control, no head-of-line deadlock). Queue-present but
//                        nothing sendable = "buffers used up" → saturation
//                        time accrues.
//   3. on transmit end — credits for this router's input buffer return to the
//                        upstream sender (one link latency later); the chunk
//                        arrives downstream (kChunkArrive or kDeliver).
//
// Sharded engine support (enable_sharding, DESIGN.md §10): router/NIC/port
// state partitions cleanly by dragonfly group, so fabric events classify to
// the lane of the state they touch and the eight global counters become
// per-lane blocks summed on read. Chunk allocation uses per-lane arenas;
// cross-lane frees are deferred to the barrier. Message records are only
// ever allocated/released in global context; the two message-side
// transitions a shard cannot apply directly — delivery completion and drop
// accounting — travel as lookahead-delayed events (kMsgDelivered,
// kDropNotify). Remote-congestion routing (UGAL-G) reads fabric state along
// the whole path, which no group owns; such runs keep every event on the
// global lane and stay byte-identical to the serial engine.
#pragma once

#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/nic.hpp"
#include "net/params.hpp"
#include "net/router.hpp"
#include "routing/algorithm.hpp"
#include "sim/engine.hpp"
#include "topo/dragonfly.hpp"
#include "util/rng.hpp"

namespace dfly {

class ChunkPathTracer;

class Network : public EventHandler, public CongestionView {
 public:
  /// All referenced objects must outlive the Network. `sink` may be null.
  Network(Engine& engine, const DragonflyTopology& topo, const NetworkParams& params,
          const RoutingAlgorithm& routing, Rng rng, MessageSink* sink = nullptr);

  /// Partitions network state per engine lane (call right after
  /// Engine::enable_sharding, before any traffic): per-lane chunk arenas,
  /// counter blocks and RNG streams, and the barrier quiesce hook for
  /// deferred cross-lane frees. `lookahead` must equal the engine's (the
  /// global-link latency). No-op — the network stays on the serial path,
  /// which is still correct under a sharded engine because every event then
  /// defaults to the global lane — when the routing algorithm reads remote
  /// congestion (UGAL-G).
  void enable_sharding(SimTime lookahead);
  bool sharded() const { return sharded_; }

  void set_sink(MessageSink* sink) { sink_ = sink; }

  /// Installs (or, with nullptr, removes) the flight-recorder chunk tracer
  /// (src/obs/). The tracer must outlive event processing; null (the default)
  /// keeps every hook a branch-on-null no-op.
  void set_tracer(ChunkPathTracer* tracer) { tracer_ = tracer; }

  /// Queues a message for injection at `src`'s NIC (src != dst). May be
  /// called before the simulation starts or from within event processing
  /// (global context only when sharded — which replay/background/fault
  /// handlers are).
  MsgId send(NodeId src, NodeId dst, Bytes bytes, std::uint64_t user_data = 0,
             bool notify_injected = false, bool notify_delivered = false);

  // EventHandler
  void handle_event(SimTime now, const EventPayload& payload) override;
  int event_shard(const EventPayload& payload) const override;

  // CongestionView — output-queue occupancy at `router`'s `port`.
  Bytes queued_bytes(RouterId router, int port) const override;

  /// Reacts to a runtime link state change of the directed channel
  /// (router, port). On link-down the chunk currently on the wire is
  /// discarded, every chunk queued for the port is purged (input-buffer
  /// credits return upstream), and the dropped bytes are handed to the owning
  /// NICs' retransmit timers. On link-up the port resumes sending. Call once
  /// per direction after mutating the topology (FaultInjector does this —
  /// always in global context, so the synchronous accounting is safe).
  void on_link_state_changed(RouterId router, int port, bool up, SimTime now);

  /// Closes still-open saturation intervals at `end`; call once after run().
  void finalize(SimTime end);

  // --- metric access ---
  const Router& router(RouterId r) const { return routers_[r]; }
  const Nic& nic(NodeId n) const { return nics_[n]; }
  struct HopStats {
    std::uint64_t chunks = 0;
    std::uint64_t routers_sum = 0;
    double average() const {
      return chunks ? static_cast<double>(routers_sum) / static_cast<double>(chunks) : 0.0;
    }
  };
  const HopStats& hop_stats(NodeId src) const { return hop_stats_[src]; }

  std::uint64_t chunks_forwarded() const { return sum(&LaneStats::chunks_forwarded); }
  Bytes bytes_delivered() const { return sum(&LaneStats::bytes_delivered); }
  std::size_t messages_in_flight() const { return msgs_.in_flight(); }

  // --- fault-recovery accounting ---
  Bytes bytes_injected() const { return sum(&LaneStats::bytes_injected); }
  Bytes bytes_dropped() const { return sum(&LaneStats::bytes_dropped); }
  Bytes bytes_retransmitted() const { return sum(&LaneStats::bytes_retransmitted); }
  Bytes in_fabric_bytes() const { return sum(&LaneStats::in_fabric_delta); }
  std::uint64_t chunks_dropped() const {
    return static_cast<std::uint64_t>(sum(&LaneStats::chunks_dropped));
  }
  std::uint64_t retransmit_events() const {
    return static_cast<std::uint64_t>(sum(&LaneStats::retransmit_events));
  }
  /// Chunk-conservation audit: every injected byte must be delivered,
  /// dropped (awaiting retransmission), or still in the fabric.
  bool conservation_ok() const {
    return bytes_injected() == bytes_delivered() + bytes_dropped() + in_fabric_bytes();
  }
  /// Backoff delay before retransmit attempt number `attempts`.
  SimTime retransmit_delay(int attempts) const;

  const Chunk& chunk(ChunkId id) const { return chunks_[id]; }
  const MessageRecord& message(MsgId id) const { return msgs_[id]; }
  /// Bytes queued on router output ports, per VC (diagnostics).
  std::vector<Bytes> vc_occupancy() const;

  const DragonflyTopology& topology() const { return topo_; }
  const NetworkParams& params() const { return params_; }

  /// Checkpoint support (src/ckpt/): serializes every piece of fabric state —
  /// per-port queues/credits/metrics, NIC queues and retransmit accounting,
  /// the per-lane chunk arenas and the message pool with their free lists,
  /// hop stats, the per-lane conservation counter blocks and the routing RNG
  /// stream(s). load_state validates structural invariants (port counts, pool
  /// indices, route lengths) and throws std::runtime_error on any mismatch;
  /// it requires a freshly constructed Network over the same topology,
  /// parameters, and lane partitioning.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  enum EventKind : std::int32_t {
    kChunkArrive = 1,    // a=chunk, b=router
    kPortFree = 2,       // b=channel
    kCreditToRouter = 3, // a=vc, b=channel, c=bytes
    kCreditToNic = 4,    // b=node, c=bytes
    kNicFree = 5,        // b=node
    kDeliver = 6,        // a=chunk
    kMsgInjected = 7,    // b=msg
    kRetransmit = 8,     // b=msg
    // Sharded-mode transitions crossing from a shard into message-record
    // territory, delayed by one lookahead so the conservative bound holds.
    kMsgDelivered = 9,   // b=msg         (global lane: sink notify + release)
    kDropNotify = 10,    // b=msg, c=bytes (source lane: message-side drop accounting)
  };

  /// Per-lane slice of the global byte/chunk counters; each block is written
  /// only by its lane's worker (or the coordinator in global context), and
  /// the public accessors sum the blocks. One block when unsharded.
  struct alignas(64) LaneStats {
    std::uint64_t chunks_forwarded = 0;
    Bytes bytes_delivered = 0;
    Bytes bytes_injected = 0;
    Bytes bytes_dropped = 0;
    Bytes bytes_retransmitted = 0;
    /// Signed: injections (+) land on the source lane, deliveries (−) on the
    /// destination lane, so only the sum across lanes is meaningful.
    Bytes in_fabric_delta = 0;
    Bytes chunks_dropped = 0;
    Bytes retransmit_events = 0;
  };

  Bytes sum(Bytes LaneStats::* field) const {
    Bytes total = 0;
    for (const LaneStats& s : lane_stats_) total += s.*field;
    return total;
  }
  std::uint64_t sum(std::uint64_t LaneStats::* field) const {
    std::uint64_t total = 0;
    for (const LaneStats& s : lane_stats_) total += s.*field;
    return total;
  }
  /// The current execution context's stats shard. Guarded on the network's
  /// own sharded_ flag, not the engine's: under the remote-congestion
  /// fallback the engine is sharded (all network events on its global lane)
  /// while the network keeps single-lane storage.
  LaneStats& stats() {
    return lane_stats_[sharded_ ? static_cast<std::size_t>(engine_.current_lane()) : 0];
  }
  Rng& lane_rng() {
    return sharded_ ? lane_rngs_[static_cast<std::size_t>(engine_.current_lane())] : rng_;
  }

  void try_inject(NodeId node, SimTime now);
  void try_send(RouterId router, int port, SimTime now);
  void release_if_done(MsgId id);
  /// Releases a chunk back to its arena; a shard releasing another lane's
  /// chunk defers the free to the barrier (drained in lane order).
  void release_chunk(ChunkId cid);
  void drain_deferred_frees();
  /// Returns the input-buffer space a dropped chunk occupies at its current
  /// router to the upstream sender (same delay formula as a normal departure).
  void return_upstream_credit(const Chunk& chunk, SimTime now);
  /// Books a dropped chunk's bytes out of the fabric (lane-local part) and
  /// routes the message-side part to the source lane.
  void account_drop(ChunkId cid, SimTime now);
  /// Message-side drop accounting: rewinds m.injected, queues the bytes for
  /// retransmission. Runs on the source lane (kDropNotify) or in global
  /// context (fault purge).
  void apply_drop_to_message(MsgId id, Bytes bytes, SimTime now);
  void schedule_retransmit(MsgId id, SimTime now);

  Engine& engine_;
  const DragonflyTopology& topo_;
  NetworkParams params_;
  const RoutingAlgorithm& routing_;
  Rng rng_;  ///< master routing stream; drawn from directly when unsharded
  MessageSink* sink_;
  ChunkPathTracer* tracer_ = nullptr;

  bool sharded_ = false;
  SimTime lookahead_ = 0;
  std::vector<Rng> lane_rngs_;  ///< per-lane streams of rng_ (sharded only)
  /// deferred_frees_[l]: chunks lane l released that belong to another lane.
  std::vector<std::vector<ChunkId>> deferred_frees_;

  std::vector<Router> routers_;
  std::vector<Nic> nics_;
  ChunkPool chunks_;
  MessagePool msgs_;
  std::vector<HopStats> hop_stats_;
  std::vector<LaneStats> lane_stats_;
};

}  // namespace dfly
