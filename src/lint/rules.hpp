// The determinism ruleset (DESIGN.md section 12) evaluated over lexed files.
//
// Rule ids and what they guard:
//   wall-clock     (R1) no wall/monotonic clock reads outside prof/ and farm/
//   raw-rng        (R2) no C rand()/std:: engines — all randomness via Rng
//   unordered-iter (R3) no iteration over unordered containers in code that
//                       can feed run artifacts (order leaks into bytes)
//   pointer-order  (R4) no pointer used as an ordering or hash key
//   raw-bytes      (R5) reinterpret_cast / memcpy-style raw byte I/O only in
//                       ckpt/snapshot_io and obs/json
//   pod-assert     (R6) every struct in ckpt/ carries a static_assert pinning
//                       its triviality/size, or an explicit exemption
//
// A violation is suppressed only by an annotation on the same line or the
// directly preceding comment line:
//   // dfly-lint: allow(unordered-iter) reason=keys sorted before use
// The reason is mandatory, the annotation is counted and reported in
// lint.json, and an annotation that suppresses nothing is itself a violation
// (stale-allow) — exemptions stay auditable and cannot quietly outlive the
// code they excused. Malformed annotations are bad-annotation violations.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "lint/modules.hpp"

namespace dfly::lint {

struct Violation {
  std::string rule;
  std::string file;  ///< rel path
  int line = 0;
  std::string message;
};

struct Exemption {
  std::string rule;
  std::string file;
  int line = 0;  ///< line of the suppressed violation
  std::string reason;
};

struct LintResult {
  int files_scanned = 0;
  std::vector<Violation> violations;  ///< sorted by (file, line, rule)
  std::vector<Exemption> exemptions;  ///< sorted the same way
  bool clean() const { return violations.empty(); }
};

/// Canonical rule id for `name`, accepting the R1..R6 shorthand; returns ""
/// if the name matches no rule.
std::string canonical_rule(const std::string& name);

/// Evaluates every rule over `files` (keyed by rel path) and resolves
/// annotations. Pure: no filesystem access.
LintResult run_rules(const std::map<std::string, SourceFile>& files);

}  // namespace dfly::lint
