// Source-tree model for the determinism linter: which module a file belongs
// to, and which files can feed bytes into run artifacts.
//
// Rules R1/R3/R5 (DESIGN.md section 12) are scoped by module: wall-clock
// reads are legal in prof/ and farm/ but nowhere else, unordered-container
// iteration is illegal anywhere that can influence metrics.json /
// counters.jsonl / snapshots. Path prefixes alone under-approximate that
// set — workload/background.hpp is not in an artifact directory, yet the
// network includes it and replays its traffic straight into the counters. So
// classification is include-graph-aware: the artifact-feeding set is the
// transitive closure of quoted includes starting from the artifact modules
// (sim, net, routing, obs, metrics, ckpt), plus every .cpp whose same-stem
// header lands in that closure (the implementation of an included header runs
// on the artifact path even though nobody includes the .cpp itself).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace dfly::lint {

/// One scanned translation-unit fragment (header or source file).
struct SourceFile {
  std::string rel;     ///< path relative to the scan root, e.g. "sim/engine.cpp"
  std::string module;  ///< first directory component ("sim"), "" if top-level
  std::vector<Token> tokens;
  std::vector<std::string> includes;  ///< quoted-include targets, as written
};

/// First path component of `rel` ("sim/engine.cpp" -> "sim").
std::string module_of(const std::string& rel);

/// The modules whose state reaches run artifacts (metrics.json,
/// counters.jsonl, heatmap.csv, trace.json, snapshots).
bool is_artifact_module(const std::string& module);

/// Modules with a legitimate need for wall-clock time: the profiler measures
/// it and the farm supervises real processes with it. Neither may leak it
/// into simulation state (that is what the differential artifact tests pin).
bool is_wallclock_module(const std::string& module);

/// Parses `#include "..."` targets out of a token stream (Pp tokens).
std::vector<std::string> quoted_includes(const std::vector<Token>& tokens);

/// Returns the rels of every file that can feed artifact bytes: artifact
/// modules, their transitive quoted includes, and same-stem implementations
/// of any header in the closure. `files` is keyed by rel.
std::set<std::string> artifact_feeding_set(const std::map<std::string, SourceFile>& files);

}  // namespace dfly::lint
