// HDR-style log-linear histogram for wall-clock latencies (nanoseconds).
//
// Values are binned into power-of-two octaves, each subdivided into
// 2^sub_bucket_bits equal-width sub-buckets — constant relative error
// (~1/2^bits) across twelve decades with a small fixed-size bucket array and
// O(1) insertion. This is the recording scheme of HdrHistogram, sized for the
// profiler's needs: event-dispatch times (tens of ns) and barrier waits
// (up to seconds) share one configuration.
//
// The histogram is wall-clock-only instrumentation: it never feeds back into
// the simulation, so it needs no checkpoint support and no determinism
// guarantees beyond its own arithmetic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dfly::prof {

class WallHistogram {
 public:
  /// `sub_bucket_bits` in [0, 8]: each octave splits into 2^bits sub-buckets
  /// (the "histogram resolution" config knob). Throws std::invalid_argument
  /// outside that range.
  explicit WallHistogram(int sub_bucket_bits = 3);

  /// Records one latency. Negative values clamp to 0 (a non-monotonic clock
  /// step must not corrupt the bucket index); values beyond the top bucket
  /// clamp into it. min/max/sum always use the clamped-at-zero value, so
  /// totals stay consistent with the buckets.
  void add(std::int64_t value_ns);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const { return count_ ? min_ : 0; }
  std::int64_t max() const { return count_ ? max_ : 0; }
  std::int64_t sum() const { return sum_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }

  /// Value at percentile p (in [0, 100]): the lower bound of the bucket
  /// holding the p-th sample — a conservative estimate, exact for the small
  /// linear buckets. Returns 0 for an empty histogram; p clamps into range.
  std::int64_t percentile(double p) const;

  /// Adds every sample of `other` (same resolution required; throws
  /// std::invalid_argument otherwise). Used to merge per-lane shards.
  void merge(const WallHistogram& other);

  int sub_bucket_bits() const { return bits_; }
  std::size_t buckets() const { return counts_.size(); }
  std::uint64_t bucket_count(std::size_t i) const { return counts_[i]; }
  /// Inclusive lower bound of bucket `i` in ns.
  std::int64_t bucket_lower(std::size_t i) const;

 private:
  std::size_t index_of(std::int64_t v) const;

  int bits_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  std::int64_t sum_ = 0;
};

}  // namespace dfly::prof
