// Binary snapshot I/O primitives for the checkpoint/restore layer.
//
// A snapshot file is:
//   magic "DFCK" | u32 version | u32 byte-order sentinel | u8 kind |
//   u64 payload size | payload bytes | u32 CRC-32 of the payload
//
// Writer accumulates the payload in memory; write_snapshot_file() frames it
// and writes atomically AND durably: tmp file, write, fsync(file), rename,
// fsync(parent directory) — a full disk fails loudly at save time, never as
// a silently truncated snapshot discovered at resume time, and a snapshot
// that save_checkpoint returned from survives power loss.
//
// Reader parses a validated payload with bounds-checked reads: every count is
// capped by the bytes actually remaining in the buffer, so a corrupt or
// hostile snapshot can throw but never drive an unbounded allocation. The
// CRC rejects bit flips before any field is interpreted.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace dfly::ckpt {

// The on-disk format is little-endian and written by memcpy of native values.
static_assert(std::endian::native == std::endian::little,
              "checkpoint format requires a little-endian host");

// v2: the engine section gained a leading mode byte (serial vs sharded) and
// the network section became lane-structured (arena chunk pool, per-lane
// counters and RNG streams, chunk trace serials).
inline constexpr std::uint32_t kFormatVersion = 2;
/// Value of the byte-order sentinel field as written; a byte-swapped file
/// reads back 0x04030201 and is rejected with a clear message.
inline constexpr std::uint32_t kByteOrderSentinel = 0x01020304u;

/// Payload kind, so a sweep-result file is never fed to the state loader.
enum class SnapshotKind : std::uint8_t { SimState = 1, SweepResult = 2 };

/// CRC-32 (IEEE, reflected) over `size` bytes, seedable for incremental use.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void size(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s);

  const std::string& buffer() const { return buf_; }

 private:
  void raw(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  std::string buf_;
};

class Reader {
 public:
  /// Non-owning view of a validated payload.
  Reader(const char* data, std::size_t size) : data_(data), end_(data + size) {}
  explicit Reader(const std::string& payload) : Reader(payload.data(), payload.size()) {}

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int32_t i32() { return get<std::int32_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean();
  std::string str();

  /// Reads an element count that claims `min_element_bytes` per element and
  /// rejects any count the remaining payload cannot possibly hold — the guard
  /// that keeps a corrupt length field from triggering a huge reserve().
  std::size_t count(std::size_t min_element_bytes);

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - data_); }
  /// Throws unless the payload was consumed exactly.
  void expect_end() const;

 private:
  template <typename T>
  T get() {
    // The byte image must be the value itself: fixed-width integer scalars
    // only, so the little-endian static_assert above covers every field.
    static_assert(std::is_trivially_copyable_v<T> && std::is_integral_v<T>,
                  "snapshot format reads fixed-width integer scalars only");
    need(sizeof(T));
    T v;
    __builtin_memcpy(&v, data_, sizeof v);
    data_ += sizeof v;
    return v;
  }
  void need(std::size_t n) const;

  const char* data_;
  const char* end_;
};

/// Frames `payload` (header + CRC) and writes it to `path` atomically via a
/// sibling tmp file + rename, fsyncing both the file and its parent
/// directory so the snapshot is durable once this returns. Throws
/// std::runtime_error on any I/O failure, including a short write.
void write_snapshot_file(const std::string& path, SnapshotKind kind, const std::string& payload);

/// Reads and validates a snapshot file: magic, version, byte order, kind,
/// size and CRC must all check out. Returns the payload. Throws
/// std::runtime_error with a specific message on every corruption mode.
std::string read_snapshot_file(const std::string& path, SnapshotKind kind);

}  // namespace dfly::ckpt
