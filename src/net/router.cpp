#include "net/router.hpp"

namespace dfly {

Router::Router(const DragonflyTopology& topo, const NetworkParams& params, RouterId /*id*/,
               int num_vcs) {
  ports_.resize(topo.ports_per_router());
  for (int p = 0; p < topo.ports_per_router(); ++p) {
    OutPort& op = ports_[p];
    op.kind = topo.port_kind(p);
    if (!op.is_terminal()) {
      // Downstream input buffer: one buffer per VC, sized by channel kind.
      op.credits.assign(num_vcs, params.vc_buffer(op.kind));
    }
  }
}

}  // namespace dfly
