#include "sim/engine.hpp"

#include <cassert>

namespace dfly {

void Engine::schedule(SimTime when, EventHandler* handler, EventPayload payload) {
  assert(handler != nullptr);
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(QueuedEvent{when, seq_++, handler, payload});
}

bool Engine::step() {
  if (stop_requested_) return false;
  if (queue_.empty()) return false;
  if (event_limit_ != 0 && processed_ >= event_limit_) {
    hit_limit_ = true;
    return false;
  }
  const QueuedEvent ev = queue_.pop_min();
  now_ = ev.time;
  ++processed_;
  ev.handler->handle_event(now_, ev.payload);
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  return now_;
}

SimTime Engine::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.min().time <= deadline) {
    if (!step()) break;
  }
  // Advance to the deadline only on a genuine drain: a run halted by
  // request_stop() or the event-limit watchdog must not teleport forward.
  if (queue_.empty() && !stop_requested_ && !hit_limit_ && now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace dfly
