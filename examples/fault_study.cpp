// Example: run the placement x routing matrix on a degrading network — a
// fraction of the global links fails mid-run — and report per-policy
// resilience: how much each configuration slows down, how many bytes were
// dropped and retransmitted, and whether the chunk-conservation audit held.
//
// Usage: fault_study [app_ranks] [fault_fraction] [fault_time_us]
//   defaults: 256 ranks, 0.25, 50 us
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 256;
  const double fraction = argc > 2 ? std::atof(argv[2]) : 0.25;
  const SimTime fault_time = (argc > 3 ? std::atoll(argv[3]) : 50) * units::kMicrosecond;

  // A global-heavy victim: permutation traffic forces inter-group transfers,
  // so downed global links genuinely hurt.
  Rng trace_rng(11);
  Workload app{"permutation", make_permutation_trace(ranks, units::kMiB, trace_rng)};

  ExperimentOptions options;  // Theta system
  options.seed = 7;

  const std::vector<ExperimentConfig> configs = {
      {PlacementKind::Contiguous, RoutingKind::Minimal},
      {PlacementKind::RandomCabinet, RoutingKind::Minimal},
      {PlacementKind::Contiguous, RoutingKind::Adaptive},
      {PlacementKind::RandomNode, RoutingKind::Adaptive},
      {PlacementKind::RandomNode, RoutingKind::Valiant},
  };

  // Build the degradation once so every configuration faces the same faults.
  const DragonflyTopology topo(options.topo);
  Rng fault_rng(options.seed ^ 0xfau);
  const FaultSchedule schedule =
      random_global_fault_schedule(topo, fraction, fault_time, fault_rng);

  std::printf("workload: %d-rank permutation | faults: %zu global links down at %lld us\n\n",
              ranks, schedule.size(), static_cast<long long>(fault_time / units::kMicrosecond));
  std::printf("%-16s %12s %12s %10s %12s %12s %6s %12s\n", "config", "healthy ms", "faulted ms",
              "slowdown", "dropped B", "retx B", "fired", "conservation");

  for (const ExperimentConfig& config : configs) {
    ExperimentOptions healthy = options;
    const ExperimentResult base = run_experiment(app, config, healthy, &topo);

    ExperimentOptions faulted = options;
    faulted.faults = schedule;
    const ExperimentResult hit = run_experiment(app, config, faulted, &topo);

    std::printf("%-16s %12.3f %12.3f %9.2fx %12lld %12lld %6d %12s\n", base.config.c_str(),
                base.metrics.makespan_ms, hit.metrics.makespan_ms,
                base.metrics.makespan_ms > 0 ? hit.metrics.makespan_ms / base.metrics.makespan_ms
                                             : 0.0,
                static_cast<long long>(hit.bytes_dropped),
                static_cast<long long>(hit.bytes_retransmitted), hit.faults_fired,
                hit.conservation_ok ? "ok" : "VIOLATED");
  }

  std::printf(
      "\nReading: adaptive routing reroutes around the failures and degrades\n"
      "gracefully; minimal routing on a contiguous placement depends on fewer\n"
      "global links, so its outcome hinges on whether those specific links died.\n");
  return 0;
}
