// Tests for the timeline sampler.
#include "metrics/timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "replay/replay.hpp"
#include "routing/minimal.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

TEST(Timeline, SamplesAtFixedIntervalAndStops) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  TimelineSampler sampler(engine, network, 10 * units::kMicrosecond);

  const Trace trace = make_ring_trace(16, 256 * units::kKiB, 2);
  Rng rng(2);
  const Placement placement = make_placement(PlacementKind::RandomNode, topo.params(), 16, rng);
  ReplayEngine replay(engine, network, trace, placement);
  replay.set_completion_callback([&](SimTime) { sampler.request_stop(); });
  sampler.start();
  replay.start();
  engine.run();

  ASSERT_GE(sampler.samples().size(), 2u);
  for (std::size_t i = 1; i < sampler.samples().size(); ++i) {
    EXPECT_EQ(sampler.samples()[i].time - sampler.samples()[i - 1].time,
              10 * units::kMicrosecond);
    EXPECT_GE(sampler.samples()[i].bytes_delivered, sampler.samples()[i - 1].bytes_delivered);
    EXPECT_GE(sampler.samples()[i].chunks_forwarded, sampler.samples()[i - 1].chunks_forwarded);
  }
  // Final cumulative delivered matches the network counter at sample time.
  EXPECT_LE(sampler.samples().back().bytes_delivered, network.bytes_delivered());
}

TEST(Timeline, ThroughputRatesAreFiniteAndBounded) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  TimelineSampler sampler(engine, network, 5 * units::kMicrosecond);

  for (NodeId n = 0; n + 1 < topo.params().total_nodes(); n += 2)
    network.send(n, n + 1, units::kMiB);
  sampler.start();
  engine.run_until(200 * units::kMicrosecond);
  sampler.request_stop();
  engine.run();

  const auto rates = sampler.throughput_gbps();
  ASSERT_FALSE(rates.empty());
  // Aggregate delivery rate cannot exceed total terminal bandwidth.
  const double cap = topo.params().total_nodes() *
                     NetworkParams::theta().bandwidth(PortKind::Terminal);
  for (const double r : rates) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, cap);
  }
}

TEST(Timeline, TableHasOneRowPerSample) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  TimelineSampler sampler(engine, network, 1000);
  network.send(0, 5, 64 * units::kKiB);
  sampler.start();
  engine.run_until(5000);
  sampler.request_stop();
  engine.run();
  const Table t = sampler.to_table("timeline");
  EXPECT_EQ(t.rows(), sampler.samples().size());
}

TEST(Timeline, RejectsNonPositiveInterval) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  EXPECT_THROW(TimelineSampler(engine, network, 0), std::invalid_argument);
}

TEST(Timeline, RejectsDoubleStart) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  TimelineSampler sampler(engine, network, 1000);
  sampler.start();
  EXPECT_THROW(sampler.start(), std::logic_error);
}

TEST(Timeline, ThroughputWithZeroOrOneSampleIsEmpty) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  TimelineSampler sampler(engine, network, 1000);

  // Never started: zero samples, no rates, a headers-only table.
  EXPECT_TRUE(sampler.throughput_gbps().empty());
  const Table empty = sampler.to_table("empty");
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_GT(empty.columns(), 0u);

  // One probe firing in an otherwise idle engine: one sample, still no rate
  // (a rate needs two points).
  sampler.start();
  engine.run_until(500);  // first probe at t=0 only; next would be t=1000
  sampler.request_stop();
  engine.run();
  ASSERT_EQ(sampler.samples().size(), 1u);
  EXPECT_TRUE(sampler.throughput_gbps().empty());
}

TEST(Timeline, ZeroDtBetweenSamplesYieldsZeroRate) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  TimelineSampler sampler(engine, network, 1000);
  // Drive the handler directly with two probes at the same timestamp: the
  // divide-by-dt guard must return 0, not inf/nan.
  sampler.handle_event(50, EventPayload{1, 0, 0, 0});
  sampler.handle_event(50, EventPayload{1, 0, 0, 0});
  ASSERT_EQ(sampler.samples().size(), 2u);
  const auto rates = sampler.throughput_gbps();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_EQ(rates[0], 0.0);
}

TEST(Timeline, QueuedBytesSplitsByPortClass) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  TimelineSampler sampler(engine, network, 2 * units::kMicrosecond);

  // Cross-group traffic so local and global queues both see load.
  const int nodes = topo.params().total_nodes();
  for (NodeId n = 0; n < nodes; ++n) network.send(n, (n + nodes / 2) % nodes, units::kMiB);
  sampler.start();
  engine.run_until(100 * units::kMicrosecond);
  sampler.request_stop();
  engine.run();

  Bytes peak = 0;
  for (const TimelineSample& s : sampler.samples()) {
    EXPECT_EQ(s.queued_bytes, s.queued_local + s.queued_global + s.queued_terminal);
    peak = std::max(peak, s.queued_bytes);
  }
  EXPECT_GT(peak, 0);
}

}  // namespace
}  // namespace dfly
