// MPI collective operations lowered to point-to-point trace ops, using the
// classic algorithms MPI libraries implement. The DOE miniapps the paper
// replays contain collective phases (the CR multistage exchange *is* a
// crystal-router alltoallv); these builders let users compose their own
// workloads at the same level.
//
// All builders append to an existing Trace (so collectives can be mixed with
// custom phases) and end with a WaitAll on every participating rank.
#pragma once

#include <vector>

#include "trace/trace.hpp"
#include "workload/exchange.hpp"

namespace dfly {

/// Recursive-doubling allreduce: ceil(log2 n) pairwise exchange stages of the
/// full payload. Non-power-of-two rank counts use the standard fold-in /
/// fold-out fixup.
void append_allreduce(Trace& trace, TagAllocator& tags, Bytes bytes);

/// Binomial-tree broadcast from `root`: stage k has 2^k senders.
void append_broadcast(Trace& trace, TagAllocator& tags, int root, Bytes bytes);

/// Binomial-tree reduce to `root` (the broadcast tree, reversed).
void append_reduce(Trace& trace, TagAllocator& tags, int root, Bytes bytes);

/// Ring allgather: n-1 steps, each rank forwards the block it just received
/// to its +1 neighbor. `block_bytes` is the per-rank contribution.
void append_allgather_ring(Trace& trace, TagAllocator& tags, Bytes block_bytes);

/// Pairwise-exchange alltoall: n-1 steps; at step s, rank r exchanges its
/// block with rank r^s when n is a power of two, (r+s)%n / (r-s+n)%n
/// otherwise. `block_bytes` is the per-destination block.
void append_alltoall(Trace& trace, TagAllocator& tags, Bytes block_bytes);

/// Dissemination barrier realized with 1-byte messages (a "real" barrier
/// rather than the replay engine's zero-cost Barrier op): ceil(log2 n)
/// rounds, partner = (r + 2^k) mod n.
void append_dissemination_barrier(Trace& trace, TagAllocator& tags);

}  // namespace dfly
