#include "topo/dragonfly.hpp"

#include <cassert>
#include <stdexcept>

namespace dfly {

const char* to_string(PortKind kind) {
  switch (kind) {
    case PortKind::Terminal: return "terminal";
    case PortKind::LocalRow: return "local-row";
    case PortKind::LocalCol: return "local-col";
    case PortKind::Global: return "global";
  }
  return "?";
}

DragonflyTopology::DragonflyTopology(const TopoParams& params)
    : params_(params), coords_(params) {
  params_.validate();
  ports_per_router_ = params_.nodes_per_router + (params_.cols - 1) + (params_.rows - 1) +
                      params_.global_ports_per_router;
  build_global_links();
}

PortKind DragonflyTopology::port_kind(int port) const {
  assert(port >= 0 && port < ports_per_router_);
  if (port < first_row_port()) return PortKind::Terminal;
  if (port < first_col_port()) return PortKind::LocalRow;
  if (port < first_global_port()) return PortKind::LocalCol;
  return PortKind::Global;
}

RouterId DragonflyTopology::neighbor(RouterId router, int port) const {
  const PortKind kind = port_kind(port);
  const RouterCoord c = coords_.coord(router);
  switch (kind) {
    case PortKind::Terminal:
      assert(false && "terminal ports have no router neighbor");
      return -1;
    case PortKind::LocalRow: {
      const int idx = port - first_row_port();          // 0..cols-2
      const int col = idx < c.col ? idx : idx + 1;      // skip own column
      return coords_.router_at(c.group, c.row, col);
    }
    case PortKind::LocalCol: {
      const int idx = port - first_col_port();          // 0..rows-2
      const int row = idx < c.row ? idx : idx + 1;      // skip own row
      return coords_.router_at(c.group, row, c.col);
    }
    case PortKind::Global: {
      const int gidx = router * params_.global_ports_per_router + (port - first_global_port());
      return global_peer_router_[gidx];
    }
  }
  return -1;
}

int DragonflyTopology::neighbor_port(RouterId router, int port) const {
  const PortKind kind = port_kind(port);
  const RouterId peer = neighbor(router, port);
  switch (kind) {
    case PortKind::Terminal:
      return -1;
    case PortKind::LocalRow:
      return row_port_to(peer, router);
    case PortKind::LocalCol:
      return col_port_to(peer, router);
    case PortKind::Global: {
      const int gidx = router * params_.global_ports_per_router + (port - first_global_port());
      return global_peer_port_[gidx];
    }
  }
  return -1;
}

int DragonflyTopology::row_port_to(RouterId from, RouterId to) const {
  const RouterCoord a = coords_.coord(from);
  const RouterCoord b = coords_.coord(to);
  assert(a.group == b.group && a.row == b.row && a.col != b.col);
  return first_row_port() + (b.col < a.col ? b.col : b.col - 1);
}

int DragonflyTopology::col_port_to(RouterId from, RouterId to) const {
  const RouterCoord a = coords_.coord(from);
  const RouterCoord b = coords_.coord(to);
  assert(a.group == b.group && a.col == b.col && a.row != b.row);
  return first_col_port() + (b.row < a.row ? b.row : b.row - 1);
}

int DragonflyTopology::local_port_to(RouterId from, RouterId to) const {
  const RouterCoord a = coords_.coord(from);
  const RouterCoord b = coords_.coord(to);
  if (a.group != b.group || from == to) return -1;
  if (a.row == b.row) return row_port_to(from, to);
  if (a.col == b.col) return col_port_to(from, to);
  return -1;
}

std::span<const GlobalLink> DragonflyTopology::global_links(GroupId ga, GroupId gb) const {
  assert(ga != gb);
  return global_links_[static_cast<std::size_t>(ga) * params_.groups + gb];
}

void DragonflyTopology::build_global_links() {
  const int groups = params_.groups;
  const int gpr = params_.global_ports_per_router;
  const int rpg = params_.routers_per_group();
  const int ports_per_group = rpg * gpr;
  const int links_per_pair = ports_per_group / (groups - 1);

  global_links_.assign(static_cast<std::size_t>(groups) * groups, {});
  global_peer_router_.assign(static_cast<std::size_t>(params_.total_routers()) * gpr, -1);
  global_peer_port_.assign(global_peer_router_.size(), -1);

  // Linear port index i of group g points at g's (i % (groups-1))-th peer
  // group (the other groups in increasing order); the
  // j-th port of g pointing at peer h pairs with the j-th port of h pointing
  // at g.
  auto ports_toward = [&](GroupId g, GroupId h) {
    std::vector<int> ports;
    ports.reserve(links_per_pair);
    const int k = h < g ? h : h - 1;  // index of h in g's peer list
    for (int i = k; i < ports_per_group; i += groups - 1) ports.push_back(i);
    return ports;
  };

  for (GroupId a = 0; a < groups; ++a) {
    for (GroupId b = a + 1; b < groups; ++b) {
      const std::vector<int> pa = ports_toward(a, b);
      const std::vector<int> pb = ports_toward(b, a);
      if (pa.size() != pb.size())
        throw std::logic_error("dragonfly global arrangement is asymmetric");
      auto& forward = global_links_[static_cast<std::size_t>(a) * groups + b];
      auto& backward = global_links_[static_cast<std::size_t>(b) * groups + a];
      for (std::size_t j = 0; j < pa.size(); ++j) {
        const RouterId ra = a * rpg + pa[j] / gpr;
        const int porta = first_global_port() + pa[j] % gpr;
        const RouterId rb = b * rpg + pb[j] / gpr;
        const int portb = first_global_port() + pb[j] % gpr;
        forward.push_back(GlobalLink{ra, porta, rb, portb});
        backward.push_back(GlobalLink{rb, portb, ra, porta});
        global_peer_router_[static_cast<std::size_t>(ra) * gpr + pa[j] % gpr] = rb;
        global_peer_port_[static_cast<std::size_t>(ra) * gpr + pa[j] % gpr] = portb;
        global_peer_router_[static_cast<std::size_t>(rb) * gpr + pb[j] % gpr] = ra;
        global_peer_port_[static_cast<std::size_t>(rb) * gpr + pb[j] % gpr] = porta;
      }
    }
  }

  // Every global port must be wired exactly once.
  for (const RouterId peer : global_peer_router_)
    if (peer < 0) throw std::logic_error("dragonfly global arrangement left a port unwired");

  global_port_disabled_.assign(global_peer_router_.size(), 0);
}

void DragonflyTopology::disable_global_link(GroupId a, GroupId b, int index) {
  if (a == b) throw std::invalid_argument("disable_global_link: a == b");
  auto& forward = global_links_[static_cast<std::size_t>(a) * params_.groups + b];
  if (index < 0 || index >= static_cast<int>(forward.size()))
    throw std::invalid_argument("disable_global_link: index out of range");
  if (forward.size() <= 1)
    throw std::invalid_argument("disable_global_link: would disconnect the group pair");
  const GlobalLink link = forward[index];

  const int gpr = params_.global_ports_per_router;
  global_port_disabled_[static_cast<std::size_t>(link.src_router) * gpr +
                        (link.src_port - first_global_port())] = 1;
  global_port_disabled_[static_cast<std::size_t>(link.dst_router) * gpr +
                        (link.dst_port - first_global_port())] = 1;

  forward.erase(forward.begin() + index);
  auto& backward = global_links_[static_cast<std::size_t>(b) * params_.groups + a];
  for (auto it = backward.begin(); it != backward.end(); ++it) {
    if (it->src_router == link.dst_router && it->src_port == link.dst_port) {
      backward.erase(it);
      break;
    }
  }
  ++disabled_count_;
}

bool DragonflyTopology::port_enabled(RouterId router, int port) const {
  if (port_kind(port) != PortKind::Global) return true;
  return global_port_disabled_[static_cast<std::size_t>(router) *
                                   params_.global_ports_per_router +
                               (port - first_global_port())] == 0;
}

int disable_random_global_links(DragonflyTopology& topo, double fraction, Rng& rng) {
  if (fraction < 0 || fraction >= 1)
    throw std::invalid_argument("disable_random_global_links: fraction must be in [0, 1)");
  int disabled = 0;
  const int groups = topo.params().groups;
  for (GroupId a = 0; a < groups; ++a) {
    for (GroupId b = a + 1; b < groups; ++b) {
      const auto initial = static_cast<int>(topo.global_links(a, b).size());
      const int target = static_cast<int>(fraction * initial);
      for (int k = 0; k < target && static_cast<int>(topo.global_links(a, b).size()) > 1; ++k) {
        const auto remaining = static_cast<std::uint64_t>(topo.global_links(a, b).size());
        topo.disable_global_link(a, b, static_cast<int>(rng.uniform(remaining)));
        ++disabled;
      }
    }
  }
  return disabled;
}

}  // namespace dfly
