#include "fault/health.hpp"

#include <sstream>
#include <stdexcept>

#include "ckpt/snapshot_io.hpp"

namespace dfly {

namespace {
constexpr int kMaxListed = 16;  // cap per-item lists in the report
}

std::string HealthReport::to_string() const {
  std::ostringstream out;
  out << "=== simulation health report @ " << time << " ns ===\n";
  out << "state: " << (deadlock ? "DEADLOCK" : stalled ? "STALLED" : "running")
      << ", conservation " << (conservation_ok ? "ok" : "VIOLATED") << "\n";
  out << "bytes: injected=" << bytes_injected << " delivered=" << bytes_delivered
      << " dropped=" << bytes_dropped << " retransmitted=" << bytes_retransmitted
      << " in-fabric=" << in_fabric_bytes << "\n";
  out << "messages in flight: " << messages_in_flight << ", pending events: " << pending_events
      << ", events processed: " << events_processed << "\n";
  out << "scheduler: buckets=" << scheduler.buckets << " width=" << scheduler.bucket_width
      << "ns calendar=" << scheduler.calendar_events << " overflow=" << scheduler.overflow_events
      << " resizes=" << scheduler.resizes << " promotions=" << scheduler.overflow_promotions
      << " peak=" << scheduler.peak_pending << "\n";
  out << "blocked NICs: " << blocked_nics;
  if (!blocked_nic_ids.empty()) {
    out << " [";
    for (std::size_t i = 0; i < blocked_nic_ids.size(); ++i)
      out << (i ? " " : "") << blocked_nic_ids[i];
    if (blocked_nics > static_cast<int>(blocked_nic_ids.size())) out << " ...";
    out << "]";
  }
  out << "\n";
  out << "stuck ports: " << stuck_ports.size() << (stuck_ports.size() == kMaxListed ? "+" : "")
      << "\n";
  for (const PortDiag& pd : stuck_ports) {
    out << "  router " << pd.router << " port " << pd.port << " (" << dfly::to_string(pd.kind)
        << "): " << pd.queued_chunks << " chunks / " << pd.queued_bytes << " B queued, "
        << pd.starved_vcs << " starved VC(s)\n";
  }
  out << "per-VC queued bytes:";
  for (std::size_t vc = 0; vc < vc_occupancy.size(); ++vc) {
    if (vc_occupancy[vc] != 0) out << " vc" << vc << "=" << vc_occupancy[vc];
  }
  out << "\n";
  return out.str();
}

HealthMonitor::HealthMonitor(Engine& engine, const Network& network, HealthOptions options)
    : engine_(engine), network_(network), options_(options) {
  if (options_.interval <= 0) throw std::invalid_argument("health interval must be positive");
  if (options_.stall_ticks <= 0) throw std::invalid_argument("stall_ticks must be positive");
  work_remaining_ = [this] { return network_.messages_in_flight() > 0; };
}

void HealthMonitor::start() {
  engine_.schedule_after(options_.interval, this, EventPayload{});
}

HealthReport HealthMonitor::capture(SimTime now) const {
  HealthReport r;
  r.time = now;
  r.conservation_ok = network_.conservation_ok();
  r.bytes_injected = network_.bytes_injected();
  r.bytes_delivered = network_.bytes_delivered();
  r.bytes_dropped = network_.bytes_dropped();
  r.bytes_retransmitted = network_.bytes_retransmitted();
  r.in_fabric_bytes = network_.in_fabric_bytes();
  r.messages_in_flight = network_.messages_in_flight();
  r.pending_events = engine_.pending();
  r.events_processed = engine_.events_processed();
  r.scheduler = engine_.scheduler_stats();

  const DragonflyTopology& topo = network_.topology();
  const int nodes = topo.params().total_nodes();
  for (NodeId n = 0; n < nodes; ++n) {
    if (network_.nic(n).blocked_since >= 0) {
      ++r.blocked_nics;
      if (static_cast<int>(r.blocked_nic_ids.size()) < kMaxListed) r.blocked_nic_ids.push_back(n);
    }
  }

  const Bytes chunk_bytes = network_.params().chunk_bytes;
  const int routers = topo.params().total_routers();
  for (RouterId rid = 0; rid < routers && static_cast<int>(r.stuck_ports.size()) < kMaxListed;
       ++rid) {
    const Router& router = network_.router(rid);
    for (int p = 0; p < router.num_ports(); ++p) {
      const OutPort& op = router.port(p);
      if (op.queue.empty()) continue;
      PortDiag pd;
      pd.router = rid;
      pd.port = p;
      pd.kind = op.kind;
      pd.queued_bytes = op.queued_bytes;
      pd.queued_chunks = static_cast<int>(op.queue.size());
      for (const Bytes credit : op.credits)
        if (credit < chunk_bytes) ++pd.starved_vcs;
      // Report only ports that look wedged: demand present and at least one
      // VC out of downstream space (an actively draining port is healthy).
      const bool wedged = op.is_terminal() ? op.blocked_since >= 0 : pd.starved_vcs > 0;
      if (!wedged) continue;
      r.stuck_ports.push_back(pd);
      if (static_cast<int>(r.stuck_ports.size()) >= kMaxListed) break;
    }
  }

  r.vc_occupancy = network_.vc_occupancy();
  return r;
}

void HealthMonitor::handle_event(SimTime now, const EventPayload& /*payload*/) {
  ++ticks_;
  if (!network_.conservation_ok() && !conservation_failed_) {
    conservation_failed_ = true;
    report_ = capture(now);
    engine_.request_stop();
    return;
  }
  const bool work = work_remaining_();
  if (!work) return;  // simulation is wrapping up; let the engine drain

  if (engine_.pending() == 0) {
    // This tick is the only remaining event: nothing else can ever make
    // progress again. Capture the evidence and let run() return.
    deadlock_ = true;
    report_ = capture(now);
    report_.deadlock = true;
    return;
  }

  const Bytes injected = network_.bytes_injected();
  const Bytes delivered = network_.bytes_delivered();
  if (injected == last_injected_ && delivered == last_delivered_) {
    if (++idle_ticks_ >= options_.stall_ticks) {
      stalled_ = true;
      report_ = capture(now);
      report_.stalled = true;
      engine_.request_stop();
      return;
    }
  } else {
    idle_ticks_ = 0;
    last_injected_ = injected;
    last_delivered_ = delivered;
  }
  engine_.schedule_after(options_.interval, this, EventPayload{});
}

void HealthMonitor::save_state(ckpt::Writer& w) const {
  w.i64(last_injected_);
  w.i64(last_delivered_);
  w.i32(idle_ticks_);
  w.u64(ticks_);
  w.boolean(deadlock_);
  w.boolean(stalled_);
  w.boolean(conservation_failed_);
}

void HealthMonitor::load_state(ckpt::Reader& r) {
  last_injected_ = r.i64();
  last_delivered_ = r.i64();
  idle_ticks_ = r.i32();
  ticks_ = r.u64();
  deadlock_ = r.boolean();
  stalled_ = r.boolean();
  conservation_failed_ = r.boolean();
  if (idle_ticks_ < 0 || idle_ticks_ > options_.stall_ticks)
    throw std::runtime_error("snapshot: health idle-tick counter out of range");
}

}  // namespace dfly
