// Tests for the logging facility.
#include "util/log.hpp"

#include <gtest/gtest.h>

namespace dfly {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must stay quiet in tests/benches unless something is wrong.
  EXPECT_EQ(log_level(), LogLevel::Warn);
}

TEST(Log, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (const LogLevel level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn, LogLevel::Error,
                               LogLevel::Off}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(Log, EmittingBelowLevelDoesNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  log_debug("invisible");
  log_info("invisible");
  log_warn("invisible");
  log_error("invisible");
  set_log_level(LogLevel::Debug);
  log_debug("visible in debug runs");
}

}  // namespace
}  // namespace dfly
