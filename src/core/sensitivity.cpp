#include "core/sensitivity.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/run_matrix.hpp"

namespace dfly {

Table SensitivityResult::to_table(const std::string& title) const {
  // Rows = scales, columns = configs (matching Fig. 7's x-axis and series).
  std::vector<double> scales;
  std::vector<std::string> configs;
  for (const SensitivityPoint& p : points) {
    if (scales.empty() || scales.back() != p.scale) scales.push_back(p.scale);
    if (std::find(configs.begin(), configs.end(), p.config) == configs.end())
      configs.push_back(p.config);
  }
  Table t(title);
  std::vector<std::string> headers = {"msg scale"};
  for (const auto& c : configs) headers.push_back(c + " (% of rand-adp)");
  t.set_columns(std::move(headers));
  for (const double s : scales) {
    std::vector<std::string> row = {Table::num(s, 2)};
    for (const auto& c : configs) {
      const auto it = std::find_if(points.begin(), points.end(), [&](const SensitivityPoint& p) {
        return p.scale == s && p.config == c;
      });
      row.push_back(it == points.end() ? "-" : Table::num(it->relative_to_baseline_pct, 1));
    }
    t.add_row(std::move(row));
  }
  return t;
}

SensitivityResult run_sensitivity(const std::function<Workload(double)>& make_workload,
                                  const std::vector<double>& scales,
                                  const std::vector<ExperimentConfig>& configs,
                                  const ExperimentOptions& options, int threads) {
  const ExperimentConfig baseline{PlacementKind::RandomNode, RoutingKind::Adaptive};
  std::vector<ExperimentConfig> all = configs;
  if (std::none_of(all.begin(), all.end(), [&](const ExperimentConfig& c) {
        return c.name() == baseline.name();
      }))
    all.push_back(baseline);

  SensitivityResult result;
  for (const double scale : scales) {
    const Workload workload = make_workload(scale);
    const std::vector<ExperimentResult> runs = run_matrix(workload, all, options, threads);
    double baseline_max = 0;
    for (std::size_t i = 0; i < all.size(); ++i)
      if (all[i].name() == baseline.name()) baseline_max = runs[i].metrics.max_comm_ms();
    if (baseline_max <= 0) throw std::runtime_error("sensitivity: baseline produced no time");
    for (std::size_t i = 0; i < all.size(); ++i) {
      const double max_ms = runs[i].metrics.max_comm_ms();
      result.points.push_back(
          SensitivityPoint{scale, all[i].name(), max_ms, 100.0 * max_ms / baseline_max});
    }
  }
  return result;
}

}  // namespace dfly
