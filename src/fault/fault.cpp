#include "fault/fault.hpp"

#include <cassert>
#include <stdexcept>

#include "ckpt/snapshot_io.hpp"
#include "net/network.hpp"

namespace dfly {

const char* to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::GlobalDown: return "global-down";
    case FaultEvent::Kind::GlobalUp: return "global-up";
    case FaultEvent::Kind::LocalDown: return "local-down";
    case FaultEvent::Kind::LocalUp: return "local-up";
  }
  return "?";
}

FaultSchedule random_global_fault_schedule(const DragonflyTopology& topo, double fraction,
                                           SimTime at, Rng& rng) {
  if (fraction < 0 || fraction >= 1)
    throw std::invalid_argument("random_global_fault_schedule: fraction must be in [0, 1)");
  FaultSchedule schedule;
  const int groups = topo.params().groups;
  for (GroupId a = 0; a < groups; ++a) {
    for (GroupId b = a + 1; b < groups; ++b) {
      const auto all = topo.all_global_links(a, b);
      const int total = static_cast<int>(all.size());
      const int target = static_cast<int>(fraction * total);
      // Sample distinct indices, keeping at least one link alive.
      std::vector<char> taken(static_cast<std::size_t>(total), 0);
      for (int k = 0; k < target && k < total - 1; ++k) {
        int idx = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(total)));
        while (taken[idx] != 0) idx = (idx + 1) % total;
        taken[idx] = 1;
        schedule.push_back(FaultEvent::global_down(at, a, b, idx));
      }
    }
  }
  return schedule;
}

FaultInjector::FaultInjector(Engine& engine, DragonflyTopology& topo, Network& network,
                             RoutingAlgorithm* routing, FaultSchedule schedule)
    : engine_(engine), topo_(topo), network_(network), routing_(routing),
      schedule_(std::move(schedule)) {}

void FaultInjector::start() {
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    engine_.schedule(schedule_[i].time, this,
                     EventPayload{0, 0, static_cast<std::uint64_t>(i), 0});
  }
}

void FaultInjector::handle_event(SimTime now, const EventPayload& payload) {
  apply(schedule_[payload.b], now);
}

namespace {

// Digest of the schedule contents: pending fault events in the restored queue
// index into schedule_, so resuming against a different schedule would apply
// the wrong faults. The digest pins the schedule identity without storing it.
std::uint32_t schedule_digest(const FaultSchedule& schedule) {
  ckpt::Writer w;
  for (const FaultEvent& ev : schedule) {
    w.u8(static_cast<std::uint8_t>(ev.kind));
    w.i64(ev.time);
    w.i32(ev.a);
    w.i32(ev.b);
    w.i32(ev.index);
    w.i32(ev.u);
    w.i32(ev.v);
  }
  const std::string& buf = w.buffer();
  return ckpt::crc32(buf.data(), buf.size());
}

}  // namespace

void FaultInjector::save_state(ckpt::Writer& w) const {
  w.u64(schedule_.size());
  w.u32(schedule_digest(schedule_));
  w.i32(fired_);
  w.i32(skipped_);
}

void FaultInjector::load_state(ckpt::Reader& r) {
  if (r.u64() != schedule_.size() || r.u32() != schedule_digest(schedule_))
    throw std::runtime_error("snapshot: fault schedule does not match the checkpointed run");
  fired_ = r.i32();
  skipped_ = r.i32();
  if (fired_ < 0 || skipped_ < 0 ||
      static_cast<std::size_t>(fired_) + static_cast<std::size_t>(skipped_) > schedule_.size())
    throw std::runtime_error("snapshot: fault cursor out of range");
}

void FaultInjector::apply(const FaultEvent& event, SimTime now) {
  bool changed = false;
  try {
    if (event.is_global()) {
      changed = topo_.set_global_link_state(event.a, event.b, event.index, !event.is_down());
    } else {
      changed = topo_.set_local_link_state(event.u, event.v, !event.is_down());
    }
  } catch (const std::invalid_argument&) {
    // The connectivity guard refused the change (last link of a pair, or a
    // group would lose its minimal local paths). Count and carry on — a fault
    // schedule built against an already-degraded topology may legitimately
    // collide with earlier faults.
    ++skipped_;
    return;
  }
  if (!changed) return;  // already in the requested state
  ++fired_;
  if (routing_ != nullptr) routing_->on_topology_changed();
  if (event.is_global()) {
    const GlobalLink link = topo_.all_global_links(event.a, event.b)[event.index];
    network_.on_link_state_changed(link.src_router, link.src_port, !event.is_down(), now);
    network_.on_link_state_changed(link.dst_router, link.dst_port, !event.is_down(), now);
  } else {
    const int port_uv = topo_.local_port_to(event.u, event.v);
    const int port_vu = topo_.local_port_to(event.v, event.u);
    assert(port_uv >= 0 && port_vu >= 0);
    network_.on_link_state_changed(event.u, port_uv, !event.is_down(), now);
    network_.on_link_state_changed(event.v, port_vu, !event.is_down(), now);
  }
}

}  // namespace dfly
