file(REMOVE_RECURSE
  "../bench/bench_findings_check"
  "../bench/bench_findings_check.pdb"
  "CMakeFiles/bench_findings_check.dir/bench_findings_check.cpp.o"
  "CMakeFiles/bench_findings_check.dir/bench_findings_check.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_findings_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
