#include "workload/characterize.hpp"

#include <algorithm>
#include <cmath>

namespace dfly {
namespace {

bool is_send(OpKind k) { return k == OpKind::Send || k == OpKind::Isend; }
bool is_phase_end(OpKind k) { return k == OpKind::WaitAll || k == OpKind::Barrier; }

}  // namespace

CommMatrix::CommMatrix(const Trace& trace) : rows_(trace.ranks()) {
  for (int r = 0; r < trace.ranks(); ++r) {
    for (const TraceOp& op : trace.rank(r)) {
      if (!is_send(op.kind)) continue;
      rows_[r][op.peer] += op.bytes;
      total_ += op.bytes;
      ++messages_;
    }
  }
}

Bytes CommMatrix::bytes(int src, int dst) const {
  const auto it = rows_[src].find(dst);
  return it == rows_[src].end() ? 0 : it->second;
}

double CommMatrix::average_message_bytes() const {
  return messages_ ? static_cast<double>(total_) / static_cast<double>(messages_) : 0.0;
}

std::size_t CommMatrix::pairs_used() const {
  std::size_t pairs = 0;
  for (const auto& row : rows_) pairs += row.size();
  return pairs;
}

double CommMatrix::locality_fraction(int window) const {
  if (total_ == 0) return 0.0;
  Bytes local = 0;
  for (int src = 0; src < ranks(); ++src) {
    for (const auto& [dst, bytes] : rows_[src]) {
      if (std::abs(src - dst) <= window) local += bytes;
    }
  }
  return static_cast<double>(local) / static_cast<double>(total_);
}

std::vector<std::vector<Bytes>> CommMatrix::block_aggregate(int blocks) const {
  std::vector<std::vector<Bytes>> grid(blocks, std::vector<Bytes>(blocks, 0));
  const double scale = static_cast<double>(blocks) / ranks();
  for (int src = 0; src < ranks(); ++src) {
    const int bi = std::min(blocks - 1, static_cast<int>(src * scale));
    for (const auto& [dst, bytes] : rows_[src]) {
      const int bj = std::min(blocks - 1, static_cast<int>(dst * scale));
      grid[bi][bj] += bytes;
    }
  }
  return grid;
}

double PhaseLoad::peak() const {
  double p = 0;
  for (const double v : avg_bytes_per_rank) p = std::max(p, v);
  return p;
}

PhaseLoad phase_load(const Trace& trace) {
  PhaseLoad result;
  std::vector<std::size_t> cursor(trace.ranks(), 0);
  bool any_left = true;
  while (any_left) {
    any_left = false;
    Bytes phase_bytes = 0;
    for (int r = 0; r < trace.ranks(); ++r) {
      const auto& ops = trace.rank(r);
      std::size_t& c = cursor[r];
      while (c < ops.size()) {
        const TraceOp& op = ops[c++];
        if (is_send(op.kind)) phase_bytes += op.bytes;
        if (is_phase_end(op.kind)) break;
      }
      if (c < ops.size()) any_left = true;
    }
    result.avg_bytes_per_rank.push_back(static_cast<double>(phase_bytes) / trace.ranks());
    if (!any_left) break;
  }
  return result;
}

std::vector<Bytes> per_rank_send_bytes(const Trace& trace) {
  std::vector<Bytes> totals(trace.ranks(), 0);
  for (int r = 0; r < trace.ranks(); ++r)
    for (const TraceOp& op : trace.rank(r))
      if (is_send(op.kind)) totals[r] += op.bytes;
  return totals;
}

}  // namespace dfly
