// Failure-injection tests: routing and full experiments on degraded
// topologies (disabled global links).
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "replay/replay.hpp"
#include "routing/adaptive.hpp"
#include "routing/minimal.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

TEST(Faults, DisableRemovesLinkFromBothDirections) {
  DragonflyTopology topo(TopoParams::tiny());
  const auto before_fwd = topo.global_links(0, 1).size();
  const auto before_bwd = topo.global_links(1, 0).size();
  const GlobalLink victim = topo.global_links(0, 1)[2];
  topo.disable_global_link(0, 1, 2);
  EXPECT_EQ(topo.global_links(0, 1).size(), before_fwd - 1);
  EXPECT_EQ(topo.global_links(1, 0).size(), before_bwd - 1);
  EXPECT_EQ(topo.disabled_global_links(), 1);
  EXPECT_FALSE(topo.port_enabled(victim.src_router, victim.src_port));
  EXPECT_FALSE(topo.port_enabled(victim.dst_router, victim.dst_port));
  // Unrelated pair untouched.
  EXPECT_EQ(topo.global_links(0, 2).size(), before_fwd);
  // Remaining links of the pair are still enabled.
  for (const GlobalLink& link : topo.global_links(0, 1))
    EXPECT_TRUE(topo.port_enabled(link.src_router, link.src_port));
}

TEST(Faults, CannotDisconnectAGroupPair) {
  DragonflyTopology topo(TopoParams::tiny());
  while (topo.global_links(0, 1).size() > 1) topo.disable_global_link(0, 1, 0);
  EXPECT_THROW(topo.disable_global_link(0, 1, 0), std::invalid_argument);
  EXPECT_EQ(topo.global_links(0, 1).size(), 1u);
}

TEST(Faults, DisableRejectsBadArguments) {
  DragonflyTopology topo(TopoParams::tiny());
  EXPECT_THROW(topo.disable_global_link(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(topo.disable_global_link(0, 1, 1000), std::invalid_argument);
  EXPECT_THROW(topo.disable_global_link(0, 1, -1), std::invalid_argument);
}

TEST(Faults, RoutesAvoidDisabledLinks) {
  DragonflyTopology topo(TopoParams::tiny());
  Rng fault_rng(3);
  const int disabled = disable_random_global_links(topo, 0.5, fault_rng);
  EXPECT_GT(disabled, 0);

  MinimalRouting routing(topo);  // built after fault injection
  struct Idle : CongestionView {
    Bytes queued_bytes(RouterId, int) const override { return 0; }
  } idle;
  Rng rng(4);
  const int nodes = topo.params().total_nodes();
  for (int i = 0; i < 1000; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(nodes));
    auto dst = static_cast<NodeId>(rng.uniform(nodes - 1));
    if (dst >= src) ++dst;
    const Route route = routing.compute(src, dst, idle, rng);
    for (int h = 0; h < route.size(); ++h)
      EXPECT_TRUE(topo.port_enabled(route[h].router, route[h].port))
          << "route uses a failed link";
  }
}

TEST(Faults, DegradedFabricStillDeliversEverything) {
  DragonflyTopology topo(TopoParams::tiny());
  Rng fault_rng(5);
  disable_random_global_links(topo, 0.6, fault_rng);

  Engine engine;
  AdaptiveRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  const Trace trace = make_ring_trace(32, 128 * units::kKiB, 2);
  Rng rng(6);
  const Placement placement =
      make_placement(PlacementKind::RandomNode, topo.params(), 32, rng);
  ReplayEngine replay(engine, network, trace, placement);
  replay.start();
  engine.set_event_limit(200'000'000);
  engine.run();
  EXPECT_FALSE(engine.hit_event_limit());
  EXPECT_TRUE(replay.finished());
}

// Helper kept outside the lambda so both runs use the identical trace.
Trace make_permutation_trace_helper() {
  Rng rng(9);
  return make_permutation_trace(40, 512 * units::kKiB, rng);
}

TEST(Faults, FewerLinksMeansMoreCongestionNotMoreHops) {
  // Disabling half of the global links leaves minimal hop counts intact
  // (some link always remains per pair) but concentrates traffic: the same
  // workload must take at least as long on the degraded fabric.
  auto run_ring = [](double fail_fraction) {
    DragonflyTopology topo(TopoParams::tiny());
    if (fail_fraction > 0) {
      Rng fault_rng(7);
      disable_random_global_links(topo, fail_fraction, fault_rng);
    }
    Engine engine;
    MinimalRouting routing(topo);
    Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
    const Trace trace = make_permutation_trace_helper();
    Rng rng(8);
    const Placement placement =
        make_placement(PlacementKind::RandomNode, topo.params(), trace.ranks(), rng);
    ReplayEngine replay(engine, network, trace, placement);
    replay.start();
    engine.run();
    EXPECT_TRUE(replay.finished());
    return engine.now();
  };
  EXPECT_LE(run_ring(0.0), run_ring(0.6));
}

TEST(Faults, FractionValidation) {
  DragonflyTopology topo(TopoParams::tiny());
  Rng rng(10);
  EXPECT_THROW(disable_random_global_links(topo, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(disable_random_global_links(topo, -0.1, rng), std::invalid_argument);
  EXPECT_EQ(disable_random_global_links(topo, 0.0, rng), 0);
}

}  // namespace
}  // namespace dfly
