// dfly_lint unit tests: lexer behavior, each determinism rule (R1-R6) with
// positive and negative fixtures, annotation parsing and its failure modes,
// module allowlist boundaries, include-graph propagation, and the lint.json
// schema. Fixtures are in-memory sources so each case documents exactly the
// code shape it exercises.
#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "lint/lexer.hpp"
#include "lint/linter.hpp"

namespace dfly::lint {
namespace {

LintResult lint_one(const std::string& rel, const std::string& content) {
  return lint_sources({{rel, content}});
}

int count_rule(const LintResult& r, const std::string& rule) {
  return static_cast<int>(
      std::count_if(r.violations.begin(), r.violations.end(),
                    [&](const Violation& v) { return v.rule == rule; }));
}

// ---------------------------------------------------------------------------
// Lexer

TEST(LintLexer, CommentsAndStringsAreNotIdentifiers) {
  const auto toks = tokenize(
      "int x; // steady_clock in a comment\n"
      "const char* s = \"system_clock\";\n"
      "/* rand() in a block comment */\n");
  for (const Token& t : toks) {
    if (t.kind == TokKind::Identifier) {
      EXPECT_NE(t.text, "steady_clock");
      EXPECT_NE(t.text, "system_clock");
      EXPECT_NE(t.text, "rand");
    }
  }
}

TEST(LintLexer, RawStringsAreSingleTokens) {
  const auto toks = tokenize("auto s = R\"(rand() \" system_clock)\";\nint after;");
  int strings = 0;
  for (const Token& t : toks)
    if (t.kind == TokKind::String) ++strings;
  EXPECT_EQ(strings, 1);
  // The identifier after the raw string still lexes with a correct line.
  const auto it = std::find_if(toks.begin(), toks.end(),
                               [](const Token& t) { return t.text == "after"; });
  ASSERT_NE(it, toks.end());
  EXPECT_EQ(it->line, 2);
}

TEST(LintLexer, LineNumbersSurviveBlockComments) {
  const auto toks = tokenize("/* line one\nline two */\nint x;");
  const auto it =
      std::find_if(toks.begin(), toks.end(), [](const Token& t) { return t.text == "x"; });
  ASSERT_NE(it, toks.end());
  EXPECT_EQ(it->line, 3);
}

TEST(LintLexer, PreprocessorLinesAreOneToken) {
  const auto toks = tokenize("#include \"sim/engine.hpp\"\nint x;");
  ASSERT_FALSE(toks.empty());
  EXPECT_EQ(toks[0].kind, TokKind::Pp);
  const auto incs = quoted_includes(toks);
  ASSERT_EQ(incs.size(), 1u);
  EXPECT_EQ(incs[0], "sim/engine.hpp");
}

TEST(LintLexer, DigitSeparatorsAreOneNumber) {
  const auto toks = tokenize("auto n = 100'000'000;");
  const auto it = std::find_if(toks.begin(), toks.end(),
                               [](const Token& t) { return t.kind == TokKind::Number; });
  ASSERT_NE(it, toks.end());
  EXPECT_EQ(it->text, "100'000'000");
}

// ---------------------------------------------------------------------------
// R1 wall-clock

TEST(LintWallClock, FlagsClockReadInSimModule) {
  const auto r = lint_one("sim/engine.cpp", "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(count_rule(r, "wall-clock"), 1);
}

TEST(LintWallClock, AllowsClockReadInProfAndFarm) {
  EXPECT_TRUE(lint_one("prof/profiler.cpp", "auto t = std::chrono::steady_clock::now();\n").clean());
  EXPECT_TRUE(lint_one("farm/supervisor.cpp", "gettimeofday(&tv, nullptr);\n").clean());
}

TEST(LintWallClock, FlagsTimeCallButNotLongerIdentifiers) {
  EXPECT_EQ(count_rule(lint_one("net/network.cpp", "auto t = time(nullptr);\n"), "wall-clock"), 1);
  // transfer_time( is a different identifier; hop.time is a member access.
  EXPECT_TRUE(lint_one("net/network.cpp",
                       "auto t = units::transfer_time(b, bw);\nauto u = hop.time;\n")
                  .clean());
  EXPECT_TRUE(lint_one("net/network.cpp", "auto v = msg.time();\n").clean());
}

TEST(LintWallClock, IgnoresCommentsAndStrings) {
  EXPECT_TRUE(lint_one("sim/engine.cpp",
                       "// steady_clock would be wrong here\n"
                       "const char* why = \"no system_clock\";\n")
                  .clean());
}

// ---------------------------------------------------------------------------
// R2 raw-rng

TEST(LintRawRng, FlagsCRandAndStdEngines) {
  EXPECT_EQ(count_rule(lint_one("place/placement.cpp", "int r = rand() % 6;\n"), "raw-rng"), 1);
  EXPECT_EQ(count_rule(lint_one("workload/synthetic.cpp", "std::mt19937 gen(42);\n"), "raw-rng"),
            1);
  EXPECT_EQ(count_rule(lint_one("util/rng.cpp", "std::random_device rd;\n"), "raw-rng"), 1);
}

TEST(LintRawRng, AllowsSeededRngStreams) {
  EXPECT_TRUE(lint_one("routing/adaptive.cpp", "Rng rng = Rng::stream(seed, 3);\n").clean());
}

// ---------------------------------------------------------------------------
// R3 unordered-iter (artifact-feeding scope + include graph)

constexpr const char* kIterOverMember =
    "#include \"sim/table.hpp\"\n"
    "void f(Table& t) { for (const auto& [k, v] : t.index) use(k, v); }\n";
constexpr const char* kUnorderedHeader =
    "#include <unordered_map>\n"
    "struct Table { std::unordered_map<int, int> index; };\n";

TEST(LintUnorderedIter, FlagsRangeForInArtifactModule) {
  const auto r = lint_sources({{"sim/table.hpp", kUnorderedHeader},
                               {"sim/user.cpp", kIterOverMember}});
  EXPECT_EQ(count_rule(r, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, IgnoresModulesOutsideArtifactClosure) {
  // Same code in workload/, with nothing in an artifact module including it.
  const auto r = lint_sources(
      {{"workload/table.hpp", kUnorderedHeader},
       {"workload/user.cpp",
        "#include \"workload/table.hpp\"\n"
        "void f(Table& t) { for (const auto& [k, v] : t.index) use(k, v); }\n"}});
  EXPECT_TRUE(r.clean());
}

TEST(LintUnorderedIter, IncludeGraphPullsHeadersIntoScope) {
  // workload/table.hpp is not in an artifact directory, but net/ includes it,
  // so its implementation file feeds artifacts and is checked.
  const auto r = lint_sources(
      {{"workload/table.hpp", kUnorderedHeader},
       {"workload/table.cpp",
        "#include \"workload/table.hpp\"\n"
        "int g(Table& t) { int s = 0; for (const auto& [k, v] : t.index) s += v; return s; }\n"},
       {"net/network.cpp", "#include \"workload/table.hpp\"\nvoid net_use(Table&);\n"}});
  EXPECT_EQ(count_rule(r, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, NestedContainerFlagsElementAccessOnly) {
  const std::string decl =
      "#include <unordered_map>\n"
      "#include <vector>\n"
      "struct Rows { std::vector<std::unordered_map<int, long>> rows_; };\n";
  // Iterating the outer vector is ordered and fine.
  EXPECT_TRUE(lint_sources({{"metrics/rows.hpp", decl},
                            {"metrics/a.cpp",
                             "#include \"metrics/rows.hpp\"\n"
                             "int f(Rows& r) { int n = 0; for (const auto& row : r.rows_) "
                             "n += row.size(); return n; }\n"}})
                  .clean());
  // Iterating one element reaches the unordered payload.
  const auto r = lint_sources({{"metrics/rows.hpp", decl},
                               {"metrics/b.cpp",
                                "#include \"metrics/rows.hpp\"\n"
                                "int f(Rows& r) { int n = 0; for (const auto& [k, v] : "
                                "r.rows_[0]) n += v; return n; }\n"}});
  EXPECT_EQ(count_rule(r, "unordered-iter"), 1);
}

TEST(LintUnorderedIter, FindAndEndAreNotIteration) {
  const auto r = lint_sources(
      {{"obs/t.hpp", "#include <unordered_map>\nstruct S { std::unordered_map<int,int> m; };\n"},
       {"obs/t.cpp",
        "#include \"obs/t.hpp\"\n"
        "bool has(S& s, int k) { return s.m.find(k) != s.m.end(); }\n"}});
  EXPECT_TRUE(r.clean());
}

TEST(LintUnorderedIter, ExplicitBeginIsIteration) {
  const auto r = lint_sources(
      {{"obs/t.hpp", "#include <unordered_map>\nstruct S { std::unordered_map<int,int> m; };\n"},
       {"obs/t.cpp",
        "#include \"obs/t.hpp\"\n"
        "auto first(S& s) { return *s.m.begin(); }\n"}});
  EXPECT_EQ(count_rule(r, "unordered-iter"), 1);
}

// ---------------------------------------------------------------------------
// R4 pointer-order

TEST(LintPointerOrder, FlagsPointerKeys) {
  EXPECT_EQ(count_rule(lint_one("routing/t.hpp", "std::map<Router*, int> by_ptr;\n"),
                       "pointer-order"),
            1);
  EXPECT_EQ(count_rule(lint_one("sim/t.hpp", "std::unordered_set<Event*> live;\n"),
                       "pointer-order"),
            1);
  EXPECT_EQ(count_rule(lint_one("sim/t.hpp", "using H = std::hash<Node*>;\n"), "pointer-order"),
            1);
}

TEST(LintPointerOrder, AllowsValueKeysPointerValuesAndCustomComparators) {
  EXPECT_TRUE(lint_one("routing/t.hpp", "std::map<int, Router*> by_id;\n").clean());
  EXPECT_TRUE(lint_one("sim/t.hpp", "std::map<Router*, int, ByStableId> ordered;\n").clean());
  EXPECT_TRUE(lint_one("sim/t.hpp", "std::set<std::pair<int, long>> keys;\n").clean());
}

TEST(LintPointerOrder, UnqualifiedMapComparisonDoesNotFire) {
  EXPECT_TRUE(lint_one("sim/t.cpp", "int map = 1; if (map < 3) map = 2;\n").clean());
}

// ---------------------------------------------------------------------------
// R5 raw-bytes

TEST(LintRawBytes, ConfinedToSnapshotIoAndJson) {
  EXPECT_EQ(count_rule(lint_one("net/wire.cpp",
                                "void f(char* d, const void* s) { memcpy(d, s, 8); }\n"),
                       "raw-bytes"),
            1);
  EXPECT_EQ(
      count_rule(lint_one("sim/engine.cpp", "auto* p = reinterpret_cast<char*>(&x);\n"),
                 "raw-bytes"),
      1);
  EXPECT_TRUE(lint_one("ckpt/snapshot_io.cpp", "auto* p = reinterpret_cast<char*>(&x);\n").clean());
  EXPECT_TRUE(lint_one("obs/json.cpp", "memcpy(buf, src, n);\n").clean());
}

// ---------------------------------------------------------------------------
// R6 pod-assert

TEST(LintPodAssert, CkptStructNeedsAssert) {
  EXPECT_EQ(count_rule(lint_one("ckpt/frame.hpp", "struct Frame { int a; long b; };\n"),
                       "pod-assert"),
            1);
}

TEST(LintPodAssert, TrivialityOrSizeAssertSatisfies) {
  EXPECT_TRUE(lint_one("ckpt/frame.hpp",
                       "struct Frame { int a; long b; };\n"
                       "static_assert(std::is_trivially_copyable_v<Frame>);\n")
                  .clean());
  EXPECT_TRUE(lint_one("ckpt/frame.hpp",
                       "struct Frame { int a; long b; };\n"
                       "static_assert(sizeof(Frame) == 16, \"layout pinned\");\n")
                  .clean());
}

TEST(LintPodAssert, ForwardDeclarationsAndOtherModulesExempt) {
  EXPECT_TRUE(lint_one("ckpt/fwd.hpp", "struct Frame;\n").clean());
  EXPECT_TRUE(lint_one("net/frame.hpp", "struct Frame { int a; };\n").clean());
}

// ---------------------------------------------------------------------------
// Annotations

TEST(LintAnnotations, SameLineSuppressesAndRecordsExemption) {
  const auto r = lint_one(
      "sim/engine.cpp",
      "auto t = time(nullptr); // dfly-lint: allow(wall-clock) reason=test fixture clock\n");
  EXPECT_TRUE(r.clean());
  ASSERT_EQ(r.exemptions.size(), 1u);
  EXPECT_EQ(r.exemptions[0].rule, "wall-clock");
  EXPECT_EQ(r.exemptions[0].reason, "test fixture clock");
}

TEST(LintAnnotations, PrecedingLineSuppresses) {
  const auto r = lint_one("sim/engine.cpp",
                          "// dfly-lint: allow(wall-clock) reason=measured outside sim state\n"
                          "auto t = time(nullptr);\n");
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.exemptions.size(), 1u);
}

TEST(LintAnnotations, RuleAliasR1Works) {
  const auto r = lint_one("sim/engine.cpp",
                          "auto t = time(nullptr); // dfly-lint: allow(R1) reason=alias check\n");
  EXPECT_TRUE(r.clean());
  ASSERT_EQ(r.exemptions.size(), 1u);
  EXPECT_EQ(r.exemptions[0].rule, "wall-clock");
}

TEST(LintAnnotations, MissingReasonIsViolation) {
  const auto r =
      lint_one("sim/engine.cpp", "auto t = time(nullptr); // dfly-lint: allow(wall-clock)\n");
  EXPECT_EQ(count_rule(r, "bad-annotation"), 1);
  EXPECT_EQ(count_rule(r, "wall-clock"), 1);  // a broken annotation suppresses nothing
}

TEST(LintAnnotations, UnknownRuleIsViolation) {
  const auto r = lint_one("sim/engine.cpp", "// dfly-lint: allow(no-such-rule) reason=typo\n");
  EXPECT_EQ(count_rule(r, "bad-annotation"), 1);
}

TEST(LintAnnotations, StaleAllowIsViolation) {
  const auto r = lint_one("sim/engine.cpp",
                          "// dfly-lint: allow(wall-clock) reason=nothing here needs it\n"
                          "int x = 1;\n");
  EXPECT_EQ(count_rule(r, "stale-allow"), 1);
}

TEST(LintAnnotations, WrongRuleDoesNotSuppress) {
  const auto r = lint_one(
      "sim/engine.cpp",
      "auto t = time(nullptr); // dfly-lint: allow(raw-rng) reason=wrong rule name\n");
  EXPECT_EQ(count_rule(r, "wall-clock"), 1);
  EXPECT_EQ(count_rule(r, "stale-allow"), 1);
}

TEST(LintAnnotations, ProseMentionDoesNotParse) {
  // A comment that merely talks about "dfly-lint: allow(...)" mid-sentence
  // (like this suite's own documentation) must not register an annotation.
  const auto r = lint_one("sim/engine.cpp",
                          "// suppress via `// dfly-lint: allow(wall-clock) reason=...` syntax\n"
                          "int x = 1;\n");
  EXPECT_TRUE(r.clean());
}

// ---------------------------------------------------------------------------
// lint.json schema

TEST(LintJson, SchemaFieldsAndCounts) {
  const auto r = lint_one("sim/engine.cpp",
                          "auto t = std::chrono::steady_clock::now();\n"
                          "int r = rand() % 2; // dfly-lint: allow(raw-rng) reason=fixture\n");
  std::ostringstream os;
  write_lint_json(r, "src", os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"root\": \"src\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"violation_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"exemption_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"wall-clock\""), std::string::npos);
  EXPECT_NE(json.find("\"raw-rng\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"fixture\""), std::string::npos);
  // Balanced document: last char of the payload is the root object's brace.
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(json[json.size() - 2], '}');
}

TEST(LintJson, StableBytesAcrossRuns) {
  const std::vector<MemSource> sources = {
      {"sim/a.cpp", "auto t = time(nullptr);\nint r = rand();\n"},
      {"net/b.cpp", "auto* p = reinterpret_cast<char*>(&t);\n"}};
  std::ostringstream a, b;
  write_lint_json(lint_sources(sources), "src", a);
  write_lint_json(lint_sources(sources), "src", b);
  EXPECT_EQ(a.str(), b.str());
}

// ---------------------------------------------------------------------------
// Whole-tree invariant: the shipped source stays lint-clean, and every
// exemption carries a reason (run_rules enforces reasons at parse time, so
// here it suffices that violations are zero).

TEST(LintTree, CanonicalRuleNames) {
  EXPECT_EQ(canonical_rule("R3"), "unordered-iter");
  EXPECT_EQ(canonical_rule("unordered-iter"), "unordered-iter");
  EXPECT_EQ(canonical_rule("bogus"), "");
}

}  // namespace
}  // namespace dfly::lint
