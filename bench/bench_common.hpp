// Shared helpers for the figure-reproduction benches: the three paper
// workloads at their paper rank counts (1000/1000/1728), with one knob — the
// message-volume scale — threaded through every generator so the whole suite
// trades runtime against fidelity uniformly (env DFLY_SCALE).
//
// Iteration counts are fixed here (CR/FB one sweep, AMG three V-cycles) and
// recorded in EXPERIMENTS.md next to the results.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <utility>

#include "core/experiment.hpp"
#include "core/formatters.hpp"
#include "core/run_matrix.hpp"
#include "metrics/report.hpp"
#include "obs/json.hpp"
#include "workload/workload.hpp"

namespace dfly::bench {

inline Workload cr_workload(double scale) {
  CrParams p;
  p.iterations = 1;
  p.scale = scale;
  return make_crystal_router(p);
}

inline Workload fb_workload(double scale) {
  FbParams p;
  p.iterations = 1;
  p.scale = scale;
  return make_fill_boundary(p);
}

inline Workload amg_workload(double scale) {
  AmgParams p;  // 3 V-cycles — the paper's three surges
  p.scale = scale;
  return make_amg(p);
}

/// Machine-readable bench results, mirroring BENCH_engine.json: one document
/// per bench run with a header (bench name, scale, seed) and one flat row per
/// (workload, config) data point, so CI and plotting scripts never have to
/// scrape the Markdown tables.
class BenchJson {
 public:
  BenchJson(std::string bench, double scale, std::uint64_t seed)
      : bench_(std::move(bench)), scale_(scale), seed_(seed) {}

  /// Appends one row of named numeric values (config may be empty).
  void add_row(std::string workload, std::string config,
               std::vector<std::pair<std::string, double>> values) {
    rows_.push_back(Row{std::move(workload), std::move(config), std::move(values)});
  }

  /// Appends the standard per-config summary of one matrix entry.
  void add_metrics_row(const std::string& workload, const NamedMetrics& named) {
    const RunMetrics& m = named.metrics;
    add_row(workload, named.config,
            {{"median_comm_ms", m.median_comm_ms()},
             {"max_comm_ms", m.max_comm_ms()},
             {"makespan_ms", m.makespan_ms},
             {"events", static_cast<double>(m.events)},
             {"bytes_delivered", static_cast<double>(m.bytes_delivered)}});
  }

  /// Writes the document to `path`; returns false (with a message on stderr)
  /// on I/O failure.
  bool write(const std::string& path) const {
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    obs::JsonWriter w(f, 2);
    w.begin_object();
    w.field("bench", bench_);
    w.field("scale", scale_);
    w.field("seed", seed_);
    w.key("rows").begin_array();
    for (const Row& row : rows_) {
      w.begin_object();
      w.field("workload", row.workload);
      if (!row.config.empty()) w.field("config", row.config);
      for (const auto& [name, value] : row.values) w.field(name, value);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    f << '\n';
    if (!f) return false;
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Row {
    std::string workload;
    std::string config;
    std::vector<std::pair<std::string, double>> values;
  };
  std::string bench_;
  double scale_;
  std::uint64_t seed_;
  std::vector<Row> rows_;
};

/// Runs the Table I matrix for one workload and prints the Fig. 3-style box
/// table plus a run summary; returns the per-config metrics for further
/// tables. When `json` is non-null every config's summary is appended to it.
inline std::vector<NamedMetrics> run_and_report_matrix(const Workload& workload,
                                                       const ExperimentOptions& options,
                                                       int threads, BenchJson* json = nullptr) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<ExperimentConfig> configs = table1_configs();
  const std::vector<ExperimentResult> results = run_matrix(workload, configs, options, threads);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();

  std::vector<NamedMetrics> named;
  named.reserve(results.size());
  for (const ExperimentResult& r : results) named.push_back({r.config, r.metrics});
  if (json)
    for (const NamedMetrics& n : named) json->add_metrics_row(workload.name, n);

  comm_time_box_table(workload.name + ": per-rank communication time (ms)", named)
      .print_markdown(std::cout);
  summary_table(workload.name + ": run summary", named).print_markdown(std::cout);

  // Call out the winner, the comparison the paper's findings quote.
  std::size_t best = 0;
  for (std::size_t i = 1; i < named.size(); ++i)
    if (named[i].metrics.median_comm_ms() < named[best].metrics.median_comm_ms()) best = i;
  std::printf("%s best config by median communication time: %s (wall %.1fs)\n\n",
              workload.name.c_str(), named[best].config.c_str(), wall);
  return named;
}

inline int bench_threads() { return env_threads(0); }

}  // namespace dfly::bench
