// Edge-case tests for the network model: message sizes around chunk
// boundaries, ejection contention, congestion-view consistency, NIC
// saturation accounting, and inter-group delivery.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "routing/adaptive.hpp"
#include "routing/minimal.hpp"
#include "sim/engine.hpp"

namespace dfly {
namespace {

struct Recorder : MessageSink {
  std::vector<SimTime> delivered;
  void on_message_delivered(MsgId, std::uint64_t, SimTime now) override {
    delivered.push_back(now);
  }
};

struct Fixture {
  Fixture()
      : topo(TopoParams::tiny()),
        routing(topo),
        network(engine, topo, NetworkParams::theta(), routing, Rng(1), &rec) {}

  Engine engine;
  DragonflyTopology topo;
  MinimalRouting routing;
  Recorder rec;
  Network network;
};

class MessageSizeProperty : public ::testing::TestWithParam<Bytes> {};

TEST_P(MessageSizeProperty, DeliversExactByteCount) {
  Fixture f;
  const Bytes size = GetParam();
  f.network.send(0, f.topo.params().total_nodes() - 1, size, 0, false, true);
  f.engine.run();
  EXPECT_EQ(f.network.bytes_delivered(), size);
  EXPECT_EQ(f.rec.delivered.size(), 1u);
  EXPECT_EQ(f.network.messages_in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MessageSizeProperty,
                         ::testing::Values(1, 2047, 2048, 2049, 4096, 100000, 1 << 20));

TEST(NetworkEdge, LargerMessagesNeverArriveEarlier) {
  // Strictly monotone delivery time in message size on a fixed path.
  SimTime prev = 0;
  for (const Bytes size : {1000, 10000, 100000, 1000000}) {
    Fixture f;
    f.network.send(0, 40, size, 0, false, true);
    f.engine.run();
    ASSERT_EQ(f.rec.delivered.size(), 1u);
    EXPECT_GT(f.rec.delivered[0], prev);
    prev = f.rec.delivered[0];
  }
}

TEST(NetworkEdge, InterGroupDeliveryUsesGlobalChannel) {
  Fixture f;
  // Node 0 (group 0) -> last node (group 2).
  f.network.send(0, f.topo.params().total_nodes() - 1, 64 * units::kKiB, 0, false, true);
  f.engine.run();
  Bytes global_traffic = 0;
  for (RouterId r = 0; r < f.topo.params().total_routers(); ++r) {
    const Router& router = f.network.router(r);
    for (int p = f.topo.first_global_port(); p < f.topo.ports_per_router(); ++p)
      global_traffic += router.port(p).traffic;
  }
  EXPECT_EQ(global_traffic, 64 * units::kKiB) << "exactly one global crossing (minimal)";
}

TEST(NetworkEdge, EjectionContentionSerializes) {
  // Two senders to one destination node: total delivery time is bounded below
  // by serializing both messages through the one terminal channel.
  Fixture f;
  const Bytes size = 256 * units::kKiB;
  f.network.send(10, 0, size, 0, false, true);
  f.network.send(20, 0, size, 1, false, true);
  f.engine.run();
  ASSERT_EQ(f.rec.delivered.size(), 2u);
  const NetworkParams params = NetworkParams::theta();
  const SimTime two_msgs_ser = units::transfer_time(2 * size, params.bandwidth(PortKind::Terminal));
  EXPECT_GE(std::max(f.rec.delivered[0], f.rec.delivered[1]), two_msgs_ser);
}

TEST(NetworkEdge, CongestionViewSeesQueuedBytes) {
  // Flood one router's output; during the run the congestion view must have
  // reported nonzero queued bytes (checked via adaptive's behavior is
  // indirect, so probe directly mid-simulation).
  Fixture f;
  const NodeId dst = 0;
  for (NodeId src = 4; src < 24; src += 2) f.network.send(src, dst, 512 * units::kKiB);
  f.engine.run_until(3000);  // mid-flight
  Bytes max_queued = 0;
  for (RouterId r = 0; r < f.topo.params().total_routers(); ++r)
    for (int p = 0; p < f.network.router(r).num_ports(); ++p)
      max_queued = std::max(max_queued, f.network.queued_bytes(r, p));
  EXPECT_GT(max_queued, 0);
  f.engine.run();
  for (RouterId r = 0; r < f.topo.params().total_routers(); ++r)
    for (int p = 0; p < f.network.router(r).num_ports(); ++p)
      EXPECT_EQ(f.network.queued_bytes(r, p), 0);
}

TEST(NetworkEdge, NicSaturationAccruesUnderBackpressure) {
  // Saturate a single node's ejection so upstream NICs run out of terminal
  // credits; at least one NIC must record blocked (saturated) time.
  Fixture f;
  for (NodeId src = 2; src < 30; ++src) f.network.send(src, 1, 256 * units::kKiB);
  f.engine.run();
  f.network.finalize(f.engine.now());
  SimTime nic_sat = 0;
  for (NodeId n = 0; n < f.topo.params().total_nodes(); ++n)
    nic_sat += f.network.nic(n).saturated_time;
  EXPECT_GT(nic_sat, 0);
}

TEST(NetworkEdge, HopStatsAccumulateAcrossMessages) {
  Fixture f;
  f.network.send(0, 1, 100);   // same router: 1 router
  f.network.send(0, 47, 5000);  // 5000 B = 3 chunks, cross-group (node 47 is in group 2)
  f.engine.run();
  const Network::HopStats& hs = f.network.hop_stats(0);
  EXPECT_EQ(hs.chunks, 4u);
  EXPECT_GT(hs.average(), 1.0);
}

TEST(NetworkEdge, AdaptiveNetworkDrainsUnderHotspot) {
  // Same hotspot scenario with adaptive routing: must also fully drain.
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  AdaptiveRouting routing(topo);
  Recorder rec;
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(9), &rec);
  for (NodeId src = 1; src < topo.params().total_nodes(); ++src)
    network.send(src, 0, 32 * units::kKiB, 0, false, true);
  engine.set_event_limit(100'000'000);
  engine.run();
  EXPECT_FALSE(engine.hit_event_limit());
  EXPECT_EQ(rec.delivered.size(), static_cast<std::size_t>(topo.params().total_nodes() - 1));
}

TEST(NetworkEdge, TinyBuffersStillDeadlockFree) {
  // Minimum legal buffers: exactly one chunk per VC. Heavy random traffic
  // must still drain (the VC escalation argument does not depend on depth).
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  NetworkParams params = NetworkParams::theta();
  params.terminal_vc_buffer = params.chunk_bytes;
  params.local_vc_buffer = params.chunk_bytes;
  params.global_vc_buffer = params.chunk_bytes;
  AdaptiveRouting routing(topo);
  Network network(engine, topo, params, routing, Rng(11));
  Rng traffic(13);
  const int nodes = topo.params().total_nodes();
  for (int i = 0; i < 500; ++i) {
    const auto src = static_cast<NodeId>(traffic.uniform(nodes));
    auto dst = static_cast<NodeId>(traffic.uniform(nodes - 1));
    if (dst >= src) ++dst;
    network.send(src, dst, 1 + static_cast<Bytes>(traffic.uniform(64 * units::kKiB)));
  }
  engine.set_event_limit(200'000'000);
  engine.run();
  EXPECT_FALSE(engine.hit_event_limit()) << "possible deadlock with single-chunk buffers";
  EXPECT_EQ(network.messages_in_flight(), 0u);
}

TEST(NetworkEdge, SaturationIntervalsCloseOnFinalize) {
  // A run stopped mid-congestion must close open blocked intervals.
  Fixture f;
  for (NodeId src = 2; src < 40; ++src) f.network.send(src, 0, units::kMiB);
  f.engine.run_until(5000);
  f.network.finalize(f.engine.now());
  // No port may report blocked_since still open after finalize.
  for (RouterId r = 0; r < f.topo.params().total_routers(); ++r) {
    const Router& router = f.network.router(r);
    for (int p = 0; p < router.num_ports(); ++p)
      EXPECT_LT(router.port(p).blocked_since, 0) << "open interval survived finalize";
  }
}

}  // namespace
}  // namespace dfly
