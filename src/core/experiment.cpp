#include "core/experiment.hpp"

#include <filesystem>
#include <stdexcept>

#include "ckpt/checkpoint.hpp"
#include "prof/heartbeat.hpp"
#include "prof/report.hpp"
#include "replay/replay.hpp"
#include "sim/engine.hpp"

namespace dfly {

std::vector<ExperimentConfig> table1_configs() {
  std::vector<ExperimentConfig> configs;
  for (const RoutingKind routing : {RoutingKind::Minimal, RoutingKind::Adaptive})
    for (const PlacementKind placement : kAllPlacements)
      configs.push_back(ExperimentConfig{placement, routing});
  return configs;
}

std::vector<ExperimentConfig> extreme_configs() {
  return {ExperimentConfig{PlacementKind::Contiguous, RoutingKind::Minimal},
          ExperimentConfig{PlacementKind::RandomNode, RoutingKind::Minimal},
          ExperimentConfig{PlacementKind::Contiguous, RoutingKind::Adaptive},
          ExperimentConfig{PlacementKind::RandomNode, RoutingKind::Adaptive}};
}

ExperimentResult run_experiment(const Workload& workload, const ExperimentConfig& config,
                                const ExperimentOptions& options,
                                const DragonflyTopology* shared_topo) {
  // Optionally reuse a caller-built topology (without runtime faults it is
  // immutable and thread-safe to share across concurrent experiments). A
  // fault schedule mutates link state mid-run, so such experiments always
  // work on their own copy and never touch the shared instance.
  // Checkpoint restore mutates link state too, so checkpoint-enabled runs
  // also get their own copy.
  std::optional<DragonflyTopology> local_topo;
  if (shared_topo == nullptr) {
    local_topo.emplace(options.topo);
  } else if (!options.faults.empty() || options.checkpoint.active() ||
             options.checkpoint.resume) {
    local_topo.emplace(*shared_topo);
  }
  const DragonflyTopology& topo = local_topo ? *local_topo : *shared_topo;

  // The RNG tree: placement draws depend on (seed, placement kind) only, so a
  // given policy selects the same nodes under minimal and adaptive routing —
  // the comparison the paper makes. Network/background streams get their own
  // forks.
  Rng master(options.seed);
  Rng placement_rng(options.seed ^ (static_cast<std::uint64_t>(config.placement) + 0x1000));
  const Placement placement =
      make_placement(config.placement, options.topo, workload.trace.ranks(), placement_rng);

  Trace trace = workload.trace;  // scaling mutates; keep the workload pristine
  if (options.msg_scale != 1.0) trace.scale_message_sizes(options.msg_scale);

  // The profiler is constructed before the engine (and so destroyed after
  // it): engine worker threads and the network hold raw pointers into it for
  // the whole run. Lane count mirrors the engine's sharding decision below.
  std::optional<prof::Profiler> profiler;
  if (options.prof.enabled) {
    const int prof_lanes = options.threads > 0 ? options.topo.groups + 1 : 1;
    profiler.emplace(options.prof, prof_lanes, options.threads);
  }
  prof::Profiler* const prof_ptr = profiler ? &*profiler : nullptr;

  Engine engine;
  if (options.max_events) engine.set_event_limit(options.max_events);
  const std::unique_ptr<RoutingAlgorithm> routing = make_routing(config.routing, topo);
  if (options.threads > 0) {
    // One shard (lane) per dragonfly group; the global-link latency is the
    // conservative lookahead — no chunk, credit, or notification crosses
    // groups in less simulated time than that.
    ShardingOptions sharding;
    sharding.shards = options.topo.groups;
    sharding.lookahead = options.net.global_latency;
    sharding.threads = options.threads;
    engine.enable_sharding(sharding);
  }
  engine.set_profiler(prof_ptr);
  Network network(engine, topo, options.net, *routing, master.fork(1));
  if (options.threads > 0) network.enable_sharding(options.net.global_latency);
  ReplayEngine replay(engine, network, trace, placement, options.replay);

  // Declared after the network/routing it hooks into, so the destructor
  // unhooks while both are still alive.
  std::optional<RunTelemetry> telemetry;
  if (options.telemetry.enabled) telemetry.emplace(engine, network, *routing, options.telemetry);

  // Resuming restores every subsystem's state AND the engine's event queue,
  // so none of the start() calls below may run — their events (and those
  // events' successors) are already in the restored queue.
  const bool resuming = options.checkpoint.resume && !options.checkpoint.path.empty() &&
                        std::filesystem::exists(options.checkpoint.path);

  std::optional<BackgroundDriver> background;
  if (options.background) {
    std::vector<NodeId> rest = remaining_nodes(options.topo, placement);
    // A full-machine app leaves the background job no nodes to run on; the
    // job then simply does not exist (the interference harness probes exactly
    // this boundary). The driver itself rejects < 2 nodes.
    if (rest.size() >= 2) {
      background.emplace(engine, network, std::move(rest), *options.background, master.fork(2));
      if (!resuming) background->start();
    }
  }
  if (background || telemetry) {
    // Both the background driver and the counter probe reschedule themselves;
    // stop them when the replayed application finishes so they never keep a
    // finished simulation alive.
    replay.set_completion_callback([&background, &telemetry](SimTime) {
      if (background) background->request_stop();
      if (telemetry) telemetry->request_stop();
    });
  }

  std::optional<FaultInjector> injector;
  if (!options.faults.empty()) {
    injector.emplace(engine, *local_topo, network, routing.get(), options.faults);
    if (!resuming) injector->start();
    if (telemetry) register_fault_counters(telemetry->registry(), *injector);
  }

  HealthMonitor monitor(engine, network, options.health);
  monitor.set_work_remaining([&replay] { return !replay.finished(); });
  if (options.health.enabled && !resuming) monitor.start();
  if (telemetry) {
    register_health_counters(telemetry->registry(), monitor);
    if (!resuming) telemetry->start();
  }

  ckpt::SimSnapshotParts parts;
  parts.config = config.name();
  parts.seed = options.seed;
  parts.engine = &engine;
  parts.topo = local_topo ? &*local_topo : nullptr;
  parts.network = &network;
  parts.replay = &replay;
  parts.background = background ? &*background : nullptr;
  parts.injector = injector ? &*injector : nullptr;
  parts.monitor = &monitor;
  parts.telemetry = telemetry ? &*telemetry : nullptr;

  if (resuming) {
    ckpt::load_checkpoint(options.checkpoint.path, parts);
    // Link state may differ from the as-built topology now; rebuild whatever
    // the routing algorithm precomputed.
    routing->on_topology_changed();
  } else {
    replay.start();
  }

  // Farm liveness: periodic status.json heartbeats, refreshed at checkpoint
  // slice boundaries (run_slice returns are provably non-perturbing, so a
  // heartbeat can never change the simulation). Disabled outside the farm.
  prof::HeartbeatWriter heartbeat(options.prof.enabled ? options.prof.status_path : "",
                                  options.prof.heartbeat_period_ms);
  std::int64_t slices = 0;
  const auto beat = [&](const char* state, bool force) {
    if (!heartbeat.enabled()) return;
    prof::HeartbeatInfo info;
    info.config = config.name();
    info.state = state;
    info.sim_ns = engine.now();
    info.events = static_cast<std::int64_t>(engine.events_processed());
    info.slices = slices;
    heartbeat.beat(info, force);
  };
  const auto throughput_sample = [&] {
    if (prof_ptr != nullptr)
      prof_ptr->throughput().sample(engine.now(), engine.events_processed(),
                                    network.chunks_forwarded());
  };

  if (prof_ptr != nullptr) {
    prof_ptr->begin_run();
    prof_ptr->throughput().start(engine.now(), engine.events_processed(),
                                 network.chunks_forwarded());
  }
  beat("starting", true);

  bool stopped_at_checkpoint = false;
  if (options.checkpoint.active()) {
    // Slice the run at checkpoint boundaries with run_slice. Dispatch order
    // is strictly (time, seq) either way, so slicing — unlike a self-
    // scheduling checkpoint event, which would consume sequence numbers —
    // cannot perturb the simulation; and unlike run_until, run_slice leaves
    // now() at the last event when the queue drains, so the final clock (and
    // every time-normalized output) matches an unsliced run exactly.
    const CheckpointOptions& ck = options.checkpoint;
    SimTime next = engine.now() + ck.interval;
    for (;;) {
      engine.run_slice(next);
      throughput_sample();
      if (engine.pending() == 0 || engine.stop_requested() || engine.hit_event_limit()) break;
      {
        prof::ProfScope prof_scope(prof_ptr, prof::Subsystem::CheckpointIo,
                                   engine.global_lane());
        ckpt::save_checkpoint(ck.path, parts);
      }
      heartbeat.note_checkpoint();
      ++slices;
      beat("running", false);
      // Graceful shutdown (SIGINT/SIGTERM via farm/signals) parks the run at
      // the snapshot just written, exactly like the stop_after test hook.
      const bool stop_signaled =
          ck.stop_flag && ck.stop_flag->load(std::memory_order_relaxed);
      if (stop_signaled || (ck.stop_after > 0 && engine.now() >= ck.stop_after)) {
        stopped_at_checkpoint = true;
        break;
      }
      next += ck.interval;
    }
  } else {
    engine.run();
    throughput_sample();
  }
  if (prof_ptr != nullptr) prof_ptr->end_run();
  network.finalize(engine.now());

  if (!replay.finished() && !engine.hit_event_limit() && !monitor.stalled() &&
      !stopped_at_checkpoint) {
    // Hard deadlock (or a conservation failure stopped the engine): report
    // the structured simulation state, not just the rank count.
    HealthReport report = (monitor.deadlock_detected() || monitor.conservation_failed())
                              ? monitor.report()
                              : monitor.capture(engine.now());
    if (!monitor.conservation_failed()) report.deadlock = true;
    throw std::runtime_error("experiment deadlocked (" + config.name() + "): engine drained with " +
                             std::to_string(replay.finished_ranks()) + "/" +
                             std::to_string(trace.ranks()) + " ranks finished\n" +
                             report.to_string());
  }

  ExperimentResult result;
  result.config = config.name();
  result.metrics = collect_metrics(network, replay, placement, engine);
  result.background_bytes = background ? background->bytes_issued() : 0;
  result.hit_event_limit = engine.hit_event_limit();
  result.bytes_dropped = network.bytes_dropped();
  result.bytes_retransmitted = network.bytes_retransmitted();
  result.faults_fired = injector ? injector->fired() : 0;
  result.stalled = monitor.stalled();
  result.conservation_ok = network.conservation_ok();
  result.stopped_at_checkpoint = stopped_at_checkpoint;
  if (monitor.stalled() || monitor.conservation_failed())
    result.health_report = monitor.report().to_string();
  else if (engine.hit_event_limit())
    result.health_report = monitor.capture(engine.now()).to_string();
  if (telemetry) {
    telemetry->finish(engine.now());
    result.trace_chunks_seen = telemetry->tracer().chunks_seen();
    result.trace_chunks_sampled = telemetry->tracer().chunks_sampled();
    prof::ProfScope prof_scope(prof_ptr, prof::Subsystem::TelemetryExport, engine.global_lane());
    result.telemetry_dir = export_run_artifacts(*telemetry, result, network, engine.now());
  }
  if (profiler && !options.telemetry.out_dir.empty()) {
    // prof.json lands next to metrics.json; being wall-clock data it is the
    // one artifact allowed to differ between otherwise identical runs.
    const std::string path =
        (std::filesystem::path(options.telemetry.out_dir) / result.config / "prof.json").string();
    prof::write_prof_json(path, *profiler, result.config);
  }
  beat(stopped_at_checkpoint ? "interrupted" : "done", true);
  return result;
}

}  // namespace dfly
