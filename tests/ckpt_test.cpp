// Checkpoint/restore tests: snapshot container robustness (truncation, bit
// flips, wrong kind, hostile counts), bit-exact resume for minimal and
// adaptive routing under fault injection, identity validation, and the
// run_matrix sweep resume protocol.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/snapshot_io.hpp"
#include "core/experiment.hpp"
#include "core/run_matrix.hpp"
#include "fault/fault.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) { return ::testing::TempDir() + "/" + name; }

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& data) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(data.data(), static_cast<std::streamsize>(data.size()));
}

// ---------------------------------------------------------------------------
// snapshot_io: the framed container
// ---------------------------------------------------------------------------

TEST(SnapshotIo, WriterReaderRoundTripAllFieldTypes) {
  ckpt::Writer w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-123456);
  w.i64(-9'000'000'000'000LL);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.size(42);
  w.str("hello snapshot");
  w.str("");

  const std::string path = temp_path("roundtrip.ckpt");
  ckpt::write_snapshot_file(path, ckpt::SnapshotKind::SimState, w.buffer());
  const std::string payload = ckpt::read_snapshot_file(path, ckpt::SnapshotKind::SimState);
  ckpt::Reader r(payload);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -123456);
  EXPECT_EQ(r.i64(), -9'000'000'000'000LL);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.u64(), 42u);  // written via size()
  EXPECT_EQ(r.str(), "hello snapshot");
  EXPECT_EQ(r.str(), "");
  EXPECT_NO_THROW(r.expect_end());
  std::remove(path.c_str());
}

TEST(SnapshotIo, WrongKindIsRejected) {
  const std::string path = temp_path("kind.ckpt");
  ckpt::Writer w;
  w.u32(7);
  ckpt::write_snapshot_file(path, ckpt::SnapshotKind::SimState, w.buffer());
  EXPECT_THROW(ckpt::read_snapshot_file(path, ckpt::SnapshotKind::SweepResult),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(SnapshotIo, DirectoryPathIsRejectedCleanly) {
  // Sweep checkpoint paths are directories; feeding one to the file reader
  // must throw our error, not an ios_base::failure from the stream buffer.
  const std::string dir = temp_path("snapdir");
  fs::create_directories(dir);
  EXPECT_THROW(ckpt::read_snapshot_file(dir, ckpt::SnapshotKind::SimState), std::runtime_error);
  fs::remove_all(dir);
}

TEST(SnapshotIo, WriteFailureThrowsInsteadOfLeavingATornFile) {
  // The durable write path (tmp + fsync + rename + dir fsync) must fail
  // loudly at save time. Point the snapshot inside a "directory" that is
  // actually a regular file: the tmp open fails, and no stray file appears.
  const std::string not_a_dir = temp_path("not-a-dir");
  spit(not_a_dir, "plain file");
  const std::string path = not_a_dir + "/x.ckpt";
  ckpt::Writer w;
  w.u32(7);
  EXPECT_THROW(ckpt::write_snapshot_file(path, ckpt::SnapshotKind::SimState, w.buffer()),
               std::runtime_error);
  EXPECT_FALSE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  std::remove(not_a_dir.c_str());
}

TEST(SnapshotIo, RenameFailureCleansUpTheTmpFile) {
  // Write succeeds but the rename target is occupied by a non-empty
  // directory: the tmp file must be removed, not leaked.
  const std::string target = temp_path("occupied");
  fs::create_directories(target + "/inner");
  ckpt::Writer w;
  w.u32(7);
  EXPECT_THROW(ckpt::write_snapshot_file(target, ckpt::SnapshotKind::SimState, w.buffer()),
               std::runtime_error);
  EXPECT_FALSE(fs::exists(target + ".tmp")) << "failed write leaked its tmp file";
  fs::remove_all(target);
}

TEST(SnapshotIo, MissingFileThrows) {
  EXPECT_THROW(ckpt::read_snapshot_file("/nonexistent/dir/x.ckpt", ckpt::SnapshotKind::SimState),
               std::runtime_error);
}

TEST(SnapshotIo, EveryTruncationLengthThrows) {
  const std::string path = temp_path("trunc.ckpt");
  ckpt::Writer w;
  for (int i = 0; i < 16; ++i) w.u64(static_cast<std::uint64_t>(i));
  ckpt::write_snapshot_file(path, ckpt::SnapshotKind::SimState, w.buffer());
  const std::string whole = slurp(path);
  ASSERT_GT(whole.size(), 21u);
  for (std::size_t len = 0; len < whole.size(); ++len) {
    spit(path, whole.substr(0, len));
    EXPECT_THROW(ckpt::read_snapshot_file(path, ckpt::SnapshotKind::SimState), std::runtime_error)
        << "truncated to " << len << " of " << whole.size() << " bytes";
  }
  std::remove(path.c_str());
}

TEST(SnapshotIo, EverySingleByteCorruptionThrows) {
  // Any flipped byte must land in a checked field: magic/version/sentinel/
  // kind/size are validated individually, payload and CRC by the checksum.
  const std::string path = temp_path("flip.ckpt");
  ckpt::Writer w;
  for (int i = 0; i < 16; ++i) w.u64(static_cast<std::uint64_t>(i));
  ckpt::write_snapshot_file(path, ckpt::SnapshotKind::SimState, w.buffer());
  const std::string whole = slurp(path);
  for (std::size_t pos = 0; pos < whole.size(); ++pos) {
    std::string bad = whole;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    spit(path, bad);
    EXPECT_THROW(ckpt::read_snapshot_file(path, ckpt::SnapshotKind::SimState), std::runtime_error)
        << "flipped byte " << pos << " of " << whole.size();
  }
  std::remove(path.c_str());
}

TEST(SnapshotIo, CountRejectsLengthsThePayloadCannotHold) {
  ckpt::Writer w;
  w.u64(1u << 30);  // claims a billion 8-byte elements in a 16-byte payload
  w.u64(0);
  ckpt::Reader r(w.buffer());
  EXPECT_THROW(r.count(8), std::runtime_error);
}

TEST(SnapshotIo, ExpectEndCatchesTrailingBytes) {
  ckpt::Writer w;
  w.u32(1);
  w.u32(2);
  ckpt::Reader r(w.buffer());
  r.u32();
  EXPECT_THROW(r.expect_end(), std::runtime_error);
}

TEST(SnapshotIo, ReadPastEndThrowsInsteadOfOverrunning) {
  ckpt::Writer w;
  w.u32(7);
  ckpt::Reader r(w.buffer());
  r.u32();
  EXPECT_THROW(r.u8(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Bit-exact resume
// ---------------------------------------------------------------------------

Workload ckpt_workload() { return {"ring", make_ring_trace(24, 32 * units::kKiB, 2)}; }

ExperimentOptions ckpt_options(const std::string& telemetry_dir) {
  ExperimentOptions o;
  o.topo = TopoParams::tiny();
  o.seed = 11;
  o.max_events = 100'000'000;
  o.telemetry.enabled = true;
  o.telemetry.sample_rate = 0.05;
  o.telemetry.snapshot_interval = 20 * units::kMicrosecond;
  o.telemetry.out_dir = temp_path(telemetry_dir);
  // Mid-run faults: down a quarter of the global links, later restore one, so
  // the snapshot carries degraded link state and the pending recovery event.
  const DragonflyTopology topo(o.topo);
  Rng rng(5);
  o.faults = random_global_fault_schedule(topo, 0.25, 20 * units::kMicrosecond, rng);
  if (!o.faults.empty()) {
    const FaultEvent& f = o.faults.front();
    o.faults.push_back(FaultEvent::global_up(60 * units::kMicrosecond, f.a, f.b, f.index));
  }
  return o;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.metrics.comm_time_ms, b.metrics.comm_time_ms);
  EXPECT_EQ(a.metrics.avg_hops, b.metrics.avg_hops);
  EXPECT_EQ(a.metrics.local_traffic_mb, b.metrics.local_traffic_mb);
  EXPECT_EQ(a.metrics.global_traffic_mb, b.metrics.global_traffic_mb);
  EXPECT_EQ(a.metrics.local_saturation_ms, b.metrics.local_saturation_ms);
  EXPECT_EQ(a.metrics.global_saturation_ms, b.metrics.global_saturation_ms);
  EXPECT_EQ(a.metrics.makespan_ms, b.metrics.makespan_ms);
  EXPECT_EQ(a.metrics.events, b.metrics.events);
  EXPECT_EQ(a.metrics.chunks, b.metrics.chunks);
  EXPECT_EQ(a.metrics.bytes_delivered, b.metrics.bytes_delivered);
  EXPECT_EQ(a.metrics.scheduler.peak_pending, b.metrics.scheduler.peak_pending);
  EXPECT_EQ(a.metrics.scheduler.resizes, b.metrics.scheduler.resizes);
  EXPECT_EQ(a.metrics.scheduler.overflow_promotions, b.metrics.scheduler.overflow_promotions);
  EXPECT_EQ(a.bytes_dropped, b.bytes_dropped);
  EXPECT_EQ(a.bytes_retransmitted, b.bytes_retransmitted);
  EXPECT_EQ(a.faults_fired, b.faults_fired);
  EXPECT_EQ(a.stalled, b.stalled);
  EXPECT_EQ(a.conservation_ok, b.conservation_ok);
  EXPECT_EQ(a.trace_chunks_seen, b.trace_chunks_seen);
  EXPECT_EQ(a.trace_chunks_sampled, b.trace_chunks_sampled);
}

void run_resume_cycle(RoutingKind routing, PlacementKind placement, const std::string& tag) {
  const ExperimentConfig config{placement, routing};
  const Workload workload = ckpt_workload();

  const ExperimentOptions golden_opts = ckpt_options(tag + "-golden");
  const ExperimentResult golden = run_experiment(workload, config, golden_opts);
  const SimTime makespan = static_cast<SimTime>(golden.metrics.makespan_ms * 1e6);
  ASSERT_GT(makespan, 0);

  // Interrupted run: snapshot every T/6, die at the first snapshot past T/2.
  const std::string snapshot = temp_path(tag + ".ckpt");
  ExperimentOptions interrupted_opts = ckpt_options(tag + "-resumed");
  interrupted_opts.checkpoint.interval = makespan / 6 > 0 ? makespan / 6 : 1;
  interrupted_opts.checkpoint.path = snapshot;
  interrupted_opts.checkpoint.stop_after = makespan / 2;
  const ExperimentResult partial = run_experiment(workload, config, interrupted_opts);
  ASSERT_TRUE(partial.stopped_at_checkpoint);
  EXPECT_LT(partial.metrics.events, golden.metrics.events);
  ASSERT_TRUE(fs::exists(snapshot));

  const ckpt::CheckpointInfo info = ckpt::inspect_checkpoint(snapshot);
  EXPECT_EQ(info.config, config.name());
  EXPECT_EQ(info.seed, golden_opts.seed);
  EXPECT_GE(info.time, interrupted_opts.checkpoint.stop_after);
  EXPECT_GT(info.pending_events, 0u);
  EXPECT_TRUE(info.has_injector);
  EXPECT_TRUE(info.has_monitor);
  EXPECT_TRUE(info.has_telemetry);

  ExperimentOptions resumed_opts = interrupted_opts;
  resumed_opts.checkpoint.resume = true;
  resumed_opts.checkpoint.stop_after = 0;
  const ExperimentResult resumed = run_experiment(workload, config, resumed_opts);
  EXPECT_FALSE(resumed.stopped_at_checkpoint);
  expect_identical(golden, resumed);

  // The exported telemetry must match byte-for-byte too — the counter
  // timeline and the sampled chunk trace, not just the end-of-run metrics.
  for (const char* artifact : {"counters.jsonl", "trace.json", "heatmap.csv"}) {
    const std::string g = slurp(golden_opts.telemetry.out_dir + "/" + config.name() + "/" + artifact);
    const std::string r =
        slurp(resumed_opts.telemetry.out_dir + "/" + config.name() + "/" + artifact);
    ASSERT_FALSE(g.empty());
    EXPECT_EQ(g, r) << artifact << " differs after resume";
  }
  std::remove(snapshot.c_str());
}

TEST(CheckpointResume, MinimalRoutingWithFaultsIsBitExact) {
  run_resume_cycle(RoutingKind::Minimal, PlacementKind::Contiguous, "ckpt-min");
}

TEST(CheckpointResume, AdaptiveRoutingWithFaultsIsBitExact) {
  run_resume_cycle(RoutingKind::Adaptive, PlacementKind::RandomNode, "ckpt-adp");
}

// ---------------------------------------------------------------------------
// Identity validation and corrupt snapshots through the full resume path
// ---------------------------------------------------------------------------

/// Runs an interrupted experiment and leaves its snapshot at the returned
/// path. Cached across tests via static because golden runs dominate runtime.
std::string make_interrupted_snapshot(const ExperimentConfig& config, ExperimentOptions options,
                                      const std::string& tag) {
  const std::string snapshot = temp_path(tag + ".ckpt");
  options.checkpoint.interval = 4 * units::kMicrosecond;
  options.checkpoint.path = snapshot;
  options.checkpoint.stop_after = 8 * units::kMicrosecond;
  const ExperimentResult partial = run_experiment(ckpt_workload(), config, options);
  EXPECT_TRUE(partial.stopped_at_checkpoint);
  return snapshot;
}

TEST(CheckpointResume, MismatchedIdentityIsRejected) {
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};
  const std::string snapshot =
      make_interrupted_snapshot(config, ckpt_options("ckpt-id"), "ckpt-id");

  ExperimentOptions resume = ckpt_options("ckpt-id");
  resume.checkpoint.interval = 4 * units::kMicrosecond;
  resume.checkpoint.path = snapshot;
  resume.checkpoint.resume = true;

  ExperimentOptions wrong_seed = resume;
  wrong_seed.seed = 999;
  EXPECT_THROW(run_experiment(ckpt_workload(), config, wrong_seed), std::runtime_error);

  const ExperimentConfig wrong_config{PlacementKind::RandomNode, RoutingKind::Minimal};
  EXPECT_THROW(run_experiment(ckpt_workload(), wrong_config, resume), std::runtime_error);

  ExperimentOptions wrong_faults = resume;
  wrong_faults.faults.push_back(
      FaultEvent::global_up(80 * units::kMicrosecond, wrong_faults.faults.front().a,
                            wrong_faults.faults.front().b, wrong_faults.faults.front().index));
  EXPECT_THROW(run_experiment(ckpt_workload(), config, wrong_faults), std::runtime_error);

  ExperimentOptions no_faults = resume;
  no_faults.faults.clear();  // subsystem lineup (presence mask) mismatch
  EXPECT_THROW(run_experiment(ckpt_workload(), config, no_faults), std::runtime_error);

  // The unmodified identity still resumes fine.
  EXPECT_NO_THROW(run_experiment(ckpt_workload(), config, resume));
  std::remove(snapshot.c_str());
}

TEST(CheckpointResume, CorruptSnapshotsThrowNeverCrash) {
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};
  const std::string snapshot =
      make_interrupted_snapshot(config, ckpt_options("ckpt-fuzz"), "ckpt-fuzz");
  const std::string whole = slurp(snapshot);
  ASSERT_GT(whole.size(), 64u);

  ExperimentOptions resume = ckpt_options("ckpt-fuzz");
  resume.checkpoint.interval = 4 * units::kMicrosecond;
  resume.checkpoint.path = snapshot;
  resume.checkpoint.resume = true;

  // Truncations, including cutting into the header and off-by-one at the end.
  for (const std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{12}, std::size_t{20},
                                std::size_t{21}, whole.size() / 3, whole.size() / 2,
                                whole.size() - 5, whole.size() - 1}) {
    spit(snapshot, whole.substr(0, len));
    EXPECT_THROW(run_experiment(ckpt_workload(), config, resume), std::runtime_error)
        << "truncated to " << len << " bytes";
  }

  // Single-byte corruptions sampled across the whole file (header, payload
  // and trailing CRC): the container CRC must catch every payload flip.
  for (std::size_t pos = 0; pos < whole.size(); pos += whole.size() / 64 + 1) {
    std::string bad = whole;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x01);
    spit(snapshot, bad);
    EXPECT_THROW(run_experiment(ckpt_workload(), config, resume), std::runtime_error)
        << "flipped byte " << pos;
  }
  std::remove(snapshot.c_str());
}

// ---------------------------------------------------------------------------
// Sweep resume protocol (run_matrix checkpoint directory)
// ---------------------------------------------------------------------------

TEST(CheckpointSweep, ResultMarkerRoundTrip) {
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  options.seed = 3;
  const ExperimentResult result = run_experiment(ckpt_workload(), config, options);

  const std::string path = temp_path("result.done");
  ckpt::save_result(path, result);
  const ExperimentResult back = ckpt::load_result(path);
  expect_identical(result, back);
  EXPECT_EQ(back.health_report, result.health_report);
  EXPECT_EQ(back.hit_event_limit, result.hit_event_limit);
  std::remove(path.c_str());
}

TEST(CheckpointSweep, InterruptedSweepResumesToIdenticalResults) {
  const Workload workload = ckpt_workload();
  const std::vector<ExperimentConfig> configs = {
      {PlacementKind::Contiguous, RoutingKind::Minimal},
      {PlacementKind::RandomNode, RoutingKind::Adaptive}};
  ExperimentOptions base;
  base.topo = TopoParams::tiny();
  base.seed = 17;
  const std::vector<ExperimentResult> golden = run_matrix(workload, configs, base, 1);

  const std::string dir = temp_path("sweep-ckpt");
  fs::remove_all(dir);

  // Interrupted sweep: every config halts at its first snapshot past 15 us.
  ExperimentOptions interrupted = base;
  interrupted.checkpoint.interval = 3 * units::kMicrosecond;
  interrupted.checkpoint.path = dir;
  interrupted.checkpoint.stop_after = 9 * units::kMicrosecond;
  const std::vector<ExperimentResult> partial = run_matrix(workload, configs, interrupted, 1);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_TRUE(partial[i].stopped_at_checkpoint) << configs[i].name();
    EXPECT_TRUE(fs::exists(dir + "/" + configs[i].name() + ".ckpt"));
    EXPECT_FALSE(fs::exists(dir + "/" + configs[i].name() + ".done"));
  }

  // Resumed sweep: picks up from the per-config snapshots, finishes, and
  // leaves .done markers (the snapshots are superseded and removed).
  ExperimentOptions resumed = interrupted;
  resumed.checkpoint.resume = true;
  resumed.checkpoint.stop_after = 0;
  const std::vector<ExperimentResult> finished = run_matrix(workload, configs, resumed, 1);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    expect_identical(golden[i], finished[i]);
    EXPECT_FALSE(fs::exists(dir + "/" + configs[i].name() + ".ckpt"));
    EXPECT_TRUE(fs::exists(dir + "/" + configs[i].name() + ".done"));
  }

  // A third sweep loads the .done markers without re-running anything.
  const std::vector<ExperimentResult> again = run_matrix(workload, configs, resumed, 2);
  for (std::size_t i = 0; i < configs.size(); ++i) expect_identical(golden[i], again[i]);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dfly
