// Background-traffic driver (paper §IV-C).
//
// A synthetic job occupies every node not assigned to the target application
// and issues messages open-loop:
//   UniformRandom — each tick, every background node sends one message to a
//                   uniformly random other background node (balanced external
//                   traffic; the paper uses small intervals, 0.002-1 ms).
//   Bursty        — each tick, every background node sends large messages to
//                   `burst_fanout` distinct background peers (an all-to-all
//                   burst; the paper uses long intervals, 0.1-60 ms; the
//                   fanout caps the O(n^2) message count at simulation scale,
//                   see DESIGN.md).
// The driver stops scheduling new ticks after request_stop() — the
// interference harness calls it when the target application completes — and
// in-flight traffic then drains naturally.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace dfly {

struct BackgroundSpec {
  enum class Pattern { UniformRandom, Bursty };
  Pattern pattern = Pattern::UniformRandom;
  Bytes message_bytes = 16 * units::kKiB;
  SimTime interval = 100 * units::kMicrosecond;
  int burst_fanout = 16;  ///< Bursty only: destinations per node per tick
  SimTime start = 0;

  /// Load injected per tick across all background nodes — the paper's
  /// Table II "peak background traffic load".
  Bytes peak_load(std::size_t nodes) const {
    const std::int64_t per_node =
        pattern == Pattern::Bursty ? message_bytes * burst_fanout : message_bytes;
    return per_node * static_cast<Bytes>(nodes);
  }
};

const char* to_string(BackgroundSpec::Pattern pattern);

class BackgroundDriver : public EventHandler {
 public:
  BackgroundDriver(Engine& engine, Network& network, std::vector<NodeId> nodes,
                   const BackgroundSpec& spec, Rng rng);

  /// Schedules the first tick.
  void start();
  /// No further ticks are scheduled after this call.
  void request_stop() { stopped_ = true; }

  Bytes bytes_issued() const { return bytes_issued_; }
  std::uint64_t messages_issued() const { return messages_issued_; }
  std::uint64_t ticks() const { return ticks_; }

  // EventHandler
  void handle_event(SimTime now, const EventPayload& payload) override;

  /// Checkpoint support (src/ckpt/): RNG stream, stop flag and issue
  /// counters. The node list is recomputed from topology + placement at
  /// construction, so it is not serialized.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  void tick(SimTime now);

  Engine& engine_;
  Network& network_;
  std::vector<NodeId> nodes_;
  BackgroundSpec spec_;
  Rng rng_;
  bool stopped_ = false;
  Bytes bytes_issued_ = 0;
  std::uint64_t messages_issued_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace dfly
