#include "routing/minimal.hpp"

#include "topo/dragonfly.hpp"

namespace dfly {

MinimalRouting::MinimalRouting(const DragonflyTopology& topo) : table_(topo) {}

Route MinimalRouting::compute(NodeId src, NodeId dst, const CongestionView& /*congestion*/,
                              Rng& rng) const {
  const Coordinates& c = table_.topology().coords();
  Route route;
  const RouterId r_src = c.router_of_node(src);
  const RouterId r_dst = c.router_of_node(dst);
  table_.append_minimal(route, r_src, r_dst, rng);
  route.push(r_dst, c.slot_of_node(dst));  // ejection via the terminal port
  return route;
}

}  // namespace dfly
