// Reproduces Fig. 9: CR under (a) uniform-random and (b) bursty background
// traffic, plus (c) local channel traffic with the bursty background.
//
// Paper shape: uniform background barely moves CR; bursty background
// prolongs communication substantially for every configuration except
// cont-min / cab-min, whose local channels stay comparatively quiet.
#include "bench_interference.hpp"

int main() {
  using namespace dfly;
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  print_bench_header("Fig. 9", "CR under uniform-random and bursty background traffic", scale,
                     seed);

  ExperimentOptions options;
  options.seed = seed;
  const Workload cr = bench::cr_workload(scale);

  // (a) uniform: 2456 nodes x 15.6 KB = 38.3 MB per tick (Table II: 38.38 MB).
  bench::run_interference_figure(
      cr, options, bench::uniform_background(15600, 20 * units::kMicrosecond, scale),
      /*traffic_tables=*/false);

  // (b)+(c) bursty: 2456 nodes x 8 peers x 100 KB = 1.96 GB per burst.
  bench::run_interference_figure(
      cr, options, bench::bursty_background(100 * units::kKB, 8, 100 * units::kMicrosecond, scale),
      /*traffic_tables=*/true);
  return 0;
}
