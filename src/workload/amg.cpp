#include <array>

#include "workload/exchange.hpp"
#include "workload/workload.hpp"

namespace dfly {
namespace {

int grid_rank(int x, int y, int z, const AmgParams& p) {
  return (z * p.ny + y) * p.nx + x;
}

}  // namespace

// Algebraic multigrid (BoomerAMG-derived): regional communication on a 12^3
// rank grid, up to six neighbors per rank (fewer at grid boundaries — the
// domain is not periodic). Each V-cycle visits `levels` levels; at level l
// only ranks on the 2^l-strided subgrid are active, exchanging halves of the
// previous level's message size ("regional communication with decreasing
// message size"). The vcycles separated by barriers are the three
// short-duration surges of Fig. 2(f).
Workload make_amg(const AmgParams& params) {
  Trace trace(params.ranks());
  TagAllocator tags;

  for (int cycle = 0; cycle < params.vcycles; ++cycle) {
    for (int level = 0; level < params.levels; ++level) {
      const int stride = 1 << level;
      if (stride >= params.nx && stride >= params.ny && stride >= params.nz) break;
      const Bytes bytes = scaled(params.peak_message_bytes >> level, params.scale);
      if (bytes <= 0) continue;
      for (int z = 0; z < params.nz; z += stride) {
        for (int y = 0; y < params.ny; y += stride) {
          for (int x = 0; x < params.nx; x += stride) {
            const int r = grid_rank(x, y, z, params);
            const std::array<int, 3> coord = {x, y, z};
            const std::array<int, 3> dims = {params.nx, params.ny, params.nz};
            for (int dim = 0; dim < 3; ++dim) {
              // Non-periodic: only the +stride neighbor, if it exists.
              if (coord[dim] + stride >= dims[dim]) continue;
              std::array<int, 3> nb = coord;
              nb[dim] = coord[dim] + stride;
              const int peer = grid_rank(nb[0], nb[1], nb[2], params);
              emit_exchange(trace, tags, r, peer, bytes);
            }
          }
        }
      }
      emit_phase_end(trace);
    }
    // Surges are separated by a global synchronization point (none after the
    // last cycle — a trailing barrier would equalize every rank's finish
    // time and collapse the Fig. 3 distribution).
    if (cycle + 1 < params.vcycles)
      for (int r = 0; r < params.ranks(); ++r) trace.rank(r).push_back(TraceOp::barrier());
  }
  return Workload{"AMG", std::move(trace)};
}

}  // namespace dfly
