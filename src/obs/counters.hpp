// Named-counter registry and periodic snapshot probe.
//
// Subsystems (network, NICs, routing, fault injection, health) register their
// counters under hierarchical names ("net.bytes_delivered",
// "routing.minimal_chosen", ...) instead of every consumer hard-coding which
// ad-hoc field lives where. Two registration forms:
//
//  * counter(name)       — the registry owns a monotonic uint64 cell and hands
//                          back a stable reference for the subsystem to bump.
//  * add_source(name, …) — the value lives in the subsystem; the registry
//                          polls the callback at snapshot time. Kind::Counter
//                          sources are monotonic, Kind::Gauge instantaneous.
//
// CounterProbe reuses the engine-event pattern of metrics/TimelineSampler: a
// self-rescheduling probe that captures one CounterSnapshot per interval until
// asked to stop. Snapshots serialize to JSONL through obs/telemetry.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "util/units.hpp"

namespace dfly {

enum class MetricKind : std::uint8_t { Counter, Gauge };

const char* to_string(MetricKind kind);

/// One reading of every registered metric, sorted by name (deterministic
/// artifact output regardless of registration order).
struct CounterSnapshot {
  SimTime time = 0;
  std::vector<std::pair<std::string, std::int64_t>> values;

  /// Value of `name`; throws std::out_of_range if absent.
  std::int64_t value_of(const std::string& name) const;
  bool contains(const std::string& name) const;
};

class CounterRegistry {
 public:
  /// Find-or-create an owned monotonic counter. The returned reference stays
  /// valid for the registry's lifetime (cells live in a deque).
  std::uint64_t& counter(const std::string& name);

  /// Registers a polled metric whose value lives in the owning subsystem.
  /// Throws std::invalid_argument if `name` is already registered.
  void add_source(const std::string& name, MetricKind kind, std::function<std::int64_t()> read);

  bool contains(const std::string& name) const { return entries_.count(name) > 0; }
  std::size_t size() const { return entries_.size(); }

  /// Reads every metric (owned cells and polled sources) at time `now`.
  CounterSnapshot snapshot(SimTime now) const;

 private:
  struct Entry {
    MetricKind kind = MetricKind::Counter;
    const std::uint64_t* owned = nullptr;     ///< set for counter() cells
    std::function<std::int64_t()> read;       ///< set for add_source entries
  };

  std::map<std::string, Entry> entries_;
  std::deque<std::uint64_t> cells_;
};

/// Serializes one snapshot as a single compact JSON object line ("time_ns"
/// first, then every metric by name) followed by a newline — the line format
/// of counters.jsonl, shared by the telemetry exporter and the sweep farm's
/// farm_stats.json so every counter artifact parses the same way.
void write_snapshot_jsonl(std::ostream& os, const CounterSnapshot& snap);

/// Periodic snapshot probe: samples `registry` every `interval` once started.
/// Stops rescheduling after request_stop() (pending probes would otherwise be
/// the only thing keeping a drained engine alive — callers stop it from a
/// completion callback, exactly like TimelineSampler).
class CounterProbe : public EventHandler {
 public:
  CounterProbe(Engine& engine, const CounterRegistry& registry, SimTime interval);

  /// Schedules the first sample (at the current time). Throws std::logic_error
  /// if the probe was already started.
  void start();
  void request_stop() { stopped_ = true; }

  const std::vector<CounterSnapshot>& snapshots() const { return snapshots_; }

  /// Takes one extra snapshot outside the periodic schedule (used for the
  /// final end-of-run reading).
  void sample_now(SimTime now) { snapshots_.push_back(registry_.snapshot(now)); }

  void handle_event(SimTime now, const EventPayload& payload) override;

  /// Checkpoint support (src/ckpt/): start/stop flags and the snapshot
  /// history so a resumed run's counters.jsonl matches the straight-through
  /// run byte for byte. The next periodic probe event is restored with the
  /// engine's queue.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  Engine& engine_;
  const CounterRegistry& registry_;
  SimTime interval_;
  bool started_ = false;
  bool stopped_ = false;
  std::vector<CounterSnapshot> snapshots_;
};

}  // namespace dfly
