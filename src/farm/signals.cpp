#include "farm/signals.hpp"

#include <csignal>

namespace dfly::farm {
namespace {

std::atomic<bool> g_shutdown{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "shutdown flag must be async-signal-safe");

extern "C" void shutdown_signal_handler(int) {
  g_shutdown.store(true, std::memory_order_relaxed);
}

}  // namespace

const std::atomic<bool>* shutdown_flag() { return &g_shutdown; }

bool shutdown_requested() { return g_shutdown.load(std::memory_order_relaxed); }

void request_shutdown() { g_shutdown.store(true, std::memory_order_relaxed); }

void reset_shutdown_flag() { g_shutdown.store(false, std::memory_order_relaxed); }

struct ScopedShutdownHandlers::Impl {
  struct sigaction old_int;
  struct sigaction old_term;
};

ScopedShutdownHandlers::ScopedShutdownHandlers() : impl_(new Impl{}) {
  struct sigaction sa {};
  sa.sa_handler = shutdown_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;  // interrupted syscalls resume; the flag is polled
  ::sigaction(SIGINT, &sa, &impl_->old_int);
  ::sigaction(SIGTERM, &sa, &impl_->old_term);
}

ScopedShutdownHandlers::~ScopedShutdownHandlers() {
  ::sigaction(SIGINT, &impl_->old_int, nullptr);
  ::sigaction(SIGTERM, &impl_->old_term, nullptr);
  delete impl_;
}

}  // namespace dfly::farm
