// Workload characterization (Fig. 2 of the paper): communication matrix and
// per-phase message load derived from a trace.
#pragma once

#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"

namespace dfly {

/// Sparse communication matrix: bytes sent from each rank to each peer.
class CommMatrix {
 public:
  explicit CommMatrix(const Trace& trace);

  int ranks() const { return static_cast<int>(rows_.size()); }
  Bytes bytes(int src, int dst) const;
  Bytes total_bytes() const { return total_; }
  std::uint64_t message_count() const { return messages_; }
  double average_message_bytes() const;
  /// Number of ordered (src,dst) pairs with nonzero traffic.
  std::size_t pairs_used() const;
  /// Fraction of total bytes exchanged between ranks with |src-dst| <= window
  /// — the "small neighborhoods" concentration visible in Fig. 2(a)-(c).
  double locality_fraction(int window) const;
  /// Aggregates the matrix into a blocks x blocks grid of byte totals, for
  /// coarse textual rendering of the Fig. 2 heat maps.
  std::vector<std::vector<Bytes>> block_aggregate(int blocks) const;

  const std::unordered_map<int, Bytes>& row(int src) const { return rows_[src]; }

 private:
  std::vector<std::unordered_map<int, Bytes>> rows_;
  Bytes total_ = 0;
  std::uint64_t messages_ = 0;
};

/// Per-phase load: the trace's ops are partitioned at WaitAll/Barrier
/// boundaries; entry [p] is the average bytes a rank sends in phase p (the
/// Fig. 2(d)-(f) "message load per rank over time" analogue, with phases as
/// the logical time axis — the paper strips wall-clock compute time too).
struct PhaseLoad {
  std::vector<double> avg_bytes_per_rank;
  double peak() const;
};
PhaseLoad phase_load(const Trace& trace);

/// Per-rank totals: bytes each rank sends over the whole trace.
std::vector<Bytes> per_rank_send_bytes(const Trace& trace);

}  // namespace dfly
