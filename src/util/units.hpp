// Units and fixed-point time for the simulator.
//
// All simulation time is kept in integer nanoseconds (SimTime) so that event
// ordering is exact and runs are bit-reproducible across platforms; floating
// point appears only at the reporting boundary.
#pragma once

#include <cstdint>

namespace dfly {

/// Simulation time in nanoseconds.
using SimTime = std::int64_t;

/// Data sizes in bytes.
using Bytes = std::int64_t;

namespace units {

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;
inline constexpr Bytes kKB = 1000;
inline constexpr Bytes kMB = 1000 * kKB;
inline constexpr Bytes kGB = 1000 * kMB;

/// Converts a bandwidth in GiB/s to bytes per nanosecond.
constexpr double gib_per_s(double gib) { return gib * static_cast<double>(kGiB) / static_cast<double>(kSecond); }

/// Time to serialize `bytes` at `bytes_per_ns`, rounded up to at least 1 ns
/// for any positive payload so that zero-duration transfers cannot occur.
constexpr SimTime transfer_time(Bytes bytes, double bytes_per_ns) {
  if (bytes <= 0) return 0;
  const double t = static_cast<double>(bytes) / bytes_per_ns;
  const auto ticks = static_cast<SimTime>(t);
  return ticks < 1 ? 1 : (static_cast<double>(ticks) < t ? ticks + 1 : ticks);
}

/// SimTime -> milliseconds as double (reporting only).
constexpr double to_ms(SimTime t) { return static_cast<double>(t) / static_cast<double>(kMillisecond); }

/// Bytes -> decimal megabytes as double (reporting only; the paper's traffic
/// axes are in MB).
constexpr double to_mb(Bytes b) { return static_cast<double>(b) / static_cast<double>(kMB); }

}  // namespace units
}  // namespace dfly
