// Wall-clock performance attribution for one simulation run (DESIGN.md §11).
//
// The profiler answers "where did the wall-clock go" without perturbing the
// simulation: every hook reads the monotonic clock and writes into
// profiler-owned accumulators only — no simulation state, no RNG draw, no
// event is ever touched, so a run with profiling on is byte-identical (in all
// existing artifacts) to the same run with profiling off. A differential test
// enforces exactly that.
//
// Three layers:
//  * Subsystem attribution — ProfScope (RAII) charges wall time to a fixed
//    subsystem enum at the instrumentation points: event dispatch (engine),
//    routing decisions and NIC retransmits (network), checkpoint I/O and
//    telemetry export (experiment harness). Scopes nest; attribution is
//    inclusive (a routing decision's time is inside its dispatch's time).
//  * Lane phases — in sharded runs every lane accumulates compute (event
//    dispatch on that lane), barrier-wait (batch span minus the lane's own
//    busy time) and cross-shard flush (outbox merge) separately, yielding the
//    lane-imbalance and lookahead-stall metrics the parallel engine needs.
//    Each LaneProf is written by exactly one thread per batch (the same
//    ownership discipline as Engine::Lane), so no locks are needed.
//  * Throughput — sim-vs-wall samples (events/s, chunks/s, sim-seconds per
//    wall-second) taken at run start/end and every checkpoint slice.
//
// Everything lands in prof.json next to metrics.json (src/prof/report.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "prof/wall_histogram.hpp"
#include "util/units.hpp"

namespace dfly::prof {

/// [prof] section of config files plus runtime-only wiring.
struct ProfOptions {
  bool enabled = false;
  /// Minimum wall-clock period between heartbeat rewrites (status.json).
  std::int64_t heartbeat_period_ms = 1000;
  /// Histogram resolution: each power-of-two octave splits into
  /// 2^hist_bucket_bits sub-buckets (WallHistogram).
  int hist_bucket_bits = 3;
  /// Runtime wiring only (never a config key): where run_experiment writes
  /// periodic status.json heartbeats. Set by the farm worker / sweep step to
  /// <sweep_dir>/<config>.status.json; empty disables heartbeats.
  std::string status_path;

  void validate() const;  ///< throws std::invalid_argument on bad values
};

/// Fixed wall-clock attribution targets. Keep in sync with to_string().
enum class Subsystem : int {
  EventDispatch = 0,  ///< handler->handle_event, all lanes
  Routing,            ///< RoutingAlgorithm::compute at injection
  NicRetransmit,      ///< kRetransmit handling (NIC re-queue + inject)
  CheckpointIo,       ///< ckpt::save_checkpoint in the slicing loop
  TelemetryExport,    ///< export_run_artifacts at end of run
  kCount
};

const char* to_string(Subsystem s);

/// Sim-vs-wall throughput: cumulative since start() and rolling over the last
/// window of samples. Samples are pushed at run start/end and at checkpoint
/// slice boundaries; wall timestamps can be injected for unit tests.
class ThroughputTracker {
 public:
  struct Rates {
    double events_per_sec = 0.0;
    double chunks_per_sec = 0.0;
    double sim_per_wall = 0.0;  ///< simulated seconds per wall second
  };

  void start(SimTime sim_ns, std::uint64_t events, std::uint64_t chunks);
  void sample(SimTime sim_ns, std::uint64_t events, std::uint64_t chunks);
  /// Test hook: like start()/sample() but with an explicit wall clock.
  void start_at(std::int64_t wall_ns, SimTime sim_ns, std::uint64_t events, std::uint64_t chunks);
  void sample_at(std::int64_t wall_ns, SimTime sim_ns, std::uint64_t events, std::uint64_t chunks);

  bool started() const { return started_; }
  std::uint64_t samples() const { return samples_; }
  std::int64_t wall_ns() const { return last_.wall_ns - first_.wall_ns; }
  Rates cumulative() const { return rates(first_, last_); }
  /// Rates over the trailing window (kWindow samples); equals cumulative()
  /// until enough samples accumulate.
  Rates rolling() const { return rates(window_origin_, last_); }

  static constexpr int kWindow = 8;

 private:
  struct Point {
    std::int64_t wall_ns = 0;
    SimTime sim_ns = 0;
    std::uint64_t events = 0;
    std::uint64_t chunks = 0;
  };

  static Rates rates(const Point& a, const Point& b);

  bool started_ = false;
  std::uint64_t samples_ = 0;
  Point first_, last_;
  Point ring_[kWindow] = {};     ///< previous samples, oldest overwritten
  Point window_origin_;          ///< oldest sample still inside the window
};

/// Per-lane wall-clock accumulators. Written by the one thread that owns the
/// lane during a batch (or the single thread of a serial run); read by the
/// coordinator only between batches and at report time — the engine's barrier
/// provides the happens-before edge. alignas keeps lanes off shared lines.
struct alignas(64) LaneProf {
  std::int64_t busy_ns = 0;          ///< compute: dispatching this lane's events
  std::int64_t barrier_wait_ns = 0;  ///< batch span minus own busy time
  std::int64_t flush_ns = 0;         ///< merging this lane's outbox at barriers
  std::uint64_t events = 0;          ///< dispatches timed into busy_ns
  std::uint64_t batches = 0;         ///< batches this lane participated in
};

class Profiler {
 public:
  /// `lanes` must match Engine::lanes() of the run (1 for a serial engine);
  /// `threads` is the configured worker count (0 = serial engine).
  Profiler(const ProfOptions& options, int lanes, int threads);
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Monotonic wall clock in ns (steady_clock).
  static std::int64_t now_ns();

  const ProfOptions& options() const { return options_; }
  int lanes() const { return static_cast<int>(lanes_.size()); }
  int threads() const { return threads_; }

  LaneProf& lane(int i) { return lanes_[static_cast<std::size_t>(i)]; }
  const LaneProf& lane(int i) const { return lanes_[static_cast<std::size_t>(i)]; }

  /// Charges `ns` of wall time to `s`. Only called from the coordinator
  /// thread (checkpoint I/O, telemetry export) or from inside a dispatch the
  /// engine already serializes per lane (routing, retransmit) — the per-lane
  /// shards below keep it race-free.
  void add(Subsystem s, int lane, std::int64_t ns);

  std::int64_t subsystem_ns(Subsystem s) const;
  std::uint64_t subsystem_calls(Subsystem s) const;

  /// One dispatch timed on `lane`: busy time plus a histogram sample.
  void record_dispatch(int lane, std::int64_t ns);
  /// One barrier: this lane waited `wait_ns` of the batch span.
  void record_barrier_wait(int lane, std::int64_t wait_ns);
  /// Cross-shard flush time (outbox merge / barrier quiesce) on `lane`.
  void add_flush(int lane, std::int64_t ns);

  /// Coordinator-side batch bracket: begin_batch snapshots each active lane's
  /// busy time, end_batch derives barrier-wait as batch span minus the lane's
  /// own busy delta (clamped at zero) and records it. Called by Engine around
  /// every parallel batch; never concurrent with worker dispatch.
  void begin_batch(const std::vector<int>& active_lanes);
  void end_batch(const std::vector<int>& active_lanes);

  /// Merged dispatch-latency histogram across lanes.
  WallHistogram dispatch_histogram() const;
  const WallHistogram& barrier_histogram() const { return barrier_hist_; }

  /// Whole-run wall span (begin_run/end_run bracket Engine::run).
  void begin_run();
  void end_run();
  std::int64_t run_wall_ns() const { return run_wall_ns_; }

  /// Busiest lane busy time over the mean lane busy time (1.0 = perfectly
  /// balanced); 0 when nothing ran.
  double lane_imbalance() const;
  /// Fraction of lane-seconds spent in barrier wait:
  /// sum(wait) / sum(busy + wait). The "lookahead stall" headline.
  double barrier_stall_fraction() const;

  ThroughputTracker& throughput() { return throughput_; }
  const ThroughputTracker& throughput() const { return throughput_; }

 private:
  struct alignas(64) SubsystemShard {
    std::int64_t ns[static_cast<int>(Subsystem::kCount)] = {};
    std::uint64_t calls[static_cast<int>(Subsystem::kCount)] = {};
  };

  ProfOptions options_;
  int threads_;
  std::vector<LaneProf> lanes_;
  std::vector<SubsystemShard> subsystems_;    ///< one shard per lane
  std::vector<WallHistogram> dispatch_hists_;  ///< one per lane, merged on read
  WallHistogram barrier_hist_;                ///< coordinator-only
  std::vector<std::int64_t> batch_busy_;      ///< begin_batch busy snapshots
  std::int64_t batch_t0_ = 0;
  std::int64_t run_begin_ns_ = 0;
  std::int64_t run_wall_ns_ = 0;
  ThroughputTracker throughput_;
};

/// RAII scope charging its lifetime to (subsystem, lane). A null profiler
/// makes construction and destruction a branch each — the disabled path costs
/// nothing but the two branches.
class ProfScope {
 public:
  ProfScope(Profiler* p, Subsystem s, int lane) : p_(p), s_(s), lane_(lane) {
    if (p_ != nullptr) t0_ = Profiler::now_ns();
  }
  ~ProfScope() {
    if (p_ != nullptr) p_->add(s_, lane_, Profiler::now_ns() - t0_);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* p_;
  Subsystem s_;
  int lane_;
  std::int64_t t0_ = 0;
};

}  // namespace dfly::prof
