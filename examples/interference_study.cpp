// Example: quantify how much a noisy neighbor perturbs your application, and
// whether an "isolated" configuration (contiguous placement + minimal
// routing) shields it — the paper's §IV-C result in ~40 lines of user code.
//
// Usage: interference_study [app_ranks] [bg_message_KiB] [bg_interval_us]
//   defaults: 512 ranks, 64 KiB, 10 us
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/interference.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 512;
  const Bytes bg_msg = (argc > 2 ? std::atoll(argv[2]) : 64) * units::kKiB;
  const SimTime bg_interval = (argc > 3 ? std::atoll(argv[3]) : 10) * units::kMicrosecond;

  // The "victim" application: a ring exchange, latency- and locality-bound.
  Workload app{"ring", make_ring_trace(ranks, 128 * units::kKiB, 3)};

  BackgroundSpec bg;
  bg.pattern = BackgroundSpec::Pattern::UniformRandom;
  bg.message_bytes = bg_msg;
  bg.interval = bg_interval;

  ExperimentOptions options;  // Theta system
  options.seed = 7;

  // Compare the paper's two poles: isolated (cont-min) vs balanced (rand-adp),
  // plus the middle grounds.
  const std::vector<ExperimentConfig> configs = {
      {PlacementKind::Contiguous, RoutingKind::Minimal},
      {PlacementKind::RandomCabinet, RoutingKind::Minimal},
      {PlacementKind::Contiguous, RoutingKind::Adaptive},
      {PlacementKind::RandomNode, RoutingKind::Adaptive},
  };

  std::printf("victim: %d-rank ring | background: %lld KiB to random peers every %lld us\n",
              ranks, static_cast<long long>(bg_msg / units::kKiB),
              static_cast<long long>(bg_interval / units::kMicrosecond));

  const InterferenceResult result = run_interference(app, configs, options, bg);
  result.degradation_table("Interference impact by configuration").print_markdown(std::cout);

  std::printf(
      "Reading: the paper's finding is that contiguous placement + minimal routing\n"
      "creates a relatively isolated region of the shared network; expect its\n"
      "degradation column to be the smallest.\n");
  return 0;
}
