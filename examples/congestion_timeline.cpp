// Example: watch congestion evolve in time while a bursty background job
// shares the machine with a target application — the dynamics behind the
// paper's Figs. 9-10, as a timeline instead of end-of-run aggregates.
//
// Usage: congestion_timeline [app_ranks] [burst_KiB] [sample_us]
//   defaults: 512, 256, 10
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "metrics/timeline.hpp"
#include "place/placement.hpp"
#include "replay/replay.hpp"
#include "routing/adaptive.hpp"
#include "workload/background.hpp"
#include "workload/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace dfly;
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 512;
  const Bytes burst = (argc > 2 ? std::atoll(argv[2]) : 256) * units::kKiB;
  const SimTime sample = (argc > 3 ? std::atoll(argv[3]) : 10) * units::kMicrosecond;

  const TopoParams params = TopoParams::theta();
  const DragonflyTopology topo(params);
  Engine engine;
  AdaptiveRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));

  // Target app: 3 ring sweeps on a random-node placement.
  const Trace trace = make_ring_trace(ranks, 128 * units::kKiB, 3);
  Rng rng(2);
  const Placement placement = make_placement(PlacementKind::RandomNode, params, ranks, rng);
  ReplayEngine replay(engine, network, trace, placement);

  // Bursty neighbor on everything else.
  BackgroundSpec spec;
  spec.pattern = BackgroundSpec::Pattern::Bursty;
  spec.message_bytes = burst;
  spec.burst_fanout = 8;
  spec.interval = 100 * units::kMicrosecond;
  BackgroundDriver background(engine, network, remaining_nodes(params, placement), spec, Rng(3));

  TimelineSampler sampler(engine, network, sample);
  replay.set_completion_callback([&](SimTime) {
    background.request_stop();
    sampler.request_stop();
  });

  std::printf("app: %d-rank ring | background: %lld KiB x%d bursts every %.1f ms | sampling %lld us\n",
              ranks, static_cast<long long>(burst / units::kKiB), spec.burst_fanout,
              units::to_ms(spec.interval), static_cast<long long>(sample / units::kMicrosecond));

  sampler.start();
  background.start();
  replay.start();
  engine.run();

  sampler.to_table("Network state over time (bursts appear as queue spikes)")
      .print_markdown(std::cout);
  std::printf("app finished at %.3f ms; background issued %.1f MB in %llu bursts\n",
              units::to_ms(replay.rank_finish_time(0)), units::to_mb(background.bytes_issued()),
              static_cast<unsigned long long>(background.ticks()));
  return 0;
}
