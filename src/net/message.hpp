// Message records and the completion-notification interface.
//
// The network tracks per-message injected/delivered byte counts; the replay
// engine (or any other driver) receives callbacks through MessageSink.
// Records are pool-recycled once both sides complete, keeping memory bounded
// by the number of concurrently in-flight messages even under open-loop
// background traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "net/chunk.hpp"
#include "topo/coordinates.hpp"
#include "util/units.hpp"

namespace dfly {

struct MessageRecord {
  NodeId src = -1;
  NodeId dst = -1;
  Bytes total = 0;
  Bytes injected = 0;
  Bytes delivered = 0;
  /// Bytes dropped on failed links and awaiting the NIC's retransmit timer.
  /// Drops subtract from `injected`, so a record with pending retransmission
  /// can never satisfy the release condition (injected == total).
  Bytes drop_pending = 0;
  std::uint16_t retx_attempts = 0;  ///< drives the exponential backoff
  bool retx_scheduled = false;      ///< a kRetransmit event is in flight
  bool injected_notified = false;   ///< MessageSink heard on_message_injected
  std::uint64_t user_data = 0;
  bool notify_injected = false;
  bool notify_delivered = false;
  bool active = false;
};

/// Callbacks fire during event processing at the exact simulation time of the
/// completion. `user_data` is the value passed to Network::send.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  /// Last byte of the message has left the source NIC.
  virtual void on_message_injected(MsgId /*id*/, std::uint64_t /*user_data*/, SimTime /*now*/) {}
  /// Last byte of the message has been delivered to the destination node.
  virtual void on_message_delivered(MsgId /*id*/, std::uint64_t /*user_data*/, SimTime /*now*/) {}
};

class MessagePool {
 public:
  MsgId allocate() {
    if (!free_.empty()) {
      const MsgId id = free_.back();
      free_.pop_back();
      return id;
    }
    records_.emplace_back();
    return static_cast<MsgId>(records_.size() - 1);
  }

  void release(MsgId id) {
    records_[id] = MessageRecord{};
    free_.push_back(id);
  }

  MessageRecord& operator[](MsgId id) { return records_[id]; }
  const MessageRecord& operator[](MsgId id) const { return records_[id]; }
  std::size_t in_flight() const { return records_.size() - free_.size(); }

  // --- checkpoint support: raw slot/free-list access (order-preserving) ---
  const std::vector<MessageRecord>& slots() const { return records_; }
  const std::vector<MsgId>& free_slots() const { return free_; }
  void restore(std::vector<MessageRecord> slots, std::vector<MsgId> free_list) {
    records_ = std::move(slots);
    free_ = std::move(free_list);
  }

 private:
  std::vector<MessageRecord> records_;
  std::vector<MsgId> free_;
};

}  // namespace dfly
