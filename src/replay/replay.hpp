// Trace replay with MPI point-to-point semantics (paper §III: trace-based
// simulation, one rank per node, compute time stripped).
//
// Each rank executes its op list in order. Nonblocking operations register
// outstanding handles that the next WaitAll drains; blocking operations stop
// the rank until the network reports completion (send: fully injected;
// recv: matching message fully delivered). Barriers are global and
// zero-latency. The per-rank finish time (when the last op and all
// outstanding handles complete) is the paper's "communication time" metric.
//
// Protocols: messages up to ReplayOptions::eager_threshold are eager (the
// payload is injected immediately — the paper's model); larger ones use
// rendezvous: a small RTS travels to the receiver, the CTS returns once the
// matching receive is posted, and only then is the payload injected.
//
// Message matching is (source rank, tag); generators guarantee unique tags
// for concurrent same-pair messages, making matching unambiguous even when
// adaptive routing reorders deliveries.
#pragma once

#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "net/network.hpp"
#include "place/placement.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace dfly {

struct ReplayOptions {
  /// Messages larger than this use a rendezvous protocol (RTS -> CTS ->
  /// payload); smaller ones are eager. The default (no limit) is the eager
  /// model the paper's simulations use.
  Bytes eager_threshold = std::numeric_limits<Bytes>::max();
  /// Size of the RTS/CTS control messages.
  Bytes control_bytes = 64;
};

class ReplayEngine : public EventHandler, public MessageSink {
 public:
  /// All referenced objects must outlive the engine. Installs itself as the
  /// network's message sink.
  ReplayEngine(Engine& engine, Network& network, const Trace& trace, const Placement& placement,
               ReplayOptions options = {});

  /// Schedules every rank's first operation at the current engine time.
  void start();

  /// Invoked (during event processing) when the last rank finishes.
  void set_completion_callback(std::function<void(SimTime)> cb) { completion_cb_ = std::move(cb); }

  bool finished() const { return finished_ranks_ == trace_.ranks(); }
  int finished_ranks() const { return finished_ranks_; }
  /// Finish time of `rank`; -1 if it has not finished.
  SimTime rank_finish_time(int rank) const { return ranks_[rank].finish; }

  // MessageSink
  void on_message_injected(MsgId id, std::uint64_t user_data, SimTime now) override;
  void on_message_delivered(MsgId id, std::uint64_t user_data, SimTime now) override;

  // EventHandler
  void handle_event(SimTime now, const EventPayload& payload) override;

  /// Checkpoint support (src/ckpt/): per-rank cursors, blocking state, posted
  /// receives and unexpected-message queues, the sent-message table and the
  /// barrier bookkeeping. load_state requires a fresh engine built over the
  /// same trace (the rank count is validated) and must be used INSTEAD of
  /// start() — the restored event queue already holds the ranks' events.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  enum EventKind : std::int32_t { kStart = 1, kResume = 2, kBarrierRelease = 3 };
  enum class Block : std::uint8_t { None, SendInject, RecvArrive, WaitAll, Barrier, Delay, Done };

  /// Network user_data encodes (PacketKind << 60) | sent_ index.
  enum class PacketKind : std::uint64_t { Data = 0, Rts = 1, Cts = 2 };

  struct SentMsg {
    std::int32_t src_rank;
    std::int32_t dst_rank;
    std::int32_t tag;
    Bytes bytes;
    bool blocking;    ///< a blocking Send waits for this message's injection
    bool rendezvous;  ///< payload is injected only after the CTS returns
  };
  struct PendingRecv {
    std::int32_t peer;
    std::int32_t tag;
    bool blocking;
  };
  struct ArrivedMsg {
    std::int32_t src_rank;
    std::int32_t tag;
    bool is_rts;               ///< an RTS awaiting its recv (rendezvous)
    std::uint64_t sent_index;  ///< valid when is_rts
  };
  struct RankState {
    std::size_t cursor = 0;
    int outstanding_isends = 0;
    std::vector<PendingRecv> pending_recvs;
    std::deque<ArrivedMsg> unexpected;
    Block block = Block::None;
    SimTime finish = -1;
  };

  void advance(int rank, SimTime now);
  void issue_send(int rank, const TraceOp& op, bool blocking);
  /// Handles a posted recv against already-arrived traffic. Returns true if
  /// the receive is already satisfied (eager data was here); an RTS match
  /// sends the CTS but returns false (the payload is still in flight).
  bool try_match_arrival(int rank, std::int32_t peer, std::int32_t tag);
  void send_cts(std::uint64_t sent_index);
  void maybe_unblock_waitall(int rank, SimTime now);
  void finish_rank(int rank, SimTime now);

  static std::uint64_t encode(PacketKind kind, std::uint64_t index) {
    return (static_cast<std::uint64_t>(kind) << 60) | index;
  }
  static PacketKind kind_of(std::uint64_t user) { return static_cast<PacketKind>(user >> 60); }
  static std::uint64_t index_of(std::uint64_t user) { return user & ((1ull << 60) - 1); }

  Engine& engine_;
  Network& network_;
  const Trace& trace_;
  const Placement& placement_;
  ReplayOptions options_;

  std::vector<RankState> ranks_;
  std::vector<SentMsg> sent_;
  int finished_ranks_ = 0;
  int barrier_arrived_ = 0;
  bool barrier_release_scheduled_ = false;
  std::function<void(SimTime)> completion_cb_;
};

}  // namespace dfly
