#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace dfly {
namespace {

constexpr char kMagic[4] = {'D', 'F', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& os, T value) {
  // The format is little-endian; all supported platforms here are LE, which
  // the build asserts via the byte-order check in read.
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T get(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!is) throw std::runtime_error("trace: truncated input");
  return value;
}

}  // namespace

void write_trace(const Trace& trace, std::ostream& os) {
  os.write(kMagic, sizeof kMagic);
  put<std::uint32_t>(os, kVersion);
  put<std::uint32_t>(os, static_cast<std::uint32_t>(trace.ranks()));
  for (int r = 0; r < trace.ranks(); ++r) {
    const auto& ops = trace.rank(r);
    put<std::uint64_t>(os, ops.size());
    for (const TraceOp& op : ops) {
      put<std::uint8_t>(os, static_cast<std::uint8_t>(op.kind));
      put<std::int32_t>(os, op.peer);
      put<std::int32_t>(os, op.tag);
      put<std::int64_t>(os, op.bytes);
      put<std::int64_t>(os, op.delay);
    }
  }
}

Trace read_trace(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::runtime_error("trace: bad magic");
  const auto version = get<std::uint32_t>(is);
  if (version != kVersion) throw std::runtime_error("trace: unsupported version");
  const auto ranks = get<std::uint32_t>(is);
  if (ranks == 0 || ranks > 10'000'000) throw std::runtime_error("trace: implausible rank count");
  Trace trace(static_cast<int>(ranks));
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const auto count = get<std::uint64_t>(is);
    auto& ops = trace.rank(static_cast<int>(r));
    ops.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      TraceOp op;
      const auto kind = get<std::uint8_t>(is);
      if (kind > static_cast<std::uint8_t>(OpKind::Delay))
        throw std::runtime_error("trace: bad op kind");
      op.kind = static_cast<OpKind>(kind);
      op.peer = get<std::int32_t>(is);
      op.tag = get<std::int32_t>(is);
      op.bytes = get<std::int64_t>(is);
      op.delay = get<std::int64_t>(is);
      ops.push_back(op);
    }
  }
  return trace;
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace: cannot open for writing: " + path);
  write_trace(trace, f);
  if (!f) throw std::runtime_error("trace: write failed: " + path);
}

Trace load_trace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("trace: cannot open: " + path);
  return read_trace(f);
}

void dump_trace_text(const Trace& trace, std::ostream& os, std::size_t max_ops_per_rank) {
  os << "trace: " << trace.ranks() << " ranks, " << trace.total_ops() << " ops, "
     << trace.total_send_bytes() << " send bytes\n";
  for (int r = 0; r < trace.ranks(); ++r) {
    const auto& ops = trace.rank(r);
    os << "rank " << r << " (" << ops.size() << " ops):\n";
    std::size_t shown = 0;
    for (const TraceOp& op : ops) {
      if (max_ops_per_rank && shown++ >= max_ops_per_rank) {
        os << "  ...\n";
        break;
      }
      os << "  " << to_string(op.kind);
      if (op.peer >= 0) os << " peer=" << op.peer;
      if (op.bytes > 0) os << " bytes=" << op.bytes;
      if (op.tag != 0) os << " tag=" << op.tag;
      if (op.delay > 0) os << " delay=" << op.delay;
      os << '\n';
    }
  }
}

}  // namespace dfly
