// Job placement policies (paper §III-B).
//
// A placement assigns each MPI rank to one compute node (the paper maps one
// rank per node). The five policies differ in the granularity of the unit
// that stays contiguous: the whole allocation (contiguous), a cabinet, a
// chassis, a router, or nothing (random-node).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "topo/coordinates.hpp"
#include "util/rng.hpp"

namespace dfly {

enum class PlacementKind { Contiguous, RandomCabinet, RandomChassis, RandomRouter, RandomNode };

const char* to_string(PlacementKind kind);

inline constexpr PlacementKind kAllPlacements[] = {
    PlacementKind::Contiguous, PlacementKind::RandomCabinet, PlacementKind::RandomChassis,
    PlacementKind::RandomRouter, PlacementKind::RandomNode};

class Placement {
 public:
  Placement(PlacementKind kind, std::vector<NodeId> rank_to_node, int total_nodes);

  PlacementKind kind() const { return kind_; }
  int ranks() const { return static_cast<int>(rank_to_node_.size()); }
  NodeId node_of_rank(int rank) const { return rank_to_node_[rank]; }
  /// Rank on `node`, or -1 if the node is not part of this job.
  int rank_of_node(NodeId node) const { return node_to_rank_[node]; }
  bool contains_node(NodeId node) const { return node_to_rank_[node] >= 0; }
  const std::vector<NodeId>& nodes() const { return rank_to_node_; }

 private:
  PlacementKind kind_;
  std::vector<NodeId> rank_to_node_;
  std::vector<std::int32_t> node_to_rank_;
};

/// Builds a placement of `ranks` ranks over `available` nodes (which must
/// contain at least `ranks` entries) of the system described by `params`.
/// Randomized policies consume `rng`; contiguous ignores it.
Placement make_placement(PlacementKind kind, const TopoParams& params, int ranks,
                         std::span<const NodeId> available, Rng& rng);

/// Convenience: placement over all nodes of the system.
Placement make_placement(PlacementKind kind, const TopoParams& params, int ranks, Rng& rng);

/// The nodes of the system NOT used by `placement` — where the paper's
/// synthetic background job runs.
std::vector<NodeId> remaining_nodes(const TopoParams& params, const Placement& placement);

/// Routers that serve at least one node of the placement (the channel
/// population of the paper's traffic/saturation CDFs).
std::vector<RouterId> serving_routers(const TopoParams& params, const Placement& placement);

}  // namespace dfly
