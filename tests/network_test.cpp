// Unit tests for the packet-level network model: delivery timing, credit
// conservation, traffic accounting and saturation measurement.
#include "net/network.hpp"

#include <gtest/gtest.h>

#include "routing/minimal.hpp"
#include "sim/engine.hpp"

namespace dfly {
namespace {

struct Recorder : MessageSink {
  std::vector<std::pair<std::uint64_t, SimTime>> injected;
  std::vector<std::pair<std::uint64_t, SimTime>> delivered;
  void on_message_injected(MsgId, std::uint64_t user, SimTime now) override {
    injected.emplace_back(user, now);
  }
  void on_message_delivered(MsgId, std::uint64_t user, SimTime now) override {
    delivered.emplace_back(user, now);
  }
};

class NetworkFixture : public ::testing::Test {
 protected:
  NetworkFixture()
      : topo(TopoParams::tiny()),
        routing(topo),
        network(engine, topo, params, routing, Rng(1), &rec) {}

  Engine engine;
  DragonflyTopology topo;
  NetworkParams params = NetworkParams::theta();
  MinimalRouting routing;
  Recorder rec;
  Network network;
};

TEST_F(NetworkFixture, SingleChunkSameRouterTiming) {
  // Nodes 0 and 1 share router 0 (tiny: 2 nodes/router). One 1000-byte
  // message = one chunk: NIC serialization + terminal latency, then ejection
  // serialization + terminal latency.
  network.send(0, 1, 1000, 7, true, true);
  engine.run();
  const SimTime ser = units::transfer_time(1000, params.bandwidth(PortKind::Terminal));
  ASSERT_EQ(rec.injected.size(), 1u);
  ASSERT_EQ(rec.delivered.size(), 1u);
  EXPECT_EQ(rec.injected[0].first, 7u);
  EXPECT_EQ(rec.injected[0].second, ser);
  EXPECT_EQ(rec.delivered[0].second, ser + params.terminal_latency + params.router_delay + ser +
                                         params.terminal_latency);
}

TEST_F(NetworkFixture, MultiChunkMessagePipelineIsFasterThanStoreAndForward) {
  // 8 KiB = 4 chunks; NIC keeps injecting while the router forwards, so total
  // time is far below 4x the single-chunk path but at least the pure
  // serialization of 4 chunks.
  const Bytes size = 8 * units::kKiB;
  network.send(0, 1, size, 1, true, true);
  engine.run();
  const SimTime chunk_ser = units::transfer_time(params.chunk_bytes, params.bandwidth(PortKind::Terminal));
  ASSERT_EQ(rec.delivered.size(), 1u);
  const SimTime total = rec.delivered[0].second;
  EXPECT_GE(total, 4 * chunk_ser);
  EXPECT_LT(total,
            2 * (4 * chunk_ser + 2 * params.terminal_latency + params.router_delay));
}

TEST_F(NetworkFixture, CreditsFullyRestoredAfterDrain) {
  Rng traffic(3);
  const int nodes = topo.params().total_nodes();
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<NodeId>(traffic.uniform(nodes));
    auto dst = static_cast<NodeId>(traffic.uniform(nodes - 1));
    if (dst >= src) ++dst;
    network.send(src, dst, 1 + static_cast<Bytes>(traffic.uniform(10000)));
  }
  engine.run();
  for (RouterId r = 0; r < topo.params().total_routers(); ++r) {
    const Router& router = network.router(r);
    for (int p = 0; p < router.num_ports(); ++p) {
      const OutPort& port = router.port(p);
      EXPECT_TRUE(port.queue.empty());
      EXPECT_EQ(port.queued_bytes, 0);
      for (const Bytes c : port.credits)
        EXPECT_EQ(c, params.vc_buffer(port.kind)) << "router " << r << " port " << p;
    }
  }
  for (NodeId n = 0; n < nodes; ++n) {
    EXPECT_EQ(network.nic(n).credits, params.terminal_vc_buffer);
    EXPECT_TRUE(network.nic(n).queue.empty());
  }
  EXPECT_EQ(network.messages_in_flight(), 0u);
}

TEST_F(NetworkFixture, TrafficAccountingConservesBytes) {
  const Bytes size = 100 * units::kKB;
  network.send(0, topo.params().total_nodes() - 1, size, 0, false, true);
  engine.run();
  EXPECT_EQ(network.bytes_delivered(), size);
  // Ejection terminal channel at the destination carries exactly the payload.
  const Coordinates& c = topo.coords();
  const NodeId dst = topo.params().total_nodes() - 1;
  const Router& router = network.router(c.router_of_node(dst));
  EXPECT_EQ(router.port(c.slot_of_node(dst)).traffic, size);
  // Source NIC injected exactly the payload.
  EXPECT_EQ(network.nic(0).traffic, size);
}

TEST_F(NetworkFixture, HopStatsMatchRouteLengths) {
  // Same-router message: 1 router traversed.
  network.send(0, 1, 100);
  engine.run();
  EXPECT_EQ(network.hop_stats(0).chunks, 1u);
  EXPECT_DOUBLE_EQ(network.hop_stats(0).average(), 1.0);
}

TEST_F(NetworkFixture, NoSaturationOnLightTraffic) {
  network.send(0, 1, 100);
  engine.run();
  network.finalize(engine.now());
  for (RouterId r = 0; r < topo.params().total_routers(); ++r) {
    const Router& router = network.router(r);
    for (int p = 0; p < router.num_ports(); ++p)
      EXPECT_EQ(router.port(p).saturated_time, 0);
  }
}

TEST_F(NetworkFixture, HeavyFanInSaturatesAndStillDrains) {
  // Many nodes hammer one destination node: its terminal channel must
  // saturate upstream buffers, and everything must still complete.
  const NodeId dst = 0;
  const int nodes = topo.params().total_nodes();
  for (NodeId src = 1; src < nodes; ++src) network.send(src, dst, 64 * units::kKiB);
  engine.set_event_limit(50'000'000);
  engine.run();
  ASSERT_FALSE(engine.hit_event_limit()) << "fan-in traffic wedged";
  network.finalize(engine.now());
  EXPECT_EQ(network.bytes_delivered(), static_cast<Bytes>(nodes - 1) * 64 * units::kKiB);
  SimTime total_saturation = 0;
  for (RouterId r = 0; r < topo.params().total_routers(); ++r) {
    const Router& router = network.router(r);
    for (int p = 0; p < router.num_ports(); ++p)
      total_saturation += router.port(p).saturated_time;
  }
  EXPECT_GT(total_saturation, 0) << "fan-in must exhaust some buffers";
}

TEST_F(NetworkFixture, MessagesRecycleUnderOpenLoopLoad) {
  // Repeatedly send and drain: the message pool must not grow unboundedly.
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) network.send(0, 3, 4096);
    engine.run();
    EXPECT_EQ(network.messages_in_flight(), 0u);
  }
}

TEST(NetworkParams, ValidationRejectsNonsense) {
  NetworkParams p = NetworkParams::theta();
  p.chunk_bytes = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = NetworkParams::theta();
  p.local_vc_buffer = p.chunk_bytes - 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = NetworkParams::theta();
  p.global_bandwidth_gib = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(NetworkParams, ThetaMatchesPaperSectionII) {
  const NetworkParams p = NetworkParams::theta();
  EXPECT_DOUBLE_EQ(p.terminal_bandwidth_gib, 16.0);
  EXPECT_DOUBLE_EQ(p.local_bandwidth_gib, 5.25);
  EXPECT_DOUBLE_EQ(p.global_bandwidth_gib, 4.69);
  EXPECT_EQ(p.terminal_vc_buffer, 8 * units::kKiB);
  EXPECT_EQ(p.local_vc_buffer, 8 * units::kKiB);
  EXPECT_EQ(p.global_vc_buffer, 16 * units::kKiB);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine;
    DragonflyTopology topo(TopoParams::tiny());
    NetworkParams params = NetworkParams::theta();
    MinimalRouting routing(topo);
    Recorder rec;
    Network network(engine, topo, params, routing, Rng(42), &rec);
    Rng traffic(9);
    for (int i = 0; i < 100; ++i) {
      const auto src = static_cast<NodeId>(traffic.uniform(topo.params().total_nodes()));
      auto dst = static_cast<NodeId>(traffic.uniform(topo.params().total_nodes() - 1));
      if (dst >= src) ++dst;
      network.send(src, dst, 1 + static_cast<Bytes>(traffic.uniform(50000)), i, false, true);
    }
    engine.run();
    return std::make_pair(engine.now(), rec.delivered);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace dfly
