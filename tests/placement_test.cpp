// Unit and property tests for the five job placement policies.
#include "place/placement.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

namespace dfly {
namespace {

class PlacementProperty : public ::testing::TestWithParam<PlacementKind> {};

TEST_P(PlacementProperty, AssignsDistinctValidNodes) {
  const TopoParams p = TopoParams::theta();
  Rng rng(1);
  const Placement placement = make_placement(GetParam(), p, 1000, rng);
  EXPECT_EQ(placement.ranks(), 1000);
  std::set<NodeId> nodes;
  for (int r = 0; r < placement.ranks(); ++r) {
    const NodeId n = placement.node_of_rank(r);
    EXPECT_GE(n, 0);
    EXPECT_LT(n, p.total_nodes());
    EXPECT_TRUE(nodes.insert(n).second);
    EXPECT_EQ(placement.rank_of_node(n), r);
    EXPECT_TRUE(placement.contains_node(n));
  }
}

TEST_P(PlacementProperty, DeterministicForSameSeed) {
  const TopoParams p = TopoParams::theta();
  Rng r1(77), r2(77);
  const Placement a = make_placement(GetParam(), p, 500, r1);
  const Placement b = make_placement(GetParam(), p, 500, r2);
  EXPECT_EQ(a.nodes(), b.nodes());
}

TEST_P(PlacementProperty, RespectsAvailableSet) {
  const TopoParams p = TopoParams::theta();
  // Only even nodes available.
  std::vector<NodeId> available;
  for (NodeId n = 0; n < p.total_nodes(); n += 2) available.push_back(n);
  Rng rng(3);
  const Placement placement = make_placement(GetParam(), p, 300, available, rng);
  for (int r = 0; r < placement.ranks(); ++r) EXPECT_EQ(placement.node_of_rank(r) % 2, 0);
}

TEST_P(PlacementProperty, ThrowsWhenNotEnoughNodes) {
  const TopoParams p = TopoParams::tiny();
  Rng rng(4);
  EXPECT_THROW(make_placement(GetParam(), p, p.total_nodes() + 1, rng), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PlacementProperty, ::testing::ValuesIn(kAllPlacements),
                         [](const auto& pinfo) { return to_string(pinfo.param); });

TEST(Placement, ContiguousTakesLowestNodeIds) {
  const TopoParams p = TopoParams::theta();
  Rng rng(5);
  const Placement placement = make_placement(PlacementKind::Contiguous, p, 100, rng);
  for (int r = 0; r < 100; ++r) EXPECT_EQ(placement.node_of_rank(r), r);
}

TEST(Placement, ContiguousMinimizesRouterCount) {
  const TopoParams p = TopoParams::theta();
  Rng rng(6);
  const Placement placement = make_placement(PlacementKind::Contiguous, p, 1000, rng);
  EXPECT_EQ(serving_routers(p, placement).size(), 250u);  // ceil(1000/4)
}

TEST(Placement, RandomRouterKeepsRouterNodesTogether) {
  const TopoParams p = TopoParams::theta();
  Rng rng(7);
  const Placement placement = make_placement(PlacementKind::RandomRouter, p, 1000, rng);
  const Coordinates coords(p);
  // Count nodes per used router: all but at most one router fully used.
  std::map<RouterId, int> per_router;
  for (const NodeId n : placement.nodes()) ++per_router[coords.router_of_node(n)];
  int partial = 0;
  for (const auto& [router, count] : per_router)
    if (count != p.nodes_per_router) ++partial;
  EXPECT_LE(partial, 1);
  EXPECT_EQ(per_router.size(), 250u);
}

TEST(Placement, RandomChassisKeepsChassisNodesTogether) {
  const TopoParams p = TopoParams::theta();
  Rng rng(8);
  const int chassis_nodes = p.cols * p.nodes_per_router;  // 64
  const Placement placement = make_placement(PlacementKind::RandomChassis, p, 1000, rng);
  const Coordinates coords(p);
  std::map<int, int> per_chassis;
  for (const NodeId n : placement.nodes())
    ++per_chassis[coords.chassis_of_router(coords.router_of_node(n))];
  int partial = 0;
  for (const auto& [chassis, count] : per_chassis)
    if (count != chassis_nodes) ++partial;
  EXPECT_LE(partial, 1);
  EXPECT_EQ(per_chassis.size(), 16u);  // ceil(1000/64)
}

TEST(Placement, RandomCabinetKeepsCabinetNodesTogether) {
  const TopoParams p = TopoParams::theta();
  Rng rng(9);
  const int cabinet_nodes = 3 * p.cols * p.nodes_per_router;  // 192
  const Placement placement = make_placement(PlacementKind::RandomCabinet, p, 1000, rng);
  const Coordinates coords(p);
  std::map<int, int> per_cabinet;
  for (const NodeId n : placement.nodes())
    ++per_cabinet[coords.cabinet_of_router(coords.router_of_node(n))];
  int partial = 0;
  for (const auto& [cab, count] : per_cabinet)
    if (count != cabinet_nodes) ++partial;
  EXPECT_LE(partial, 1);
  EXPECT_EQ(per_cabinet.size(), 6u);  // ceil(1000/192)
}

TEST(Placement, RandomNodeSpreadsAcrossGroups) {
  const TopoParams p = TopoParams::theta();
  Rng rng(10);
  const Placement placement = make_placement(PlacementKind::RandomNode, p, 1000, rng);
  const Coordinates coords(p);
  std::set<GroupId> groups;
  for (const NodeId n : placement.nodes()) groups.insert(coords.group_of_node(n));
  EXPECT_EQ(groups.size(), static_cast<std::size_t>(p.groups));
  // And across nearly all routers (1000 random nodes over 864 routers).
  EXPECT_GT(serving_routers(p, placement).size(), 500u);
}

TEST(Placement, RandomCabinetUsesDifferentCabinetsAcrossSeeds) {
  const TopoParams p = TopoParams::theta();
  Rng r1(11), r2(12);
  const Placement a = make_placement(PlacementKind::RandomCabinet, p, 500, r1);
  const Placement b = make_placement(PlacementKind::RandomCabinet, p, 500, r2);
  EXPECT_NE(a.nodes(), b.nodes());
}

TEST(Placement, RemainingNodesAreComplement) {
  const TopoParams p = TopoParams::tiny();
  Rng rng(13);
  const Placement placement = make_placement(PlacementKind::RandomNode, p, 10, rng);
  const std::vector<NodeId> rest = remaining_nodes(p, placement);
  EXPECT_EQ(static_cast<int>(rest.size()), p.total_nodes() - 10);
  for (const NodeId n : rest) EXPECT_FALSE(placement.contains_node(n));
}

TEST(Placement, RejectsDuplicateNodeAssignment) {
  EXPECT_THROW(Placement(PlacementKind::Contiguous, {0, 1, 1}, 10), std::invalid_argument);
  EXPECT_THROW(Placement(PlacementKind::Contiguous, {0, 42}, 10), std::invalid_argument);
}

TEST(Placement, PolicyNamesMatchTableI) {
  EXPECT_STREQ(to_string(PlacementKind::Contiguous), "cont");
  EXPECT_STREQ(to_string(PlacementKind::RandomCabinet), "cab");
  EXPECT_STREQ(to_string(PlacementKind::RandomChassis), "chas");
  EXPECT_STREQ(to_string(PlacementKind::RandomRouter), "rotr");
  EXPECT_STREQ(to_string(PlacementKind::RandomNode), "rand");
}

}  // namespace
}  // namespace dfly
