// Command-line simulation driver: run any paper workload under any
// configuration without writing code.
//
// Usage:
//   dfly_sim [--app=cr|fb|amg|ring|alltoall] [--placement=cont|cab|chas|rotr|rand]
//            [--routing=min|adp|val|adpg] [--scale=X] [--seed=N]
//            [--config=FILE] [--dump-config] [--bg=uniform|bursty]
//            [--csv=PREFIX] [--all-configs]
//
// Examples:
//   dfly_sim --app=amg --all-configs          # Fig. 3 AMG column
//   dfly_sim --app=cr --placement=rand --routing=min --scale=0.5
//   dfly_sim --dump-config > theta.conf       # reference config file
#include <cstdio>
#include <cstring>
#include <iostream>
#include <optional>

#include "core/config_io.hpp"
#include "core/run_matrix.hpp"
#include "metrics/report.hpp"
#include "workload/synthetic.hpp"
#include "workload/workload.hpp"

namespace {

using namespace dfly;

std::optional<std::string> arg_value(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
      return std::string(argv[i] + prefix.size());
  }
  return std::nullopt;
}

bool has_flag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i)
    if (flag == argv[i]) return true;
  return false;
}

Workload make_app(const std::string& app, double scale) {
  if (app == "cr") {
    CrParams p;
    p.iterations = 1;
    p.scale = scale;
    return make_crystal_router(p);
  }
  if (app == "fb") {
    FbParams p;
    p.iterations = 1;
    p.scale = scale;
    return make_fill_boundary(p);
  }
  if (app == "amg") {
    AmgParams p;
    p.scale = scale;
    return make_amg(p);
  }
  if (app == "ring") {
    Trace t = make_ring_trace(512, 256 * units::kKiB, 2);
    if (scale != 1.0) t.scale_message_sizes(scale);
    return Workload{"ring", std::move(t)};
  }
  if (app == "alltoall") {
    Trace t = make_all_to_all_trace(128, 32 * units::kKiB);
    if (scale != 1.0) t.scale_message_sizes(scale);
    return Workload{"alltoall", std::move(t)};
  }
  throw std::runtime_error("unknown app: " + app + " (want cr|fb|amg|ring|alltoall)");
}

PlacementKind parse_placement(const std::string& s) {
  for (const PlacementKind k : kAllPlacements)
    if (s == to_string(k)) return k;
  throw std::runtime_error("unknown placement: " + s + " (want cont|cab|chas|rotr|rand)");
}

RoutingKind parse_routing(const std::string& s) {
  for (const RoutingKind k : {RoutingKind::Minimal, RoutingKind::Adaptive, RoutingKind::Valiant,
                              RoutingKind::AdaptiveGlobal})
    if (s == to_string(k)) return k;
  throw std::runtime_error("unknown routing: " + s + " (want min|adp|val|adpg)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfly;
  try {
    ExperimentOptions options;
    if (const auto config = arg_value(argc, argv, "config")) options = load_config(*config);
    if (has_flag(argc, argv, "dump-config")) {
      std::cout << render_config(options);
      return 0;
    }
    if (const auto seed = arg_value(argc, argv, "seed")) options.seed = std::stoull(*seed);

    const double scale =
        arg_value(argc, argv, "scale") ? std::stod(*arg_value(argc, argv, "scale")) : 0.25;
    const Workload workload = make_app(arg_value(argc, argv, "app").value_or("amg"), scale);

    if (const auto bg = arg_value(argc, argv, "bg")) {
      BackgroundSpec spec;
      if (*bg == "uniform") {
        spec.pattern = BackgroundSpec::Pattern::UniformRandom;
        spec.message_bytes = 16 * units::kKB;
        spec.interval = 2 * units::kMicrosecond;
      } else if (*bg == "bursty") {
        spec.pattern = BackgroundSpec::Pattern::Bursty;
        spec.message_bytes = 100 * units::kKB;
        spec.burst_fanout = 8;
        spec.interval = 100 * units::kMicrosecond;
      } else {
        throw std::runtime_error("unknown bg pattern: " + *bg);
      }
      options.background = spec;
    }

    std::vector<ExperimentConfig> configs;
    if (has_flag(argc, argv, "all-configs")) {
      configs = table1_configs();
    } else {
      configs.push_back(ExperimentConfig{
          parse_placement(arg_value(argc, argv, "placement").value_or("cont")),
          parse_routing(arg_value(argc, argv, "routing").value_or("min"))});
    }

    std::printf("app=%s ranks=%d scale=%.3g seed=%llu topo={%s}\n", workload.name.c_str(),
                workload.trace.ranks(), scale, static_cast<unsigned long long>(options.seed),
                options.topo.describe().c_str());

    const auto results = run_matrix(workload, configs, options);
    std::vector<NamedMetrics> named;
    for (const auto& r : results) named.push_back({r.config, r.metrics});
    comm_time_box_table(workload.name + ": per-rank communication time (ms)", named)
        .print_markdown(std::cout);
    summary_table(workload.name + ": run summary", named).print_markdown(std::cout);

    if (const auto csv = arg_value(argc, argv, "csv")) {
      const Table t = comm_time_box_table("comm_time", named);
      const std::string path = *csv + "_comm_time.csv";
      if (t.write_csv(path)) std::printf("wrote %s\n", path.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dfly_sim: %s\n", e.what());
    return 1;
  }
}
