#include "routing/router_table.hpp"

#include <algorithm>
#include <cassert>

namespace dfly {

MinimalPathTable::MinimalPathTable(const DragonflyTopology& topo) : topo_(topo) {
  const TopoParams& p = topo_.params();
  const Coordinates& c = topo_.coords();
  table_.resize(static_cast<std::size_t>(p.total_routers()) * p.groups);
  for (RouterId r = 0; r < p.total_routers(); ++r) {
    const GroupId g = c.group_of_router(r);
    for (GroupId peer = 0; peer < p.groups; ++peer) {
      if (peer == g) continue;
      Candidates& cand = table_[static_cast<std::size_t>(r) * p.groups + peer];
      std::vector<GlobalLink> bucket0;
      std::vector<GlobalLink> bucket1;
      for (const GlobalLink& link : topo_.global_links(g, peer)) {
        const int lh = local_hops(r, link.src_router);
        if (lh == 0) bucket0.push_back(link);
        else if (lh == 1) bucket1.push_back(link);
      }
      cand.near_links = std::move(bucket0);
      cand.bucket1_begin = static_cast<int>(cand.near_links.size());
      cand.near_links.insert(cand.near_links.end(), bucket1.begin(), bucket1.end());
      if (cand.bucket1_begin > 0) cand.best_src_cost = 1;
      else if (!cand.near_links.empty()) cand.best_src_cost = 2;
      else cand.best_src_cost = 3;
    }
  }
}

int MinimalPathTable::local_hops(RouterId a, RouterId b) const {
  if (a == b) return 0;
  const Coordinates& c = topo_.coords();
  const RouterCoord ca = c.coord(a);
  const RouterCoord cb = c.coord(b);
  assert(ca.group == cb.group);
  return (ca.row == cb.row || ca.col == cb.col) ? 1 : 2;
}

const MinimalPathTable::Candidates& MinimalPathTable::candidates(RouterId router,
                                                                 GroupId peer) const {
  return table_[static_cast<std::size_t>(router) * topo_.params().groups + peer];
}

void MinimalPathTable::append_local(Route& route, RouterId from, RouterId to, Rng& rng) const {
  if (from == to) return;
  const int direct = topo_.local_port_to(from, to);
  if (direct >= 0) {
    route.push(from, direct);
    return;
  }
  // Two intersection candidates: (from.row, to.col) and (to.row, from.col).
  const Coordinates& c = topo_.coords();
  const RouterCoord a = c.coord(from);
  const RouterCoord b = c.coord(to);
  const RouterId via_row = c.router_at(a.group, a.row, b.col);
  const RouterId via_col = c.router_at(a.group, b.row, a.col);
  const RouterId mid = rng.bernoulli(0.5) ? via_row : via_col;
  route.push(from, topo_.local_port_to(from, mid));
  route.push(mid, topo_.local_port_to(mid, to));
}

void MinimalPathTable::append_minimal(Route& route, RouterId from, RouterId to, Rng& rng) const {
  if (from == to) return;
  const Coordinates& c = topo_.coords();
  const GroupId gf = c.group_of_router(from);
  const GroupId gt = c.group_of_router(to);
  if (gf == gt) {
    append_local(route, from, to, rng);
    return;
  }

  // Pick a global link minimizing src_hops + 1 + dst_hops; ties broken
  // uniformly by reservoir sampling over the candidate stream.
  const Candidates& cand = candidates(from, gt);
  int best_cost = 100;
  GlobalLink best{};
  std::uint64_t ties = 0;
  auto consider = [&](const GlobalLink& link, int src_hops) {
    const int cost = src_hops + 1 + local_hops(link.dst_router, to);
    if (cost < best_cost) {
      best_cost = cost;
      best = link;
      ties = 1;
    } else if (cost == best_cost) {
      ++ties;
      if (rng.uniform(ties) == 0) best = link;
    }
  };

  for (int i = 0; i < cand.bucket1_begin; ++i) consider(cand.near_links[i], 0);
  // Bucket 1 can only help if the current best has dst-side hops >= 1.
  if (best_cost > 2) {
    for (std::size_t i = cand.bucket1_begin; i < cand.near_links.size(); ++i)
      consider(cand.near_links[i], 1);
  }
  // Bucket 2 (2 src-side hops) can only help if best > 3.
  if (best_cost > 3) {
    for (const GlobalLink& link : topo_.global_links(gf, gt)) {
      if (local_hops(from, link.src_router) == 2) consider(link, 2);
    }
  }
  assert(best_cost < 100);

  append_local(route, from, best.src_router, rng);
  route.push(best.src_router, best.src_port);
  append_local(route, best.dst_router, to, rng);
}

int MinimalPathTable::min_hops(RouterId from, RouterId to) const {
  if (from == to) return 0;
  const Coordinates& c = topo_.coords();
  const GroupId gf = c.group_of_router(from);
  const GroupId gt = c.group_of_router(to);
  if (gf == gt) return local_hops(from, to);
  const Candidates& cand = candidates(from, gt);
  int best = 100;
  for (int i = 0; i < cand.bucket1_begin && best > 1; ++i)
    best = std::min(best, 1 + local_hops(cand.near_links[i].dst_router, to));
  if (best > 2) {
    for (std::size_t i = cand.bucket1_begin; i < cand.near_links.size() && best > 2; ++i)
      best = std::min(best, 2 + local_hops(cand.near_links[i].dst_router, to));
  }
  if (best > 3) {
    for (const GlobalLink& link : topo_.global_links(gf, gt)) {
      if (local_hops(from, link.src_router) == 2)
        best = std::min(best, 3 + local_hops(link.dst_router, to));
      if (best <= 3) break;
    }
  }
  return best;
}

}  // namespace dfly
