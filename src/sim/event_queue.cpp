#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace dfly {

namespace {
constexpr std::size_t kMinBuckets = 16;
// Starting width (2^10 ns) before the first occupancy-driven retune; any
// value works for correctness, the first resize replaces it with a measured
// one.
constexpr int kInitialWidthShift = 10;
// Width retune samples at most this many pending events.
constexpr std::size_t kWidthSample = 64;
// Dispatch-gap window: width retunes prefer the spacing of the last this many
// dispatched events once available.
constexpr std::size_t kGapWindow = 64;
// A sorted serving bucket larger than this triggers a width retune: per-push
// ordered inserts into a huge vector are one calendar-queue failure mode.
constexpr std::size_t kServeBucketLimit = 128;
// Scanning more than this many empty buckets in one locate triggers the
// opposite retune: buckets much narrower than the dispatch gap make every
// pop crawl the array.
constexpr std::size_t kScanLimit = 64;
// Pathology-triggered retunes only fire this many pops after the last resize
// (so the dispatch-gap ring has refreshed) and only when the width is off by
// at least kRetuneBand powers of two (hysteresis against estimator noise).
constexpr std::uint64_t kRetuneCooldown = 4 * kGapWindow;
constexpr int kRetuneBand = 2;

// Smallest power-of-two shift s with (1 << s) >= w.
int shift_for(SimTime w) {
  if (w <= 1) return 0;
  return std::bit_width(static_cast<std::uint64_t>(w - 1));
}
}  // namespace

CalendarEventQueue::CalendarEventQueue()
    : buckets_(kMinBuckets), bucket_mask_(kMinBuckets - 1), width_shift_(kInitialWidthShift) {
  pop_times_.resize(kGapWindow, 0);
}

void CalendarEventQueue::push(const QueuedEvent& ev) {
  assert(ev.time >= 0 && "calendar queue requires non-negative times");
  const std::uint64_t b = bucket_of(ev.time);
  if (size_ == 0) {
    cur_b_ = b;  // re-anchor the window on the first event
  } else if (b < cur_b_) {
    rewind(b);
  }
  if (b >= cur_b_ + buckets_.size()) {
    overflow_.push(ev);
    overflow_min_b_ = std::min(overflow_min_b_, b);
  } else {
    insert_calendar(ev);
  }
  ++size_;
  if (size_ > stats_.peak_pending) stats_.peak_pending = size_;
  if (size_ > 2 * buckets_.size()) resize(2 * buckets_.size());
}

const QueuedEvent& CalendarEventQueue::min() {
  locate_min();
  return slot(cur_b_).events.back();
}

QueuedEvent CalendarEventQueue::pop_min() {
  locate_min();
  Bucket& bk = slot(cur_b_);
  QueuedEvent ev = bk.events.back();
  bk.events.pop_back();
  if (bk.events.empty()) bk.sorted = false;
  --cal_size_;
  --size_;
  pop_times_[pop_times_next_] = ev.time;
  if (++pop_times_next_ == kGapWindow) {
    pop_times_next_ = 0;
    pop_times_full_ = true;
  }
  ++pops_since_resize_;
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4)
    resize(buckets_.size() / 2);
  return ev;
}

void CalendarEventQueue::locate_min() {
  assert(size_ > 0);
  for (int attempt = 0;; ++attempt) {
    if (cal_size_ == 0) {
      // Everything pending is far-future: jump the window over the gap
      // instead of sliding bucket by bucket.
      cur_b_ = bucket_of(overflow_.top().time);
      promote_overflow();
    } else if (overflow_min_b_ < cur_b_ + buckets_.size()) {
      promote_overflow();
    }
    std::size_t scanned = 0;
    while (slot(cur_b_).events.empty()) {
      ++cur_b_;
      ++scanned;
      if (overflow_min_b_ < cur_b_ + buckets_.size()) promote_overflow();
    }
    Bucket& bk = slot(cur_b_);
    if (!bk.sorted) {
      std::sort(bk.events.begin(), bk.events.end(), std::greater<>{});
      bk.sorted = true;
    }
    // Both calendar-queue pathologies show up right here: a bloated serving
    // bucket (width too wide for the serving-point density) or a long crawl
    // over empty buckets (width too narrow for the dispatch gap). Either way
    // the cure is retuning the width to the observed dispatch spacing. The
    // cooldown and the dead band keep a noisy gap estimate from thrashing the
    // width back and forth; one retry suffices because the rebuilt calendar
    // reproduces the estimate.
    if (attempt == 0 && pops_since_resize_ >= kRetuneCooldown &&
        (bk.events.size() > kServeBucketLimit || scanned > kScanLimit)) {
      const int shift = tuned_width_shift({});
      if (shift >= width_shift_ + kRetuneBand || shift <= width_shift_ - kRetuneBand) {
        resize(buckets_.size());
        continue;
      }
    }
    return;
  }
}

void CalendarEventQueue::promote_overflow() {
  const std::uint64_t window_end = cur_b_ + buckets_.size();
  while (!overflow_.empty() && bucket_of(overflow_.top().time) < window_end) {
    insert_calendar(overflow_.top());
    overflow_.pop();
    ++stats_.overflow_promotions;
  }
  overflow_min_b_ = overflow_.empty() ? kNoBucket : bucket_of(overflow_.top().time);
}

void CalendarEventQueue::insert_calendar(const QueuedEvent& ev) {
  Bucket& bk = slot(bucket_of(ev.time));
  if (bk.sorted) {
    // Descending order, min at the back: ties insert towards the front so an
    // equal-time event with a larger seq pops after the ones already queued.
    const auto it = std::upper_bound(bk.events.begin(), bk.events.end(), ev, std::greater<>{});
    bk.events.insert(it, ev);
  } else {
    bk.events.push_back(ev);
  }
  ++cal_size_;
}

void CalendarEventQueue::rewind(std::uint64_t new_cur) {
  cur_b_ = new_cur;
  const std::uint64_t window_end = cur_b_ + buckets_.size();
  for (Bucket& bk : buckets_) {
    const auto keep_end =
        std::stable_partition(bk.events.begin(), bk.events.end(), [&](const QueuedEvent& e) {
          return bucket_of(e.time) < window_end;
        });
    for (auto it = keep_end; it != bk.events.end(); ++it) {
      overflow_min_b_ = std::min(overflow_min_b_, bucket_of(it->time));
      overflow_.push(*it);
      --cal_size_;
    }
    bk.events.erase(keep_end, bk.events.end());
  }
}

int CalendarEventQueue::tuned_width_shift(const std::vector<QueuedEvent>& all) const {
  // Brown's rule in both branches: width ~ 3x the per-event gap keeps the
  // serving bucket at a handful of events; rounded up to a power of two for
  // shift-based hashing.
  if (pop_times_full_) {
    // The dispatch-gap estimate measures the density the serving bucket
    // actually experiences — unlike the pending set, it is not skewed by
    // far-future timers parked in the overflow tier.
    SimTime lo = pop_times_[0], hi = pop_times_[0];
    for (const SimTime t : pop_times_) {
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    const SimTime width = 3 * (hi - lo) / static_cast<SimTime>(kGapWindow - 1);
    return shift_for(std::max<SimTime>(1, width));
  }
  if (all.size() < 2) return width_shift_;
  // No dispatch history yet (pre-run scheduling burst): evenly strided sample
  // of pending event times. After sorting, consecutive samples are ~stride
  // events apart, so median_gap / stride estimates the typical per-event
  // spacing in the dense region while staying robust against far-future
  // outliers (which only perturb the top gaps).
  std::vector<SimTime> sample;
  const std::size_t stride = std::max<std::size_t>(1, all.size() / kWidthSample);
  for (std::size_t i = 0; i < all.size(); i += stride) sample.push_back(all[i].time);
  std::sort(sample.begin(), sample.end());
  std::vector<SimTime> gaps;
  gaps.reserve(sample.size() - 1);
  for (std::size_t i = 1; i < sample.size(); ++i) gaps.push_back(sample[i] - sample[i - 1]);
  std::sort(gaps.begin(), gaps.end());
  const SimTime median = gaps[gaps.size() / 2];
  const SimTime width = 3 * median / static_cast<SimTime>(stride);
  return shift_for(std::max<SimTime>(1, width));
}

void CalendarEventQueue::resize(std::size_t nbuckets) {
  ++stats_.resizes;
  pops_since_resize_ = 0;
  // Only the calendar tier is rebucketed. The overflow heap is already in
  // (time, seq) order independent of the bucket width, so it is left alone —
  // rehashing tens of thousands of parked backoff timers on every retune was
  // the dominant resize cost. Its cached min bucket just needs recomputing
  // under the new width, and the lazy promotion in locate_min() does the rest.
  std::vector<QueuedEvent> all;
  all.reserve(cal_size_);
  for (Bucket& bk : buckets_) {
    all.insert(all.end(), bk.events.begin(), bk.events.end());
    bk.events.clear();
    bk.sorted = false;
  }
  width_shift_ = tuned_width_shift(all);
  buckets_.assign(nbuckets, Bucket{});
  bucket_mask_ = nbuckets - 1;
  cal_size_ = 0;
  // Anchor the window at the global minimum so no pending event — calendar or
  // overflow — maps to a bucket before cur_b_ (promotion into a slot behind
  // the serving position would corrupt the wrapped bucket array).
  SimTime min_t = overflow_.empty() ? SimTime{0} : overflow_.top().time;
  if (!all.empty()) {
    min_t = all.front().time;
    for (const QueuedEvent& e : all) min_t = std::min(min_t, e.time);
    if (!overflow_.empty()) min_t = std::min(min_t, overflow_.top().time);
  }
  cur_b_ = bucket_of(min_t);
  overflow_min_b_ = overflow_.empty() ? kNoBucket : bucket_of(overflow_.top().time);
  for (const QueuedEvent& e : all) {
    const std::uint64_t b = bucket_of(e.time);
    if (b >= cur_b_ + buckets_.size()) {
      overflow_.push(e);
      overflow_min_b_ = std::min(overflow_min_b_, b);
    } else {
      insert_calendar(e);
    }
  }
}

}  // namespace dfly
