# Empty dependencies file for bench_fig2_workloads.
# This may be replaced when dependencies are built.
