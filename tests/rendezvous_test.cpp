// Tests for the rendezvous message protocol (ReplayOptions::eager_threshold).
#include <gtest/gtest.h>

#include "replay/replay.hpp"
#include "routing/minimal.hpp"
#include "workload/exchange.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

struct Harness {
  Harness(const Trace& trace_in, ReplayOptions options)
      : trace(trace_in),
        topo(TopoParams::tiny()),
        routing(topo),
        network(engine, topo, NetworkParams::theta(), routing, Rng(1)),
        placement(make_placement_helper(topo.params(), trace.ranks())),
        replay(engine, network, trace, placement, options) {}

  static Placement make_placement_helper(const TopoParams& p, int ranks) {
    Rng rng(5);
    return make_placement(PlacementKind::RandomNode, p, ranks, rng);
  }

  SimTime run() {
    replay.start();
    engine.set_event_limit(100'000'000);
    engine.run();
    EXPECT_FALSE(engine.hit_event_limit());
    return engine.now();
  }

  Trace trace;
  Engine engine;
  DragonflyTopology topo;
  MinimalRouting routing;
  Network network;
  Placement placement;
  ReplayEngine replay;
};

ReplayOptions rendezvous_at(Bytes threshold) {
  ReplayOptions options;
  options.eager_threshold = threshold;
  return options;
}

TEST(Rendezvous, LargeExchangeCompletes) {
  Trace trace(2);
  TagAllocator tags;
  emit_exchange(trace, tags, 0, 1, 500 * units::kKB);
  emit_phase_end(trace);
  Harness h(trace, rendezvous_at(64 * units::kKiB));
  h.run();
  EXPECT_TRUE(h.replay.finished());
}

TEST(Rendezvous, SmallMessagesStayEager) {
  // Below the threshold, timings must be identical to the pure-eager run.
  Trace trace = make_ring_trace(8, 16 * units::kKiB, 2);
  Harness eager(trace, ReplayOptions{});
  Harness rdv(trace, rendezvous_at(64 * units::kKiB));
  const SimTime t_eager = eager.run();
  const SimTime t_rdv = rdv.run();
  EXPECT_EQ(t_eager, t_rdv);
  for (int r = 0; r < 8; ++r)
    EXPECT_EQ(eager.replay.rank_finish_time(r), rdv.replay.rank_finish_time(r));
}

TEST(Rendezvous, AddsAtLeastOneRoundTrip) {
  // A single large transfer takes strictly longer under rendezvous (RTS+CTS
  // round trip before the payload moves).
  Trace trace(2);
  trace.rank(0).push_back(TraceOp::isend(1, 200 * units::kKB, 0));
  trace.rank(0).push_back(TraceOp::waitall());
  trace.rank(1).push_back(TraceOp::irecv(0, 200 * units::kKB, 0));
  trace.rank(1).push_back(TraceOp::waitall());
  Harness eager(trace, ReplayOptions{});
  Harness rdv(trace, rendezvous_at(1 * units::kKiB));
  const SimTime t_eager = eager.run();
  const SimTime t_rdv = rdv.run();
  EXPECT_GT(t_rdv, t_eager);
}

TEST(Rendezvous, LateRecvDelaysPayload) {
  // Receiver busy with a delay before posting its recv: under rendezvous the
  // sender's payload cannot start until the recv is posted, so the receive
  // completes later than the eager equivalent.
  Trace trace(2);
  const SimTime pause = 500 * units::kMicrosecond;
  trace.rank(0).push_back(TraceOp::isend(1, 300 * units::kKB, 0));
  trace.rank(0).push_back(TraceOp::waitall());
  trace.rank(1).push_back(TraceOp::pause(pause));
  trace.rank(1).push_back(TraceOp::recv(0, 300 * units::kKB, 0));
  Harness eager(trace, ReplayOptions{});
  Harness rdv(trace, rendezvous_at(1 * units::kKiB));
  const SimTime t_eager = eager.run();
  const SimTime t_rdv = rdv.run();
  // Eager: payload overlaps the pause, finish ~ pause + ejection remainder.
  // Rendezvous: payload starts only after the pause, finish ~ pause + full
  // transfer + control round trip.
  EXPECT_GT(t_rdv, t_eager);
  EXPECT_GT(t_rdv, pause);
}

TEST(Rendezvous, BlockingSendWaitsForPayloadInjection) {
  // A blocking rendezvous Send completes only after CTS + payload injection,
  // so the sender finishes later than with eager.
  Trace trace(2);
  trace.rank(0).push_back(TraceOp::send(1, 200 * units::kKB, 0));
  trace.rank(1).push_back(TraceOp::recv(0, 200 * units::kKB, 0));
  Harness eager(trace, ReplayOptions{});
  Harness rdv(trace, rendezvous_at(1 * units::kKiB));
  eager.run();
  rdv.run();
  EXPECT_GT(rdv.replay.rank_finish_time(0), eager.replay.rank_finish_time(0));
}

TEST(Rendezvous, EarlyRtsParksUntilRecvPosted) {
  // Sender fires the RTS long before the receiver posts a recv; the
  // unexpected-RTS path must hold it and reply CTS at post time.
  Trace trace(3);
  trace.rank(0).push_back(TraceOp::isend(1, 100 * units::kKB, 7));
  trace.rank(0).push_back(TraceOp::waitall());
  trace.rank(2).push_back(TraceOp::send(1, 50 * units::kKB, 0));
  trace.rank(1).push_back(TraceOp::recv(2, 50 * units::kKB, 0));
  trace.rank(1).push_back(TraceOp::recv(0, 100 * units::kKB, 7));
  Harness h(trace, rendezvous_at(4 * units::kKiB));
  h.run();
  EXPECT_TRUE(h.replay.finished());
}

TEST(Rendezvous, ManyConcurrentLargeExchangesDrain) {
  Trace trace(16);
  TagAllocator tags;
  for (int i = 0; i < 3; ++i) {
    for (int r = 0; r < 16; ++r) {
      const int peer = (r + 5) % 16;
      if (peer == r) continue;
      const std::int32_t tag = tags.next(r, peer);
      trace.rank(r).push_back(TraceOp::isend(peer, 128 * units::kKiB, tag));
      trace.rank(peer).push_back(TraceOp::irecv(r, 128 * units::kKiB, tag));
    }
    emit_phase_end(trace);
  }
  Harness h(trace, rendezvous_at(32 * units::kKiB));
  h.run();
  EXPECT_TRUE(h.replay.finished());
}

TEST(Rendezvous, MixedProtocolTrafficCompletes) {
  // Sizes straddling the threshold in one program.
  Trace trace(4);
  TagAllocator tags;
  emit_exchange(trace, tags, 0, 1, 1 * units::kKiB);     // eager
  emit_exchange(trace, tags, 2, 3, 512 * units::kKiB);   // rendezvous
  emit_exchange(trace, tags, 0, 3, 64 * units::kKiB);    // rendezvous
  emit_exchange(trace, tags, 1, 2, 2 * units::kKiB);     // eager
  emit_phase_end(trace);
  Harness h(trace, rendezvous_at(32 * units::kKiB));
  h.run();
  EXPECT_TRUE(h.replay.finished());
}

TEST(Rendezvous, RejectsBadOptions) {
  Trace trace(2);
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  Rng rng(2);
  Placement placement = make_placement(PlacementKind::Contiguous, topo.params(), 2, rng);
  ReplayOptions bad;
  bad.control_bytes = 0;
  EXPECT_THROW(ReplayEngine(engine, network, trace, placement, bad), std::invalid_argument);
}

}  // namespace
}  // namespace dfly
