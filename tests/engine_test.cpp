// Unit tests for the discrete-event engine.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dfly {
namespace {

class Recorder : public EventHandler {
 public:
  void handle_event(SimTime now, const EventPayload& payload) override {
    times.push_back(now);
    kinds.push_back(payload.kind);
  }
  std::vector<SimTime> times;
  std::vector<std::int32_t> kinds;
};

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_EQ(engine.events_processed(), 0u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(Engine, DeliversEventsInTimeOrder) {
  Engine engine;
  Recorder rec;
  engine.schedule(30, &rec, EventPayload{3, 0, 0, 0});
  engine.schedule(10, &rec, EventPayload{1, 0, 0, 0});
  engine.schedule(20, &rec, EventPayload{2, 0, 0, 0});
  engine.run();
  EXPECT_EQ(rec.kinds, (std::vector<std::int32_t>{1, 2, 3}));
  EXPECT_EQ(rec.times, (std::vector<SimTime>{10, 20, 30}));
  EXPECT_EQ(engine.now(), 30);
  EXPECT_EQ(engine.events_processed(), 3u);
}

TEST(Engine, TiesBreakInScheduleOrder) {
  Engine engine;
  Recorder rec;
  for (std::int32_t k = 0; k < 50; ++k) engine.schedule(5, &rec, EventPayload{k, 0, 0, 0});
  engine.run();
  for (std::int32_t k = 0; k < 50; ++k) EXPECT_EQ(rec.kinds[k], k);
}

TEST(Engine, ScheduleAfterIsRelativeToNow) {
  Engine engine;
  struct Chainer : EventHandler {
    Engine* eng;
    std::vector<SimTime> seen;
    void handle_event(SimTime now, const EventPayload& payload) override {
      seen.push_back(now);
      if (payload.kind < 3) eng->schedule_after(7, this, EventPayload{payload.kind + 1, 0, 0, 0});
    }
  } chain;
  chain.eng = &engine;
  engine.schedule(100, &chain, EventPayload{1, 0, 0, 0});
  engine.run();
  EXPECT_EQ(chain.seen, (std::vector<SimTime>{100, 107, 114}));
}

TEST(Engine, RunUntilStopsAtDeadlineAndKeepsLaterEvents) {
  Engine engine;
  Recorder rec;
  engine.schedule(10, &rec, EventPayload{1, 0, 0, 0});
  engine.schedule(50, &rec, EventPayload{2, 0, 0, 0});
  engine.run_until(20);
  EXPECT_EQ(rec.kinds.size(), 1u);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(rec.kinds.size(), 2u);
  EXPECT_EQ(engine.now(), 50);
}

TEST(Engine, RunUntilAdvancesTimeWhenQueueEmpty) {
  Engine engine;
  engine.run_until(42);
  EXPECT_EQ(engine.now(), 42);
}

TEST(Engine, RunSliceHoldsClockAtLastEventOnDrain) {
  // Unlike run_until, run_slice never teleports to the deadline: a run fully
  // consumed in slices ends at the same now() as run() — checkpoint slicing
  // relies on this for bit-exact resume.
  Engine engine;
  Recorder rec;
  engine.schedule(10, &rec, EventPayload{1, 0, 0, 0});
  engine.schedule(30, &rec, EventPayload{2, 0, 0, 0});
  engine.run_slice(20);
  EXPECT_EQ(engine.now(), 10);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run_slice(100);
  EXPECT_EQ(engine.now(), 30);  // queue drained; clock stays at the last event
  engine.run_slice(200);
  EXPECT_EQ(engine.now(), 30);  // empty-queue slices do not move time at all
}

TEST(Engine, EventLimitActsAsWatchdog) {
  Engine engine;
  struct Loop : EventHandler {
    Engine* eng;
    void handle_event(SimTime, const EventPayload&) override {
      eng->schedule_after(1, this, EventPayload{});
    }
  } loop;
  loop.eng = &engine;
  engine.set_event_limit(1000);
  engine.schedule(0, &loop, EventPayload{});
  engine.run();
  EXPECT_TRUE(engine.hit_event_limit());
  EXPECT_EQ(engine.events_processed(), 1000u);
}

TEST(Engine, RequestStopHaltsRunAndKeepsPendingEvents) {
  Engine engine;
  struct Stopper : EventHandler {
    Engine* eng;
    int seen = 0;
    void handle_event(SimTime, const EventPayload&) override {
      if (++seen == 3) eng->request_stop();
      eng->schedule_after(1, this, EventPayload{});
    }
  } stopper;
  stopper.eng = &engine;
  engine.schedule(0, &stopper, EventPayload{});
  engine.run();
  EXPECT_TRUE(engine.stop_requested());
  EXPECT_EQ(stopper.seen, 3);     // no event is processed after the stop request
  EXPECT_EQ(engine.pending(), 1u);  // the queue is left intact for inspection
  EXPECT_FALSE(engine.hit_event_limit());
}

TEST(Engine, RunUntilDoesNotTeleportToDeadlineAfterStop) {
  // Regression: a run halted by request_stop() used to advance now() to the
  // deadline whenever the queue happened to be empty.
  Engine engine;
  struct Stopper : EventHandler {
    Engine* eng;
    void handle_event(SimTime, const EventPayload&) override { eng->request_stop(); }
  } stopper;
  stopper.eng = &engine;
  engine.schedule(10, &stopper, EventPayload{});
  engine.run_until(100);
  EXPECT_TRUE(engine.stop_requested());
  EXPECT_EQ(engine.now(), 10);  // stopped simulations stay where they stopped
}

TEST(Engine, RunUntilDoesNotTeleportToDeadlineAfterEventLimit) {
  Engine engine;
  Recorder rec;
  engine.set_event_limit(1);
  engine.schedule(10, &rec, EventPayload{1, 0, 0, 0});
  engine.schedule(20, &rec, EventPayload{2, 0, 0, 0});
  engine.run_until(100);
  EXPECT_TRUE(engine.hit_event_limit());
  EXPECT_EQ(engine.now(), 10);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(Engine, RunUntilOnStoppedEngineWithEmptyQueueHoldsTime) {
  Engine engine;
  engine.request_stop();
  engine.run_until(42);
  EXPECT_EQ(engine.now(), 0);
}

TEST(Engine, ZeroDelaySelfScheduleRunsAtSameTime) {
  Engine engine;
  Recorder rec;
  engine.schedule(5, &rec, EventPayload{1, 0, 0, 0});
  engine.run();
  engine.schedule_after(0, &rec, EventPayload{2, 0, 0, 0});
  engine.run();
  EXPECT_EQ(rec.times, (std::vector<SimTime>{5, 5}));
}

}  // namespace
}  // namespace dfly
