#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "ckpt/snapshot_io.hpp"

namespace dfly {

namespace {
constexpr std::size_t kMinBuckets = 16;
// Starting width (2^10 ns) before the first occupancy-driven retune; any
// value works for correctness, the first resize replaces it with a measured
// one.
constexpr int kInitialWidthShift = 10;
// Width retune samples at most this many pending events.
constexpr std::size_t kWidthSample = 64;
// Dispatch-gap window: width retunes prefer the spacing of the last this many
// dispatched events once available.
constexpr std::size_t kGapWindow = 64;
// A sorted serving bucket larger than this triggers a width retune: per-push
// ordered inserts into a huge vector are one calendar-queue failure mode.
constexpr std::size_t kServeBucketLimit = 128;
// Scanning more than this many empty buckets in one locate triggers the
// opposite retune: buckets much narrower than the dispatch gap make every
// pop crawl the array.
constexpr std::size_t kScanLimit = 64;
// Pathology-triggered retunes only fire this many pops after the last resize
// (so the dispatch-gap ring has refreshed) and only when the width is off by
// at least kRetuneBand powers of two (hysteresis against estimator noise).
constexpr std::uint64_t kRetuneCooldown = 4 * kGapWindow;
constexpr int kRetuneBand = 2;

// Smallest power-of-two shift s with (1 << s) >= w.
int shift_for(SimTime w) {
  if (w <= 1) return 0;
  return std::bit_width(static_cast<std::uint64_t>(w - 1));
}
}  // namespace

CalendarEventQueue::CalendarEventQueue()
    : buckets_(kMinBuckets), bucket_mask_(kMinBuckets - 1), width_shift_(kInitialWidthShift) {
  pop_times_.resize(kGapWindow, 0);
}

void CalendarEventQueue::push(const QueuedEvent& ev) {
  assert(ev.time >= 0 && "calendar queue requires non-negative times");
  const std::uint64_t b = bucket_of(ev.time);
  if (size_ == 0) {
    cur_b_ = b;  // re-anchor the window on the first event
  } else if (b < cur_b_) {
    rewind(b);
  }
  if (b >= cur_b_ + buckets_.size()) {
    overflow_.push(ev);
    overflow_min_b_ = std::min(overflow_min_b_, b);
  } else {
    insert_calendar(ev);
  }
  ++size_;
  if (size_ > stats_.peak_pending) stats_.peak_pending = size_;
  if (size_ > 2 * buckets_.size()) resize(2 * buckets_.size());
}

const QueuedEvent& CalendarEventQueue::min() {
  locate_min();
  return slot(cur_b_).events.back();
}

QueuedEvent CalendarEventQueue::pop_min() {
  locate_min();
  Bucket& bk = slot(cur_b_);
  QueuedEvent ev = bk.events.back();
  bk.events.pop_back();
  if (bk.events.empty()) bk.sorted = false;
  --cal_size_;
  --size_;
  pop_times_[pop_times_next_] = ev.time;
  if (++pop_times_next_ == kGapWindow) {
    pop_times_next_ = 0;
    pop_times_full_ = true;
  }
  ++pops_since_resize_;
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4)
    resize(buckets_.size() / 2);
  return ev;
}

void CalendarEventQueue::locate_min() {
  assert(size_ > 0);
  for (int attempt = 0;; ++attempt) {
    if (cal_size_ == 0) {
      // Everything pending is far-future: jump the window over the gap
      // instead of sliding bucket by bucket.
      cur_b_ = bucket_of(overflow_.top().time);
      promote_overflow();
    } else if (overflow_min_b_ < cur_b_ + buckets_.size()) {
      promote_overflow();
    }
    std::size_t scanned = 0;
    while (slot(cur_b_).events.empty()) {
      ++cur_b_;
      ++scanned;
      if (overflow_min_b_ < cur_b_ + buckets_.size()) promote_overflow();
    }
    Bucket& bk = slot(cur_b_);
    if (!bk.sorted) {
      std::sort(bk.events.begin(), bk.events.end(), std::greater<>{});
      bk.sorted = true;
    }
    // Both calendar-queue pathologies show up right here: a bloated serving
    // bucket (width too wide for the serving-point density) or a long crawl
    // over empty buckets (width too narrow for the dispatch gap). Either way
    // the cure is retuning the width to the observed dispatch spacing. The
    // cooldown and the dead band keep a noisy gap estimate from thrashing the
    // width back and forth; one retry suffices because the rebuilt calendar
    // reproduces the estimate.
    if (attempt == 0 && pops_since_resize_ >= kRetuneCooldown &&
        (bk.events.size() > kServeBucketLimit || scanned > kScanLimit)) {
      const int shift = tuned_width_shift({});
      if (shift >= width_shift_ + kRetuneBand || shift <= width_shift_ - kRetuneBand) {
        resize(buckets_.size());
        continue;
      }
    }
    return;
  }
}

void CalendarEventQueue::promote_overflow() {
  const std::uint64_t window_end = cur_b_ + buckets_.size();
  while (!overflow_.empty() && bucket_of(overflow_.top().time) < window_end) {
    insert_calendar(overflow_.top());
    overflow_.pop();
    ++stats_.overflow_promotions;
  }
  overflow_min_b_ = overflow_.empty() ? kNoBucket : bucket_of(overflow_.top().time);
}

void CalendarEventQueue::insert_calendar(const QueuedEvent& ev) {
  Bucket& bk = slot(bucket_of(ev.time));
  if (bk.sorted) {
    // Descending order, min at the back: ties insert towards the front so an
    // equal-time event with a larger seq pops after the ones already queued.
    const auto it = std::upper_bound(bk.events.begin(), bk.events.end(), ev, std::greater<>{});
    bk.events.insert(it, ev);
  } else {
    bk.events.push_back(ev);
  }
  ++cal_size_;
}

void CalendarEventQueue::rewind(std::uint64_t new_cur) {
  cur_b_ = new_cur;
  const std::uint64_t window_end = cur_b_ + buckets_.size();
  for (Bucket& bk : buckets_) {
    const auto keep_end =
        std::stable_partition(bk.events.begin(), bk.events.end(), [&](const QueuedEvent& e) {
          return bucket_of(e.time) < window_end;
        });
    for (auto it = keep_end; it != bk.events.end(); ++it) {
      overflow_min_b_ = std::min(overflow_min_b_, bucket_of(it->time));
      overflow_.push(*it);
      --cal_size_;
    }
    bk.events.erase(keep_end, bk.events.end());
  }
}

int CalendarEventQueue::tuned_width_shift(const std::vector<QueuedEvent>& all) const {
  // Brown's rule in both branches: width ~ 3x the per-event gap keeps the
  // serving bucket at a handful of events; rounded up to a power of two for
  // shift-based hashing.
  if (pop_times_full_) {
    // The dispatch-gap estimate measures the density the serving bucket
    // actually experiences — unlike the pending set, it is not skewed by
    // far-future timers parked in the overflow tier.
    SimTime lo = pop_times_[0], hi = pop_times_[0];
    for (const SimTime t : pop_times_) {
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    const SimTime width = 3 * (hi - lo) / static_cast<SimTime>(kGapWindow - 1);
    return shift_for(std::max<SimTime>(1, width));
  }
  if (all.size() < 2) return width_shift_;
  // No dispatch history yet (pre-run scheduling burst): evenly strided sample
  // of pending event times. After sorting, consecutive samples are ~stride
  // events apart, so median_gap / stride estimates the typical per-event
  // spacing in the dense region while staying robust against far-future
  // outliers (which only perturb the top gaps).
  std::vector<SimTime> sample;
  const std::size_t stride = std::max<std::size_t>(1, all.size() / kWidthSample);
  for (std::size_t i = 0; i < all.size(); i += stride) sample.push_back(all[i].time);
  std::sort(sample.begin(), sample.end());
  std::vector<SimTime> gaps;
  gaps.reserve(sample.size() - 1);
  for (std::size_t i = 1; i < sample.size(); ++i) gaps.push_back(sample[i] - sample[i - 1]);
  std::sort(gaps.begin(), gaps.end());
  const SimTime median = gaps[gaps.size() / 2];
  const SimTime width = 3 * median / static_cast<SimTime>(stride);
  return shift_for(std::max<SimTime>(1, width));
}

namespace {

void save_event(ckpt::Writer& w, const QueuedEvent& ev,
                const std::function<std::uint32_t(EventHandler*)>& id_of) {
  w.i64(ev.time);
  w.u64(ev.seq);
  w.u32(id_of(ev.handler));
  w.i32(ev.payload.kind);
  w.u32(ev.payload.a);
  w.u64(ev.payload.b);
  w.u64(ev.payload.c);
}

QueuedEvent load_event(ckpt::Reader& r,
                       const std::function<EventHandler*(std::uint32_t)>& handler_of) {
  QueuedEvent ev;
  ev.time = r.i64();
  ev.seq = r.u64();
  ev.handler = handler_of(r.u32());
  ev.payload.kind = r.i32();
  ev.payload.a = r.u32();
  ev.payload.b = r.u64();
  ev.payload.c = r.u64();
  if (ev.time < 0) throw std::runtime_error("snapshot: negative event time");
  return ev;
}

// Serialized size of one event; the Reader's count() guard uses it to bound
// per-bucket allocations against the bytes actually present.
constexpr std::size_t kEventBytes = 8 + 8 + 4 + 4 + 4 + 8 + 8;

}  // namespace

void CalendarEventQueue::save_state(
    ckpt::Writer& w, const std::function<std::uint32_t(EventHandler*)>& id_of) const {
  w.size(size_);
  w.size(cal_size_);
  w.i32(width_shift_);
  w.size(buckets_.size());
  w.u64(cur_b_);
  for (const Bucket& bk : buckets_) {
    w.boolean(bk.sorted);
    w.size(bk.events.size());
    for (const QueuedEvent& ev : bk.events) save_event(w, ev, id_of);
  }
  // Drain a copy of the overflow heap in (time, seq) order; re-pushing the
  // sorted sequence at load time yields an equivalent heap (keys are unique,
  // so the pop order — the only observable — is identical).
  auto overflow = overflow_;
  w.size(overflow.size());
  while (!overflow.empty()) {
    save_event(w, overflow.top(), id_of);
    overflow.pop();
  }
  w.u64(overflow_min_b_);
  w.size(pop_times_.size());
  for (const SimTime t : pop_times_) w.i64(t);
  w.size(pop_times_next_);
  w.boolean(pop_times_full_);
  w.u64(pops_since_resize_);
  w.size(stats_.peak_pending);
  w.u64(stats_.resizes);
  w.u64(stats_.overflow_promotions);
}

void CalendarEventQueue::load_state(
    ckpt::Reader& r, const std::function<EventHandler*(std::uint32_t)>& handler_of) {
  assert(size_ == 0 && "load_state requires a fresh queue");
  size_ = r.count(0);
  cal_size_ = r.count(0);
  width_shift_ = r.i32();
  if (width_shift_ < 0 || width_shift_ > 62)
    throw std::runtime_error("snapshot: bad calendar width shift");
  const std::size_t nbuckets = r.count(1);
  if (nbuckets < kMinBuckets || !std::has_single_bit(nbuckets))
    throw std::runtime_error("snapshot: bad calendar bucket count");
  cur_b_ = r.u64();
  buckets_.assign(nbuckets, Bucket{});
  bucket_mask_ = nbuckets - 1;
  std::size_t cal_loaded = 0;
  for (Bucket& bk : buckets_) {
    bk.sorted = r.boolean();
    const std::size_t n = r.count(kEventBytes);
    bk.events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) bk.events.push_back(load_event(r, handler_of));
    cal_loaded += n;
  }
  const std::size_t overflow_n = r.count(kEventBytes);
  for (std::size_t i = 0; i < overflow_n; ++i) overflow_.push(load_event(r, handler_of));
  if (cal_loaded != cal_size_ || cal_loaded + overflow_n != size_)
    throw std::runtime_error("snapshot: calendar event counts inconsistent");
  overflow_min_b_ = r.u64();
  const std::size_t ring = r.count(sizeof(SimTime));
  if (ring != pop_times_.size())
    throw std::runtime_error("snapshot: dispatch-gap ring size mismatch");
  for (SimTime& t : pop_times_) t = r.i64();
  pop_times_next_ = r.count(0);
  if (pop_times_next_ >= pop_times_.size())
    throw std::runtime_error("snapshot: bad dispatch-gap ring cursor");
  pop_times_full_ = r.boolean();
  pops_since_resize_ = r.u64();
  stats_.peak_pending = r.count(0);
  stats_.resizes = r.u64();
  stats_.overflow_promotions = r.u64();
}

void CalendarEventQueue::resize(std::size_t nbuckets) {
  ++stats_.resizes;
  pops_since_resize_ = 0;
  // Only the calendar tier is rebucketed. The overflow heap is already in
  // (time, seq) order independent of the bucket width, so it is left alone —
  // rehashing tens of thousands of parked backoff timers on every retune was
  // the dominant resize cost. Its cached min bucket just needs recomputing
  // under the new width, and the lazy promotion in locate_min() does the rest.
  std::vector<QueuedEvent> all;
  all.reserve(cal_size_);
  for (Bucket& bk : buckets_) {
    all.insert(all.end(), bk.events.begin(), bk.events.end());
    bk.events.clear();
    bk.sorted = false;
  }
  width_shift_ = tuned_width_shift(all);
  buckets_.assign(nbuckets, Bucket{});
  bucket_mask_ = nbuckets - 1;
  cal_size_ = 0;
  // Anchor the window at the global minimum so no pending event — calendar or
  // overflow — maps to a bucket before cur_b_ (promotion into a slot behind
  // the serving position would corrupt the wrapped bucket array).
  SimTime min_t = overflow_.empty() ? SimTime{0} : overflow_.top().time;
  if (!all.empty()) {
    min_t = all.front().time;
    for (const QueuedEvent& e : all) min_t = std::min(min_t, e.time);
    if (!overflow_.empty()) min_t = std::min(min_t, overflow_.top().time);
  }
  cur_b_ = bucket_of(min_t);
  overflow_min_b_ = overflow_.empty() ? kNoBucket : bucket_of(overflow_.top().time);
  for (const QueuedEvent& e : all) {
    const std::uint64_t b = bucket_of(e.time);
    if (b >= cur_b_ + buckets_.size()) {
      overflow_.push(e);
      overflow_min_b_ = std::min(overflow_min_b_, b);
    } else {
      insert_calendar(e);
    }
  }
}

}  // namespace dfly
