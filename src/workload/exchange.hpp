// Shared building blocks for trace generators.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace dfly {

/// Allocates monotonically increasing tags per ordered (src, dst) rank pair
/// so that concurrent same-pair messages match unambiguously in replay.
class TagAllocator {
 public:
  std::int32_t next(int src, int dst) {
    const std::uint64_t key = (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint32_t>(dst);
    return static_cast<std::int32_t>(counters_[key]++);
  }

 private:
  std::unordered_map<std::uint64_t, std::uint32_t> counters_;
};

/// Emits a symmetric nonblocking exchange of `bytes` between ranks a and b:
/// each posts irecv then isend (a later WaitAll completes the phase).
inline void emit_exchange(Trace& trace, TagAllocator& tags, int a, int b, Bytes bytes) {
  const std::int32_t tag_ab = tags.next(a, b);
  const std::int32_t tag_ba = tags.next(b, a);
  trace.rank(a).push_back(TraceOp::irecv(b, bytes, tag_ba));
  trace.rank(a).push_back(TraceOp::isend(b, bytes, tag_ab));
  trace.rank(b).push_back(TraceOp::irecv(a, bytes, tag_ab));
  trace.rank(b).push_back(TraceOp::isend(a, bytes, tag_ba));
}

/// Appends WaitAll on every rank — the end of a communication phase.
inline void emit_phase_end(Trace& trace) {
  for (int r = 0; r < trace.ranks(); ++r) trace.rank(r).push_back(TraceOp::waitall());
}

/// Deterministic per-key size draw in [lo, hi]: both endpoints of an exchange
/// compute the same value without sharing an Rng.
inline Bytes hashed_size(std::uint64_t seed, std::uint64_t key, Bytes lo, Bytes hi) {
  SplitMix64 sm(seed ^ (key * 0x9e3779b97f4a7c15ULL));
  sm.next();
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<Bytes>(sm.next() % span);
}

/// Applies the sensitivity scale to one message size (>= 1 byte).
inline Bytes scaled(Bytes bytes, double scale) {
  const auto s = static_cast<Bytes>(static_cast<double>(bytes) * scale + 0.5);
  return s < 1 ? 1 : s;
}

}  // namespace dfly
