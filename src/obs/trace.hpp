// Flight-recorder chunk path tracing.
//
// The Network drives a ChunkPathTracer through branch-on-null hooks at four
// points of a chunk's life: injection (sampling decision), output-queue
// enqueue at each router, transmit start on each channel, and delivery/drop.
// The tracer keeps per-live-chunk state for the *sampled* subset only and
// forwards completed per-hop records to a TraceSink.
//
// Sampling is deterministic: an error-feedback accumulator admits exactly
// round(rate * n) of any n injected chunks (±1), so a configured rate of 0.1
// really records one chunk in ten — no RNG, no long-run drift, reproducible
// across runs.
//
// ChromeTraceWriter renders the recorded hops as Chrome trace-event JSON
// (load in chrome://tracing or https://ui.perfetto.dev): one process per
// router, one thread per output port, one complete ("X") slice per hop
// occupancy of the wire, with queue depth at enqueue and the VC in args.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/chunk.hpp"
#include "topo/dragonfly.hpp"
#include "util/units.hpp"

namespace dfly {

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

/// One completed hop of a sampled chunk: the chunk occupied `router`'s output
/// `port` from `enqueue_time`, held the wire [start_time, end_time).
struct HopEvent {
  std::uint64_t chunk = 0;  ///< tracer-assigned serial, unique per sampled chunk
  MsgId msg = 0;
  NodeId src = -1;
  NodeId dst = -1;
  RouterId router = -1;
  std::int16_t port = -1;
  std::int8_t vc = -1;
  PortKind kind = PortKind::Terminal;
  Bytes bytes = 0;
  Bytes queue_depth = 0;  ///< output-queue bytes ahead of this chunk at enqueue
  SimTime enqueue_time = 0;
  SimTime start_time = 0;
  SimTime end_time = 0;
};

/// Receives trace records as they complete. Implementations must not assume
/// hop events of different chunks arrive grouped — chunks interleave.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_hop(const HopEvent& hop) = 0;
  /// A chunk passed the sampling decision at injection time.
  virtual void on_chunk_sampled(std::uint64_t /*serial*/, MsgId /*msg*/, NodeId /*src*/,
                                NodeId /*dst*/, Bytes /*bytes*/, SimTime /*now*/) {}
  /// The sampled chunk left the fabric (delivered = false means dropped on a
  /// failed link; its bytes return via NIC retransmission as a new chunk).
  virtual void on_chunk_closed(std::uint64_t /*serial*/, SimTime /*now*/, bool /*delivered*/) {}
};

class ChunkPathTracer {
 public:
  /// Records per-hop events for `sample_rate` (in [0, 1]) of injected chunks.
  ChunkPathTracer(TraceSink& sink, double sample_rate);

  // --- Network hooks (call sites branch on a null tracer pointer) ---
  void on_chunk_injected(ChunkId id, MsgId msg, NodeId src, NodeId dst, Bytes bytes, SimTime now);
  void on_hop_enqueue(ChunkId id, RouterId router, int port, PortKind kind, int vc,
                      Bytes queue_depth, SimTime now);
  void on_transmit_start(ChunkId id, SimTime start, SimTime end);
  void on_delivered(ChunkId id, SimTime now);
  void on_dropped(ChunkId id, SimTime now);

  /// Checkpoint support (src/ckpt/): sampling accumulator, serial/counter
  /// state, and the live-chunk table (sampled chunks still in the fabric,
  /// including their pending half-recorded hop).
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

  double sample_rate() const { return rate_; }
  std::uint64_t chunks_seen() const { return chunks_seen_; }
  std::uint64_t chunks_sampled() const { return chunks_sampled_; }
  std::uint64_t hops_recorded() const { return hops_recorded_; }
  /// Sampled chunks still in the fabric (diagnostics; 0 after a clean drain).
  std::size_t live_chunks() const { return live_.size(); }

 private:
  struct LiveChunk {
    std::uint64_t serial = 0;
    MsgId msg = 0;
    NodeId src = -1;
    NodeId dst = -1;
    Bytes bytes = 0;
    HopEvent pending;          ///< hop enqueued but not yet transmitted
    bool has_pending = false;
  };

  void close(ChunkId id, SimTime now, bool delivered);

  TraceSink& sink_;
  double rate_;
  double acc_ = 0;  ///< error-feedback sampling accumulator
  std::uint64_t next_serial_ = 0;
  std::uint64_t chunks_seen_ = 0;
  std::uint64_t chunks_sampled_ = 0;
  std::uint64_t hops_recorded_ = 0;
  std::unordered_map<ChunkId, LiveChunk> live_;
};

/// Buffers hop events and renders them as Chrome trace-event JSON.
class ChromeTraceWriter : public TraceSink {
 public:
  void on_hop(const HopEvent& hop) override { hops_.push_back(hop); }

  const std::vector<HopEvent>& hops() const { return hops_; }

  /// Checkpoint support: the buffered hop records.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

  /// Renders the trace-event JSON document ({"traceEvents": [...]}).
  void render(std::ostream& os) const;
  /// Writes render() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::vector<HopEvent> hops_;
};

}  // namespace dfly
