// Unit and property tests for the dragonfly topology.
#include "topo/dragonfly.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace dfly {
namespace {

TEST(TopoParams, ThetaMatchesPaperSectionII) {
  const TopoParams p = TopoParams::theta();
  EXPECT_EQ(p.groups, 9);
  EXPECT_EQ(p.rows, 6);
  EXPECT_EQ(p.cols, 16);
  EXPECT_EQ(p.routers_per_group(), 96);
  EXPECT_EQ(p.total_routers(), 864);
  EXPECT_EQ(p.nodes_per_router, 4);
  EXPECT_EQ(p.total_nodes(), 3456);
  // "each row of 16 routers forms a chassis, and 3 such chassis form a cabinet"
  EXPECT_EQ(p.chassis_per_group(), 6);
  EXPECT_EQ(p.cabinets_per_group(), 2);
  EXPECT_NO_THROW(p.validate());
}

TEST(TopoParams, ValidationRejectsBadConfigs) {
  TopoParams p = TopoParams::tiny();
  p.groups = 1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = TopoParams::tiny();
  p.global_ports_per_router = 3;  // 24 ports % 2 peers == 0, still fine
  EXPECT_NO_THROW(p.validate());
  p.groups = 6;  // 24 % 5 != 0: uneven peer distribution must be rejected
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Coordinates, NodeRouterRoundTrip) {
  const TopoParams p = TopoParams::theta();
  const Coordinates c(p);
  for (NodeId n : {0, 1, 4, 100, 3455}) {
    const RouterId r = c.router_of_node(n);
    const int slot = c.slot_of_node(n);
    EXPECT_EQ(c.node_of(r, slot), n);
  }
}

TEST(Coordinates, RouterCoordRoundTrip) {
  const TopoParams p = TopoParams::theta();
  const Coordinates c(p);
  for (RouterId r = 0; r < p.total_routers(); r += 37) {
    const RouterCoord rc = c.coord(r);
    EXPECT_EQ(c.router_at(rc.group, rc.row, rc.col), r);
    EXPECT_GE(rc.row, 0);
    EXPECT_LT(rc.row, p.rows);
    EXPECT_GE(rc.col, 0);
    EXPECT_LT(rc.col, p.cols);
  }
}

TEST(Coordinates, ChassisAndCabinetGrouping) {
  const TopoParams p = TopoParams::theta();
  const Coordinates c(p);
  // Routers 0..15 are row 0 of group 0 = chassis 0; rows 0-2 = cabinet 0.
  EXPECT_EQ(c.chassis_of_router(0), 0);
  EXPECT_EQ(c.chassis_of_router(15), 0);
  EXPECT_EQ(c.chassis_of_router(16), 1);
  EXPECT_EQ(c.cabinet_of_router(0), 0);
  EXPECT_EQ(c.cabinet_of_router(16 * 3 - 1), 0);
  EXPECT_EQ(c.cabinet_of_router(16 * 3), 1);
  // First router of group 1.
  EXPECT_EQ(c.chassis_of_router(96), 6);
  EXPECT_EQ(c.cabinet_of_router(96), 2);
}

class TopologyTest : public ::testing::TestWithParam<TopoParams> {};

TEST_P(TopologyTest, PortLayoutIsContiguousAndComplete) {
  const DragonflyTopology topo(GetParam());
  const TopoParams& p = GetParam();
  EXPECT_EQ(topo.ports_per_router(),
            p.nodes_per_router + (p.cols - 1) + (p.rows - 1) + p.global_ports_per_router);
  int terminals = 0, rows = 0, cols = 0, globals = 0;
  for (int port = 0; port < topo.ports_per_router(); ++port) {
    switch (topo.port_kind(port)) {
      case PortKind::Terminal: ++terminals; break;
      case PortKind::LocalRow: ++rows; break;
      case PortKind::LocalCol: ++cols; break;
      case PortKind::Global: ++globals; break;
    }
  }
  EXPECT_EQ(terminals, p.nodes_per_router);
  EXPECT_EQ(rows, p.cols - 1);
  EXPECT_EQ(cols, p.rows - 1);
  EXPECT_EQ(globals, p.global_ports_per_router);
}

TEST_P(TopologyTest, LocalNeighborsAreSymmetric) {
  const DragonflyTopology topo(GetParam());
  const TopoParams& p = GetParam();
  for (RouterId r = 0; r < p.total_routers(); r += 7) {
    for (int port = topo.first_row_port(); port < topo.first_global_port(); ++port) {
      const RouterId peer = topo.neighbor(r, port);
      const int back = topo.neighbor_port(r, port);
      EXPECT_EQ(topo.neighbor(peer, back), r);
      EXPECT_EQ(topo.neighbor_port(peer, back), port);
      // Local neighbors share the group and exactly one of row/col.
      const Coordinates& c = topo.coords();
      EXPECT_EQ(c.group_of_router(peer), c.group_of_router(r));
      EXPECT_NE(peer, r);
    }
  }
}

TEST_P(TopologyTest, GlobalNeighborsAreSymmetricAndCrossGroup) {
  const DragonflyTopology topo(GetParam());
  const TopoParams& p = GetParam();
  for (RouterId r = 0; r < p.total_routers(); ++r) {
    for (int port = topo.first_global_port(); port < topo.ports_per_router(); ++port) {
      const RouterId peer = topo.neighbor(r, port);
      const int back = topo.neighbor_port(r, port);
      ASSERT_GE(peer, 0);
      EXPECT_NE(topo.coords().group_of_router(peer), topo.coords().group_of_router(r));
      EXPECT_EQ(topo.neighbor(peer, back), r);
      EXPECT_EQ(topo.neighbor_port(peer, back), port);
    }
  }
}

TEST_P(TopologyTest, GlobalLinksEvenlySpreadAcrossGroupPairs) {
  const DragonflyTopology topo(GetParam());
  const TopoParams& p = GetParam();
  const int expected = p.global_ports_per_group() / (p.groups - 1);
  for (GroupId a = 0; a < p.groups; ++a) {
    for (GroupId b = 0; b < p.groups; ++b) {
      if (a == b) continue;
      const auto links = topo.global_links(a, b);
      EXPECT_EQ(static_cast<int>(links.size()), expected);
      for (const GlobalLink& link : links) {
        EXPECT_EQ(topo.coords().group_of_router(link.src_router), a);
        EXPECT_EQ(topo.coords().group_of_router(link.dst_router), b);
        EXPECT_EQ(topo.neighbor(link.src_router, link.src_port), link.dst_router);
        EXPECT_EQ(topo.neighbor_port(link.src_router, link.src_port), link.dst_port);
      }
    }
  }
}

TEST_P(TopologyTest, EveryGlobalPortUsedExactlyOnce) {
  const DragonflyTopology topo(GetParam());
  const TopoParams& p = GetParam();
  std::set<std::pair<RouterId, int>> used;
  for (GroupId a = 0; a < p.groups; ++a) {
    for (GroupId b = 0; b < p.groups; ++b) {
      if (a == b) continue;
      for (const GlobalLink& link : topo.global_links(a, b)) {
        EXPECT_TRUE(used.insert({link.src_router, link.src_port}).second)
            << "port reused: router " << link.src_router << " port " << link.src_port;
      }
    }
  }
  EXPECT_EQ(used.size(),
            static_cast<std::size_t>(p.total_routers()) * p.global_ports_per_router);
}

TEST_P(TopologyTest, LocalPortToFindsRowAndColumnPeers) {
  const DragonflyTopology topo(GetParam());
  const TopoParams& p = GetParam();
  const Coordinates& c = topo.coords();
  for (RouterId r = 0; r < p.total_routers(); r += 11) {
    const RouterCoord rc = c.coord(r);
    for (int col = 0; col < p.cols; ++col) {
      if (col == rc.col) continue;
      const RouterId peer = c.router_at(rc.group, rc.row, col);
      const int port = topo.local_port_to(r, peer);
      ASSERT_GE(port, 0);
      EXPECT_EQ(topo.neighbor(r, port), peer);
    }
    for (int row = 0; row < p.rows; ++row) {
      if (row == rc.row) continue;
      const RouterId peer = c.router_at(rc.group, row, rc.col);
      const int port = topo.local_port_to(r, peer);
      ASSERT_GE(port, 0);
      EXPECT_EQ(topo.neighbor(r, port), peer);
    }
    // Diagonal peer in the same group: not one local hop.
    const RouterId diag = c.router_at(rc.group, (rc.row + 1) % p.rows, (rc.col + 1) % p.cols);
    if (diag != r && c.row_of_router(diag) != rc.row && c.col_of_router(diag) != rc.col) {
      EXPECT_EQ(topo.local_port_to(r, diag), -1);
    }
  }
}

TEST_P(TopologyTest, ChannelIdRoundTrip) {
  const DragonflyTopology topo(GetParam());
  const TopoParams& p = GetParam();
  for (RouterId r = 0; r < p.total_routers(); r += 13) {
    for (int port = 0; port < topo.ports_per_router(); ++port) {
      const int ch = topo.channel_id(r, port);
      EXPECT_LT(ch, topo.total_channels());
      EXPECT_EQ(topo.channel_router(ch), r);
      EXPECT_EQ(topo.channel_port(ch), port);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, TopologyTest,
                         ::testing::Values(TopoParams::tiny(), TopoParams::theta()),
                         [](const auto& pinfo) {
                           return pinfo.param.groups == 3 ? std::string("tiny")
                                                          : std::string("theta");
                         });

}  // namespace
}  // namespace dfly
