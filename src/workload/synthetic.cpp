#include "workload/synthetic.hpp"

#include <numeric>
#include <stdexcept>

#include "workload/exchange.hpp"

namespace dfly {

Trace make_ring_trace(int ranks, Bytes bytes, int iterations) {
  if (ranks < 2) throw std::invalid_argument("ring needs >= 2 ranks");
  Trace trace(ranks);
  TagAllocator tags;
  for (int iter = 0; iter < iterations; ++iter) {
    for (int r = 0; r < ranks; ++r) {
      const int peer = (r + 1) % ranks;
      if (peer == r) continue;
      if (ranks == 2 && r == 1) continue;  // pair already emitted
      emit_exchange(trace, tags, r, peer, bytes);
    }
    emit_phase_end(trace);
  }
  return trace;
}

Trace make_random_pairs_trace(int ranks, int pairs, Bytes bytes, Rng& rng) {
  if (2 * pairs > ranks) throw std::invalid_argument("not enough ranks for disjoint pairs");
  Trace trace(ranks);
  TagAllocator tags;
  std::vector<int> order(ranks);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  for (int p = 0; p < pairs; ++p) emit_exchange(trace, tags, order[2 * p], order[2 * p + 1], bytes);
  emit_phase_end(trace);
  return trace;
}

Trace make_permutation_trace(int ranks, Bytes bytes, Rng& rng) {
  if (ranks < 2) throw std::invalid_argument("permutation needs >= 2 ranks");
  // Random permutation without fixed points (re-draw until none; cheap for
  // the sizes used here).
  std::vector<int> perm(ranks);
  for (;;) {
    std::iota(perm.begin(), perm.end(), 0);
    rng.shuffle(perm);
    bool fixed = false;
    for (int r = 0; r < ranks; ++r)
      if (perm[r] == r) {
        fixed = true;
        break;
      }
    if (!fixed) break;
  }
  Trace trace(ranks);
  TagAllocator tags;
  for (int r = 0; r < ranks; ++r) {
    const int dst = perm[r];
    const std::int32_t tag = tags.next(r, dst);
    trace.rank(r).push_back(TraceOp::isend(dst, bytes, tag));
    trace.rank(dst).push_back(TraceOp::irecv(r, bytes, tag));
  }
  emit_phase_end(trace);
  return trace;
}

Trace make_all_to_all_trace(int ranks, Bytes bytes) {
  if (ranks < 2) throw std::invalid_argument("all-to-all needs >= 2 ranks");
  Trace trace(ranks);
  TagAllocator tags;
  for (int a = 0; a < ranks; ++a)
    for (int b = a + 1; b < ranks; ++b) emit_exchange(trace, tags, a, b, bytes);
  emit_phase_end(trace);
  return trace;
}

}  // namespace dfly
