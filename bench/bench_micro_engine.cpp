// Microbenchmarks (google-benchmark) for the simulator's hot paths: event
// scheduling/dispatch, route computation, topology construction, placement
// generation, and end-to-end network throughput in events per second.
#include <benchmark/benchmark.h>

#include "net/network.hpp"
#include "place/placement.hpp"
#include "routing/adaptive.hpp"
#include "routing/minimal.hpp"
#include "routing/valiant.hpp"
#include "sim/engine.hpp"

namespace dfly {
namespace {

class NullHandler : public EventHandler {
 public:
  void handle_event(SimTime, const EventPayload&) override {}
};

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  NullHandler handler;
  for (auto _ : state) {
    Engine engine;
    Rng rng(1);
    for (std::uint64_t i = 0; i < events; ++i)
      engine.schedule(static_cast<SimTime>(rng.uniform(1'000'000)), &handler, EventPayload{});
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) * state.iterations());
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1 << 14)->Arg(1 << 17);

class IdleCongestion : public CongestionView {
 public:
  Bytes queued_bytes(RouterId, int) const override { return 0; }
};

template <typename Algorithm>
void route_benchmark(benchmark::State& state) {
  static const DragonflyTopology topo(TopoParams::theta());
  const Algorithm routing(topo);
  IdleCongestion idle;
  Rng rng(7);
  const int nodes = topo.params().total_nodes();
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(rng.uniform(nodes));
    auto dst = static_cast<NodeId>(rng.uniform(nodes - 1));
    if (dst >= src) ++dst;
    benchmark::DoNotOptimize(routing.compute(src, dst, idle, rng));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MinimalRoute(benchmark::State& state) { route_benchmark<MinimalRouting>(state); }
void BM_ValiantRoute(benchmark::State& state) { route_benchmark<ValiantRouting>(state); }
void BM_AdaptiveRoute(benchmark::State& state) { route_benchmark<AdaptiveRouting>(state); }
BENCHMARK(BM_MinimalRoute);
BENCHMARK(BM_ValiantRoute);
BENCHMARK(BM_AdaptiveRoute);

void BM_ThetaTopologyBuild(benchmark::State& state) {
  for (auto _ : state) {
    DragonflyTopology topo(TopoParams::theta());
    benchmark::DoNotOptimize(topo.total_channels());
  }
}
BENCHMARK(BM_ThetaTopologyBuild);

void BM_Placement(benchmark::State& state) {
  const TopoParams params = TopoParams::theta();
  const auto kind = static_cast<PlacementKind>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_placement(kind, params, 1000, rng));
  }
}
BENCHMARK(BM_Placement)->DenseRange(0, 4);

void BM_NetworkRandomTraffic(benchmark::State& state) {
  // End-to-end events/sec: 2000 random messages of 16 KiB on Theta.
  static const DragonflyTopology topo(TopoParams::theta());
  for (auto _ : state) {
    Engine engine;
    MinimalRouting routing(topo);
    Network network(engine, topo, NetworkParams::theta(), routing, Rng(3));
    Rng traffic(5);
    const int nodes = topo.params().total_nodes();
    for (int i = 0; i < 2000; ++i) {
      const auto src = static_cast<NodeId>(traffic.uniform(nodes));
      auto dst = static_cast<NodeId>(traffic.uniform(nodes - 1));
      if (dst >= src) ++dst;
      network.send(src, dst, 16 * units::kKiB);
    }
    engine.run();
    benchmark::DoNotOptimize(network.bytes_delivered());
    state.counters["events"] = static_cast<double>(engine.events_processed());
  }
}
BENCHMARK(BM_NetworkRandomTraffic)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dfly

BENCHMARK_MAIN();
