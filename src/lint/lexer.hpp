// Comment- and string-aware C++ tokenizer for the determinism linter.
//
// dfly_lint enforces source-level rules (DESIGN.md section 12) and must never
// fire on the word "time" inside a comment, a string literal, or a longer
// identifier like transfer_time. A regex grep cannot make those distinctions;
// a full libclang frontend is a dependency the container does not carry. This
// lexer is the middle ground: it splits a translation unit into identifiers,
// literals, punctuation, comments and preprocessor directives with line
// numbers, which is exactly enough signal for every rule in rules.cpp.
//
// It is a lexer, not a parser: no macro expansion, no template
// instantiation, no type information. Rules built on it are heuristics with
// identifier-level precision, and every rule supports an auditable
// `// dfly-lint: allow(<rule>) reason=...` escape hatch for the cases the
// heuristic cannot see through.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dfly::lint {

enum class TokKind {
  Identifier,  ///< [A-Za-z_][A-Za-z0-9_]*
  Number,      ///< integer/float literal including 0x / digit separators
  String,      ///< "..." or raw R"(...)" including encoding prefixes
  Char,        ///< '...'
  Punct,       ///< single punctuation char, except "::" which is one token
  Comment,     ///< // to end of line, or /* ... */ (text includes delimiters)
  Pp,          ///< whole preprocessor line (backslash continuations joined)
};

struct Token {
  TokKind kind;
  std::string text;
  int line;  ///< 1-based line of the token's first character
};

/// Tokenizes `src`. Never throws on malformed input (an unterminated string
/// or comment simply ends at EOF) — the linter must be able to scan any file
/// the compiler has not seen yet.
std::vector<Token> tokenize(std::string_view src);

}  // namespace dfly::lint
