// Failure taxonomy and retry/backoff policy of the sweep farm.
//
// The supervisor never inspects a raw waitpid() status directly: the status
// is decoded into an ExitInfo, the ExitInfo is classified into an ExitClass,
// and the ExitClass alone drives the retry state machine — so the policy is
// a pure function that unit tests can exercise without forking anything.
#pragma once

#include <cstdint>
#include <string>

#include "farm/options.hpp"

namespace dfly::farm {

// Worker exit-code protocol (sysexits.h values where one fits). Anything
// else — and any signal death — is a crash.
inline constexpr int kExitOk = 0;
inline constexpr int kExitTransient = 75;    ///< EX_TEMPFAIL: retry me
inline constexpr int kExitInterrupted = 76;  ///< checkpoint flushed after SIGTERM
inline constexpr int kExitPermanent = 78;    ///< EX_CONFIG: retrying cannot help
inline constexpr int kExitCrash = 70;        ///< EX_SOFTWARE: uncaught exception

/// What happened to one worker attempt, in portable terms.
struct ExitInfo {
  bool exited = false;    ///< normal exit (WIFEXITED)
  int code = -1;          ///< exit code when exited
  int signal = 0;         ///< terminating signal when !exited (WIFSIGNALED)
  bool timed_out = false; ///< the supervisor's watchdog initiated the kill
};

/// Decodes a waitpid() status word into ExitInfo (timed_out left false —
/// only the supervisor knows whether its watchdog fired).
ExitInfo decode_wait_status(int status);

enum class ExitClass : std::uint8_t {
  Ok,           ///< finished, result marker written
  Transient,    ///< retryable by its own admission (kExitTransient)
  Crash,        ///< signal death or uncaught exception — retried; the retry
                ///< resumes from the last checkpoint
  Timeout,      ///< watchdog killed it — retried like a crash
  Permanent,    ///< invalid config; quarantined immediately, never retried
  Interrupted,  ///< graceful shutdown flushed a checkpoint; resumable later
};

const char* to_string(ExitClass c);

/// The classification rule: watchdog timeout wins, then signal death is a
/// crash, then the exit-code protocol above (unknown nonzero codes count as
/// crashes — a worker that dies off-protocol is not trusted to self-report).
ExitClass classify_exit(const ExitInfo& info);

/// True when the class consumes retry budget instead of settling the config.
inline bool is_retryable(ExitClass c) {
  return c == ExitClass::Transient || c == ExitClass::Crash || c == ExitClass::Timeout;
}

/// Backoff ceiling — no retry ever waits longer than this.
inline constexpr std::int64_t kMaxBackoffMs = 60'000;

/// Delay before retry number `failed_attempts` (1-based: the delay after the
/// first failure passes 1). Exponential in backoff_factor, capped at
/// kMaxBackoffMs, then up to options.jitter of it is subtracted using a
/// deterministic draw from `salt` (hash the config name) — identical inputs
/// give identical schedules, distinct configs decorrelate.
std::int64_t backoff_delay_ms(const FarmOptions& options, int failed_attempts,
                              std::uint64_t salt);

}  // namespace dfly::farm
