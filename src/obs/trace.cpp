#include "obs/trace.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace dfly {

ChunkPathTracer::ChunkPathTracer(TraceSink& sink, double sample_rate)
    : sink_(sink), rate_(sample_rate) {
  if (!(sample_rate >= 0.0 && sample_rate <= 1.0))
    throw std::invalid_argument("chunk tracer: sample_rate must be in [0, 1]");
}

void ChunkPathTracer::on_chunk_injected(ChunkId id, MsgId msg, NodeId src, NodeId dst,
                                        Bytes bytes, SimTime now) {
  ++chunks_seen_;
  acc_ += rate_;
  if (acc_ < 1.0) return;
  acc_ -= 1.0;
  ++chunks_sampled_;
  LiveChunk& live = live_[id];
  live.serial = next_serial_++;
  live.msg = msg;
  live.src = src;
  live.dst = dst;
  live.bytes = bytes;
  live.has_pending = false;
  sink_.on_chunk_sampled(live.serial, msg, src, dst, bytes, now);
}

void ChunkPathTracer::on_hop_enqueue(ChunkId id, RouterId router, int port, PortKind kind,
                                     int vc, Bytes queue_depth, SimTime now) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  LiveChunk& live = it->second;
  HopEvent& hop = live.pending;
  hop = HopEvent{};
  hop.chunk = live.serial;
  hop.msg = live.msg;
  hop.src = live.src;
  hop.dst = live.dst;
  hop.router = router;
  hop.port = static_cast<std::int16_t>(port);
  hop.vc = static_cast<std::int8_t>(vc);
  hop.kind = kind;
  hop.bytes = live.bytes;
  hop.queue_depth = queue_depth;
  hop.enqueue_time = now;
  live.has_pending = true;
}

void ChunkPathTracer::on_transmit_start(ChunkId id, SimTime start, SimTime end) {
  const auto it = live_.find(id);
  if (it == live_.end() || !it->second.has_pending) return;
  LiveChunk& live = it->second;
  live.pending.start_time = start;
  live.pending.end_time = end;
  live.has_pending = false;
  ++hops_recorded_;
  sink_.on_hop(live.pending);
}

void ChunkPathTracer::close(ChunkId id, SimTime now, bool delivered) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  sink_.on_chunk_closed(it->second.serial, now, delivered);
  live_.erase(it);
}

void ChunkPathTracer::on_delivered(ChunkId id, SimTime now) { close(id, now, true); }

void ChunkPathTracer::on_dropped(ChunkId id, SimTime now) { close(id, now, false); }

namespace {

double to_us(SimTime t) { return static_cast<double>(t) / 1000.0; }

}  // namespace

void ChromeTraceWriter::render(std::ostream& os) const {
  obs::JsonWriter w(os, 1);
  w.begin_object();
  w.field("displayTimeUnit", "ns");
  w.key("traceEvents");
  w.begin_array();

  // Track metadata: one "process" per router, one "thread" per output port,
  // named so Perfetto shows "router 12 / port 3 (local-row)".
  std::map<RouterId, std::map<int, PortKind>> tracks;
  for (const HopEvent& hop : hops_) tracks[hop.router][hop.port] = hop.kind;
  for (const auto& [router, ports] : tracks) {
    w.begin_object();
    w.field("ph", "M").field("name", "process_name").field("pid", std::int64_t{router});
    w.key("args").begin_object();
    w.field("name", "router " + std::to_string(router));
    w.end_object();
    w.end_object();
    for (const auto& [port, kind] : ports) {
      w.begin_object();
      w.field("ph", "M").field("name", "thread_name").field("pid", std::int64_t{router});
      w.field("tid", std::int64_t{port});
      w.key("args").begin_object();
      w.field("name", "port " + std::to_string(port) + " (" + to_string(kind) + ")");
      w.end_object();
      w.end_object();
    }
  }

  for (const HopEvent& hop : hops_) {
    w.begin_object();
    w.field("ph", "X");
    w.field("name", "m" + std::to_string(hop.msg) + "/c" + std::to_string(hop.chunk));
    w.field("cat", to_string(hop.kind));
    w.field("pid", std::int64_t{hop.router});
    w.field("tid", std::int64_t{hop.port});
    w.field("ts", to_us(hop.start_time));
    w.field("dur", to_us(hop.end_time - hop.start_time));
    w.key("args").begin_object();
    w.field("msg", std::int64_t{hop.msg});
    w.field("chunk", static_cast<std::int64_t>(hop.chunk));
    w.field("src_node", std::int64_t{hop.src});
    w.field("dst_node", std::int64_t{hop.dst});
    w.field("vc", std::int64_t{hop.vc});
    w.field("bytes", hop.bytes);
    w.field("queue_depth_bytes", hop.queue_depth);
    w.field("queue_wait_ns", hop.start_time - hop.enqueue_time);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

bool ChromeTraceWriter::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  render(f);
  return static_cast<bool>(f);
}

}  // namespace dfly
