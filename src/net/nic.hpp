// Per-node network interface: an injection queue of pending messages, a
// serializing injection channel (16 GiB/s terminal link), and a credit pool
// for the router's terminal input buffer.
//
// Messages are chunked lazily at injection time so that queueing a large
// message (or an all-to-all burst) costs one descriptor, not one descriptor
// per chunk.
#pragma once

#include <deque>

#include "net/chunk.hpp"
#include "util/units.hpp"

namespace dfly {

struct PendingMsg {
  MsgId msg;
  Bytes bytes_left;
};

struct Nic {
  SimTime busy_until = 0;
  std::deque<PendingMsg> queue;
  Bytes credits = 0;  ///< free space in the router's terminal input buffer

  // --- metrics ---
  Bytes traffic = 0;           ///< bytes injected
  SimTime blocked_since = -1;  ///< injection stalled on credits
  SimTime saturated_time = 0;

  // --- fault recovery ---
  Bytes retransmitted = 0;              ///< bytes re-injected after link drops
  std::uint32_t retransmit_events = 0;  ///< retransmit timer firings
  std::uint32_t chunks_dropped = 0;     ///< chunks of this NIC's messages lost

  void begin_blocked(SimTime now) {
    if (blocked_since < 0) blocked_since = now;
  }
  void end_blocked(SimTime now) {
    if (blocked_since >= 0) {
      saturated_time += now - blocked_since;
      blocked_since = -1;
    }
  }
};

}  // namespace dfly
