# Empty compiler generated dependencies file for bench_fig4_cr_network.
# This may be replaced when dependencies are built.
