// Sensitivity study driver (paper §IV-B, Fig. 7): sweep the message-size
// scale and report, per configuration, the maximum per-rank communication
// time relative to the rand-adp baseline at the same scale.
#pragma once

#include <functional>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace dfly {

struct SensitivityPoint {
  double scale;
  std::string config;
  double max_comm_ms;
  double relative_to_baseline_pct;  ///< 100 * max_comm / max_comm(rand-adp)
};

struct SensitivityResult {
  std::vector<SensitivityPoint> points;
  Table to_table(const std::string& title) const;
};

/// `make_workload(scale)` must return the workload already scaled (the paper
/// scales "message size relative to the original"); options.msg_scale is
/// ignored here. Configurations always include rand-adp as the baseline.
SensitivityResult run_sensitivity(const std::function<Workload(double)>& make_workload,
                                  const std::vector<double>& scales,
                                  const std::vector<ExperimentConfig>& configs,
                                  const ExperimentOptions& options, int threads = 0);

}  // namespace dfly
