#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

#include "ckpt/snapshot_io.hpp"
#include "obs/json.hpp"

namespace dfly {

ChunkPathTracer::ChunkPathTracer(TraceSink& sink, double sample_rate)
    : sink_(sink), rate_(sample_rate) {
  if (!(sample_rate >= 0.0 && sample_rate <= 1.0))
    throw std::invalid_argument("chunk tracer: sample_rate must be in [0, 1]");
}

void ChunkPathTracer::on_chunk_injected(ChunkId id, MsgId msg, NodeId src, NodeId dst,
                                        Bytes bytes, SimTime now) {
  ++chunks_seen_;
  acc_ += rate_;
  if (acc_ < 1.0) return;
  acc_ -= 1.0;
  ++chunks_sampled_;
  LiveChunk& live = live_[id];
  live.serial = next_serial_++;
  live.msg = msg;
  live.src = src;
  live.dst = dst;
  live.bytes = bytes;
  live.has_pending = false;
  sink_.on_chunk_sampled(live.serial, msg, src, dst, bytes, now);
}

void ChunkPathTracer::on_hop_enqueue(ChunkId id, RouterId router, int port, PortKind kind,
                                     int vc, Bytes queue_depth, SimTime now) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  LiveChunk& live = it->second;
  HopEvent& hop = live.pending;
  hop = HopEvent{};
  hop.chunk = live.serial;
  hop.msg = live.msg;
  hop.src = live.src;
  hop.dst = live.dst;
  hop.router = router;
  hop.port = static_cast<std::int16_t>(port);
  hop.vc = static_cast<std::int8_t>(vc);
  hop.kind = kind;
  hop.bytes = live.bytes;
  hop.queue_depth = queue_depth;
  hop.enqueue_time = now;
  live.has_pending = true;
}

void ChunkPathTracer::on_transmit_start(ChunkId id, SimTime start, SimTime end) {
  const auto it = live_.find(id);
  if (it == live_.end() || !it->second.has_pending) return;
  LiveChunk& live = it->second;
  live.pending.start_time = start;
  live.pending.end_time = end;
  live.has_pending = false;
  ++hops_recorded_;
  sink_.on_hop(live.pending);
}

void ChunkPathTracer::close(ChunkId id, SimTime now, bool delivered) {
  const auto it = live_.find(id);
  if (it == live_.end()) return;
  sink_.on_chunk_closed(it->second.serial, now, delivered);
  live_.erase(it);
}

void ChunkPathTracer::on_delivered(ChunkId id, SimTime now) { close(id, now, true); }

void ChunkPathTracer::on_dropped(ChunkId id, SimTime now) { close(id, now, false); }

namespace {

void save_hop(ckpt::Writer& w, const HopEvent& hop) {
  w.u64(hop.chunk);
  w.u32(hop.msg);
  w.i32(hop.src);
  w.i32(hop.dst);
  w.i32(hop.router);
  w.i32(hop.port);
  w.i32(hop.vc);
  w.u8(static_cast<std::uint8_t>(hop.kind));
  w.i64(hop.bytes);
  w.i64(hop.queue_depth);
  w.i64(hop.enqueue_time);
  w.i64(hop.start_time);
  w.i64(hop.end_time);
}

/// Serialized size of one HopEvent, for Reader::count plausibility caps.
constexpr std::size_t kHopBytes = 8 + 4 + 4 * 5 + 1 + 8 * 5;

HopEvent load_hop(ckpt::Reader& r) {
  HopEvent hop;
  hop.chunk = r.u64();
  hop.msg = r.u32();
  hop.src = r.i32();
  hop.dst = r.i32();
  hop.router = r.i32();
  hop.port = static_cast<std::int16_t>(r.i32());
  hop.vc = static_cast<std::int8_t>(r.i32());
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(PortKind::Global))
    throw std::runtime_error("snapshot: invalid port kind in hop record");
  hop.kind = static_cast<PortKind>(kind);
  hop.bytes = r.i64();
  hop.queue_depth = r.i64();
  hop.enqueue_time = r.i64();
  hop.start_time = r.i64();
  hop.end_time = r.i64();
  return hop;
}

}  // namespace

void ChunkPathTracer::save_state(ckpt::Writer& w) const {
  w.f64(acc_);
  w.u64(next_serial_);
  w.u64(chunks_seen_);
  w.u64(chunks_sampled_);
  w.u64(hops_recorded_);
  // Sort by chunk id so the snapshot bytes don't depend on hash-map order.
  std::vector<ChunkId> ids;
  ids.reserve(live_.size());
  for (const auto& [id, live] : live_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.size(ids.size());
  for (const ChunkId id : ids) {
    const LiveChunk& live = live_.at(id);
    w.u32(id);
    w.u64(live.serial);
    w.u32(live.msg);
    w.i32(live.src);
    w.i32(live.dst);
    w.i64(live.bytes);
    w.boolean(live.has_pending);
    if (live.has_pending) save_hop(w, live.pending);
  }
}

void ChunkPathTracer::load_state(ckpt::Reader& r) {
  acc_ = r.f64();
  next_serial_ = r.u64();
  chunks_seen_ = r.u64();
  chunks_sampled_ = r.u64();
  hops_recorded_ = r.u64();
  if (!(acc_ >= 0.0 && acc_ < 1.0))
    throw std::runtime_error("snapshot: tracer sampling accumulator out of range");
  const std::size_t nlive = r.count(30);
  live_.clear();
  live_.reserve(nlive);
  for (std::size_t i = 0; i < nlive; ++i) {
    const ChunkId id = r.u32();
    LiveChunk live;
    live.serial = r.u64();
    live.msg = r.u32();
    live.src = r.i32();
    live.dst = r.i32();
    live.bytes = r.i64();
    live.has_pending = r.boolean();
    if (live.has_pending) live.pending = load_hop(r);
    if (!live_.emplace(id, live).second)
      throw std::runtime_error("snapshot: duplicate live chunk id");
  }
}

void ChromeTraceWriter::save_state(ckpt::Writer& w) const {
  w.size(hops_.size());
  for (const HopEvent& hop : hops_) save_hop(w, hop);
}

void ChromeTraceWriter::load_state(ckpt::Reader& r) {
  const std::size_t n = r.count(kHopBytes);
  hops_.clear();
  hops_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) hops_.push_back(load_hop(r));
}

namespace {

double to_us(SimTime t) { return static_cast<double>(t) / 1000.0; }

}  // namespace

void ChromeTraceWriter::render(std::ostream& os) const {
  obs::JsonWriter w(os, 1);
  w.begin_object();
  w.field("displayTimeUnit", "ns");
  w.key("traceEvents");
  w.begin_array();

  // Track metadata: one "process" per router, one "thread" per output port,
  // named so Perfetto shows "router 12 / port 3 (local-row)".
  std::map<RouterId, std::map<int, PortKind>> tracks;
  for (const HopEvent& hop : hops_) tracks[hop.router][hop.port] = hop.kind;
  for (const auto& [router, ports] : tracks) {
    w.begin_object();
    w.field("ph", "M").field("name", "process_name").field("pid", std::int64_t{router});
    w.key("args").begin_object();
    w.field("name", "router " + std::to_string(router));
    w.end_object();
    w.end_object();
    for (const auto& [port, kind] : ports) {
      w.begin_object();
      w.field("ph", "M").field("name", "thread_name").field("pid", std::int64_t{router});
      w.field("tid", std::int64_t{port});
      w.key("args").begin_object();
      w.field("name", "port " + std::to_string(port) + " (" + to_string(kind) + ")");
      w.end_object();
      w.end_object();
    }
  }

  for (const HopEvent& hop : hops_) {
    w.begin_object();
    w.field("ph", "X");
    w.field("name", "m" + std::to_string(hop.msg) + "/c" + std::to_string(hop.chunk));
    w.field("cat", to_string(hop.kind));
    w.field("pid", std::int64_t{hop.router});
    w.field("tid", std::int64_t{hop.port});
    w.field("ts", to_us(hop.start_time));
    w.field("dur", to_us(hop.end_time - hop.start_time));
    w.key("args").begin_object();
    w.field("msg", std::int64_t{hop.msg});
    w.field("chunk", static_cast<std::int64_t>(hop.chunk));
    w.field("src_node", std::int64_t{hop.src});
    w.field("dst_node", std::int64_t{hop.dst});
    w.field("vc", std::int64_t{hop.vc});
    w.field("bytes", hop.bytes);
    w.field("queue_depth_bytes", hop.queue_depth);
    w.field("queue_wait_ns", hop.start_time - hop.enqueue_time);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

bool ChromeTraceWriter::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  render(f);
  return static_cast<bool>(f);
}

}  // namespace dfly
