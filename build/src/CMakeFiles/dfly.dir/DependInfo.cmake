
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config_io.cpp" "src/CMakeFiles/dfly.dir/core/config_io.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/core/config_io.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/dfly.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/formatters.cpp" "src/CMakeFiles/dfly.dir/core/formatters.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/core/formatters.cpp.o.d"
  "/root/repo/src/core/interference.cpp" "src/CMakeFiles/dfly.dir/core/interference.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/core/interference.cpp.o.d"
  "/root/repo/src/core/run_matrix.cpp" "src/CMakeFiles/dfly.dir/core/run_matrix.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/core/run_matrix.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/CMakeFiles/dfly.dir/core/sensitivity.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/core/sensitivity.cpp.o.d"
  "/root/repo/src/metrics/collector.cpp" "src/CMakeFiles/dfly.dir/metrics/collector.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/metrics/collector.cpp.o.d"
  "/root/repo/src/metrics/report.cpp" "src/CMakeFiles/dfly.dir/metrics/report.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/metrics/report.cpp.o.d"
  "/root/repo/src/metrics/timeline.cpp" "src/CMakeFiles/dfly.dir/metrics/timeline.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/metrics/timeline.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/dfly.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/net/network.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/CMakeFiles/dfly.dir/net/router.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/net/router.cpp.o.d"
  "/root/repo/src/place/mapping.cpp" "src/CMakeFiles/dfly.dir/place/mapping.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/place/mapping.cpp.o.d"
  "/root/repo/src/place/placement.cpp" "src/CMakeFiles/dfly.dir/place/placement.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/place/placement.cpp.o.d"
  "/root/repo/src/replay/replay.cpp" "src/CMakeFiles/dfly.dir/replay/replay.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/replay/replay.cpp.o.d"
  "/root/repo/src/routing/adaptive.cpp" "src/CMakeFiles/dfly.dir/routing/adaptive.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/routing/adaptive.cpp.o.d"
  "/root/repo/src/routing/adaptive_global.cpp" "src/CMakeFiles/dfly.dir/routing/adaptive_global.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/routing/adaptive_global.cpp.o.d"
  "/root/repo/src/routing/minimal.cpp" "src/CMakeFiles/dfly.dir/routing/minimal.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/routing/minimal.cpp.o.d"
  "/root/repo/src/routing/router_table.cpp" "src/CMakeFiles/dfly.dir/routing/router_table.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/routing/router_table.cpp.o.d"
  "/root/repo/src/routing/valiant.cpp" "src/CMakeFiles/dfly.dir/routing/valiant.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/routing/valiant.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/dfly.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/sim/engine.cpp.o.d"
  "/root/repo/src/topo/coordinates.cpp" "src/CMakeFiles/dfly.dir/topo/coordinates.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/topo/coordinates.cpp.o.d"
  "/root/repo/src/topo/dragonfly.cpp" "src/CMakeFiles/dfly.dir/topo/dragonfly.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/topo/dragonfly.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/dfly.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/trace/trace.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/dfly.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/trace/trace_io.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/dfly.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/dfly.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/dfly.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/dfly.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/dfly.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/util/table.cpp.o.d"
  "/root/repo/src/workload/amg.cpp" "src/CMakeFiles/dfly.dir/workload/amg.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/workload/amg.cpp.o.d"
  "/root/repo/src/workload/background.cpp" "src/CMakeFiles/dfly.dir/workload/background.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/workload/background.cpp.o.d"
  "/root/repo/src/workload/characterize.cpp" "src/CMakeFiles/dfly.dir/workload/characterize.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/workload/characterize.cpp.o.d"
  "/root/repo/src/workload/collectives.cpp" "src/CMakeFiles/dfly.dir/workload/collectives.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/workload/collectives.cpp.o.d"
  "/root/repo/src/workload/crystal_router.cpp" "src/CMakeFiles/dfly.dir/workload/crystal_router.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/workload/crystal_router.cpp.o.d"
  "/root/repo/src/workload/fill_boundary.cpp" "src/CMakeFiles/dfly.dir/workload/fill_boundary.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/workload/fill_boundary.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/CMakeFiles/dfly.dir/workload/synthetic.cpp.o" "gcc" "src/CMakeFiles/dfly.dir/workload/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
