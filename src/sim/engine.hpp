// Sequential discrete-event simulation engine.
//
// Design notes:
//  * Events carry a small POD payload and a handler pointer; dispatch is one
//    virtual call into the owning subsystem, which switches on `kind`. This
//    avoids a std::function allocation per event — the simulator schedules
//    tens of millions of events per experiment.
//  * Ties in time are broken by a monotonically increasing sequence number so
//    execution order (and therefore every simulation result) is fully
//    deterministic for a given seed.
//  * The pending-event set lives in a calendar queue (sim/event_queue.hpp):
//    O(1) amortised scheduling for the near-monotonic event stream, with a
//    heap-backed overflow tier for far-future timers. Dispatch order is
//    strict (time, seq), identical to the binary heap it replaced, so the
//    swap is invisible to results (see DESIGN.md §6).
//  * The engine is single-threaded; the study parallelises at the level of
//    independent experiment configurations (see core/run_matrix.hpp), which is
//    exactly how the paper's configuration sweeps decompose.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "util/units.hpp"

namespace dfly {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Schedules `payload` for delivery to `handler` at absolute time `when`.
  /// `when` must not precede the current time.
  void schedule(SimTime when, EventHandler* handler, EventPayload payload);

  /// Convenience: schedule relative to now().
  void schedule_after(SimTime delay, EventHandler* handler, EventPayload payload) {
    schedule(now_ + delay, handler, payload);
  }

  /// Runs until no events remain. Returns the final simulation time.
  SimTime run();

  /// Runs until the queue drains or time would exceed `deadline`; events at
  /// t > deadline stay queued. Returns current time.
  SimTime run_until(SimTime deadline);

  /// Like run_until(), but never advances now() past the last dispatched
  /// event, even when the queue drains. A run fully consumed through
  /// run_slice() calls therefore ends at exactly the same now() as one
  /// consumed by run() — checkpoint slicing depends on this for bit-exact
  /// resume (time-normalized outputs read the final clock).
  SimTime run_slice(SimTime deadline);

  SimTime now() const { return now_; }
  std::uint64_t events_processed() const { return processed_; }
  std::size_t pending() const { return queue_.size(); }

  /// Aborts run() after this many further events (0 = unlimited); used by
  /// tests as a deadlock/livelock watchdog.
  void set_event_limit(std::uint64_t limit) { event_limit_ = limit; }
  bool hit_event_limit() const { return hit_limit_; }

  /// Makes run()/run_until() return before dispatching any further event.
  /// Callable from inside an event handler (the HealthMonitor uses this to
  /// halt a stalled simulation while its state is still inspectable).
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  /// Occupancy and resize counters of the calendar scheduler (reported by
  /// HealthMonitor and metrics/).
  const SchedulerStats& scheduler_stats() const { return queue_.stats(); }

  /// Checkpoint support (src/ckpt/): serializes the clock, sequence counter,
  /// processed count and the complete pending-event set. Handlers are mapped
  /// to stable small ids by `id_of` / `handler_of` (the checkpoint layer owns
  /// the registry). load_state requires a freshly constructed engine.
  void save_state(ckpt::Writer& w,
                  const std::function<std::uint32_t(EventHandler*)>& id_of) const;
  void load_state(ckpt::Reader& r,
                  const std::function<EventHandler*(std::uint32_t)>& handler_of);

 private:
  bool step();

  CalendarEventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t event_limit_ = 0;
  bool hit_limit_ = false;
  bool stop_requested_ = false;
};

}  // namespace dfly
