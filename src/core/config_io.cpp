#include "core/config_io.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>
#include <type_traits>
#include <utility>

namespace dfly {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::int64_t parse_int(const std::string& value, const std::string& key) {
  std::size_t pos = 0;
  std::int64_t v = 0;
  try {
    v = std::stoll(value, &pos);
  } catch (const std::exception&) {
    throw std::runtime_error("config: bad integer for " + key + ": '" + value + "'");
  }
  if (pos != value.size())
    throw std::runtime_error("config: trailing junk in " + key + ": '" + value + "'");
  return v;
}

double parse_double(const std::string& value, const std::string& key) {
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    throw std::runtime_error("config: bad number for " + key + ": '" + value + "'");
  }
  if (pos != value.size())
    throw std::runtime_error("config: trailing junk in " + key + ": '" + value + "'");
  return v;
}

using Setter = std::function<void(ExperimentOptions&, const std::string&, const std::string&)>;

const std::map<std::string, Setter>& setters() {
  auto set_int = [](auto member) {
    return Setter([member](ExperimentOptions& o, const std::string& k, const std::string& v) {
      using T = std::remove_reference_t<decltype(std::invoke(member, o))>;
      const std::int64_t raw = parse_int(v, k);
      // Refuse values the member's type cannot hold instead of wrapping
      // silently on the narrowing cast.
      bool fits;
      if constexpr (std::is_same_v<T, bool>)
        fits = raw == 0 || raw == 1;
      else
        fits = std::in_range<T>(raw);
      if (!fits)
        throw std::runtime_error("config: value out of range for " + k + ": '" + v + "'");
      std::invoke(member, o) = static_cast<T>(raw);
    });
  };
  auto set_double = [](auto member) {
    return Setter([member](ExperimentOptions& o, const std::string& k, const std::string& v) {
      std::invoke(member, o) = parse_double(v, k);
    });
  };
  static const std::map<std::string, Setter> map = {
      {"topology.groups", set_int([](ExperimentOptions& o) -> int& { return o.topo.groups; })},
      {"topology.rows", set_int([](ExperimentOptions& o) -> int& { return o.topo.rows; })},
      {"topology.cols", set_int([](ExperimentOptions& o) -> int& { return o.topo.cols; })},
      {"topology.nodes_per_router",
       set_int([](ExperimentOptions& o) -> int& { return o.topo.nodes_per_router; })},
      {"topology.global_ports_per_router",
       set_int([](ExperimentOptions& o) -> int& { return o.topo.global_ports_per_router; })},
      {"topology.chassis_per_cabinet",
       set_int([](ExperimentOptions& o) -> int& { return o.topo.chassis_per_cabinet; })},
      {"network.chunk_bytes",
       set_int([](ExperimentOptions& o) -> Bytes& { return o.net.chunk_bytes; })},
      {"network.terminal_bandwidth_gib",
       set_double([](ExperimentOptions& o) -> double& { return o.net.terminal_bandwidth_gib; })},
      {"network.local_bandwidth_gib",
       set_double([](ExperimentOptions& o) -> double& { return o.net.local_bandwidth_gib; })},
      {"network.global_bandwidth_gib",
       set_double([](ExperimentOptions& o) -> double& { return o.net.global_bandwidth_gib; })},
      {"network.terminal_latency_ns",
       set_int([](ExperimentOptions& o) -> SimTime& { return o.net.terminal_latency; })},
      {"network.local_latency_ns",
       set_int([](ExperimentOptions& o) -> SimTime& { return o.net.local_latency; })},
      {"network.global_latency_ns",
       set_int([](ExperimentOptions& o) -> SimTime& { return o.net.global_latency; })},
      {"network.router_delay_ns",
       set_int([](ExperimentOptions& o) -> SimTime& { return o.net.router_delay; })},
      {"network.terminal_vc_buffer",
       set_int([](ExperimentOptions& o) -> Bytes& { return o.net.terminal_vc_buffer; })},
      {"network.local_vc_buffer",
       set_int([](ExperimentOptions& o) -> Bytes& { return o.net.local_vc_buffer; })},
      {"network.global_vc_buffer",
       set_int([](ExperimentOptions& o) -> Bytes& { return o.net.global_vc_buffer; })},
      {"network.retransmit_timeout_ns",
       set_int([](ExperimentOptions& o) -> SimTime& { return o.net.retransmit_timeout; })},
      {"network.retransmit_max_backoff",
       set_int([](ExperimentOptions& o) -> int& { return o.net.retransmit_max_backoff; })},
      {"health.enabled",
       set_int([](ExperimentOptions& o) -> bool& { return o.health.enabled; })},
      {"health.interval_ns",
       set_int([](ExperimentOptions& o) -> SimTime& { return o.health.interval; })},
      {"health.stall_ticks",
       set_int([](ExperimentOptions& o) -> int& { return o.health.stall_ticks; })},
      // Repeatable: each line appends one timed fault event. Grammar:
      //   link = <down|up> global <group_a> <group_b> <all_link_index> <time_ns>
      //   link = <down|up> local <router_u> <router_v> <time_ns>
      {"faults.link",
       Setter([](ExperimentOptions& o, const std::string& k, const std::string& v) {
         std::istringstream in(v);
         std::string state, scope;
         if (!(in >> state >> scope) || (state != "down" && state != "up"))
           throw std::runtime_error("config: bad fault line for " + k + ": '" + v + "'");
         const bool down = state == "down";
         if (scope == "global") {
           long long a = 0, b = 0, index = 0, t = 0;
           if (!(in >> a >> b >> index >> t))
             throw std::runtime_error("config: bad global fault for " + k + ": '" + v + "'");
           o.faults.push_back(down ? FaultEvent::global_down(t, static_cast<GroupId>(a),
                                                             static_cast<GroupId>(b),
                                                             static_cast<int>(index))
                                   : FaultEvent::global_up(t, static_cast<GroupId>(a),
                                                           static_cast<GroupId>(b),
                                                           static_cast<int>(index)));
         } else if (scope == "local") {
           long long u = 0, w = 0, t = 0;
           if (!(in >> u >> w >> t))
             throw std::runtime_error("config: bad local fault for " + k + ": '" + v + "'");
           o.faults.push_back(down ? FaultEvent::local_down(t, static_cast<RouterId>(u),
                                                            static_cast<RouterId>(w))
                                   : FaultEvent::local_up(t, static_cast<RouterId>(u),
                                                          static_cast<RouterId>(w)));
         } else {
           throw std::runtime_error("config: unknown fault scope '" + scope + "' for " + k);
         }
         std::string rest;
         if (in >> rest)
           throw std::runtime_error("config: trailing junk in " + k + ": '" + v + "'");
       })},
      {"engine.threads",
       Setter([](ExperimentOptions& o, const std::string& k, const std::string& v) {
         const std::int64_t raw = parse_int(v, k);
         if (raw < 0 || !std::in_range<int>(raw))
           throw std::runtime_error("config: " + k + " must be >= 0 (0 = serial engine): '" + v +
                                    "'");
         o.threads = static_cast<int>(raw);
       })},
      {"telemetry.enabled",
       set_int([](ExperimentOptions& o) -> bool& { return o.telemetry.enabled; })},
      {"telemetry.sample_rate",
       set_double([](ExperimentOptions& o) -> double& { return o.telemetry.sample_rate; })},
      {"telemetry.out_dir",
       Setter([](ExperimentOptions& o, const std::string&, const std::string& v) {
         o.telemetry.out_dir = v;
       })},
      {"telemetry.chrome_trace",
       set_int([](ExperimentOptions& o) -> bool& { return o.telemetry.chrome_trace; })},
      {"telemetry.snapshot_interval_ns",
       set_int([](ExperimentOptions& o) -> SimTime& { return o.telemetry.snapshot_interval; })},
      {"farm.enabled",
       set_int([](ExperimentOptions& o) -> bool& { return o.farm.enabled; })},
      {"farm.workers",
       set_int([](ExperimentOptions& o) -> int& { return o.farm.workers; })},
      {"farm.timeout_ms",
       set_int([](ExperimentOptions& o) -> std::int64_t& { return o.farm.timeout_ms; })},
      {"farm.retries",
       set_int([](ExperimentOptions& o) -> int& { return o.farm.retries; })},
      {"farm.backoff_ms",
       set_int([](ExperimentOptions& o) -> std::int64_t& { return o.farm.backoff_ms; })},
      {"farm.backoff_factor",
       set_double([](ExperimentOptions& o) -> double& { return o.farm.backoff_factor; })},
      {"farm.jitter",
       set_double([](ExperimentOptions& o) -> double& { return o.farm.jitter; })},
      {"farm.chaos_kill_rate",
       set_double([](ExperimentOptions& o) -> double& { return o.farm.chaos_kill_rate; })},
      {"farm.chaos_stop_rate",
       set_double([](ExperimentOptions& o) -> double& { return o.farm.chaos_stop_rate; })},
      {"farm.chaos_delay_ms",
       set_int([](ExperimentOptions& o) -> std::int64_t& { return o.farm.chaos_delay_ms; })},
      {"farm.chaos_max_injections",
       set_int([](ExperimentOptions& o) -> std::int64_t& { return o.farm.chaos_max_injections; })},
      {"farm.chaos_seed",
       set_int([](ExperimentOptions& o) -> std::uint64_t& { return o.farm.chaos_seed; })},
      {"prof.enabled",
       set_int([](ExperimentOptions& o) -> bool& { return o.prof.enabled; })},
      {"prof.heartbeat_period_ms",
       set_int([](ExperimentOptions& o) -> std::int64_t& { return o.prof.heartbeat_period_ms; })},
      {"prof.hist_bucket_bits",
       set_int([](ExperimentOptions& o) -> int& { return o.prof.hist_bucket_bits; })},
      {"checkpoint.interval_ns",
       set_int([](ExperimentOptions& o) -> SimTime& { return o.checkpoint.interval; })},
      {"checkpoint.path",
       Setter([](ExperimentOptions& o, const std::string&, const std::string& v) {
         o.checkpoint.path = v;
       })},
      {"checkpoint.resume",
       set_int([](ExperimentOptions& o) -> bool& { return o.checkpoint.resume; })},
      {"checkpoint.stop_after_ns",
       set_int([](ExperimentOptions& o) -> SimTime& { return o.checkpoint.stop_after; })},
      {"experiment.seed",
       set_int([](ExperimentOptions& o) -> std::uint64_t& { return o.seed; })},
      {"experiment.msg_scale",
       set_double([](ExperimentOptions& o) -> double& { return o.msg_scale; })},
      {"experiment.max_events",
       set_int([](ExperimentOptions& o) -> std::uint64_t& { return o.max_events; })},
      {"experiment.eager_threshold",
       set_int([](ExperimentOptions& o) -> Bytes& { return o.replay.eager_threshold; })},
      {"experiment.control_bytes",
       set_int([](ExperimentOptions& o) -> Bytes& { return o.replay.control_bytes; })},
  };
  return map;
}

}  // namespace

ExperimentOptions parse_config(std::istream& is, ExperimentOptions defaults) {
  ExperimentOptions options = defaults;
  std::string line;
  std::string section;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']')
        throw std::runtime_error("config: malformed section at line " + std::to_string(line_no));
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw std::runtime_error("config: expected key = value at line " + std::to_string(line_no));
    const std::string key = section + "." + trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    const auto it = setters().find(key);
    if (it == setters().end())
      throw std::runtime_error("config: unknown key '" + key + "' at line " +
                               std::to_string(line_no));
    it->second(options, key, value);
  }
  options.topo.validate();
  options.net.validate();
  options.telemetry.validate();
  options.farm.validate();
  options.prof.validate();
  return options;
}

ExperimentOptions load_config(const std::string& path, ExperimentOptions defaults) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("config: cannot open " + path);
  return parse_config(f, defaults);
}

std::string render_config(const ExperimentOptions& o) {
  std::ostringstream os;
  os << "# dragonfly-tradeoff experiment configuration\n";
  os << "[topology]\n";
  os << "groups = " << o.topo.groups << "\n";
  os << "rows = " << o.topo.rows << "\n";
  os << "cols = " << o.topo.cols << "\n";
  os << "nodes_per_router = " << o.topo.nodes_per_router << "\n";
  os << "global_ports_per_router = " << o.topo.global_ports_per_router << "\n";
  os << "chassis_per_cabinet = " << o.topo.chassis_per_cabinet << "\n";
  os << "\n[network]\n";
  os << "chunk_bytes = " << o.net.chunk_bytes << "\n";
  os << "terminal_bandwidth_gib = " << o.net.terminal_bandwidth_gib << "\n";
  os << "local_bandwidth_gib = " << o.net.local_bandwidth_gib << "\n";
  os << "global_bandwidth_gib = " << o.net.global_bandwidth_gib << "\n";
  os << "terminal_latency_ns = " << o.net.terminal_latency << "\n";
  os << "local_latency_ns = " << o.net.local_latency << "\n";
  os << "global_latency_ns = " << o.net.global_latency << "\n";
  os << "router_delay_ns = " << o.net.router_delay << "\n";
  os << "terminal_vc_buffer = " << o.net.terminal_vc_buffer << "\n";
  os << "local_vc_buffer = " << o.net.local_vc_buffer << "\n";
  os << "global_vc_buffer = " << o.net.global_vc_buffer << "\n";
  os << "retransmit_timeout_ns = " << o.net.retransmit_timeout << "\n";
  os << "retransmit_max_backoff = " << o.net.retransmit_max_backoff << "\n";
  os << "\n[engine]\n";
  os << "threads = " << o.threads << "\n";
  os << "\n[health]\n";
  os << "enabled = " << (o.health.enabled ? 1 : 0) << "\n";
  os << "interval_ns = " << o.health.interval << "\n";
  os << "stall_ticks = " << o.health.stall_ticks << "\n";
  os << "\n[telemetry]\n";
  os << "enabled = " << (o.telemetry.enabled ? 1 : 0) << "\n";
  os << "sample_rate = " << o.telemetry.sample_rate << "\n";
  os << "out_dir = " << o.telemetry.out_dir << "\n";
  os << "chrome_trace = " << (o.telemetry.chrome_trace ? 1 : 0) << "\n";
  os << "snapshot_interval_ns = " << o.telemetry.snapshot_interval << "\n";
  os << "\n[farm]\n";
  os << "enabled = " << (o.farm.enabled ? 1 : 0) << "\n";
  os << "workers = " << o.farm.workers << "\n";
  os << "timeout_ms = " << o.farm.timeout_ms << "\n";
  os << "retries = " << o.farm.retries << "\n";
  os << "backoff_ms = " << o.farm.backoff_ms << "\n";
  os << "backoff_factor = " << o.farm.backoff_factor << "\n";
  os << "jitter = " << o.farm.jitter << "\n";
  os << "chaos_kill_rate = " << o.farm.chaos_kill_rate << "\n";
  os << "chaos_stop_rate = " << o.farm.chaos_stop_rate << "\n";
  os << "chaos_delay_ms = " << o.farm.chaos_delay_ms << "\n";
  os << "chaos_max_injections = " << o.farm.chaos_max_injections << "\n";
  os << "chaos_seed = " << o.farm.chaos_seed << "\n";
  os << "\n[prof]\n";
  os << "enabled = " << (o.prof.enabled ? 1 : 0) << "\n";
  os << "heartbeat_period_ms = " << o.prof.heartbeat_period_ms << "\n";
  os << "hist_bucket_bits = " << o.prof.hist_bucket_bits << "\n";
  os << "\n[checkpoint]\n";
  os << "interval_ns = " << o.checkpoint.interval << "\n";
  if (!o.checkpoint.path.empty()) os << "path = " << o.checkpoint.path << "\n";
  os << "resume = " << (o.checkpoint.resume ? 1 : 0) << "\n";
  os << "stop_after_ns = " << o.checkpoint.stop_after << "\n";
  os << "\n[experiment]\n";
  os << "seed = " << o.seed << "\n";
  os << "msg_scale = " << o.msg_scale << "\n";
  os << "max_events = " << o.max_events << "\n";
  os << "eager_threshold = " << o.replay.eager_threshold << "\n";
  os << "control_bytes = " << o.replay.control_bytes << "\n";
  if (!o.faults.empty()) {
    os << "\n[faults]\n";
    for (const FaultEvent& f : o.faults) {
      os << "link = " << (f.is_down() ? "down" : "up") << " ";
      if (f.is_global())
        os << "global " << f.a << " " << f.b << " " << f.index << " " << f.time << "\n";
      else
        os << "local " << f.u << " " << f.v << " " << f.time << "\n";
    }
  }
  return os.str();
}

}  // namespace dfly
