// Routing algorithm interface.
//
// Routes are computed per packet chunk at injection time (source routing).
// Adaptive routing consults a CongestionView exposing the source router's
// output queue depths — the information a UGAL-L implementation has locally.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "routing/route.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dfly {

class DragonflyTopology;

/// Read-only view of router output-channel occupancy, provided by the
/// network; queued_bytes includes chunks waiting for the channel but not the
/// chunk currently on the wire.
class CongestionView {
 public:
  virtual ~CongestionView() = default;
  virtual Bytes queued_bytes(RouterId router, int port) const = 0;
};

/// Per-source-router adaptive-decision counters: how often the source chose a
/// minimal vs. a nonminimal (Valiant) candidate, and the congestion scores
/// that drove the choice.
struct RouteDecisionStats {
  std::uint64_t minimal = 0;     ///< decisions won by a minimal candidate
  std::uint64_t nonminimal = 0;  ///< decisions won by a Valiant candidate
  double winning_score_sum = 0;     ///< score of the chosen candidate
  double minimal_score_sum = 0;     ///< best minimal candidate's score
  double nonminimal_score_sum = 0;  ///< best nonminimal candidate's score
};

/// Decision telemetry an adaptive algorithm records into when a sink is
/// installed via RoutingAlgorithm::set_telemetry (observability layer,
/// src/obs/). Indexed by source router; grows lazily unless presize()d.
///
/// Thread-safety under the sharded engine: record() touches only the source
/// router's slot, and routes are computed on the source's lane — distinct
/// lanes write distinct slots. The aggregate totals are therefore *summed on
/// read* instead of kept as shared counters, and a sharded run must
/// presize() the vector up front so record() never resizes concurrently.
class RoutingTelemetry {
 public:
  /// Pre-allocates one slot per source router (required before sharded use;
  /// unsharded runs may skip it and keep the lazily-grown vector).
  void presize(int total_routers) {
    if (static_cast<std::size_t>(total_routers) > per_source_.size())
      per_source_.resize(static_cast<std::size_t>(total_routers));
  }

  void record(RouterId src, bool chose_minimal, double winning_score, double best_minimal_score,
              double best_nonminimal_score) {
    if (static_cast<std::size_t>(src) >= per_source_.size()) per_source_.resize(src + 1);
    RouteDecisionStats& d = per_source_[src];
    (chose_minimal ? d.minimal : d.nonminimal) += 1;
    d.winning_score_sum += winning_score;
    d.minimal_score_sum += best_minimal_score;
    d.nonminimal_score_sum += best_nonminimal_score;
  }

  std::uint64_t decisions() const { return minimal_total() + nonminimal_total(); }
  std::uint64_t minimal_total() const {
    std::uint64_t n = 0;
    for (const RouteDecisionStats& d : per_source_) n += d.minimal;
    return n;
  }
  std::uint64_t nonminimal_total() const {
    std::uint64_t n = 0;
    for (const RouteDecisionStats& d : per_source_) n += d.nonminimal;
    return n;
  }
  const std::vector<RouteDecisionStats>& per_source() const { return per_source_; }

  /// Checkpoint support (src/ckpt/): wholesale state replacement on restore
  /// (the totals are derived, so the per-source table is the whole state).
  void restore(std::vector<RouteDecisionStats> per_source) {
    per_source_ = std::move(per_source);
  }

 private:
  std::vector<RouteDecisionStats> per_source_;
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  /// Installs (or, with nullptr, removes) a decision-telemetry sink. The sink
  /// must outlive route computations. Algorithms without an adaptive choice
  /// (minimal, Valiant) never record into it.
  void set_telemetry(RoutingTelemetry* telemetry) { telemetry_ = telemetry; }

  /// Computes a complete route for one chunk from node `src` to node `dst`
  /// (src != dst), including the final ejection hop.
  virtual Route compute(NodeId src, NodeId dst, const CongestionView& congestion,
                        Rng& rng) const = 0;

  /// Notifies the algorithm that topology link state changed (links failed or
  /// recovered mid-run); implementations rebuild whatever they precomputed.
  virtual void on_topology_changed() {}

  /// True when compute() reads congestion state beyond the source router's
  /// own output queues (UGAL-G scores whole candidate paths). The sharded
  /// network cannot partition such reads by group, so it keeps these runs on
  /// the serial dispatch path (Network::enable_sharding becomes a no-op).
  virtual bool uses_remote_congestion() const { return false; }

  virtual std::string name() const = 0;

 protected:
  RoutingTelemetry* telemetry_ = nullptr;  ///< null = telemetry disabled
};

enum class RoutingKind { Minimal, Adaptive, Valiant, AdaptiveGlobal };

const char* to_string(RoutingKind kind);

/// Factory. The returned algorithm keeps a reference to `topo`, which must
/// outlive it.
std::unique_ptr<RoutingAlgorithm> make_routing(RoutingKind kind, const DragonflyTopology& topo);

}  // namespace dfly
