// Configuration of the crash-isolated sweep farm ([farm] section of config
// files). The farm (src/farm/supervisor.hpp) runs each sweep config in its own
// worker process with a wall-clock watchdog, retries failed attempts with
// exponential backoff + jitter, and quarantines configs that exhaust their
// retry budget. Chaos mode self-tests the recovery machinery by randomly
// SIGKILLing / SIGSTOPping the farm's own workers.
#pragma once

#include <cstdint>
#include <string>

namespace dfly {

struct FarmOptions {
  /// run_matrix delegates to the process farm instead of the thread pool.
  bool enabled = false;
  /// Concurrent worker processes.
  int workers = 4;
  /// Wall-clock watchdog per attempt; a worker past this is SIGTERMed (it
  /// flushes a final checkpoint and exits) and SIGKILLed after a grace period.
  std::int64_t timeout_ms = 60'000;
  /// Retry budget per config: a config gets 1 + retries attempts before it is
  /// quarantined. Retries resume from the config's .ckpt snapshot if one was
  /// taken, so work done before the failure is never repeated.
  int retries = 2;
  /// First retry delay; attempt n waits backoff_ms * backoff_factor^(n-1),
  /// capped at kMaxBackoffMs, minus up to `jitter` of itself (decorrelation).
  std::int64_t backoff_ms = 250;
  double backoff_factor = 2.0;
  /// Fraction of the backoff delay randomized away, in [0, 1].
  double jitter = 0.25;

  // --- chaos self-test mode --------------------------------------------
  /// Per-attempt probability that the supervisor SIGKILLs (kill_rate) or
  /// SIGSTOPs (stop_rate) its own worker at a random point within
  /// chaos_delay_ms of the spawn. A stopped worker makes no progress, so the
  /// supervisor shortens its watchdog deadline to the injection horizon —
  /// chaos exercises the full timeout -> SIGCONT+SIGTERM -> checkpoint-flush
  /// -> resume path without waiting out the real timeout.
  double chaos_kill_rate = 0.0;
  double chaos_stop_rate = 0.0;
  std::int64_t chaos_delay_ms = 200;
  /// Total injections across the whole sweep; -1 = unlimited.
  std::int64_t chaos_max_injections = -1;
  std::uint64_t chaos_seed = 1;

  // --- test-only hooks (not config keys) -------------------------------
  /// Worker for this config name ignores SIGTERM and hangs forever — the
  /// deterministic "stuck config" for watchdog/quarantine tests.
  std::string hang_config;
  /// Worker for this config name calls abort() on entry — the deterministic
  /// "crashing config" for exit-classification tests.
  std::string crash_config;

  /// Throws std::invalid_argument on zero/negative worker counts, timeouts,
  /// retry budgets or backoff parameters, rates outside [0, 1], etc.
  void validate() const;
};

}  // namespace dfly
