// Minimal streaming JSON writer for the observability layer.
//
// Every machine-readable artifact the simulator emits (run metrics, counter
// snapshots, Chrome trace events, bench records) goes through this writer so
// escaping, number formatting and nesting bookkeeping live in one place. The
// writer is strictly streaming — no DOM — because trace files can hold
// hundreds of thousands of events.
//
// indent > 0 renders pretty-printed JSON; indent <= 0 renders one compact
// line (the JSONL form the counter snapshots use).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace dfly::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes excluded).
std::string json_escape(const std::string& s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 2);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next value()/begin_*() call is its value.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  /// Non-finite doubles are emitted as null (strict JSON has no NaN/Inf).
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null_value();
  /// Splices `json` verbatim as the next value — no escaping, no validation.
  /// For embedding an already-rendered document (e.g. a worker's status.json
  /// inside farm_status.json); the caller owns its well-formedness.
  JsonWriter& raw_value(const std::string& json);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  /// Depth of open containers; 0 once the document is complete.
  std::size_t depth() const { return stack_.size(); }

 private:
  struct Level {
    bool array = false;
    bool first = true;
  };

  void before_value();
  void newline();

  std::ostream& os_;
  int indent_;
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

}  // namespace dfly::obs
