#include "core/run_matrix.hpp"

#include <atomic>
#include <exception>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "farm/supervisor.hpp"
#include "farm/worker.hpp"

namespace dfly {

std::vector<ExperimentResult> run_matrix(const Workload& workload,
                                         const std::vector<ExperimentConfig>& configs,
                                         const ExperimentOptions& options, int threads) {
  // Farm mode: process isolation, watchdogs, retry/backoff and quarantine
  // (src/farm/). run_matrix keeps its all-or-nothing contract on top of the
  // farm's graceful degradation: a quarantined or interrupted config throws
  // here; callers wanting partial results call farm::run_farm directly.
  if (options.farm.enabled) {
    const farm::FarmReport report = farm::run_farm(workload, configs, options);
    std::vector<ExperimentResult> results;
    results.reserve(report.outcomes.size());
    for (const farm::ConfigOutcome& o : report.outcomes) {
      if (!o.completed)
        throw std::runtime_error("run_matrix: farm did not complete config " + o.config + " (" +
                                 std::string(farm::to_string(o.final_outcome)) +
                                 (o.error.empty() ? "" : ": " + o.error) + ")");
      results.push_back(o.result);
    }
    return results;
  }

  if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  threads = std::min<int>(threads, static_cast<int>(configs.size()));

  namespace fs = std::filesystem;
  const bool checkpointing = options.checkpoint.active();
  if (checkpointing) fs::create_directories(options.checkpoint.path);

  const DragonflyTopology topo(options.topo);
  std::vector<ExperimentResult> results(configs.size());
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      // Graceful shutdown: once the stop flag is raised, in-flight configs
      // park at their next snapshot (run_experiment handles that) and no new
      // ones are claimed — the sweep resumes from the .ckpt/.done markers.
      if (checkpointing && options.checkpoint.stop_flag &&
          options.checkpoint.stop_flag->load(std::memory_order_relaxed))
        return;
      const std::size_t i = next.fetch_add(1);
      if (i >= configs.size()) return;
      try {
        results[i] = checkpointing
                         ? farm::run_sweep_config(workload, configs[i], options, &topo)
                         : run_experiment(workload, configs[i], options, &topo);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace dfly
