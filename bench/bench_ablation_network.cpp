// Ablation study over the simulator's own modelling choices (DESIGN.md §4):
// chunk size, router pipeline delay, VC buffer depth, and the UGAL
// nonminimal penalty. Each knob is varied on the CR workload under the two
// extreme configurations; the point is to show which conclusions are robust
// to the model parameters and which knob moves what.
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace dfly;

struct Variant {
  std::string name;
  NetworkParams net;
};

void run_variants(const Workload& workload, const std::vector<Variant>& variants,
                  std::uint64_t seed, const std::string& title) {
  Table t(title);
  t.set_columns({"variant", "cont-min median (ms)", "rand-adp median (ms)", "cont/rand ratio"});
  for (const Variant& v : variants) {
    ExperimentOptions options;
    options.seed = seed;
    options.net = v.net;
    const std::vector<ExperimentConfig> configs = {
        {PlacementKind::Contiguous, RoutingKind::Minimal},
        {PlacementKind::RandomNode, RoutingKind::Adaptive}};
    const auto results = run_matrix(workload, configs, options, bench::bench_threads());
    const double cont = results[0].metrics.median_comm_ms();
    const double rand = results[1].metrics.median_comm_ms();
    t.add_row({v.name, Table::num(cont, 3), Table::num(rand, 3),
               Table::num(rand > 0 ? cont / rand : 0, 2)});
  }
  t.print_markdown(std::cout);
}

}  // namespace

int main() {
  using namespace dfly;
  const double scale = env_scale(0.1);  // lighter load: many variants to run
  const std::uint64_t seed = env_seed(42);
  print_bench_header("Ablation", "model-parameter sensitivity of the trade-off", scale, seed);

  const Workload cr = bench::cr_workload(scale);

  {
    std::vector<Variant> variants;
    for (const Bytes chunk : {512l, 2048l, 8192l}) {
      NetworkParams net = NetworkParams::theta();
      net.chunk_bytes = chunk;
      variants.push_back({"chunk=" + std::to_string(chunk) + "B", net});
    }
    run_variants(cr, variants, seed, "Ablation: packet chunk size (CR)");
  }
  {
    std::vector<Variant> variants;
    for (const SimTime delay : {0l, 250l, 500l, 1000l}) {
      NetworkParams net = NetworkParams::theta();
      net.router_delay = delay;
      variants.push_back({"router_delay=" + std::to_string(delay) + "ns", net});
    }
    run_variants(cr, variants, seed, "Ablation: router pipeline delay (CR)");
  }
  {
    std::vector<Variant> variants;
    for (const int mult : {1, 2, 4}) {
      NetworkParams net = NetworkParams::theta();
      net.terminal_vc_buffer *= mult;
      net.local_vc_buffer *= mult;
      net.global_vc_buffer *= mult;
      variants.push_back({"buffers x" + std::to_string(mult), net});
    }
    run_variants(cr, variants, seed, "Ablation: VC buffer depth (CR)");
  }
  {
    // Bandwidth ratio: what if global links matched local bandwidth?
    std::vector<Variant> variants;
    NetworkParams theta = NetworkParams::theta();
    variants.push_back({"theta (4.69 GiB/s global)", theta});
    NetworkParams fat = theta;
    fat.global_bandwidth_gib = theta.local_bandwidth_gib;
    variants.push_back({"global=local bandwidth", fat});
    run_variants(cr, variants, seed, "Ablation: global link bandwidth (CR)");
  }
  return 0;
}
