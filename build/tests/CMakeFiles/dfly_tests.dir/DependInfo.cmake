
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arbitration_test.cpp" "tests/CMakeFiles/dfly_tests.dir/arbitration_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/arbitration_test.cpp.o.d"
  "/root/repo/tests/background_test.cpp" "tests/CMakeFiles/dfly_tests.dir/background_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/background_test.cpp.o.d"
  "/root/repo/tests/collectives_test.cpp" "tests/CMakeFiles/dfly_tests.dir/collectives_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/collectives_test.cpp.o.d"
  "/root/repo/tests/config_io_test.cpp" "tests/CMakeFiles/dfly_tests.dir/config_io_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/config_io_test.cpp.o.d"
  "/root/repo/tests/conservation_test.cpp" "tests/CMakeFiles/dfly_tests.dir/conservation_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/conservation_test.cpp.o.d"
  "/root/repo/tests/engine_test.cpp" "tests/CMakeFiles/dfly_tests.dir/engine_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/engine_test.cpp.o.d"
  "/root/repo/tests/fault_test.cpp" "tests/CMakeFiles/dfly_tests.dir/fault_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/fault_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/dfly_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/log_test.cpp" "tests/CMakeFiles/dfly_tests.dir/log_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/log_test.cpp.o.d"
  "/root/repo/tests/mapping_test.cpp" "tests/CMakeFiles/dfly_tests.dir/mapping_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/mapping_test.cpp.o.d"
  "/root/repo/tests/metrics_test.cpp" "tests/CMakeFiles/dfly_tests.dir/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/metrics_test.cpp.o.d"
  "/root/repo/tests/min_hops_bfs_test.cpp" "tests/CMakeFiles/dfly_tests.dir/min_hops_bfs_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/min_hops_bfs_test.cpp.o.d"
  "/root/repo/tests/misc_edge_test.cpp" "tests/CMakeFiles/dfly_tests.dir/misc_edge_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/misc_edge_test.cpp.o.d"
  "/root/repo/tests/network_edge_test.cpp" "tests/CMakeFiles/dfly_tests.dir/network_edge_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/network_edge_test.cpp.o.d"
  "/root/repo/tests/network_test.cpp" "tests/CMakeFiles/dfly_tests.dir/network_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/network_test.cpp.o.d"
  "/root/repo/tests/one_d_dragonfly_test.cpp" "tests/CMakeFiles/dfly_tests.dir/one_d_dragonfly_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/one_d_dragonfly_test.cpp.o.d"
  "/root/repo/tests/placement_test.cpp" "tests/CMakeFiles/dfly_tests.dir/placement_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/placement_test.cpp.o.d"
  "/root/repo/tests/rendezvous_test.cpp" "tests/CMakeFiles/dfly_tests.dir/rendezvous_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/rendezvous_test.cpp.o.d"
  "/root/repo/tests/replay_test.cpp" "tests/CMakeFiles/dfly_tests.dir/replay_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/replay_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/dfly_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/route_test.cpp" "tests/CMakeFiles/dfly_tests.dir/route_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/route_test.cpp.o.d"
  "/root/repo/tests/routing_test.cpp" "tests/CMakeFiles/dfly_tests.dir/routing_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/routing_test.cpp.o.d"
  "/root/repo/tests/scaling_property_test.cpp" "tests/CMakeFiles/dfly_tests.dir/scaling_property_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/scaling_property_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/dfly_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/timeline_test.cpp" "tests/CMakeFiles/dfly_tests.dir/timeline_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/timeline_test.cpp.o.d"
  "/root/repo/tests/topo_test.cpp" "tests/CMakeFiles/dfly_tests.dir/topo_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/topo_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/dfly_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/dfly_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/validation_test.cpp" "tests/CMakeFiles/dfly_tests.dir/validation_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/validation_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/dfly_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/dfly_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dfly.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
