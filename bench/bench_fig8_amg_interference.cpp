// Reproduces Fig. 8: AMG under uniform-random background traffic —
// communication time per configuration plus local/global channel traffic on
// the routers serving AMG.
//
// Paper shape: cont-min and cab-min suffer the least (minimal routing keeps
// background packets off AMG's routers; contiguous placement confines its
// neighbor traffic); rand-adp is by far the worst — adaptive routing steers
// background traffic through AMG's routers.
#include "bench_interference.hpp"

int main() {
  using namespace dfly;
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  print_bench_header("Fig. 8", "AMG under uniform-random background traffic", scale, seed);

  ExperimentOptions options;
  options.seed = seed;
  const Workload amg = bench::amg_workload(scale);
  // 1728 background nodes x 16 KB = 27.6 MB per tick (Table II: 27 MB). The
  // 1 us interval keeps every background NIC continuously sending, the
  // paper's "background traffic that contiguously sends messages".
  const BackgroundSpec spec = bench::uniform_background(16 * units::kKB, units::kMicrosecond, scale);
  bench::run_interference_figure(amg, options, spec, /*traffic_tables=*/true);
  return 0;
}
