# Empty compiler generated dependencies file for bench_fig6_amg_network.
# This may be replaced when dependencies are built.
