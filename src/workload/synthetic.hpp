// Synthetic kernels used by tests, examples and the ablation benches:
// uniform-random pairs, ring, nearest-neighbor stencil, permutation and
// all-to-all traffic as traces.
#pragma once

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace dfly {

/// Every rank exchanges `bytes` with its +1 ring neighbor (wrapping),
/// repeated `iterations` times with a phase barrier between rounds.
Trace make_ring_trace(int ranks, Bytes bytes, int iterations = 1);

/// `pairs` uniformly random disjoint rank pairs exchange `bytes`.
Trace make_random_pairs_trace(int ranks, int pairs, Bytes bytes, Rng& rng);

/// Each rank sends `bytes` to a fixed random permutation target and receives
/// from its inverse source (classic adversarial pattern for minimal routing).
Trace make_permutation_trace(int ranks, Bytes bytes, Rng& rng);

/// Dense all-to-all: every rank exchanges `bytes` with every other rank.
/// Quadratic; intended for small rank counts.
Trace make_all_to_all_trace(int ranks, Bytes bytes);

}  // namespace dfly
