// Sweep-farm tests: the pure retry/classification policy (no forking), option
// validation, and the full supervisor — chaos kill recovery, watchdog
// quarantine of a hung worker, crash containment, and graceful shutdown with
// checkpoint-based resume. Process-spawning tests use the tiny topology so
// each worker attempt completes in well under a second.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/run_matrix.hpp"
#include "farm/manifest.hpp"
#include "farm/retry.hpp"
#include "farm/signals.hpp"
#include "farm/supervisor.hpp"
#include "farm/worker.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

namespace fs = std::filesystem;
using farm::ExitClass;
using farm::ExitInfo;

std::string temp_path(const std::string& name) { return ::testing::TempDir() + "/" + name; }

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------------
// Exit decoding and classification (pure; no processes)
// ---------------------------------------------------------------------------

/// Forks a child that runs `die` and returns the decoded waitpid status —
/// decode_wait_status is exercised against real kernel status words, not a
/// hand-built encoding.
ExitInfo reap_child(void (*die)()) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    die();
    ::_exit(99);  // unreachable for signal deaths
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return farm::decode_wait_status(status);
}

TEST(FarmExit, DecodesNormalExit) {
  const ExitInfo info = reap_child(+[] { ::_exit(farm::kExitTransient); });
  EXPECT_TRUE(info.exited);
  EXPECT_EQ(info.code, farm::kExitTransient);
  EXPECT_EQ(info.signal, 0);
  EXPECT_FALSE(info.timed_out);
}

TEST(FarmExit, DecodesSignalDeath) {
  const ExitInfo info = reap_child(+[] { ::raise(SIGKILL); });
  EXPECT_FALSE(info.exited);
  EXPECT_EQ(info.signal, SIGKILL);
}

ExitInfo exited_with(int code) {
  ExitInfo info;
  info.exited = true;
  info.code = code;
  return info;
}

TEST(FarmExit, ClassificationFollowsTheProtocol) {
  EXPECT_EQ(farm::classify_exit(exited_with(farm::kExitOk)), ExitClass::Ok);
  EXPECT_EQ(farm::classify_exit(exited_with(farm::kExitTransient)), ExitClass::Transient);
  EXPECT_EQ(farm::classify_exit(exited_with(farm::kExitInterrupted)), ExitClass::Interrupted);
  EXPECT_EQ(farm::classify_exit(exited_with(farm::kExitPermanent)), ExitClass::Permanent);
  EXPECT_EQ(farm::classify_exit(exited_with(farm::kExitCrash)), ExitClass::Crash);
  // Off-protocol exit codes are not trusted to self-report: crash.
  EXPECT_EQ(farm::classify_exit(exited_with(1)), ExitClass::Crash);
  EXPECT_EQ(farm::classify_exit(exited_with(137)), ExitClass::Crash);
}

TEST(FarmExit, SignalDeathIsACrash) {
  ExitInfo info;
  info.signal = SIGSEGV;
  EXPECT_EQ(farm::classify_exit(info), ExitClass::Crash);
}

TEST(FarmExit, WatchdogTimeoutWinsOverEverything) {
  // The watchdog's SIGTERM may land as a clean kExitInterrupted (the worker
  // flushed a checkpoint) or as a SIGKILL death — both must classify as
  // Timeout so the retry resumes instead of treating the attempt as settled.
  ExitInfo terminated = exited_with(farm::kExitInterrupted);
  terminated.timed_out = true;
  EXPECT_EQ(farm::classify_exit(terminated), ExitClass::Timeout);
  ExitInfo killed;
  killed.signal = SIGKILL;
  killed.timed_out = true;
  EXPECT_EQ(farm::classify_exit(killed), ExitClass::Timeout);
}

TEST(FarmExit, RetryabilityPerClass) {
  EXPECT_FALSE(farm::is_retryable(ExitClass::Ok));
  EXPECT_TRUE(farm::is_retryable(ExitClass::Transient));
  EXPECT_TRUE(farm::is_retryable(ExitClass::Crash));
  EXPECT_TRUE(farm::is_retryable(ExitClass::Timeout));
  EXPECT_FALSE(farm::is_retryable(ExitClass::Permanent));
  EXPECT_FALSE(farm::is_retryable(ExitClass::Interrupted));
}

TEST(FarmExit, ToStringCoversEveryClass) {
  EXPECT_STREQ(farm::to_string(ExitClass::Ok), "ok");
  EXPECT_STREQ(farm::to_string(ExitClass::Transient), "transient");
  EXPECT_STREQ(farm::to_string(ExitClass::Crash), "crash");
  EXPECT_STREQ(farm::to_string(ExitClass::Timeout), "timeout");
  EXPECT_STREQ(farm::to_string(ExitClass::Permanent), "permanent");
  EXPECT_STREQ(farm::to_string(ExitClass::Interrupted), "interrupted");
}

// ---------------------------------------------------------------------------
// Backoff schedule
// ---------------------------------------------------------------------------

TEST(FarmBackoff, GrowsExponentiallyWithoutJitter) {
  FarmOptions o;
  o.backoff_ms = 100;
  o.backoff_factor = 2.0;
  o.jitter = 0.0;
  EXPECT_EQ(farm::backoff_delay_ms(o, 1, 7), 100);
  EXPECT_EQ(farm::backoff_delay_ms(o, 2, 7), 200);
  EXPECT_EQ(farm::backoff_delay_ms(o, 3, 7), 400);
  EXPECT_EQ(farm::backoff_delay_ms(o, 4, 7), 800);
}

TEST(FarmBackoff, CapsAtSixtySeconds) {
  FarmOptions o;
  o.backoff_ms = 1000;
  o.backoff_factor = 10.0;
  o.jitter = 0.0;
  EXPECT_EQ(farm::backoff_delay_ms(o, 3, 0), farm::kMaxBackoffMs);
  EXPECT_EQ(farm::backoff_delay_ms(o, 30, 0), farm::kMaxBackoffMs);
}

TEST(FarmBackoff, JitterStaysInsideItsBandAndIsDeterministic) {
  FarmOptions o;
  o.backoff_ms = 1000;
  o.backoff_factor = 2.0;
  o.jitter = 0.5;
  bool varies = false;
  for (std::uint64_t salt = 0; salt < 64; ++salt) {
    const std::int64_t d = farm::backoff_delay_ms(o, 2, salt);
    EXPECT_GE(d, 1000);  // base 2000, jitter subtracts at most half
    EXPECT_LE(d, 2000);
    EXPECT_EQ(d, farm::backoff_delay_ms(o, 2, salt)) << "not deterministic for salt " << salt;
    varies = varies || d != 2000;
  }
  EXPECT_TRUE(varies) << "jitter never moved the delay";
}

TEST(FarmBackoff, NeverReturnsLessThanOneMillisecond) {
  FarmOptions o;
  o.backoff_ms = 1;
  o.backoff_factor = 1.0;
  o.jitter = 1.0;  // may subtract the whole base
  for (std::uint64_t salt = 0; salt < 32; ++salt)
    EXPECT_GE(farm::backoff_delay_ms(o, 1, salt), 1);
}

// ---------------------------------------------------------------------------
// Option validation
// ---------------------------------------------------------------------------

TEST(FarmOptionsTest, DefaultsValidate) { EXPECT_NO_THROW(FarmOptions{}.validate()); }

TEST(FarmOptionsTest, RejectsZeroAndNegativeKnobs) {
  const auto rejects = [](void (*mutate)(FarmOptions&)) {
    FarmOptions o;
    mutate(o);
    EXPECT_THROW(o.validate(), std::invalid_argument);
  };
  rejects(+[](FarmOptions& o) { o.workers = 0; });
  rejects(+[](FarmOptions& o) { o.workers = -2; });
  rejects(+[](FarmOptions& o) { o.timeout_ms = 0; });
  rejects(+[](FarmOptions& o) { o.timeout_ms = -1; });
  rejects(+[](FarmOptions& o) { o.retries = 0; });
  rejects(+[](FarmOptions& o) { o.retries = -1; });
  rejects(+[](FarmOptions& o) { o.backoff_ms = 0; });
  rejects(+[](FarmOptions& o) { o.backoff_factor = 0.99; });
  rejects(+[](FarmOptions& o) { o.backoff_factor = -2.0; });
  rejects(+[](FarmOptions& o) { o.jitter = -0.1; });
  rejects(+[](FarmOptions& o) { o.jitter = 1.1; });
  rejects(+[](FarmOptions& o) { o.chaos_kill_rate = 1.5; });
  rejects(+[](FarmOptions& o) { o.chaos_stop_rate = -0.5; });
  rejects(+[](FarmOptions& o) {  // combined rate above 1: every draw injects twice?
    o.chaos_kill_rate = 0.7;
    o.chaos_stop_rate = 0.7;
  });
  rejects(+[](FarmOptions& o) { o.chaos_delay_ms = 0; });
  rejects(+[](FarmOptions& o) { o.chaos_max_injections = -2; });
}

// ---------------------------------------------------------------------------
// Supervisor integration
// ---------------------------------------------------------------------------

Workload farm_workload() { return {"ring", make_ring_trace(24, 32 * units::kKiB, 2)}; }

ExperimentOptions farm_options(const std::string& tag) {
  ExperimentOptions o;
  o.topo = TopoParams::tiny();
  o.seed = 11;
  o.checkpoint.interval = 3 * units::kMicrosecond;
  o.checkpoint.path = temp_path(tag);
  fs::remove_all(o.checkpoint.path);
  o.farm.enabled = true;
  o.farm.workers = 2;
  o.farm.timeout_ms = 120'000;  // effectively no watchdog unless a test wants one
  o.farm.backoff_ms = 10;      // keep retry latency out of the test runtime
  return o;
}

std::vector<ExperimentConfig> two_configs() {
  return {{PlacementKind::Contiguous, RoutingKind::Minimal},
          {PlacementKind::RandomNode, RoutingKind::Adaptive}};
}

TEST(FarmSupervisor, RequiresASweepDirectory) {
  ExperimentOptions o = farm_options("farm-nodir");
  o.checkpoint.path.clear();
  EXPECT_THROW(farm::run_farm(farm_workload(), two_configs(), o), std::invalid_argument);
}

TEST(FarmSupervisor, ChaosKillRecoversToByteIdenticalManifest) {
  const Workload workload = farm_workload();
  const std::vector<ExperimentConfig> configs = two_configs();

  // Fault-free serial baseline through the same per-config code path.
  ExperimentOptions serial = farm_options("farm-serial");
  serial.farm.enabled = false;
  const std::vector<ExperimentResult> golden = run_matrix(workload, configs, serial, 1);
  const std::string golden_dir = temp_path("farm-golden-out");
  fs::remove_all(golden_dir);
  farm::write_sweep_artifacts(golden_dir, farm::report_from_results(golden));

  // Chaos: the first spawn of every slot is SIGKILLed almost immediately
  // after fork (kill_rate = 1, delay <= 1ms — far below worker runtime, so
  // the kill always lands), then the injection budget is spent and the
  // retries run clean.
  ExperimentOptions chaos = farm_options("farm-chaos");
  chaos.farm.retries = 4;
  chaos.farm.chaos_kill_rate = 1.0;
  chaos.farm.chaos_delay_ms = 1;
  chaos.farm.chaos_max_injections = 2;
  const farm::FarmReport report = farm::run_farm(workload, configs, chaos);

  EXPECT_TRUE(report.all_ok());
  EXPECT_EQ(report.stats.chaos_kills, 2);
  EXPECT_GE(report.stats.retries, 2);
  ASSERT_EQ(report.outcomes.size(), 2u);
  for (const farm::ConfigOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.completed) << o.config;
    EXPECT_GE(o.attempts.size(), 2u) << o.config << ": chaos kill should force a retry";
    EXPECT_EQ(o.attempts.back().outcome, ExitClass::Ok);
  }

  const std::string chaos_dir = temp_path("farm-chaos-out");
  fs::remove_all(chaos_dir);
  farm::write_sweep_artifacts(chaos_dir, report);
  const std::string golden_manifest = slurp(golden_dir + "/manifest.json");
  ASSERT_FALSE(golden_manifest.empty());
  EXPECT_EQ(slurp(chaos_dir + "/manifest.json"), golden_manifest)
      << "chaos-recovered manifest differs from the fault-free baseline";
  EXPECT_TRUE(slurp(chaos_dir + "/failures.jsonl").empty());
}

TEST(FarmSupervisor, WatchdogQuarantinesAHungWorker) {
  const std::vector<ExperimentConfig> configs = two_configs();
  ExperimentOptions o = farm_options("farm-hang");
  // Coarse snapshots keep the healthy worker's runtime (dominated by fsync
  // per snapshot) far below the watchdog timeout; the hung worker ignores
  // SIGTERM, so each of its attempts burns timeout + escalation grace.
  o.checkpoint.interval = 100 * units::kMicrosecond;
  o.farm.timeout_ms = 600;
  o.farm.retries = 1;
  o.farm.hang_config = configs[0].name();
  const farm::FarmReport report = farm::run_farm(farm_workload(), configs, o);

  ASSERT_EQ(report.outcomes.size(), 2u);
  const farm::ConfigOutcome& hung = report.outcomes[0];
  EXPECT_TRUE(hung.quarantined);
  EXPECT_EQ(hung.final_outcome, ExitClass::Timeout);
  EXPECT_EQ(hung.attempts.size(), 2u) << "1 retry => exactly 2 attempts";
  for (const farm::AttemptRecord& a : hung.attempts) EXPECT_TRUE(a.timed_out);
  EXPECT_TRUE(report.outcomes[1].completed) << "healthy config must not be dragged down";
  EXPECT_EQ(report.stats.quarantined, 1);
  EXPECT_EQ(report.stats.timeouts, 2);
  EXPECT_GE(report.stats.sigterm_escalations, 1);
  EXPECT_FALSE(report.all_ok());

  // The quarantine is machine-readable and names the config and class.
  const std::string dir = temp_path("farm-hang-out");
  fs::remove_all(dir);
  farm::write_sweep_artifacts(dir, report);
  const std::string failures = slurp(dir + "/failures.jsonl");
  EXPECT_NE(failures.find(configs[0].name()), std::string::npos);
  EXPECT_NE(failures.find("timeout"), std::string::npos);
}

TEST(FarmSupervisor, CrashIsContainedAndQuarantined) {
  const std::vector<ExperimentConfig> configs = two_configs();
  ExperimentOptions o = farm_options("farm-crash");
  o.farm.retries = 1;
  o.farm.crash_config = configs[1].name();
  const farm::FarmReport report = farm::run_farm(farm_workload(), configs, o);

  ASSERT_EQ(report.outcomes.size(), 2u);
  EXPECT_TRUE(report.outcomes[0].completed);
  const farm::ConfigOutcome& crashed = report.outcomes[1];
  EXPECT_TRUE(crashed.quarantined);
  EXPECT_EQ(crashed.final_outcome, ExitClass::Crash);
  EXPECT_EQ(crashed.attempts.size(), 2u);
  EXPECT_EQ(crashed.attempts[0].signal, SIGABRT);
  EXPECT_EQ(report.stats.crashes, 2);
}

TEST(FarmSupervisor, GracefulShutdownFlushesACheckpointAndResumes) {
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};
  const Workload workload = farm_workload();

  ExperimentOptions golden_opts = farm_options("farm-shutdown-golden");
  golden_opts.farm.enabled = false;
  const ExperimentResult golden = run_experiment(workload, config, golden_opts);

  // Worker-style run with the shutdown flag pre-raised: the first checkpoint
  // boundary must flush the snapshot and stop, exactly as a worker that
  // received SIGTERM does.
  farm::reset_shutdown_flag();
  farm::request_shutdown();
  ExperimentOptions o = farm_options("farm-shutdown");
  fs::create_directories(o.checkpoint.path);
  o.checkpoint.stop_flag = farm::shutdown_flag();
  const ExperimentResult partial =
      farm::run_sweep_config(workload, config, o, /*shared_topo=*/nullptr);
  EXPECT_TRUE(partial.stopped_at_checkpoint);
  EXPECT_LT(partial.metrics.events, golden.metrics.events);
  const std::string ckpt = farm::sweep_ckpt_path(o.checkpoint.path, config.name());
  EXPECT_TRUE(fs::exists(ckpt)) << "interrupted run must leave its snapshot";
  EXPECT_FALSE(fs::exists(farm::sweep_done_path(o.checkpoint.path, config.name())));

  // Clear the flag and resume: identical to the uninterrupted run.
  farm::reset_shutdown_flag();
  o.checkpoint.stop_flag = nullptr;
  o.checkpoint.resume = true;
  const ExperimentResult resumed = farm::run_sweep_config(workload, config, o, nullptr);
  EXPECT_FALSE(resumed.stopped_at_checkpoint);
  EXPECT_EQ(resumed.metrics.events, golden.metrics.events);
  EXPECT_EQ(resumed.metrics.makespan_ms, golden.metrics.makespan_ms);
  EXPECT_EQ(resumed.metrics.comm_time_ms, golden.metrics.comm_time_ms);
  EXPECT_FALSE(fs::exists(ckpt)) << "completion must retire the snapshot";
}

TEST(FarmSupervisor, RunMatrixDelegatesToTheFarm) {
  const std::vector<ExperimentConfig> configs = two_configs();
  const Workload workload = farm_workload();

  ExperimentOptions serial = farm_options("farm-delegate-serial");
  serial.farm.enabled = false;
  const std::vector<ExperimentResult> golden = run_matrix(workload, configs, serial, 1);

  ExperimentOptions farmed = farm_options("farm-delegate");
  const std::vector<ExperimentResult> results = run_matrix(workload, configs, farmed, 4);
  ASSERT_EQ(results.size(), golden.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].config, golden[i].config);
    EXPECT_EQ(results[i].metrics.makespan_ms, golden[i].metrics.makespan_ms);
    EXPECT_EQ(results[i].metrics.events, golden[i].metrics.events);
  }
}

}  // namespace
}  // namespace dfly
