#include "core/run_matrix.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace dfly {

std::vector<ExperimentResult> run_matrix(const Workload& workload,
                                         const std::vector<ExperimentConfig>& configs,
                                         const ExperimentOptions& options, int threads) {
  if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  threads = std::min<int>(threads, static_cast<int>(configs.size()));

  const DragonflyTopology topo(options.topo);
  std::vector<ExperimentResult> results(configs.size());
  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= configs.size()) return;
      try {
        results[i] = run_experiment(workload, configs[i], options, &topo);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (error) std::rethrow_exception(error);
  return results;
}

}  // namespace dfly
