#include "farm/worker.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "ckpt/checkpoint.hpp"
#include "farm/retry.hpp"
#include "farm/signals.hpp"

namespace dfly::farm {

namespace fs = std::filesystem;

std::string sweep_ckpt_path(const std::string& dir, const std::string& config_name) {
  return (fs::path(dir) / (config_name + ".ckpt")).string();
}

std::string sweep_done_path(const std::string& dir, const std::string& config_name) {
  return (fs::path(dir) / (config_name + ".done")).string();
}

std::string sweep_err_path(const std::string& dir, const std::string& config_name) {
  return (fs::path(dir) / (config_name + ".err")).string();
}

std::string sweep_status_path(const std::string& dir, const std::string& config_name) {
  return (fs::path(dir) / (config_name + ".status.json")).string();
}

ExperimentResult run_sweep_config(const Workload& workload, const ExperimentConfig& config,
                                  const ExperimentOptions& sweep_options,
                                  const DragonflyTopology* shared_topo) {
  const std::string& dir = sweep_options.checkpoint.path;
  if (dir.empty())
    throw std::invalid_argument("farm: sweep checkpoint.path (directory) must be set");
  const std::string name = config.name();
  const std::string ckpt_path = sweep_ckpt_path(dir, name);
  const std::string done_path = sweep_done_path(dir, name);
  if (sweep_options.checkpoint.resume && fs::exists(done_path))
    return ckpt::load_result(done_path);
  ExperimentOptions per_config = sweep_options;
  per_config.checkpoint.path = ckpt_path;
  // Liveness: with [prof] enabled every sweep step heartbeats into its own
  // status.json (farm workers AND run_matrix thread-pool steps take this
  // path); the supervisor aggregates them into farm_status.json.
  if (per_config.prof.enabled) per_config.prof.status_path = sweep_status_path(dir, name);
  ExperimentResult result = run_experiment(workload, config, per_config, shared_topo);
  if (!result.stopped_at_checkpoint) {
    ckpt::save_result(done_path, result);
    std::error_code ec;
    fs::remove(ckpt_path, ec);  // the marker supersedes the snapshot
  }
  return result;
}

namespace {

void write_error_file(const ExperimentOptions& options, const std::string& config_name,
                      const std::string& message) {
  if (options.checkpoint.path.empty()) return;
  std::ofstream f(sweep_err_path(options.checkpoint.path, config_name), std::ios::trunc);
  f << message << '\n';
}

}  // namespace

int worker_main(const Workload& workload, const ExperimentConfig& config,
                const ExperimentOptions& sweep_options) noexcept {
  const std::string name = config.name();
  try {
    // A fresh flag (the fork copied the parent's) and our own handlers: a
    // watchdog SIGTERM lands here, the run notices at the next checkpoint
    // slice, flushes a snapshot and we exit kExitInterrupted below.
    reset_shutdown_flag();
    ScopedShutdownHandlers handlers;
    ExperimentOptions options = sweep_options;
    options.checkpoint.stop_flag = shutdown_flag();

    // Deterministic misbehavior hooks for the chaos/watchdog self-tests.
    if (!options.farm.crash_config.empty() && options.farm.crash_config == name)
      std::abort();
    if (!options.farm.hang_config.empty() && options.farm.hang_config == name) {
      for (;;) ::pause();  // ignores the flag on purpose: an unresponsive worker
    }

    const ExperimentResult result =
        run_sweep_config(workload, config, options, /*shared_topo=*/nullptr);
    return result.stopped_at_checkpoint ? kExitInterrupted : kExitOk;
  } catch (const std::invalid_argument& e) {
    write_error_file(sweep_options, name, std::string("invalid config: ") + e.what());
    return kExitPermanent;
  } catch (const std::exception& e) {
    write_error_file(sweep_options, name, e.what());
    return kExitCrash;
  } catch (...) {
    write_error_file(sweep_options, name, "unknown exception");
    return kExitCrash;
  }
}

}  // namespace dfly::farm
