// Minimal leveled logging to stderr.
//
// The simulator is a library; logging defaults to Warn so that tests and
// benches stay quiet unless something is off. Benches raise it to Info for
// progress lines on long runs.
#pragma once

#include <string>

namespace dfly {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& msg) { log_message(LogLevel::Debug, msg); }
inline void log_info(const std::string& msg) { log_message(LogLevel::Info, msg); }
inline void log_warn(const std::string& msg) { log_message(LogLevel::Warn, msg); }
inline void log_error(const std::string& msg) { log_message(LogLevel::Error, msg); }

}  // namespace dfly
