// Tests for the simulation health monitor: conservation-audit arithmetic,
// stall detection, the structured deadlock diagnostic that replaces the old
// bare "experiment deadlocked" exception, and watchdog reports.
#include "fault/health.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hpp"
#include "routing/minimal.hpp"
#include "trace/trace.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

TEST(Health, ConservationArithmetic) {
  EXPECT_TRUE(conservation_holds(0, 0, 0, 0));
  EXPECT_TRUE(conservation_holds(100, 60, 30, 10));
  EXPECT_FALSE(conservation_holds(100, 60, 30, 11));
  EXPECT_FALSE(conservation_holds(100, 100, 0, -1));
}

TEST(Health, OptionsValidated) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  HealthOptions bad;
  bad.interval = 0;
  EXPECT_THROW(HealthMonitor(engine, network, bad), std::invalid_argument);
  bad = HealthOptions{};
  bad.stall_ticks = 0;
  EXPECT_THROW(HealthMonitor(engine, network, bad), std::invalid_argument);
}

TEST(Health, StallDetectionStopsTheEngine) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));

  // Keeps the event queue alive forever without moving any bytes — the shape
  // of a livelock the monitor must catch (a hard deadlock drains the queue).
  struct Spinner : EventHandler {
    Engine* eng;
    void handle_event(SimTime, const EventPayload&) override {
      eng->schedule_after(100, this, EventPayload{});
    }
  } spinner;
  spinner.eng = &engine;
  engine.schedule(0, &spinner, EventPayload{});

  HealthOptions options;
  options.interval = 1000;
  options.stall_ticks = 3;
  HealthMonitor monitor(engine, network, options);
  monitor.set_work_remaining([] { return true; });
  monitor.start();
  engine.run();

  EXPECT_TRUE(monitor.stalled());
  EXPECT_TRUE(engine.stop_requested());
  EXPECT_LE(engine.now(), 10'000) << "monitor let the spinner run far past the stall window";
  EXPECT_TRUE(monitor.report().stalled);
  EXPECT_NE(monitor.report().to_string().find("STALLED"), std::string::npos);
}

TEST(Health, MonitorDoesNotKeepFinishedSimulationAlive) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));

  HealthOptions options;
  options.interval = 1000;
  HealthMonitor monitor(engine, network, options);  // default work_remaining: in-flight msgs
  monitor.start();
  engine.run();

  // One tick fires, sees no work, and stops rescheduling; the engine drains.
  EXPECT_EQ(monitor.ticks(), 1u);
  EXPECT_EQ(engine.now(), 1000);
  EXPECT_FALSE(monitor.stalled());
  EXPECT_FALSE(monitor.deadlock_detected());
}

TEST(Health, CaptureReportsFabricState) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  network.send(0, 40, 64 * units::kKiB);  // cross-group, still queued at t=0

  HealthMonitor monitor(engine, network);
  const HealthReport report = monitor.capture(0);
  EXPECT_EQ(report.messages_in_flight, 1u);
  EXPECT_TRUE(report.conservation_ok);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("simulation health report"), std::string::npos);
  EXPECT_NE(text.find("messages in flight: 1"), std::string::npos);
}

TEST(Health, DeadlockThrowsStructuredReport) {
  // Rank 0 waits for a message rank 1 never sends: the event queue drains
  // with work remaining — a hard deadlock. The exception must carry the
  // monitor's diagnostic dump, not just a rank count.
  Trace trace(2);
  trace.rank(0).push_back(TraceOp::recv(1, 4096, 7));
  const Workload app{"unmatched-recv", trace};
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  options.health.interval = 10 * units::kMicrosecond;
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};

  try {
    run_experiment(app, config, options);
    FAIL() << "expected a deadlock exception";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlocked"), std::string::npos) << what;
    EXPECT_NE(what.find("1/2 ranks finished"), std::string::npos) << what;
    EXPECT_NE(what.find("simulation health report"), std::string::npos) << what;
    EXPECT_NE(what.find("DEADLOCK"), std::string::npos) << what;
  }
}

TEST(Health, DeadlockReportedEvenWithMonitorDisabled) {
  Trace trace(2);
  trace.rank(0).push_back(TraceOp::recv(1, 4096, 7));
  const Workload app{"unmatched-recv", trace};
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  options.health.enabled = false;  // no periodic ticks; capture happens post-mortem
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};

  try {
    run_experiment(app, config, options);
    FAIL() << "expected a deadlock exception";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("simulation health report"), std::string::npos) << what;
    EXPECT_NE(what.find("DEADLOCK"), std::string::npos) << what;
  }
}

TEST(Health, EventLimitWatchdogAttachesReport) {
  Rng rng(5);
  const Workload app{"perm", make_permutation_trace(16, 64 * units::kKiB, rng)};
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  options.max_events = 500;  // far too few to finish
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};

  const ExperimentResult result = run_experiment(app, config, options);
  EXPECT_TRUE(result.hit_event_limit);
  ASSERT_FALSE(result.health_report.empty());
  EXPECT_NE(result.health_report.find("simulation health report"), std::string::npos);
}

TEST(Health, CleanRunLeavesNoReport) {
  Rng rng(6);
  const Workload app{"perm", make_permutation_trace(16, 16 * units::kKiB, rng)};
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};

  const ExperimentResult result = run_experiment(app, config, options);
  EXPECT_TRUE(result.conservation_ok);
  EXPECT_FALSE(result.stalled);
  EXPECT_TRUE(result.health_report.empty());
}

}  // namespace
}  // namespace dfly
