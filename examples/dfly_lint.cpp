// dfly_lint — the determinism linter (DESIGN.md section 12).
//
// Scans a source tree for violations of the bit-exact-reproducibility rules
// (wall-clock reads, raw RNG, unordered iteration on artifact paths, pointer
// ordering keys, stray raw-byte I/O, missing snapshot static_asserts),
// prints a human report, optionally writes machine-readable lint.json, and
// exits nonzero if any unannotated violation remains.
//
//   dfly_lint [--root=DIR] [--json=PATH] [--quiet]
//
// --root defaults to "src" (run from the repo checkout); CI passes the
// absolute source dir and uploads the JSON artifact.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "lint/linter.hpp"

namespace {

const char* arg_value(const char* arg, const char* name) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = "src";
  std::string json_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    if (const char* root_arg = arg_value(argv[i], "--root")) {
      root = root_arg;
    } else if (const char* json_arg = arg_value(argv[i], "--json")) {
      json_path = json_arg;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: dfly_lint [--root=DIR] [--json=PATH] [--quiet]\n";
      return 0;
    } else {
      std::cerr << "dfly_lint: unknown argument " << argv[i] << " (try --help)\n";
      return 2;
    }
  }

  dfly::lint::LintResult result;
  try {
    result = dfly::lint::lint_tree(root);
  } catch (const std::exception& e) {
    std::cerr << "dfly_lint: " << e.what() << "\n";
    return 2;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "dfly_lint: cannot write " << json_path << "\n";
      return 2;
    }
    dfly::lint::write_lint_json(result, root, out);
    out.flush();
    if (!out) {
      std::cerr << "dfly_lint: write failed for " << json_path << "\n";
      return 2;
    }
  }

  if (!quiet) {
    for (const auto& v : result.violations)
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] " << v.message << "\n";
    for (const auto& e : result.exemptions)
      std::cout << e.file << ":" << e.line << ": exempt [" << e.rule << "] reason: " << e.reason
                << "\n";
    std::cout << "dfly_lint: " << result.files_scanned << " files, " << result.violations.size()
              << " violation(s), " << result.exemptions.size() << " exemption(s)\n";
  }
  return result.clean() ? 0 : 1;
}
