#include "workload/background.hpp"

#include <cassert>
#include <stdexcept>

#include "ckpt/snapshot_io.hpp"

namespace dfly {

const char* to_string(BackgroundSpec::Pattern pattern) {
  switch (pattern) {
    case BackgroundSpec::Pattern::UniformRandom: return "uniform-random";
    case BackgroundSpec::Pattern::Bursty: return "bursty";
  }
  return "?";
}

BackgroundDriver::BackgroundDriver(Engine& engine, Network& network, std::vector<NodeId> nodes,
                                   const BackgroundSpec& spec, Rng rng)
    : engine_(engine), network_(network), nodes_(std::move(nodes)), spec_(spec), rng_(rng) {
  if (nodes_.size() < 2) throw std::invalid_argument("background job needs >= 2 nodes");
  if (spec_.interval <= 0) throw std::invalid_argument("background interval must be positive");
  if (spec_.message_bytes <= 0) throw std::invalid_argument("background message size must be positive");
}

void BackgroundDriver::start() {
  engine_.schedule(spec_.start, this, EventPayload{1, 0, 0, 0});
}

void BackgroundDriver::tick(SimTime /*now*/) {
  ++ticks_;
  const auto n = static_cast<std::uint64_t>(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeId src = nodes_[i];
    const int fanout = spec_.pattern == BackgroundSpec::Pattern::Bursty ? spec_.burst_fanout : 1;
    for (int f = 0; f < fanout; ++f) {
      // Uniform peer among the other background nodes.
      std::size_t j = static_cast<std::size_t>(rng_.uniform(n - 1));
      if (j >= i) ++j;
      network_.send(src, nodes_[j], spec_.message_bytes);
      bytes_issued_ += spec_.message_bytes;
      ++messages_issued_;
    }
  }
}

void BackgroundDriver::handle_event(SimTime now, const EventPayload& /*payload*/) {
  if (stopped_) return;
  tick(now);
  engine_.schedule_after(spec_.interval, this, EventPayload{1, 0, 0, 0});
}

void BackgroundDriver::save_state(ckpt::Writer& w) const {
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  w.boolean(stopped_);
  w.i64(bytes_issued_);
  w.u64(messages_issued_);
  w.u64(ticks_);
}

void BackgroundDriver::load_state(ckpt::Reader& r) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = r.u64();
  rng_.set_state(state);
  stopped_ = r.boolean();
  bytes_issued_ = r.i64();
  messages_issued_ = r.u64();
  ticks_ = r.u64();
  if (bytes_issued_ < 0) throw std::runtime_error("snapshot: negative background byte count");
}

}  // namespace dfly
