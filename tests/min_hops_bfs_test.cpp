// Cross-validation of MinimalPathTable against breadth-first search on the
// actual wiring: for every router pair of the tiny topology (and a sample of
// Theta), the table's min_hops must equal the true shortest path restricted
// to dragonfly-minimal semantics... and must never beat unrestricted BFS.
#include <gtest/gtest.h>

#include <queue>

#include "routing/router_table.hpp"

namespace dfly {
namespace {

/// Unrestricted shortest hop count over the router graph.
std::vector<int> bfs_distances(const DragonflyTopology& topo, RouterId start) {
  const int routers = topo.params().total_routers();
  std::vector<int> dist(routers, -1);
  std::queue<RouterId> queue;
  dist[start] = 0;
  queue.push(start);
  while (!queue.empty()) {
    const RouterId r = queue.front();
    queue.pop();
    for (int port = topo.first_row_port(); port < topo.ports_per_router(); ++port) {
      const RouterId peer = topo.neighbor(r, port);
      if (dist[peer] == -1) {
        dist[peer] = dist[r] + 1;
        queue.push(peer);
      }
    }
  }
  return dist;
}

TEST(MinHopsBfs, TinyTopologyExactAgainstBfs) {
  const DragonflyTopology topo(TopoParams::tiny());
  const MinimalPathTable table(topo);
  const int routers = topo.params().total_routers();
  for (RouterId a = 0; a < routers; ++a) {
    const std::vector<int> dist = bfs_distances(topo, a);
    for (RouterId b = 0; b < routers; ++b) {
      ASSERT_GE(dist[b], 0) << "topology is disconnected";
      const int table_hops = table.min_hops(a, b);
      // Dragonfly-minimal routes are restricted (exactly one global hop for
      // inter-group pairs), so they can exceed BFS but never beat it.
      EXPECT_GE(table_hops, dist[b]) << a << "->" << b;
      // Intra-group pairs are unrestricted: must match BFS exactly.
      if (topo.coords().group_of_router(a) == topo.coords().group_of_router(b)) {
        EXPECT_EQ(table_hops, dist[b]) << a << "->" << b;
      }
      // The restriction costs at most 2 extra local hops.
      EXPECT_LE(table_hops, dist[b] + 2) << a << "->" << b;
    }
  }
}

TEST(MinHopsBfs, ThetaSampledAgainstBfs) {
  const DragonflyTopology topo(TopoParams::theta());
  const MinimalPathTable table(topo);
  for (RouterId a : {0, 95, 96, 500, 863}) {
    const std::vector<int> dist = bfs_distances(topo, a);
    for (RouterId b = 0; b < topo.params().total_routers(); b += 17) {
      const int table_hops = table.min_hops(a, b);
      EXPECT_GE(table_hops, dist[b]) << a << "->" << b;
      EXPECT_LE(table_hops, dist[b] + 2) << a << "->" << b;
    }
  }
}

TEST(MinHopsBfs, MinHopsIsSymmetricOnTiny) {
  const DragonflyTopology topo(TopoParams::tiny());
  const MinimalPathTable table(topo);
  const int routers = topo.params().total_routers();
  for (RouterId a = 0; a < routers; ++a)
    for (RouterId b = a + 1; b < routers; ++b)
      EXPECT_EQ(table.min_hops(a, b), table.min_hops(b, a)) << a << "<->" << b;
}

TEST(MinHopsBfs, BoundsOnTheta) {
  // Theta minimal paths: 0 (same router), 1-2 (same group), 1-5 (cross
  // group: <=2 local + 1 global + <=2 local).
  const DragonflyTopology topo(TopoParams::theta());
  const MinimalPathTable table(topo);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<RouterId>(rng.uniform(864));
    const auto b = static_cast<RouterId>(rng.uniform(864));
    const int hops = table.min_hops(a, b);
    if (a == b) {
      EXPECT_EQ(hops, 0);
    } else if (topo.coords().group_of_router(a) == topo.coords().group_of_router(b)) {
      EXPECT_GE(hops, 1);
      EXPECT_LE(hops, 2);
    } else {
      EXPECT_GE(hops, 1);
      EXPECT_LE(hops, 5);
    }
  }
}

}  // namespace
}  // namespace dfly
