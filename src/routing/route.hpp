// Route representation shared by the routing algorithms and the network.
//
// A route is the full source-computed hop list of one packet chunk:
//   hops[i] = (router_i, out port on router_i, virtual channel)
// router_0 is the source node's router; the final hop's port is the terminal
// (ejection) port on the destination router.
//
// The VC of hop i is simply i: strictly increasing VCs along a path make the
// channel dependency graph acyclic, which gives deadlock freedom for any mix
// of minimal and Valiant routes (see DESIGN.md "Modelling decisions").
#pragma once

#include <cassert>
#include <cstdint>

#include "topo/coordinates.hpp"

namespace dfly {

/// Longest admissible path: Valiant = two back-to-back minimal segments of at
/// most 5 router-router hops each, plus the ejection hop.
inline constexpr int kMaxRouteHops = 12;

struct Hop {
  RouterId router;
  std::int16_t port;
  std::int8_t vc;
};

class Route {
 public:
  /// Appends a hop departing `router` via `port`; the VC is the hop index.
  void push(RouterId router, int port) {
    assert(len_ < kMaxRouteHops);
    hops_[len_] = Hop{router, static_cast<std::int16_t>(port), static_cast<std::int8_t>(len_)};
    ++len_;
  }

  int size() const { return len_; }
  bool empty() const { return len_ == 0; }
  const Hop& operator[](int i) const {
    assert(i >= 0 && i < len_);
    return hops_[i];
  }
  const Hop& first() const { return (*this)[0]; }
  const Hop& last() const { return (*this)[len_ - 1]; }

  /// Number of routers traversed (= hops, since each hop departs one router).
  int routers_traversed() const { return len_; }

 private:
  std::int8_t len_ = 0;
  Hop hops_[kMaxRouteHops];
};

}  // namespace dfly
