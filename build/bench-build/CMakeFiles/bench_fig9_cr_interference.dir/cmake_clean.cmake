file(REMOVE_RECURSE
  "../bench/bench_fig9_cr_interference"
  "../bench/bench_fig9_cr_interference.pdb"
  "CMakeFiles/bench_fig9_cr_interference.dir/bench_fig9_cr_interference.cpp.o"
  "CMakeFiles/bench_fig9_cr_interference.dir/bench_fig9_cr_interference.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cr_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
