// Fault-tolerant sweep farm driver and chaos self-test.
//
// Usage:
//   sweep_farm run <out_dir> [config.ini]
//     Runs the paper's four extreme configs (or a config file's options)
//     through the crash-isolated farm: per-config worker processes, watchdog
//     timeouts, retry with backoff, quarantine. Writes manifest.json,
//     failures.jsonl and farm_stats.json into <out_dir> and prints a summary
//     table. Exits 0 even with quarantined configs (graceful degradation);
//     exits 1 only if the farm itself was interrupted.
//
//   sweep_farm chaos <out_dir>
//     Self-test of the recovery machinery, in four phases:
//       golden   — fault-free serial run_matrix sweep; its aggregated
//                  manifest is the byte-exact reference.
//       control  — farm run with chaos off; must quarantine nothing and
//                  reproduce the golden manifest byte-for-byte.
//       chaos    — farm run that randomly SIGKILLs/SIGSTOPs its own workers;
//                  every config must still complete (retries resume from
//                  .ckpt snapshots) and the manifest must STILL be
//                  byte-identical to the golden one.
//       watchdog — one config is forced to hang; its worker must be killed
//                  by the watchdog, retried with backoff, and quarantined
//                  after the budget while the rest of the matrix completes.
//     Exits nonzero on any violation.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/config_io.hpp"
#include "core/run_matrix.hpp"
#include "farm/manifest.hpp"
#include "farm/signals.hpp"
#include "farm/supervisor.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace dfly;
namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return "<unreadable: " + path + ">";
  return std::string(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>{});
}

Workload farm_workload() {
  return Workload{"ring", make_ring_trace(/*ranks=*/24, 64 * units::kKiB, /*iterations=*/4)};
}

/// Small-system sweep options shared by every phase: checkpoints every few
/// simulated microseconds (so a killed worker has something to resume from)
/// and full telemetry (so the manifest's artifact digests are meaningful).
ExperimentOptions base_options(const std::string& out_dir) {
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  options.seed = 7;
  options.checkpoint.interval = 10 * units::kMicrosecond;
  options.telemetry.enabled = true;
  options.telemetry.sample_rate = 0.05;
  options.telemetry.snapshot_interval = 20 * units::kMicrosecond;
  options.telemetry.out_dir = out_dir + "/telemetry";
  options.checkpoint.path = out_dir + "/sweep";
  // Liveness + attribution: workers heartbeat into <sweep>/<config>.status.json,
  // the supervisor aggregates farm_status.json, each run exports prof.json.
  // Pure observability — the chaos phases still byte-compare manifests.
  options.prof.enabled = true;
  return options;
}

void print_report(const farm::FarmReport& report) {
  for (const farm::ConfigOutcome& o : report.outcomes) {
    std::printf("  %-12s %-11s attempts=%zu", o.config.c_str(),
                o.completed ? "ok" : (o.quarantined ? "QUARANTINED" : "interrupted"),
                o.attempts.size());
    if (o.completed) std::printf("  makespan %.3f ms", o.result.metrics.makespan_ms);
    if (!o.error.empty()) std::printf("  (%s)", o.error.c_str());
    std::printf("\n");
  }
  const farm::FarmStats& s = report.stats;
  std::printf("  stats: attempts=%lld retries=%lld resumed=%lld timeouts=%lld crashes=%lld "
              "chaos_kills=%lld chaos_stops=%lld term=%lld kill=%lld\n",
              static_cast<long long>(s.attempts), static_cast<long long>(s.retries),
              static_cast<long long>(s.resumed_attempts), static_cast<long long>(s.timeouts),
              static_cast<long long>(s.crashes), static_cast<long long>(s.chaos_kills),
              static_cast<long long>(s.chaos_stops),
              static_cast<long long>(s.sigterm_escalations),
              static_cast<long long>(s.sigkill_escalations));
}

int cmd_run(const std::string& out_dir, const std::string& config_file) {
  ExperimentOptions options = base_options(out_dir);
  options.farm.enabled = true;
  if (!config_file.empty()) options = load_config(config_file, options);
  if (options.checkpoint.path.empty()) options.checkpoint.path = out_dir + "/sweep";

  const Workload workload = farm_workload();
  const std::vector<ExperimentConfig> configs = extreme_configs();
  std::printf("farm: %d workers, timeout %lld ms, %d retries, %zu configs\n",
              options.farm.workers, static_cast<long long>(options.farm.timeout_ms),
              options.farm.retries, configs.size());
  const farm::FarmReport report = farm::run_farm(workload, configs, options);
  print_report(report);
  const std::string manifest = farm::write_sweep_artifacts(out_dir, report);
  std::printf("wrote %s (+ failures.jsonl, farm_stats.json)\n", manifest.c_str());
  return report.interrupted ? 1 : 0;
}

int cmd_chaos(const std::string& out_dir) {
  fs::create_directories(out_dir);
  const Workload workload = farm_workload();
  const std::vector<ExperimentConfig> configs = extreme_configs();
  bool all_ok = true;
  const auto check = [&all_ok](bool ok, const char* what) {
    std::printf("  %-58s %s\n", what, ok ? "ok" : "FAIL");
    all_ok = all_ok && ok;
  };

  // --- golden: fault-free serial sweep, the byte-exact reference ----------
  std::printf("[golden] serial fault-free sweep...\n");
  ExperimentOptions golden = base_options(out_dir + "/golden");
  const std::vector<ExperimentResult> golden_results =
      run_matrix(workload, configs, golden, /*threads=*/1);
  farm::write_sweep_artifacts(out_dir + "/golden",
                              farm::report_from_results(golden_results));
  const std::string golden_manifest = slurp(out_dir + "/golden/manifest.json");
  check(!golden_results.empty(), "golden sweep completed");

  // --- control: farm, no injected faults ----------------------------------
  std::printf("[control] farm sweep, chaos off...\n");
  ExperimentOptions control = base_options(out_dir + "/control");
  control.farm.workers = 2;
  control.farm.timeout_ms = 120'000;
  const farm::FarmReport control_report = farm::run_farm(workload, configs, control);
  print_report(control_report);
  farm::write_sweep_artifacts(out_dir + "/control", control_report);
  check(control_report.all_ok(), "control: no quarantine, no interruption");
  check(slurp(out_dir + "/control/manifest.json") == golden_manifest,
        "control: manifest byte-identical to golden");

  // --- chaos: the farm shoots at its own workers ---------------------------
  std::printf("[chaos] farm sweep with SIGKILL/SIGSTOP injection...\n");
  ExperimentOptions chaos = base_options(out_dir + "/chaos");
  chaos.farm.workers = 2;
  chaos.farm.timeout_ms = 120'000;
  chaos.farm.retries = 8;  // generous: injected faults must never exhaust it
  chaos.farm.backoff_ms = 10;
  chaos.farm.chaos_kill_rate = 0.45;
  chaos.farm.chaos_stop_rate = 0.25;
  chaos.farm.chaos_delay_ms = 40;       // short enough to land before the worker finishes
  chaos.farm.chaos_max_injections = 6;  // then let the retries run clean
  chaos.farm.chaos_seed = 1234;
  const farm::FarmReport chaos_report = farm::run_farm(workload, configs, chaos);
  print_report(chaos_report);
  farm::write_sweep_artifacts(out_dir + "/chaos", chaos_report);
  check(chaos_report.all_ok(), "chaos: every config completed despite injection");
  check(chaos_report.stats.chaos_kills + chaos_report.stats.chaos_stops > 0,
        "chaos: at least one fault was actually injected");
  check(slurp(out_dir + "/chaos/manifest.json") == golden_manifest,
        "chaos: manifest byte-identical to golden");

  // --- watchdog: a hung config is contained, retried, quarantined ----------
  std::printf("[watchdog] one config hangs; timeout -> retry -> quarantine...\n");
  ExperimentOptions hang = base_options(out_dir + "/watchdog");
  // Coarse snapshots so healthy workers finish far below the watchdog
  // timeout even under sanitizers; the hung one ignores SIGTERM and burns
  // timeout + escalation grace per attempt.
  hang.checkpoint.interval = 100 * units::kMicrosecond;
  hang.farm.workers = 2;
  hang.farm.timeout_ms = 1500;
  hang.farm.retries = 1;
  hang.farm.backoff_ms = 50;
  hang.farm.hang_config = configs.front().name();
  const farm::FarmReport hang_report = farm::run_farm(workload, configs, hang);
  print_report(hang_report);
  farm::write_sweep_artifacts(out_dir + "/watchdog", hang_report);
  const farm::ConfigOutcome& hung = hang_report.outcomes.front();
  check(hung.quarantined && hung.final_outcome == farm::ExitClass::Timeout,
        "watchdog: hung config quarantined as timeout");
  check(hung.attempts.size() == 2, "watchdog: retry budget honored (2 attempts)");
  check(hang_report.stats.completed ==
            static_cast<std::int64_t>(configs.size()) - 1,
        "watchdog: every other config still completed");
  check(!slurp(out_dir + "/watchdog/failures.jsonl").empty(),
        "watchdog: quarantine recorded in failures.jsonl");

  std::printf("chaos selfcheck: %s\n",
              all_ok ? "PASS (farm recovers to a byte-identical sweep)" : "FAIL");
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  try {
    if (mode == "run" && (argc == 3 || argc == 4))
      return cmd_run(argv[2], argc == 4 ? argv[3] : "");
    if (mode == "chaos" && argc == 3) return cmd_chaos(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_farm: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "usage: %s run <out_dir> [config.ini] | chaos <out_dir>\n", argv[0]);
  return 2;
}
