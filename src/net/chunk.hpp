// Packet chunks and their pool.
//
// A chunk is the unit of transfer, arbitration and buffering. Chunks are
// pool-allocated and recycled at delivery; ChunkId is a stable index into the
// pool, small enough to travel inside an EventPayload.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/route.hpp"
#include "util/units.hpp"

namespace dfly {

using ChunkId = std::uint32_t;
using MsgId = std::uint32_t;

/// Sentinel "no chunk" value (OutPort::tx_chunk when the wire is idle).
inline constexpr ChunkId kNoChunk = 0xFFFFFFFFu;

struct Chunk {
  MsgId msg = 0;
  std::int32_t bytes = 0;
  std::int8_t hop_idx = 0;  ///< index of the route hop whose router holds the chunk
  /// Set when the chunk was discarded mid-flight on a failed link. The chunk
  /// stays allocated as a tombstone until its already-scheduled arrival event
  /// fires (which releases it); releasing eagerly would let the pool recycle
  /// the id while a stale event still references it.
  bool dropped = false;
  Route route;
};

class ChunkPool {
 public:
  ChunkId allocate() {
    if (!free_.empty()) {
      const ChunkId id = free_.back();
      free_.pop_back();
      return id;
    }
    chunks_.emplace_back();
    return static_cast<ChunkId>(chunks_.size() - 1);
  }

  void release(ChunkId id) {
    chunks_[id] = Chunk{};
    free_.push_back(id);
  }

  Chunk& operator[](ChunkId id) { return chunks_[id]; }
  const Chunk& operator[](ChunkId id) const { return chunks_[id]; }

  std::size_t capacity() const { return chunks_.size(); }
  std::size_t in_use() const { return chunks_.size() - free_.size(); }

  // --- checkpoint support: raw slot/free-list access ---
  // The free list's order matters (allocate pops from the back), so restore
  // takes it verbatim rather than recomputing it.
  const std::vector<Chunk>& slots() const { return chunks_; }
  const std::vector<ChunkId>& free_slots() const { return free_; }
  void restore(std::vector<Chunk> slots, std::vector<ChunkId> free_list) {
    chunks_ = std::move(slots);
    free_ = std::move(free_list);
  }

 private:
  std::vector<Chunk> chunks_;
  std::vector<ChunkId> free_;
};

}  // namespace dfly
