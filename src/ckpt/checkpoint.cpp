#include "ckpt/checkpoint.hpp"

#include <array>
#include <set>
#include <stdexcept>
#include <tuple>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "net/network.hpp"
#include "obs/telemetry.hpp"
#include "replay/replay.hpp"
#include "sim/engine.hpp"
#include "topo/dragonfly.hpp"
#include "workload/background.hpp"

namespace dfly::ckpt {

namespace {

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error("snapshot: " + what);
}

// --- handler registry ------------------------------------------------------
// Queue events reference handlers by these ids. The order is part of format
// version 1: extend only by appending.
enum HandlerId : std::uint32_t {
  kIdNetwork = 0,
  kIdReplay = 1,
  kIdBackground = 2,
  kIdInjector = 3,
  kIdMonitor = 4,
  kIdProbe = 5,
  kHandlerCount = 6,
};

std::vector<EventHandler*> handler_table(const SimSnapshotParts& parts) {
  return {parts.network,
          parts.replay,
          parts.background,
          parts.injector,
          parts.monitor,
          parts.telemetry != nullptr ? &parts.telemetry->probe() : nullptr};
}

// --- topology link state ---------------------------------------------------

void save_topology(Writer& w, const DragonflyTopology& topo) {
  const int groups = topo.params().groups;
  std::vector<std::array<std::int32_t, 3>> down_global;
  for (GroupId a = 0; a < groups; ++a) {
    for (GroupId b = a + 1; b < groups; ++b) {
      const auto all = topo.all_global_links(a, b);
      for (std::size_t i = 0; i < all.size(); ++i) {
        if (!topo.port_enabled(all[i].src_router, all[i].src_port))
          down_global.push_back({a, b, static_cast<std::int32_t>(i)});
      }
    }
  }
  w.size(down_global.size());
  for (const auto& [a, b, idx] : down_global) {
    w.i32(a);
    w.i32(b);
    w.i32(idx);
  }

  std::vector<std::pair<RouterId, RouterId>> down_local;
  for (RouterId u = 0; u < topo.params().total_routers(); ++u) {
    for (int p = topo.first_row_port(); p < topo.first_global_port(); ++p) {
      const RouterId v = topo.neighbor(u, p);
      if (v > u && !topo.port_enabled(u, p)) down_local.emplace_back(u, v);
    }
  }
  w.size(down_local.size());
  for (const auto& [u, v] : down_local) {
    w.i32(u);
    w.i32(v);
  }
}

void load_topology(Reader& r, DragonflyTopology& topo) {
  const int groups = topo.params().groups;
  const std::size_t nglobal = r.count(12);
  std::set<std::tuple<GroupId, GroupId, int>> down_global;
  for (std::size_t i = 0; i < nglobal; ++i) {
    const GroupId a = r.i32();
    const GroupId b = r.i32();
    const int idx = r.i32();
    if (a < 0 || b <= a || b >= groups) corrupt("disabled global link names a bad group pair");
    if (idx < 0 || static_cast<std::size_t>(idx) >= topo.all_global_links(a, b).size())
      corrupt("disabled global link index out of range");
    down_global.emplace(a, b, idx);
  }
  const std::size_t nlocal = r.count(8);
  std::set<std::pair<RouterId, RouterId>> down_local;
  for (std::size_t i = 0; i < nlocal; ++i) {
    const RouterId u = r.i32();
    const RouterId v = r.i32();
    if (u < 0 || v <= u || v >= topo.params().total_routers() || topo.local_port_to(u, v) < 0)
      corrupt("disabled local link endpoints are not neighbors");
    down_local.emplace(u, v);
  }

  // Two passes: enable everything that should be up first, then disable.
  // Enabling never trips the connectivity guard, and by the time the disable
  // pass runs, each intermediate state has a superset of the (guard-valid)
  // final state's enabled links — so the guard passes in any order.
  try {
    for (int pass = 0; pass < 2; ++pass) {
      const bool disabling = pass == 1;
      for (GroupId a = 0; a < groups; ++a) {
        for (GroupId b = a + 1; b < groups; ++b) {
          const std::size_t n = topo.all_global_links(a, b).size();
          for (std::size_t i = 0; i < n; ++i) {
            const bool down = down_global.count({a, b, static_cast<int>(i)}) > 0;
            if (down == disabling) topo.set_global_link_state(a, b, static_cast<int>(i), !down);
          }
        }
      }
      for (RouterId u = 0; u < topo.params().total_routers(); ++u) {
        for (int p = topo.first_row_port(); p < topo.first_global_port(); ++p) {
          const RouterId v = topo.neighbor(u, p);
          if (v <= u) continue;
          const bool down = down_local.count({u, v}) > 0;
          if (down == disabling) topo.set_local_link_state(u, v, !down);
        }
      }
    }
  } catch (const std::invalid_argument& e) {
    corrupt(std::string("checkpointed link state rejected by topology: ") + e.what());
  }
}

std::uint8_t presence_mask(const SimSnapshotParts& parts) {
  std::uint8_t mask = 0;
  if (parts.background != nullptr) mask |= 1u << 0;
  if (parts.injector != nullptr) mask |= 1u << 1;
  if (parts.monitor != nullptr) mask |= 1u << 2;
  if (parts.telemetry != nullptr) mask |= 1u << 3;
  return mask;
}

void require_parts(const SimSnapshotParts& parts) {
  if (parts.engine == nullptr || parts.topo == nullptr || parts.network == nullptr ||
      parts.replay == nullptr)
    throw std::logic_error("checkpoint: engine/topo/network/replay are mandatory");
}

}  // namespace

void save_checkpoint(const std::string& path, const SimSnapshotParts& parts) {
  require_parts(parts);
  const std::vector<EventHandler*> table = handler_table(parts);
  const auto id_of = [&table](EventHandler* handler) -> std::uint32_t {
    for (std::uint32_t id = 0; id < table.size(); ++id) {
      if (table[id] != nullptr && table[id] == handler) return id;
    }
    throw std::runtime_error("snapshot: event queue holds a handler outside the registry");
  };

  Writer w;
  w.str(parts.config);
  w.u64(parts.seed);
  w.i64(parts.engine->now());
  w.u64(parts.engine->events_processed());
  w.u64(parts.engine->pending());
  w.u8(presence_mask(parts));

  save_topology(w, *parts.topo);
  parts.engine->save_state(w, id_of);
  parts.network->save_state(w);
  parts.replay->save_state(w);
  if (parts.background != nullptr) parts.background->save_state(w);
  if (parts.injector != nullptr) parts.injector->save_state(w);
  if (parts.monitor != nullptr) parts.monitor->save_state(w);
  if (parts.telemetry != nullptr) parts.telemetry->save_state(w);

  write_snapshot_file(path, SnapshotKind::SimState, w.buffer());
}

void load_checkpoint(const std::string& path, SimSnapshotParts& parts) {
  require_parts(parts);
  const std::string payload = read_snapshot_file(path, SnapshotKind::SimState);
  Reader r(payload);

  const std::string config = r.str();
  const std::uint64_t seed = r.u64();
  r.i64();  // summary time (engine re-reads its own authoritative copy)
  r.u64();  // summary events processed
  r.u64();  // summary pending events
  const std::uint8_t mask = r.u8();
  if (config != parts.config)
    corrupt("checkpoint is for config '" + config + "', not '" + parts.config + "'");
  if (seed != parts.seed) corrupt("checkpoint was taken with a different seed");
  if (mask != presence_mask(parts))
    corrupt("subsystem lineup differs from the checkpointed run "
            "(background/fault/health/telemetry mismatch)");

  const std::vector<EventHandler*> table = handler_table(parts);
  const auto handler_of = [&table](std::uint32_t id) -> EventHandler* {
    if (id >= table.size() || table[id] == nullptr)
      throw std::runtime_error("snapshot: event references an unknown handler id");
    return table[id];
  };

  load_topology(r, *parts.topo);
  parts.engine->load_state(r, handler_of);
  parts.network->load_state(r);
  parts.replay->load_state(r);
  if (parts.background != nullptr) parts.background->load_state(r);
  if (parts.injector != nullptr) parts.injector->load_state(r);
  if (parts.monitor != nullptr) parts.monitor->load_state(r);
  if (parts.telemetry != nullptr) parts.telemetry->load_state(r);
  r.expect_end();
}

CheckpointInfo inspect_checkpoint(const std::string& path) {
  const std::string payload = read_snapshot_file(path, SnapshotKind::SimState);
  Reader r(payload);
  CheckpointInfo info;
  info.config = r.str();
  info.seed = r.u64();
  info.time = r.i64();
  info.events_processed = r.u64();
  info.pending_events = r.u64();
  const std::uint8_t mask = r.u8();
  info.has_background = (mask & (1u << 0)) != 0;
  info.has_injector = (mask & (1u << 1)) != 0;
  info.has_monitor = (mask & (1u << 2)) != 0;
  info.has_telemetry = (mask & (1u << 3)) != 0;
  return info;
}

// --- finished-run results (run_matrix sweep markers) ------------------------

namespace {

void save_dvec(Writer& w, const std::vector<double>& v) {
  w.size(v.size());
  for (const double x : v) w.f64(x);
}

std::vector<double> load_dvec(Reader& r) {
  const std::size_t n = r.count(8);
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(r.f64());
  return v;
}

}  // namespace

void save_result(const std::string& path, const ExperimentResult& result) {
  Writer w;
  w.str(result.config);
  const RunMetrics& m = result.metrics;
  save_dvec(w, m.comm_time_ms);
  save_dvec(w, m.avg_hops);
  save_dvec(w, m.local_traffic_mb);
  save_dvec(w, m.global_traffic_mb);
  save_dvec(w, m.local_saturation_ms);
  save_dvec(w, m.global_saturation_ms);
  w.f64(m.makespan_ms);
  w.u64(m.events);
  w.u64(m.chunks);
  w.i64(m.bytes_delivered);
  w.size(m.scheduler.buckets);
  w.i64(m.scheduler.bucket_width);
  w.size(m.scheduler.calendar_events);
  w.size(m.scheduler.overflow_events);
  w.size(m.scheduler.peak_pending);
  w.u64(m.scheduler.resizes);
  w.u64(m.scheduler.overflow_promotions);
  w.i64(result.background_bytes);
  w.boolean(result.hit_event_limit);
  w.i64(result.bytes_dropped);
  w.i64(result.bytes_retransmitted);
  w.i32(result.faults_fired);
  w.boolean(result.stalled);
  w.boolean(result.conservation_ok);
  w.str(result.health_report);
  w.str(result.telemetry_dir);
  w.u64(result.trace_chunks_seen);
  w.u64(result.trace_chunks_sampled);
  write_snapshot_file(path, SnapshotKind::SweepResult, w.buffer());
}

ExperimentResult load_result(const std::string& path) {
  const std::string payload = read_snapshot_file(path, SnapshotKind::SweepResult);
  Reader r(payload);
  ExperimentResult result;
  result.config = r.str();
  RunMetrics& m = result.metrics;
  m.comm_time_ms = load_dvec(r);
  m.avg_hops = load_dvec(r);
  m.local_traffic_mb = load_dvec(r);
  m.global_traffic_mb = load_dvec(r);
  m.local_saturation_ms = load_dvec(r);
  m.global_saturation_ms = load_dvec(r);
  m.makespan_ms = r.f64();
  m.events = r.u64();
  m.chunks = r.u64();
  m.bytes_delivered = r.i64();
  m.scheduler.buckets = r.u64();
  m.scheduler.bucket_width = r.i64();
  m.scheduler.calendar_events = r.u64();
  m.scheduler.overflow_events = r.u64();
  m.scheduler.peak_pending = r.u64();
  m.scheduler.resizes = r.u64();
  m.scheduler.overflow_promotions = r.u64();
  result.background_bytes = r.i64();
  result.hit_event_limit = r.boolean();
  result.bytes_dropped = r.i64();
  result.bytes_retransmitted = r.i64();
  result.faults_fired = r.i32();
  result.stalled = r.boolean();
  result.conservation_ok = r.boolean();
  result.health_report = r.str();
  result.telemetry_dir = r.str();
  result.trace_chunks_seen = r.u64();
  result.trace_chunks_sampled = r.u64();
  r.expect_end();
  return result;
}

}  // namespace dfly::ckpt
