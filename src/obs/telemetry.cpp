#include "obs/telemetry.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "ckpt/snapshot_io.hpp"
#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "net/network.hpp"
#include "obs/json.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dfly {

void TelemetryOptions::validate() const {
  if (!(sample_rate >= 0.0 && sample_rate <= 1.0))
    throw std::invalid_argument("telemetry: sample_rate must be in [0, 1]");
  if (snapshot_interval <= 0)
    throw std::invalid_argument("telemetry: snapshot_interval must be positive");
  if (enabled && out_dir.empty())
    throw std::invalid_argument("telemetry: out_dir must be set when telemetry is enabled");
}

void register_engine_counters(CounterRegistry& registry, const Engine& engine) {
  registry.add_source("engine.events_processed", MetricKind::Counter, [&engine] {
    return static_cast<std::int64_t>(engine.events_processed());
  });
  registry.add_source("engine.pending_events", MetricKind::Gauge,
                      [&engine] { return static_cast<std::int64_t>(engine.pending()); });
}

void register_network_counters(CounterRegistry& registry, const Network& network) {
  const auto counter = [&registry, &network](const char* name, Bytes (Network::*get)() const) {
    registry.add_source(name, MetricKind::Counter,
                        [&network, get] { return static_cast<std::int64_t>((network.*get)()); });
  };
  counter("net.bytes_injected", &Network::bytes_injected);
  counter("net.bytes_delivered", &Network::bytes_delivered);
  counter("net.bytes_dropped", &Network::bytes_dropped);
  counter("net.bytes_retransmitted", &Network::bytes_retransmitted);
  registry.add_source("net.chunks_forwarded", MetricKind::Counter, [&network] {
    return static_cast<std::int64_t>(network.chunks_forwarded());
  });
  registry.add_source("net.chunks_dropped", MetricKind::Counter, [&network] {
    return static_cast<std::int64_t>(network.chunks_dropped());
  });
  registry.add_source("net.retransmit_events", MetricKind::Counter, [&network] {
    return static_cast<std::int64_t>(network.retransmit_events());
  });
  registry.add_source("net.in_fabric_bytes", MetricKind::Gauge, [&network] {
    return static_cast<std::int64_t>(network.in_fabric_bytes());
  });
  registry.add_source("net.messages_in_flight", MetricKind::Gauge, [&network] {
    return static_cast<std::int64_t>(network.messages_in_flight());
  });
  const DragonflyTopology& topo = network.topology();
  registry.add_source("topo.disabled_global_links", MetricKind::Gauge, [&topo] {
    return static_cast<std::int64_t>(topo.disabled_global_links());
  });
  registry.add_source("topo.disabled_local_links", MetricKind::Gauge, [&topo] {
    return static_cast<std::int64_t>(topo.disabled_local_links());
  });
}

void register_routing_counters(CounterRegistry& registry, const RoutingTelemetry& telemetry) {
  registry.add_source("routing.decisions", MetricKind::Counter, [&telemetry] {
    return static_cast<std::int64_t>(telemetry.decisions());
  });
  registry.add_source("routing.minimal_chosen", MetricKind::Counter, [&telemetry] {
    return static_cast<std::int64_t>(telemetry.minimal_total());
  });
  registry.add_source("routing.nonminimal_chosen", MetricKind::Counter, [&telemetry] {
    return static_cast<std::int64_t>(telemetry.nonminimal_total());
  });
}

void register_fault_counters(CounterRegistry& registry, const FaultInjector& injector) {
  registry.add_source("fault.fired", MetricKind::Counter,
                      [&injector] { return static_cast<std::int64_t>(injector.fired()); });
  registry.add_source("fault.skipped", MetricKind::Counter,
                      [&injector] { return static_cast<std::int64_t>(injector.skipped()); });
}

void register_health_counters(CounterRegistry& registry, const HealthMonitor& monitor) {
  registry.add_source("health.ticks", MetricKind::Counter,
                      [&monitor] { return static_cast<std::int64_t>(monitor.ticks()); });
  registry.add_source("health.stalled", MetricKind::Gauge,
                      [&monitor] { return static_cast<std::int64_t>(monitor.stalled() ? 1 : 0); });
}

RunTelemetry::RunTelemetry(Engine& engine, Network& network, RoutingAlgorithm& routing,
                           const TelemetryOptions& options)
    : network_(network),
      routing_(routing),
      options_(options),
      tracer_(trace_, options.sample_rate, network.sharded() ? &engine : nullptr),
      probe_(engine, registry_, options.snapshot_interval) {
  options_.validate();
  // Sharded runs record routing decisions from worker threads; the stats
  // vector must be at full size up front so record() never resizes it.
  if (network.sharded()) routing_stats_.presize(network.topology().params().total_routers());
  network_.set_tracer(&tracer_);
  routing_.set_telemetry(&routing_stats_);
  register_engine_counters(registry_, engine);
  register_network_counters(registry_, network);
  register_routing_counters(registry_, routing_stats_);
}

RunTelemetry::~RunTelemetry() {
  network_.set_tracer(nullptr);
  routing_.set_telemetry(nullptr);
}

void RunTelemetry::save_state(ckpt::Writer& w) const {
  tracer_.save_state(w);
  trace_.save_state(w);
  probe_.save_state(w);
  const std::vector<RouteDecisionStats>& per_source = routing_stats_.per_source();
  w.size(per_source.size());
  for (const RouteDecisionStats& d : per_source) {
    w.u64(d.minimal);
    w.u64(d.nonminimal);
    w.f64(d.winning_score_sum);
    w.f64(d.minimal_score_sum);
    w.f64(d.nonminimal_score_sum);
  }
}

void RunTelemetry::load_state(ckpt::Reader& r) {
  tracer_.load_state(r);
  trace_.load_state(r);
  probe_.load_state(r);
  const std::size_t nsources = r.count(40);
  std::vector<RouteDecisionStats> per_source;
  per_source.reserve(nsources);
  for (std::size_t i = 0; i < nsources; ++i) {
    RouteDecisionStats d;
    d.minimal = r.u64();
    d.nonminimal = r.u64();
    d.winning_score_sum = r.f64();
    d.minimal_score_sum = r.f64();
    d.nonminimal_score_sum = r.f64();
    per_source.push_back(d);
  }
  routing_stats_.restore(std::move(per_source));
}

namespace {

/// {"count": n, "sum": s, "max": m} summary of a sample vector.
void write_vector_summary(obs::JsonWriter& w, const std::string& key,
                          const std::vector<double>& samples) {
  StreamingStats stats;
  for (const double v : samples) stats.add(v);
  w.key(key).begin_object();
  w.field("count", static_cast<std::int64_t>(stats.count()));
  w.field("sum", stats.count() ? stats.sum() : 0.0);
  w.field("max", stats.count() ? stats.max() : 0.0);
  w.field("mean", stats.count() ? stats.mean() : 0.0);
  w.end_object();
}

bool write_metrics_json(const std::string& path, const RunTelemetry& telemetry,
                        const ExperimentResult& result) {
  std::ofstream f(path);
  if (!f) return false;
  const RunMetrics& m = result.metrics;
  obs::JsonWriter w(f, 2);
  w.begin_object();
  w.field("schema_version", 2);
  w.field("config", result.config);
  w.field("makespan_ms", m.makespan_ms);
  w.field("median_comm_ms", m.median_comm_ms());
  w.field("max_comm_ms", m.max_comm_ms());
  w.field("events", m.events);
  w.field("chunks", m.chunks);
  w.field("bytes_delivered", m.bytes_delivered);
  w.field("background_bytes", result.background_bytes);
  w.field("hit_event_limit", result.hit_event_limit);
  w.field("stalled", result.stalled);
  w.field("conservation_ok", result.conservation_ok);
  w.field("bytes_dropped", result.bytes_dropped);
  w.field("bytes_retransmitted", result.bytes_retransmitted);
  w.field("faults_fired", std::int64_t{result.faults_fired});

  w.key("comm_time_ms").begin_object();
  w.field("count", static_cast<std::int64_t>(m.comm_time_ms.size()));
  for (const double p : {0.0, 25.0, 50.0, 75.0, 100.0})
    w.field("p" + std::to_string(static_cast<int>(p)),
            m.comm_time_ms.empty() ? 0.0 : percentile(m.comm_time_ms, p));
  w.end_object();

  write_vector_summary(w, "avg_hops", m.avg_hops);
  write_vector_summary(w, "local_traffic_mb", m.local_traffic_mb);
  write_vector_summary(w, "global_traffic_mb", m.global_traffic_mb);
  write_vector_summary(w, "local_saturation_ms", m.local_saturation_ms);
  write_vector_summary(w, "global_saturation_ms", m.global_saturation_ms);

  const ChunkPathTracer& tracer = telemetry.tracer();
  w.key("trace").begin_object();
  w.field("sample_rate", tracer.sample_rate());
  w.field("chunks_seen", tracer.chunks_seen());
  w.field("chunks_sampled", tracer.chunks_sampled());
  w.field("hops_recorded", tracer.hops_recorded());
  w.end_object();

  const RoutingTelemetry& routing = telemetry.routing_stats();
  w.key("routing").begin_object();
  w.field("decisions", routing.decisions());
  w.field("minimal_chosen", routing.minimal_total());
  w.field("nonminimal_chosen", routing.nonminimal_total());
  w.end_object();

  const SchedulerStats& s = m.scheduler;
  w.key("scheduler").begin_object();
  w.field("buckets", static_cast<std::int64_t>(s.buckets));
  w.field("bucket_width_ns", s.bucket_width);
  w.field("peak_pending", static_cast<std::int64_t>(s.peak_pending));
  w.field("resizes", s.resizes);
  w.field("overflow_promotions", s.overflow_promotions);
  w.end_object();

  w.end_object();
  f << '\n';
  return static_cast<bool>(f);
}

bool write_counters_jsonl(const std::string& path,
                          const std::vector<CounterSnapshot>& snapshots) {
  std::ofstream f(path);
  if (!f) return false;
  for (const CounterSnapshot& snap : snapshots) write_snapshot_jsonl(f, snap);
  return static_cast<bool>(f);
}

/// Per-(router, port) traffic / saturation / utilization rows — the heatmap
/// data behind the paper's per-channel CDF figures.
bool write_heatmap_csv(const std::string& path, const Network& network, SimTime end) {
  const DragonflyTopology& topo = network.topology();
  const NetworkParams& params = network.params();
  Table t;
  t.set_columns({"router", "port", "kind", "traffic_bytes", "saturated_ns", "utilization"});
  for (RouterId r = 0; r < topo.params().total_routers(); ++r) {
    const Router& router = network.router(r);
    for (int p = 0; p < router.num_ports(); ++p) {
      const OutPort& port = router.port(p);
      const double capacity = params.bandwidth(port.kind) * static_cast<double>(end);
      const double util =
          capacity > 0 ? static_cast<double>(port.traffic) / capacity : 0.0;
      t.add_row({Table::num(std::int64_t{r}), Table::num(std::int64_t{p}), to_string(port.kind),
                 Table::num(port.traffic), Table::num(port.saturated_time), Table::num(util, 6)});
    }
  }
  return t.write_csv(path);
}

}  // namespace

std::string export_run_artifacts(const RunTelemetry& telemetry, const ExperimentResult& result,
                                 const Network& network, SimTime end) {
  namespace fs = std::filesystem;
  const TelemetryOptions& options = telemetry.options();
  const fs::path dir = fs::path(options.out_dir) / result.config;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    log_warn("telemetry: cannot create " + dir.string() + ": " + ec.message());
    return "";
  }

  bool ok = write_metrics_json((dir / "metrics.json").string(), telemetry, result);
  ok = write_counters_jsonl((dir / "counters.jsonl").string(), telemetry.snapshots()) && ok;
  ok = write_heatmap_csv((dir / "heatmap.csv").string(), network, end) && ok;
  if (options.chrome_trace) ok = telemetry.trace().write((dir / "trace.json").string()) && ok;
  if (!ok) {
    log_warn("telemetry: failed to write one or more artifacts under " + dir.string());
    return "";
  }
  return dir.string();
}

}  // namespace dfly
