#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>

namespace dfly {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::set_columns(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  return *this;
}

Table& Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print_markdown(std::ostream& os) const {
  if (!title_.empty()) os << "\n### " << title_ << "\n\n";
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  emit(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) emit(row);
  os << '\n';
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  print_csv(f);
  return static_cast<bool>(f);
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v);
  return buf;
}

}  // namespace dfly
