#include "farm/manifest.hpp"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>

#include "ckpt/snapshot_io.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "util/stats.hpp"

namespace dfly::farm {
namespace {

namespace fs = std::filesystem;

const char* status_of(const ConfigOutcome& o) {
  if (o.completed) return "ok";
  if (o.quarantined) return "quarantined";
  return "interrupted";
}

void write_vector_summary(obs::JsonWriter& w, const std::string& key,
                          const std::vector<double>& samples) {
  StreamingStats stats;
  for (const double v : samples) stats.add(v);
  w.key(key).begin_object();
  w.field("count", static_cast<std::int64_t>(stats.count()));
  w.field("sum", stats.count() ? stats.sum() : 0.0);
  w.field("max", stats.count() ? stats.max() : 0.0);
  w.field("mean", stats.count() ? stats.mean() : 0.0);
  w.end_object();
}

/// CRC-32 + size digest of one per-run artifact file; false if unreadable.
bool file_digest(const fs::path& path, std::uint32_t& crc, std::uint64_t& bytes) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string data(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>{});
  crc = ckpt::crc32(data.data(), data.size());
  bytes = data.size();
  return true;
}

/// The merged view of one completed run: every simulation-determined field of
/// ExperimentResult (never paths or wall-clock values — manifest bytes must
/// not depend on where or how bumpily the run executed).
void write_result_record(obs::JsonWriter& w, const ExperimentResult& r) {
  const RunMetrics& m = r.metrics;
  w.field("makespan_ms", m.makespan_ms);
  w.field("median_comm_ms", m.median_comm_ms());
  w.field("max_comm_ms", m.max_comm_ms());
  w.field("events", m.events);
  w.field("chunks", m.chunks);
  w.field("bytes_delivered", m.bytes_delivered);
  w.field("background_bytes", r.background_bytes);
  w.field("hit_event_limit", r.hit_event_limit);
  w.field("stalled", r.stalled);
  w.field("conservation_ok", r.conservation_ok);
  w.field("bytes_dropped", r.bytes_dropped);
  w.field("bytes_retransmitted", r.bytes_retransmitted);
  w.field("faults_fired", std::int64_t{r.faults_fired});
  w.field("trace_chunks_seen", r.trace_chunks_seen);
  w.field("trace_chunks_sampled", r.trace_chunks_sampled);

  w.key("comm_time_ms").begin_object();
  w.field("count", static_cast<std::int64_t>(m.comm_time_ms.size()));
  for (const double p : {0.0, 25.0, 50.0, 75.0, 100.0})
    w.field("p" + std::to_string(static_cast<int>(p)),
            m.comm_time_ms.empty() ? 0.0 : percentile(m.comm_time_ms, p));
  w.end_object();

  write_vector_summary(w, "avg_hops", m.avg_hops);
  write_vector_summary(w, "local_traffic_mb", m.local_traffic_mb);
  write_vector_summary(w, "global_traffic_mb", m.global_traffic_mb);
  write_vector_summary(w, "local_saturation_ms", m.local_saturation_ms);
  write_vector_summary(w, "global_saturation_ms", m.global_saturation_ms);

  const SchedulerStats& s = m.scheduler;
  w.key("scheduler").begin_object();
  w.field("buckets", static_cast<std::int64_t>(s.buckets));
  w.field("bucket_width_ns", s.bucket_width);
  w.field("peak_pending", static_cast<std::int64_t>(s.peak_pending));
  w.field("resizes", s.resizes);
  w.field("overflow_promotions", s.overflow_promotions);
  w.end_object();

  // Digest the per-run telemetry artifacts into the manifest: the merge is
  // content-addressed, so a resumed-after-SIGKILL run only matches if its
  // artifacts are byte-identical too.
  if (!r.telemetry_dir.empty()) {
    w.key("artifacts").begin_object();
    for (const char* name : {"metrics.json", "counters.jsonl", "heatmap.csv"}) {
      std::uint32_t crc = 0;
      std::uint64_t bytes = 0;
      if (!file_digest(fs::path(r.telemetry_dir) / name, crc, bytes)) continue;
      const std::string key(name);
      w.field(key + ".crc32", static_cast<std::uint64_t>(crc));
      w.field(key + ".bytes", bytes);
    }
    w.end_object();
  }
}

void write_attempt(obs::JsonWriter& w, const AttemptRecord& a) {
  w.begin_object();
  w.field("outcome", to_string(a.outcome));
  w.field("exit_code", a.exit_code);
  w.field("signal", a.signal);
  w.field("timed_out", a.timed_out);
  w.field("resumed", a.resumed);
  w.field("chaos_killed", a.chaos_killed);
  w.field("chaos_stopped", a.chaos_stopped);
  w.field("wall_ms", a.wall_ms);
  w.field("backoff_ms", a.backoff_ms);
  w.end_object();
}

void register_farm_counters(CounterRegistry& registry, const FarmStats& stats) {
  const auto gauge = [&registry, &stats](const char* name, std::int64_t FarmStats::*field) {
    registry.add_source(name, MetricKind::Gauge, [&stats, field] { return stats.*field; });
  };
  gauge("farm.configs", &FarmStats::configs);
  gauge("farm.completed", &FarmStats::completed);
  gauge("farm.quarantined", &FarmStats::quarantined);
  gauge("farm.interrupted", &FarmStats::interrupted);
  gauge("farm.attempts", &FarmStats::attempts);
  gauge("farm.retries", &FarmStats::retries);
  gauge("farm.resumed_attempts", &FarmStats::resumed_attempts);
  gauge("farm.timeouts", &FarmStats::timeouts);
  gauge("farm.crashes", &FarmStats::crashes);
  gauge("farm.transients", &FarmStats::transients);
  gauge("farm.sigterm_escalations", &FarmStats::sigterm_escalations);
  gauge("farm.sigkill_escalations", &FarmStats::sigkill_escalations);
  gauge("farm.chaos_kills", &FarmStats::chaos_kills);
  gauge("farm.chaos_stops", &FarmStats::chaos_stops);
  gauge("farm.attempt_wall_ms_total", &FarmStats::attempt_wall_ms_total);
  gauge("farm.elapsed_ms", &FarmStats::elapsed_ms);
}

}  // namespace

std::string render_manifest(const FarmReport& report) {
  std::ostringstream os;
  obs::JsonWriter w(os, 2);
  w.begin_object();
  w.field("schema", "dfly-farm-manifest-v1");
  w.field("configs", static_cast<std::int64_t>(report.outcomes.size()));
  w.key("runs").begin_array();
  for (const ConfigOutcome& o : report.outcomes) {
    w.begin_object();
    w.field("config", o.config);
    w.field("status", status_of(o));
    if (o.completed) write_result_record(w, o.result);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
  return os.str();
}

std::string write_sweep_artifacts(const std::string& dir, const FarmReport& report) {
  fs::create_directories(dir);
  const std::string manifest_path = (fs::path(dir) / "manifest.json").string();
  {
    std::ofstream f(manifest_path, std::ios::trunc);
    if (!f) throw std::runtime_error("farm: cannot write " + manifest_path);
    f << render_manifest(report);
    if (!f.flush()) throw std::runtime_error("farm: write failed: " + manifest_path);
  }
  {
    const std::string path = (fs::path(dir) / "failures.jsonl").string();
    std::ofstream f(path, std::ios::trunc);
    if (!f) throw std::runtime_error("farm: cannot write " + path);
    for (const ConfigOutcome& o : report.outcomes) {
      if (!o.quarantined) continue;
      obs::JsonWriter w(f, /*indent=*/0);
      w.begin_object();
      w.field("config", o.config);
      w.field("final", to_string(o.final_outcome));
      w.field("attempts", static_cast<std::int64_t>(o.attempts.size()));
      std::int64_t wall_ms_total = 0;
      for (const AttemptRecord& a : o.attempts) wall_ms_total += a.wall_ms;
      w.field("wall_ms_total", wall_ms_total);
      w.field("error", o.error);
      w.key("history").begin_array();
      for (const AttemptRecord& a : o.attempts) write_attempt(w, a);
      w.end_array();
      w.end_object();
      f << '\n';
    }
    if (!f.flush()) throw std::runtime_error("farm: write failed: " + path);
  }
  {
    // The farm's own counters go through the same registry/snapshot machinery
    // as simulation counters, so sweep tooling parses one format everywhere.
    const std::string path = (fs::path(dir) / "farm_stats.json").string();
    CounterRegistry registry;
    register_farm_counters(registry, report.stats);
    std::ofstream f(path, std::ios::trunc);
    if (!f) throw std::runtime_error("farm: cannot write " + path);
    write_snapshot_jsonl(f, registry.snapshot(0));
    if (!f.flush()) throw std::runtime_error("farm: write failed: " + path);
  }
  return manifest_path;
}

}  // namespace dfly::farm
