// Unit tests for the trace model and its binary/text I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "trace/trace.hpp"
#include "trace/trace_io.hpp"
#include "workload/exchange.hpp"

namespace dfly {
namespace {

Trace small_trace() {
  Trace t(3);
  TagAllocator tags;
  emit_exchange(t, tags, 0, 1, 1000);
  emit_exchange(t, tags, 1, 2, 2000);
  emit_phase_end(t);
  t.rank(0).push_back(TraceOp::barrier());
  t.rank(1).push_back(TraceOp::barrier());
  t.rank(2).push_back(TraceOp::barrier());
  t.rank(0).push_back(TraceOp::pause(500));
  return t;
}

TEST(Trace, TotalsCountSendsOnly) {
  const Trace t = small_trace();
  EXPECT_EQ(t.total_send_bytes(), 1000 + 1000 + 2000 + 2000);
  EXPECT_EQ(t.total_ops(), 8u /*exchange*/ + 3u /*waitall*/ + 3u /*barrier*/ + 1u /*pause*/);
}

TEST(Trace, ValidatePassesOnBalancedTrace) {
  EXPECT_NO_THROW(small_trace().validate());
}

TEST(Trace, ValidateCatchesUnmatchedSend) {
  Trace t(2);
  t.rank(0).push_back(TraceOp::isend(1, 100, 0));
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Trace, ValidateCatchesSelfMessage) {
  Trace t(2);
  t.rank(0).push_back(TraceOp::isend(0, 100, 0));
  t.rank(0).push_back(TraceOp::irecv(0, 100, 0));
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Trace, ValidateCatchesPeerOutOfRange) {
  Trace t(2);
  t.rank(0).push_back(TraceOp::isend(5, 100, 0));
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Trace, ValidateCatchesSizeMismatch) {
  Trace t(2);
  t.rank(0).push_back(TraceOp::isend(1, 100, 0));
  t.rank(1).push_back(TraceOp::irecv(0, 999, 0));
  EXPECT_THROW(t.validate(), std::runtime_error);
}

TEST(Trace, ScaleMessageSizes) {
  Trace t = small_trace();
  t.scale_message_sizes(0.5);
  EXPECT_EQ(t.total_send_bytes(), 3000);
  EXPECT_NO_THROW(t.validate());  // scaling preserves matching
  t.scale_message_sizes(1e-9);
  EXPECT_EQ(t.total_send_bytes(), 4);  // clamped to >= 1 byte per message
  EXPECT_THROW(t.scale_message_sizes(0.0), std::invalid_argument);
}

TEST(TraceIo, BinaryRoundTrip) {
  const Trace t = small_trace();
  std::stringstream buf;
  write_trace(t, buf);
  const Trace back = read_trace(buf);
  ASSERT_EQ(back.ranks(), t.ranks());
  for (int r = 0; r < t.ranks(); ++r) {
    ASSERT_EQ(back.rank(r).size(), t.rank(r).size());
    for (std::size_t i = 0; i < t.rank(r).size(); ++i) {
      EXPECT_EQ(back.rank(r)[i].kind, t.rank(r)[i].kind);
      EXPECT_EQ(back.rank(r)[i].peer, t.rank(r)[i].peer);
      EXPECT_EQ(back.rank(r)[i].tag, t.rank(r)[i].tag);
      EXPECT_EQ(back.rank(r)[i].bytes, t.rank(r)[i].bytes);
      EXPECT_EQ(back.rank(r)[i].delay, t.rank(r)[i].delay);
    }
  }
}

TEST(TraceIo, FileRoundTrip) {
  const Trace t = small_trace();
  const std::string path = ::testing::TempDir() + "/dfly_trace_test.bin";
  save_trace(t, path);
  const Trace back = load_trace(path);
  EXPECT_EQ(back.ranks(), t.ranks());
  EXPECT_EQ(back.total_send_bytes(), t.total_send_bytes());
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buf("NOTATRACE");
  EXPECT_THROW(read_trace(buf), std::runtime_error);
}

TEST(TraceIo, RejectsTruncatedStream) {
  const Trace t = small_trace();
  std::stringstream buf;
  write_trace(t, buf);
  std::string data = buf.str();
  data.resize(data.size() / 2);
  std::stringstream cut(data);
  EXPECT_THROW(read_trace(cut), std::runtime_error);
}

TEST(TraceIo, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/dir/file.bin"), std::runtime_error);
}

// Binary layout, for the malformed-input tests below:
//   magic(4) version(4) sentinel(4) ranks(4) | per rank: count(8) then ops of
//   kind(1) peer(4) tag(4) bytes(8) delay(8). Rank 0's count sits at offset
//   16, its first op at offset 24.
std::string trace_bytes() {
  std::stringstream buf;
  write_trace(small_trace(), buf);
  return buf.str();
}

void expect_rejected(std::string data, const char* what) {
  std::stringstream buf(std::move(data));
  EXPECT_THROW(read_trace(buf), std::runtime_error) << what;
}

TEST(TraceIo, RejectsUnsupportedVersion) {
  std::string data = trace_bytes();
  data[4] = 99;
  expect_rejected(std::move(data), "version 99");
}

TEST(TraceIo, RejectsByteOrderMismatch) {
  // A byte-swapped writer would store the sentinel reversed.
  std::string data = trace_bytes();
  std::swap(data[8], data[11]);
  std::swap(data[9], data[10]);
  expect_rejected(std::move(data), "swapped sentinel");
}

TEST(TraceIo, RejectsImplausibleOpCount) {
  // Regression: a corrupt 8-byte count used to be fed straight into
  // ops.reserve(), allocating petabytes before the reads hit EOF.
  std::string data = trace_bytes();
  for (int i = 16; i < 24; ++i) data[i] = static_cast<char>(0xFF);
  expect_rejected(std::move(data), "count 2^64-1");
}

TEST(TraceIo, InBoundsCountLieFailsOnEofNotOnAllocation) {
  // A plausible-but-wrong count (says 5M ops, file holds a handful) must die
  // on truncation; the clamped reserve keeps the allocation bounded.
  std::string data = trace_bytes();
  const std::uint64_t lie = 5'000'000;
  std::memcpy(&data[16], &lie, sizeof lie);
  expect_rejected(std::move(data), "5M-op lie");
}

TEST(TraceIo, RejectsBadOpKind) {
  std::string data = trace_bytes();
  data[24] = static_cast<char>(0xEE);
  expect_rejected(std::move(data), "op kind 0xEE");
}

TEST(TraceIo, RejectsNegativeMessageSize) {
  std::string data = trace_bytes();
  for (int i = 33; i < 41; ++i) data[i] = static_cast<char>(0xFF);  // bytes = -1
  expect_rejected(std::move(data), "negative bytes");
}

TEST(TraceIo, RejectsNegativeDelay) {
  std::string data = trace_bytes();
  for (int i = 41; i < 49; ++i) data[i] = static_cast<char>(0xFF);  // delay = -1
  expect_rejected(std::move(data), "negative delay");
}

TEST(TraceIo, WriteToFailedStreamThrows) {
  // Regression: write_trace used to return with the stream in a failed state
  // and no error, surfacing later as a mysteriously truncated trace.
  std::ofstream bad("/nonexistent/dir/trace.bin", std::ios::binary);
  EXPECT_THROW(write_trace(small_trace(), bad), std::runtime_error);
}

TEST(TraceIo, TextDumpMentionsOps) {
  std::ostringstream os;
  dump_trace_text(small_trace(), os, 4);
  const std::string out = os.str();
  EXPECT_NE(out.find("rank 0"), std::string::npos);
  EXPECT_NE(out.find("isend"), std::string::npos);
  EXPECT_NE(out.find("barrier"), std::string::npos);
}

TEST(TagAllocator, MonotonicPerDirectedPair) {
  TagAllocator tags;
  EXPECT_EQ(tags.next(1, 2), 0);
  EXPECT_EQ(tags.next(1, 2), 1);
  EXPECT_EQ(tags.next(2, 1), 0);  // independent direction
  EXPECT_EQ(tags.next(1, 3), 0);
}

}  // namespace
}  // namespace dfly
