// Workload generators: synthetic stand-ins for the paper's DUMPI traces.
//
// The paper (§III-A, Fig. 2) documents each DOE Design Forward miniapp's
// communication structure precisely; these generators reproduce that
// structure. DESIGN.md §1 records the substitution argument.
//
//   CR  (crystal router, 1000 ranks): scalable multistage many-to-many
//       (hypercube-style pairwise stages) plus neighborhood exchanges;
//       constant ~190 KB messages.
//   FB  (fill boundary, 1000 ranks): 3-D block domain decomposition with
//       periodic boundaries; intensive 6-neighbor halo exchange with strongly
//       fluctuating sizes (aggregate 100 KB - 2560 KB per rank per step) plus
//       a light many-to-many stage.
//   AMG (algebraic multigrid, 1728 ranks): regional <=6-neighbor exchange on
//       a 12^3 grid; V-cycles with message sizes decreasing per level; three
//       bursts ("surges"), peak 75 KB; low total load.
#pragma once

#include <string>

#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace dfly {

struct Workload {
  std::string name;
  Trace trace;
};

struct CrParams {
  int ranks = 1000;
  int iterations = 2;               ///< repetitions of the multistage sweep
  Bytes message_bytes = 190 * units::kKB;
  int neighborhood_radius = 2;      ///< also exchange with rank +-1..+-radius
  double scale = 1.0;               ///< message-size multiplier (sensitivity knob)
};
Workload make_crystal_router(const CrParams& params);

struct FbParams {
  int nx = 10, ny = 10, nz = 10;    ///< rank grid (ranks = nx*ny*nz)
  int iterations = 2;
  Bytes min_step_load = 100 * units::kKB;   ///< aggregate halo load per rank, low
  Bytes max_step_load = 2560 * units::kKB;  ///< ... and high end of the fluctuation
  int a2a_partners = 4;             ///< many-to-many partners per iteration
  Bytes a2a_bytes = 64 * units::kKB;
  std::uint64_t seed = 7;
  double scale = 1.0;

  int ranks() const { return nx * ny * nz; }
};
Workload make_fill_boundary(const FbParams& params);

struct AmgParams {
  int nx = 12, ny = 12, nz = 12;    ///< rank grid (ranks = nx*ny*nz = 1728)
  int vcycles = 3;                  ///< the three surges of Fig. 2(f)
  int levels = 4;                   ///< multigrid levels per V-cycle
  Bytes peak_message_bytes = 75 * units::kKB / 6;  ///< per-neighbor size at the finest level
  double scale = 1.0;

  int ranks() const { return nx * ny * nz; }
};
Workload make_amg(const AmgParams& params);

}  // namespace dfly
