// Unit tests for descriptive statistics (box plots, CDFs, streaming stats).
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace dfly {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownValues) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeMatchesSequential) {
  StreamingStats all, a, b;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_double(-10, 10);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 17.5);
}

TEST(Percentile, SingleSample) {
  const std::vector<double> v = {42};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 42);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 42);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 42);
}

TEST(Percentile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{}, 50), 0.0);
}

TEST(BoxStats, FiveNumberSummary) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);  // 1..101
  const BoxStats b = box_stats(v);
  EXPECT_DOUBLE_EQ(b.min, 1);
  EXPECT_DOUBLE_EQ(b.q1, 26);
  EXPECT_DOUBLE_EQ(b.median, 51);
  EXPECT_DOUBLE_EQ(b.q3, 76);
  EXPECT_DOUBLE_EQ(b.max, 101);
  EXPECT_EQ(b.count, 101u);
}

TEST(BoxStats, UnsortedInput) {
  const std::vector<double> v = {5, 1, 4, 2, 3};
  const BoxStats b = box_stats(v);
  EXPECT_DOUBLE_EQ(b.min, 1);
  EXPECT_DOUBLE_EQ(b.median, 3);
  EXPECT_DOUBLE_EQ(b.max, 5);
}

TEST(Cdf, QuantileAndFractionAreInverses) {
  std::vector<double> v;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) v.push_back(rng.uniform_double(0, 100));
  const Cdf cdf(v);
  for (const double f : {0.1, 0.3, 0.5, 0.9}) {
    const double q = cdf.quantile(f);
    EXPECT_NEAR(cdf.fraction_at_or_below(q), f, 0.01);
  }
}

TEST(Cdf, MonotoneQuantiles) {
  const Cdf cdf({3, 1, 4, 1, 5, 9, 2, 6});
  double prev = cdf.quantile(0);
  for (double f = 0.05; f <= 1.0; f += 0.05) {
    const double q = cdf.quantile(f);
    EXPECT_GE(q, prev);
    prev = q;
  }
}

TEST(Cdf, FractionBelowMinAndAboveMax) {
  const Cdf cdf({10, 20, 30});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(30), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(100), 1.0);
}

TEST(FormatBox, RendersAllFiveNumbers) {
  const BoxStats b{1.5, 2.5, 3.5, 4.5, 5.5, 5};
  EXPECT_EQ(format_box(b, 1), "1.5 / 2.5 / 3.5 / 4.5 / 5.5");
}

}  // namespace
}  // namespace dfly
