// Cross-cutting property tests: monotonicity and invariance of whole
// experiments under the study's knobs (message scale, seeds, placement
// granularity).
#include <gtest/gtest.h>

#include "core/run_matrix.hpp"
#include "util/stats.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

Workload tiny_ring() { return Workload{"ring", make_ring_trace(32, 64 * units::kKiB, 1)}; }

ExperimentOptions tiny_options(std::uint64_t seed = 3) {
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  options.seed = seed;
  options.max_events = 200'000'000;
  return options;
}

class ScaleMonotonic : public ::testing::TestWithParam<ExperimentConfig> {};

TEST_P(ScaleMonotonic, CommTimeGrowsWithMessageScale) {
  double prev = 0;
  for (const double scale : {0.25, 1.0, 4.0}) {
    ExperimentOptions options = tiny_options();
    options.msg_scale = scale;
    const ExperimentResult r = run_experiment(tiny_ring(), GetParam(), options);
    const double median = r.metrics.median_comm_ms();
    EXPECT_GT(median, prev) << "scale " << scale;
    prev = median;
  }
}

INSTANTIATE_TEST_SUITE_P(Extremes, ScaleMonotonic, ::testing::ValuesIn(extreme_configs()),
                         [](const auto& pinfo) {
                           std::string name = pinfo.param.name();
                           for (char& ch : name)
                             if (ch == '-') ch = '_';
                           return name;
                         });

TEST(ScalingProperty, HopsAreScaleInvariant) {
  // Average hops depend on placement and routing choice, not message size —
  // under minimal routing exactly (no congestion feedback into paths).
  const ExperimentConfig config{PlacementKind::RandomNode, RoutingKind::Minimal};
  ExperimentOptions a = tiny_options(), b = tiny_options();
  a.msg_scale = 0.25;
  b.msg_scale = 4.0;
  const ExperimentResult ra = run_experiment(tiny_ring(), config, a);
  const ExperimentResult rb = run_experiment(tiny_ring(), config, b);
  // Same placement (same seed), same routing randomness stream structure;
  // medians agree to within the tie-break noise of intersection choices.
  EXPECT_NEAR(percentile(ra.metrics.avg_hops, 50), percentile(rb.metrics.avg_hops, 50), 0.3);
}

TEST(ScalingProperty, PlacementGranularityOrdersHops) {
  // cont <= cab <= chas <= rotr <= rand in median hops under minimal routing
  // (coarser contiguity keeps more communication local). Allow equality.
  ExperimentOptions options = tiny_options(17);
  const Workload w = tiny_ring();
  double prev = 0;
  for (const PlacementKind placement :
       {PlacementKind::Contiguous, PlacementKind::RandomChassis, PlacementKind::RandomNode}) {
    const ExperimentResult r =
        run_experiment(w, ExperimentConfig{placement, RoutingKind::Minimal}, options);
    const double hops = percentile(r.metrics.avg_hops, 50);
    EXPECT_GE(hops + 1e-9, prev) << to_string(placement);
    prev = hops;
  }
}

TEST(ScalingProperty, SaturationOnlyUnderLoad) {
  // At 1% of the load there must be (almost) no link saturation; at 8x there
  // must be more than at 1x.
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};
  auto total_saturation = [&](double scale) {
    ExperimentOptions options = tiny_options();
    options.msg_scale = scale;
    const ExperimentResult r = run_experiment(tiny_ring(), config, options);
    double total = 0;
    for (const double s : r.metrics.local_saturation_ms) total += s;
    for (const double s : r.metrics.global_saturation_ms) total += s;
    return total;
  };
  const double low = total_saturation(0.01);
  const double mid = total_saturation(1.0);
  const double high = total_saturation(8.0);
  EXPECT_LE(low, mid);
  EXPECT_LT(mid, high);
}

TEST(ScalingProperty, BiggerJobsTakeLonger) {
  ExperimentOptions options = tiny_options();
  const ExperimentConfig config{PlacementKind::RandomNode, RoutingKind::Adaptive};
  const Workload small{"ring", make_ring_trace(16, 64 * units::kKiB, 1)};
  const Workload large{"ring", make_ring_trace(16, 64 * units::kKiB, 4)};
  const double t_small = run_experiment(small, config, options).metrics.median_comm_ms();
  const double t_large = run_experiment(large, config, options).metrics.median_comm_ms();
  EXPECT_GT(t_large, t_small);
}

TEST(ScalingProperty, EventCountScalesWithVolume) {
  const ExperimentConfig config{PlacementKind::RandomNode, RoutingKind::Minimal};
  ExperimentOptions a = tiny_options(), b = tiny_options();
  a.msg_scale = 1.0;
  b.msg_scale = 4.0;
  const auto ra = run_experiment(tiny_ring(), config, a);
  const auto rb = run_experiment(tiny_ring(), config, b);
  // 4x the bytes => roughly 4x the chunks; events scale accordingly (within
  // a factor accounting for fixed per-message overhead).
  EXPECT_GT(rb.metrics.events, 2 * ra.metrics.events);
  EXPECT_LT(rb.metrics.events, 8 * ra.metrics.events);
}

}  // namespace
}  // namespace dfly
