// ASCII/Markdown table rendering and CSV export for benchmark output.
//
// Every figure/table reproduction prints through this so all benches share one
// visual format and can additionally dump CSV for external plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dfly {

class Table {
 public:
  explicit Table(std::string title = "");

  Table& set_columns(std::vector<std::string> headers);
  Table& add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }
  const std::string& title() const { return title_; }

  /// GitHub-flavoured Markdown table.
  void print_markdown(std::ostream& os) const;
  /// Comma-separated values, header row first. Cells containing commas or
  /// quotes are quoted per RFC 4180.
  void print_csv(std::ostream& os) const;
  /// Writes CSV to `path`; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

  /// Helpers for numeric cells.
  static std::string num(double v, int precision = 2);
  static std::string num(std::int64_t v);
  static std::string pct(double v, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dfly
