// Seeded violation fixture: R1 (wall-clock) and R2 (raw-rng) in an artifact
// module. dfly_lint over this tree must exit nonzero — CI asserts it.
#include <chrono>
#include <cstdlib>

long seeded_wall_clock_read() {
  const auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count() + rand();
}
