// Seeded violation fixture: R6 (pod-assert) — a struct in ckpt/ with no
// static_assert pinning its triviality/size and no allow() annotation.
#pragma once

#include <cstdint>

struct SeededFrame {
  std::uint64_t serial;
  std::int32_t kind;
};
