// Microbenchmarks (google-benchmark) for the simulator's hot paths: event
// scheduling/dispatch, route computation, topology construction, placement
// generation, and end-to-end network throughput in events per second.
//
// In addition to the google-benchmark suite, main() runs a head-to-head
// scheduler harness — binary heap vs. calendar queue, on a monotonic and a
// backoff-heavy event mix — and records the result into BENCH_engine.json so
// the scheduler's perf trajectory is tracked PR over PR.
//
//   bench_micro_engine                # head-to-head + full gbench suite
//   bench_micro_engine --smoke        # quick head-to-head only; exits 1 if
//                                     # the calendar queue regresses vs. heap
//   bench_micro_engine --out=FILE     # where to write the JSON (default
//                                     # BENCH_engine.json in the cwd)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "net/network.hpp"
#include "place/placement.hpp"
#include "prof/profiler.hpp"
#include "routing/adaptive.hpp"
#include "routing/minimal.hpp"
#include "routing/valiant.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"

namespace dfly {
namespace {

class NullHandler : public EventHandler {
 public:
  void handle_event(SimTime, const EventPayload&) override {}
};

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto events = static_cast<std::uint64_t>(state.range(0));
  NullHandler handler;
  for (auto _ : state) {
    Engine engine;
    Rng rng(1);
    for (std::uint64_t i = 0; i < events; ++i)
      engine.schedule(static_cast<SimTime>(rng.uniform(1'000'000)), &handler, EventPayload{});
    engine.run();
    benchmark::DoNotOptimize(engine.events_processed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) * state.iterations());
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1 << 14)->Arg(1 << 17);

class IdleCongestion : public CongestionView {
 public:
  Bytes queued_bytes(RouterId, int) const override { return 0; }
};

template <typename Algorithm>
void route_benchmark(benchmark::State& state) {
  static const DragonflyTopology topo(TopoParams::theta());
  const Algorithm routing(topo);
  IdleCongestion idle;
  Rng rng(7);
  const int nodes = topo.params().total_nodes();
  for (auto _ : state) {
    const auto src = static_cast<NodeId>(rng.uniform(nodes));
    auto dst = static_cast<NodeId>(rng.uniform(nodes - 1));
    if (dst >= src) ++dst;
    benchmark::DoNotOptimize(routing.compute(src, dst, idle, rng));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MinimalRoute(benchmark::State& state) { route_benchmark<MinimalRouting>(state); }
void BM_ValiantRoute(benchmark::State& state) { route_benchmark<ValiantRouting>(state); }
void BM_AdaptiveRoute(benchmark::State& state) { route_benchmark<AdaptiveRouting>(state); }
BENCHMARK(BM_MinimalRoute);
BENCHMARK(BM_ValiantRoute);
BENCHMARK(BM_AdaptiveRoute);

void BM_ThetaTopologyBuild(benchmark::State& state) {
  for (auto _ : state) {
    DragonflyTopology topo(TopoParams::theta());
    benchmark::DoNotOptimize(topo.total_channels());
  }
}
BENCHMARK(BM_ThetaTopologyBuild);

void BM_Placement(benchmark::State& state) {
  const TopoParams params = TopoParams::theta();
  const auto kind = static_cast<PlacementKind>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_placement(kind, params, 1000, rng));
  }
}
BENCHMARK(BM_Placement)->DenseRange(0, 4);

void BM_NetworkRandomTraffic(benchmark::State& state) {
  // End-to-end events/sec: 2000 random messages of 16 KiB on Theta.
  static const DragonflyTopology topo(TopoParams::theta());
  for (auto _ : state) {
    Engine engine;
    MinimalRouting routing(topo);
    Network network(engine, topo, NetworkParams::theta(), routing, Rng(3));
    Rng traffic(5);
    const int nodes = topo.params().total_nodes();
    for (int i = 0; i < 2000; ++i) {
      const auto src = static_cast<NodeId>(traffic.uniform(nodes));
      auto dst = static_cast<NodeId>(traffic.uniform(nodes - 1));
      if (dst >= src) ++dst;
      network.send(src, dst, 16 * units::kKiB);
    }
    engine.run();
    benchmark::DoNotOptimize(network.bytes_delivered());
    state.counters["events"] = static_cast<double>(engine.events_processed());
  }
}
BENCHMARK(BM_NetworkRandomTraffic)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Head-to-head scheduler harness: heap vs. calendar queue.
//
// The hold model mirrors the simulator's steady state: the queue sits at a
// fixed occupancy and every dispatched event schedules a successor.
//  * monotonic mix — every successor lands a short uniform delay ahead, the
//    distribution of chunk/credit/port events in a running network.
//  * backoff-heavy mix — 10% of successors are retransmit backoff timers at
//    20 us << k (k in [0,16)), seconds into the future; stresses the
//    overflow tier.
// ---------------------------------------------------------------------------

struct MixSpec {
  const char* name;
  double far_fraction;  // probability a successor is a far-future backoff timer
};

constexpr MixSpec kMixes[] = {
    {"monotonic", 0.0},
    {"backoff_heavy", 0.1},
};

template <typename Queue>
double measure_mix_meps(const MixSpec& mix, std::size_t hold, std::uint64_t events) {
  Queue queue;
  NullHandler handler;
  Rng rng(42);
  std::uint64_t seq = 0;
  SimTime now = 0;
  for (std::size_t i = 0; i < hold; ++i) {
    const auto when = static_cast<SimTime>(1 + rng.uniform(2000));
    queue.push(QueuedEvent{when, seq++, &handler, EventPayload{}});
  }
  SimTime checksum = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t e = 0; e < events; ++e) {
    const QueuedEvent ev = queue.pop_min();
    now = ev.time;
    checksum += now;
    SimTime delay;
    if (mix.far_fraction > 0.0 && rng.bernoulli(mix.far_fraction))
      delay = SimTime{20} * units::kMicrosecond << static_cast<int>(rng.uniform(16));
    else
      delay = 1 + static_cast<SimTime>(rng.uniform(2000));
    queue.push(QueuedEvent{now + delay, seq++, &handler, EventPayload{}});
  }
  const auto t1 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(checksum);
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(events) / secs / 1e6;
}

struct MixResult {
  const char* name;
  std::uint64_t events;
  double heap_meps;
  double calendar_meps;
  double speedup;
};

MixResult run_head_to_head(const MixSpec& mix, std::size_t hold, std::uint64_t events,
                           int repetitions) {
  MixResult r{mix.name, events, 0.0, 0.0, 0.0};
  for (int rep = 0; rep < repetitions; ++rep) {
    r.heap_meps = std::max(r.heap_meps, measure_mix_meps<HeapEventQueue>(mix, hold, events));
    r.calendar_meps =
        std::max(r.calendar_meps, measure_mix_meps<CalendarEventQueue>(mix, hold, events));
  }
  r.speedup = r.calendar_meps / r.heap_meps;
  return r;
}

// ---------------------------------------------------------------------------
// Parallel-engine headline: the sharded engine on Theta-scale random traffic,
// threads=1 (serial-sharded oracle) vs. threads=4. Records both the measured
// wall-clock speedup and the critical-path projection
// total_events / max(busiest_lane, total/threads) — the bound the lane
// partition itself imposes. On a multi-core host the measured number should
// approach the projection; on a single-core CI container only the projection
// is meaningful, so both are recorded with the core count alongside.
// ---------------------------------------------------------------------------

struct ParallelResult {
  std::uint64_t events = 0;
  double serial_meps = 0.0;
  double parallel_meps = 0.0;
  double speedup_measured = 0.0;
  double speedup_projected = 0.0;
  int threads = 0;
  unsigned host_cores = 0;
};

double run_sharded_theta(const DragonflyTopology& topo, int threads, int messages,
                         std::uint64_t* events_out, double* projected_out,
                         prof::Profiler* profiler = nullptr) {
  const NetworkParams params = NetworkParams::theta();
  Engine engine;
  ShardingOptions sharding;
  sharding.shards = topo.params().groups;
  sharding.lookahead = params.global_latency;
  sharding.threads = threads;
  engine.enable_sharding(sharding);
  engine.set_profiler(profiler);
  MinimalRouting routing(topo);
  Network network(engine, topo, params, routing, Rng(3));
  network.enable_sharding(params.global_latency);
  Rng traffic(5);
  const int nodes = topo.params().total_nodes();
  for (int i = 0; i < messages; ++i) {
    const auto src = static_cast<NodeId>(traffic.uniform(nodes));
    auto dst = static_cast<NodeId>(traffic.uniform(nodes - 1));
    if (dst >= src) ++dst;
    network.send(src, dst, 16 * units::kKiB);
  }
  const auto t0 = std::chrono::steady_clock::now();
  engine.run();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t total = engine.events_processed();
  if (events_out) *events_out = total;
  if (projected_out) {
    std::uint64_t busiest = 0;
    for (int lane = 0; lane < engine.lanes(); ++lane)
      busiest = std::max(busiest, engine.lane_processed(lane));
    const std::uint64_t ideal = (total + static_cast<std::uint64_t>(threads) - 1) /
                                static_cast<std::uint64_t>(threads);
    *projected_out = static_cast<double>(total) / static_cast<double>(std::max(busiest, ideal));
  }
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(total) / secs / 1e6;
}

ParallelResult run_parallel_headline(bool smoke) {
  const int messages = smoke ? 2'000 : 20'000;
  const int threads = 4;
  const DragonflyTopology topo(TopoParams::theta());
  ParallelResult r;
  r.threads = threads;
  r.host_cores = std::thread::hardware_concurrency();
  const int repetitions = smoke ? 1 : 3;
  for (int rep = 0; rep < repetitions; ++rep) {
    r.serial_meps = std::max(r.serial_meps, run_sharded_theta(topo, 1, messages, &r.events, nullptr));
    r.parallel_meps = std::max(
        r.parallel_meps, run_sharded_theta(topo, threads, messages, nullptr, &r.speedup_projected));
  }
  r.speedup_measured = r.parallel_meps / r.serial_meps;
  return r;
}

// ---------------------------------------------------------------------------
// Multi-core scaling matrix: the same Theta-scale workload at threads
// {1, 2, 4, 8}, each run with a src/prof/ profiler attached, recording the
// measured speedup over threads=1 alongside the profiler's barrier-stall
// fraction and lane imbalance — the two quantities that explain any gap
// between measured and projected scaling (DESIGN.md §10/§11).
// ---------------------------------------------------------------------------

struct ScalingRow {
  int threads = 0;
  std::uint64_t events = 0;
  double meps = 0.0;
  double speedup = 0.0;              ///< meps over the threads=1 row's meps
  double barrier_stall_frac = 0.0;   ///< sum(wait) / sum(busy + wait)
  double lane_imbalance = 0.0;       ///< busiest lane busy / mean lane busy
};

std::vector<ScalingRow> run_scaling_matrix(bool smoke) {
  const int messages = smoke ? 2'000 : 20'000;
  const int repetitions = smoke ? 1 : 3;
  const DragonflyTopology topo(TopoParams::theta());
  std::vector<ScalingRow> rows;
  for (const int threads : {1, 2, 4, 8}) {
    ScalingRow row;
    row.threads = threads;
    for (int rep = 0; rep < repetitions; ++rep) {
      prof::ProfOptions popts;
      popts.enabled = true;
      prof::Profiler profiler(popts, topo.params().groups + 1, threads);
      const double meps =
          run_sharded_theta(topo, threads, messages, &row.events, nullptr, &profiler);
      if (meps > row.meps) {
        row.meps = meps;
        row.barrier_stall_frac = profiler.barrier_stall_fraction();
        row.lane_imbalance = profiler.lane_imbalance();
      }
    }
    rows.push_back(row);
  }
  for (ScalingRow& r : rows) r.speedup = r.meps / rows.front().meps;
  return rows;
}

int run_harness(bool smoke, const std::string& out_path) {
  const std::size_t hold = smoke ? (1u << 14) : (1u << 16);
  const std::uint64_t events = smoke ? 400'000 : 4'000'000;
  const int repetitions = smoke ? 2 : 3;

  MixResult results[std::size(kMixes)];
  for (std::size_t i = 0; i < std::size(kMixes); ++i) {
    results[i] = run_head_to_head(kMixes[i], hold, events, repetitions);
    std::printf("[engine %-13s] heap %7.2f Mev/s | calendar %7.2f Mev/s | speedup %.2fx\n",
                results[i].name, results[i].heap_meps, results[i].calendar_meps,
                results[i].speedup);
  }

  const ParallelResult par = run_parallel_headline(smoke);
  std::printf(
      "[engine parallel     ] serial %7.2f Mev/s | threads=%d %7.2f Mev/s | "
      "measured %.2fx | projected %.2fx (%u cores)\n",
      par.serial_meps, par.threads, par.parallel_meps, par.speedup_measured,
      par.speedup_projected, par.host_cores);

  const std::vector<ScalingRow> scaling = run_scaling_matrix(smoke);
  for (const ScalingRow& r : scaling)
    std::printf(
        "[engine scaling t=%d  ] %7.2f Mev/s | speedup %.2fx | barrier stall %.3f | "
        "imbalance %.2f\n",
        r.threads, r.meps, r.speedup, r.barrier_stall_frac, r.lane_imbalance);

  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"benchmark\": \"bench_micro_engine\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n  \"hold\": %zu,\n  \"mixes\": [\n", smoke ? "true" : "false",
                 hold);
    for (std::size_t i = 0; i < std::size(kMixes); ++i) {
      const MixResult& r = results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"events\": %llu, \"heap_meps\": %.3f, "
                   "\"calendar_meps\": %.3f, \"speedup\": %.3f}%s\n",
                   r.name, static_cast<unsigned long long>(r.events), r.heap_meps, r.calendar_meps,
                   r.speedup, i + 1 < std::size(kMixes) ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"parallel\": {\"topo\": \"theta\", \"threads\": %d, \"events\": %llu, "
                 "\"serial_meps\": %.3f, \"parallel_meps\": %.3f, \"speedup_measured\": %.3f, "
                 "\"speedup_projected\": %.3f, \"host_cores\": %u, "
                 "\"basis\": \"projected = total events / max(busiest lane, total/threads); "
                 "measured wall-clock is core-count bound\"},\n",
                 par.threads, static_cast<unsigned long long>(par.events), par.serial_meps,
                 par.parallel_meps, par.speedup_measured, par.speedup_projected, par.host_cores);
    std::fprintf(f, "  \"scaling\": [\n");
    for (std::size_t i = 0; i < scaling.size(); ++i) {
      const ScalingRow& r = scaling[i];
      std::fprintf(f,
                   "    {\"threads\": %d, \"events\": %llu, \"meps\": %.3f, \"speedup\": %.3f, "
                   "\"barrier_stall_frac\": %.4f, \"lane_imbalance\": %.3f}%s\n",
                   r.threads, static_cast<unsigned long long>(r.events), r.meps, r.speedup,
                   r.barrier_stall_frac, r.lane_imbalance, i + 1 < scaling.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"host_cores\": %u\n", par.host_cores);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  if (smoke) {
    // Loose gates (wall-clock noise, shared CI runners); the recorded JSON
    // carries the precise numbers. A calendar queue slower than the heap it
    // replaced is a regression worth failing the build for.
    int rc = 0;
    if (results[0].speedup < 1.3) {
      std::fprintf(stderr, "FAIL: monotonic-mix speedup %.2fx < 1.3x\n", results[0].speedup);
      rc = 1;
    }
    if (results[1].speedup < 0.7) {
      std::fprintf(stderr, "FAIL: backoff-heavy-mix speedup %.2fx < 0.7x\n", results[1].speedup);
      rc = 1;
    }
    return rc;
  }
  return 0;
}

}  // namespace
}  // namespace dfly

int main(int argc, char** argv) {
  bool smoke = false;
  bool harness_only = false;
  std::string out_path = "BENCH_engine.json";
  int gargc = 0;
  std::vector<char*> gargv;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--harness-only") == 0) {
      harness_only = true;  // full-size harness + JSON, skip the gbench suite
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      gargv.push_back(argv[i]);
      ++gargc;
    }
  }

  const int rc = dfly::run_harness(smoke, out_path);
  if (smoke || harness_only || rc != 0) return rc;

  benchmark::Initialize(&gargc, gargv.data());
  if (benchmark::ReportUnrecognizedArguments(gargc, gargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
