// Minimal routing (paper §III-C): within a group, at most one intersection
// router; across groups, a global link directly connecting to the
// destination group. Guarantees the minimum hop count; has no congestion
// sensing.
#pragma once

#include "routing/algorithm.hpp"
#include "routing/router_table.hpp"

namespace dfly {

class MinimalRouting : public RoutingAlgorithm {
 public:
  explicit MinimalRouting(const DragonflyTopology& topo);

  Route compute(NodeId src, NodeId dst, const CongestionView& congestion,
                Rng& rng) const override;
  std::string name() const override { return "minimal"; }
  void on_topology_changed() override { table_.refresh(); }

  const MinimalPathTable& table() const { return table_; }

 private:
  MinimalPathTable table_;
};

}  // namespace dfly
