// Cascade-style dragonfly wiring: port layout, local (row/column all-to-all)
// links, and a deterministic symmetric global-link arrangement.
//
// Port layout on every router (indices are contiguous):
//   [0, N)                terminal ports, one per attached compute node
//   [N, N+C-1)            row-local ports (one per other column in my row)
//   [N+C-1, N+C-1+R-1)    column-local ports (one per other row in my column)
//   [.., +G)              global ports
//
// Global arrangement: number each group's global ports linearly as
// i = router_in_group * G + port. Port i points at peer group peers[i % (P-1)]
// where `peers` lists the other groups in increasing order. For a pair (a,b),
// the j-th port of a pointing at b connects to the j-th port of b pointing at
// a — symmetric by construction and validated at build time.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "topo/coordinates.hpp"
#include "util/rng.hpp"

namespace dfly {

enum class PortKind : std::uint8_t { Terminal, LocalRow, LocalCol, Global };

const char* to_string(PortKind kind);

/// One directed side of a global link.
struct GlobalLink {
  RouterId src_router;
  int src_port;  ///< absolute port index on src_router
  RouterId dst_router;
  int dst_port;
};

class DragonflyTopology {
 public:
  explicit DragonflyTopology(const TopoParams& params);

  const TopoParams& params() const { return params_; }
  const Coordinates& coords() const { return coords_; }

  int ports_per_router() const { return ports_per_router_; }
  int first_row_port() const { return params_.nodes_per_router; }
  int first_col_port() const { return first_row_port() + params_.cols - 1; }
  int first_global_port() const { return first_col_port() + params_.rows - 1; }

  PortKind port_kind(int port) const;

  /// Peer router of (router, port); asserts the port is not a terminal port.
  RouterId neighbor(RouterId router, int port) const;
  /// The port index on the peer router that the reverse channel uses.
  int neighbor_port(RouterId router, int port) const;

  /// Port on `from` that reaches `to`, which must share `from`'s row.
  int row_port_to(RouterId from, RouterId to) const;
  /// Port on `from` that reaches `to`, which must share `from`'s column.
  int col_port_to(RouterId from, RouterId to) const;
  /// Port for any router in the same group reachable in one local hop;
  /// returns -1 if `to` is neither in the same row nor column.
  int local_port_to(RouterId from, RouterId to) const;

  /// All *enabled* global links from group `ga` to group `gb` (directed
  /// view). Disabled links are excluded, so routing built on these lists
  /// automatically avoids faulty hardware.
  std::span<const GlobalLink> global_links(GroupId ga, GroupId gb) const;

  /// The full as-built wiring between `ga` and `gb`, including disabled
  /// links. Indices into this list are stable across enable/disable and are
  /// the link identity used by fault schedules (fault/fault.hpp).
  std::span<const GlobalLink> all_global_links(GroupId ga, GroupId gb) const;

  // --- fault injection -----------------------------------------------------
  // Links can be marked failed (both directions at once) before a simulation
  // *or while one is running*. Routing tables snapshot the link lists, so
  // after a runtime change call RoutingAlgorithm::on_topology_changed() (a
  // FaultInjector does this for you) to rebuild the affected table entries.
  // Every mutation bumps per-group-pair / per-group version counters that
  // MinimalPathTable::refresh() uses to rebuild only what changed.

  /// Disables the `index`-th enabled link between groups a and b (order as
  /// returned by global_links(a, b)). Throws std::invalid_argument if it is
  /// the last link of the pair (the pair would disconnect) or out of range.
  void disable_global_link(GroupId a, GroupId b, int index);

  /// Sets the state of the `all_index`-th as-built link between a and b
  /// (order as returned by all_global_links(a, b)), both directions at once.
  /// Returns true if the state changed, false if it was already as asked.
  /// Throws std::invalid_argument if downing it would disconnect the pair or
  /// the index is out of range.
  bool set_global_link_state(GroupId a, GroupId b, int all_index, bool up);

  /// Sets the state of the local (row/col) link between neighboring routers
  /// `u` and `v`, both directions at once. Returns true if the state changed.
  /// Throws std::invalid_argument if u and v are not local neighbors, or if
  /// downing the link would leave some router pair of the group without a
  /// minimal (<= 2 local hops) path — the same never-disconnect guard global
  /// links have.
  bool set_local_link_state(RouterId u, RouterId v, bool up);

  /// Convenience: set_local_link_state(u, v, false); no-op if already down.
  void disable_local_link(RouterId u, RouterId v) { set_local_link_state(u, v, false); }

  /// True unless the port is a global or local port whose link was disabled.
  bool port_enabled(RouterId router, int port) const;

  int disabled_global_links() const { return disabled_count_; }
  int disabled_local_links() const { return disabled_local_count_; }

  // --- change tracking (consumed by MinimalPathTable::refresh) -------------
  /// Bumped on every link-state mutation.
  std::uint64_t epoch() const { return epoch_; }
  /// Bumped (symmetrically) when a global link between a and b changes.
  std::uint64_t pair_version(GroupId a, GroupId b) const {
    return pair_version_[static_cast<std::size_t>(a) * params_.groups + b];
  }
  /// Bumped when a local link inside group g changes.
  std::uint64_t local_version(GroupId g) const { return local_version_[g]; }

  /// Total number of directed (router, port) channels, used to size metric
  /// arrays: channel id = router * ports_per_router + port.
  int total_channels() const { return params_.total_routers() * ports_per_router_; }
  int channel_id(RouterId router, int port) const { return router * ports_per_router_ + port; }
  RouterId channel_router(int channel) const { return channel / ports_per_router_; }
  int channel_port(int channel) const { return channel % ports_per_router_; }

 private:
  void build_global_links();
  /// Refilters the enabled view of pair (a, b) (both directions) from the
  /// as-built lists and the per-port disabled flags.
  void rebuild_pair(GroupId a, GroupId b);
  void bump_pair(GroupId a, GroupId b);
  /// True when every router pair of group g still has a <= 2-local-hop path
  /// over the currently enabled local links.
  bool group_two_hop_connected(GroupId g) const;
  bool local_two_hop_path(RouterId x, RouterId y) const;

  std::size_t global_flag_index(RouterId router, int port) const {
    return static_cast<std::size_t>(router) * params_.global_ports_per_router +
           (port - first_global_port());
  }

  TopoParams params_;
  Coordinates coords_;
  int ports_per_router_;
  /// Flattened per-ordered-group-pair link lists; pair (a,b) with a!=b maps to
  /// index a*groups+b. `global_links_` is the enabled view of
  /// `all_global_links_` (same canonical order, failed links filtered out).
  std::vector<std::vector<GlobalLink>> global_links_;
  std::vector<std::vector<GlobalLink>> all_global_links_;
  /// Per global port: peer router and peer port (-1 where unused).
  std::vector<RouterId> global_peer_router_;
  std::vector<int> global_peer_port_;
  /// Per global port: link failed (indexed router * gpr + local global port).
  std::vector<char> global_port_disabled_;
  /// Per channel id: local link failed (only local-port entries are used).
  std::vector<char> local_port_disabled_;
  int disabled_count_ = 0;
  int disabled_local_count_ = 0;

  std::vector<std::uint64_t> pair_version_;   ///< groups x groups
  std::vector<std::uint64_t> local_version_;  ///< per group
  std::uint64_t epoch_ = 0;
};

/// Disables a random `fraction` of each group pair's global links (never the
/// last one). Returns the number of links disabled.
int disable_random_global_links(DragonflyTopology& topo, double fraction, Rng& rng);

}  // namespace dfly
