#include "core/interference.hpp"

#include "core/run_matrix.hpp"

namespace dfly {

Table InterferenceResult::degradation_table(const std::string& title) const {
  Table t(title);
  t.set_columns({"config", "median comm (ms)", "median no-bg (ms)", "degradation (%)",
                 "max comm (ms)", "max no-bg (ms)"});
  for (std::size_t i = 0; i < with_background.size(); ++i) {
    const RunMetrics& bg = with_background[i].metrics;
    const RunMetrics& base = baseline[i].metrics;
    const double med_bg = bg.median_comm_ms();
    const double med_base = base.median_comm_ms();
    const double degradation = med_base > 0 ? 100.0 * (med_bg - med_base) / med_base : 0.0;
    t.add_row({with_background[i].config, Table::num(med_bg, 3), Table::num(med_base, 3),
               Table::num(degradation, 1), Table::num(bg.max_comm_ms(), 3),
               Table::num(base.max_comm_ms(), 3)});
  }
  return t;
}

InterferenceResult run_interference(const Workload& workload,
                                    const std::vector<ExperimentConfig>& configs,
                                    const ExperimentOptions& options, const BackgroundSpec& spec,
                                    int threads) {
  InterferenceResult result;

  ExperimentOptions with_bg = options;
  with_bg.background = spec;
  const std::vector<ExperimentResult> bg_runs = run_matrix(workload, configs, with_bg, threads);

  ExperimentOptions without_bg = options;
  without_bg.background.reset();
  const std::vector<ExperimentResult> base_runs =
      run_matrix(workload, configs, without_bg, threads);

  for (std::size_t i = 0; i < configs.size(); ++i) {
    result.with_background.push_back(NamedMetrics{bg_runs[i].config, bg_runs[i].metrics});
    result.baseline.push_back(NamedMetrics{base_runs[i].config, base_runs[i].metrics});
  }
  // The app can occupy every node (ranks == total_nodes); the subtraction
  // must not underflow in size_t and report a near-2^64 background job.
  const int total_nodes = options.topo.total_nodes();
  const int ranks = workload.trace.ranks();
  const std::size_t bg_nodes =
      ranks < total_nodes ? static_cast<std::size_t>(total_nodes - ranks) : 0;
  result.peak_background_load = spec.peak_load(bg_nodes);
  return result;
}

}  // namespace dfly
