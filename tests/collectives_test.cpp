// Tests for the collective-operation trace builders: structural balance,
// correct volumes, dependency shapes, and end-to-end replay.
#include "workload/collectives.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "place/placement.hpp"
#include "replay/replay.hpp"
#include "routing/minimal.hpp"
#include "sim/engine.hpp"
#include "workload/characterize.hpp"

namespace dfly {
namespace {

/// Replays a trace on the tiny topology; fails the test on deadlock.
SimTime replay_trace(const Trace& trace) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  Rng rng(2);
  Placement placement = make_placement(PlacementKind::RandomNode, topo.params(),
                                       trace.ranks(), rng);
  ReplayEngine replay(engine, network, trace, placement);
  replay.start();
  engine.set_event_limit(100'000'000);
  engine.run();
  EXPECT_FALSE(engine.hit_event_limit());
  EXPECT_TRUE(replay.finished());
  return engine.now();
}

class CollectiveRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveRanks, AllreduceBalancesAndReplays) {
  const int n = GetParam();
  Trace trace(n);
  TagAllocator tags;
  append_allreduce(trace, tags, 10000);
  EXPECT_NO_THROW(trace.validate());
  replay_trace(trace);
}

TEST_P(CollectiveRanks, BroadcastReachesEveryRank) {
  const int n = GetParam();
  for (const int root : {0, n / 2, n - 1}) {
    Trace trace(n);
    TagAllocator tags;
    append_broadcast(trace, tags, root, 5000);
    EXPECT_NO_THROW(trace.validate());
    // Every rank except the root receives exactly once.
    for (int r = 0; r < n; ++r) {
      int recvs = 0;
      for (const TraceOp& op : trace.rank(r))
        if (op.kind == OpKind::Recv || op.kind == OpKind::Irecv) ++recvs;
      EXPECT_EQ(recvs, r == root ? 0 : 1) << "rank " << r << " root " << root;
    }
    replay_trace(trace);
  }
}

TEST_P(CollectiveRanks, ReduceCollectsEveryContribution) {
  const int n = GetParam();
  for (const int root : {0, n - 1}) {
    Trace trace(n);
    TagAllocator tags;
    append_reduce(trace, tags, root, 5000);
    EXPECT_NO_THROW(trace.validate());
    // Every rank except the root sends exactly once.
    for (int r = 0; r < n; ++r) {
      int sends = 0;
      for (const TraceOp& op : trace.rank(r))
        if (op.kind == OpKind::Send || op.kind == OpKind::Isend) ++sends;
      EXPECT_EQ(sends, r == root ? 0 : 1) << "rank " << r << " root " << root;
    }
    replay_trace(trace);
  }
}

TEST_P(CollectiveRanks, AllgatherRingMovesNMinus1Blocks) {
  const int n = GetParam();
  Trace trace(n);
  TagAllocator tags;
  append_allgather_ring(trace, tags, 2000);
  EXPECT_NO_THROW(trace.validate());
  const CommMatrix m(trace);
  // Each rank sends n-1 blocks, all to its ring successor.
  EXPECT_EQ(m.total_bytes(), static_cast<Bytes>(n) * (n - 1) * 2000);
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(m.row(r).size(), 1u);
    EXPECT_EQ(m.bytes(r, (r + 1) % n), static_cast<Bytes>(n - 1) * 2000);
  }
  replay_trace(trace);
}

TEST_P(CollectiveRanks, AlltoallCoversAllPairs) {
  const int n = GetParam();
  Trace trace(n);
  TagAllocator tags;
  append_alltoall(trace, tags, 1000);
  EXPECT_NO_THROW(trace.validate());
  const CommMatrix m(trace);
  EXPECT_EQ(m.pairs_used(), static_cast<std::size_t>(n) * (n - 1));
  for (int r = 0; r < n; ++r)
    for (int d = 0; d < n; ++d)
      if (d != r) {
        EXPECT_EQ(m.bytes(r, d), 1000) << r << "->" << d;
      }
  replay_trace(trace);
}

TEST_P(CollectiveRanks, DisseminationBarrierReplays) {
  const int n = GetParam();
  Trace trace(n);
  TagAllocator tags;
  append_dissemination_barrier(trace, tags);
  EXPECT_NO_THROW(trace.validate());
  replay_trace(trace);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveRanks, ::testing::Values(2, 3, 8, 13, 16, 30));

TEST(Collectives, AllreduceVolumeForPowerOfTwo) {
  Trace trace(8);
  TagAllocator tags;
  append_allreduce(trace, tags, 1000);
  // log2(8)=3 stages x 8 ranks x 1000 B, no fold traffic.
  EXPECT_EQ(trace.total_send_bytes(), 3 * 8 * 1000);
}

TEST(Collectives, AllreduceFoldTrafficForNonPowerOfTwo) {
  Trace trace(10);
  TagAllocator tags;
  append_allreduce(trace, tags, 1000);
  // Fold-in (2 transfers) + 3 stages x 8 + fold-out (2 transfers).
  EXPECT_EQ(trace.total_send_bytes(), (2 + 3 * 8 + 2) * 1000);
}

TEST(Collectives, RejectDegenerateInputs) {
  Trace one(1);
  TagAllocator tags;
  EXPECT_THROW(append_allreduce(one, tags, 100), std::invalid_argument);
  Trace eight(8);
  EXPECT_THROW(append_broadcast(eight, tags, 8, 100), std::invalid_argument);
  EXPECT_THROW(append_reduce(eight, tags, -1, 100), std::invalid_argument);
}

TEST(Collectives, ComposeIntoOnePhaseProgram) {
  // A small "application": barrier, broadcast, compute-ish exchange,
  // allreduce — everything composes on one trace and replays.
  Trace trace(12);
  TagAllocator tags;
  append_dissemination_barrier(trace, tags);
  append_broadcast(trace, tags, 0, 64 * units::kKiB);
  append_alltoall(trace, tags, 4096);
  append_allreduce(trace, tags, 8192);
  EXPECT_NO_THROW(trace.validate());
  replay_trace(trace);
}

}  // namespace
}  // namespace dfly
