file(REMOVE_RECURSE
  "libdfly.a"
)
