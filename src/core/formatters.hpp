// Shared presentation helpers for the benchmark harness: Table I
// nomenclature, the standard CDF fraction grid, and environment-variable
// knobs so every bench binary scales uniformly.
#pragma once

#include <string>
#include <vector>

#include "util/table.hpp"

namespace dfly {

/// Reproduces Table I (placement x routing nomenclature).
Table table1_nomenclature();

/// Cumulative fractions used by all CDF tables (p50..p100).
const std::vector<double>& standard_cdf_fractions();

/// DFLY_SCALE: multiplies message volumes in the figure benches so the whole
/// suite's runtime can be traded against fidelity (default `fallback`;
/// EXPERIMENTS.md records the scale each result was produced at).
double env_scale(double fallback);

/// DFLY_SEED: master seed override for the benches.
std::uint64_t env_seed(std::uint64_t fallback);

/// DFLY_THREADS: worker override for run_matrix in the benches.
int env_threads(int fallback);

/// Standard bench banner: paper context line + active scale/seed.
void print_bench_header(const std::string& id, const std::string& what, double scale,
                        std::uint64_t seed);

}  // namespace dfly
