// Routing algorithm interface.
//
// Routes are computed per packet chunk at injection time (source routing).
// Adaptive routing consults a CongestionView exposing the source router's
// output queue depths — the information a UGAL-L implementation has locally.
#pragma once

#include <memory>
#include <string>

#include "routing/route.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dfly {

class DragonflyTopology;

/// Read-only view of router output-channel occupancy, provided by the
/// network; queued_bytes includes chunks waiting for the channel but not the
/// chunk currently on the wire.
class CongestionView {
 public:
  virtual ~CongestionView() = default;
  virtual Bytes queued_bytes(RouterId router, int port) const = 0;
};

class RoutingAlgorithm {
 public:
  virtual ~RoutingAlgorithm() = default;

  /// Computes a complete route for one chunk from node `src` to node `dst`
  /// (src != dst), including the final ejection hop.
  virtual Route compute(NodeId src, NodeId dst, const CongestionView& congestion,
                        Rng& rng) const = 0;

  /// Notifies the algorithm that topology link state changed (links failed or
  /// recovered mid-run); implementations rebuild whatever they precomputed.
  virtual void on_topology_changed() {}

  virtual std::string name() const = 0;
};

enum class RoutingKind { Minimal, Adaptive, Valiant, AdaptiveGlobal };

const char* to_string(RoutingKind kind);

/// Factory. The returned algorithm keeps a reference to `topo`, which must
/// outlive it.
std::unique_ptr<RoutingAlgorithm> make_routing(RoutingKind kind, const DragonflyTopology& topo);

}  // namespace dfly
