// Topology parameters and coordinate arithmetic for a Cray Cascade-style
// dragonfly (the Theta configuration of the paper's Section II).
//
// Identifier scheme (all dense 0-based integers):
//   router id = group * (rows*cols) + row * cols + col
//   node id   = router id * nodes_per_router + slot
//   chassis   = one row of `cols` routers        (paper: 16 routers)
//   cabinet   = `chassis_per_cabinet` chassis    (paper: 3 chassis)
#pragma once

#include <cstdint>
#include <string>

namespace dfly {

using RouterId = std::int32_t;
using NodeId = std::int32_t;
using GroupId = std::int32_t;

struct TopoParams {
  int groups = 9;
  int rows = 6;                    ///< router rows per group (black local links)
  int cols = 16;                   ///< router columns per group (green local links)
  int nodes_per_router = 4;
  int global_ports_per_router = 10;
  int chassis_per_cabinet = 3;

  /// Theta, as described in the paper: 9 groups x (6x16) routers x 4 nodes.
  static TopoParams theta();
  /// A small configuration for unit tests: 3 groups x (2x4) routers x 2 nodes,
  /// 2 global ports per router.
  static TopoParams tiny();

  int routers_per_group() const { return rows * cols; }
  int total_routers() const { return groups * routers_per_group(); }
  int total_nodes() const { return total_routers() * nodes_per_router; }
  int chassis_per_group() const { return rows; }
  int total_chassis() const { return groups * chassis_per_group(); }
  int cabinets_per_group() const { return (rows + chassis_per_cabinet - 1) / chassis_per_cabinet; }
  int total_cabinets() const { return groups * cabinets_per_group(); }
  int global_ports_per_group() const { return routers_per_group() * global_ports_per_router; }

  /// Throws std::invalid_argument if the configuration cannot form a valid
  /// symmetric dragonfly (see topo/dragonfly.cpp for the arrangement rule).
  void validate() const;

  std::string describe() const;
};

/// Decomposed router coordinate.
struct RouterCoord {
  GroupId group;
  int row;
  int col;
};

class Coordinates {
 public:
  explicit Coordinates(const TopoParams& p) : p_(p) {}

  RouterId router_of_node(NodeId n) const { return n / p_.nodes_per_router; }
  int slot_of_node(NodeId n) const { return n % p_.nodes_per_router; }
  NodeId node_of(RouterId r, int slot) const { return r * p_.nodes_per_router + slot; }

  GroupId group_of_router(RouterId r) const { return r / p_.routers_per_group(); }
  int row_of_router(RouterId r) const { return (r % p_.routers_per_group()) / p_.cols; }
  int col_of_router(RouterId r) const { return r % p_.cols; }
  RouterCoord coord(RouterId r) const { return {group_of_router(r), row_of_router(r), col_of_router(r)}; }
  RouterId router_at(GroupId g, int row, int col) const {
    return g * p_.routers_per_group() + row * p_.cols + col;
  }

  GroupId group_of_node(NodeId n) const { return group_of_router(router_of_node(n)); }
  /// Global chassis index of a router (group-major, then row).
  int chassis_of_router(RouterId r) const {
    return group_of_router(r) * p_.chassis_per_group() + row_of_router(r);
  }
  /// Global cabinet index of a router.
  int cabinet_of_router(RouterId r) const {
    return group_of_router(r) * p_.cabinets_per_group() + row_of_router(r) / p_.chassis_per_cabinet;
  }

  const TopoParams& params() const { return p_; }

 private:
  TopoParams p_;
};

}  // namespace dfly
