// Assorted edge-case tests across modules.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "workload/characterize.hpp"
#include "workload/exchange.hpp"
#include "workload/workload.hpp"

namespace dfly {
namespace {

TEST(EnginePayload, FieldsArriveIntact) {
  struct Check : EventHandler {
    EventPayload seen;
    void handle_event(SimTime, const EventPayload& payload) override { seen = payload; }
  } check;
  Engine engine;
  engine.schedule(1, &check,
                  EventPayload{-7, 0xDEADBEEFu, 0x1122334455667788ull, 0x99AABBCCDDEEFF00ull});
  engine.run();
  EXPECT_EQ(check.seen.kind, -7);
  EXPECT_EQ(check.seen.a, 0xDEADBEEFu);
  EXPECT_EQ(check.seen.b, 0x1122334455667788ull);
  EXPECT_EQ(check.seen.c, 0x99AABBCCDDEEFF00ull);
}

TEST(Characterize, BlockAggregateWithMoreBlocksThanRanks) {
  Trace t(3);
  TagAllocator tags;
  emit_exchange(t, tags, 0, 2, 100);
  const CommMatrix m(t);
  const auto grid = m.block_aggregate(8);
  Bytes total = 0;
  for (const auto& row : grid)
    for (const Bytes b : row) total += b;
  EXPECT_EQ(total, 200);
}

TEST(Characterize, EmptyTraceMatrix) {
  Trace t(4);
  const CommMatrix m(t);
  EXPECT_EQ(m.total_bytes(), 0);
  EXPECT_EQ(m.message_count(), 0u);
  EXPECT_EQ(m.pairs_used(), 0u);
  EXPECT_DOUBLE_EQ(m.average_message_bytes(), 0.0);
  EXPECT_DOUBLE_EQ(m.locality_fraction(1), 0.0);
  const PhaseLoad load = phase_load(t);
  EXPECT_DOUBLE_EQ(load.peak(), 0.0);
}

TEST(Characterize, DelayOpsDoNotCountAsTraffic) {
  Trace t(2);
  t.rank(0).push_back(TraceOp::pause(1000));
  t.rank(0).push_back(TraceOp::isend(1, 500, 0));
  t.rank(1).push_back(TraceOp::irecv(0, 500, 0));
  const CommMatrix m(t);
  EXPECT_EQ(m.total_bytes(), 500);
  EXPECT_EQ(m.message_count(), 1u);
}

TEST(Workloads, ThetaScaleRankCountsMatchPaper) {
  EXPECT_EQ(make_crystal_router(CrParams{}).trace.ranks(), 1000);
  EXPECT_EQ(make_fill_boundary(FbParams{}).trace.ranks(), 1000);
  EXPECT_EQ(make_amg(AmgParams{}).trace.ranks(), 1728);
}

TEST(Workloads, GeneratorsAreIdempotent) {
  const Workload a = make_crystal_router(CrParams{});
  const Workload b = make_crystal_router(CrParams{});
  EXPECT_EQ(a.trace.total_ops(), b.trace.total_ops());
  EXPECT_EQ(a.trace.total_send_bytes(), b.trace.total_send_bytes());
}

TEST(Workloads, TinyScaleStillValidates) {
  // Extreme sensitivity scale (1%) must keep traces balanced (sizes clamp to
  // >= 1 byte on both sides identically).
  CrParams cr;
  cr.ranks = 32;
  cr.scale = 0.01;
  EXPECT_NO_THROW(make_crystal_router(cr).trace.validate());
  FbParams fb;
  fb.nx = fb.ny = fb.nz = 3;
  fb.scale = 0.01;
  EXPECT_NO_THROW(make_fill_boundary(fb).trace.validate());
  AmgParams amg;
  amg.nx = amg.ny = amg.nz = 4;
  amg.scale = 0.001;
  EXPECT_NO_THROW(make_amg(amg).trace.validate());
}

TEST(Workloads, FbSeedChangesLoadButStaysBalanced) {
  // The seed drives both the halo-size draws and the many-to-many partner
  // strides; any seed must yield a balanced trace, and loads must differ.
  FbParams a;
  a.nx = a.ny = a.nz = 4;
  FbParams b = a;
  b.seed = 12345;
  const Workload wa = make_fill_boundary(a);
  const Workload wb = make_fill_boundary(b);
  EXPECT_NO_THROW(wa.trace.validate());
  EXPECT_NO_THROW(wb.trace.validate());
  EXPECT_NE(wa.trace.total_send_bytes(), wb.trace.total_send_bytes());
  // The 6-neighbor halo core is seed-independent: the interior rank still
  // talks to all its face neighbors under either seed.
  const CommMatrix ma(wa.trace);
  const CommMatrix mb(wb.trace);
  for (const int peer : {20, 22, 17, 25, 5, 37}) {
    EXPECT_GT(ma.bytes(21, peer), 0);
    EXPECT_GT(mb.bytes(21, peer), 0);
  }
}

TEST(Exchange, HashedSizeIsDeterministicAndInRange) {
  for (std::uint64_t key = 0; key < 200; ++key) {
    const Bytes a = hashed_size(7, key, 100, 200);
    const Bytes b = hashed_size(7, key, 100, 200);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 100);
    EXPECT_LE(a, 200);
  }
  // Different seeds decorrelate.
  int diff = 0;
  for (std::uint64_t key = 0; key < 100; ++key)
    if (hashed_size(1, key, 0, 1'000'000) != hashed_size(2, key, 0, 1'000'000)) ++diff;
  EXPECT_GT(diff, 90);
}

TEST(Exchange, ScaledClampsToOneByte) {
  EXPECT_EQ(scaled(1000, 0.5), 500);
  EXPECT_EQ(scaled(1, 0.0001), 1);
  EXPECT_EQ(scaled(1000, 2.0), 2000);
}

}  // namespace
}  // namespace dfly
