#include "routing/router_table.hpp"

#include <algorithm>
#include <cassert>

namespace dfly {

MinimalPathTable::MinimalPathTable(const DragonflyTopology& topo) : topo_(topo) {
  const TopoParams& p = topo_.params();
  table_.resize(static_cast<std::size_t>(p.total_routers()) * p.groups);
  pair_seen_.resize(static_cast<std::size_t>(p.groups) * p.groups);
  local_seen_.resize(static_cast<std::size_t>(p.groups));
  for (RouterId r = 0; r < p.total_routers(); ++r) {
    const GroupId g = topo_.coords().group_of_router(r);
    for (GroupId peer = 0; peer < p.groups; ++peer) {
      if (peer != g) rebuild_entry(r, peer);
    }
  }
  for (GroupId a = 0; a < p.groups; ++a) {
    local_seen_[a] = topo_.local_version(a);
    for (GroupId b = 0; b < p.groups; ++b)
      pair_seen_[static_cast<std::size_t>(a) * p.groups + b] = topo_.pair_version(a, b);
  }
  epoch_seen_ = topo_.epoch();
}

void MinimalPathTable::rebuild_entry(RouterId r, GroupId peer) {
  const GroupId g = topo_.coords().group_of_router(r);
  assert(peer != g);
  Candidates& cand = table_[static_cast<std::size_t>(r) * topo_.params().groups + peer];
  std::vector<GlobalLink> bucket0;
  std::vector<GlobalLink> bucket1;
  for (const GlobalLink& link : topo_.global_links(g, peer)) {
    const int lh = local_hops(r, link.src_router);
    if (lh == 0) bucket0.push_back(link);
    else if (lh == 1) bucket1.push_back(link);
  }
  cand.near_links = std::move(bucket0);
  cand.bucket1_begin = static_cast<int>(cand.near_links.size());
  cand.near_links.insert(cand.near_links.end(), bucket1.begin(), bucket1.end());
  if (cand.bucket1_begin > 0) cand.best_src_cost = 1;
  else if (!cand.near_links.empty()) cand.best_src_cost = 2;
  else cand.best_src_cost = 3;
}

void MinimalPathTable::refresh() {
  if (epoch_seen_ == topo_.epoch()) return;
  const TopoParams& p = topo_.params();
  const int rpg = p.routers_per_group();

  // A local-link change inside group g reclassifies the source-side buckets
  // of every entry owned by g's routers (toward every peer). A global-link
  // change between a and b invalidates a's entries toward b and b's toward a.
  std::vector<char> group_stale(static_cast<std::size_t>(p.groups), 0);
  for (GroupId g = 0; g < p.groups; ++g) {
    if (local_seen_[g] != topo_.local_version(g)) {
      group_stale[g] = 1;
      local_seen_[g] = topo_.local_version(g);
    }
  }
  for (GroupId a = 0; a < p.groups; ++a) {
    for (GroupId b = 0; b < p.groups; ++b) {
      if (a == b) continue;
      const std::size_t pv = static_cast<std::size_t>(a) * p.groups + b;
      const bool pair_stale = pair_seen_[pv] != topo_.pair_version(a, b);
      if (pair_stale) pair_seen_[pv] = topo_.pair_version(a, b);
      if (!pair_stale && !group_stale[a]) continue;
      for (int i = 0; i < rpg; ++i) rebuild_entry(a * rpg + i, b);
    }
  }
  epoch_seen_ = topo_.epoch();
}

int MinimalPathTable::local_hops(RouterId a, RouterId b) const {
  if (a == b) return 0;
  const Coordinates& c = topo_.coords();
  const RouterCoord ca = c.coord(a);
  const RouterCoord cb = c.coord(b);
  assert(ca.group == cb.group);
  if (ca.row != cb.row && ca.col != cb.col) return 2;
  if (topo_.disabled_local_links() == 0) return 1;
  // Same row or column but the direct link may be down; the topology's
  // connectivity guard guarantees a 2-hop alternative exists.
  return topo_.port_enabled(a, topo_.local_port_to(a, b)) ? 1 : 2;
}

const MinimalPathTable::Candidates& MinimalPathTable::candidates(RouterId router,
                                                                 GroupId peer) const {
  return table_[static_cast<std::size_t>(router) * topo_.params().groups + peer];
}

void MinimalPathTable::append_local(Route& route, RouterId from, RouterId to, Rng& rng) const {
  if (from == to) return;
  const Coordinates& c = topo_.coords();
  if (topo_.disabled_local_links() == 0) {
    // Healthy fast path; keep the RNG draw sequence identical to the
    // pre-fault-API behaviour so seeded runs stay bit-reproducible.
    const int direct = topo_.local_port_to(from, to);
    if (direct >= 0) {
      route.push(from, direct);
      return;
    }
    // Two intersection candidates: (from.row, to.col) and (to.row, from.col).
    const RouterCoord a = c.coord(from);
    const RouterCoord b = c.coord(to);
    const RouterId via_row = c.router_at(a.group, a.row, b.col);
    const RouterId via_col = c.router_at(a.group, b.row, a.col);
    const RouterId mid = rng.bernoulli(0.5) ? via_row : via_col;
    route.push(from, topo_.local_port_to(from, mid));
    route.push(mid, topo_.local_port_to(mid, to));
    return;
  }

  const int direct = topo_.local_port_to(from, to);
  if (direct >= 0 && topo_.port_enabled(from, direct)) {
    route.push(from, direct);
    return;
  }
  // Direct link missing or down: collect the 2-hop mids whose both legs are
  // up and pick one uniformly. The connectivity guard keeps this non-empty.
  auto hop_ok = [&](RouterId x, RouterId y) {
    const int port = topo_.local_port_to(x, y);
    return port >= 0 && topo_.port_enabled(x, port);
  };
  const RouterCoord a = c.coord(from);
  const RouterCoord b = c.coord(to);
  std::vector<RouterId> mids;
  auto consider_mid = [&](RouterId m) {
    if (hop_ok(from, m) && hop_ok(m, to)) mids.push_back(m);
  };
  if (a.row == b.row) {
    for (int col = 0; col < topo_.params().cols; ++col)
      if (col != a.col && col != b.col) consider_mid(c.router_at(a.group, a.row, col));
  } else if (a.col == b.col) {
    for (int row = 0; row < topo_.params().rows; ++row)
      if (row != a.row && row != b.row) consider_mid(c.router_at(a.group, row, a.col));
  } else {
    consider_mid(c.router_at(a.group, a.row, b.col));
    consider_mid(c.router_at(a.group, b.row, a.col));
  }
  assert(!mids.empty() && "connectivity guard violated");
  const RouterId mid = mids[rng.uniform(mids.size())];
  route.push(from, topo_.local_port_to(from, mid));
  route.push(mid, topo_.local_port_to(mid, to));
}

void MinimalPathTable::append_minimal(Route& route, RouterId from, RouterId to, Rng& rng) const {
  if (from == to) return;
  const Coordinates& c = topo_.coords();
  const GroupId gf = c.group_of_router(from);
  const GroupId gt = c.group_of_router(to);
  if (gf == gt) {
    append_local(route, from, to, rng);
    return;
  }

  // Pick a global link minimizing src_hops + 1 + dst_hops; ties broken
  // uniformly by reservoir sampling over the candidate stream.
  const Candidates& cand = candidates(from, gt);
  int best_cost = 100;
  GlobalLink best{};
  std::uint64_t ties = 0;
  auto consider = [&](const GlobalLink& link, int src_hops) {
    const int cost = src_hops + 1 + local_hops(link.dst_router, to);
    if (cost < best_cost) {
      best_cost = cost;
      best = link;
      ties = 1;
    } else if (cost == best_cost) {
      ++ties;
      if (rng.uniform(ties) == 0) best = link;
    }
  };

  for (int i = 0; i < cand.bucket1_begin; ++i) consider(cand.near_links[i], 0);
  // Bucket 1 can only help if the current best has dst-side hops >= 1.
  if (best_cost > 2) {
    for (std::size_t i = cand.bucket1_begin; i < cand.near_links.size(); ++i)
      consider(cand.near_links[i], 1);
  }
  // Bucket 2 (2 src-side hops) can only help if best > 3.
  if (best_cost > 3) {
    for (const GlobalLink& link : topo_.global_links(gf, gt)) {
      if (local_hops(from, link.src_router) == 2) consider(link, 2);
    }
  }
  assert(best_cost < 100);

  append_local(route, from, best.src_router, rng);
  route.push(best.src_router, best.src_port);
  append_local(route, best.dst_router, to, rng);
}

int MinimalPathTable::min_hops(RouterId from, RouterId to) const {
  if (from == to) return 0;
  const Coordinates& c = topo_.coords();
  const GroupId gf = c.group_of_router(from);
  const GroupId gt = c.group_of_router(to);
  if (gf == gt) return local_hops(from, to);
  const Candidates& cand = candidates(from, gt);
  int best = 100;
  for (int i = 0; i < cand.bucket1_begin && best > 1; ++i)
    best = std::min(best, 1 + local_hops(cand.near_links[i].dst_router, to));
  if (best > 2) {
    for (std::size_t i = cand.bucket1_begin; i < cand.near_links.size() && best > 2; ++i)
      best = std::min(best, 2 + local_hops(cand.near_links[i].dst_router, to));
  }
  if (best > 3) {
    for (const GlobalLink& link : topo_.global_links(gf, gt)) {
      if (local_hops(from, link.src_router) == 2)
        best = std::min(best, 3 + local_hops(link.dst_router, to));
      if (best <= 3) break;
    }
  }
  return best;
}

}  // namespace dfly
