// Seeded violation fixture: R3 (unordered-iter) — hash-map iteration in an
// artifact-feeding module, no order-insensitivity annotation.
#include <unordered_map>

std::unordered_map<int, long> totals;

long seeded_unordered_iteration() {
  long sum = 0;
  for (const auto& [key, value] : totals) sum += value * key;
  return sum;
}
