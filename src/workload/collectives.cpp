#include "workload/collectives.hpp"

#include <stdexcept>

namespace dfly {
namespace {

int largest_pow2_at_most(int n) {
  int p = 1;
  while (2 * p <= n) p *= 2;
  return p;
}

void require_ranks(const Trace& trace, const char* what) {
  if (trace.ranks() < 2) throw std::invalid_argument(std::string(what) + ": need >= 2 ranks");
}

/// One-directional transfer a -> b (blocking on the receive side so later ops
/// of b order after the arrival).
void emit_transfer(Trace& trace, TagAllocator& tags, int from, int to, Bytes bytes) {
  const std::int32_t tag = tags.next(from, to);
  trace.rank(from).push_back(TraceOp::isend(to, bytes, tag));
  trace.rank(to).push_back(TraceOp::recv(from, bytes, tag));
}

}  // namespace

void append_allreduce(Trace& trace, TagAllocator& tags, Bytes bytes) {
  require_ranks(trace, "allreduce");
  const int n = trace.ranks();
  const int p = largest_pow2_at_most(n);

  // Fold-in: the n-p extra ranks contribute their data to ranks 0..n-p-1.
  for (int extra = p; extra < n; ++extra) emit_transfer(trace, tags, extra, extra - p, bytes);
  emit_phase_end(trace);

  // Recursive doubling over the power-of-two core.
  for (int mask = 1; mask < p; mask *= 2) {
    for (int r = 0; r < p; ++r) {
      const int partner = r ^ mask;
      if (partner < r) continue;
      emit_exchange(trace, tags, r, partner, bytes);
    }
    emit_phase_end(trace);
  }

  // Fold-out: send the result back to the extra ranks.
  for (int extra = p; extra < n; ++extra) emit_transfer(trace, tags, extra - p, extra, bytes);
  emit_phase_end(trace);
}

void append_broadcast(Trace& trace, TagAllocator& tags, int root, Bytes bytes) {
  require_ranks(trace, "broadcast");
  const int n = trace.ranks();
  if (root < 0 || root >= n) throw std::invalid_argument("broadcast: root out of range");
  auto real = [&](int v) { return (v + root) % n; };
  // Virtual rank v receives from v - mask (its highest set bit) and then
  // forwards to v + mask' for growing masks.
  for (int mask = 1; mask < n; mask *= 2) {
    for (int v = 0; v < mask && v + mask < n; ++v)
      emit_transfer(trace, tags, real(v), real(v + mask), bytes);
  }
  emit_phase_end(trace);
}

void append_reduce(Trace& trace, TagAllocator& tags, int root, Bytes bytes) {
  require_ranks(trace, "reduce");
  const int n = trace.ranks();
  if (root < 0 || root >= n) throw std::invalid_argument("reduce: root out of range");
  auto real = [&](int v) { return (v + root) % n; };
  // Reverse binomial tree: contributions flow from high virtual ranks down.
  int top = 1;
  while (top < n) top *= 2;
  for (int mask = top / 2; mask >= 1; mask /= 2) {
    for (int v = 0; v < mask && v + mask < n; ++v)
      emit_transfer(trace, tags, real(v + mask), real(v), bytes);
  }
  emit_phase_end(trace);
}

void append_allgather_ring(Trace& trace, TagAllocator& tags, Bytes block_bytes) {
  require_ranks(trace, "allgather");
  const int n = trace.ranks();
  for (int step = 0; step < n - 1; ++step) {
    for (int r = 0; r < n; ++r) {
      const int to = (r + 1) % n;
      const std::int32_t tag = tags.next(r, to);
      trace.rank(r).push_back(TraceOp::isend(to, block_bytes, tag));
      trace.rank(to).push_back(TraceOp::irecv(r, block_bytes, tag));
    }
    emit_phase_end(trace);
  }
}

void append_alltoall(Trace& trace, TagAllocator& tags, Bytes block_bytes) {
  require_ranks(trace, "alltoall");
  const int n = trace.ranks();
  const bool pow2 = (n & (n - 1)) == 0;
  for (int step = 1; step < n; ++step) {
    for (int r = 0; r < n; ++r) {
      if (pow2) {
        const int partner = r ^ step;
        if (partner < r) continue;
        emit_exchange(trace, tags, r, partner, block_bytes);
      } else {
        const int to = (r + step) % n;
        const int from = (r - step + n) % n;
        const std::int32_t tag = tags.next(r, to);
        trace.rank(r).push_back(TraceOp::isend(to, block_bytes, tag));
        // The matching irecv is registered on `to` when its own loop
        // iteration runs; register r's receive from `from` symmetrically.
        trace.rank(to).push_back(TraceOp::irecv(r, block_bytes, tag));
        (void)from;
      }
    }
    emit_phase_end(trace);
  }
}

void append_dissemination_barrier(Trace& trace, TagAllocator& tags) {
  require_ranks(trace, "barrier");
  const int n = trace.ranks();
  for (int mask = 1; mask < n; mask *= 2) {
    for (int r = 0; r < n; ++r) {
      const int to = (r + mask) % n;
      const std::int32_t tag = tags.next(r, to);
      trace.rank(r).push_back(TraceOp::isend(to, 1, tag));
      trace.rank(to).push_back(TraceOp::irecv(r, 1, tag));
    }
    emit_phase_end(trace);
  }
}

}  // namespace dfly
