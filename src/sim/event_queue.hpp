// Event queues for the discrete-event engine.
//
// Two priority-queue implementations with identical ordering semantics:
//
//  * HeapEventQueue — the classic binary heap (std::priority_queue). O(log n)
//    push/pop. Kept as the reference implementation for differential tests
//    and as the baseline side of the scheduler microbenchmarks.
//  * CalendarEventQueue — a calendar queue (Brown 1988) with lazy per-bucket
//    sorting and a heap-backed overflow tier for far-future events. O(1)
//    amortised push/pop for the simulator's near-monotonic event stream;
//    the Engine uses this one.
//
// Both dispatch in strict (time, seq) order, so swapping one for the other
// cannot change any simulation result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/units.hpp"

namespace dfly {

namespace ckpt {
class Writer;
class Reader;
}  // namespace ckpt

/// Small fixed-size event payload interpreted by the receiving handler.
struct EventPayload {
  std::int32_t kind = 0;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// Implemented by any subsystem that receives events (network, replay, ...).
class EventHandler {
 public:
  /// event_shard() result meaning "not bound to any shard": the engine runs
  /// such events on its global lane, alone, with every shard parked — so a
  /// global handler may safely touch any state.
  static constexpr int kGlobalShard = -1;

  virtual ~EventHandler() = default;
  virtual void handle_event(SimTime now, const EventPayload& payload) = 0;

  /// Which shard (dragonfly group) the event's state lives in, or
  /// kGlobalShard. Only consulted when the engine runs sharded; handlers that
  /// don't override it (replay, probes, faults, health, background) stay on
  /// the global lane and need no thread-safety work.
  virtual int event_shard(const EventPayload& payload) const {
    (void)payload;
    return kGlobalShard;
  }
};

struct QueuedEvent {
  SimTime time;
  std::uint64_t seq;
  EventHandler* handler;
  EventPayload payload;
  bool operator>(const QueuedEvent& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

/// Binary-heap event queue; reference semantics for the calendar queue.
class HeapEventQueue {
 public:
  void push(const QueuedEvent& ev) { queue_.push(ev); }
  const QueuedEvent& min() const { return queue_.top(); }
  QueuedEvent pop_min() {
    QueuedEvent ev = queue_.top();
    queue_.pop();
    return ev;
  }
  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

 private:
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, std::greater<>> queue_;
};

/// Occupancy / behaviour counters of the calendar queue, exposed through
/// Engine::scheduler_stats() so HealthMonitor and metrics can report them.
struct SchedulerStats {
  std::size_t buckets = 0;           ///< current calendar array size
  SimTime bucket_width = 0;          ///< ns covered by one bucket
  std::size_t calendar_events = 0;   ///< events currently in the bucket array
  std::size_t overflow_events = 0;   ///< events parked in the overflow tier
  std::size_t peak_pending = 0;      ///< high-water mark of total pending events
  std::uint64_t resizes = 0;         ///< bucket-array rehashes since construction
  std::uint64_t overflow_promotions = 0;  ///< events promoted overflow -> calendar
};

/// Calendar queue tuned for a near-monotonic, short-horizon event stream.
///
/// Events within the current window of `buckets() * bucket_width()` ns are
/// hashed by time into an array of buckets; each bucket stays unsorted until
/// it becomes the serving bucket (lazy sort, min kept at the back). Events
/// beyond the window (retransmit backoff timers, fault schedules) go to a
/// heap-backed overflow tier and are promoted in (time, seq) order as the
/// window slides over them. The array doubles/halves and the bucket width is
/// retuned from the live event spacing whenever occupancy skews.
///
/// All event times must be non-negative. pop_min()/min() return events in
/// strict (time, seq) order — identical to HeapEventQueue.
class CalendarEventQueue {
 public:
  CalendarEventQueue();

  void push(const QueuedEvent& ev);
  /// Smallest pending event; lazily positions and sorts the serving bucket.
  const QueuedEvent& min();
  QueuedEvent pop_min();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Serializes the complete queue — events plus the calendar's tuning state
  /// (bucket layout, width, dispatch-gap ring, retune cooldown, stats
  /// counters) — so a restored queue reproduces not just the dispatch order
  /// but every future resize/promotion decision bit-for-bit. Handlers are
  /// written as small ids via `id_of` (they are raw pointers otherwise).
  void save_state(ckpt::Writer& w,
                  const std::function<std::uint32_t(EventHandler*)>& id_of) const;
  /// Restores into a freshly constructed queue; `handler_of` maps saved ids
  /// back to live handlers. Throws std::runtime_error on malformed input.
  void load_state(ckpt::Reader& r,
                  const std::function<EventHandler*(std::uint32_t)>& handler_of);

  const SchedulerStats& stats() const {
    stats_.buckets = buckets_.size();
    stats_.bucket_width = SimTime{1} << width_shift_;
    stats_.calendar_events = cal_size_;
    stats_.overflow_events = size_ - cal_size_;
    return stats_;
  }

 private:
  struct Bucket {
    std::vector<QueuedEvent> events;
    bool sorted = false;  // descending by (time, seq): min at the back
  };

  static constexpr std::uint64_t kNoBucket = UINT64_MAX;

  // Bucket width and array size are powers of two so the hot path shifts and
  // masks instead of dividing.
  std::uint64_t bucket_of(SimTime t) const { return static_cast<std::uint64_t>(t) >> width_shift_; }
  Bucket& slot(std::uint64_t b) { return buckets_[b & bucket_mask_]; }

  /// Advances cur_b_ to the bucket holding the global minimum and sorts it.
  void locate_min();
  /// Moves every overflow event whose bucket is inside the current window
  /// into the calendar array.
  void promote_overflow();
  /// Inserts into the calendar tier (ordered insert if the slot is sorted).
  void insert_calendar(const QueuedEvent& ev);
  /// Moves the serving position back to `new_cur` (a push landed before the
  /// current window); events that fall out of the shrunk window spill to the
  /// overflow tier.
  void rewind(std::uint64_t new_cur);
  /// Rebuilds the calendar with `nbuckets` buckets and a width retuned from
  /// the observed event spacing.
  void resize(std::size_t nbuckets);
  /// Preferred bucket-width shift: from the spacing of recently *dispatched*
  /// events once enough have been seen (that is the density the serving
  /// bucket experiences), else from a sample of the pending set.
  int tuned_width_shift(const std::vector<QueuedEvent>& all) const;

  std::vector<Bucket> buckets_;
  std::uint64_t bucket_mask_;  ///< buckets_.size() - 1 (size is a power of two)
  int width_shift_;            ///< log2 of the bucket width in ns
  std::uint64_t cur_b_ = 0;    ///< absolute index of the serving bucket
  std::size_t size_ = 0;       ///< calendar + overflow
  std::size_t cal_size_ = 0;   ///< events in the bucket array
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, std::greater<>> overflow_;
  std::uint64_t overflow_min_b_ = kNoBucket;  ///< bucket of overflow_.top()
  /// Ring of recent dispatch times, the width tuner's input.
  std::vector<SimTime> pop_times_;
  std::size_t pop_times_next_ = 0;
  bool pop_times_full_ = false;
  std::uint64_t pops_since_resize_ = 0;  ///< retune cooldown
  mutable SchedulerStats stats_;
};

}  // namespace dfly
