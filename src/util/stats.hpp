// Descriptive statistics used by the report layer.
//
// The paper reports (a) five-number box plots of per-rank communication time
// (Fig. 3) and (b) CDFs over channels/links of traffic and saturation time
// (Figs. 4-6, 8-10). BoxStats and Cdf mirror those two presentation forms.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dfly {

/// Welford-style streaming accumulator: count/min/max/mean/variance without
/// retaining samples.
class StreamingStats {
 public:
  void add(double x);
  void merge(const StreamingStats& other);

  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;
  double sum() const { return sum_; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  std::size_t count_ = 0;
  double min_ = 0, max_ = 0, mean_ = 0, m2_ = 0, sum_ = 0;
};

/// Five-number summary matching the paper's box plots.
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  std::size_t count = 0;
};

/// Linear-interpolated percentile of an unsorted sample set, p in [0,100].
double percentile(std::span<const double> samples, double p);

/// Computes the five-number summary of `samples` (copied and sorted).
BoxStats box_stats(std::span<const double> samples);

/// Empirical CDF over a sample set. Mirrors the paper's "percentage of
/// channels vs quantity" plots: quantile(f) answers "the value below which a
/// fraction f of samples fall".
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  std::size_t count() const { return sorted_.size(); }
  /// Value at cumulative fraction f in [0,1] (linear interpolation).
  double quantile(double f) const;
  /// Fraction of samples <= x.
  double fraction_at_or_below(double x) const;
  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Formats a BoxStats row for tables: "min/q1/med/q3/max".
std::string format_box(const BoxStats& b, int precision = 2);

}  // namespace dfly
