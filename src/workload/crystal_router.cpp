#include "workload/exchange.hpp"
#include "workload/workload.hpp"

namespace dfly {

// Crystal router (Nek5000 kernel): a multistage many-to-many built from
// pairwise hypercube stages — stage k exchanges rank <-> rank^2^k — with the
// "substantial portion ... in small neighborhoods" modelled as additional
// +-1..+-radius exchanges each iteration. Message sizes are constant
// (~190 KB), matching Fig. 2(d)'s steady load.
Workload make_crystal_router(const CrParams& params) {
  Trace trace(params.ranks);
  TagAllocator tags;
  const Bytes msg = scaled(params.message_bytes, params.scale);

  int stages = 0;
  while ((1 << stages) < params.ranks) ++stages;

  for (int iter = 0; iter < params.iterations; ++iter) {
    // Multistage many-to-many.
    for (int k = 0; k < stages; ++k) {
      for (int r = 0; r < params.ranks; ++r) {
        const int partner = r ^ (1 << k);
        if (partner >= params.ranks || partner < r) continue;  // emit once per pair
        emit_exchange(trace, tags, r, partner, msg);
      }
      emit_phase_end(trace);
    }
    // Neighborhood exchanges.
    for (int d = 1; d <= params.neighborhood_radius; ++d) {
      for (int r = 0; r + d < params.ranks; ++r) emit_exchange(trace, tags, r, r + d, msg);
      emit_phase_end(trace);
    }
  }
  return Workload{"CR", std::move(trace)};
}

}  // namespace dfly
