// Differential and behavioural tests for the calendar-queue event scheduler.
//
// The calendar queue replaced the binary heap on the engine's hottest path;
// these tests pin the contract that made the swap safe: both queues dispatch
// in bit-identical (time, seq) order on any event stream, including same-time
// ties, in-handler scheduling, and far-future backoff times.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace dfly {
namespace {

class NullHandler : public EventHandler {
 public:
  void handle_event(SimTime, const EventPayload&) override {}
};

// Feeds the same randomized push/pop stream to both queues and asserts every
// popped event matches exactly.
void differential_stream(std::uint64_t seed, int ops, SimTime horizon, double far_fraction) {
  Rng rng(seed);
  NullHandler handler;
  HeapEventQueue heap;
  CalendarEventQueue calendar;
  std::uint64_t seq = 0;
  SimTime now = 0;
  for (int i = 0; i < ops; ++i) {
    const bool do_push = heap.empty() || rng.bernoulli(0.55);
    if (do_push) {
      SimTime when;
      const double roll = rng.uniform_double();
      if (roll < far_fraction) {
        // Far-future: an exponential-backoff retransmit timer.
        when = now + (SimTime{20} * units::kMicrosecond
                      << static_cast<int>(rng.uniform(16)));
      } else if (roll < far_fraction + 0.2) {
        when = now;  // same-time tie
      } else {
        when = now + static_cast<SimTime>(rng.uniform(static_cast<std::uint64_t>(horizon)));
      }
      const QueuedEvent ev{when, seq++, &handler,
                           EventPayload{static_cast<std::int32_t>(i), 0, 0, 0}};
      heap.push(ev);
      calendar.push(ev);
    } else {
      ASSERT_FALSE(calendar.empty());
      const QueuedEvent a = heap.pop_min();
      const QueuedEvent b = calendar.pop_min();
      ASSERT_EQ(a.time, b.time) << "op " << i << " seed " << seed;
      ASSERT_EQ(a.seq, b.seq) << "op " << i << " seed " << seed;
      ASSERT_GE(a.time, now);
      now = a.time;
    }
  }
  // Drain both; order must stay identical to the end.
  while (!heap.empty()) {
    ASSERT_FALSE(calendar.empty());
    const QueuedEvent a = heap.pop_min();
    const QueuedEvent b = calendar.pop_min();
    ASSERT_EQ(a.time, b.time);
    ASSERT_EQ(a.seq, b.seq);
  }
  EXPECT_TRUE(calendar.empty());
}

TEST(CalendarQueue, DifferentialShortHorizon) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    differential_stream(seed, 4000, 2000, 0.0);
}

TEST(CalendarQueue, DifferentialBackoffHeavy) {
  for (std::uint64_t seed = 11; seed <= 18; ++seed)
    differential_stream(seed, 4000, 2000, 0.3);
}

TEST(CalendarQueue, DifferentialWideHorizon) {
  for (std::uint64_t seed = 21; seed <= 24; ++seed)
    differential_stream(seed, 3000, 50 * units::kMillisecond, 0.1);
}

TEST(CalendarQueue, AllSameTimePopsInSeqOrder) {
  NullHandler handler;
  CalendarEventQueue q;
  for (std::uint64_t s = 0; s < 500; ++s)
    q.push(QueuedEvent{1234, s, &handler, EventPayload{}});
  for (std::uint64_t s = 0; s < 500; ++s) {
    const QueuedEvent ev = q.pop_min();
    EXPECT_EQ(ev.time, 1234);
    EXPECT_EQ(ev.seq, s);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, ResizesWhenOccupancySkews) {
  NullHandler handler;
  CalendarEventQueue q;
  const std::size_t initial_buckets = q.stats().buckets;
  Rng rng(5);
  for (std::uint64_t s = 0; s < 10'000; ++s)
    q.push(QueuedEvent{static_cast<SimTime>(rng.uniform(1'000'000)), s, &handler, EventPayload{}});
  EXPECT_GT(q.stats().resizes, 0u);
  EXPECT_GT(q.stats().buckets, initial_buckets);
  EXPECT_EQ(q.stats().peak_pending, 10'000u);
  const std::uint64_t grown_resizes = q.stats().resizes;
  SimTime last = -1;
  while (!q.empty()) {
    const SimTime t = q.pop_min().time;
    EXPECT_GE(t, last);
    last = t;
  }
  // Draining shrinks the array back down.
  EXPECT_GT(q.stats().resizes, grown_resizes);
  EXPECT_EQ(q.stats().buckets, initial_buckets);
}

TEST(CalendarQueue, FarFutureEventsParkInOverflowAndPromote) {
  NullHandler handler;
  CalendarEventQueue q;
  std::uint64_t seq = 0;
  // A cluster now plus stragglers seconds away: the stragglers must sit in
  // the overflow tier, then promote as the window reaches them.
  for (int i = 0; i < 100; ++i)
    q.push(QueuedEvent{static_cast<SimTime>(10 * i), seq++, &handler, EventPayload{}});
  for (int i = 0; i < 5; ++i)
    q.push(QueuedEvent{units::kSecond + 1000 * i, seq++, &handler, EventPayload{}});
  EXPECT_GT(q.stats().overflow_events, 0u);
  SimTime last = -1;
  std::size_t popped = 0;
  while (!q.empty()) {
    const SimTime t = q.pop_min().time;
    EXPECT_GE(t, last);
    last = t;
    ++popped;
  }
  EXPECT_EQ(popped, 105u);
  EXPECT_EQ(last, units::kSecond + 4000);
  EXPECT_GT(q.stats().overflow_promotions, 0u);
  EXPECT_EQ(q.stats().overflow_events, 0u);
}

TEST(CalendarQueue, PushBeforeServingWindowRewinds) {
  NullHandler handler;
  CalendarEventQueue q;
  // Anchor the window far out, then push earlier (legal: the engine only
  // requires time >= now, and now is still 0).
  q.push(QueuedEvent{units::kSecond, 0, &handler, EventPayload{}});
  q.push(QueuedEvent{50, 1, &handler, EventPayload{}});
  q.push(QueuedEvent{units::kMillisecond, 2, &handler, EventPayload{}});
  EXPECT_EQ(q.pop_min().time, 50);
  EXPECT_EQ(q.pop_min().time, units::kMillisecond);
  EXPECT_EQ(q.pop_min().time, units::kSecond);
  EXPECT_TRUE(q.empty());
}

// Engine-level differential: a scripted self-scheduling workload runs on the
// real Engine (calendar queue) and on a reference event loop built on the
// binary heap; the dispatch traces must match exactly.
struct TraceEntry {
  SimTime time;
  std::int32_t kind;
  bool operator==(const TraceEntry&) const = default;
};

class ScriptedHandler : public EventHandler {
 public:
  ScriptedHandler(Engine& engine, std::uint64_t seed) : engine_(engine), rng_(seed) {}
  void handle_event(SimTime now, const EventPayload& payload) override {
    trace.push_back({now, payload.kind});
    react(now, payload, [this](SimTime when, EventPayload p) {
      engine_.schedule(when, this, p);
    });
  }
  // Deterministic reaction shared with the reference loop: fan out children,
  // occasional same-time events and far-future backoff timers.
  template <typename Schedule>
  void react(SimTime now, const EventPayload& payload, Schedule schedule) {
    if (payload.kind <= 0) return;
    const int children = static_cast<int>(rng_.uniform(3));
    for (int c = 0; c < children; ++c) {
      SimTime delay = static_cast<SimTime>(rng_.uniform(1500));
      if (rng_.bernoulli(0.05))
        delay = SimTime{20} * units::kMicrosecond << static_cast<int>(rng_.uniform(10));
      schedule(now + delay, EventPayload{payload.kind - 1, 0, 0, 0});
    }
  }
  std::vector<TraceEntry> trace;

 private:
  Engine& engine_;
  Rng rng_;
};

// Minimal re-implementation of the pre-calendar engine: std::priority_queue
// with (time, seq) ordering.
std::vector<TraceEntry> reference_run(std::uint64_t seed, int seeds_events) {
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, std::greater<>> queue;
  std::uint64_t seq = 0;
  Rng rng(seed);
  Rng seeder(seed + 1);
  for (int i = 0; i < seeds_events; ++i) {
    const auto when = static_cast<SimTime>(seeder.uniform(5000));
    const auto kind = static_cast<std::int32_t>(1 + seeder.uniform(6));
    queue.push(QueuedEvent{when, seq++, nullptr, EventPayload{kind, 0, 0, 0}});
  }
  std::vector<TraceEntry> trace;
  while (!queue.empty()) {
    const QueuedEvent ev = queue.top();
    queue.pop();
    trace.push_back({ev.time, ev.payload.kind});
    if (ev.payload.kind <= 0) continue;
    const int children = static_cast<int>(rng.uniform(3));
    for (int c = 0; c < children; ++c) {
      SimTime delay = static_cast<SimTime>(rng.uniform(1500));
      if (rng.bernoulli(0.05))
        delay = SimTime{20} * units::kMicrosecond << static_cast<int>(rng.uniform(10));
      queue.push(QueuedEvent{ev.time + delay, seq++, nullptr,
                             EventPayload{ev.payload.kind - 1, 0, 0, 0}});
    }
  }
  return trace;
}

TEST(CalendarQueue, EngineMatchesReferenceHeapLoop) {
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    Engine engine;
    ScriptedHandler handler(engine, seed);
    Rng seeder(seed + 1);
    for (int i = 0; i < 200; ++i) {
      const auto when = static_cast<SimTime>(seeder.uniform(5000));
      const auto kind = static_cast<std::int32_t>(1 + seeder.uniform(6));
      engine.schedule(when, &handler, EventPayload{kind, 0, 0, 0});
    }
    engine.run();
    const std::vector<TraceEntry> expected = reference_run(seed, 200);
    ASSERT_EQ(handler.trace.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i)
      ASSERT_TRUE(handler.trace[i] == expected[i])
          << "seed " << seed << " event " << i << ": got (" << handler.trace[i].time << ", "
          << handler.trace[i].kind << "), want (" << expected[i].time << ", " << expected[i].kind
          << ")";
  }
}

TEST(Engine, SchedulerStatsExposed) {
  Engine engine;
  NullHandler handler;
  for (int i = 0; i < 5000; ++i)
    engine.schedule(static_cast<SimTime>(i * 7), &handler, EventPayload{});
  engine.schedule(units::kSecond, &handler, EventPayload{});
  const SchedulerStats& before = engine.scheduler_stats();
  EXPECT_EQ(before.calendar_events + before.overflow_events, engine.pending());
  EXPECT_GT(before.resizes, 0u);
  engine.run();
  const SchedulerStats& after = engine.scheduler_stats();
  EXPECT_EQ(after.calendar_events, 0u);
  EXPECT_EQ(after.overflow_events, 0u);
  EXPECT_GE(after.peak_pending, 5001u);
}

}  // namespace
}  // namespace dfly
