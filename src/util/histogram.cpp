#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dfly {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0.0) {
  assert(bins > 0 && hi > lo);
}

void Histogram::add(double x, double weight) {
  // A NaN/inf sample has no meaningful bin; dropping it (with a counter) beats
  // the UB of casting it. Out-of-range samples are clamped in the double
  // domain *before* the integer cast, which is UB for values outside the
  // target type's range.
  if (!std::isfinite(x)) {
    ++non_finite_;
    return;
  }
  const double pos = (x - lo_) / width_;
  std::size_t idx;
  if (!(pos > 0.0)) {
    idx = 0;
  } else if (pos >= static_cast<double>(counts_.size())) {
    idx = counts_.size() - 1;
  } else {
    idx = std::min(static_cast<std::size_t>(pos), counts_.size() - 1);
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

TimeProfile::TimeProfile(SimTime bucket_width) : width_(bucket_width) {
  assert(bucket_width > 0);
}

void TimeProfile::add(SimTime t, Bytes bytes) {
  if (t < 0) t = 0;
  const auto bucket = static_cast<std::size_t>(t / width_);
  if (bucket >= bytes_.size()) bytes_.resize(bucket + 1, 0);
  bytes_[bucket] += bytes;
  total_ += bytes;
}

Bytes TimeProfile::peak() const {
  Bytes p = 0;
  for (const Bytes b : bytes_) p = std::max(p, b);
  return p;
}

}  // namespace dfly
