// Unit tests for the Route container and the AdaptiveGlobal scorer.
#include <gtest/gtest.h>

#include "routing/adaptive_global.hpp"
#include "routing/minimal.hpp"
#include "routing/route.hpp"

namespace dfly {
namespace {

TEST(Route, StartsEmpty) {
  Route r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0);
}

TEST(Route, PushAssignsEscalatingVcs) {
  Route r;
  r.push(10, 5);
  r.push(11, 6);
  r.push(12, 0);
  ASSERT_EQ(r.size(), 3);
  EXPECT_EQ(r[0].router, 10);
  EXPECT_EQ(r[0].port, 5);
  EXPECT_EQ(r[0].vc, 0);
  EXPECT_EQ(r[1].vc, 1);
  EXPECT_EQ(r[2].vc, 2);
  EXPECT_EQ(r.first().router, 10);
  EXPECT_EQ(r.last().router, 12);
  EXPECT_EQ(r.routers_traversed(), 3);
}

TEST(Route, HoldsMaxHops) {
  Route r;
  for (int i = 0; i < kMaxRouteHops; ++i) r.push(i, i);
  EXPECT_EQ(r.size(), kMaxRouteHops);
  EXPECT_EQ(r.last().vc, kMaxRouteHops - 1);
}

class HotEverywhere : public CongestionView {
 public:
  explicit HotEverywhere(Bytes per_channel) : per_channel_(per_channel) {}
  Bytes queued_bytes(RouterId, int) const override { return per_channel_; }

 private:
  Bytes per_channel_;
};

TEST(AdaptiveGlobal, PrefersMinimalWhenUniformlyCongested) {
  // With identical congestion everywhere, the bottleneck is equal on every
  // candidate, so hop count decides: the route must be minimal.
  const DragonflyTopology topo(TopoParams::theta());
  AdaptiveGlobalRouting adpg(topo);
  MinimalRouting minimal(topo);
  const HotEverywhere hot(100 * units::kKiB);
  Rng rng(5);
  const Coordinates& c = topo.coords();
  for (int i = 0; i < 100; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(topo.params().total_nodes()));
    auto dst = static_cast<NodeId>(rng.uniform(topo.params().total_nodes() - 1));
    if (dst >= src) ++dst;
    const Route route = adpg.compute(src, dst, hot, rng);
    const int min_hops =
        minimal.table().min_hops(c.router_of_node(src), c.router_of_node(dst)) + 1;
    EXPECT_EQ(route.size(), min_hops);
  }
}

TEST(AdaptiveGlobal, RoutesAreValid) {
  const DragonflyTopology topo(TopoParams::tiny());
  AdaptiveGlobalRouting adpg(topo);
  const HotEverywhere idle(0);
  Rng rng(6);
  const Coordinates& c = topo.coords();
  for (int i = 0; i < 300; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(topo.params().total_nodes()));
    auto dst = static_cast<NodeId>(rng.uniform(topo.params().total_nodes() - 1));
    if (dst >= src) ++dst;
    const Route route = adpg.compute(src, dst, idle, rng);
    ASSERT_GT(route.size(), 0);
    EXPECT_EQ(route.first().router, c.router_of_node(src));
    EXPECT_EQ(route.last().router, c.router_of_node(dst));
    for (int h = 0; h + 1 < route.size(); ++h)
      EXPECT_EQ(topo.neighbor(route[h].router, route[h].port), route[h + 1].router);
  }
}

}  // namespace
}  // namespace dfly
