// Tests for the background-traffic driver.
#include "workload/background.hpp"

#include <gtest/gtest.h>

#include "routing/adaptive.hpp"
#include "sim/engine.hpp"

namespace dfly {
namespace {

struct Fixture {
  Fixture()
      : topo(TopoParams::tiny()),
        routing(topo),
        network(engine, topo, NetworkParams::theta(), routing, Rng(1)) {}

  std::vector<NodeId> all_nodes() const {
    std::vector<NodeId> nodes(topo.params().total_nodes());
    for (NodeId n = 0; n < topo.params().total_nodes(); ++n) nodes[n] = n;
    return nodes;
  }

  Engine engine;
  DragonflyTopology topo;
  AdaptiveRouting routing;
  Network network;
};

TEST(Background, UniformRandomIssuesOneMessagePerNodePerTick) {
  Fixture f;
  BackgroundSpec spec;
  spec.pattern = BackgroundSpec::Pattern::UniformRandom;
  spec.message_bytes = 4096;
  spec.interval = 10 * units::kMicrosecond;
  BackgroundDriver driver(f.engine, f.network, f.all_nodes(), spec, Rng(2));
  driver.start();
  f.engine.run_until(35 * units::kMicrosecond);  // ticks at 0, 10, 20, 30 us
  driver.request_stop();
  f.engine.run();
  EXPECT_EQ(driver.ticks(), 4u);
  EXPECT_EQ(driver.messages_issued(), 4u * f.topo.params().total_nodes());
  EXPECT_EQ(driver.bytes_issued(),
            static_cast<Bytes>(driver.messages_issued()) * spec.message_bytes);
  EXPECT_EQ(f.network.bytes_delivered(), driver.bytes_issued());
}

TEST(Background, BurstyIssuesFanoutMessages) {
  Fixture f;
  BackgroundSpec spec;
  spec.pattern = BackgroundSpec::Pattern::Bursty;
  spec.message_bytes = 2048;
  spec.burst_fanout = 5;
  spec.interval = units::kMillisecond;
  BackgroundDriver driver(f.engine, f.network, f.all_nodes(), spec, Rng(3));
  driver.start();
  f.engine.run_until(1);  // first tick only
  driver.request_stop();
  f.engine.run();
  EXPECT_EQ(driver.ticks(), 1u);
  EXPECT_EQ(driver.messages_issued(), 5u * f.topo.params().total_nodes());
}

TEST(Background, StopPreventsFurtherTicks) {
  Fixture f;
  BackgroundSpec spec;
  spec.interval = 10;
  spec.message_bytes = 512;
  BackgroundDriver driver(f.engine, f.network, f.all_nodes(), spec, Rng(4));
  driver.start();
  f.engine.run_until(5);
  driver.request_stop();
  f.engine.run();  // must terminate despite the periodic schedule
  EXPECT_EQ(driver.ticks(), 1u);
}

TEST(Background, DestinationsStayInsideBackgroundJob) {
  Fixture f;
  // Background on nodes 10..19 only; the NICs of other nodes must stay idle.
  std::vector<NodeId> nodes;
  for (NodeId n = 10; n < 20; ++n) nodes.push_back(n);
  BackgroundSpec spec;
  spec.message_bytes = 1024;
  spec.interval = 100;
  BackgroundDriver driver(f.engine, f.network, nodes, spec, Rng(5));
  driver.start();
  f.engine.run_until(250);
  driver.request_stop();
  f.engine.run();
  for (NodeId n = 0; n < f.topo.params().total_nodes(); ++n) {
    const bool in_job = n >= 10 && n < 20;
    if (!in_job) {
      EXPECT_EQ(f.network.nic(n).traffic, 0) << "node " << n;
    }
  }
}

TEST(Background, PeakLoadMatchesTableIIFormula) {
  BackgroundSpec uniform;
  uniform.pattern = BackgroundSpec::Pattern::UniformRandom;
  uniform.message_bytes = 16 * units::kKB;
  EXPECT_EQ(uniform.peak_load(2456), 2456 * 16 * units::kKB);

  BackgroundSpec bursty;
  bursty.pattern = BackgroundSpec::Pattern::Bursty;
  bursty.message_bytes = 1 * units::kMB;
  bursty.burst_fanout = 37;
  EXPECT_EQ(bursty.peak_load(100), 100ll * 37 * units::kMB);
}

TEST(Background, RejectsDegenerateSpecs) {
  Fixture f;
  BackgroundSpec spec;
  spec.interval = 0;
  EXPECT_THROW(BackgroundDriver(f.engine, f.network, f.all_nodes(), spec, Rng(6)),
               std::invalid_argument);
  spec.interval = 100;
  spec.message_bytes = 0;
  EXPECT_THROW(BackgroundDriver(f.engine, f.network, f.all_nodes(), spec, Rng(7)),
               std::invalid_argument);
  EXPECT_THROW(BackgroundDriver(f.engine, f.network, {0}, BackgroundSpec{}, Rng(8)),
               std::invalid_argument);
}

}  // namespace
}  // namespace dfly
