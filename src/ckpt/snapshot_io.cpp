#include "ckpt/snapshot_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace dfly::ckpt {
namespace {

constexpr char kMagic[4] = {'D', 'F', 'C', 'K'};
// Caps the snapshot-header payload-size field. Any plausible simulation state
// fits well under this; a corrupt size field larger than the file is caught
// by the length check, this cap just keeps the error message honest.
constexpr std::uint64_t kMaxPayload = 1ull << 32;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error("snapshot: " + what);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(s.data(), s.size());
}

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) corrupt("bad boolean value");
  return v == 1;
}

std::string Reader::str() {
  const std::uint32_t len = u32();
  if (len > remaining()) corrupt("truncated string");
  std::string s(data_, len);
  data_ += len;
  return s;
}

std::size_t Reader::count(std::size_t min_element_bytes) {
  const std::uint64_t n = u64();
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (n > remaining() / min_element_bytes) corrupt("implausible element count");
  return static_cast<std::size_t>(n);
}

void Reader::expect_end() const {
  if (data_ != end_) corrupt("trailing bytes after payload");
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) corrupt("truncated payload");
}

void write_snapshot_file(const std::string& path, SnapshotKind kind, const std::string& payload) {
  namespace fs = std::filesystem;
  // Frame the whole file in memory first: one write_fully below, and the CRC
  // is computed before any byte touches the disk.
  std::string frame;
  frame.reserve(sizeof kMagic + 4 + 4 + 1 + 8 + payload.size() + 4);
  frame.append(kMagic, sizeof kMagic);
  const std::uint32_t version = kFormatVersion;
  const std::uint32_t order = kByteOrderSentinel;
  const auto kind_byte = static_cast<std::uint8_t>(kind);
  const auto payload_size = static_cast<std::uint64_t>(payload.size());
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  frame.append(reinterpret_cast<const char*>(&version), sizeof version);
  frame.append(reinterpret_cast<const char*>(&order), sizeof order);
  frame.append(reinterpret_cast<const char*>(&kind_byte), sizeof kind_byte);
  frame.append(reinterpret_cast<const char*>(&payload_size), sizeof payload_size);
  frame.append(payload);
  frame.append(reinterpret_cast<const char*>(&crc), sizeof crc);

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw std::runtime_error("snapshot: cannot open for writing: " + tmp);
  const auto fail = [&](const std::string& what) {
    ::close(fd);
    std::error_code ec;
    fs::remove(tmp, ec);
    throw std::runtime_error("snapshot: " + what + ": " + tmp);
  };
  for (std::size_t off = 0; off < frame.size();) {
    const ::ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A full disk surfaces here, not as a truncated file at resume time.
      fail("write failed (disk full?)");
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync the data before the rename and the directory after it: only that
  // order makes the marker durable — a rename alone can survive a crash
  // while the bytes it points at do not.
  if (::fsync(fd) != 0) fail("fsync failed");
  if (::close(fd) != 0) {
    std::error_code ec;
    fs::remove(tmp, ec);
    throw std::runtime_error("snapshot: close failed: " + tmp);
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("snapshot: cannot rename into place: " + path);
  }
  std::string dir = fs::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) throw std::runtime_error("snapshot: cannot open parent directory: " + dir);
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) throw std::runtime_error("snapshot: cannot fsync parent directory: " + dir);
}

std::string read_snapshot_file(const std::string& path, SnapshotKind kind) {
  // A directory opens fine but explodes from the stream buffer on read
  // (run_matrix sweep paths ARE directories, with per-config files inside).
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec))
    throw std::runtime_error("snapshot: path is a directory (sweep checkpoints keep per-config "
                             ".ckpt files inside): " + path);
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("snapshot: cannot open: " + path);
  std::string file;
  try {
    file.assign(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
  } catch (const std::ios_base::failure&) {
    throw std::runtime_error("snapshot: read failed: " + path);
  }
  if (!f.good() && !f.eof()) throw std::runtime_error("snapshot: read failed: " + path);

  constexpr std::size_t kHeader = 4 + 4 + 4 + 1 + 8;
  constexpr std::size_t kTrailer = 4;
  if (file.size() < kHeader + kTrailer) corrupt("file too short for header");
  if (__builtin_memcmp(file.data(), kMagic, sizeof kMagic) != 0) corrupt("bad magic");
  std::uint32_t version, order;
  std::uint8_t kind_byte;
  std::uint64_t payload_size;
  __builtin_memcpy(&version, file.data() + 4, sizeof version);
  __builtin_memcpy(&order, file.data() + 8, sizeof order);
  __builtin_memcpy(&kind_byte, file.data() + 12, sizeof kind_byte);
  __builtin_memcpy(&payload_size, file.data() + 13, sizeof payload_size);
  if (version != kFormatVersion)
    corrupt("unsupported version " + std::to_string(version));
  if (order != kByteOrderSentinel) corrupt("byte-order mismatch (not little-endian?)");
  if (kind_byte != static_cast<std::uint8_t>(kind)) corrupt("wrong snapshot kind");
  if (payload_size > kMaxPayload) corrupt("implausible payload size");
  if (file.size() != kHeader + payload_size + kTrailer) corrupt("payload size mismatch");

  std::uint32_t stored_crc;
  __builtin_memcpy(&stored_crc, file.data() + kHeader + payload_size, sizeof stored_crc);
  const std::uint32_t actual = crc32(file.data() + kHeader, payload_size);
  if (stored_crc != actual) corrupt("CRC mismatch (corrupt or bit-flipped file)");
  return file.substr(kHeader, payload_size);
}

}  // namespace dfly::ckpt
