// Precomputed minimal-path helper for the Cascade dragonfly.
//
// Intra-group minimal paths are pure coordinate arithmetic (direct, or via
// one of the two row/column intersection routers). Inter-group paths must
// pick one of the many global links between the two groups; to keep per-chunk
// routing O(few) we precompute, for every (router, peer group), the links
// bucketed by source-side local hop count (0: on this router, 1: in its row
// or column). Links needing two source-side hops are resolved by scanning the
// full pair list, which only happens when buckets 0 and 1 are both worse.
#pragma once

#include <vector>

#include "routing/route.hpp"
#include "topo/dragonfly.hpp"
#include "util/rng.hpp"

namespace dfly {

class MinimalPathTable {
 public:
  explicit MinimalPathTable(const DragonflyTopology& topo);

  /// Appends the router-level minimal path from `from` to `to` (inclusive of
  /// departure hops, exclusive of the ejection hop). Ties are broken uniformly
  /// at random. No-op when from == to.
  void append_minimal(Route& route, RouterId from, RouterId to, Rng& rng) const;

  /// Router-router hop count of a minimal path (0 when from == to).
  int min_hops(RouterId from, RouterId to) const;

  const DragonflyTopology& topology() const { return topo_; }

 private:
  struct Candidates {
    /// Links from this router's group toward the peer group whose source
    /// router is `router` itself (bucket 0) or shares its row/column
    /// (bucket 1), concatenated; bucket 0 is [0, bucket1_begin).
    std::vector<GlobalLink> near_links;
    int bucket1_begin = 0;
    /// Minimum achievable total hops from this router into the peer group's
    /// landing router (source-side hops + 1 global hop), i.e. before counting
    /// destination-side hops.
    int best_src_cost = 3;
  };

  const Candidates& candidates(RouterId router, GroupId peer) const;
  void append_local(Route& route, RouterId from, RouterId to, Rng& rng) const;
  int local_hops(RouterId a, RouterId b) const;

  const DragonflyTopology& topo_;
  std::vector<Candidates> table_;  ///< indexed router * groups + peer group
};

}  // namespace dfly
