# Empty compiler generated dependencies file for bench_findings_check.
# This may be replaced when dependencies are built.
