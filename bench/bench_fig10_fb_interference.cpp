// Reproduces Fig. 10: FB under (a) uniform-random and (b) bursty background
// traffic, plus (c) local channel traffic with the bursty background.
//
// Paper shape: uniform background leaves FB nearly untouched; bursty
// background prolongs communication (less than CR's hit), adaptive routing
// shows more variability than minimal, and contiguous/random-cabinet
// placements vary the least.
#include "bench_interference.hpp"

int main() {
  using namespace dfly;
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  print_bench_header("Fig. 10", "FB under uniform-random and bursty background traffic", scale,
                     seed);

  ExperimentOptions options;
  options.seed = seed;
  const Workload fb = bench::fb_workload(scale);

  // (a) uniform: 2456 nodes x 15.6 KB = 38.3 MB per tick (Table II: 38.38 MB).
  bench::run_interference_figure(
      fb, options, bench::uniform_background(15600, 10 * units::kMicrosecond, scale),
      /*traffic_tables=*/false);

  // (b)+(c) bursty: 2456 nodes x 4 peers x 50 KB = 491 MB per burst.
  bench::run_interference_figure(
      fb, options, bench::bursty_background(50 * units::kKB, 4, 100 * units::kMicrosecond, scale),
      /*traffic_tables=*/true);
  return 0;
}
