// Failure-injection tests: routing and full experiments on degraded
// topologies (disabled global links), plus the runtime fault path — timed
// link-down/up events, local-link faults, and NIC retransmission.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "net/network.hpp"
#include "replay/replay.hpp"
#include "routing/adaptive.hpp"
#include "routing/minimal.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

TEST(Faults, DisableRemovesLinkFromBothDirections) {
  DragonflyTopology topo(TopoParams::tiny());
  const auto before_fwd = topo.global_links(0, 1).size();
  const auto before_bwd = topo.global_links(1, 0).size();
  const GlobalLink victim = topo.global_links(0, 1)[2];
  topo.disable_global_link(0, 1, 2);
  EXPECT_EQ(topo.global_links(0, 1).size(), before_fwd - 1);
  EXPECT_EQ(topo.global_links(1, 0).size(), before_bwd - 1);
  EXPECT_EQ(topo.disabled_global_links(), 1);
  EXPECT_FALSE(topo.port_enabled(victim.src_router, victim.src_port));
  EXPECT_FALSE(topo.port_enabled(victim.dst_router, victim.dst_port));
  // Unrelated pair untouched.
  EXPECT_EQ(topo.global_links(0, 2).size(), before_fwd);
  // Remaining links of the pair are still enabled.
  for (const GlobalLink& link : topo.global_links(0, 1))
    EXPECT_TRUE(topo.port_enabled(link.src_router, link.src_port));
}

TEST(Faults, CannotDisconnectAGroupPair) {
  DragonflyTopology topo(TopoParams::tiny());
  while (topo.global_links(0, 1).size() > 1) topo.disable_global_link(0, 1, 0);
  EXPECT_THROW(topo.disable_global_link(0, 1, 0), std::invalid_argument);
  EXPECT_EQ(topo.global_links(0, 1).size(), 1u);
}

TEST(Faults, DisableRejectsBadArguments) {
  DragonflyTopology topo(TopoParams::tiny());
  EXPECT_THROW(topo.disable_global_link(0, 0, 0), std::invalid_argument);
  EXPECT_THROW(topo.disable_global_link(0, 1, 1000), std::invalid_argument);
  EXPECT_THROW(topo.disable_global_link(0, 1, -1), std::invalid_argument);
}

TEST(Faults, RoutesAvoidDisabledLinks) {
  DragonflyTopology topo(TopoParams::tiny());
  Rng fault_rng(3);
  const int disabled = disable_random_global_links(topo, 0.5, fault_rng);
  EXPECT_GT(disabled, 0);

  MinimalRouting routing(topo);  // built after fault injection
  struct Idle : CongestionView {
    Bytes queued_bytes(RouterId, int) const override { return 0; }
  } idle;
  Rng rng(4);
  const int nodes = topo.params().total_nodes();
  for (int i = 0; i < 1000; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(nodes));
    auto dst = static_cast<NodeId>(rng.uniform(nodes - 1));
    if (dst >= src) ++dst;
    const Route route = routing.compute(src, dst, idle, rng);
    for (int h = 0; h < route.size(); ++h)
      EXPECT_TRUE(topo.port_enabled(route[h].router, route[h].port))
          << "route uses a failed link";
  }
}

TEST(Faults, DegradedFabricStillDeliversEverything) {
  DragonflyTopology topo(TopoParams::tiny());
  Rng fault_rng(5);
  disable_random_global_links(topo, 0.6, fault_rng);

  Engine engine;
  AdaptiveRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
  const Trace trace = make_ring_trace(32, 128 * units::kKiB, 2);
  Rng rng(6);
  const Placement placement =
      make_placement(PlacementKind::RandomNode, topo.params(), 32, rng);
  ReplayEngine replay(engine, network, trace, placement);
  replay.start();
  engine.set_event_limit(200'000'000);
  engine.run();
  EXPECT_FALSE(engine.hit_event_limit());
  EXPECT_TRUE(replay.finished());
}

// Helper kept outside the lambda so both runs use the identical trace.
Trace make_permutation_trace_helper() {
  Rng rng(9);
  return make_permutation_trace(40, 512 * units::kKiB, rng);
}

TEST(Faults, FewerLinksMeansMoreCongestionNotMoreHops) {
  // Disabling half of the global links leaves minimal hop counts intact
  // (some link always remains per pair) but concentrates traffic: the same
  // workload must take at least as long on the degraded fabric.
  auto run_ring = [](double fail_fraction) {
    DragonflyTopology topo(TopoParams::tiny());
    if (fail_fraction > 0) {
      Rng fault_rng(7);
      disable_random_global_links(topo, fail_fraction, fault_rng);
    }
    Engine engine;
    MinimalRouting routing(topo);
    Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));
    const Trace trace = make_permutation_trace_helper();
    Rng rng(8);
    const Placement placement =
        make_placement(PlacementKind::RandomNode, topo.params(), trace.ranks(), rng);
    ReplayEngine replay(engine, network, trace, placement);
    replay.start();
    engine.run();
    EXPECT_TRUE(replay.finished());
    return engine.now();
  };
  EXPECT_LE(run_ring(0.0), run_ring(0.6));
}

TEST(Faults, FractionValidation) {
  DragonflyTopology topo(TopoParams::tiny());
  Rng rng(10);
  EXPECT_THROW(disable_random_global_links(topo, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(disable_random_global_links(topo, -0.1, rng), std::invalid_argument);
  EXPECT_EQ(disable_random_global_links(topo, 0.0, rng), 0);
}

// ---------------------------------------------------------------------------
// Runtime fault injection: link state changes while a simulation is running.
// ---------------------------------------------------------------------------

TEST(RuntimeFaults, SetGlobalLinkStateIsReversible) {
  DragonflyTopology topo(TopoParams::tiny());
  const auto all = topo.all_global_links(0, 1).size();
  const auto enabled = topo.global_links(0, 1).size();
  const std::uint64_t epoch0 = topo.epoch();

  EXPECT_TRUE(topo.set_global_link_state(0, 1, 0, false));
  EXPECT_EQ(topo.all_global_links(0, 1).size(), all);  // identity list is stable
  EXPECT_EQ(topo.global_links(0, 1).size(), enabled - 1);
  EXPECT_EQ(topo.disabled_global_links(), 1);
  EXPECT_GT(topo.epoch(), epoch0);
  EXPECT_FALSE(topo.set_global_link_state(0, 1, 0, false));  // no-op reported

  const std::uint64_t pv = topo.pair_version(0, 1);
  EXPECT_EQ(pv, topo.pair_version(1, 0));  // bumped symmetrically
  EXPECT_TRUE(topo.set_global_link_state(0, 1, 0, true));
  EXPECT_EQ(topo.global_links(0, 1).size(), enabled);
  EXPECT_EQ(topo.disabled_global_links(), 0);
  EXPECT_GT(topo.pair_version(0, 1), pv);
}

TEST(RuntimeFaults, SetGlobalLinkStateGuardsLastLink) {
  DragonflyTopology topo(TopoParams::tiny());
  const int links = static_cast<int>(topo.all_global_links(0, 1).size());
  for (int i = 0; i < links - 1; ++i) topo.set_global_link_state(0, 1, i, false);
  EXPECT_THROW(topo.set_global_link_state(0, 1, links - 1, false), std::invalid_argument);
  EXPECT_THROW(topo.set_global_link_state(0, 1, links, false), std::invalid_argument);
  EXPECT_EQ(topo.global_links(0, 1).size(), 1u);
}

TEST(RuntimeFaults, LocalLinkDisableIsSymmetricAndReversible) {
  DragonflyTopology topo(TopoParams::tiny());
  // Routers 0 and 1 share row 0 of group 0.
  const int p01 = topo.local_port_to(0, 1);
  const int p10 = topo.local_port_to(1, 0);
  const std::uint64_t lv = topo.local_version(0);

  topo.disable_local_link(0, 1);
  EXPECT_EQ(topo.disabled_local_links(), 1);
  EXPECT_FALSE(topo.port_enabled(0, p01));
  EXPECT_FALSE(topo.port_enabled(1, p10));
  EXPECT_GT(topo.local_version(0), lv);
  topo.disable_local_link(0, 1);  // idempotent
  EXPECT_EQ(topo.disabled_local_links(), 1);

  EXPECT_TRUE(topo.set_local_link_state(0, 1, true));
  EXPECT_EQ(topo.disabled_local_links(), 0);
  EXPECT_TRUE(topo.port_enabled(0, p01));
  EXPECT_TRUE(topo.port_enabled(1, p10));
}

TEST(RuntimeFaults, LocalLinkGuardKeepsTwoHopPaths) {
  // tiny(): rows=2, cols=4, so row 0 of group 0 is routers {0,1,2,3}. With
  // (0,2) and (0,3) down, router 0 reaches the rest of its row only through
  // router 1; downing (0,1) would leave 0->2 without a <=2-local-hop path.
  DragonflyTopology topo(TopoParams::tiny());
  topo.disable_local_link(0, 2);
  topo.disable_local_link(0, 3);
  EXPECT_THROW(topo.disable_local_link(0, 1), std::invalid_argument);
  // The refused mutation must not leave partial state behind.
  EXPECT_TRUE(topo.port_enabled(0, topo.local_port_to(0, 1)));
  EXPECT_TRUE(topo.port_enabled(1, topo.local_port_to(1, 0)));
  EXPECT_EQ(topo.disabled_local_links(), 2);
}

TEST(RuntimeFaults, LocalLinkGuardProtectsTwoRouterColumns) {
  // With rows=2 a column holds exactly two routers, so its link has no
  // two-hop detour inside the column: downing any column link must be
  // refused. Routers 0 and 4 share column 0 of group 0.
  DragonflyTopology topo(TopoParams::tiny());
  EXPECT_THROW(topo.disable_local_link(0, 4), std::invalid_argument);
  EXPECT_EQ(topo.disabled_local_links(), 0);
}

TEST(RuntimeFaults, LocalLinkRejectsNonNeighbors) {
  DragonflyTopology topo(TopoParams::tiny());
  EXPECT_THROW(topo.set_local_link_state(0, 0, false), std::invalid_argument);
  // Router 5 is row 1 / col 1: neither 0's row nor 0's column.
  EXPECT_THROW(topo.set_local_link_state(0, 5, false), std::invalid_argument);
  // Router 8 is in another group.
  EXPECT_THROW(topo.set_local_link_state(0, 8, false), std::invalid_argument);
}

TEST(RuntimeFaults, RoutesAvoidDisabledLocalLinks) {
  DragonflyTopology topo(TopoParams::tiny());
  topo.disable_local_link(0, 2);   // row link, group 0 row 0
  topo.disable_local_link(4, 7);   // row link, group 0 row 1
  topo.disable_local_link(9, 11);  // row link, group 1
  EXPECT_EQ(topo.disabled_local_links(), 3);

  AdaptiveRouting routing(topo);
  struct Idle : CongestionView {
    Bytes queued_bytes(RouterId, int) const override { return 0; }
  } idle;
  Rng rng(14);
  const int nodes = topo.params().total_nodes();
  for (int i = 0; i < 1000; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(nodes));
    auto dst = static_cast<NodeId>(rng.uniform(nodes - 1));
    if (dst >= src) ++dst;
    const Route route = routing.compute(src, dst, idle, rng);
    for (int h = 0; h < route.size(); ++h)
      EXPECT_TRUE(topo.port_enabled(route[h].router, route[h].port))
          << "route uses a failed local link";
  }
}

TEST(RuntimeFaults, RoutingRefreshPicksUpRuntimeChanges) {
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);  // built while everything is healthy
  const int links = static_cast<int>(topo.all_global_links(0, 1).size());
  for (int i = 0; i < links - 1; ++i) topo.set_global_link_state(0, 1, i, false);
  routing.on_topology_changed();

  struct Idle : CongestionView {
    Bytes queued_bytes(RouterId, int) const override { return 0; }
  } idle;
  Rng rng(15);
  const int per_group = topo.params().routers_per_group() * topo.params().nodes_per_router;
  for (int i = 0; i < 200; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform(per_group));  // group 0
    const auto dst = static_cast<NodeId>(per_group + rng.uniform(per_group));  // group 1
    const Route route = routing.compute(src, dst, idle, rng);
    for (int h = 0; h < route.size(); ++h)
      EXPECT_TRUE(topo.port_enabled(route[h].router, route[h].port))
          << "stale table entry survived refresh";
  }
}

TEST(RuntimeFaults, RetransmitBackoffDoublesAndCaps) {
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  NetworkParams params = NetworkParams::theta();
  params.retransmit_timeout = 1000;
  params.retransmit_max_backoff = 4;
  Network network(engine, topo, params, routing, Rng(1));
  EXPECT_EQ(network.retransmit_delay(0), 1000);
  EXPECT_EQ(network.retransmit_delay(1), 2000);
  EXPECT_EQ(network.retransmit_delay(3), 8000);
  EXPECT_EQ(network.retransmit_delay(4), 16000);
  EXPECT_EQ(network.retransmit_delay(10), 16000);  // capped at max_backoff
}

TEST(RuntimeFaults, RetransmitBackoffSaturatesInsteadOfOverflowing) {
  // Regression: timeout << shift was UB/overflow for shift counts up to 32
  // (or large timeouts); the delay now saturates at kMaxRetransmitDelay.
  Engine engine;
  DragonflyTopology topo(TopoParams::tiny());
  MinimalRouting routing(topo);
  NetworkParams params = NetworkParams::theta();
  params.retransmit_timeout = 20 * units::kMicrosecond;
  params.retransmit_max_backoff = 32;
  Network network(engine, topo, params, routing, Rng(1));
  // 20 us << 32 is ~85900 s — far past the cap.
  EXPECT_EQ(network.retransmit_delay(32), kMaxRetransmitDelay);
  EXPECT_EQ(network.retransmit_delay(1'000'000), kMaxRetransmitDelay);
  // Below the cap the doubling series is unchanged.
  EXPECT_EQ(network.retransmit_delay(0), 20 * units::kMicrosecond);
  EXPECT_EQ(network.retransmit_delay(10), 20 * units::kMicrosecond << 10);
  // Monotone non-decreasing across the whole attempt range.
  SimTime prev = 0;
  for (int attempts = 0; attempts <= 40; ++attempts) {
    const SimTime d = network.retransmit_delay(attempts);
    EXPECT_GE(d, prev) << "attempt " << attempts;
    EXPECT_LE(d, kMaxRetransmitDelay);
    prev = d;
  }

  // A second-scale timeout would overflow SimTime outright without the cap.
  params.retransmit_timeout = units::kSecond;
  Network slow(engine, topo, params, routing, Rng(1));
  EXPECT_EQ(slow.retransmit_delay(32), kMaxRetransmitDelay);
}

TEST(RuntimeFaults, RetransmitParamsValidated) {
  NetworkParams p = NetworkParams::theta();
  p.retransmit_timeout = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = NetworkParams::theta();
  p.retransmit_max_backoff = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(RuntimeFaults, InjectorSkipsGuardedEventsAndCountsFired) {
  DragonflyTopology topo(TopoParams::tiny());
  Engine engine;
  MinimalRouting routing(topo);
  Network network(engine, topo, NetworkParams::theta(), routing, Rng(1));

  FaultSchedule schedule;
  const int links = static_cast<int>(topo.all_global_links(0, 1).size());
  for (int i = 0; i < links; ++i)  // the last down must be refused by the guard
    schedule.push_back(FaultEvent::global_down(100, 0, 1, i));
  schedule.push_back(FaultEvent::global_up(200, 0, 2, 0));  // already up: no change

  FaultInjector injector(engine, topo, network, &routing, schedule);
  injector.start();
  engine.run();

  EXPECT_EQ(injector.fired(), links - 1);
  EXPECT_EQ(injector.skipped(), 1);
  EXPECT_EQ(topo.global_links(0, 1).size(), 1u);
  EXPECT_EQ(topo.global_links(0, 2).size(), topo.all_global_links(0, 2).size());
}

TEST(RuntimeFaults, RandomScheduleNeverTargetsLastLink) {
  DragonflyTopology topo(TopoParams::tiny());
  Rng rng(12);
  const FaultSchedule schedule =
      random_global_fault_schedule(topo, 0.6, 50 * units::kMicrosecond, rng);
  EXPECT_GT(schedule.size(), 0u);
  // Applying the whole schedule must not trip the connectivity guard.
  DragonflyTopology scratch(topo.params());
  for (const FaultEvent& f : schedule) {
    ASSERT_TRUE(f.is_global());
    ASSERT_TRUE(f.is_down());
    EXPECT_EQ(f.time, 50 * units::kMicrosecond);
    EXPECT_NO_THROW(scratch.set_global_link_state(f.a, f.b, f.index, false));
  }
}

// Shared helper: run one (placement, routing) configuration healthy, then
// with a runtime degradation injected a quarter of the way through, and check
// the acceptance criterion — the run completes, every dropped byte was
// retransmitted, and the conservation audit holds.
void expect_recovery(RoutingKind routing_kind, double fraction, std::uint64_t seed) {
  Rng trace_rng(21);
  const Workload app{"perm", make_permutation_trace(24, 256 * units::kKiB, trace_rng)};
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  options.seed = seed;
  options.net.retransmit_timeout = 5 * units::kMicrosecond;  // quick recovery: short test run
  options.health.interval = 20 * units::kMicrosecond;
  const ExperimentConfig config{PlacementKind::RandomNode, routing_kind};

  const ExperimentResult healthy = run_experiment(app, config, options);
  ASSERT_GT(healthy.metrics.makespan_ms, 0.0);
  EXPECT_EQ(healthy.bytes_dropped, 0);
  EXPECT_EQ(healthy.bytes_retransmitted, 0);
  EXPECT_TRUE(healthy.conservation_ok);

  const DragonflyTopology topo(options.topo);
  Rng fault_rng(17);
  const auto at = static_cast<SimTime>(healthy.metrics.makespan_ms * units::kMillisecond / 4);
  ExperimentOptions faulted = options;
  faulted.faults = random_global_fault_schedule(topo, fraction, at, fault_rng);
  ASSERT_FALSE(faulted.faults.empty());
  const ExperimentResult result = run_experiment(app, config, faulted, &topo);

  EXPECT_GT(result.faults_fired, 0);
  EXPECT_FALSE(result.stalled);
  EXPECT_FALSE(result.hit_event_limit);
  EXPECT_TRUE(result.conservation_ok) << result.health_report;
  EXPECT_GT(result.bytes_retransmitted, 0) << "no chunk was caught on a downed link";
  EXPECT_EQ(result.bytes_dropped, result.bytes_retransmitted)
      << "some dropped bytes were never retransmitted";
  // The shared topology must not have been mutated by the faulted run.
  EXPECT_EQ(topo.disabled_global_links(), 0);
}

TEST(RuntimeFaults, AdaptiveRecoversEveryDroppedByte) {
  expect_recovery(RoutingKind::Adaptive, 0.6, 3);
}

TEST(RuntimeFaults, ValiantRecoversEveryDroppedByte) {
  expect_recovery(RoutingKind::Valiant, 0.5, 4);
}

TEST(RuntimeFaults, DownThenUpStillConservesAndDelivers) {
  Rng trace_rng(22);
  const Workload app{"perm", make_permutation_trace(24, 128 * units::kKiB, trace_rng)};
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  options.seed = 9;
  options.net.retransmit_timeout = 5 * units::kMicrosecond;
  const ExperimentConfig config{PlacementKind::RandomNode, RoutingKind::Adaptive};

  const SimTime at = 10 * units::kMicrosecond;
  ExperimentOptions faulted = options;
  faulted.faults = {FaultEvent::global_down(at, 0, 1, 0), FaultEvent::global_down(at, 0, 2, 1),
                    FaultEvent::global_up(2 * at, 0, 1, 0), FaultEvent::global_up(2 * at, 0, 2, 1)};
  const ExperimentResult result = run_experiment(app, config, faulted);

  EXPECT_EQ(result.faults_fired, 4);
  EXPECT_FALSE(result.stalled);
  EXPECT_TRUE(result.conservation_ok) << result.health_report;
  EXPECT_EQ(result.bytes_dropped, result.bytes_retransmitted);
}

TEST(RuntimeFaults, LocalFaultExperimentCompletes) {
  Rng trace_rng(23);
  const Workload app{"perm", make_permutation_trace(24, 128 * units::kKiB, trace_rng)};
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  options.seed = 11;
  options.net.retransmit_timeout = 5 * units::kMicrosecond;
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Adaptive};

  ExperimentOptions faulted = options;
  faulted.faults = {FaultEvent::local_down(5 * units::kMicrosecond, 0, 1),
                    FaultEvent::local_down(5 * units::kMicrosecond, 2, 3),
                    FaultEvent::local_down(8 * units::kMicrosecond, 4, 6)};
  const ExperimentResult result = run_experiment(app, config, faulted);

  EXPECT_EQ(result.faults_fired, 3);
  EXPECT_FALSE(result.stalled);
  EXPECT_TRUE(result.conservation_ok) << result.health_report;
  EXPECT_EQ(result.bytes_dropped, result.bytes_retransmitted);
}

}  // namespace
}  // namespace dfly
