// Simulation health monitoring: periodic progress checks, chunk-conservation
// audits, and a structured diagnostic snapshot for deadlocked or stalled
// runs (replacing a bare "experiment deadlocked" exception with the state
// needed to debug one: which NICs are blocked, which ports are starved of
// credits, where the bytes are).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"

namespace dfly {

struct HealthOptions {
  bool enabled = true;
  /// Period between monitor ticks.
  SimTime interval = units::kMillisecond;
  /// Ticks without injection/delivery progress (while work remains) before
  /// the run is declared stalled and the engine is stopped. The default
  /// window (250 ms simulated) comfortably exceeds the maximum retransmit
  /// backoff, so fault recovery never trips it.
  int stall_ticks = 250;
};

/// One output port that currently holds chunks it cannot move.
struct PortDiag {
  RouterId router = -1;
  int port = -1;
  PortKind kind = PortKind::Terminal;
  Bytes queued_bytes = 0;
  int queued_chunks = 0;
  /// VCs on this port whose downstream credit is below one full chunk.
  int starved_vcs = 0;
};

/// Snapshot of simulation health at one instant; to_string() renders the
/// multi-line diagnostic dump.
struct HealthReport {
  SimTime time = 0;
  bool deadlock = false;       ///< work remains but the event queue drained
  bool stalled = false;        ///< no progress for the configured window
  bool conservation_ok = true;
  Bytes bytes_injected = 0;
  Bytes bytes_delivered = 0;
  Bytes bytes_dropped = 0;
  Bytes bytes_retransmitted = 0;
  Bytes in_fabric_bytes = 0;
  std::size_t messages_in_flight = 0;
  std::size_t pending_events = 0;
  std::uint64_t events_processed = 0;
  int blocked_nics = 0;
  std::vector<NodeId> blocked_nic_ids;  ///< capped sample of blocked NICs
  std::vector<PortDiag> stuck_ports;    ///< capped sample of starved ports
  std::vector<Bytes> vc_occupancy;      ///< queued bytes per VC, fabric-wide
  SchedulerStats scheduler;             ///< calendar-queue occupancy/resizes

  std::string to_string() const;
};

/// The audit the monitor runs each tick, as a free function for tests.
inline bool conservation_holds(Bytes injected, Bytes delivered, Bytes dropped, Bytes in_fabric) {
  return injected == delivered + dropped + in_fabric;
}

/// Periodic health checker installed on the engine. Each tick it audits chunk
/// conservation and compares the network's progress counters against the
/// previous tick; when work remains but nothing has moved for `stall_ticks`
/// ticks it captures a report and stops the engine. When the event queue is
/// about to drain with work remaining (hard deadlock), it captures a report
/// and lets the engine stop naturally. Ticks stop rescheduling once
/// `work_remaining` reports false, so the monitor never keeps a finished
/// simulation alive.
class HealthMonitor : public EventHandler {
 public:
  HealthMonitor(Engine& engine, const Network& network, HealthOptions options = {});

  /// `fn` reports whether the driver still expects progress (e.g. replay not
  /// finished). Defaults to "messages are in flight".
  void set_work_remaining(std::function<bool()> fn) { work_remaining_ = std::move(fn); }

  /// Schedules the first tick; call once before Engine::run().
  void start();

  void handle_event(SimTime now, const EventPayload& payload) override;

  /// Captures a diagnostic snapshot of the current simulation state.
  HealthReport capture(SimTime now) const;

  bool deadlock_detected() const { return deadlock_; }
  bool stalled() const { return stalled_; }
  bool conservation_failed() const { return conservation_failed_; }
  /// The report captured when deadlock/stall/conservation failure was first
  /// detected; empty-state if none occurred.
  const HealthReport& report() const { return report_; }
  std::uint64_t ticks() const { return ticks_; }

  /// Checkpoint support (src/ckpt/): progress watermarks and tick counters.
  /// The failure report is not serialized — a run that tripped deadlock or
  /// stall detection has already stopped and is not checkpointable.
  void save_state(ckpt::Writer& w) const;
  void load_state(ckpt::Reader& r);

 private:
  Engine& engine_;
  const Network& network_;
  HealthOptions options_;
  std::function<bool()> work_remaining_;

  Bytes last_injected_ = -1;
  Bytes last_delivered_ = -1;
  int idle_ticks_ = 0;
  std::uint64_t ticks_ = 0;
  bool deadlock_ = false;
  bool stalled_ = false;
  bool conservation_failed_ = false;
  HealthReport report_;
};

}  // namespace dfly
