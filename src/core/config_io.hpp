// Experiment configuration files (INI-style), in the spirit of CODES'
// network config files: every topology/network/experiment parameter of
// ExperimentOptions can be set from a text file, so studies are runnable
// without recompiling.
//
//   # dragonfly-tradeoff config
//   [topology]
//   groups = 9
//   rows = 6
//   cols = 16
//   nodes_per_router = 4
//   global_ports_per_router = 10
//
//   [network]
//   chunk_bytes = 2048
//   local_bandwidth_gib = 5.25
//   router_delay_ns = 500
//
//   [experiment]
//   seed = 42
//   msg_scale = 0.25
//   eager_threshold = 65536
#pragma once

#include <iosfwd>
#include <string>

#include "core/experiment.hpp"

namespace dfly {

/// Parses a config stream into ExperimentOptions, starting from the given
/// defaults. Throws std::runtime_error with a line number on malformed input
/// or unknown keys.
ExperimentOptions parse_config(std::istream& is, ExperimentOptions defaults = {});

/// File variant; throws std::runtime_error on I/O failure.
ExperimentOptions load_config(const std::string& path, ExperimentOptions defaults = {});

/// Renders `options` as a config file (parse(render(x)) == x); doubles as
/// the reference documentation for every supported key.
std::string render_config(const ExperimentOptions& options);

}  // namespace dfly
