// The sweep farm: crash-isolated, self-healing execution of a configuration
// matrix.
//
// Each config runs in a forked worker process, so a crash, sanitizer abort or
// OOM kill is contained and classified instead of taking down the sweep. The
// supervisor enforces a per-attempt wall-clock watchdog (SIGCONT+SIGTERM so a
// responsive worker flushes a final checkpoint, SIGKILL after a grace
// period), retries transient/crash/timeout failures with exponential backoff
// + jitter — resuming from the config's .ckpt snapshot instead of restarting
// — and quarantines configs that exhaust the retry budget while the rest of
// the matrix completes. Chaos mode randomly SIGKILLs/SIGSTOPs the farm's own
// workers to self-test exactly this machinery (examples/sweep_farm chaos
// asserts the aggregated manifest is byte-identical to a fault-free serial
// sweep).
//
// run_farm forks; call it from a single-threaded process (examples, tests,
// sweep drivers), never while other threads hold locks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "farm/retry.hpp"

namespace dfly::farm {

/// One worker attempt, as observed by the supervisor.
struct AttemptRecord {
  ExitClass outcome = ExitClass::Ok;
  int exit_code = -1;          ///< worker exit code (normal exits)
  int signal = 0;              ///< terminating signal (signal deaths)
  bool timed_out = false;      ///< the watchdog initiated the kill
  bool resumed = false;        ///< a .ckpt snapshot existed at spawn
  bool chaos_killed = false;   ///< chaos mode SIGKILLed this attempt
  bool chaos_stopped = false;  ///< chaos mode SIGSTOPped this attempt
  std::int64_t wall_ms = 0;
  std::int64_t backoff_ms = 0;  ///< delay scheduled before the next attempt
};

/// Final state of one config after the farm is done with it. Exactly one of
/// completed / quarantined / interrupted is set.
struct ConfigOutcome {
  std::string config;
  ExitClass final_outcome = ExitClass::Ok;
  bool completed = false;
  bool quarantined = false;   ///< retry budget exhausted or permanent failure
  bool interrupted = false;   ///< graceful shutdown before completion; resumable
  std::string error;          ///< worker's .err message or a signal description
  std::vector<AttemptRecord> attempts;
  ExperimentResult result;    ///< valid when completed
};

/// Farm-level counters; exported to farm_stats.json via an obs
/// CounterRegistry (src/farm/manifest.hpp) and never part of manifest.json —
/// wall-clock-dependent values must not break manifest byte-identity.
struct FarmStats {
  std::int64_t configs = 0;
  std::int64_t completed = 0;
  std::int64_t quarantined = 0;
  std::int64_t interrupted = 0;
  std::int64_t attempts = 0;
  std::int64_t retries = 0;
  std::int64_t resumed_attempts = 0;
  std::int64_t timeouts = 0;
  std::int64_t crashes = 0;
  std::int64_t transients = 0;
  std::int64_t sigterm_escalations = 0;
  std::int64_t sigkill_escalations = 0;
  std::int64_t chaos_kills = 0;
  std::int64_t chaos_stops = 0;
  std::int64_t attempt_wall_ms_total = 0;  ///< summed wall-clock of every attempt
  std::int64_t elapsed_ms = 0;             ///< whole-farm wall-clock, start to settle
};

struct FarmReport {
  std::vector<ConfigOutcome> outcomes;  ///< in the input configs order
  FarmStats stats;
  bool interrupted = false;  ///< SIGINT/SIGTERM drained the farm early

  /// Every config completed (nothing quarantined, nothing interrupted).
  bool all_ok() const;
  /// Results of the completed configs, in outcomes order.
  std::vector<ExperimentResult> results() const;
};

/// Runs the matrix under process supervision. options.checkpoint.path names
/// the sweep directory (required; created if missing) holding the per-config
/// .ckpt/.done/.err files; options.farm holds worker count, watchdog timeout,
/// retry/backoff policy and chaos knobs (options.farm.validate() is called).
/// Graceful degradation by design: quarantined configs are reported, never
/// thrown; the only exceptions are bad arguments and supervisor-side I/O
/// failures.
FarmReport run_farm(const Workload& workload, const std::vector<ExperimentConfig>& configs,
                    const ExperimentOptions& options);

/// Wraps plain run_matrix/run_experiment results as an all-ok FarmReport —
/// the fault-free serial baseline whose aggregated manifest the chaos
/// self-test byte-compares against.
FarmReport report_from_results(const std::vector<ExperimentResult>& results);

}  // namespace dfly::farm
