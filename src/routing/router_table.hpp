// Precomputed minimal-path helper for the Cascade dragonfly.
//
// Intra-group minimal paths are pure coordinate arithmetic (direct, or via
// one of the two row/column intersection routers). Inter-group paths must
// pick one of the many global links between the two groups; to keep per-chunk
// routing O(few) we precompute, for every (router, peer group), the links
// bucketed by source-side local hop count (0: on this router, 1: in its row
// or column). Links needing two source-side hops are resolved by scanning the
// full pair list, which only happens when buckets 0 and 1 are both worse.
//
// The table is a snapshot of the topology's enabled-link state. When links
// fail or recover at runtime, refresh() rebuilds just the entries whose
// inputs changed, driven by the topology's pair/local version counters.
#pragma once

#include <cstdint>
#include <vector>

#include "routing/route.hpp"
#include "topo/dragonfly.hpp"
#include "util/rng.hpp"

namespace dfly {

class MinimalPathTable {
 public:
  explicit MinimalPathTable(const DragonflyTopology& topo);

  /// Appends the router-level minimal path from `from` to `to` (inclusive of
  /// departure hops, exclusive of the ejection hop). Ties are broken uniformly
  /// at random. No-op when from == to.
  void append_minimal(Route& route, RouterId from, RouterId to, Rng& rng) const;

  /// Router-router hop count of a minimal path (0 when from == to).
  int min_hops(RouterId from, RouterId to) const;

  /// Rebuilds the entries invalidated by topology link-state changes since
  /// construction or the previous refresh. O(1) when nothing changed.
  void refresh();

  const DragonflyTopology& topology() const { return topo_; }

 private:
  struct Candidates {
    /// Links from this router's group toward the peer group whose source
    /// router is `router` itself (bucket 0) or shares its row/column
    /// (bucket 1), concatenated; bucket 0 is [0, bucket1_begin).
    std::vector<GlobalLink> near_links;
    int bucket1_begin = 0;
    /// Minimum achievable total hops from this router into the peer group's
    /// landing router (source-side hops + 1 global hop), i.e. before counting
    /// destination-side hops.
    int best_src_cost = 3;
  };

  const Candidates& candidates(RouterId router, GroupId peer) const;
  void rebuild_entry(RouterId router, GroupId peer);
  void append_local(Route& route, RouterId from, RouterId to, Rng& rng) const;
  int local_hops(RouterId a, RouterId b) const;

  const DragonflyTopology& topo_;
  std::vector<Candidates> table_;  ///< indexed router * groups + peer group

  // Topology versions this table was built against (see refresh()).
  std::uint64_t epoch_seen_ = 0;
  std::vector<std::uint64_t> pair_seen_;   ///< groups x groups
  std::vector<std::uint64_t> local_seen_;  ///< per group
};

}  // namespace dfly
