#include "lint/rules.hpp"

#include <algorithm>
#include <array>
#include <set>

namespace dfly::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule ids

constexpr const char* kWallClock = "wall-clock";
constexpr const char* kRawRng = "raw-rng";
constexpr const char* kUnorderedIter = "unordered-iter";
constexpr const char* kPointerOrder = "pointer-order";
constexpr const char* kRawBytes = "raw-bytes";
constexpr const char* kPodAssert = "pod-assert";
constexpr const char* kBadAnnotation = "bad-annotation";
constexpr const char* kStaleAllow = "stale-allow";

// ---------------------------------------------------------------------------
// Annotations

struct Annotation {
  std::set<std::string> rules;
  std::string reason;
  int line = 0;          ///< line of the annotation comment
  int applies_line = 0;  ///< line of the code the annotation covers (0: none)
  bool used = false;
  bool malformed = false;
  std::string malformed_why;
};

std::string trim(std::string s) {
  const auto notspace = [](unsigned char c) { return !std::isspace(c); };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), notspace));
  s.erase(std::find_if(s.rbegin(), s.rend(), notspace).base(), s.end());
  return s;
}

/// Parses one annotation out of a comment's text, given the position right
/// after the "dfly-lint:" marker.
Annotation parse_annotation(const std::string& text, std::size_t after_marker, int line) {
  Annotation ann;
  ann.line = line;
  const auto fail = [&](const std::string& why) {
    ann.malformed = true;
    ann.malformed_why = why;
    return ann;
  };

  std::size_t p = text.find_first_not_of(" \t", after_marker);
  static constexpr std::string_view kAllow = "allow(";
  if (p == std::string::npos || text.compare(p, kAllow.size(), kAllow) != 0)
    return fail("expected allow(<rule>[,<rule>...]) after dfly-lint:");
  p += kAllow.size();
  const std::size_t close = text.find(')', p);
  if (close == std::string::npos) return fail("unclosed allow( rule list");

  std::string list = text.substr(p, close - p);
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string name =
        trim(comma == std::string::npos ? list.substr(start) : list.substr(start, comma - start));
    if (!name.empty()) {
      const std::string canon = canonical_rule(name);
      if (canon.empty()) return fail("unknown rule '" + name + "' in allow()");
      ann.rules.insert(canon);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (ann.rules.empty()) return fail("empty rule list in allow()");

  std::size_t r = text.find("reason=", close);
  if (r == std::string::npos) return fail("missing reason= after allow()");
  std::string reason = text.substr(r + 7);
  // Strip a block-comment terminator if the annotation lives in /* ... */.
  if (const std::size_t end = reason.rfind("*/"); end != std::string::npos)
    reason = reason.substr(0, end);
  ann.reason = trim(reason);
  if (ann.reason.empty()) return fail("empty reason= — exemptions must be justified");
  return ann;
}

// ---------------------------------------------------------------------------
// Per-file evaluation context

struct FileCtx {
  const SourceFile* file = nullptr;
  std::vector<const Token*> code;  ///< non-comment, non-preprocessor tokens
  std::vector<Annotation> annotations;
  /// Names declared with an unordered container as their full type.
  std::set<std::string> unordered_direct;
  /// Names whose declared type contains an unordered container somewhere
  /// inside (e.g. std::vector<std::unordered_map<...>> rows_).
  std::set<std::string> unordered_nested;
};

bool is_code(const Token& t) { return t.kind != TokKind::Comment && t.kind != TokKind::Pp; }

/// Position just past "dfly-lint:" if the comment *starts* with the marker
/// (after its // or /* opener and whitespace); npos otherwise. Anchoring at
/// the start keeps prose that merely quotes an annotation example from
/// parsing as one.
std::size_t annotation_marker(const std::string& comment) {
  std::size_t p = 0;
  while (p < comment.size() && (comment[p] == '/' || comment[p] == '*')) ++p;
  while (p < comment.size() && (comment[p] == ' ' || comment[p] == '\t')) ++p;
  static constexpr std::string_view kMarker = "dfly-lint:";
  if (comment.compare(p, kMarker.size(), kMarker) != 0) return std::string::npos;
  return p + kMarker.size();
}

void collect_annotations(FileCtx& ctx) {
  const std::vector<Token>& toks = ctx.file->tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::Comment) continue;
    const std::size_t marker = annotation_marker(t.text);
    if (marker == std::string::npos) continue;
    Annotation ann = parse_annotation(t.text, marker, t.line);
    // Trailing comment (code precedes it on the same line) covers only its
    // own line; a standalone comment line covers the next code line too.
    bool trailing = false;
    for (std::size_t j = i; j-- > 0;) {
      if (toks[j].line != t.line) break;
      if (is_code(toks[j])) {
        trailing = true;
        break;
      }
    }
    ann.applies_line = ann.line;
    if (!trailing) {
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_code(toks[j])) {
          ann.applies_line = toks[j].line;
          break;
        }
      }
    }
    ctx.annotations.push_back(std::move(ann));
  }
}

/// Walks a balanced <...> starting at the '<' code index; returns the index
/// one past the matching '>', or `end` if unbalanced. Records top-level
/// comma positions (depth 1) when `commas` is non-null.
std::size_t skip_template_args(const FileCtx& ctx, std::size_t open,
                               std::vector<std::size_t>* commas = nullptr) {
  int depth = 0;
  for (std::size_t i = open; i < ctx.code.size(); ++i) {
    const Token& t = *ctx.code[i];
    if (t.kind != TokKind::Punct) continue;
    if (t.text == "<") ++depth;
    if (t.text == ">") {
      --depth;
      if (depth == 0) return i + 1;
    }
    // A ';' or '{' at depth>0 means this '<' was a comparison, not a
    // template argument list — bail rather than swallowing the file.
    if (t.text == ";" || t.text == "{") return ctx.code.size();
    if (t.text == "," && depth == 1 && commas) commas->push_back(i);
  }
  return ctx.code.size();
}

const std::set<std::string>& unordered_container_names() {
  static const std::set<std::string> names = {"unordered_map", "unordered_set",
                                              "unordered_multimap", "unordered_multiset"};
  return names;
}

/// Finds declarations whose type involves an unordered container and records
/// the declared (or accessor-function) name.
void collect_unordered_decls(FileCtx& ctx) {
  const auto& code = ctx.code;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i]->kind != TokKind::Identifier || !unordered_container_names().count(code[i]->text))
      continue;
    if (i + 1 >= code.size() || code[i + 1]->text != "<") continue;
    const std::size_t after = skip_template_args(ctx, i + 1);
    if (after >= code.size()) continue;

    // Direct: unordered_map<...> [const] [&*]* name
    std::size_t j = after;
    while (j < code.size() && code[j]->kind == TokKind::Punct &&
           (code[j]->text == "&" || code[j]->text == "*"))
      ++j;
    if (j < code.size() && code[j]->kind == TokKind::Identifier && code[j]->text != "const" &&
        ctx.unordered_direct.insert(code[j]->text).second) {
      continue;
    }

    // Nested: the unordered container is an inner template argument — walk
    // out to the enclosing declarator and take the first identifier after
    // the outermost '>' (e.g. vector<unordered_map<...>> rows_).
    if (after < code.size() && code[after]->text == ">") {
      std::size_t k = after;
      while (k < code.size() && code[k]->text == ">") ++k;
      while (k < code.size() && code[k]->kind == TokKind::Punct &&
             (code[k]->text == "&" || code[k]->text == "*"))
        ++k;
      if (k < code.size() && code[k]->kind == TokKind::Identifier && code[k]->text != "const")
        ctx.unordered_nested.insert(code[k]->text);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule bodies. Each returns raw findings; annotation resolution is shared.

struct Finding {
  std::string rule;
  int line;
  std::string message;
};

bool prev_is_member_access(const FileCtx& ctx, std::size_t i) {
  if (i == 0) return false;
  const Token& p = *ctx.code[i - 1];
  return p.kind == TokKind::Punct && (p.text == "." || p.text == ">");  // '>' tail of '->'
}

bool next_is(const FileCtx& ctx, std::size_t i, const char* punct) {
  return i + 1 < ctx.code.size() && ctx.code[i + 1]->kind == TokKind::Punct &&
         ctx.code[i + 1]->text == punct;
}

void rule_wall_clock(const FileCtx& ctx, std::vector<Finding>& out) {
  if (is_wallclock_module(ctx.file->module)) return;
  static const std::set<std::string> always = {
      "system_clock", "steady_clock",  "high_resolution_clock", "gettimeofday",
      "clock_gettime", "timespec_get", "localtime",             "gmtime",
      "mktime",        "strftime",     "asctime",               "ctime"};
  static const std::set<std::string> call_only = {"time", "clock"};
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const Token& t = *ctx.code[i];
    if (t.kind != TokKind::Identifier) continue;
    if (always.count(t.text)) {
      out.push_back({kWallClock, t.line,
                     t.text + " reads wall-clock time; simulation state must depend only on "
                             "sim-time and seeds (allowed modules: prof/, farm/)"});
    } else if (call_only.count(t.text) && next_is(ctx, i, "(") && !prev_is_member_access(ctx, i)) {
      out.push_back({kWallClock, t.line,
                     t.text + "() reads wall-clock time; use the engine's sim-time clock"});
    }
  }
}

void rule_raw_rng(const FileCtx& ctx, std::vector<Finding>& out) {
  static const std::set<std::string> engines = {
      "random_device", "mt19937",        "mt19937_64",   "minstd_rand",
      "minstd_rand0",  "ranlux24",       "ranlux48",     "ranlux24_base",
      "ranlux48_base", "knuth_b",        "seed_seq",     "default_random_engine"};
  static const std::set<std::string> call_only = {"rand", "srand", "rand_r", "random",
                                                  "srandom", "drand48", "lrand48", "mrand48"};
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const Token& t = *ctx.code[i];
    if (t.kind != TokKind::Identifier) continue;
    if (engines.count(t.text)) {
      out.push_back({kRawRng, t.line,
                     t.text + " is a non-reproducible/unspecified random source; draw from a "
                             "seeded Rng stream (util/rng.hpp) instead"});
    } else if (call_only.count(t.text) && next_is(ctx, i, "(") && !prev_is_member_access(ctx, i)) {
      out.push_back({kRawRng, t.line,
                     t.text + "() is unseeded global-state randomness; draw from a seeded Rng "
                             "stream (util/rng.hpp) instead"});
    }
  }
}

void rule_unordered_iter(const FileCtx& ctx, const std::set<std::string>& direct,
                         const std::set<std::string>& nested, bool feeds_artifacts,
                         std::vector<Finding>& out) {
  if (!feeds_artifacts) return;
  const auto& code = ctx.code;

  // Range-for whose range expression names an unordered container.
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i]->kind != TokKind::Identifier || code[i]->text != "for") continue;
    if (!next_is(ctx, i, "(")) continue;
    // Find the ':' at paren depth 1 (skipping "::" which lexes as one token).
    int depth = 0;
    std::size_t colon = 0, close = 0;
    for (std::size_t j = i + 1; j < code.size(); ++j) {
      const Token& t = *code[j];
      if (t.kind != TokKind::Punct) continue;
      if (t.text == "(") ++depth;
      if (t.text == ")") {
        if (--depth == 0) {
          close = j;
          break;
        }
      }
      if (t.text == ":" && depth == 1 && colon == 0) colon = j;
      if (t.text == ";" && depth == 1) break;  // classic for loop
    }
    if (colon == 0 || close == 0) continue;
    bool names_direct = false, names_nested = false, element_access = false;
    for (std::size_t j = colon + 1; j < close; ++j) {
      const Token& t = *code[j];
      if (t.kind == TokKind::Identifier) {
        if (direct.count(t.text)) names_direct = true;
        if (nested.count(t.text)) names_nested = true;
      }
      if (t.kind == TokKind::Punct && (t.text == "[" || t.text == "(")) element_access = true;
    }
    // A nested name iterated whole (e.g. the outer vector) is ordered; only
    // element access like rows_[src] reaches the unordered payload.
    if (names_direct || (names_nested && element_access)) {
      out.push_back({kUnorderedIter, code[i]->line,
                     "iteration over an unordered container in artifact-feeding code; hash-map "
                     "order is implementation-defined and can leak into artifact bytes (sort "
                     "keys first, use an ordered container, or annotate the loop "
                     "order-insensitive)"});
    }
  }

  // Explicit iterator walks: name.begin() / name.cbegin(). end()/cend() are
  // deliberately not matched — `it != m.end()` is the find-and-test idiom
  // and iterating still requires a begin().
  for (std::size_t i = 2; i < code.size(); ++i) {
    const Token& t = *code[i];
    if (t.kind != TokKind::Identifier || (t.text != "begin" && t.text != "cbegin")) continue;
    if (!prev_is_member_access(ctx, i) || !next_is(ctx, i, "(")) continue;
    const Token& obj = *code[i - 2];
    if (obj.kind == TokKind::Identifier && direct.count(obj.text)) {
      out.push_back({kUnorderedIter, t.line,
                     "explicit iterator over unordered container '" + obj.text +
                         "' in artifact-feeding code"});
    }
  }
}

void rule_pointer_order(const FileCtx& ctx, std::vector<Finding>& out) {
  struct Spec {
    int key_args;  ///< template args that participate in ordering/hashing
    int max_args;  ///< more than this means a user-supplied comparator/hash
  };
  static const std::map<std::string, Spec> containers = {
      {"map", {1, 2}},          {"multimap", {1, 2}},
      {"set", {1, 1}},          {"multiset", {1, 1}},
      {"unordered_map", {1, 2}}, {"unordered_multimap", {1, 2}},
      {"unordered_set", {1, 1}}, {"unordered_multiset", {1, 1}},
      {"hash", {1, 1}},         {"less", {1, 1}},
      {"greater", {1, 1}}};
  const auto& code = ctx.code;
  for (std::size_t i = 1; i < code.size(); ++i) {
    const Token& t = *code[i];
    if (t.kind != TokKind::Identifier) continue;
    const auto spec = containers.find(t.text);
    if (spec == containers.end()) continue;
    // Require a qualified use (std::map) so a local variable named `map`
    // compared with `<` cannot fire the rule.
    if (!(code[i - 1]->kind == TokKind::Punct && code[i - 1]->text == "::")) continue;
    if (!next_is(ctx, i, "<")) continue;
    std::vector<std::size_t> commas;
    const std::size_t after = skip_template_args(ctx, i + 1, &commas);
    if (after >= code.size()) continue;
    const int nargs = static_cast<int>(commas.size()) + 1;
    if (nargs > spec->second.max_args) continue;  // custom comparator/hash governs ordering
    const std::size_t key_end = commas.empty() ? after - 1 : commas.front();
    for (std::size_t j = i + 2; j < key_end; ++j) {
      if (code[j]->kind == TokKind::Punct && code[j]->text == "*") {
        out.push_back({kPointerOrder, t.line,
                       "pointer type used as ordering/hash key in std::" + t.text +
                           "; pointer values vary run to run — key on a stable id instead"});
        break;
      }
    }
  }
}

void rule_raw_bytes(const FileCtx& ctx, std::vector<Finding>& out) {
  static const std::set<std::string> allowed_rels = {"ckpt/snapshot_io.hpp", "ckpt/snapshot_io.cpp",
                                                     "obs/json.hpp", "obs/json.cpp"};
  if (allowed_rels.count(ctx.file->rel)) return;
  static const std::set<std::string> raw = {"reinterpret_cast", "memcpy",          "memmove",
                                            "__builtin_memcpy", "__builtin_memmove", "fwrite",
                                            "fread"};
  for (const Token* t : ctx.code) {
    if (t->kind == TokKind::Identifier && raw.count(t->text)) {
      out.push_back({kRawBytes, t->line,
                     t->text + " performs raw byte reinterpretation; byte-level I/O is confined "
                              "to ckpt/snapshot_io and obs/json so format invariants live in "
                              "one place"});
    }
  }
}

void rule_pod_assert(const FileCtx& ctx, std::vector<Finding>& out) {
  if (ctx.file->module != "ckpt") return;
  const auto& code = ctx.code;

  // Struct names covered by a static_assert in this file: any static_assert
  // whose argument list mentions the name along with a triviality trait or
  // sizeof-based size pin.
  std::set<std::string> asserted;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i]->kind != TokKind::Identifier || code[i]->text != "static_assert") continue;
    if (!next_is(ctx, i, "(")) continue;
    int depth = 0;
    bool qualifies = false;
    std::vector<std::string> mentioned;
    for (std::size_t j = i + 1; j < code.size(); ++j) {
      const Token& t = *code[j];
      if (t.kind == TokKind::Punct) {
        if (t.text == "(") ++depth;
        if (t.text == ")" && --depth == 0) break;
      }
      if (t.kind == TokKind::Identifier) {
        if (t.text.find("is_trivially_copyable") != std::string::npos || t.text == "sizeof")
          qualifies = true;
        mentioned.push_back(t.text);
      }
    }
    if (qualifies)
      for (const std::string& name : mentioned) asserted.insert(name);
  }

  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i]->kind != TokKind::Identifier || code[i]->text != "struct") continue;
    const Token& name = *code[i + 1];
    if (name.kind != TokKind::Identifier) continue;
    // Definition, not forward declaration: scan past a possible base-clause
    // to '{'; a ';' first means a declaration only.
    bool definition = false;
    for (std::size_t j = i + 2; j < code.size(); ++j) {
      const Token& t = *code[j];
      if (t.kind == TokKind::Punct && t.text == "{") {
        definition = true;
        break;
      }
      if (t.kind == TokKind::Punct && (t.text == ";" || t.text == "(")) break;
    }
    if (!definition || asserted.count(name.text)) continue;
    out.push_back({kPodAssert, name.line,
                   "struct " + name.text +
                       " in ckpt/ has no static_assert pinning its triviality/size; "
                       "snapshot-framed layouts must fail the build when they drift"});
  }
}

// ---------------------------------------------------------------------------
// Include closure (for visibility of unordered declarations across headers)

void closure_of(const std::string& rel, const std::map<std::string, SourceFile>& files,
                std::map<std::string, std::set<std::string>>& memo, std::set<std::string>& out,
                std::set<std::string>& visiting) {
  if (const auto it = memo.find(rel); it != memo.end()) {
    out.insert(it->second.begin(), it->second.end());
    return;
  }
  if (!visiting.insert(rel).second) return;  // include cycle — already on the path
  std::set<std::string> mine;
  const auto it = files.find(rel);
  if (it != files.end()) {
    for (const std::string& inc : it->second.includes) {
      if (!files.count(inc)) continue;
      mine.insert(inc);
      closure_of(inc, files, memo, mine, visiting);
    }
  }
  visiting.erase(rel);
  memo[rel] = mine;
  out.insert(mine.begin(), mine.end());
}

}  // namespace

std::string canonical_rule(const std::string& name) {
  static const std::map<std::string, std::string> names = {
      {"R1", kWallClock},      {"wall-clock", kWallClock},
      {"R2", kRawRng},         {"raw-rng", kRawRng},
      {"R3", kUnorderedIter},  {"unordered-iter", kUnorderedIter},
      {"R4", kPointerOrder},   {"pointer-order", kPointerOrder},
      {"R5", kRawBytes},       {"raw-bytes", kRawBytes},
      {"R6", kPodAssert},      {"pod-assert", kPodAssert}};
  const auto it = names.find(name);
  return it == names.end() ? std::string() : it->second;
}

LintResult run_rules(const std::map<std::string, SourceFile>& files) {
  LintResult result;
  result.files_scanned = static_cast<int>(files.size());
  const std::set<std::string> feeding = artifact_feeding_set(files);

  // Pass 1: lex-level context per file (annotations, unordered declarations).
  std::map<std::string, FileCtx> contexts;
  for (const auto& [rel, file] : files) {
    FileCtx& ctx = contexts[rel];
    ctx.file = &file;
    for (const Token& t : file.tokens)
      if (is_code(t)) ctx.code.push_back(&t);
    collect_annotations(ctx);
    collect_unordered_decls(ctx);
  }

  // Pass 2: rules + annotation resolution.
  std::map<std::string, std::set<std::string>> closure_memo;
  for (auto& [rel, ctx] : contexts) {
    std::vector<Finding> findings;
    rule_wall_clock(ctx, findings);
    rule_raw_rng(ctx, findings);
    rule_pointer_order(ctx, findings);
    rule_raw_bytes(ctx, findings);
    rule_pod_assert(ctx, findings);

    // R3 sees declarations from every header this file (transitively)
    // includes — the map a .cpp iterates is usually declared in its header.
    std::set<std::string> direct = ctx.unordered_direct;
    std::set<std::string> nested = ctx.unordered_nested;
    std::set<std::string> visible, visiting;
    closure_of(rel, files, closure_memo, visible, visiting);
    for (const std::string& inc : visible) {
      const FileCtx& other = contexts.at(inc);
      direct.insert(other.unordered_direct.begin(), other.unordered_direct.end());
      nested.insert(other.unordered_nested.begin(), other.unordered_nested.end());
    }
    rule_unordered_iter(ctx, direct, nested, feeding.count(rel) > 0, findings);

    for (Annotation& ann : ctx.annotations) {
      if (ann.malformed)
        result.violations.push_back({kBadAnnotation, rel, ann.line,
                                     "malformed dfly-lint annotation: " + ann.malformed_why});
    }
    for (const Finding& f : findings) {
      Annotation* match = nullptr;
      for (Annotation& ann : ctx.annotations) {
        if (ann.malformed || !ann.rules.count(f.rule)) continue;
        if (ann.line == f.line || ann.applies_line == f.line) {
          match = &ann;
          break;
        }
      }
      if (match) {
        match->used = true;
        result.exemptions.push_back({f.rule, rel, f.line, match->reason});
      } else {
        result.violations.push_back({f.rule, rel, f.line, f.message});
      }
    }
    for (const Annotation& ann : ctx.annotations) {
      if (!ann.malformed && !ann.used)
        result.violations.push_back(
            {kStaleAllow, rel, ann.line,
             "dfly-lint allow() annotation suppresses nothing — remove it (exemptions must "
             "not outlive the code they excuse)"});
    }
  }

  const auto order = [](const auto& a, const auto& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  };
  std::sort(result.violations.begin(), result.violations.end(), order);
  std::sort(result.exemptions.begin(), result.exemptions.end(), order);
  return result;
}

}  // namespace dfly::lint
