# Empty dependencies file for dfly_sim.
# This may be replaced when dependencies are built.
