#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "ckpt/snapshot_io.hpp"
#include "prof/profiler.hpp"

namespace dfly {

namespace {
constexpr SimTime kMaxTime = std::numeric_limits<SimTime>::max();
}  // namespace

thread_local Engine::BatchCtx* Engine::tls_batch_ = nullptr;

Engine::~Engine() {
  if (!pool_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_start_.notify_all();
    for (std::thread& t : pool_) t.join();
  }
}

void Engine::enable_sharding(const ShardingOptions& opts) {
  if (sharded()) throw std::logic_error("engine: sharding already enabled");
  if (seq_ != 0 || processed_ != 0 || !queue_.empty())
    throw std::logic_error("engine: enable_sharding requires a fresh engine");
  if (opts.shards < 1) throw std::invalid_argument("engine: shards must be >= 1");
  if (opts.lookahead < 1) throw std::invalid_argument("engine: lookahead must be >= 1");
  if (opts.threads < 1) throw std::invalid_argument("engine: threads must be >= 1");
  // Lane indices must fit the 16-bit field of the packed sequence number and
  // the 10-bit lane field of sharded chunk ids (net/chunk.hpp).
  if (opts.shards + 1 >= 1023) throw std::invalid_argument("engine: too many shards");
  lanes_ = std::vector<Lane>(static_cast<std::size_t>(opts.shards) + 1);
  lookahead_ = opts.lookahead;
  threads_ = opts.threads;
  pool_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) pool_.emplace_back([this] { worker_main(); });
}

void Engine::set_profiler(prof::Profiler* p) {
  if (p != nullptr && p->lanes() != lanes())
    throw std::invalid_argument("engine: profiler lane count must match engine lanes");
  profiler_ = p;
}

SimTime Engine::event_now() const {
  const BatchCtx* ctx = tls_batch_;
  return (ctx != nullptr && ctx->engine == this) ? ctx->now : now_;
}

int Engine::current_lane() const {
  const BatchCtx* ctx = tls_batch_;
  if (ctx != nullptr && ctx->engine == this) return ctx->lane;
  return global_lane();
}

std::uint64_t Engine::lane_processed(int lane) const {
  assert(lane >= 0 && lane < lanes());
  return sharded() ? lanes_[static_cast<std::size_t>(lane)].processed : processed_;
}

void Engine::schedule(SimTime when, EventHandler* handler, EventPayload payload) {
  assert(handler != nullptr);
  if (!sharded()) {
    assert(when >= now_ && "cannot schedule into the past");
    queue_.push(QueuedEvent{when, seq_++, handler, payload});
    return;
  }
  BatchCtx* ctx = tls_batch_;
  if (ctx != nullptr && ctx->engine != this) ctx = nullptr;
  const int src = ctx != nullptr ? ctx->lane : global_lane();
  assert(when >= (ctx != nullptr ? ctx->now : now_) && "cannot schedule into the past");
  int target = handler->event_shard(payload);
  if (target == EventHandler::kGlobalShard) target = global_lane();
  assert(target >= 0 && target < static_cast<int>(lanes_.size()));
  Lane& from = lanes_[static_cast<std::size_t>(src)];
  const QueuedEvent ev{when, pack_seq(src, from.counter++), handler, payload};
  if (src == global_lane()) {
    // Global events run alone with every shard parked, so the coordinator may
    // push directly into any lane's queue.
    lanes_[static_cast<std::size_t>(target)].queue.push(ev);
  } else if (target == src) {
    from.queue.push(ev);  // same-lane: runs within this batch if when <= bound
  } else {
    // Cross-shard: staged in the scheduling lane's outbox, merged at the
    // barrier. The lookahead guarantees the event lands strictly after the
    // batch bound; this assert is the conservative-synchronization invariant.
    assert(when > ctx->bound && "cross-shard send violates the lookahead bound");
    from.outbox.emplace_back(target, ev);
  }
}

bool Engine::step() {
  if (stop_requested_) return false;
  if (queue_.empty()) return false;
  if (event_limit_ != 0 && processed_ >= event_limit_) {
    hit_limit_ = true;
    return false;
  }
  const QueuedEvent ev = queue_.pop_min();
  now_ = ev.time;
  ++processed_;
  if (profiler_ == nullptr) {
    ev.handler->handle_event(now_, ev.payload);
  } else {
    const std::int64_t t0 = prof::Profiler::now_ns();
    ev.handler->handle_event(now_, ev.payload);
    profiler_->record_dispatch(0, prof::Profiler::now_ns() - t0);
  }
  return true;
}

SimTime Engine::run() { return run_slice(kMaxTime); }

SimTime Engine::run_until(SimTime deadline) {
  run_slice(deadline);
  // Advance to the deadline only on a genuine drain: a run halted by
  // request_stop() or the event-limit watchdog must not teleport forward.
  if (pending() == 0 && !stop_requested_ && !hit_limit_ && now_ < deadline) now_ = deadline;
  return now_;
}

SimTime Engine::run_slice(SimTime deadline) {
  return sharded() ? run_slice_sharded(deadline) : run_slice_serial(deadline);
}

SimTime Engine::run_slice_serial(SimTime deadline) {
  while (!queue_.empty() && queue_.min().time <= deadline) {
    if (!step()) break;
  }
  return now_;
}

SimTime Engine::run_slice_sharded(SimTime deadline) {
  const int nshards = static_cast<int>(lanes_.size()) - 1;
  Lane& global = lanes_.back();
  for (;;) {
    if (stop_requested_) break;
    if (event_limit_ != 0 && processed_ >= event_limit_) {
      hit_limit_ = true;
      break;
    }
    SimTime tmin = kMaxTime;
    for (int i = 0; i < nshards; ++i) {
      Lane& lane = lanes_[static_cast<std::size_t>(i)];
      if (!lane.queue.empty()) tmin = std::min(tmin, lane.queue.min().time);
    }
    const SimTime tg = global.queue.empty() ? kMaxTime : global.queue.min().time;
    if (tmin == kMaxTime && tg == kMaxTime) break;  // drained
    if (std::min(tmin, tg) > deadline) break;
    if (tg < tmin) {
      // Dispatch exactly one global event, alone: shards are parked, so the
      // handler may touch any state, and anything it schedules lands before
      // the next batch bound is computed.
      const QueuedEvent ev = global.queue.pop_min();
      now_ = ev.time;
      global.last_time = ev.time;
      ++global.processed;
      ++processed_;
      BatchCtx ctx{this, global_lane(), kMaxTime, ev.time};
      tls_batch_ = &ctx;
      if (profiler_ == nullptr) {
        ev.handler->handle_event(now_, ev.payload);
      } else {
        const std::int64_t t0 = prof::Profiler::now_ns();
        ev.handler->handle_event(now_, ev.payload);
        profiler_->record_dispatch(global_lane(), prof::Profiler::now_ns() - t0);
      }
      tls_batch_ = nullptr;
      continue;
    }
    // Conservative batch: every shard event in [tmin, bound] is independent
    // of every other shard's events in that window (cross-shard influence
    // needs >= lookahead ns), and shard events at a given time precede global
    // events at the same time (bound includes tg). The -1 is load-bearing: a
    // cross-shard send from an event at t <= bound arrives at
    // t + lookahead >= tmin + lookahead > bound.
    const SimTime horizon =
        tmin > kMaxTime - lookahead_ ? kMaxTime : tmin + lookahead_ - 1;
    run_batch(std::min({horizon, tg, deadline}));
  }
  return now_;
}

void Engine::run_batch(SimTime bound) {
  const int nshards = static_cast<int>(lanes_.size()) - 1;
  active_.clear();
  for (int i = 0; i < nshards; ++i) {
    Lane& lane = lanes_[static_cast<std::size_t>(i)];
    if (!lane.queue.empty() && lane.queue.min().time <= bound) active_.push_back(i);
  }
  if (profiler_ != nullptr) profiler_->begin_batch(active_);
  if (threads_ == 1 || active_.size() == 1 || pool_.empty()) {
    for (const int i : active_) run_lane(i, bound);
  } else {
    batch_bound_ = bound;
    next_active_.store(0, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      done_workers_ = 0;
      ++generation_;
    }
    cv_start_.notify_all();
    work_lanes();  // the coordinator participates
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [this] { return done_workers_ == static_cast<int>(pool_.size()); });
  }
  // The cv_done_ wait above is the happens-before edge that lets the
  // coordinator read the per-lane busy accumulators the workers just wrote.
  if (profiler_ != nullptr) profiler_->end_batch(active_);
  // Barrier: merge outboxes in lane order — a deterministic order that is
  // identical at every thread count — then let subsystems quiesce (the
  // network drains deferred cross-lane chunk frees here).
  merge_outboxes();
  if (quiesce_hook_) {
    if (profiler_ == nullptr) {
      quiesce_hook_();
    } else {
      const std::int64_t t0 = prof::Profiler::now_ns();
      quiesce_hook_();
      profiler_->add_flush(global_lane(), prof::Profiler::now_ns() - t0);
    }
  }
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.processed;
  processed_ = total;
  for (const int i : active_) now_ = std::max(now_, lanes_[static_cast<std::size_t>(i)].last_time);
}

void Engine::run_lane(int lane_idx, SimTime bound) {
  Lane& lane = lanes_[static_cast<std::size_t>(lane_idx)];
  BatchCtx ctx{this, lane_idx, bound, 0};
  tls_batch_ = &ctx;
  prof::Profiler* const p = profiler_;
  while (!lane.queue.empty() && lane.queue.min().time <= bound) {
    const QueuedEvent ev = lane.queue.pop_min();
    ctx.now = ev.time;
    lane.last_time = ev.time;
    ++lane.processed;
    if (p == nullptr) {
      ev.handler->handle_event(ev.time, ev.payload);
    } else {
      const std::int64_t t0 = prof::Profiler::now_ns();
      ev.handler->handle_event(ev.time, ev.payload);
      p->record_dispatch(lane_idx, prof::Profiler::now_ns() - t0);
    }
  }
  tls_batch_ = nullptr;
}

void Engine::work_lanes() {
  for (;;) {
    const int idx = next_active_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= static_cast<int>(active_.size())) return;
    run_lane(active_[static_cast<std::size_t>(idx)], batch_bound_);
  }
}

void Engine::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    work_lanes();
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++done_workers_;
    }
    cv_done_.notify_one();
  }
}

void Engine::merge_outboxes() {
  const int nshards = static_cast<int>(lanes_.size()) - 1;
  for (int i = 0; i < nshards; ++i) {
    Lane& lane = lanes_[static_cast<std::size_t>(i)];
    if (lane.outbox.empty()) continue;  // also skips the clock reads below
    std::int64_t t0 = 0;
    if (profiler_ != nullptr) t0 = prof::Profiler::now_ns();
    for (const auto& [target, ev] : lane.outbox)
      lanes_[static_cast<std::size_t>(target)].queue.push(ev);
    lane.outbox.clear();
    if (profiler_ != nullptr) profiler_->add_flush(i, prof::Profiler::now_ns() - t0);
  }
}

std::size_t Engine::pending() const {
  if (!sharded()) return queue_.size();
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.queue.size();
  return total;
}

const SchedulerStats& Engine::scheduler_stats() const {
  if (!sharded()) return queue_.stats();
  agg_stats_ = SchedulerStats{};
  for (const Lane& lane : lanes_) {
    const SchedulerStats& s = lane.queue.stats();
    agg_stats_.buckets += s.buckets;
    agg_stats_.calendar_events += s.calendar_events;
    agg_stats_.overflow_events += s.overflow_events;
    agg_stats_.peak_pending += s.peak_pending;
    agg_stats_.resizes += s.resizes;
    agg_stats_.overflow_promotions += s.overflow_promotions;
  }
  agg_stats_.bucket_width = lanes_[0].queue.stats().bucket_width;
  return agg_stats_;
}

void Engine::save_state(ckpt::Writer& w,
                        const std::function<std::uint32_t(EventHandler*)>& id_of) const {
  w.u8(sharded() ? 1 : 0);
  if (!sharded()) {
    w.i64(now_);
    w.u64(seq_);
    w.u64(processed_);
    queue_.save_state(w, id_of);
    return;
  }
  // Per-lane state only — nothing here depends on the thread count, so a
  // snapshot taken at threads=2 resumes bit-exactly at any thread count.
  // Saves happen at quiesce points, where every outbox is empty.
  for ([[maybe_unused]] const Lane& lane : lanes_) assert(lane.outbox.empty());
  w.i64(now_);
  w.u64(processed_);
  w.u32(static_cast<std::uint32_t>(lanes_.size()));
  for (const Lane& lane : lanes_) {
    w.u64(lane.counter);
    w.u64(lane.processed);
    w.i64(lane.last_time);
    lane.queue.save_state(w, id_of);
  }
}

void Engine::load_state(ckpt::Reader& r,
                        const std::function<EventHandler*(std::uint32_t)>& handler_of) {
  assert(pending() == 0 && processed_ == 0 && "load_state requires a fresh engine");
  const std::uint8_t mode = r.u8();
  if (mode != (sharded() ? 1 : 0))
    throw std::runtime_error(
        "snapshot: engine mode mismatch (snapshot and run must both be serial "
        "or both sharded with the same shard count)");
  if (mode == 0) {
    now_ = r.i64();
    seq_ = r.u64();
    processed_ = r.u64();
    if (now_ < 0 || processed_ > seq_)
      throw std::runtime_error("snapshot: inconsistent engine clock state");
    queue_.load_state(r, handler_of);
    return;
  }
  now_ = r.i64();
  processed_ = r.u64();
  const std::uint32_t nlanes = r.u32();
  if (nlanes != lanes_.size())
    throw std::runtime_error("snapshot: sharded engine lane count mismatch");
  std::uint64_t total = 0;
  for (Lane& lane : lanes_) {
    lane.counter = r.u64();
    lane.processed = r.u64();
    lane.last_time = r.i64();
    total += lane.processed;
    if (lane.last_time > now_)
      throw std::runtime_error("snapshot: inconsistent engine lane state");
    lane.queue.load_state(r, handler_of);
  }
  if (now_ < 0 || total != processed_)
    throw std::runtime_error("snapshot: inconsistent engine clock state");
}

}  // namespace dfly
