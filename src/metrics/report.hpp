// Report assembly: turns per-configuration RunMetrics into the tables that
// mirror the paper's figures (box plots as five-number rows, CDFs as quantile
// grids).
#pragma once

#include <string>
#include <vector>

#include "metrics/collector.hpp"
#include "util/table.hpp"

namespace dfly {

struct NamedMetrics {
  std::string config;  ///< Table I nomenclature, e.g. "cont-min"
  RunMetrics metrics;
};

/// Fig. 3 analogue: one row per configuration with the five-number summary of
/// per-rank communication time (ms).
Table comm_time_box_table(const std::string& title, const std::vector<NamedMetrics>& runs);

/// CDF grid: one row per configuration, columns = value at the given
/// cumulative fractions. Used for the hops / traffic / saturation CDF panels
/// of Figs. 4-6 and 8-10. `select` picks the sample vector from RunMetrics.
Table cdf_table(const std::string& title, const std::vector<NamedMetrics>& runs,
                const std::vector<double>& fractions,
                const std::vector<double>& (*select)(const RunMetrics&), int precision = 2);

/// Convenience selectors for cdf_table.
const std::vector<double>& select_avg_hops(const RunMetrics& m);
const std::vector<double>& select_local_traffic(const RunMetrics& m);
const std::vector<double>& select_global_traffic(const RunMetrics& m);
const std::vector<double>& select_local_saturation(const RunMetrics& m);
const std::vector<double>& select_global_saturation(const RunMetrics& m);

/// Summary row set: makespan, median, events, delivered bytes per config.
Table summary_table(const std::string& title, const std::vector<NamedMetrics>& runs);

}  // namespace dfly
