#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <tuple>
#include <type_traits>

#include "ckpt/snapshot_io.hpp"
#include "obs/json.hpp"

namespace dfly {

namespace {

// Serial layout in sharded mode; mirrors the engine's event-sequence packing.
constexpr int kSerialLaneShift = 48;

}  // namespace

ChunkPathTracer::ChunkPathTracer(TraceSink& sink, double sample_rate, const Engine* engine)
    : sink_(sink), rate_(sample_rate), engine_(engine) {
  if (!(sample_rate >= 0.0 && sample_rate <= 1.0))
    throw std::invalid_argument("chunk tracer: sample_rate must be in [0, 1]");
  if (engine_ && !engine_->sharded())
    throw std::invalid_argument("chunk tracer: engine given but not sharded");
  lanes_ = std::vector<Lane>(engine_ ? static_cast<std::size_t>(engine_->lanes()) : 1);
}

std::uint64_t ChunkPathTracer::on_chunk_injected(MsgId msg, NodeId src, NodeId dst, Bytes bytes,
                                                 SimTime now) {
  Lane& l = lane();
  ++l.seen;
  l.acc += rate_;
  if (l.acc < 1.0) return kNoTraceSerial;
  l.acc -= 1.0;
  ++l.sampled;
  ++l.live_delta;
  std::uint64_t serial = l.next++;
  if (engine_)
    serial |= static_cast<std::uint64_t>(lane_index()) << kSerialLaneShift;
  else
    sink_.on_chunk_sampled(serial, msg, src, dst, bytes, now);
  return serial;
}

void ChunkPathTracer::on_hop_enqueue(std::uint64_t serial, MsgId msg, NodeId src, NodeId dst,
                                     Bytes bytes, RouterId router, int port, PortKind kind,
                                     int vc, Bytes queue_depth, SimTime now) {
  HopEvent hop;
  hop.chunk = serial;
  hop.msg = msg;
  hop.src = src;
  hop.dst = dst;
  hop.router = router;
  hop.port = static_cast<std::int16_t>(port);
  hop.vc = static_cast<std::int8_t>(vc);
  hop.kind = kind;
  hop.bytes = bytes;
  hop.queue_depth = queue_depth;
  hop.enqueue_time = now;
  lane().pending[serial] = hop;
}

void ChunkPathTracer::on_transmit_start(std::uint64_t serial, SimTime start, SimTime end) {
  Lane& l = lane();
  const auto it = l.pending.find(serial);
  if (it == l.pending.end()) return;
  HopEvent hop = it->second;
  l.pending.erase(it);
  hop.start_time = start;
  hop.end_time = end;
  ++l.hops;
  if (engine_)
    l.buffered.push_back(hop);
  else
    sink_.on_hop(hop);
}

void ChunkPathTracer::close(std::uint64_t serial, SimTime now, bool delivered) {
  Lane& l = lane();
  // Discard a half-recorded hop (enqueued, never transmitted): the chunk died
  // in a queue. Drops from global context (fault purges) may close a chunk
  // whose pending hop lives on another lane — safe to reach into, every
  // shard is parked then.
  if (l.pending.erase(serial) == 0 && engine_ && lane_index() == engine_->global_lane()) {
    for (Lane& other : lanes_) other.pending.erase(serial);
  }
  --l.live_delta;
  if (!engine_) sink_.on_chunk_closed(serial, now, delivered);
}

void ChunkPathTracer::on_delivered(std::uint64_t serial, SimTime now) { close(serial, now, true); }

void ChunkPathTracer::on_dropped(std::uint64_t serial, SimTime now) { close(serial, now, false); }

void ChunkPathTracer::flush() {
  std::vector<HopEvent> all;
  for (Lane& l : lanes_) {
    all.insert(all.end(), l.buffered.begin(), l.buffered.end());
    l.buffered.clear();
  }
  std::sort(all.begin(), all.end(), [](const HopEvent& a, const HopEvent& b) {
    return std::tie(a.enqueue_time, a.start_time, a.chunk, a.router, a.port) <
           std::tie(b.enqueue_time, b.start_time, b.chunk, b.router, b.port);
  });
  for (const HopEvent& hop : all) sink_.on_hop(hop);
}

std::uint64_t ChunkPathTracer::chunks_seen() const {
  std::uint64_t n = 0;
  for (const Lane& l : lanes_) n += l.seen;
  return n;
}

std::uint64_t ChunkPathTracer::chunks_sampled() const {
  std::uint64_t n = 0;
  for (const Lane& l : lanes_) n += l.sampled;
  return n;
}

std::uint64_t ChunkPathTracer::hops_recorded() const {
  std::uint64_t n = 0;
  for (const Lane& l : lanes_) n += l.hops;
  return n;
}

std::size_t ChunkPathTracer::live_chunks() const {
  std::int64_t n = 0;
  for (const Lane& l : lanes_) n += l.live_delta;
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

namespace {

void save_hop(ckpt::Writer& w, const HopEvent& hop) {
  w.u64(hop.chunk);
  w.u32(hop.msg);
  w.i32(hop.src);
  w.i32(hop.dst);
  w.i32(hop.router);
  w.i32(hop.port);
  w.i32(hop.vc);
  w.u8(static_cast<std::uint8_t>(hop.kind));
  w.i64(hop.bytes);
  w.i64(hop.queue_depth);
  w.i64(hop.enqueue_time);
  w.i64(hop.start_time);
  w.i64(hop.end_time);
}

/// Serialized size of one HopEvent, for Reader::count plausibility caps.
constexpr std::size_t kHopBytes = 8 + 4 + 4 * 5 + 1 + 8 * 5;
// Pin the frame arithmetic to the field layout save_hop/load_hop actually
// write: u64 chunk + u32 msg + i32 x {src,dst,router,port,vc} + u8 kind +
// i64 x {bytes,queue_depth,enqueue,start,end}. If a field is added the sum
// breaks here instead of as a corrupt-looking snapshot at resume time.
static_assert(std::is_trivially_copyable_v<HopEvent>,
              "HopEvent is snapshot-framed and must stay trivially copyable");
static_assert(kHopBytes == sizeof(std::uint64_t) + sizeof(std::uint32_t) +
                               5 * sizeof(std::int32_t) + sizeof(std::uint8_t) +
                               5 * sizeof(std::int64_t),
              "kHopBytes must match the save_hop field framing");

HopEvent load_hop(ckpt::Reader& r) {
  HopEvent hop;
  hop.chunk = r.u64();
  hop.msg = r.u32();
  hop.src = r.i32();
  hop.dst = r.i32();
  hop.router = r.i32();
  hop.port = static_cast<std::int16_t>(r.i32());
  hop.vc = static_cast<std::int8_t>(r.i32());
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(PortKind::Global))
    throw std::runtime_error("snapshot: invalid port kind in hop record");
  hop.kind = static_cast<PortKind>(kind);
  hop.bytes = r.i64();
  hop.queue_depth = r.i64();
  hop.enqueue_time = r.i64();
  hop.start_time = r.i64();
  hop.end_time = r.i64();
  return hop;
}

}  // namespace

void ChunkPathTracer::save_state(ckpt::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(lanes_.size()));
  for (const Lane& l : lanes_) {
    w.f64(l.acc);
    w.u64(l.next);
    w.u64(l.seen);
    w.u64(l.sampled);
    w.u64(l.hops);
    w.i64(l.live_delta);
    // Sort by serial so the snapshot bytes don't depend on hash-map order.
    std::vector<std::uint64_t> serials;
    serials.reserve(l.pending.size());
    // dfly-lint: allow(unordered-iter) reason=collects keys only; sorted below before any byte is written
    for (const auto& [serial, hop] : l.pending) serials.push_back(serial);
    std::sort(serials.begin(), serials.end());
    w.size(serials.size());
    for (const std::uint64_t serial : serials) save_hop(w, l.pending.at(serial));
    w.size(l.buffered.size());
    for (const HopEvent& hop : l.buffered) save_hop(w, hop);
  }
}

void ChunkPathTracer::load_state(ckpt::Reader& r) {
  const std::uint32_t nlanes = r.u32();
  if (nlanes != lanes_.size())
    throw std::runtime_error("snapshot: tracer lane count mismatch (serial vs sharded)");
  for (Lane& l : lanes_) {
    l.acc = r.f64();
    l.next = r.u64();
    l.seen = r.u64();
    l.sampled = r.u64();
    l.hops = r.u64();
    l.live_delta = r.i64();
    if (!(l.acc >= 0.0 && l.acc < 1.0))
      throw std::runtime_error("snapshot: tracer sampling accumulator out of range");
    const std::size_t npending = r.count(kHopBytes);
    l.pending.clear();
    l.pending.reserve(npending);
    for (std::size_t i = 0; i < npending; ++i) {
      HopEvent hop = load_hop(r);
      if (!l.pending.emplace(hop.chunk, hop).second)
        throw std::runtime_error("snapshot: duplicate pending hop serial");
    }
    const std::size_t nbuffered = r.count(kHopBytes);
    l.buffered.clear();
    l.buffered.reserve(nbuffered);
    for (std::size_t i = 0; i < nbuffered; ++i) l.buffered.push_back(load_hop(r));
  }
}

void ChromeTraceWriter::save_state(ckpt::Writer& w) const {
  w.size(hops_.size());
  for (const HopEvent& hop : hops_) save_hop(w, hop);
}

void ChromeTraceWriter::load_state(ckpt::Reader& r) {
  const std::size_t n = r.count(kHopBytes);
  hops_.clear();
  hops_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) hops_.push_back(load_hop(r));
}

namespace {

double to_us(SimTime t) { return static_cast<double>(t) / 1000.0; }

}  // namespace

void ChromeTraceWriter::render(std::ostream& os) const {
  obs::JsonWriter w(os, 1);
  w.begin_object();
  w.field("displayTimeUnit", "ns");
  w.key("traceEvents");
  w.begin_array();

  // Track metadata: one "process" per router, one "thread" per output port,
  // named so Perfetto shows "router 12 / port 3 (local-row)".
  std::map<RouterId, std::map<int, PortKind>> tracks;
  for (const HopEvent& hop : hops_) tracks[hop.router][hop.port] = hop.kind;
  for (const auto& [router, ports] : tracks) {
    w.begin_object();
    w.field("ph", "M").field("name", "process_name").field("pid", std::int64_t{router});
    w.key("args").begin_object();
    w.field("name", "router " + std::to_string(router));
    w.end_object();
    w.end_object();
    for (const auto& [port, kind] : ports) {
      w.begin_object();
      w.field("ph", "M").field("name", "thread_name").field("pid", std::int64_t{router});
      w.field("tid", std::int64_t{port});
      w.key("args").begin_object();
      w.field("name", "port " + std::to_string(port) + " (" + to_string(kind) + ")");
      w.end_object();
      w.end_object();
    }
  }

  for (const HopEvent& hop : hops_) {
    w.begin_object();
    w.field("ph", "X");
    w.field("name", "m" + std::to_string(hop.msg) + "/c" + std::to_string(hop.chunk));
    w.field("cat", to_string(hop.kind));
    w.field("pid", std::int64_t{hop.router});
    w.field("tid", std::int64_t{hop.port});
    w.field("ts", to_us(hop.start_time));
    w.field("dur", to_us(hop.end_time - hop.start_time));
    w.key("args").begin_object();
    w.field("msg", std::int64_t{hop.msg});
    w.field("chunk", static_cast<std::int64_t>(hop.chunk));
    w.field("src_node", std::int64_t{hop.src});
    w.field("dst_node", std::int64_t{hop.dst});
    w.field("vc", std::int64_t{hop.vc});
    w.field("bytes", hop.bytes);
    w.field("queue_depth_bytes", hop.queue_depth);
    w.field("queue_wait_ns", hop.start_time - hop.enqueue_time);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

bool ChromeTraceWriter::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  render(f);
  return static_cast<bool>(f);
}

}  // namespace dfly
