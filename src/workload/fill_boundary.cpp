#include <array>

#include "workload/exchange.hpp"
#include "workload/workload.hpp"

namespace dfly {
namespace {

int grid_rank(int x, int y, int z, const FbParams& p) {
  return (z * p.ny + y) * p.nx + x;
}

int wrap(int v, int n) { return (v % n + n) % n; }

}  // namespace

// Fill boundary (BoxLib): 3-D block decomposition with periodic boundaries.
// Each iteration performs a 6-neighbor halo exchange whose aggregate per-rank
// load fluctuates strongly between min_step_load and max_step_load (Fig.
// 2(e)), followed by a light many-to-many stage across the rank set (the
// cross-set communication visible in Fig. 2(b)).
Workload make_fill_boundary(const FbParams& params) {
  Trace trace(params.ranks());
  TagAllocator tags;

  for (int iter = 0; iter < params.iterations; ++iter) {
    // Halo exchange: per rank pair, the per-message size is a deterministic
    // draw so both endpoints agree; each rank sends 6 face messages whose sum
    // fluctuates within the documented band.
    const Bytes lo = params.min_step_load / 6;
    const Bytes hi = params.max_step_load / 6;
    for (int z = 0; z < params.nz; ++z) {
      for (int y = 0; y < params.ny; ++y) {
        for (int x = 0; x < params.nx; ++x) {
          const int r = grid_rank(x, y, z, params);
          const std::array<int, 3> dims = {params.nx, params.ny, params.nz};
          const std::array<int, 3> coord = {x, y, z};
          for (int dim = 0; dim < 3; ++dim) {
            if (dims[dim] < 2) continue;
            std::array<int, 3> nb = coord;
            nb[dim] = wrap(coord[dim] + 1, dims[dim]);
            const int peer = grid_rank(nb[0], nb[1], nb[2], params);
            if (peer == r) continue;
            const std::uint64_t key =
                (static_cast<std::uint64_t>(iter) << 40) ^
                (static_cast<std::uint64_t>(std::min(r, peer)) << 20) ^
                static_cast<std::uint64_t>(std::max(r, peer)) ^
                (static_cast<std::uint64_t>(dim) << 56);
            const Bytes bytes = scaled(hashed_size(params.seed, key, lo, hi), params.scale);
            emit_exchange(trace, tags, r, peer, bytes);
          }
        }
      }
    }
    emit_phase_end(trace);

    // Many-to-many: each rank exchanges small messages with a deterministic
    // pseudo-random partner set (shifted strides keep the pattern symmetric).
    for (int p = 0; p < params.a2a_partners; ++p) {
      SplitMix64 sm(params.seed ^ (static_cast<std::uint64_t>(iter) << 16) ^ (p + 1));
      const int stride = 1 + static_cast<int>(sm.next() % (params.ranks() - 1));
      const Bytes bytes = scaled(params.a2a_bytes, params.scale);
      // Pair r with r+stride (mod n); emit once per unordered pair.
      for (int r = 0; r < params.ranks(); ++r) {
        const int peer = (r + stride) % params.ranks();
        if (peer == r) continue;
        if (peer < r && (peer + stride) % params.ranks() == r) continue;  // already emitted
        emit_exchange(trace, tags, r, peer, bytes);
      }
      emit_phase_end(trace);
    }
  }
  return Workload{"FB", std::move(trace)};
}

}  // namespace dfly
