// Entry points for dfly_lint: scan a source tree (or in-memory fixtures),
// evaluate the determinism ruleset, and render the machine-readable report.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "lint/rules.hpp"

namespace dfly::lint {

/// An in-memory source file, for tests and fixtures.
struct MemSource {
  std::string rel;      ///< path relative to the scan root ("sim/engine.cpp")
  std::string content;  ///< full file text
};

/// Lexes and lints the given sources. Pure — the unit under test.
LintResult lint_sources(const std::vector<MemSource>& sources);

/// Recursively scans `root` for .hpp/.h/.cpp/.cc files (sorted, so results
/// are stable across directory-entry order) and lints them. Throws
/// std::runtime_error if `root` is not a readable directory.
LintResult lint_tree(const std::string& root);

/// Renders `lint.json`: schema_version, per-rule counts, then the sorted
/// violation and exemption records. Stable byte-for-byte for a given result.
void write_lint_json(const LintResult& result, const std::string& root, std::ostream& os);

}  // namespace dfly::lint
