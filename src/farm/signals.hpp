// Cooperative-shutdown plumbing shared by the farm supervisor, its worker
// processes and the thread-pool run_matrix.
//
// A SIGINT/SIGTERM handler may only set a lock-free atomic flag; everything
// that takes time — flushing a final checkpoint, writing the .ckpt marker,
// reaping children — happens on the normal control path, which polls the flag
// at checkpoint slice boundaries (CheckpointOptions::stop_flag) so an
// interrupted sweep always resumes instead of recomputing.
#pragma once

#include <atomic>

namespace dfly::farm {

/// The process-wide shutdown flag. Wire it into
/// ExperimentOptions::checkpoint.stop_flag to make runs checkpoint-and-stop
/// on the next slice after a signal.
const std::atomic<bool>* shutdown_flag();

bool shutdown_requested();

/// What the signal handler does; callable directly from tests.
void request_shutdown();

/// Clears the flag (a worker child inherits the parent's memory image and
/// must start with a clean flag; tests reset between cases).
void reset_shutdown_flag();

/// Installs SIGINT/SIGTERM handlers that set the shutdown flag; the previous
/// dispositions are restored on destruction. Handlers are process-global —
/// keep at most one alive at a time.
class ScopedShutdownHandlers {
 public:
  ScopedShutdownHandlers();
  ~ScopedShutdownHandlers();
  ScopedShutdownHandlers(const ScopedShutdownHandlers&) = delete;
  ScopedShutdownHandlers& operator=(const ScopedShutdownHandlers&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace dfly::farm
