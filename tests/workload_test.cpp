// Tests for the application workload generators and characterization —
// structural properties the paper documents for each miniapp (Fig. 2).
#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "workload/characterize.hpp"
#include "workload/synthetic.hpp"
#include "workload/workload.hpp"

namespace dfly {
namespace {

CrParams small_cr() {
  CrParams p;
  p.ranks = 64;
  p.iterations = 1;
  return p;
}

FbParams small_fb() {
  FbParams p;
  p.nx = p.ny = p.nz = 4;
  p.iterations = 1;
  return p;
}

AmgParams small_amg() {
  AmgParams p;
  p.nx = p.ny = p.nz = 4;
  p.vcycles = 2;
  p.levels = 2;
  return p;
}

TEST(CrystalRouter, TraceIsBalanced) {
  EXPECT_NO_THROW(make_crystal_router(small_cr()).trace.validate());
  EXPECT_NO_THROW(make_crystal_router(CrParams{}).trace.validate());  // full 1000 ranks
}

TEST(CrystalRouter, ConstantMessageSize) {
  const Workload w = make_crystal_router(small_cr());
  const CommMatrix m(w.trace);
  // "relatively constant message load at around 190 KB"
  EXPECT_DOUBLE_EQ(m.average_message_bytes(), 190.0 * units::kKB);
}

TEST(CrystalRouter, HypercubePlusNeighborhoodPattern) {
  const CrParams p = small_cr();
  const Workload w = make_crystal_router(p);
  const CommMatrix m(w.trace);
  // Rank 0 talks to hypercube partners 1,2,4,8,16,32 and neighbors 1,2.
  for (int bit = 0; bit < 6; ++bit) EXPECT_GT(m.bytes(0, 1 << bit), 0);
  EXPECT_GT(m.bytes(5, 6), 0);  // +1 neighbor
  EXPECT_GT(m.bytes(5, 7), 0);  // +2 neighbor
  EXPECT_EQ(m.bytes(0, 63), 0); // not a partner at any stage
}

TEST(CrystalRouter, ScaleMultipliesLoad) {
  CrParams p = small_cr();
  const Bytes base = make_crystal_router(p).trace.total_send_bytes();
  p.scale = 0.5;
  const Bytes half = make_crystal_router(p).trace.total_send_bytes();
  EXPECT_EQ(half, base / 2);
}

TEST(FillBoundary, TraceIsBalanced) {
  EXPECT_NO_THROW(make_fill_boundary(small_fb()).trace.validate());
  EXPECT_NO_THROW(make_fill_boundary(FbParams{}).trace.validate());  // full 1000 ranks
}

TEST(FillBoundary, MessageSizesFluctuateWithinBand) {
  const FbParams p = small_fb();
  const Workload w = make_fill_boundary(p);
  Bytes lo = std::numeric_limits<Bytes>::max(), hi = 0;
  for (int r = 0; r < w.trace.ranks(); ++r) {
    for (const TraceOp& op : w.trace.rank(r)) {
      if (op.kind != OpKind::Isend || op.bytes == p.a2a_bytes) continue;
      lo = std::min(lo, op.bytes);
      hi = std::max(hi, op.bytes);
    }
  }
  EXPECT_GE(lo, p.min_step_load / 6);
  EXPECT_LE(hi, p.max_step_load / 6);
  EXPECT_GT(hi, 2 * lo) << "halo sizes should fluctuate strongly (Fig. 2e)";
}

TEST(FillBoundary, SixNeighborHaloPlusManyToMany) {
  const FbParams p = small_fb();
  const CommMatrix m(make_fill_boundary(p).trace);
  // Interior rank (1,1,1) = rank 1 + 4 + 16 = 21 talks to all 6 face
  // neighbors.
  const int r = 21;
  for (const int peer : {20, 22, 17, 25, 5, 37}) EXPECT_GT(m.bytes(r, peer), 0);
  // And the many-to-many stage reaches beyond the halo.
  EXPECT_GT(m.pairs_used(), 6u * m.ranks());
}

TEST(FillBoundary, DeterministicForSameSeed) {
  const FbParams p = small_fb();
  const Workload a = make_fill_boundary(p);
  const Workload b = make_fill_boundary(p);
  EXPECT_EQ(a.trace.total_send_bytes(), b.trace.total_send_bytes());
}

TEST(Amg, TraceIsBalanced) {
  EXPECT_NO_THROW(make_amg(small_amg()).trace.validate());
  EXPECT_NO_THROW(make_amg(AmgParams{}).trace.validate());  // full 1728 ranks
}

TEST(Amg, RegionalSixNeighborPattern) {
  const CommMatrix m(make_amg(AmgParams{}).trace);
  // Interior rank of the 12^3 grid: (1,1,1) -> 1 + 12 + 144 = 157 exchanges
  // with +-x, +-y, +-z neighbors at the finest level.
  const int r = 157;
  for (const int peer : {156, 158, 145, 169, 13, 301}) EXPECT_GT(m.bytes(r, peer), 0);
  // Corner rank 0 has only 3 finest-level neighbors (non-periodic domain) but
  // also coarse-level partners at stride 2,4,...; its row stays regional.
  EXPECT_GT(m.bytes(0, 1), 0);
  EXPECT_EQ(m.bytes(0, 11), 0);
}

TEST(Amg, MessageSizesDecreasePerLevel) {
  const AmgParams p;
  const Workload w = make_amg(AmgParams{});
  // Finest level: peak size; coarser levels: halved each time.
  std::set<Bytes> sizes;
  for (const TraceOp& op : w.trace.rank(0))
    if (op.kind == OpKind::Isend) sizes.insert(op.bytes);
  ASSERT_GE(sizes.size(), 2u);
  EXPECT_EQ(*sizes.rbegin(), p.peak_message_bytes);
  // Every size is the peak halved (with truncation) some number of times.
  for (const Bytes s : sizes) {
    bool matches = false;
    for (int level = 0; level < p.levels; ++level)
      if (s == (p.peak_message_bytes >> level)) matches = true;
    EXPECT_TRUE(matches) << "unexpected message size " << s;
  }
}

TEST(Amg, SurgesAppearAsPhases) {
  const AmgParams p = small_amg();
  const PhaseLoad load = phase_load(make_amg(p).trace);
  // Every vcycle contributes `levels` phases (plus barrier separators); the
  // load profile must be nonzero in multiple separated phases.
  int active = 0;
  for (const double v : load.avg_bytes_per_rank)
    if (v > 0) ++active;
  EXPECT_GE(active, p.vcycles);
}

TEST(Amg, TotalLoadIsSmallComparedToCr) {
  // Paper: "the message load is relatively small compared with that of the
  // other two applications."
  const Bytes amg = make_amg(AmgParams{}).trace.total_send_bytes() / 1728;
  const Bytes cr = make_crystal_router(CrParams{}).trace.total_send_bytes() / 1000;
  EXPECT_LT(amg * 5, cr);
}

TEST(Synthetic, RingTraceValidates) {
  EXPECT_NO_THROW(make_ring_trace(10, 1000, 2).validate());
  EXPECT_THROW(make_ring_trace(1, 1000), std::invalid_argument);
}

TEST(Synthetic, RandomPairsAreDisjoint) {
  Rng rng(1);
  const Trace t = make_random_pairs_trace(20, 10, 500, rng);
  EXPECT_NO_THROW(t.validate());
  const CommMatrix m(t);
  for (int r = 0; r < 20; ++r) EXPECT_EQ(m.row(r).size(), 1u);
  Rng rng2(2);
  EXPECT_THROW(make_random_pairs_trace(10, 6, 500, rng2), std::invalid_argument);
}

TEST(Synthetic, PermutationHasNoFixedPointsAndValidates) {
  Rng rng(3);
  const Trace t = make_permutation_trace(50, 1000, rng);
  EXPECT_NO_THROW(t.validate());
  const CommMatrix m(t);
  for (int r = 0; r < 50; ++r) {
    EXPECT_EQ(m.row(r).size(), 1u);
    EXPECT_EQ(m.bytes(r, r), 0);
  }
}

TEST(Synthetic, AllToAllIsDense) {
  const Trace t = make_all_to_all_trace(8, 100);
  EXPECT_NO_THROW(t.validate());
  const CommMatrix m(t);
  EXPECT_EQ(m.pairs_used(), 8u * 7u);
  EXPECT_EQ(m.total_bytes(), 8 * 7 * 100);
}

TEST(Characterize, CommMatrixBasics) {
  Trace t(3);
  t.rank(0).push_back(TraceOp::isend(1, 100, 0));
  t.rank(1).push_back(TraceOp::irecv(0, 100, 0));
  t.rank(0).push_back(TraceOp::isend(2, 50, 0));
  t.rank(2).push_back(TraceOp::irecv(0, 50, 0));
  const CommMatrix m(t);
  EXPECT_EQ(m.total_bytes(), 150);
  EXPECT_EQ(m.message_count(), 2u);
  EXPECT_EQ(m.bytes(0, 1), 100);
  EXPECT_EQ(m.bytes(1, 0), 0);
  EXPECT_DOUBLE_EQ(m.average_message_bytes(), 75.0);
  EXPECT_DOUBLE_EQ(m.locality_fraction(1), 100.0 / 150.0);
  EXPECT_DOUBLE_EQ(m.locality_fraction(2), 1.0);
}

TEST(Characterize, BlockAggregatePreservesTotal) {
  const Workload w = make_crystal_router(small_cr());
  const CommMatrix m(w.trace);
  const auto grid = m.block_aggregate(8);
  Bytes total = 0;
  for (const auto& row : grid)
    for (const Bytes b : row) total += b;
  EXPECT_EQ(total, m.total_bytes());
}

TEST(Characterize, PhaseLoadSumsToTotal) {
  const Workload w = make_crystal_router(small_cr());
  const PhaseLoad load = phase_load(w.trace);
  double total = 0;
  for (const double v : load.avg_bytes_per_rank) total += v;
  EXPECT_NEAR(total * w.trace.ranks(), static_cast<double>(w.trace.total_send_bytes()), 1.0);
}

TEST(Characterize, PerRankSendBytes) {
  const Workload w = make_crystal_router(small_cr());
  const auto totals = per_rank_send_bytes(w.trace);
  Bytes sum = 0;
  for (const Bytes b : totals) sum += b;
  EXPECT_EQ(sum, w.trace.total_send_bytes());
}

// Regression for the dfly_lint unordered-iteration audit (DESIGN.md par.12):
// CommMatrix stores rows as unordered_map and its aggregations iterate them.
// That is only safe because every consumer is a commutative integer
// reduction. Pin it: two traces with identical traffic but opposite per-rank
// op order populate the hash maps in different insertion orders, and every
// derived statistic must still match exactly.
TEST(Characterize, CommMatrixAggregationIsIterationOrderInsensitive) {
  constexpr int n = 16;
  Trace fwd(n), rev(n);
  for (int r = 0; r < n; ++r) {
    for (int d = 0; d < n; ++d)
      if (d != r) fwd.rank(r).push_back(TraceOp::send(d, 100 + 7 * d, 0));
    for (int d = n - 1; d >= 0; --d)
      if (d != r) rev.rank(r).push_back(TraceOp::send(d, 100 + 7 * d, 0));
  }
  const CommMatrix a(fwd), b(rev);
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  EXPECT_EQ(a.pairs_used(), b.pairs_used());
  for (const int window : {0, 1, 3, n}) {
    EXPECT_EQ(a.locality_fraction(window), b.locality_fraction(window)) << window;
  }
  EXPECT_EQ(a.block_aggregate(4), b.block_aggregate(4));
  for (int r = 0; r < n; ++r)
    for (int d = 0; d < n; ++d) EXPECT_EQ(a.bytes(r, d), b.bytes(r, d)) << r << "->" << d;
}

}  // namespace
}  // namespace dfly
