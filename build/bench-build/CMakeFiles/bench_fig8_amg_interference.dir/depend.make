# Empty dependencies file for bench_fig8_amg_interference.
# This may be replaced when dependencies are built.
