// Per-router state: output ports with chunk queues, per-VC credit counters
// for the downstream input buffer, and the per-channel metrics the study
// reports (traffic bytes, saturation time).
//
// Routers are passive state; the Network event handler drives them. A chunk
// enqueued on an output port physically occupies this router's input buffer —
// that space was reserved (as credits) by the upstream sender and is returned
// when the chunk departs.
#pragma once

#include <deque>
#include <vector>

#include "net/chunk.hpp"
#include "net/params.hpp"
#include "topo/dragonfly.hpp"
#include "util/units.hpp"

namespace dfly {

struct OutPort {
  PortKind kind = PortKind::Terminal;
  SimTime busy_until = 0;
  std::deque<ChunkId> queue;  ///< chunks awaiting this channel, FIFO arrival order
  Bytes queued_bytes = 0;
  /// Free space in the downstream input buffer, per VC. Empty for terminal
  /// (ejection) ports: the node sink always accepts.
  std::vector<Bytes> credits;
  /// Last VC granted the channel (Arbitration::RoundRobinVc state).
  std::int8_t last_vc_served = -1;
  /// Chunk currently on the wire (kNoChunk when idle) and the VC whose
  /// downstream credits it reserved — needed to abort a transmission when the
  /// link fails mid-flight.
  ChunkId tx_chunk = kNoChunk;
  std::int8_t tx_vc = 0;

  // --- metrics ---
  Bytes traffic = 0;             ///< bytes transmitted on this channel
  SimTime blocked_since = -1;    ///< start of the current buffers-exhausted interval
  SimTime saturated_time = 0;    ///< paper's "link saturation time"

  bool is_terminal() const { return kind == PortKind::Terminal; }

  void begin_blocked(SimTime now) {
    if (blocked_since < 0) blocked_since = now;
  }
  void end_blocked(SimTime now) {
    if (blocked_since >= 0) {
      saturated_time += now - blocked_since;
      blocked_since = -1;
    }
  }
};

class Router {
 public:
  Router(const DragonflyTopology& topo, const NetworkParams& params, RouterId id, int num_vcs);

  OutPort& port(int p) { return ports_[p]; }
  const OutPort& port(int p) const { return ports_[p]; }
  int num_ports() const { return static_cast<int>(ports_.size()); }

 private:
  std::vector<OutPort> ports_;
};

}  // namespace dfly
