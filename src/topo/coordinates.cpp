#include "topo/coordinates.hpp"

#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace dfly {

TopoParams TopoParams::theta() { return TopoParams{}; }

TopoParams TopoParams::tiny() {
  TopoParams p;
  p.groups = 3;
  p.rows = 2;
  p.cols = 4;
  p.nodes_per_router = 2;
  p.global_ports_per_router = 2;
  p.chassis_per_cabinet = 1;
  return p;
}

void TopoParams::validate() const {
  auto fail = [](const std::string& msg) { throw std::invalid_argument("TopoParams: " + msg); };
  if (groups < 2) fail("need at least 2 groups");
  if (rows < 1 || cols < 2) fail("need rows >= 1 and cols >= 2");
  if (nodes_per_router < 1) fail("need at least 1 node per router");
  if (global_ports_per_router < 1) fail("need at least 1 global port per router");
  if (chassis_per_cabinet < 1) fail("need at least 1 chassis per cabinet");
  // The deterministic global arrangement distributes each group's global
  // ports round-robin over its (groups-1) peers; requiring divisibility makes
  // every group pair get the same number of links, which is also what keeps
  // the pairwise port matching symmetric.
  if (global_ports_per_group() % (groups - 1) != 0)
    fail("global ports per group (" + std::to_string(global_ports_per_group()) +
         ") must divide evenly among " + std::to_string(groups - 1) + " peer groups");
  // Identifier spaces are 32-bit ints; the widest is the directed channel id
  // (router * ports_per_router + port). Check it in 64-bit arithmetic — the
  // int products total_routers() and total_channels() would themselves
  // overflow (UB) before any downstream bound could catch the problem.
  const std::int64_t routers64 = std::int64_t{groups} * rows * cols;
  const std::int64_t ports64 =
      std::int64_t{nodes_per_router} + (cols - 1) + (rows - 1) + global_ports_per_router;
  constexpr std::int64_t kIdMax = std::numeric_limits<std::int32_t>::max();
  if (routers64 * ports64 > kIdMax)
    fail("channel id space overflows 32-bit ids: " + std::to_string(routers64) + " routers x " +
         std::to_string(ports64) + " ports per router exceeds " + std::to_string(kIdMax));
}

std::string TopoParams::describe() const {
  std::ostringstream os;
  os << groups << " groups x (" << rows << "x" << cols << ") routers x " << nodes_per_router
     << " nodes = " << total_nodes() << " nodes, " << global_ports_per_router
     << " global ports/router";
  return os.str();
}

}  // namespace dfly
