// The paper's experiment harness: a configuration is a (placement policy,
// routing mechanism) pair (Table I); an experiment runs one application
// workload alone — or with a background job — on the Theta-like system and
// yields RunMetrics.
#pragma once

#include <atomic>
#include <optional>
#include <string>
#include <vector>

#include "farm/options.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "metrics/collector.hpp"
#include "net/params.hpp"
#include "obs/telemetry.hpp"
#include "prof/profiler.hpp"
#include "replay/replay.hpp"
#include "place/placement.hpp"
#include "routing/algorithm.hpp"
#include "topo/dragonfly.hpp"
#include "workload/background.hpp"
#include "workload/workload.hpp"

namespace dfly {

struct ExperimentConfig {
  PlacementKind placement = PlacementKind::Contiguous;
  RoutingKind routing = RoutingKind::Minimal;

  /// Table I nomenclature: "cont-min", "rand-adp", ...
  std::string name() const {
    return std::string(to_string(placement)) + "-" + to_string(routing);
  }
};

/// The full 5 x 2 configuration matrix of Table I, in the paper's order
/// (all placements with minimal routing, then all with adaptive).
std::vector<ExperimentConfig> table1_configs();

/// The four extreme configurations used by the sensitivity study (§IV-B).
std::vector<ExperimentConfig> extreme_configs();

/// Periodic checkpointing and resume ([checkpoint] section of config files).
/// With interval > 0 and a path set, run_experiment snapshots the complete
/// simulation state every `interval` ns of simulated time; with resume set it
/// restores from `path` (if the file exists) instead of starting from t=0,
/// and the resumed run is bit-identical to the uninterrupted one.
struct CheckpointOptions {
  SimTime interval = 0;  ///< ns between snapshots; 0 disables checkpointing
  std::string path;      ///< snapshot file (run_matrix: a directory)
  bool resume = false;   ///< restore from `path` when it exists
  /// Test/kill-emulation hook: stop the run right after the first snapshot
  /// taken at or past this time (0 = never). The result then carries
  /// stopped_at_checkpoint instead of tripping the deadlock check.
  SimTime stop_after = 0;
  /// Cooperative graceful-shutdown hook (src/farm/signals.hpp): polled at
  /// every checkpoint slice boundary. When the pointee becomes true the run
  /// flushes one final snapshot and returns with stopped_at_checkpoint — a
  /// SIGINT/SIGTERMed sweep always resumes instead of recomputing. Runtime
  /// wiring only; not a config key and never serialized.
  const std::atomic<bool>* stop_flag = nullptr;

  bool active() const { return interval > 0 && !path.empty(); }
};

struct ExperimentOptions {
  TopoParams topo = TopoParams::theta();
  NetworkParams net = NetworkParams::theta();
  std::uint64_t seed = 42;
  double msg_scale = 1.0;  ///< multiplies every trace message size
  ReplayOptions replay;    ///< eager/rendezvous protocol knobs
  std::optional<BackgroundSpec> background;
  std::uint64_t max_events = 0;  ///< 0 = unlimited; watchdog for tests
  /// [engine] threads: 0 (default) runs the classic single-queue serial
  /// engine; >= 1 partitions the simulation into per-dragonfly-group shards
  /// under conservative (global-link-latency lookahead) synchronization,
  /// with `threads` worker threads executing the shards. threads=1 is the
  /// serial-sharded oracle; any threads >= 1 produce byte-identical
  /// artifacts (metrics.json / counters.jsonl / heatmap.csv) for a given
  /// configuration. See DESIGN.md §10.
  int threads = 0;
  /// Timed link faults fired mid-run. Non-empty schedules make the
  /// experiment copy the topology (runtime faults mutate link state), so a
  /// shared topology is never touched.
  FaultSchedule faults;
  HealthOptions health;     ///< progress/conservation monitor settings
  TelemetryOptions telemetry;  ///< flight-recorder tracing + run artifacts
  CheckpointOptions checkpoint;  ///< periodic snapshots + resume (src/ckpt/)
  FarmOptions farm;  ///< process-isolated sweep farm policy (src/farm/)
  /// [prof] wall-clock self-profiling (src/prof/, DESIGN.md §11): subsystem
  /// attribution + lane phases into prof.json, periodic status.json
  /// heartbeats. Never perturbs the simulation or its other artifacts.
  prof::ProfOptions prof;
};

struct ExperimentResult {
  std::string config;
  RunMetrics metrics;
  Bytes background_bytes = 0;
  bool hit_event_limit = false;
  // --- fault / health outcome ---
  Bytes bytes_dropped = 0;        ///< dropped on failed links (then retransmitted)
  Bytes bytes_retransmitted = 0;  ///< re-injected by NIC retransmit timers
  int faults_fired = 0;           ///< fault events that changed link state
  bool stalled = false;           ///< HealthMonitor stopped a no-progress run
  bool conservation_ok = true;    ///< chunk-conservation audit at end of run
  /// Structured diagnostic dump; non-empty when the run stalled, tripped the
  /// event-limit watchdog, or failed the conservation audit.
  std::string health_report;
  // --- telemetry outcome (zeros/empty when telemetry is disabled) ---
  std::string telemetry_dir;  ///< artifact directory; empty on export failure
  std::uint64_t trace_chunks_seen = 0;
  std::uint64_t trace_chunks_sampled = 0;
  /// CheckpointOptions::stop_after halted the run mid-simulation; the metrics
  /// are partial and the run is meant to be resumed from the snapshot.
  bool stopped_at_checkpoint = false;
};

/// Runs `workload` under `config`. If `shared_topo` is non-null it must match
/// options.topo and is reused (topology construction is the only sizable
/// fixed cost); otherwise a topology is built locally.
ExperimentResult run_experiment(const Workload& workload, const ExperimentConfig& config,
                                const ExperimentOptions& options,
                                const DragonflyTopology* shared_topo = nullptr);

}  // namespace dfly
