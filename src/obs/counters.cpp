#include "obs/counters.hpp"

#include <ostream>
#include <stdexcept>

#include "ckpt/snapshot_io.hpp"
#include "obs/json.hpp"

namespace dfly {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
  }
  return "?";
}

std::int64_t CounterSnapshot::value_of(const std::string& name) const {
  for (const auto& [n, v] : values)
    if (n == name) return v;
  throw std::out_of_range("counter snapshot: no metric named '" + name + "'");
}

bool CounterSnapshot::contains(const std::string& name) const {
  for (const auto& [n, v] : values)
    if (n == name) return true;
  return false;
}

void write_snapshot_jsonl(std::ostream& os, const CounterSnapshot& snap) {
  obs::JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.field("schema_version", 2);
  w.field("time_ns", snap.time);
  for (const auto& [name, value] : snap.values) w.field(name, value);
  w.end_object();
  os << '\n';
}

std::uint64_t& CounterRegistry::counter(const std::string& name) {
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.owned == nullptr)
      throw std::invalid_argument("counter registry: '" + name + "' is a polled source");
    // const_cast is safe: owned cells always point into our own deque.
    return *const_cast<std::uint64_t*>(it->second.owned);
  }
  cells_.push_back(0);
  Entry entry;
  entry.kind = MetricKind::Counter;
  entry.owned = &cells_.back();
  entries_.emplace(name, std::move(entry));
  return cells_.back();
}

void CounterRegistry::add_source(const std::string& name, MetricKind kind,
                                 std::function<std::int64_t()> read) {
  if (entries_.count(name))
    throw std::invalid_argument("counter registry: duplicate metric '" + name + "'");
  Entry entry;
  entry.kind = kind;
  entry.read = std::move(read);
  entries_.emplace(name, std::move(entry));
}

CounterSnapshot CounterRegistry::snapshot(SimTime now) const {
  CounterSnapshot s;
  s.time = now;
  s.values.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    const std::int64_t v =
        entry.owned ? static_cast<std::int64_t>(*entry.owned) : entry.read();
    s.values.emplace_back(name, v);
  }
  return s;  // std::map iteration is already name-sorted
}

CounterProbe::CounterProbe(Engine& engine, const CounterRegistry& registry, SimTime interval)
    : engine_(engine), registry_(registry), interval_(interval) {
  if (interval <= 0) throw std::invalid_argument("counter probe: interval must be positive");
}

void CounterProbe::start() {
  if (started_) throw std::logic_error("counter probe: start() called twice");
  started_ = true;
  engine_.schedule_after(0, this, EventPayload{1, 0, 0, 0});
}

void CounterProbe::handle_event(SimTime now, const EventPayload& /*payload*/) {
  if (stopped_) return;
  sample_now(now);
  engine_.schedule_after(interval_, this, EventPayload{1, 0, 0, 0});
}

void CounterProbe::save_state(ckpt::Writer& w) const {
  w.boolean(started_);
  w.boolean(stopped_);
  w.size(snapshots_.size());
  for (const CounterSnapshot& s : snapshots_) {
    w.i64(s.time);
    w.size(s.values.size());
    for (const auto& [name, value] : s.values) {
      w.str(name);
      w.i64(value);
    }
  }
}

void CounterProbe::load_state(ckpt::Reader& r) {
  started_ = r.boolean();
  stopped_ = r.boolean();
  const std::size_t nsnaps = r.count(16);
  snapshots_.clear();
  snapshots_.reserve(nsnaps);
  for (std::size_t i = 0; i < nsnaps; ++i) {
    CounterSnapshot s;
    s.time = r.i64();
    const std::size_t nvalues = r.count(16);
    s.values.reserve(nvalues);
    for (std::size_t j = 0; j < nvalues; ++j) {
      std::string name = r.str();
      const std::int64_t value = r.i64();
      s.values.emplace_back(std::move(name), value);
    }
    snapshots_.push_back(std::move(s));
  }
}

}  // namespace dfly
