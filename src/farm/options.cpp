#include "farm/options.hpp"

#include <stdexcept>
#include <string>

namespace dfly {
namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("farm: " + what);
}

}  // namespace

void FarmOptions::validate() const {
  if (workers < 1) bad("workers must be >= 1, got " + std::to_string(workers));
  if (timeout_ms < 1) bad("timeout_ms must be >= 1, got " + std::to_string(timeout_ms));
  if (retries < 1) bad("retries must be >= 1, got " + std::to_string(retries));
  if (backoff_ms < 1) bad("backoff_ms must be >= 1, got " + std::to_string(backoff_ms));
  if (!(backoff_factor >= 1.0))
    bad("backoff_factor must be >= 1, got " + std::to_string(backoff_factor));
  if (!(jitter >= 0.0 && jitter <= 1.0))
    bad("jitter must be in [0, 1], got " + std::to_string(jitter));
  if (!(chaos_kill_rate >= 0.0 && chaos_kill_rate <= 1.0))
    bad("chaos_kill_rate must be in [0, 1], got " + std::to_string(chaos_kill_rate));
  if (!(chaos_stop_rate >= 0.0 && chaos_stop_rate <= 1.0))
    bad("chaos_stop_rate must be in [0, 1], got " + std::to_string(chaos_stop_rate));
  if (chaos_kill_rate + chaos_stop_rate > 1.0)
    bad("chaos_kill_rate + chaos_stop_rate must be <= 1");
  if (chaos_delay_ms < 1)
    bad("chaos_delay_ms must be >= 1, got " + std::to_string(chaos_delay_ms));
  if (chaos_max_injections < -1)
    bad("chaos_max_injections must be >= -1, got " + std::to_string(chaos_max_injections));
}

}  // namespace dfly
