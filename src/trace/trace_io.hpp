// Trace persistence: a compact little-endian binary format plus a
// human-readable text dump.
//
// Binary layout:
//   magic "DFTR" | u32 version | u32 ranks
//   per rank: u64 op count, then ops packed as
//     u8 kind | i32 peer | i32 tag | i64 bytes | i64 delay
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace dfly {

void write_trace(const Trace& trace, std::ostream& os);
Trace read_trace(std::istream& is);  ///< throws std::runtime_error on malformed input

/// File helpers; throw std::runtime_error on I/O failure.
void save_trace(const Trace& trace, const std::string& path);
Trace load_trace(const std::string& path);

/// Human-readable dump ("rank 3: isend peer=7 bytes=190000 tag=2 ...").
void dump_trace_text(const Trace& trace, std::ostream& os, std::size_t max_ops_per_rank = 0);

}  // namespace dfly
