// Automated verification of the paper's key findings (§IV-A/B/C bullet
// lists): runs reduced-scale versions of the experiments and prints a
// PASS/FAIL verdict per finding. This is the one binary to run to confirm
// the reproduction holds on a new machine or after model changes.
//
// Exit code is the number of failed findings.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "core/interference.hpp"
#include "core/run_matrix.hpp"

namespace {

using namespace dfly;

struct Verdict {
  std::string finding;
  bool pass;
  std::string evidence;
};

double median_of(const std::vector<ExperimentResult>& results, const std::string& config) {
  for (const ExperimentResult& r : results)
    if (r.config == config) return r.metrics.median_comm_ms();
  return -1;
}

double hops_of(const std::vector<ExperimentResult>& results, const std::string& config) {
  for (const ExperimentResult& r : results)
    if (r.config == config) return percentile(r.metrics.avg_hops, 50);
  return -1;
}

std::string ratio_evidence(const char* a, double va, const char* b, double vb) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%s=%.3f ms vs %s=%.3f ms", a, va, b, vb);
  return buf;
}

}  // namespace

int main() {
  using namespace dfly;
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  print_bench_header("Findings check", "automated verification of the paper's key findings",
                     scale, seed);
  const int threads = bench::bench_threads();

  ExperimentOptions options;
  options.seed = seed;

  std::vector<Verdict> verdicts;

  // --- §IV-A: application study -------------------------------------------
  {
    const Workload cr = bench::cr_workload(scale);
    const auto results = run_matrix(cr, table1_configs(), options, threads);
    const double cont = median_of(results, "cont-min");
    const double rand = median_of(results, "rand-min");
    verdicts.push_back({"CR benefits from balanced traffic (rand-min < cont-min)", rand < cont,
                        ratio_evidence("rand-min", rand, "cont-min", cont)});
    verdicts.push_back(
        {"localized communication reduces hops (cont-min hops < rand-min hops)",
         hops_of(results, "cont-min") < hops_of(results, "rand-min"),
         "hops " + Table::num(hops_of(results, "cont-min"), 2) + " vs " +
             Table::num(hops_of(results, "rand-min"), 2)});
  }
  {
    const Workload fb = bench::fb_workload(scale);
    const auto results = run_matrix(fb, table1_configs(), options, threads);
    const double best = median_of(results, "rand-adp");
    bool is_best = true;
    for (const ExperimentResult& r : results)
      if (r.metrics.median_comm_ms() < best) is_best = false;
    verdicts.push_back({"FB best at rand-adp", is_best,
                        ratio_evidence("rand-adp", best, "cont-min",
                                       median_of(results, "cont-min"))});
  }
  {
    const Workload amg = bench::amg_workload(scale);
    const auto results = run_matrix(amg, table1_configs(), options, threads);
    const double cont_adp = median_of(results, "cont-adp");
    const double rand_adp = median_of(results, "rand-adp");
    const double rotr_adp = median_of(results, "rotr-adp");
    verdicts.push_back({"AMG benefits from localized communication (cont-adp <= rand-adp)",
                        cont_adp <= rand_adp,
                        ratio_evidence("cont-adp", cont_adp, "rand-adp", rand_adp)});
    verdicts.push_back({"AMG: scattering routers hurts (cont-adp < rotr-adp)",
                        cont_adp < rotr_adp,
                        ratio_evidence("cont-adp", cont_adp, "rotr-adp", rotr_adp)});
  }

  // --- §IV-B: sensitivity ---------------------------------------------------
  {
    const Workload amg_light = bench::amg_workload(scale * 0.5);
    const Workload amg_heavy = bench::amg_workload(scale * 20);
    const std::vector<ExperimentConfig> extremes = extreme_configs();
    const auto light = run_matrix(amg_light, extremes, options, threads);
    const auto heavy = run_matrix(amg_heavy, extremes, options, threads);
    verdicts.push_back({"AMG prefers contiguous at low intensity",
                        median_of(light, "cont-adp") <= median_of(light, "rand-adp"),
                        ratio_evidence("cont-adp", median_of(light, "cont-adp"), "rand-adp",
                                       median_of(light, "rand-adp"))});
    verdicts.push_back({"AMG prefers balanced traffic at high intensity",
                        median_of(heavy, "rand-adp") < median_of(heavy, "cont-adp"),
                        ratio_evidence("rand-adp", median_of(heavy, "rand-adp"), "cont-adp",
                                       median_of(heavy, "cont-adp"))});
  }

  // --- §IV-C: external interference ----------------------------------------
  {
    const Workload cr = bench::cr_workload(scale);
    BackgroundSpec bursty;
    bursty.pattern = BackgroundSpec::Pattern::Bursty;
    bursty.message_bytes = static_cast<Bytes>(100 * units::kKB * (scale / 0.25));
    bursty.burst_fanout = 8;
    bursty.interval = 100 * units::kMicrosecond;
    const std::vector<ExperimentConfig> configs = {
        {PlacementKind::Contiguous, RoutingKind::Minimal},
        {PlacementKind::RandomCabinet, RoutingKind::Minimal},
        {PlacementKind::RandomNode, RoutingKind::Adaptive}};
    const InterferenceResult result = run_interference(cr, configs, options, bursty, threads);
    auto degradation = [&](std::size_t i) {
      const double base = result.baseline[i].metrics.median_comm_ms();
      return base > 0
                 ? (result.with_background[i].metrics.median_comm_ms() - base) / base * 100.0
                 : 0.0;
    };
    verdicts.push_back(
        {"bursty background degrades balanced configs (rand-adp > 5%)", degradation(2) > 5.0,
         "rand-adp degradation " + Table::num(degradation(2), 1) + "%"});
    verdicts.push_back(
        {"localized communication isolates against interference (cont-min < rand-adp degr.)",
         degradation(0) < degradation(2),
         "cont-min " + Table::num(degradation(0), 1) + "% vs rand-adp " +
             Table::num(degradation(2), 1) + "%"});
  }

  Table t("Key-findings verification");
  t.set_columns({"finding", "verdict", "evidence"});
  int failures = 0;
  for (const Verdict& v : verdicts) {
    t.add_row({v.finding, v.pass ? "PASS" : "FAIL", v.evidence});
    if (!v.pass) ++failures;
  }
  t.print_markdown(std::cout);
  std::printf("%d/%zu findings reproduced\n", static_cast<int>(verdicts.size()) - failures,
              verdicts.size());
  return failures;
}
