// Integration tests: whole-pipeline experiments across the full placement x
// routing matrix, determinism, and the interference/sensitivity drivers.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/interference.hpp"
#include "core/run_matrix.hpp"
#include "core/sensitivity.hpp"
#include "util/stats.hpp"
#include "workload/synthetic.hpp"

namespace dfly {
namespace {

/// A light, fast workload: 48 ranks exchanging 32 KiB around a ring twice.
Workload small_workload() {
  return Workload{"ring", make_ring_trace(48, 32 * units::kKiB, 2)};
}

ExperimentOptions tiny_options() {
  ExperimentOptions options;
  options.topo = TopoParams::tiny();
  options.seed = 7;
  options.max_events = 200'000'000;
  return options;
}

class MatrixProperty : public ::testing::TestWithParam<ExperimentConfig> {};

TEST_P(MatrixProperty, EveryConfigCompletesWithoutDeadlock) {
  const ExperimentResult result = run_experiment(small_workload(), GetParam(), tiny_options());
  EXPECT_FALSE(result.hit_event_limit);
  EXPECT_EQ(result.metrics.comm_time_ms.size(), 48u);
  for (const double t : result.metrics.comm_time_ms) EXPECT_GT(t, 0.0);
  for (const double h : result.metrics.avg_hops) {
    EXPECT_GE(h, 1.0);
    EXPECT_LE(h, kMaxRouteHops);
  }
  EXPECT_GT(result.metrics.bytes_delivered, 0);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, MatrixProperty, ::testing::ValuesIn(table1_configs()),
                         [](const auto& pinfo) {
                           std::string name = pinfo.param.name();
                           for (char& ch : name)
                             if (ch == '-') ch = '_';
                           return name;
                         });

TEST(Experiment, DeterministicForSameSeed) {
  const ExperimentConfig config{PlacementKind::RandomNode, RoutingKind::Adaptive};
  const ExperimentResult a = run_experiment(small_workload(), config, tiny_options());
  const ExperimentResult b = run_experiment(small_workload(), config, tiny_options());
  EXPECT_EQ(a.metrics.comm_time_ms, b.metrics.comm_time_ms);
  EXPECT_EQ(a.metrics.avg_hops, b.metrics.avg_hops);
  EXPECT_EQ(a.metrics.events, b.metrics.events);
  EXPECT_EQ(a.metrics.local_traffic_mb, b.metrics.local_traffic_mb);
}

TEST(Experiment, DifferentSeedsChangeRandomPlacements) {
  const ExperimentConfig config{PlacementKind::RandomNode, RoutingKind::Minimal};
  ExperimentOptions a = tiny_options(), b = tiny_options();
  b.seed = 1234;
  const ExperimentResult ra = run_experiment(small_workload(), config, a);
  const ExperimentResult rb = run_experiment(small_workload(), config, b);
  EXPECT_NE(ra.metrics.comm_time_ms, rb.metrics.comm_time_ms);
}

TEST(Experiment, PlacementSharedAcrossRoutings) {
  // Same seed + placement kind must pick the same node set for min and adp:
  // average hops under minimal routing are then comparable. We check via
  // serving-channel sample counts, which depend only on the node set.
  const Workload w = small_workload();
  const ExperimentOptions options = tiny_options();
  const ExperimentResult min = run_experiment(
      w, ExperimentConfig{PlacementKind::RandomNode, RoutingKind::Minimal}, options);
  const ExperimentResult adp = run_experiment(
      w, ExperimentConfig{PlacementKind::RandomNode, RoutingKind::Adaptive}, options);
  EXPECT_EQ(min.metrics.local_traffic_mb.size(), adp.metrics.local_traffic_mb.size());
}

TEST(Experiment, ContiguousHasFewerHopsThanRandomNode) {
  // The paper's core locality observation, on the tiny system.
  const Workload w = small_workload();
  const ExperimentOptions options = tiny_options();
  const ExperimentResult cont = run_experiment(
      w, ExperimentConfig{PlacementKind::Contiguous, RoutingKind::Minimal}, options);
  const ExperimentResult rand = run_experiment(
      w, ExperimentConfig{PlacementKind::RandomNode, RoutingKind::Minimal}, options);
  const double cont_hops =
      percentile(cont.metrics.avg_hops, 50.0);
  const double rand_hops = percentile(rand.metrics.avg_hops, 50.0);
  EXPECT_LT(cont_hops, rand_hops);
}

TEST(Experiment, AdaptiveNeverShorterThanMinimalHops) {
  const Workload w = small_workload();
  const ExperimentOptions options = tiny_options();
  const ExperimentResult min = run_experiment(
      w, ExperimentConfig{PlacementKind::Contiguous, RoutingKind::Minimal}, options);
  const ExperimentResult adp = run_experiment(
      w, ExperimentConfig{PlacementKind::Contiguous, RoutingKind::Adaptive}, options);
  EXPECT_LE(percentile(min.metrics.avg_hops, 50.0), percentile(adp.metrics.avg_hops, 50.0) + 1e-9);
}

TEST(Experiment, MsgScaleIncreasesCommTime) {
  const Workload w = small_workload();
  ExperimentOptions options = tiny_options();
  const ExperimentConfig config{PlacementKind::Contiguous, RoutingKind::Minimal};
  const ExperimentResult base = run_experiment(w, config, options);
  options.msg_scale = 4.0;
  const ExperimentResult scaled = run_experiment(w, config, options);
  EXPECT_GT(scaled.metrics.makespan_ms, base.metrics.makespan_ms);
}

TEST(Experiment, TableIConfigsAreTheTenOfThePaper) {
  const auto configs = table1_configs();
  ASSERT_EQ(configs.size(), 10u);
  EXPECT_EQ(configs[0].name(), "cont-min");
  EXPECT_EQ(configs[4].name(), "rand-min");
  EXPECT_EQ(configs[5].name(), "cont-adp");
  EXPECT_EQ(configs[9].name(), "rand-adp");
  const auto extremes = extreme_configs();
  ASSERT_EQ(extremes.size(), 4u);
}

TEST(RunMatrix, ParallelMatchesSequential) {
  const Workload w = small_workload();
  const auto configs = table1_configs();
  const ExperimentOptions options = tiny_options();
  const auto seq = run_matrix(w, configs, options, 1);
  const auto par = run_matrix(w, configs, options, 4);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].config, par[i].config);
    EXPECT_EQ(seq[i].metrics.comm_time_ms, par[i].metrics.comm_time_ms)
        << "thread count must not affect results (" << seq[i].config << ")";
  }
}

TEST(Interference, BackgroundTrafficSlowsTheTargetApp) {
  // 32 of the tiny system's 48 nodes run the app; 16 host the background job.
  const Workload w{"ring", make_ring_trace(32, 32 * units::kKiB, 2)};
  ExperimentOptions options = tiny_options();
  BackgroundSpec spec;
  spec.pattern = BackgroundSpec::Pattern::UniformRandom;
  spec.message_bytes = 64 * units::kKiB;
  spec.interval = 2 * units::kMicrosecond;
  const std::vector<ExperimentConfig> configs = {
      {PlacementKind::Contiguous, RoutingKind::Minimal},
      {PlacementKind::RandomNode, RoutingKind::Adaptive}};
  const InterferenceResult result = run_interference(w, configs, options, spec, 2);
  ASSERT_EQ(result.with_background.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(result.with_background[i].metrics.median_comm_ms(),
              result.baseline[i].metrics.median_comm_ms())
        << result.with_background[i].config;
  }
  EXPECT_GT(result.peak_background_load, 0);
  const Table t = result.degradation_table("test");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Interference, FullMachineAppLeavesZeroBackgroundNodes) {
  // Regression: with ranks == total_nodes the background node count
  // (total - ranks) underflowed size_t and reported a ~2^64-node job.
  const Workload w{"ring", make_ring_trace(48, 8 * units::kKiB, 1)};
  ExperimentOptions options = tiny_options();
  BackgroundSpec spec;
  spec.message_bytes = 64 * units::kKiB;
  const std::vector<ExperimentConfig> configs = {
      {PlacementKind::Contiguous, RoutingKind::Minimal}};
  const InterferenceResult result = run_interference(w, configs, options, spec, 1);
  EXPECT_EQ(result.peak_background_load, 0);
  EXPECT_EQ(result.with_background[0].metrics.comm_time_ms,
            result.baseline[0].metrics.comm_time_ms);
}

TEST(Sensitivity, RelativeValuesAnchorAtBaseline) {
  ExperimentOptions options = tiny_options();
  auto make = [](double scale) {
    Trace t = make_ring_trace(32, 64 * units::kKiB, 1);
    t.scale_message_sizes(scale);
    return Workload{"ring", std::move(t)};
  };
  const SensitivityResult result =
      run_sensitivity(make, {0.5, 1.0}, extreme_configs(), options, 2);
  // 2 scales x 4 configs (rand-adp already among the extremes).
  EXPECT_EQ(result.points.size(), 8u);
  for (const SensitivityPoint& p : result.points) {
    EXPECT_GT(p.max_comm_ms, 0.0);
    if (p.config == "rand-adp") {
      EXPECT_DOUBLE_EQ(p.relative_to_baseline_pct, 100.0);
    }
  }
  const Table t = result.to_table("test");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Experiment, EventLimitSurfacesAsFlag) {
  ExperimentOptions options = tiny_options();
  options.max_events = 1000;  // far too few to finish
  const ExperimentResult result = run_experiment(
      small_workload(), ExperimentConfig{PlacementKind::Contiguous, RoutingKind::Minimal},
      options);
  EXPECT_TRUE(result.hit_event_limit);
}

}  // namespace
}  // namespace dfly
