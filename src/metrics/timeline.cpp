#include "metrics/timeline.hpp"

#include <stdexcept>

namespace dfly {

TimelineSampler::TimelineSampler(Engine& engine, const Network& network, SimTime interval)
    : engine_(engine), network_(network), interval_(interval) {
  if (interval <= 0) throw std::invalid_argument("timeline: interval must be positive");
}

void TimelineSampler::start() {
  if (started_) throw std::logic_error("timeline: start() called twice");
  started_ = true;
  engine_.schedule_after(0, this, EventPayload{1, 0, 0, 0});
}

void TimelineSampler::sample(SimTime now) {
  TimelineSample s;
  s.time = now;
  s.bytes_delivered = network_.bytes_delivered();
  s.messages_in_flight = network_.messages_in_flight();
  s.chunks_forwarded = network_.chunks_forwarded();
  const DragonflyTopology& topo = network_.topology();
  for (RouterId r = 0; r < topo.params().total_routers(); ++r) {
    const Router& router = network_.router(r);
    for (int p = 0; p < router.num_ports(); ++p) {
      const OutPort& port = router.port(p);
      switch (port.kind) {
        case PortKind::Terminal: s.queued_terminal += port.queued_bytes; break;
        case PortKind::LocalRow:
        case PortKind::LocalCol: s.queued_local += port.queued_bytes; break;
        case PortKind::Global: s.queued_global += port.queued_bytes; break;
      }
    }
  }
  s.queued_bytes = s.queued_local + s.queued_global + s.queued_terminal;
  samples_.push_back(s);
}

void TimelineSampler::handle_event(SimTime now, const EventPayload& /*payload*/) {
  if (stopped_) return;
  sample(now);
  engine_.schedule_after(interval_, this, EventPayload{1, 0, 0, 0});
}

std::vector<double> TimelineSampler::throughput_gbps() const {
  std::vector<double> rates;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const double bytes =
        static_cast<double>(samples_[i].bytes_delivered - samples_[i - 1].bytes_delivered);
    const double ns = static_cast<double>(samples_[i].time - samples_[i - 1].time);
    rates.push_back(ns > 0 ? bytes / ns : 0.0);  // bytes/ns == GB/s
  }
  return rates;
}

Table TimelineSampler::to_table(const std::string& title) const {
  Table t(title);
  t.set_columns({"time (ms)", "delivered (MB)", "throughput (GB/s)", "queued (MB)",
                 "queued local (MB)", "queued global (MB)", "queued terminal (MB)",
                 "msgs in flight"});
  if (samples_.empty()) return t;  // headers only: never started or never fired
  const std::vector<double> rates = throughput_gbps();
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const TimelineSample& s = samples_[i];
    t.add_row({Table::num(units::to_ms(s.time), 3), Table::num(units::to_mb(s.bytes_delivered), 2),
               Table::num(i > 0 ? rates[i - 1] : 0.0, 2), Table::num(units::to_mb(s.queued_bytes), 3),
               Table::num(units::to_mb(s.queued_local), 3),
               Table::num(units::to_mb(s.queued_global), 3),
               Table::num(units::to_mb(s.queued_terminal), 3),
               Table::num(static_cast<std::int64_t>(s.messages_in_flight))});
  }
  return t;
}

}  // namespace dfly
