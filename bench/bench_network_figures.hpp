// Shared driver for Figs. 4-6: run one application over the full Table I
// matrix and print the per-channel CDF tables (hops, traffic, saturation).
#pragma once

#include <iostream>

#include "bench_common.hpp"

namespace dfly::bench {

struct NetworkFigurePanels {
  bool hops = false;          // Fig. 4(a) — only shown for CR in the paper
  bool local_traffic = true;  // Figs. 4(b)/5(a)/6(a)
  bool global_traffic = true; // Figs. 5(c)/6(c)
  bool local_saturation = true;
  bool global_saturation = true;
};

/// One figure = one app, ten configs, several CDF panels. Each table row is a
/// configuration, each column a channel-population quantile — the transposed
/// reading of the paper's "percentage of channels vs amount" curves.
inline void run_network_figure(const Workload& workload, const ExperimentOptions& options,
                               const NetworkFigurePanels& panels) {
  std::printf("running %s (%d ranks, %.1f MB total)...\n", workload.name.c_str(),
              workload.trace.ranks(), units::to_mb(workload.trace.total_send_bytes()));
  const std::vector<NamedMetrics> named = run_and_report_matrix(workload, options, bench_threads());
  const std::vector<double>& fr = standard_cdf_fractions();
  if (panels.hops)
    cdf_table(workload.name + ": average hops per rank (CDF quantiles)", named, fr,
              select_avg_hops)
        .print_markdown(std::cout);
  if (panels.local_traffic)
    cdf_table(workload.name + ": local channel traffic MB (CDF quantiles)", named, fr,
              select_local_traffic)
        .print_markdown(std::cout);
  if (panels.global_traffic)
    cdf_table(workload.name + ": global channel traffic MB (CDF quantiles)", named, fr,
              select_global_traffic)
        .print_markdown(std::cout);
  if (panels.local_saturation)
    cdf_table(workload.name + ": local link saturation ms (CDF quantiles)", named, fr,
              select_local_saturation, 4)
        .print_markdown(std::cout);
  if (panels.global_saturation)
    cdf_table(workload.name + ": global link saturation ms (CDF quantiles)", named, fr,
              select_global_saturation, 4)
        .print_markdown(std::cout);
}

}  // namespace dfly::bench
