# Empty dependencies file for bench_table2_background_load.
# This may be replaced when dependencies are built.
