// Adaptive (UGAL-L style) routing, matching the paper §III-C: "the path taken
// by a packet will be chosen based on congestion situation from up to four
// possible randomly selected routes, two minimal and two non-minimal".
//
// The decision is made at the source using the source router's output queue
// depths: each candidate is scored as
//     (queued bytes on its first-hop channel + one chunk) * hop count
// and the lowest score wins; ties prefer the minimal candidates. This is the
// locally-sensed UGAL variant — the same information a per-hop adaptive
// implementation uses at the injection decision point.
#pragma once

#include "routing/algorithm.hpp"
#include "routing/router_table.hpp"

namespace dfly {

class AdaptiveRouting : public RoutingAlgorithm {
 public:
  /// `bias_bytes` is added to every candidate's queue estimate so that hop
  /// count matters even on an idle network (minimal then always wins).
  /// `nonminimal_penalty` multiplies nonminimal scores — the standard UGAL
  /// threshold that accounts for a Valiant path consuming roughly twice the
  /// link capacity of a minimal one; a packet only detours when the minimal
  /// queue is substantially deeper.
  explicit AdaptiveRouting(const DragonflyTopology& topo, Bytes bias_bytes = 2048,
                           double nonminimal_penalty = 2.0);

  Route compute(NodeId src, NodeId dst, const CongestionView& congestion,
                Rng& rng) const override;
  std::string name() const override { return "adaptive"; }
  void on_topology_changed() override { table_.refresh(); }

 private:
  double score(const Route& route, const CongestionView& congestion, bool minimal) const;

  MinimalPathTable table_;
  Bytes bias_bytes_;
  double nonminimal_penalty_;
};

}  // namespace dfly
