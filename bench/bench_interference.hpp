// Shared driver for Figs. 8-10: run the target application under the full
// Table I matrix while a synthetic background job floods the remaining
// nodes, then print communication-time distributions, degradation vs the
// interference-free baseline, and the channel-traffic CDFs of the routers
// serving the target application.
//
// Background loads are calibrated so that at the default DFLY_SCALE=0.25 the
// uniform-random per-tick load matches the paper's Table II (27 MB for AMG,
// 38.38 MB for CR/FB); bursty loads keep the paper's burst-dwarfs-app ratio
// at simulation scale (see DESIGN.md on the fan-out substitution). All
// background message sizes scale with DFLY_SCALE so the app:background ratio
// is invariant under the suite-wide knob.
#pragma once

#include <iostream>

#include "bench_common.hpp"
#include "core/interference.hpp"

namespace dfly::bench {

inline Bytes scaled_bg(Bytes bytes_at_default, double scale) {
  const auto b = static_cast<Bytes>(static_cast<double>(bytes_at_default) * (scale / 0.25));
  return b < 1 ? 1 : b;
}

/// Uniform-random background: small messages at a small interval (paper:
/// 0.002-1 ms).
inline BackgroundSpec uniform_background(Bytes message_at_default, SimTime interval,
                                         double scale) {
  BackgroundSpec spec;
  spec.pattern = BackgroundSpec::Pattern::UniformRandom;
  spec.message_bytes = scaled_bg(message_at_default, scale);
  spec.interval = interval;
  return spec;
}

/// Bursty background: every node sends large messages to `fanout` peers at a
/// long interval (paper: 0.1-60 ms, all-to-all; the fanout caps the O(n^2)
/// message count).
inline BackgroundSpec bursty_background(Bytes message_at_default, int fanout, SimTime interval,
                                        double scale) {
  BackgroundSpec spec;
  spec.pattern = BackgroundSpec::Pattern::Bursty;
  spec.message_bytes = scaled_bg(message_at_default, scale);
  spec.burst_fanout = fanout;
  spec.interval = interval;
  return spec;
}

inline void run_interference_figure(const Workload& workload, const ExperimentOptions& options,
                                    const BackgroundSpec& spec, bool traffic_tables) {
  const std::size_t bg_nodes = options.topo.total_nodes() - workload.trace.ranks();
  std::printf("running %s vs %s background (peak load %.2f MB per tick, interval %.3f ms)...\n",
              workload.name.c_str(), to_string(spec.pattern),
              units::to_mb(spec.peak_load(bg_nodes)), units::to_ms(spec.interval));

  const InterferenceResult result =
      run_interference(workload, table1_configs(), options, spec, bench_threads());

  const std::string prefix = workload.name + " + " + to_string(spec.pattern) + " background";
  comm_time_box_table(prefix + ": per-rank communication time (ms)", result.with_background)
      .print_markdown(std::cout);
  result.degradation_table(prefix + ": degradation vs no-background baseline")
      .print_markdown(std::cout);
  if (traffic_tables) {
    const std::vector<double>& fr = standard_cdf_fractions();
    cdf_table(prefix + ": local channel traffic MB on app routers (CDF quantiles)",
              result.with_background, fr, select_local_traffic)
        .print_markdown(std::cout);
    cdf_table(prefix + ": global channel traffic MB on app routers (CDF quantiles)",
              result.with_background, fr, select_global_traffic)
        .print_markdown(std::cout);
  }
}

}  // namespace dfly::bench
