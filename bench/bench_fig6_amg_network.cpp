// Reproduces Fig. 6: AMG's local/global channel traffic and link saturation
// under all ten configurations.
//
// Paper shape: cont-min concentrates traffic on few channels with the longest
// saturation; rand-adp spreads it but — AMG being light — does not reduce
// saturation much compared with cont-adp, which wins on hops.
#include "bench_network_figures.hpp"

int main() {
  using namespace dfly;
  const double scale = env_scale(0.25);
  const std::uint64_t seed = env_seed(42);
  print_bench_header("Fig. 6", "AMG network metrics (traffic, saturation)", scale, seed);
  ExperimentOptions options;
  options.seed = seed;
  bench::run_network_figure(bench::amg_workload(scale), options, bench::NetworkFigurePanels{});
  return 0;
}
