// Versioned whole-simulation checkpoint/restore (the trade-off study's long
// sweeps are expensive; a preempted run should resume, not restart).
//
// A checkpoint captures everything the event-driven simulation needs to
// continue bit-identically: the engine clock, sequence counter and the full
// event queue (including the calendar queue's tuning state, so resumed
// SchedulerStats match), per-router VC buffers and credit counters, NIC
// injection queues and retransmit accounting, the in-flight chunk/message
// pools, every RNG stream, the replay engine's per-rank cursors, the fault
// injector's cursor (the schedule itself is rebuilt from the config and
// digest-checked), and the telemetry accumulators — so a resumed run produces
// byte-identical metrics.json and counters.jsonl.
//
// Event-queue entries reference their EventHandler by a small stable id
// (handler registry below) instead of a pointer; the registry order is part
// of the format and must never change for version 1.
#pragma once

#include <string>

#include "ckpt/snapshot_io.hpp"
#include "util/units.hpp"

namespace dfly {

class Engine;
class DragonflyTopology;
class Network;
class ReplayEngine;
class BackgroundDriver;
class FaultInjector;
class HealthMonitor;
class RunTelemetry;
struct ExperimentResult;

namespace ckpt {

/// The live objects of one experiment run, wired together by
/// core/experiment.cpp. `engine`..`replay` are mandatory; the rest mirror the
/// run's optional subsystems and their presence is recorded in (and validated
/// against) the snapshot — a checkpoint taken with fault injection cannot
/// silently resume without it.
// dfly-lint: allow(pod-assert) reason=wiring struct of live-object pointers; serialized field-wise by save_checkpoint, never byte-framed
struct SimSnapshotParts {
  std::string config;        ///< experiment config name ("cont-min", ...)
  std::uint64_t seed = 0;    ///< master seed; both are identity-checked on load
  Engine* engine = nullptr;
  DragonflyTopology* topo = nullptr;
  Network* network = nullptr;
  ReplayEngine* replay = nullptr;
  BackgroundDriver* background = nullptr;
  FaultInjector* injector = nullptr;
  HealthMonitor* monitor = nullptr;
  RunTelemetry* telemetry = nullptr;
};

/// Writes a SimState snapshot of `parts` to `path` (atomically: tmp+rename).
/// Throws std::runtime_error on I/O failure or if the event queue holds a
/// handler outside the registry.
void save_checkpoint(const std::string& path, const SimSnapshotParts& parts);

/// Restores a SimState snapshot into freshly constructed `parts` (same
/// config, seed, topology parameters and subsystem lineup as the
/// checkpointed run — all validated). After this call the engine's clock,
/// queue and every subsystem hold the checkpointed state; do NOT call any
/// start() method, the restored queue already contains the pending events.
void load_checkpoint(const std::string& path, SimSnapshotParts& parts);

/// Summary header of a snapshot, readable without reconstructing the run.
// dfly-lint: allow(pod-assert) reason=holds std::string config; written field-wise via Writer, never memcpy-framed
struct CheckpointInfo {
  std::string config;
  std::uint64_t seed = 0;
  SimTime time = 0;                  ///< engine clock at the snapshot
  std::uint64_t events_processed = 0;
  std::uint64_t pending_events = 0;
  bool has_background = false;
  bool has_injector = false;
  bool has_monitor = false;
  bool has_telemetry = false;
};

CheckpointInfo inspect_checkpoint(const std::string& path);

/// Finished-run result snapshot (SnapshotKind::SweepResult) — run_matrix
/// marks completed configs with these so a resumed sweep skips them.
void save_result(const std::string& path, const ExperimentResult& result);
ExperimentResult load_result(const std::string& path);

}  // namespace ckpt
}  // namespace dfly
