#include "prof/wall_histogram.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace dfly::prof {

namespace {
// Octave exponents up to 2^62 keep every bucket bound inside int64 — about
// 146 years in nanoseconds, far past any wall-clock latency worth recording.
constexpr int kMaxExponent = 62;
}  // namespace

WallHistogram::WallHistogram(int sub_bucket_bits) : bits_(sub_bucket_bits) {
  if (bits_ < 0 || bits_ > 8)
    throw std::invalid_argument("wall histogram: sub_bucket_bits must be in [0, 8]");
  const std::size_t sub = std::size_t{1} << bits_;
  // One linear region of `sub` exact buckets for v < sub, then one block of
  // `sub` sub-buckets per octave from 2^bits_ through 2^kMaxExponent.
  counts_.assign(sub + static_cast<std::size_t>(kMaxExponent - bits_ + 1) * sub, 0);
}

std::size_t WallHistogram::index_of(std::int64_t v) const {
  const std::size_t sub = std::size_t{1} << bits_;
  const auto u = static_cast<std::uint64_t>(v);
  if (u < sub) return static_cast<std::size_t>(u);
  const int e = std::bit_width(u) - 1;  // 2^e <= u < 2^(e+1), e >= bits_
  const std::size_t mantissa = static_cast<std::size_t>(u >> (e - bits_)) - sub;
  const std::size_t idx = sub + static_cast<std::size_t>(e - bits_) * sub + mantissa;
  return std::min(idx, counts_.size() - 1);
}

void WallHistogram::add(std::int64_t value_ns) {
  const std::int64_t v = std::max<std::int64_t>(value_ns, 0);
  ++counts_[index_of(v)];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

std::int64_t WallHistogram::bucket_lower(std::size_t i) const {
  const std::size_t sub = std::size_t{1} << bits_;
  if (i < sub) return static_cast<std::int64_t>(i);
  const std::size_t block = (i - sub) / sub;  // octave index from 2^bits_
  const std::size_t mantissa = (i - sub) % sub;
  const int e = static_cast<int>(block) + bits_;
  return static_cast<std::int64_t>((sub + mantissa) << (e - bits_));
}

std::int64_t WallHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based; p=0 selects the first sample.
  const auto rank = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) return bucket_lower(i);
  }
  return max_;  // unreachable: counts sum to count_
}

void WallHistogram::merge(const WallHistogram& other) {
  if (other.bits_ != bits_)
    throw std::invalid_argument("wall histogram: cannot merge different resolutions");
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  min_ = count_ ? std::min(min_, other.min_) : other.min_;
  max_ = count_ ? std::max(max_, other.max_) : other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

}  // namespace dfly::prof
