// Seeded violation fixture: R5 (raw-bytes) — raw byte reinterpretation
// outside ckpt/snapshot_io and obs/json.
double seeded_raw_bytes(long bits) { return *reinterpret_cast<double*>(&bits); }
