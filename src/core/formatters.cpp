#include "core/formatters.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/experiment.hpp"

namespace dfly {

Table table1_nomenclature() {
  Table t("Table I: placement x routing nomenclature");
  t.set_columns({"placement policy", "minimal routing", "adaptive routing"});
  const char* names[] = {"Contiguous", "Random-cabinet", "Random-chassis", "Random-router",
                         "Random-node"};
  int i = 0;
  for (const PlacementKind placement : kAllPlacements) {
    const std::string base = to_string(placement);
    t.add_row({names[i++], base + "-min", base + "-adp"});
  }
  return t;
}

const std::vector<double>& standard_cdf_fractions() {
  static const std::vector<double> fractions = {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00};
  return fractions;
}

namespace {

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return (end != value && parsed > 0) ? parsed : fallback;
}

}  // namespace

double env_scale(double fallback) { return env_double("DFLY_SCALE", fallback); }

std::uint64_t env_seed(std::uint64_t fallback) {
  return static_cast<std::uint64_t>(env_double("DFLY_SEED", static_cast<double>(fallback)));
}

int env_threads(int fallback) {
  return static_cast<int>(env_double("DFLY_THREADS", fallback));
}

void print_bench_header(const std::string& id, const std::string& what, double scale,
                        std::uint64_t seed) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("Paper: Trade-Off Study of Localizing Communication and Balancing\n");
  std::printf("       Network Traffic on a Dragonfly System (IPDPS 2018)\n");
  std::printf("message-volume scale=%.3g (env DFLY_SCALE), seed=%llu (env DFLY_SEED)\n", scale,
              static_cast<unsigned long long>(seed));
  std::printf("==============================================================\n");
}

}  // namespace dfly
